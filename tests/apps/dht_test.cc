// DHT application tests: the paper's hash-table metaphor made concrete — including
// surviving an owner crash through successor replication.

#include <gtest/gtest.h>

#include <map>

#include "src/apps/dht.h"
#include "src/testbed/testbed.h"

namespace p2 {
namespace {

class DhtTest : public ::testing::Test {
 protected:
  void Start(int nodes, bool replicate = true) {
    TestbedConfig tb;
    tb.num_nodes = nodes;
    tb.fleet.node_defaults.introspection = false;
    bed_ = std::make_unique<ChordTestbed>(tb);
    bed_->Run(100);
    ASSERT_TRUE(bed_->RingIsCorrect());
    DhtConfig cfg;
    cfg.replicate = replicate;
    for (Node* node : bed_->nodes()) {
      std::string error;
      ASSERT_TRUE(InstallDht(node, cfg, &error)) << error;
      node->SubscribeEvent("dhtPutAck", [this](const TupleRef& t) {
        acks_[t->field(2).AsId()] = t->field(3).AsString();  // req -> owner
      });
      node->SubscribeEvent("dhtGetResp", [this](const TupleRef& t) {
        if (t->field(4).Truthy()) {
          values_[t->field(3).AsId()] = t->field(2).AsString();
        } else {
          misses_.insert(t->field(3).AsId());
        }
      });
    }
  }

  std::unique_ptr<ChordTestbed> bed_;
  std::map<uint64_t, std::string> acks_;    // put req id -> owner addr
  std::map<uint64_t, std::string> values_;  // get req id -> value
  std::set<uint64_t> misses_;
};

TEST_F(DhtTest, PutThenGetFromAnyNode) {
  Start(8);
  DhtPut(bed_->node(1), "color", "teal", 1);
  DhtPut(bed_->node(2), "animal", "capybara", 2);
  bed_->Run(5);
  EXPECT_EQ(acks_.size(), 2u);
  // Read both keys back from *different* nodes than wrote them.
  DhtGet(bed_->node(6), "color", 10);
  DhtGet(bed_->node(0), "animal", 11);
  DhtGet(bed_->node(3), "nonexistent", 12);
  bed_->Run(5);
  EXPECT_EQ(values_[10], "teal");
  EXPECT_EQ(values_[11], "capybara");
  EXPECT_TRUE(misses_.count(12) > 0);
}

TEST_F(DhtTest, OverwriteReplacesValue) {
  Start(6);
  DhtPut(bed_->node(0), "k", "v1", 1);
  bed_->Run(5);
  DhtPut(bed_->node(3), "k", "v2", 2);
  bed_->Run(5);
  DhtGet(bed_->node(5), "k", 10);
  bed_->Run(5);
  EXPECT_EQ(values_[10], "v2");
}

TEST_F(DhtTest, SameKeyAlwaysLandsOnOneOwner) {
  Start(8);
  // Puts from every node for the same key must be acked by the same owner.
  for (uint64_t i = 0; i < bed_->size(); ++i) {
    DhtPut(bed_->node(i), "sharedKey", "v" + std::to_string(i), 100 + i);
  }
  bed_->Run(8);
  ASSERT_EQ(acks_.size(), bed_->size());
  std::string owner = acks_.begin()->second;
  for (const auto& [req, who] : acks_) {
    EXPECT_EQ(who, owner);
  }
}

TEST_F(DhtTest, ReplicationSurvivesOwnerCrash) {
  Start(8, /*replicate=*/true);
  DhtPut(bed_->node(1), "precious", "data", 1);
  bed_->Run(5);
  ASSERT_EQ(acks_.count(1), 1u);
  Node* owner = bed_->network().GetNode(acks_[1]);
  ASSERT_NE(owner, nullptr);
  owner->Crash();
  bed_->Run(60);  // failure detection + ring healing: the replica inherits the range
  DhtGet(bed_->node(2), "precious", 10);
  bed_->Run(8);
  EXPECT_EQ(values_[10], "data");
}

TEST_F(DhtTest, WithoutReplicationOwnerCrashLosesData) {
  Start(8, /*replicate=*/false);
  DhtPut(bed_->node(1), "fragile", "data", 1);
  bed_->Run(5);
  ASSERT_EQ(acks_.count(1), 1u);
  Node* owner = bed_->network().GetNode(acks_[1]);
  owner->Crash();
  bed_->Run(60);
  DhtGet(bed_->node(2), "fragile", 10);
  bed_->Run(8);
  EXPECT_TRUE(misses_.count(10) > 0);
  EXPECT_EQ(values_.count(10), 0u);
}

TEST_F(DhtTest, ManyKeysDistributeAcrossNodes) {
  Start(8);
  for (uint64_t i = 0; i < 40; ++i) {
    DhtPut(bed_->node(i % bed_->size()), "key" + std::to_string(i),
           "val" + std::to_string(i), 1000 + i);
  }
  bed_->Run(10);
  EXPECT_EQ(acks_.size(), 40u);
  // At least a few distinct owners (40 random hashes over 8 nodes).
  std::set<std::string> owners;
  for (const auto& [req, who] : acks_) {
    owners.insert(who);
  }
  EXPECT_GE(owners.size(), 3u);
  // Every key reads back correctly.
  for (uint64_t i = 0; i < 40; ++i) {
    DhtGet(bed_->node((i + 3) % bed_->size()), "key" + std::to_string(i), 2000 + i);
  }
  bed_->Run(10);
  for (uint64_t i = 0; i < 40; ++i) {
    EXPECT_EQ(values_[2000 + i], "val" + std::to_string(i)) << i;
  }
}

}  // namespace
}  // namespace p2
