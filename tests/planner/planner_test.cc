// Planner tests: rule classification and the structure of compiled strands — trigger
// selection, op ordering, stage numbering, volatile-assignment deferral, delta-strand
// generation, and continuous-aggregate classification.

#include <gtest/gtest.h>

#include "src/net/network.h"
#include "src/planner/planner.h"

namespace p2 {
namespace {

class PlannerTest : public ::testing::Test {
 protected:
  PlannerTest() {
    NodeOptions opts;
    opts.introspection = false;
    node_ = net_.AddNode("n1", opts);
  }

  // Parses and plans without installing; returns false + error on failure.
  bool Plan(const std::string& source, std::string* error, Node* node = nullptr) {
    if (node == nullptr) {
      node = node_;
    }
    program_ = std::make_unique<Program>();
    if (!ParseProgram(source, ParamMap(), program_.get(), error)) {
      return false;
    }
    for (const TableSpec& spec : program_->materializations) {
      node->catalog().CreateTable(spec);
    }
    plan_ = PlanResult();
    return PlanProgram(*program_, node, &plan_, error);
  }

  void MustPlan(const std::string& source) {
    std::string error;
    ASSERT_TRUE(Plan(source, &error)) << error;
  }

  // Describes a strand's ops as a compact string, e.g. "J(s1) F A J(s2)".
  static std::string Shape(const Strand& strand) {
    std::string out;
    for (const StrandOp& op : strand.ops()) {
      if (!out.empty()) {
        out += ' ';
      }
      switch (op.kind) {
        case StrandOp::Kind::kJoin:
          out += "J(" + op.pred->name + ")";
          break;
        case StrandOp::Kind::kNotExists:
          out += "N(" + op.pred->name + ")";
          break;
        case StrandOp::Kind::kAssign:
          out += "A(" + *op.var + ")";
          break;
        case StrandOp::Kind::kFilter:
          out += "F";
          break;
      }
    }
    return out;
  }

  Network net_;
  Node* node_;
  std::unique_ptr<Program> program_;
  PlanResult plan_;
};

TEST_F(PlannerTest, EventTriggerWithJoinsInBodyOrder) {
  MustPlan(
      "materialize(t1, infinity, 10, keys(1,2)).\n"
      "materialize(t2, infinity, 10, keys(1,2)).\n"
      "r1 out@N(X, Y, Z) :- ev@N(X), t1@N(Y), t2@N(Z).");
  ASSERT_EQ(plan_.strands.size(), 1u);
  const Strand& s = *plan_.strands[0];
  EXPECT_EQ(s.trigger_name(), "ev");
  EXPECT_EQ(Shape(s), "J(t1) J(t2)");
  EXPECT_EQ(s.num_stages(), 2);
  EXPECT_EQ(s.ops()[0].stage, 1);
  EXPECT_EQ(s.ops()[1].stage, 2);
}

TEST_F(PlannerTest, TriggerMayAppearMidBody) {
  // Paper rule l1: node table, lookup event, bestSucc table.
  MustPlan(
      "materialize(node, infinity, 1, keys(1)).\n"
      "materialize(bestSucc, infinity, 1, keys(1)).\n"
      "l1 res@R(K) :- node@N(NID), lookup@N(K, R, E), bestSucc@N(SID, SA), "
      "K in (NID, SID].");
  ASSERT_EQ(plan_.strands.size(), 1u);
  const Strand& s = *plan_.strands[0];
  EXPECT_EQ(s.trigger_name(), "lookup");
  EXPECT_EQ(Shape(s), "J(node) J(bestSucc) F");
}

TEST_F(PlannerTest, FiltersAndAssignsPlacedWhenBound) {
  MustPlan(
      "materialize(t, infinity, 10, keys(1,2)).\n"
      "r1 out@N(D) :- ev@N(K), K > 1, t@N(F), D := K - F, D > 0.");
  const Strand& s = *plan_.strands[0];
  // K>1 ready immediately; D needs the join.
  EXPECT_EQ(Shape(s), "F J(t) A(D) F");
}

TEST_F(PlannerTest, VolatileAssignsDeferredPastJoins) {
  // Paper cs2: each finger must get its own f_rand() request id.
  MustPlan(
      "materialize(f, infinity, 10, keys(1,2)).\n"
      "cs2 conLookup@N(K, FA, R) :- probe@N(K), R := f_rand(), f@N(FA).");
  EXPECT_EQ(Shape(*plan_.strands[0]), "J(f) A(R)");
}

TEST_F(PlannerTest, PureAssignsStayEarly) {
  MustPlan(
      "materialize(f, infinity, 10, keys(1,2)).\n"
      "r1 out@N(K2, FA) :- probe@N(K), K2 := K + 1, f@N(FA).");
  EXPECT_EQ(Shape(*plan_.strands[0]), "A(K2) J(f)");
}

TEST_F(PlannerTest, NegationsRunLast) {
  MustPlan(
      "materialize(t, infinity, 10, keys(1,2)).\n"
      "materialize(dead, infinity, 10, keys(1,2)).\n"
      "r1 out@N(Y) :- ev@N(X), not dead@N(Y), t@N(Y).");
  EXPECT_EQ(Shape(*plan_.strands[0]), "J(t) N(dead)");
}

TEST_F(PlannerTest, AllMaterializedMakesDeltaStrands) {
  MustPlan(
      "materialize(a, infinity, 10, keys(1,2)).\n"
      "materialize(b, infinity, 10, keys(1,2)).\n"
      "r1 out@N(X, Y) :- a@N(X), b@N(Y).");
  ASSERT_EQ(plan_.strands.size(), 2u);
  EXPECT_EQ(plan_.strands[0]->trigger_name(), "a");
  EXPECT_EQ(Shape(*plan_.strands[0]), "J(b)");
  EXPECT_EQ(plan_.strands[1]->trigger_name(), "b");
  EXPECT_EQ(Shape(*plan_.strands[1]), "J(a)");
}

TEST_F(PlannerTest, AllMaterializedAggregateBecomesContinuous) {
  MustPlan(
      "materialize(a, infinity, 10, keys(1,2)).\n"
      "r1 cnt@N(count<*>) :- a@N(X).");
  EXPECT_TRUE(plan_.strands.empty());
  ASSERT_EQ(plan_.agg_rules.size(), 1u);
  EXPECT_EQ(plan_.agg_rules[0]->BodyTableNames(),
            (std::vector<std::string>{"a"}));
}

TEST_F(PlannerTest, EventAggregateStaysAStrand) {
  MustPlan(
      "materialize(a, infinity, 10, keys(1,2)).\n"
      "r1 cnt@N(K, count<*>) :- q@N(K), a@N(X).");
  EXPECT_EQ(plan_.strands.size(), 1u);
  EXPECT_TRUE(plan_.agg_rules.empty());
}

TEST_F(PlannerTest, PeriodicRegistersTimer) {
  MustPlan("r1 tick@N(E) :- periodic@N(E, 2.5).");
  ASSERT_EQ(plan_.periodics.size(), 1u);
  EXPECT_DOUBLE_EQ(plan_.periodics[0].period, 2.5);
  EXPECT_EQ(plan_.periodics[0].strand, plan_.strands[0].get());
}

TEST_F(PlannerTest, SelfJoinGetsTwoDeltaStrands) {
  MustPlan(
      "materialize(e, infinity, 10, keys(1,2,3)).\n"
      "r1 two@N(A, C) :- e@N(A, B), e@N(B, C).");
  // One delta strand per occurrence of the predicate.
  ASSERT_EQ(plan_.strands.size(), 2u);
  EXPECT_EQ(Shape(*plan_.strands[0]), "J(e)");
  EXPECT_EQ(Shape(*plan_.strands[1]), "J(e)");
}

TEST_F(PlannerTest, KeyCoveredJoinsBecomeProbes) {
  MustPlan(
      "materialize(kv, infinity, 100, keys(1, 2)).\n"
      "materialize(other, infinity, 100, keys(1, 2)).\n"
      "r1 out@N(V) :- q@N(K), kv@N(K, V).\n"       // key (N, K) fully bound: probe
      "r2 out2@N(K) :- q2@N(V), kv@N(K, V).\n"     // K unbound: scan
      "r3 out3@N(V, W) :- q3@N(K), kv@N(K, V), other@N(V, W).");
  ASSERT_EQ(plan_.strands.size(), 3u);
  EXPECT_TRUE(plan_.strands[0]->ops()[0].key_lookup);
  EXPECT_FALSE(plan_.strands[1]->ops()[0].key_lookup);
  // r3: both joins probe — the second one's key (N, V) is bound by the first.
  EXPECT_TRUE(plan_.strands[2]->ops()[0].key_lookup);
  EXPECT_TRUE(plan_.strands[2]->ops()[1].key_lookup);
}

TEST_F(PlannerTest, WholeTupleKeyedTablesAlwaysScan) {
  MustPlan(
      "materialize(log, infinity, 100).\n"  // no keys: whole-tuple key
      "r1 out@N(X) :- q@N(X), log@N(X).");
  EXPECT_FALSE(plan_.strands[0]->ops()[0].key_lookup);
}

TEST_F(PlannerTest, PartiallyBoundJoinsSelectSecondaryIndexes) {
  MustPlan(
      "materialize(kv, infinity, 100, keys(1, 2)).\n"
      "materialize(tag, infinity, 100, keys(1, 2)).\n"
      "r1 out@N(K) :- q@N(V), kv@N(K, V).\n"
      "r2 out2@N(K, V) :- q2@N(K), kv@N(K, V), not tag@N(T, V).");
  // r1: the key (N, K) is not covered, but (N, V) is a bound equality prefix.
  const StrandOp& probe = plan_.strands[0]->ops()[0];
  EXPECT_FALSE(probe.key_lookup);
  EXPECT_TRUE(probe.use_index);
  EXPECT_EQ(probe.probe_positions, (std::vector<size_t>{0, 2}));
  EXPECT_EQ(node_->catalog().Get("kv")->NumIndexes(), 1u);
  // r2: kv fully key-bound wins as an O(1) probe; the negated tag anti-joins
  // through a secondary index on its value column.
  const std::vector<StrandOp>& ops2 = plan_.strands[1]->ops();
  EXPECT_TRUE(ops2[0].key_lookup);
  EXPECT_FALSE(ops2[0].use_index);
  ASSERT_EQ(ops2[1].kind, StrandOp::Kind::kNotExists);
  EXPECT_TRUE(ops2[1].use_index);
  EXPECT_EQ(ops2[1].probe_positions, (std::vector<size_t>{0, 2}));
  EXPECT_EQ(node_->catalog().Get("tag")->NumIndexes(), 1u);
}

TEST_F(PlannerTest, RulesProbingSamePositionsShareOneIndex) {
  MustPlan(
      "materialize(kv, infinity, 100, keys(1, 2)).\n"
      "r1 out@N(K) :- q@N(V), kv@N(K, V).\n"
      "r2 out2@N(K) :- q2@N(V), kv@N(K, V).");
  EXPECT_EQ(plan_.strands[0]->ops()[0].index_id, plan_.strands[1]->ops()[0].index_id);
  EXPECT_EQ(node_->catalog().Get("kv")->NumIndexes(), 1u);
}

TEST_F(PlannerTest, LocationOnlyBindingFallsBackToScan) {
  // Only the location arg is computable: a location-only key has no selectivity on
  // a node-local table, so no index is built.
  MustPlan(
      "materialize(kv, infinity, 100, keys(1, 2)).\n"
      "r1 out@N(K, V) :- tick@N(E), kv@N(K, V).");
  const StrandOp& op = plan_.strands[0]->ops()[0];
  EXPECT_FALSE(op.key_lookup);
  EXPECT_FALSE(op.use_index);
  EXPECT_EQ(node_->catalog().Get("kv")->NumIndexes(), 0u);
}

TEST_F(PlannerTest, VolatileArgsExcludedFromProbeKey) {
  // f_now() would have to be evaluated once to build the probe key but per-row to
  // match scan semantics — so position 3 must stay out of the index.
  MustPlan(
      "materialize(ev, infinity, 100, keys(1, 2)).\n"
      "r1 out@N(K) :- q@N(V), ev@N(K, V, f_now()).");
  const StrandOp& op = plan_.strands[0]->ops()[0];
  EXPECT_TRUE(op.use_index);
  EXPECT_EQ(op.probe_positions, (std::vector<size_t>{0, 2}));
}

TEST_F(PlannerTest, IndexSelectionCanBeDisabledPerNode) {
  NodeOptions opts;
  opts.introspection = false;
  opts.use_join_indexes = false;
  Node* scan_node = net_.AddNode("n2", opts);
  std::string error;
  ASSERT_TRUE(Plan(
      "materialize(kv, infinity, 100, keys(1, 2)).\n"
      "r1 out@N(K) :- q@N(V), kv@N(K, V).",
      &error, scan_node))
      << error;
  const StrandOp& op = plan_.strands[0]->ops()[0];
  EXPECT_FALSE(op.use_index);
  EXPECT_EQ(scan_node->catalog().Get("kv")->NumIndexes(), 0u);
}

TEST_F(PlannerTest, Rejections) {
  std::string error;
  EXPECT_FALSE(Plan("r1 out@N(X) :- e1@N(X), e2@N(X).", &error));
  EXPECT_FALSE(Plan("r2 out@N(X) :- periodic@N(E, 1), e1@N(X).", &error));
  EXPECT_FALSE(Plan("r3 out@N(count<*>, min<X>) :- periodic@N(E, 1).", &error));
  EXPECT_FALSE(Plan("materialize(t, infinity, 10, keys(1,2)).\n"
                    "r4 delete t@N(count<*>) :- e@N(X), t@N(X).",
                    &error));
  EXPECT_FALSE(Plan("r5 out@N(X) :- periodic@N(E, 1), periodic@N(E2, 2).", &error));
  // Volatile assignment feeding a join pattern.
  EXPECT_FALSE(Plan("materialize(t, infinity, 10, keys(1,2)).\n"
                    "r6 out@N(R) :- e@N(X), R := f_rand(), t@N(R).",
                    &error));
  EXPECT_NE(error.find("volatile"), std::string::npos);
}

}  // namespace
}  // namespace p2
