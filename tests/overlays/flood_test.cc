// Epidemic dissemination overlay tests, including the paper's §3.4 generality claim:
// the unchanged snapshot and profiler programs monitor a non-Chord overlay.

#include <gtest/gtest.h>

#include "src/mon/profiler.h"
#include "src/mon/snapshot.h"
#include "src/overlays/flood.h"
#include "src/net/network.h"

namespace p2 {
namespace {

class FloodTest : public ::testing::Test {
 protected:
  FloodTest() : net_(NetworkConfig{0.01, 0.005, 0.0, 11}) {}

  // Builds N flood nodes with no edges yet.
  void Build(int n, FloodConfig config = FloodConfig()) {
    for (int i = 0; i < n; ++i) {
      NodeOptions opts;
      opts.introspection = false;
      opts.seed = 100 + i;
      Node* node = net_.AddNode("f" + std::to_string(i), opts);
      std::string error;
      ASSERT_TRUE(InstallFlood(node, config, &error)) << error;
      nodes_.push_back(node);
    }
  }

  void Edge(int a, int b) {
    AddMember(nodes_[a], nodes_[b]->addr());
    AddMember(nodes_[b], nodes_[a]->addr());
  }

  void Line() {
    for (size_t i = 0; i + 1 < nodes_.size(); ++i) {
      Edge(i, i + 1);
    }
  }

  Network net_;
  std::vector<Node*> nodes_;
};

TEST_F(FloodTest, RumorReachesAllNodesOnALine) {
  Build(8);
  Line();
  net_.RunFor(0.5);
  PublishRumor(nodes_[0], 42, "hello");
  net_.RunFor(3.0);
  for (Node* node : nodes_) {
    EXPECT_TRUE(HasRumor(node, 42)) << node->addr();
  }
  EXPECT_EQ(RumorCoverage(nodes_[0], 42), 8);  // every acceptance acked, incl. origin
}

TEST_F(FloodTest, HopBoundLimitsSpread) {
  FloodConfig config;
  config.max_hops = 3;
  Build(8, config);
  Line();
  net_.RunFor(0.5);
  PublishRumor(nodes_[0], 7, "short-lived");
  net_.RunFor(3.0);
  // Hops: f0 accepts at 0, f1 at 1, f2 at 2, f3 at 3; fl4 requires H < 3 so the copy
  // accepted at hop 3 is not forwarded.
  for (int i = 0; i <= 3; ++i) {
    EXPECT_TRUE(HasRumor(nodes_[i], 7)) << i;
  }
  for (size_t i = 4; i < nodes_.size(); ++i) {
    EXPECT_FALSE(HasRumor(nodes_[i], 7)) << i;
  }
}

TEST_F(FloodTest, DuplicateSuppressionBoundsTraffic) {
  // A dense graph: without the negation guard each copy would re-flood and traffic
  // would explode; with it, forwarding happens once per node.
  Build(6);
  for (size_t i = 0; i < nodes_.size(); ++i) {
    for (size_t j = i + 1; j < nodes_.size(); ++j) {
      Edge(i, j);
    }
  }
  net_.RunFor(0.5);
  uint64_t msgs_before = net_.total_msgs();
  PublishRumor(nodes_[0], 9, "dense");
  net_.RunFor(3.0);
  uint64_t rumor_msgs = net_.total_msgs() - msgs_before;
  // Upper bound: each of 6 nodes forwards its one fresh copy to 5 peers (30 rumor
  // messages) plus the 6 acks (5 remote) plus background pings within the window.
  EXPECT_LE(rumor_msgs, 60u);
  for (Node* node : nodes_) {
    EXPECT_TRUE(HasRumor(node, 9));
  }
}

TEST_F(FloodTest, MultipleRumorsAreIndependent) {
  Build(5);
  Line();
  net_.RunFor(0.5);
  PublishRumor(nodes_[0], 1, "a");
  PublishRumor(nodes_[4], 2, "b");
  net_.RunFor(3.0);
  for (Node* node : nodes_) {
    EXPECT_TRUE(HasRumor(node, 1));
    EXPECT_TRUE(HasRumor(node, 2));
  }
  EXPECT_EQ(RumorCoverage(nodes_[0], 1), 5);
  EXPECT_EQ(RumorCoverage(nodes_[4], 2), 5);
}

TEST_F(FloodTest, CoverageEventsTrackGrowth) {
  Build(4);
  Line();
  net_.RunFor(0.5);
  std::vector<int64_t> counts;
  nodes_[0]->SubscribeEvent("coverage", [&](const TupleRef& t) {
    if (t->field(1) == Value::Id(5)) {
      counts.push_back(t->field(2).ToInt());
    }
  });
  PublishRumor(nodes_[0], 5, "x");
  net_.RunFor(3.0);
  ASSERT_FALSE(counts.empty());
  // Monotone growth ending at full coverage.
  for (size_t i = 1; i < counts.size(); ++i) {
    EXPECT_GE(counts[i], counts[i - 1]);
  }
  EXPECT_EQ(counts.back(), 4);
}

// §3.4 generality: the UNCHANGED Chandy-Lamport snapshot program runs on this
// overlay (it only needs the pingNode/pingReq vocabulary).
TEST_F(FloodTest, UnchangedSnapshotProgramWorksOnFloodOverlay) {
  Build(5);
  Line();
  net_.RunFor(6.0);  // a ping round populates back-pointers
  for (size_t i = 0; i < nodes_.size(); ++i) {
    SnapshotConfig cfg;
    cfg.snap_period = 5.0;
    cfg.initiator = (i == 0);
    cfg.chord_state = false;  // no Chord tables here
    cfg.extra_captures = {{"rumorSeen", 1}, {"member", 1}};
    std::string error;
    ASSERT_TRUE(InstallSnapshot(nodes_[i], cfg, &error)) << error;
  }
  PublishRumor(nodes_[2], 1234, "snapshot me");
  net_.RunFor(20.0);
  for (Node* node : nodes_) {
    EXPECT_GE(LatestDoneSnapshot(node), 1) << node->addr();
    // The captured state includes the rumor's acceptance and the membership edges.
    bool captured_rumor = false;
    for (const TupleRef& t : node->TableContents("snapCap_rumorSeen")) {
      if (t->field(2) == Value::Id(1234)) {
        captured_rumor = true;
      }
    }
    EXPECT_TRUE(captured_rumor) << node->addr();
    EXPECT_GE(node->TableContents("snapCap_member").size(), 1u) << node->addr();
  }
}

// §3.4 generality: the generic execution profiler decomposes rumor-propagation
// latency back to the publish rule, across nodes.
TEST_F(FloodTest, ProfilerDecomposesRumorPropagation) {
  // Fresh network with tracing on.
  Network traced(NetworkConfig{0.01, 0.0, 0.0, 12});
  std::vector<Node*> nodes;
  for (int i = 0; i < 4; ++i) {
    NodeOptions opts;
    opts.introspection = false;
    opts.tracing = true;
    nodes.push_back(traced.AddNode("f" + std::to_string(i), opts));
    std::string error;
    ASSERT_TRUE(InstallFlood(nodes.back(), FloodConfig(), &error)) << error;
    ProfilerConfig prof;
    prof.target_rule = "fl0";  // the publish rule
    ASSERT_TRUE(InstallProfiler(nodes.back(), prof, &error)) << error;
  }
  for (int i = 0; i + 1 < 4; ++i) {
    AddMember(nodes[i], nodes[i + 1]->addr());
    AddMember(nodes[i + 1], nodes[i]->addr());
  }
  traced.RunFor(0.5);
  // Capture the rumor's arrival at the far end.
  TupleRef captured;
  double at = -1;
  nodes[3]->SubscribeEvent("rumorFresh", [&](const TupleRef& t) {
    captured = t;
    at = traced.Now();
  });
  PublishRumor(nodes[0], 77, "trace me");
  traced.RunFor(3.0);
  ASSERT_NE(captured, nullptr);
  std::vector<TupleRef> reports;
  for (Node* node : nodes) {
    node->SubscribeEvent("report", [&](const TupleRef& t) { reports.push_back(t); });
  }
  StartTrace(nodes[3], captured, at);
  traced.RunFor(3.0);
  ASSERT_GE(reports.size(), 1u);
  double net_t = reports[0]->field(3).ToDouble();
  EXPECT_GE(net_t, 0.03 - 1e-9);  // three network hops at >= 10 ms each
}

}  // namespace
}  // namespace p2
