// Causal-chain reconstruction from ruleExec (paper §2.1): follow EffectID ->
// CauseID links backward through a pipelined multi-rule dataflow and check that the
// recovered chain matches the program's known rule graph, that timestamps never
// decrease along a chain, and that tupleTable provenance joins the per-node chains
// across a network hop.

#include <gtest/gtest.h>

#include <map>

#include "src/net/network.h"

namespace p2 {
namespace {

NodeOptions TracingOptions() {
  NodeOptions opts;
  opts.tracing = true;
  opts.introspection = false;
  return opts;
}

// One backward step: the unique event-caused ruleExec row whose EffectID is
// `effect_id`. Trigger edges form the spine of a derivation chain; precondition
// rows for the same effect hang off it.
struct Edge {
  std::string rule;
  uint64_t cause_id = 0;
  double cause_time = 0;
  double out_time = 0;
  bool found = false;
};

Edge TriggerEdgeFor(Node* node, uint64_t effect_id) {
  Edge e;
  for (const TupleRef& t : node->TableContents("ruleExec")) {
    if (t->field(3) == Value::Id(effect_id) && t->field(6) == Value::Bool(true)) {
      EXPECT_FALSE(e.found) << "two trigger edges claim effect id:" << effect_id;
      e.rule = t->field(1).AsString();
      e.cause_id = t->field(2).AsId();
      e.cause_time = t->field(4).AsDouble();
      e.out_time = t->field(5).AsDouble();
      e.found = true;
    }
  }
  return e;
}

class CausalityTest : public ::testing::Test {
 protected:
  CausalityTest() : net_(NetworkConfig{0.01, 0.0, 0.0, 42}) {
    node_ = net_.AddNode("n1", TracingOptions());
  }

  void Load(Node* node, const std::string& program) {
    std::string error;
    ASSERT_TRUE(node->LoadProgram(program, &error)) << error;
  }

  Network net_;
  Node* node_;
};

// a -> r1 -> b -> r2 -> c -> r3 -> d, two concurrent instances: walking backward
// from each d must recover exactly [r3, r2, r1], land on the instance's own a, and
// never cross into the other instance's chain (the pipelined records stay separate).
TEST_F(CausalityTest, ThreeRuleChainReconstructsPerInstance) {
  Load(node_,
       "r1 b@N(X) :- a@N(X).\n"
       "r2 c@N(X) :- b@N(X).\n"
       "r3 d@N(X) :- c@N(X).");
  node_->InjectEvent(Tuple::Make("a", {Value::Str("n1"), Value::Int(7)}));
  node_->InjectEvent(Tuple::Make("a", {Value::Str("n1"), Value::Int(8)}));
  net_.RunFor(0.5);
  for (int x : {7, 8}) {
    uint64_t id = node_->store().Intern(
        Tuple::Make("d", {Value::Str("n1"), Value::Int(x)}));
    const char* expect_rule[] = {"r3", "r2", "r1"};
    const char* expect_cause[] = {"c", "b", "a"};
    double downstream_cause_time = 0;
    bool have_downstream = false;
    for (int step = 0; step < 3; ++step) {
      Edge e = TriggerEdgeFor(node_, id);
      ASSERT_TRUE(e.found) << "no trigger edge for step " << step << " of x=" << x;
      EXPECT_EQ(e.rule, expect_rule[step]);
      EXPECT_LE(e.cause_time, e.out_time);
      if (have_downstream) {
        EXPECT_LE(e.out_time, downstream_cause_time)
            << "time decreased walking forward from " << e.rule;
      }
      downstream_cause_time = e.cause_time;
      have_downstream = true;
      TupleRef cause = node_->store().Lookup(e.cause_id);
      ASSERT_NE(cause, nullptr);
      EXPECT_EQ(cause->name(), expect_cause[step]);
      EXPECT_EQ(cause->field(1), Value::Int(x)) << "chains cross-contaminated";
      id = e.cause_id;
    }
  }
}

// A join mid-chain: the chain spine still reconstructs through the event edges,
// and the join's precondition appears as a sibling row sharing the effect id.
TEST_F(CausalityTest, JoinPreconditionHangsOffTheSpine) {
  Load(node_,
       "materialize(w, infinity, 10, keys(1,2)).\n"
       "r1 b@N(X) :- a@N(X).\n"
       "r2 c@N(X, Z) :- b@N(X), w@N(Z).");
  node_->InjectEvent(Tuple::Make("w", {Value::Str("n1"), Value::Int(99)}));
  net_.RunFor(0.1);
  node_->InjectEvent(Tuple::Make("a", {Value::Str("n1"), Value::Int(4)}));
  net_.RunFor(0.5);
  uint64_t c_id = node_->store().Intern(
      Tuple::Make("c", {Value::Str("n1"), Value::Int(4), Value::Int(99)}));
  Edge r2 = TriggerEdgeFor(node_, c_id);
  ASSERT_TRUE(r2.found);
  EXPECT_EQ(r2.rule, "r2");
  // Sibling precondition row: same effect, is_event false, cause resolves to w.
  int prec_rows = 0;
  for (const TupleRef& t : node_->TableContents("ruleExec")) {
    if (t->field(3) == Value::Id(c_id) && t->field(6) == Value::Bool(false)) {
      ++prec_rows;
      TupleRef cause = node_->store().Lookup(t->field(2).AsId());
      ASSERT_NE(cause, nullptr);
      EXPECT_EQ(cause->name(), "w");
    }
  }
  EXPECT_EQ(prec_rows, 1);
  // The spine continues through b back to a.
  Edge r1 = TriggerEdgeFor(node_, r2.cause_id);
  ASSERT_TRUE(r1.found);
  EXPECT_EQ(r1.rule, "r1");
  TupleRef root = node_->store().Lookup(r1.cause_id);
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->name(), "a");
}

// The chain crosses a network hop: the receiver's backward walk bottoms out at its
// local copy of the carried tuple, whose tupleTable row names the sender and the
// sender's id for it — and that id is exactly the effect of the sender's last rule,
// joining the two per-node chains into one distributed derivation.
TEST_F(CausalityTest, CrossNodeChainJoinsViaTupleTable) {
  Node* remote = net_.AddNode("n2", TracingOptions());
  Load(node_,
       "r1 b@N(Other, X) :- a@N(Other, X).\n"
       "r2 hop@Other(NAddr, X) :- b@NAddr(Other, X).");
  Load(remote, "r3 e@N(From, X) :- hop@N(From, X).");
  node_->InjectEvent(Tuple::Make(
      "a", {Value::Str("n1"), Value::Str("n2"), Value::Int(6)}));
  net_.RunFor(1.0);

  // Receiver side: e(n2, n1, 6) <- r3 <- hop(n2, n1, 6).
  uint64_t e_id = remote->store().Intern(Tuple::Make(
      "e", {Value::Str("n2"), Value::Str("n1"), Value::Int(6)}));
  Edge r3 = TriggerEdgeFor(remote, e_id);
  ASSERT_TRUE(r3.found);
  EXPECT_EQ(r3.rule, "r3");
  TupleRef hop = remote->store().Lookup(r3.cause_id);
  ASSERT_NE(hop, nullptr);
  EXPECT_EQ(hop->name(), "hop");

  // The provenance link for the local hop copy names n1 and n1's id for it.
  uint64_t src_id = 0;
  bool linked = false;
  for (const TupleRef& t : remote->TableContents("tupleTable")) {
    if (t->field(1) == Value::Id(r3.cause_id)) {
      linked = true;
      EXPECT_EQ(t->field(2), Value::Str("n1"));
      src_id = t->field(3).AsId();
    }
  }
  ASSERT_TRUE(linked) << "no tupleTable row for the received hop tuple";

  // Sender side: that id is r2's effect; the walk continues b <- r1 <- a.
  TupleRef origin = node_->store().Lookup(src_id);
  ASSERT_NE(origin, nullptr);
  EXPECT_EQ(*origin, *hop) << "provenance link content mismatch";
  Edge r2 = TriggerEdgeFor(node_, src_id);
  ASSERT_TRUE(r2.found);
  EXPECT_EQ(r2.rule, "r2");
  Edge r1 = TriggerEdgeFor(node_, r2.cause_id);
  ASSERT_TRUE(r1.found);
  EXPECT_EQ(r1.rule, "r1");
  TupleRef root = node_->store().Lookup(r1.cause_id);
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->name(), "a");
  EXPECT_EQ(root->field(2), Value::Int(6));
}

}  // namespace
}  // namespace p2
