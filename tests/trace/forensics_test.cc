// Bounded log-structured trace retention + cross-node causal replay
// (docs/OBSERVABILITY.md "Forensics & time-travel queries").
//
// Covers the ForensicsStore lifecycle (segment sealing, whole-segment budget
// compaction, the contiguous-window contract), the time-travel query path on
// p2::Fleet — including the headline capability: answering ReplayChains for a
// window whose live ruleExec rows have already expired, cross-node hops included —
// shard-count invariance of the JSONL chain export, retention-vs-live digest
// agreement (the simfuzz retention-consistency oracle's real-fleet footing), and
// the 64-node monitored-Chord budget acceptance run.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/chord/chord.h"
#include "src/net/fleet.h"
#include "src/simtest/oracles.h"
#include "src/trace/forensics.h"
#include "src/trace/replay.h"

namespace p2 {
namespace {

TupleRef T(const std::string& name, int x) {
  return Tuple::Make(name, {Value::Str("n1"), Value::Int(x)});
}

ForensicsOptions SmallSegments() {
  ForensicsOptions opts;
  opts.enabled = true;
  opts.segment_records = 4;
  opts.segment_span = 100.0;  // seal by record count only
  opts.budget_bytes = 1u << 20;
  return opts;
}

// --- ForensicsStore unit surface -------------------------------------------------

TEST(ForensicsStoreTest, SegmentsSealByRecordCountAndStatsTrack) {
  ForensicsStore store("n1", SmallSegments());
  for (int i = 0; i < 10; ++i) {
    store.RecordExec("r1", 100 + i, T("a", i), 200 + i, T("b", i),
                     /*cause_time=*/i * 1.0, /*out_time=*/i * 1.0,
                     /*is_event=*/true, /*now=*/i * 1.0);
  }
  ForensicsStats s = store.Stats();
  EXPECT_EQ(s.records, 10u);
  EXPECT_GE(s.segments, 3u);  // 4 + 4 + 2 at segment_records=4
  EXPECT_EQ(s.dropped_segments, 0u);
  EXPECT_GT(s.bytes, 0u);
  EXPECT_DOUBLE_EQ(s.oldest_time, 0.0);
  EXPECT_TRUE(store.Covers(0.0));
}

TEST(ForensicsStoreTest, QueriesAnswerFromRetainedSegments) {
  ForensicsStore store("n1", SmallSegments());
  // Two-step chain a -> r1 -> b -> r2 -> c plus a join precondition w on r2.
  store.RecordExec("r1", 1, T("a", 7), 2, T("b", 7), 1.0, 1.0, true, 1.0);
  store.RecordExec("r2", 2, T("b", 7), 3, T("c", 7), 1.0, 2.0, true, 2.0);
  store.RecordExec("r2", 9, T("w", 99), 3, T("c", 7), 0.5, 2.0, false, 2.0);

  ExecEdge e = store.TriggerEdge(3, 10.0);
  ASSERT_TRUE(e.found);
  EXPECT_EQ(e.rule, "r2");
  EXPECT_EQ(e.cause_id, 2u);
  EXPECT_TRUE(e.is_event);
  // The bound threads downward: asking before r2's out_time finds nothing.
  EXPECT_FALSE(store.TriggerEdge(3, 1.5).found);

  std::vector<ExecEdge> pre = store.Preconditions(3, 2.0);
  ASSERT_EQ(pre.size(), 1u);
  EXPECT_EQ(pre[0].cause_id, 9u);
  EXPECT_FALSE(pre[0].is_event);

  TupleRef w = store.TupleById(9);
  ASSERT_NE(w, nullptr);
  EXPECT_EQ(w->name(), "w");
  EXPECT_EQ(w->field(1), Value::Int(99));

  // FindHeads honors the key syntax and the window.
  EXPECT_EQ(store.FindHeads("*", 0, 10).size(), 2u);  // ids 2 and 3
  ASSERT_EQ(store.FindHeads("c", 0, 10).size(), 1u);
  EXPECT_EQ(store.FindHeads("c", 0, 10)[0].first, 3u);
  // "name/firstarg" keys on field 1, the first argument after the location.
  EXPECT_EQ(store.FindHeads("c/7", 0, 10).size(), 1u);
  EXPECT_EQ(store.FindHeads("c/zzz", 0, 10).size(), 0u);
  EXPECT_EQ(store.FindHeads("c", 0, 1.5).size(), 0u);
}

TEST(ForensicsStoreTest, BudgetCompactionDropsWholeColdSegments) {
  ForensicsOptions opts = SmallSegments();
  opts.budget_bytes = 2048;  // a handful of 4-record segments
  ForensicsStore store("n1", opts);
  for (int i = 0; i < 200; ++i) {
    store.RecordExec("r1", 1000 + i, T("a", i), 2000 + i, T("b", i), i * 0.1, i * 0.1,
                     true, i * 0.1);
  }
  store.Compact(20.0);
  ForensicsStats s = store.Stats();
  EXPECT_GT(s.dropped_segments, 0u);
  EXPECT_LE(s.bytes, opts.budget_bytes);
  EXPECT_GT(s.oldest_time, 0.0);
  // The retained window is contiguous: covered from oldest_time, not before.
  EXPECT_FALSE(store.Covers(0.0));
  EXPECT_TRUE(store.Covers(s.oldest_time));
  // Records inside the dropped prefix are gone; retained ones still answer.
  EXPECT_FALSE(store.TriggerEdge(2000, 100.0).found);        // oldest, dropped
  EXPECT_TRUE(store.TriggerEdge(2000 + 199, 100.0).found);   // newest, retained
  EXPECT_EQ(store.TupleById(1000), nullptr);
  ASSERT_NE(store.TupleById(1000 + 199), nullptr);
}

TEST(ForensicsStoreTest, AgeBoundDropsOldSegmentsEvenUnderByteBudget) {
  ForensicsOptions opts = SmallSegments();
  opts.max_age = 5.0;
  ForensicsStore store("n1", opts);
  for (int i = 0; i < 20; ++i) {
    store.RecordExec("r1", 100 + i, T("a", i), 200 + i, T("b", i), i * 1.0, i * 1.0,
                     true, i * 1.0);
  }
  store.Compact(/*now=*/19.0);
  ForensicsStats s = store.Stats();
  EXPECT_GT(s.dropped_segments, 0u);
  EXPECT_GE(s.oldest_time, 19.0 - 5.0 - 4.0);  // segment granularity slack
}

// --- time-travel queries on a fleet ---------------------------------------------

const char* kSenderRules =
    "r1 b@N(Other, X) :- a@N(Other, X).\n"
    "r2 hop@Other(NAddr, X) :- b@NAddr(Other, X).";
const char* kReceiverRule = "r3 e@N(From, X) :- hop@N(From, X).";

FleetConfig ForensicsFleetConfig(int shards) {
  FleetConfig cfg;
  cfg.seed = 42;
  cfg.shards = shards;
  cfg.node_defaults.tracing = true;
  cfg.node_defaults.forensics.enabled = true;
  return cfg;
}

// The headline acceptance: the live ruleExec rows for the queried window have
// expired, yet ReplayChains still reconstructs the full cross-node chain from the
// retention stores.
TEST(ForensicsReplayTest, AnswersAfterLiveRuleExecExpiry) {
  FleetConfig cfg = ForensicsFleetConfig(1);
  cfg.node_defaults.rule_exec_lifetime = 2.0;
  Fleet fleet(cfg);
  NodeHandle n1 = fleet.AddNode("n1");
  NodeHandle n2 = fleet.AddNode("n2");
  ASSERT_TRUE(n1.Load(kSenderRules));
  ASSERT_TRUE(n2.Load(kReceiverRule));
  n1.Inject(Tuple::Make("a", {Value::Str("n1"), Value::Str("n2"), Value::Int(6)}));
  fleet.RunFor(0.5);
  ASSERT_GT(n2.Count("ruleExec"), 0u) << "trace rows should be live pre-expiry";

  // Outlive the soft state: every trace row from the event is expired and swept.
  fleet.RunFor(9.5);
  EXPECT_EQ(n1.Count("ruleExec"), 0u);
  EXPECT_EQ(n2.Count("ruleExec"), 0u);
  EXPECT_EQ(n2.Count("tupleTable"), 0u);

  std::vector<CausalChain> chains = n2.ReplayChains("e", 0, 1);
  ASSERT_EQ(chains.size(), 1u);
  const CausalChain& c = chains[0];
  EXPECT_EQ(c.node, "n2");
  EXPECT_EQ(c.head_text, "e(n2, n1, 6)");
  EXPECT_FALSE(c.truncated);
  ASSERT_EQ(c.steps.size(), 3u);
  EXPECT_EQ(c.steps[0].rule, "r3");
  EXPECT_EQ(c.steps[0].node, "n2");
  EXPECT_FALSE(c.steps[0].hop);
  EXPECT_EQ(c.steps[1].rule, "r2");
  EXPECT_EQ(c.steps[1].node, "n1");
  EXPECT_TRUE(c.steps[1].hop) << "cross-node provenance hop not stitched";
  EXPECT_EQ(c.steps[2].rule, "r1");
  EXPECT_EQ(c.steps[2].cause_text, "a(n1, n2, 6)");
  // An empty-window query past the retained history is answerable and empty.
  EXPECT_TRUE(n2.ReplayChains("nosuch", 0, 1).empty());
}

// The JSONL chain export is bit-identical at any shard count (tuple-ID interning
// order is shard-invariant, docs/SCALING.md; the walk is canonically ordered).
std::string ChainExportAtShards(int shards) {
  Fleet fleet(ForensicsFleetConfig(shards));
  std::vector<NodeHandle> nodes;
  for (int i = 0; i < 4; ++i) {
    nodes.push_back(fleet.AddNode("n" + std::to_string(i)));
  }
  for (NodeHandle& n : nodes) {
    std::string program = std::string(kSenderRules) + "\n" + kReceiverRule;
    EXPECT_TRUE(n.Load(program));
  }
  for (int i = 0; i < 4; ++i) {
    nodes[i].Inject(Tuple::Make(
        "a", {Value::Str("n" + std::to_string(i)),
              Value::Str("n" + std::to_string((i + 1) % 4)), Value::Int(10 + i)}));
  }
  fleet.RunFor(2.0);
  std::string out;
  for (NodeHandle& n : fleet.Handles()) {
    out += ExportChainsJsonl(n.ReplayChains("*", 0, 2.0));
  }
  return out;
}

TEST(ForensicsReplayTest, ChainExportBitIdenticalAcrossShardCounts) {
  std::string k1 = ChainExportAtShards(1);
  ASSERT_FALSE(k1.empty());
  EXPECT_NE(k1.find("\"hop\":true"), std::string::npos)
      << "export should contain cross-node hops";
  EXPECT_EQ(k1, ChainExportAtShards(2));
  EXPECT_EQ(k1, ChainExportAtShards(4));
}

// Real-fleet footing for the simfuzz retention-consistency oracle: on a fleet that
// lost no history, ObserveFleet arms the comparison and both digests agree.
TEST(ForensicsReplayTest, ObserveFleetArmsRetentionComparison) {
  Fleet fleet(ForensicsFleetConfig(1));
  NodeHandle n1 = fleet.AddNode("n1");
  NodeHandle n2 = fleet.AddNode("n2");
  ASSERT_TRUE(n1.Load(kSenderRules));
  ASSERT_TRUE(n2.Load(kReceiverRule));
  n1.Inject(Tuple::Make("a", {Value::Str("n1"), Value::Str("n2"), Value::Int(6)}));
  fleet.RunFor(1.0);
  simtest::FleetObservation obs = simtest::ObserveFleet(&fleet.network(), {});
  ASSERT_TRUE(obs.forensics_comparable) << "nothing expired or dropped in 1s";
  ASSERT_EQ(obs.nodes.size(), 2u);
  for (const simtest::NodeObs& n : obs.nodes) {
    EXPECT_TRUE(n.forensics_enabled);
    EXPECT_FALSE(n.live_chain_digest.empty());
    EXPECT_EQ(n.live_chain_digest, n.replay_chain_digest) << n.addr;
  }
  std::vector<simtest::Violation> violations;
  simtest::RunOracles(simtest::BuiltinOracles(), obs, &violations);
  for (const simtest::Violation& v : violations) {
    EXPECT_NE(v.oracle, "retention-consistency") << v.detail;
  }
}

// --- the 64-node monitored-Chord acceptance run ----------------------------------

// A 64-node Chord fleet under a per-node retention budget: the stores stay within
// budget (checked through sysForensicsStat, the engine's own introspection surface),
// and a time-travel query for a window whose live trace rows have expired still
// reconstructs chains, cross-node hops included.
TEST(ForensicsChordTest, SixtyFourNodeBudgetedRetentionAnswersExpiredWindow) {
  FleetConfig cfg;
  cfg.seed = 11;
  cfg.node_defaults.tracing = true;
  cfg.node_defaults.rule_exec_lifetime = 4.0;
  cfg.node_defaults.forensics.enabled = true;
  cfg.node_defaults.forensics.budget_bytes = 256u << 10;
  cfg.node_defaults.forensics.segment_records = 256;
  cfg.node_defaults.forensics.segment_span = 2.0;
  Fleet fleet(cfg);
  std::vector<NodeHandle> nodes;
  for (int i = 0; i < 64; ++i) {
    nodes.push_back(fleet.AddNode("n" + std::to_string(i)));
  }
  for (int i = 0; i < 64; ++i) {
    ChordConfig chord;
    chord.landmark = i == 0 ? "" : "n0";
    std::string error;
    ASSERT_TRUE(nodes[i].Install(
        [&chord](Node* n, std::string* e) { return InstallChord(n, chord, e); },
        &error))
        << error;
  }
  fleet.RunFor(15.0);

  // Budget acceptance, via the sysForensicsStat mirror.
  for (NodeHandle& n : fleet.Handles()) {
    std::vector<TupleRef> rows = n.Query("sysForensicsStat");
    ASSERT_EQ(rows.size(), 1u) << n.addr();
    const TupleRef& row = rows[0];
    EXPECT_EQ(row->field(0), Value::Str(n.addr()));
    EXPECT_GT(row->field(2).AsInt(), 0) << "no records retained on " << n.addr();
    EXPECT_LE(row->field(3).AsInt(),
              static_cast<int64_t>(cfg.node_defaults.forensics.budget_bytes))
        << "retention over budget on " << n.addr();
  }

  // The queried window [1, 3] is beyond the live soft state at t=15
  // (rule_exec_lifetime=4): no surviving live row can answer for it.
  for (const TupleRef& t : nodes[1].Query("ruleExec")) {
    EXPECT_GT(t->field(5).AsDouble(), 3.0);
  }

  size_t total_chains = 0;
  size_t hop_steps = 0;
  for (NodeHandle& n : fleet.Handles()) {
    for (const CausalChain& c : n.ReplayChains("*", 1.0, 3.0)) {
      ++total_chains;
      for (const CausalStep& s : c.steps) {
        hop_steps += s.hop ? 1 : 0;
      }
    }
  }
  EXPECT_GT(total_chains, 0u) << "no chains replayed for the expired window";
  EXPECT_GT(hop_steps, 0u) << "join-phase chains should cross nodes";
}

}  // namespace
}  // namespace p2
