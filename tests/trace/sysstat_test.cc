// The telemetry introspection tables (sysStat / sysRuleStat / sysTableStat): refresh
// on sweeps, joinability from OverLog (including through the olgrun scenario path),
// and the sweep-granularity staleness contract documented in src/trace/introspect.h.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "src/net/network.h"
#include "src/tools/scenario.h"

namespace p2 {
namespace {

class SysStatTest : public ::testing::Test {
 protected:
  SysStatTest() : net_(NetworkConfig{0.01, 0.0, 0.0, 42}) {
    NodeOptions opts;
    opts.introspection = true;
    node_ = net_.AddNode("n1", opts);
  }

  void Load(const std::string& program) {
    std::string error;
    ASSERT_TRUE(node_->LoadProgram(program, &error)) << error;
  }

  // Field `field` of the sysRuleStat row for `rule`; -1 when the row is absent.
  int64_t RuleStatField(const std::string& rule, int field) {
    for (const TupleRef& t : node_->TableContents("sysRuleStat")) {
      if (t->field(1) == Value::Str(rule)) {
        return t->field(field).AsInt();
      }
    }
    return -1;
  }

  // Value of the sysStat row `name`; -1 when absent.
  int64_t Stat(const std::string& name) {
    for (const TupleRef& t : node_->TableContents("sysStat")) {
      if (t->field(1) == Value::Str(name)) {
        return t->field(2).AsInt();
      }
    }
    return -1;
  }

  Network net_;
  Node* node_;
};

TEST_F(SysStatTest, SysStatPopulatesOnFirstSweep) {
  EXPECT_TRUE(node_->TableContents("sysStat").empty());  // nothing before a sweep
  net_.RunFor(1.2);                                      // sweep at t=1
  EXPECT_GE(node_->TableContents("sysStat").size(), 10u);
  EXPECT_GE(Stat("busy_ns"), 0);
  EXPECT_GE(Stat("strand_triggers"), 0);
  EXPECT_EQ(Stat("decode_errors"), 0);
}

// Satellite (docs/ROBUSTNESS.md): the queue high-water mark and the overload
// admission/shed counters are part of the sysStat surface, queryable from OverLog
// like any other telemetry row.
TEST_F(SysStatTest, QueueHwmAndOverloadCountersAreSysStatRows) {
  Load("materialize(item, infinity, 100, keys(1,2)).\n"
       "r1 out@N(X) :- kick@N(), item@N(X).");
  for (int i = 0; i < 5; ++i) {
    node_->InjectEvent(Tuple::Make("item", {Value::Str("n1"), Value::Int(i)}));
  }
  node_->InjectEvent(Tuple::Make("kick", {Value::Str("n1")}));
  net_.RunFor(1.2);
  EXPECT_GE(Stat("queue_hwm"), 5) << "the fan-out cascade must register in the hwm";
  // The overload surface: present with limits off, and all-zero shedding.
  EXPECT_GE(Stat("admitted_besteffort"), 6);
  EXPECT_EQ(Stat("shed_besteffort"), 0);
  EXPECT_EQ(Stat("shed_low"), 0);
  EXPECT_EQ(Stat("shed_reliable"), 0);
  EXPECT_GE(Stat("be_queue_hwm"), 5);
  EXPECT_EQ(Stat("degraded"), 0);
  EXPECT_EQ(Stat("degrade_enters"), 0);
}

TEST_F(SysStatTest, SysOverloadStatReflectsShedding) {
  NodeOptions opts;
  opts.introspection = true;
  opts.queue_cap = 2;
  Node* capped = net_.AddNode("n2", opts);
  std::string error;
  ASSERT_TRUE(capped->LoadProgram("materialize(item, infinity, 100, keys(1,2)).\n"
                                  "r1 out@N(X) :- kick@N(), item@N(X).",
                                  &error))
      << error;
  for (int i = 0; i < 6; ++i) {
    capped->InjectEvent(Tuple::Make("item", {Value::Str("n2"), Value::Int(i)}));
  }
  capped->InjectEvent(Tuple::Make("kick", {Value::Str("n2")}));
  net_.RunFor(1.2);
  // sysOverloadStat(NAddr, Class, Admitted, Shed, QueueDepth, InFlight, Degraded)
  bool saw = false;
  for (const TupleRef& t : capped->TableContents("sysOverloadStat")) {
    if (t->field(1) == Value::Str("besteffort")) {
      saw = true;
      EXPECT_EQ(t->field(3).AsInt(), 4);  // 6 offered - 2 admitted
      EXPECT_EQ(t->field(6).AsInt(), 0);
    }
  }
  EXPECT_TRUE(saw) << "shedding must surface in sysOverloadStat";
}

TEST_F(SysStatTest, SysRuleStatReflectsExecsBusyEmits) {
  Load("r1 out@N(X) :- in@N(X).");
  for (int i = 0; i < 5; ++i) {
    node_->InjectEvent(Tuple::Make("in", {Value::Str("n1"), Value::Int(i)}));
  }
  net_.RunFor(1.2);
  EXPECT_EQ(RuleStatField("r1", 2), 5);  // execs
  EXPECT_GT(RuleStatField("r1", 3), 0);  // busy_ns
  EXPECT_EQ(RuleStatField("r1", 4), 5);  // emits
}

TEST_F(SysStatTest, SysTableStatAndTuplesExpiredCountExpiry) {
  Load("materialize(s, 2, 100, keys(1,2)).");  // 2 s lifetime
  for (int i = 0; i < 3; ++i) {
    node_->InjectEvent(Tuple::Make("s", {Value::Str("n1"), Value::Int(i)}));
  }
  net_.RunFor(4.5);  // rows age out by t=2.x; sweeps at 3 and 4 publish the counts
  bool found = false;
  for (const TupleRef& t : node_->TableContents("sysTableStat")) {
    if (t->field(1) == Value::Str("s")) {
      found = true;
      EXPECT_EQ(t->field(2), Value::Int(3));  // inserts
      EXPECT_EQ(t->field(3), Value::Int(3));  // expires
      EXPECT_EQ(t->field(4), Value::Int(0));  // deletes
    }
  }
  EXPECT_TRUE(found);
  // Satellite counter: sweep-purged soft state surfaces node-wide via sysStat.
  EXPECT_GE(Stat("tuples_expired"), 3);
}

// The staleness contract from src/trace/introspect.h: sys* rows reflect the state as
// of the last sweep, not the live counters. A reader between sweeps sees the previous
// sweep's values; the next sweep catches up. This pins the documented behaviour so a
// future "refresh at lookup" change has to update the docs too.
TEST_F(SysStatTest, RowsAreSweepGranular) {
  Load("r1 out@N(X) :- in@N(X).");
  for (int i = 0; i < 2; ++i) {
    node_->InjectEvent(Tuple::Make("in", {Value::Str("n1"), Value::Int(i)}));
  }
  net_.RunFor(1.2);  // sweep at t=1 publishes execs=2
  ASSERT_EQ(RuleStatField("r1", 2), 2);

  for (int i = 0; i < 3; ++i) {
    node_->InjectEvent(Tuple::Make("in", {Value::Str("n1"), Value::Int(10 + i)}));
  }
  net_.RunFor(0.5);  // now t=1.7: the three new executions happened...
  EXPECT_EQ(node_->metrics().rules().at("r1")->execs, 5u);
  EXPECT_EQ(RuleStatField("r1", 2), 2);  // ...but the table is still the t=1 view

  net_.RunFor(0.5);  // t=2.2: the sweep at t=2 catches the table up
  EXPECT_EQ(RuleStatField("r1", 2), 5);
}

TEST_F(SysStatTest, SysIndexStatReportsProbesPerIndex) {
  // r1 binds (N, V) — not the primary key — so the planner builds a secondary
  // index on positions {0, 2} and every q event probes it.
  Load(
      "materialize(kv, infinity, 100, keys(1,2)).\n"
      "r1 out@N(K) :- q@N(V), kv@N(K, V).");
  for (int i = 0; i < 4; ++i) {
    node_->InjectEvent(
        Tuple::Make("kv", {Value::Str("n1"), Value::Int(i), Value::Int(i % 2)}));
  }
  net_.RunFor(0.1);
  for (int i = 0; i < 6; ++i) {
    node_->InjectEvent(Tuple::Make("q", {Value::Str("n1"), Value::Int(i % 2)}));
  }
  net_.RunFor(1.2);  // sweep at t=1 publishes the index stats
  bool found = false;
  for (const TupleRef& t : node_->TableContents("sysIndexStat")) {
    if (t->field(1) == Value::Str("kv")) {
      found = true;
      EXPECT_EQ(t->field(2), Value::Str("0,2"));          // indexed positions
      EXPECT_EQ(t->field(3).AsInt(), 6);                  // one probe per q
      EXPECT_DOUBLE_EQ(t->field(4).AsDouble(), 2.0);      // two matches each
    }
  }
  EXPECT_TRUE(found);
  // The same activity shows up per-rule in the metrics registry.
  EXPECT_EQ(node_->metrics().rules().at("r1")->join_probe_rows, 12u);
  EXPECT_EQ(node_->metrics().rules().at("r1")->join_scan_rows, 0u);
}

TEST_F(SysStatTest, UnloadRemovesRuleRowsAndMetrics) {
  Load("r1 out@N(X) :- in@N(X).");
  node_->InjectEvent(Tuple::Make("in", {Value::Str("n1"), Value::Int(1)}));
  net_.RunFor(1.2);
  ASSERT_EQ(RuleStatField("r1", 2), 1);

  ASSERT_TRUE(node_->UnloadProgram(node_->last_program_id()));
  EXPECT_EQ(node_->metrics().rules().count("r1"), 0u);
  EXPECT_EQ(RuleStatField("r1", 2), -1);  // rows gone immediately, not next sweep
  net_.RunFor(1.0);
  EXPECT_EQ(RuleStatField("r1", 2), -1);  // and they don't come back
}

TEST_F(SysStatTest, DisabledIntrospectionCreatesNoStatTables) {
  NodeOptions opts;
  opts.introspection = false;
  Node* quiet = net_.AddNode("n2", opts);
  EXPECT_FALSE(quiet->catalog().IsMaterialized("sysStat"));
  EXPECT_FALSE(quiet->catalog().IsMaterialized("sysRuleStat"));
  EXPECT_FALSE(quiet->catalog().IsMaterialized("sysTableStat"));
}

TEST_F(SysStatTest, JoinableFromOverLog) {
  // A monitoring rule joining two telemetry tables: per-rule busy time against the
  // node-wide total (the self_monitor example's core join).
  Load("materialize(share, infinity, 100, keys(1,2)).\n"
       "r1 out@N(X) :- in@N(X).\n"
       "mon1 share@N(Rule, Busy, Total) :- periodic@N(E, 1),\n"
       "    sysRuleStat@N(Rule, Execs, Busy, Emits),\n"
       "    sysStat@N(\"busy_ns\", Total), Rule == \"r1\".");
  for (int i = 0; i < 3; ++i) {
    node_->InjectEvent(Tuple::Make("in", {Value::Str("n1"), Value::Int(i)}));
  }
  net_.RunFor(3.5);
  std::vector<TupleRef> rows = node_->TableContents("share");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0]->field(1), Value::Str("r1"));
  EXPECT_GT(rows[0]->field(2).AsInt(), 0);                        // rule busy
  EXPECT_GE(rows[0]->field(3).AsInt(), rows[0]->field(2).AsInt());  // <= node total
}

// End-to-end through the olgrun path: a scenario file installs a rule plus a monitor
// joining sysRuleStat, the monitor fires once the rule crosses an execution-count and
// busy-time threshold, and the `metrics` directive streams JSONL alongside.
TEST(SysStatScenarioTest, OlgrunScenarioJoinFiresOnRuleBusyThreshold) {
  std::string metrics_path = ::testing::TempDir() + "/sysstat_scn_metrics.jsonl";
  std::string scn_path = ::testing::TempDir() + "/sysstat_selfmon.scn";
  {
    std::ofstream f(scn_path);
    ASSERT_TRUE(f.is_open());
    f << "net latency=0.01 jitter=0.0 loss=0.0 seed=7\n";
    f << "metrics " << metrics_path << "\n";
    f << "node n1\n";
    f << "inline n1 materialize(busyAlert, infinity, 100, keys(1,2)).\n";
    f << "inline n1 r1 pong@N(X) :- ping@N(X).\n";
    f << "inline n1 mon1 busyAlert@N(Rule, Execs) :- periodic@N(E, 1), "
         "sysRuleStat@N(Rule, Execs, Busy, Emits), Rule == \"r1\", Execs > 3, "
         "Busy > 0.\n";
    for (int i = 1; i <= 5; ++i) {
      f << "inject n1 ping(n1, " << i << ")\n";
    }
    f << "run 4\n";
    f << "expect n1 busyAlert 1\n";  // keyed (N, Rule): refires replace, one row
  }
  std::string error;
  EXPECT_TRUE(RunScenarioFile(scn_path, &error)) << error;

  // The metrics directive streamed per-sweep JSONL snapshots mentioning the rule.
  std::ifstream mf(metrics_path);
  ASSERT_TRUE(mf.is_open());
  std::stringstream content;
  content << mf.rdbuf();
  EXPECT_NE(content.str().find("\"node\":\"n1\""), std::string::npos);
  EXPECT_NE(content.str().find("\"r1\":{\"execs\":5"), std::string::npos);
}

}  // namespace
}  // namespace p2
