// Introspection tables (paper §2.1): rules, tables, and dataflow elements reflected as
// queryable state — including querying them from OverLog itself.

#include <gtest/gtest.h>

#include "src/net/network.h"

namespace p2 {
namespace {

class IntrospectTest : public ::testing::Test {
 protected:
  IntrospectTest() : net_(NetworkConfig{0.01, 0.0, 0.0, 42}) {
    NodeOptions opts;
    opts.introspection = true;
    node_ = net_.AddNode("n1", opts);
  }

  void Load(const std::string& program) {
    std::string error;
    ASSERT_TRUE(node_->LoadProgram(program, &error)) << error;
  }

  Network net_;
  Node* node_;
};

TEST_F(IntrospectTest, SysRuleReflectsLoadedRules) {
  Load("r1 out@N(X) :- in@N(X).\n"
       "r2 out2@N(X) :- in@N(X), X > 3.");
  net_.RunFor(0.1);
  std::vector<TupleRef> rows = node_->TableContents("sysRule");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0]->field(1), Value::Str("r1"));
  EXPECT_NE(rows[1]->field(2).AsString().find("X > 3"), std::string::npos);
}

TEST_F(IntrospectTest, SysTableReflectsCountsAndRefreshes) {
  Load("materialize(s, infinity, 10, keys(1,2)).");
  for (int i = 0; i < 3; ++i) {
    node_->InjectEvent(Tuple::Make("s", {Value::Str("n1"), Value::Int(i)}));
  }
  net_.RunFor(2.0);  // at least one sweep
  bool found = false;
  for (const TupleRef& t : node_->TableContents("sysTable")) {
    if (t->field(1) == Value::Str("s")) {
      found = true;
      EXPECT_EQ(t->field(4), Value::Int(3));
      EXPECT_EQ(t->field(3), Value::Int(10));  // max size
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(IntrospectTest, SysElementReflectsStrandStructure) {
  Load("materialize(tbl, infinity, 10, keys(1,2)).\n"
       "r1 out@N(X, Y) :- in@N(X), tbl@N(Y), Y > 2.");
  net_.RunFor(0.1);
  // Expect: entry(in), join(tbl), filter, project — in stage order.
  std::vector<std::string> kinds;
  for (const TupleRef& t : node_->TableContents("sysElement")) {
    if (t->field(1) == Value::Str("r1")) {
      kinds.push_back(t->field(3).AsString());
    }
  }
  ASSERT_EQ(kinds.size(), 4u);
  EXPECT_EQ(kinds[0], "entry");
  EXPECT_EQ(kinds[1], "join");
  EXPECT_EQ(kinds[2], "filter");
  EXPECT_EQ(kinds[3], "project");
}

TEST_F(IntrospectTest, IntrospectionQueryableFromOverLog) {
  // A monitoring rule over sysTable: flag any table holding more than 5 rows.
  Load("materialize(s, infinity, 100, keys(1,2)).\n"
       "watchful bigTable@N(Name, C) :- periodic@N(E, 1), sysTable@N(Name, L, M, C), "
       "C > 5, Name == \"s\".");
  std::vector<TupleRef> alarms;
  node_->SubscribeEvent("bigTable", [&](const TupleRef& t) { alarms.push_back(t); });
  for (int i = 0; i < 4; ++i) {
    node_->InjectEvent(Tuple::Make("s", {Value::Str("n1"), Value::Int(i)}));
  }
  net_.RunFor(3.0);
  EXPECT_TRUE(alarms.empty());
  for (int i = 4; i < 10; ++i) {
    node_->InjectEvent(Tuple::Make("s", {Value::Str("n1"), Value::Int(i)}));
  }
  net_.RunFor(3.0);
  ASSERT_FALSE(alarms.empty());
  EXPECT_EQ(alarms[0]->field(2), Value::Int(10));
}

TEST_F(IntrospectTest, DisabledIntrospectionCreatesNoTables) {
  NodeOptions opts;
  opts.introspection = false;
  Node* quiet = net_.AddNode("n2", opts);
  EXPECT_FALSE(quiet->catalog().IsMaterialized("sysRule"));
  EXPECT_FALSE(quiet->catalog().IsMaterialized("sysTable"));
}

}  // namespace
}  // namespace p2
