// Metrics registry semantics (counters, gauges, histograms, per-rule rows), hot-path
// integration via a live node, and the structured JSONL/CSV export sinks.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "src/net/network.h"
#include "src/trace/metrics.h"

namespace p2 {
namespace {

TEST(MetricsPrimitivesTest, CounterAndGauge) {
  Counter c;
  c.Inc();
  c.Inc(41);
  EXPECT_EQ(c.value, 42u);

  Gauge g;
  g.Set(7);
  g.Add(-3);
  EXPECT_EQ(g.value, 4);
  g.Max(10);
  EXPECT_EQ(g.value, 10);
  g.Max(2);  // lower values don't lower a high-water mark
  EXPECT_EQ(g.value, 10);
}

TEST(MetricsPrimitivesTest, HistogramBucketsArePowersOfTwo) {
  EXPECT_EQ(Histogram::BucketOf(0), 0u);
  EXPECT_EQ(Histogram::BucketOf(1), 1u);
  EXPECT_EQ(Histogram::BucketOf(2), 2u);
  EXPECT_EQ(Histogram::BucketOf(3), 2u);
  EXPECT_EQ(Histogram::BucketOf(4), 3u);
  EXPECT_EQ(Histogram::BucketOf(1023), 10u);
  EXPECT_EQ(Histogram::BucketOf(1024), 11u);
  EXPECT_EQ(Histogram::BucketOf(~0ULL), 64u);

  EXPECT_EQ(Histogram::BucketUpperBound(0), 0u);
  EXPECT_EQ(Histogram::BucketUpperBound(1), 1u);
  EXPECT_EQ(Histogram::BucketUpperBound(2), 3u);
  EXPECT_EQ(Histogram::BucketUpperBound(10), 1023u);
  EXPECT_EQ(Histogram::BucketUpperBound(64), ~0ULL);

  // Every value lands in the bucket whose bounds contain it.
  for (uint64_t v : {0ULL, 1ULL, 2ULL, 7ULL, 8ULL, 1000ULL, 123456789ULL}) {
    size_t b = Histogram::BucketOf(v);
    EXPECT_LE(v, Histogram::BucketUpperBound(b));
    if (b > 0) {
      EXPECT_GT(v, Histogram::BucketUpperBound(b - 1));
    }
  }
}

TEST(MetricsPrimitivesTest, HistogramCountSumMeanQuantiles) {
  Histogram h;
  EXPECT_EQ(h.ValueAtQuantile(0.5), 0u);  // empty
  for (int i = 0; i < 50; ++i) {
    h.Observe(1);
  }
  for (int i = 0; i < 50; ++i) {
    h.Observe(1000);
  }
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.sum(), 50u * 1 + 50u * 1000);
  EXPECT_DOUBLE_EQ(h.Mean(), (50.0 + 50.0 * 1000) / 100.0);
  // Rank 50 falls in the bucket of 1; rank 90 in the bucket of 1000 (upper bound
  // 1023, the bucket-resolution contract of ValueAtQuantile).
  EXPECT_EQ(h.ValueAtQuantile(0.5), 1u);
  EXPECT_EQ(h.ValueAtQuantile(0.9), 1023u);
  EXPECT_EQ(h.ValueAtQuantile(1.0), 1023u);

  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.ValueAtQuantile(0.9), 0u);
}

TEST(MetricsRegistryTest, HandlesAreStableFindOrCreate) {
  MetricsRegistry reg;
  Counter* a = reg.GetCounter("x");
  Counter* b = reg.GetCounter("x");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, reg.GetCounter("y"));
  EXPECT_EQ(reg.GetGauge("g"), reg.GetGauge("g"));
  EXPECT_EQ(reg.GetHistogram("h"), reg.GetHistogram("h"));
  EXPECT_EQ(reg.GetRuleMetrics("r1"), reg.GetRuleMetrics("r1"));
  EXPECT_EQ(reg.counters().size(), 2u);
}

TEST(MetricsRegistryTest, ResetZeroesValuesButKeepsHandles) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("x");
  Histogram* h = reg.GetHistogram("h");
  RuleMetrics* r = reg.GetRuleMetrics("r1");
  c->Inc(5);
  h->Observe(100);
  r->execs = 3;
  r->busy_ns = 999;

  reg.Reset();
  EXPECT_EQ(c->value, 0u);
  EXPECT_EQ(h->count(), 0u);
  EXPECT_EQ(r->execs, 0u);
  EXPECT_EQ(r->busy_ns, 0u);
  // Same handles still registered and live.
  EXPECT_EQ(reg.GetCounter("x"), c);
  c->Inc();
  EXPECT_EQ(c->value, 1u);
}

TEST(MetricsRegistryTest, DropRuleMetricsForgetsTheRule) {
  MetricsRegistry reg;
  reg.GetRuleMetrics("r1");
  reg.GetRuleMetrics("r2");
  reg.DropRuleMetrics("r1");
  EXPECT_EQ(reg.rules().size(), 1u);
  EXPECT_EQ(reg.rules().count("r1"), 0u);
}

TEST(TableCountersTest, InsertRefreshDeleteExpireEvict) {
  TableSpec spec;
  spec.name = "s";
  spec.lifetime_secs = 10.0;
  spec.max_size = 2;
  spec.key_fields = {0, 1};
  Table table(spec);

  auto row = [](int i) {
    return Tuple::Make("s", {Value::Str("n1"), Value::Int(i)});
  };
  table.Insert(row(1), 0.0);
  table.Insert(row(2), 0.0);
  EXPECT_EQ(table.counters().inserts, 2u);

  table.Insert(row(1), 1.0);  // identical row: refresh, not insert
  EXPECT_EQ(table.counters().inserts, 2u);
  EXPECT_EQ(table.counters().refreshes, 1u);

  table.Insert(row(3), 1.0);  // over max_size: evicts the oldest
  EXPECT_EQ(table.counters().inserts, 3u);
  EXPECT_EQ(table.counters().evictions, 1u);

  ValueList pattern = {Value(), Value::Int(3)};
  std::vector<bool> bound = {false, true};
  EXPECT_EQ(table.DeleteMatching(pattern, bound, 2.0), 1u);
  EXPECT_EQ(table.counters().deletes, 1u);

  EXPECT_EQ(table.ExpireStale(100.0), 1u);  // the remaining row ages out
  EXPECT_EQ(table.counters().expires, 1u);
}

class NodeMetricsTest : public ::testing::Test {
 protected:
  NodeMetricsTest() : net_(NetworkConfig{0.01, 0.0, 0.0, 42}) {}

  Node* AddNode(const std::string& addr, bool metrics) {
    NodeOptions opts;
    opts.metrics = metrics;
    return net_.AddNode(addr, opts);
  }

  Network net_;
};

TEST_F(NodeMetricsTest, RuleMetricsCountExecsBusyAndEmits) {
  Node* node = AddNode("n1", true);
  std::string error;
  ASSERT_TRUE(node->LoadProgram("r1 out@N(X) :- in@N(X), X > 1.", &error)) << error;
  for (int i = 0; i < 4; ++i) {
    node->InjectEvent(Tuple::Make("in", {Value::Str("n1"), Value::Int(i)}));
  }
  net_.RunFor(0.5);
  ASSERT_EQ(node->metrics().rules().count("r1"), 1u);
  const RuleMetrics& m = *node->metrics().rules().at("r1");
  EXPECT_EQ(m.execs, 4u);       // triggered once per event
  EXPECT_EQ(m.emits, 2u);       // only X in {2, 3} pass the filter
  EXPECT_GT(m.busy_ns, 0u);
  // The trigger-latency histogram saw the same executions.
  Histogram* h = node->metrics().GetHistogram("strand_trigger_ns");
  EXPECT_GE(h->count(), 4u);
}

TEST_F(NodeMetricsTest, DisabledMetricsRecordNothing) {
  Node* node = AddNode("n1", false);
  std::string error;
  ASSERT_TRUE(node->LoadProgram("r1 out@N(X) :- in@N(X).", &error)) << error;
  node->InjectEvent(Tuple::Make("in", {Value::Str("n1"), Value::Int(1)}));
  net_.RunFor(0.5);
  EXPECT_TRUE(node->metrics().rules().empty());
  EXPECT_TRUE(node->metrics().histograms().empty());
  EXPECT_EQ(node->stats().strand_triggers, 1u);  // base accounting still works
}

TEST_F(NodeMetricsTest, SnapshotFlattensStatsRulesTablesHists) {
  Node* node = AddNode("n1", true);
  std::string error;
  ASSERT_TRUE(node->LoadProgram("materialize(s, infinity, 10, keys(1,2)).\n"
                                "r1 out@N(X) :- in@N(X), s@N(X).",
                                &error))
      << error;
  node->InjectEvent(Tuple::Make("s", {Value::Str("n1"), Value::Int(1)}));
  node->InjectEvent(Tuple::Make("in", {Value::Str("n1"), Value::Int(1)}));
  net_.RunFor(0.5);

  MetricsSnapshot snap = SnapshotNodeMetrics(node);
  EXPECT_EQ(snap.node, "n1");
  EXPECT_DOUBLE_EQ(snap.time, net_.Now());

  auto stat = [&](const std::string& name) -> int64_t {
    for (const auto& [k, v] : snap.stats) {
      if (k == name) {
        return v;
      }
    }
    return -1;
  };
  EXPECT_GT(stat("busy_ns"), 0);
  EXPECT_GT(stat("strand_triggers"), 0);
  EXPECT_EQ(stat("queue_depth"), 0);  // drained

  ASSERT_EQ(snap.rules.size(), 1u);
  EXPECT_EQ(snap.rules[0].rule_id, "r1");
  EXPECT_EQ(snap.rules[0].execs, 1u);

  bool found_s = false;
  for (const auto& t : snap.tables) {
    if (t.table == "s") {
      found_s = true;
      EXPECT_EQ(t.inserts, 1u);
      EXPECT_EQ(t.live_rows, 1u);
    }
  }
  EXPECT_TRUE(found_s);

  ASSERT_FALSE(snap.hists.empty());
  EXPECT_EQ(snap.hists[0].name, "strand_trigger_ns");
  EXPECT_GT(snap.hists[0].count, 0u);
  EXPECT_GE(snap.hists[0].p99, snap.hists[0].p50);
}

// Satellite (docs/ROBUSTNESS.md): queue_hwm and the overload admission/shed
// counters ride the same stats list, so every JSONL/CSV sink and sysStat row
// carries them without further plumbing. Pinned here so the export schema cannot
// silently lose them.
TEST_F(NodeMetricsTest, SnapshotCarriesQueueHwmAndOverloadCounters) {
  NodeOptions opts;
  opts.metrics = true;
  opts.queue_cap = 2;
  Node* node = net_.AddNode("n1", opts);
  std::string error;
  ASSERT_TRUE(node->LoadProgram("materialize(item, infinity, 100, keys(1,2)).\n"
                                "r1 out@N(X) :- kick@N(), item@N(X).",
                                &error))
      << error;
  for (int i = 0; i < 5; ++i) {
    node->InjectEvent(Tuple::Make("item", {Value::Str("n1"), Value::Int(i)}));
  }
  node->InjectEvent(Tuple::Make("kick", {Value::Str("n1")}));
  net_.RunFor(0.5);

  MetricsSnapshot snap = SnapshotNodeMetrics(node);
  auto stat = [&](const std::string& name) -> int64_t {
    for (const auto& [k, v] : snap.stats) {
      if (k == name) {
        return v;
      }
    }
    return -1;
  };
  EXPECT_GE(stat("queue_hwm"), 2);
  EXPECT_EQ(stat("shed_besteffort"), 3);  // 5 offered against a 2-entry cap
  EXPECT_EQ(stat("admitted_besteffort"),
            static_cast<int64_t>(node->stats().admitted_besteffort));
  EXPECT_EQ(stat("shed_reliable"), 0);
  EXPECT_EQ(stat("be_queue_hwm"), 2);
  EXPECT_EQ(stat("degraded"), 0);
  EXPECT_NE(stat("rel_reorder_dropped"), -1);
  EXPECT_NE(stat("degrade_exits"), -1);
}

// The tuple_store_size stat gauges the trace TupleStore's interned-tuple count: 0
// with tracing off (nothing memoized), positive and tracking store().size() once
// the tracer memoizes executions.
TEST_F(NodeMetricsTest, TupleStoreSizeGaugeTracksInternedTuples) {
  NodeOptions opts;
  opts.metrics = true;
  opts.tracing = true;
  Node* traced = net_.AddNode("n1", opts);
  Node* untraced = AddNode("n2", true);
  std::string error;
  ASSERT_TRUE(traced->LoadProgram("r1 out@N(X) :- in@N(X).", &error)) << error;
  traced->InjectEvent(Tuple::Make("in", {Value::Str("n1"), Value::Int(1)}));
  net_.RunFor(0.5);

  auto stat = [](const MetricsSnapshot& snap, const std::string& name) -> int64_t {
    for (const auto& [k, v] : snap.stats) {
      if (k == name) {
        return v;
      }
    }
    return -1;
  };
  MetricsSnapshot traced_snap = SnapshotNodeMetrics(traced);
  EXPECT_GT(stat(traced_snap, "tuple_store_size"), 0);
  EXPECT_EQ(stat(traced_snap, "tuple_store_size"),
            static_cast<int64_t>(traced->store().size()));
  EXPECT_EQ(stat(SnapshotNodeMetrics(untraced), "tuple_store_size"), 0);
}

MetricsSnapshot SampleSnapshot() {
  MetricsSnapshot snap;
  snap.time = 2.5;
  snap.node = "n1";
  snap.stats = {{"busy_ns", 123}, {"msgs_sent", 4}};
  snap.rules.push_back({"r1", 10, 5000, 7, 20, 2});
  snap.tables.push_back({"succ", 3, 1, 2, 0, 0, 3});
  snap.hists.push_back({"strand_trigger_ns", 10, 900, 63, 127, 255});
  return snap;
}

TEST(MetricsSinkTest, JsonlOneObjectPerSnapshot) {
  std::ostringstream out;
  JsonlMetricsSink sink(&out);
  sink.Write(SampleSnapshot());
  sink.Write(SampleSnapshot());

  std::istringstream lines(out.str());
  std::string line;
  int count = 0;
  while (std::getline(lines, line)) {
    ++count;
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"node\":\"n1\""), std::string::npos);
    EXPECT_NE(line.find("\"busy_ns\":123"), std::string::npos);
    EXPECT_NE(line.find("\"r1\":{\"execs\":10,\"busy_ns\":5000,\"emits\":7,"
                        "\"join_probe_rows\":20,\"join_scan_rows\":2}"),
              std::string::npos);
    EXPECT_NE(line.find("\"succ\""), std::string::npos);
    EXPECT_NE(line.find("\"p99\":255"), std::string::npos);
  }
  EXPECT_EQ(count, 2);
}

TEST(MetricsSinkTest, CsvLongFormatWithSingleHeader) {
  std::ostringstream out;
  CsvMetricsSink sink(&out);
  sink.Write(SampleSnapshot());
  sink.Write(SampleSnapshot());

  std::istringstream lines(out.str());
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(line, "time,node,metric,value");

  int header_count = 1;
  int rule_rows = 0;
  int table_rows = 0;
  int hist_rows = 0;
  while (std::getline(lines, line)) {
    if (line == "time,node,metric,value") {
      ++header_count;
    }
    if (line.find(",rule.r1.") != std::string::npos) {
      ++rule_rows;
    }
    if (line.find(",table.succ.") != std::string::npos) {
      ++table_rows;
    }
    if (line.find(",hist.strand_trigger_ns.") != std::string::npos) {
      ++hist_rows;
    }
  }
  EXPECT_EQ(header_count, 1);  // header only once across writes
  EXPECT_EQ(rule_rows, 2 * 5);
  EXPECT_EQ(table_rows, 2 * 6);
  EXPECT_EQ(hist_rows, 2 * 5);

  // Every row after the header: time,node,metric,value.
  std::istringstream again(out.str());
  std::getline(again, line);
  while (std::getline(again, line)) {
    EXPECT_NE(line.find("2.5,n1,"), std::string::npos) << line;
  }
}

TEST(MetricsSinkTest, OpenMetricsSinkPicksFormatByExtension) {
  std::string error;
  std::string jsonl_path = ::testing::TempDir() + "/metrics_test_out.jsonl";
  {
    auto sink = OpenMetricsSink(jsonl_path, &error);
    ASSERT_NE(sink, nullptr) << error;
    sink->Write(SampleSnapshot());
  }
  std::ifstream jf(jsonl_path);
  std::string line;
  ASSERT_TRUE(std::getline(jf, line));
  EXPECT_EQ(line.front(), '{');

  std::string csv_path = ::testing::TempDir() + "/metrics_test_out.csv";
  {
    auto sink = OpenMetricsSink(csv_path, &error);
    ASSERT_NE(sink, nullptr) << error;
    sink->Write(SampleSnapshot());
  }
  std::ifstream cf(csv_path);
  ASSERT_TRUE(std::getline(cf, line));
  EXPECT_EQ(line, "time,node,metric,value");

  EXPECT_EQ(OpenMetricsSink("/nonexistent-dir/x.jsonl", &error), nullptr);
  EXPECT_FALSE(error.empty());
}

TEST(MetricsSinkTest, NetworkStreamsOneSnapshotPerNodePerSweep) {
  Network net(NetworkConfig{0.01, 0.0, 0.0, 42});
  std::ostringstream out;
  JsonlMetricsSink sink(&out);
  net.SetMetricsSink(&sink);
  net.AddNode("n1", NodeOptions{});
  net.AddNode("n2", NodeOptions{});
  net.RunFor(2.5);  // sweeps at t=1 and t=2

  std::istringstream lines(out.str());
  std::string line;
  int n1 = 0;
  int n2 = 0;
  while (std::getline(lines, line)) {
    if (line.find("\"node\":\"n1\"") != std::string::npos) {
      ++n1;
    }
    if (line.find("\"node\":\"n2\"") != std::string::npos) {
      ++n2;
    }
  }
  EXPECT_EQ(n1, 2);
  EXPECT_EQ(n2, 2);
}

}  // namespace
}  // namespace p2
