// Execution-tracing tests: ruleExec causality rows (paper §2.1.1, Figure 2),
// pipelined tracer records (§2.1.2, Figure 3), and cross-network tuple provenance
// with reference-count GC (§2.1.3).

#include <gtest/gtest.h>

#include "src/net/network.h"

namespace p2 {
namespace {

NodeOptions TracingOptions() {
  NodeOptions opts;
  opts.tracing = true;
  opts.introspection = false;
  return opts;
}

class TracerEngineTest : public ::testing::Test {
 protected:
  TracerEngineTest() : net_(NetworkConfig{0.01, 0.0, 0.0, 42}) {
    node_ = net_.AddNode("n1", TracingOptions());
  }

  void Load(const std::string& program) {
    std::string error;
    ASSERT_TRUE(node_->LoadProgram(program, &error)) << error;
  }

  // Rows of ruleExec for a given rule id.
  std::vector<TupleRef> RuleExecRows(Node* node, const std::string& rule) {
    std::vector<TupleRef> out;
    for (const TupleRef& t : node->TableContents("ruleExec")) {
      if (t->field(1) == Value::Str(rule)) {
        out.push_back(t);
      }
    }
    return out;
  }

  Network net_;
  Node* node_;
};

// Figure 2: rule r1 head@Z(Y) :- event@N(Y), prec@N(Z). One event + one precondition
// produce two ruleExec rows sharing the same effect.
TEST_F(TracerEngineTest, Figure2EventAndPreconditionRows) {
  Load(
      "materialize(prec, infinity, 10, keys(1,2)).\n"
      "r1 head@Z(Y) :- event@N(Y), prec@N(Z).");
  node_->InjectEvent(Tuple::Make("prec", {Value::Str("n1"), Value::Str("n1")}));
  net_.RunFor(0.1);
  node_->InjectEvent(Tuple::Make("event", {Value::Str("n1"), Value::Int(9)}));
  net_.RunFor(0.1);
  std::vector<TupleRef> rows = RuleExecRows(node_, "r1");
  ASSERT_EQ(rows.size(), 2u);
  // Both rows share the effect ID; one is the event cause, one the precondition.
  EXPECT_EQ(rows[0]->field(3), rows[1]->field(3));
  int event_rows = 0;
  for (const TupleRef& t : rows) {
    if (t->field(6) == Value::Bool(true)) {
      ++event_rows;
      // The cause must be the memoized event tuple.
      TupleRef cause = node_->store().Lookup(t->field(2).AsId());
      ASSERT_NE(cause, nullptr);
      EXPECT_EQ(cause->name(), "event");
    } else {
      TupleRef cause = node_->store().Lookup(t->field(2).AsId());
      ASSERT_NE(cause, nullptr);
      EXPECT_EQ(cause->name(), "prec");
    }
  }
  EXPECT_EQ(event_rows, 1);
  // Cause time <= output time.
  for (const TupleRef& t : rows) {
    EXPECT_LE(t->field(4).AsDouble(), t->field(5).AsDouble());
  }
}

// A two-join rule (Figure 3's shape): each output is attributed to the precondition
// pair on its own derivation path.
TEST_F(TracerEngineTest, TwoJoinPreconditionAttribution) {
  Load(
      "materialize(prec1, infinity, 10, keys(1,2,3)).\n"
      "materialize(prec2, infinity, 10, keys(1,2,3)).\n"
      "r2 head@N(X, Y, Z) :- event@N(X), prec1@N(X, Y), prec2@N(Y, Z).");
  auto put = [&](const std::string& name, int a, int b) {
    node_->InjectEvent(
        Tuple::Make(name, {Value::Str("n1"), Value::Int(a), Value::Int(b)}));
  };
  put("prec1", 1, 10);
  put("prec1", 1, 20);
  put("prec2", 10, 100);
  put("prec2", 20, 200);
  net_.RunFor(0.1);
  node_->InjectEvent(Tuple::Make("event", {Value::Str("n1"), Value::Int(1)}));
  net_.RunFor(0.1);
  // Two outputs; each has 3 rows (event + 2 preconditions) = 6 rows.
  std::vector<TupleRef> rows = RuleExecRows(node_, "r2");
  ASSERT_EQ(rows.size(), 6u);
  // For each output, the recorded prec2 cause must match the derivation path:
  // head(1,10,100) was enabled by prec2(10,100), head(1,20,200) by prec2(20,200).
  for (const TupleRef& row : rows) {
    TupleRef cause = node_->store().Lookup(row->field(2).AsId());
    TupleRef effect = node_->store().Lookup(row->field(3).AsId());
    ASSERT_NE(cause, nullptr);
    ASSERT_NE(effect, nullptr);
    if (cause->name() == "prec2") {
      EXPECT_EQ(cause->field(1), effect->field(2));  // Y matches
      EXPECT_EQ(cause->field(2), effect->field(3));  // Z matches
    }
    if (cause->name() == "prec1") {
      EXPECT_EQ(cause->field(2), effect->field(2));  // Y matches
    }
  }
}

TEST_F(TracerEngineTest, NoRowsWhenExecutionProducesNoOutput) {
  Load(
      "materialize(prec, infinity, 10, keys(1,2)).\n"
      "r1 head@N(Y) :- event@N(Y), prec@N(Y).");
  node_->InjectEvent(Tuple::Make("event", {Value::Str("n1"), Value::Int(9)}));
  net_.RunFor(0.1);
  EXPECT_TRUE(RuleExecRows(node_, "r1").empty());  // empty join: no output, no rows
}

TEST_F(TracerEngineTest, TracingDisabledWritesNothing) {
  NodeOptions opts;
  opts.tracing = false;
  opts.introspection = false;
  Node* quiet = net_.AddNode("n2", opts);
  std::string error;
  ASSERT_TRUE(quiet->LoadProgram("r9 out@N(X) :- in@N(X).", &error)) << error;
  quiet->InjectEvent(Tuple::Make("in", {Value::Str("n2"), Value::Int(1)}));
  net_.RunFor(0.1);
  EXPECT_TRUE(quiet->TableContents("ruleExec").empty());
  EXPECT_TRUE(quiet->TableContents("tupleTable").empty());
}

TEST_F(TracerEngineTest, CrossNetworkProvenance) {
  Node* remote = net_.AddNode("n2", TracingOptions());
  std::string error;
  ASSERT_TRUE(node_->LoadProgram("s1 hop@Other(NAddr, X) :- go@NAddr(Other, X).", &error))
      << error;
  ASSERT_TRUE(remote->LoadProgram("s2 landed@N(From, X) :- hop@N(From, X).", &error))
      << error;
  node_->InjectEvent(
      Tuple::Make("go", {Value::Str("n1"), Value::Str("n2"), Value::Int(5)}));
  net_.RunFor(1.0);
  // The receiver's tupleTable must record the hop tuple as arriving from n1 with n1's
  // local ID for it.
  TupleRef hop = Tuple::Make("hop", {Value::Str("n2"), Value::Str("n1"), Value::Int(5)});
  uint64_t remote_id = remote->store().Intern(hop);
  uint64_t origin_id = node_->store().Intern(hop);
  bool found = false;
  for (const TupleRef& t : remote->TableContents("tupleTable")) {
    if (t->field(1) == Value::Id(remote_id)) {
      found = true;
      EXPECT_EQ(t->field(2), Value::Str("n1"));
      EXPECT_EQ(t->field(3), Value::Id(origin_id));
      EXPECT_EQ(t->field(4), Value::Str("n2"));  // destination = location specifier
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(TracerEngineTest, RefcountGcDropsTupleTableRows) {
  NodeOptions opts = TracingOptions();
  opts.rule_exec_lifetime = 2.0;  // short-lived provenance
  Node* fast = net_.AddNode("n3", opts);
  std::string error;
  ASSERT_TRUE(fast->LoadProgram("g1 out@N(X) :- in@N(X).", &error)) << error;
  fast->InjectEvent(Tuple::Make("in", {Value::Str("n3"), Value::Int(1)}));
  net_.RunFor(0.5);
  EXPECT_FALSE(fast->TableContents("ruleExec").empty());
  size_t store_before = fast->store().size();
  EXPECT_GT(store_before, 0u);
  net_.RunFor(5.0);  // ruleExec rows expire -> refcounts drop -> memo freed
  EXPECT_TRUE(fast->TableContents("ruleExec").empty());
  EXPECT_LT(fast->store().size(), store_before);
  EXPECT_TRUE(fast->TableContents("tupleTable").empty());
}

// --- synthetic pipelined-record scenarios (paper §2.1.2, Figure 3) ---

class PipelinedTracerTest : public ::testing::Test {
 protected:
  PipelinedTracerTest() : store_(), tracer_("n1", &store_, 8) {
    TableSpec exec_spec;
    exec_spec.name = "ruleExec";
    rule_exec_ = std::make_unique<Table>(exec_spec);
    TableSpec memo_spec;
    memo_spec.name = "tupleTable";
    memo_spec.key_fields = {1};
    tuple_table_ = std::make_unique<Table>(memo_spec);
    tracer_.AttachTables(rule_exec_.get(), tuple_table_.get());
    tracer_.set_enabled(true);
    target_.strand = this;
    target_.rule_id = "r2";
    target_.num_stages = 2;
  }

  TupleRef T(const std::string& name, int v) {
    return Tuple::Make(name, {Value::Str("n1"), Value::Int(v)});
  }

  std::vector<TupleRef> Rows() { return rule_exec_->Scan(99); }

  TupleStore store_;
  Tracer tracer_;
  std::unique_ptr<Table> rule_exec_;
  std::unique_ptr<Table> tuple_table_;
  TraceTarget target_;
};

TEST_F(PipelinedTracerTest, InterleavedEventsKeepSeparateRecords) {
  // Figure 3's configuration: event A has finished looking up matches in prec1 and is
  // still processing matches in prec2 (record window [2,2]) while event B has started
  // processing matches in prec1 (record window [1,1]).
  TupleRef ev_a = T("event", 1);
  TupleRef ev_b = T("event", 2);
  TupleRef p1_a = T("prec1", 11);
  TupleRef p1_b = T("prec1", 22);
  TupleRef p2_a1 = T("prec2", 111);
  TupleRef p2_a2 = T("prec2", 112);
  TupleRef out_a1 = T("head", 1111);
  TupleRef out_a2 = T("head", 1112);

  tracer_.OnInput(target_, ev_a, 1.0);
  tracer_.OnPrecondition(target_, 1, p1_a, 1.1);
  tracer_.OnPrecondition(target_, 2, p2_a1, 1.2);
  tracer_.OnOutput(target_, out_a1, 1.25);
  tracer_.OnStageComplete(target_, 1);             // join1 seeks new input: A -> [2,2]
  tracer_.OnInput(target_, ev_b, 1.3);             // B enters at stage 1
  tracer_.OnPrecondition(target_, 1, p1_b, 1.35);  // belongs to B's record
  tracer_.OnPrecondition(target_, 2, p2_a2, 1.4);  // belongs to A's record
  tracer_.OnOutput(target_, out_a2, 1.5);          // A's output (highest stage)

  uint64_t out2_id = store_.Intern(out_a2);
  int ev_rows = 0;
  int rows_for_out2 = 0;
  for (const TupleRef& row : Rows()) {
    if (!(row->field(3) == Value::Id(out2_id))) {
      continue;
    }
    ++rows_for_out2;
    TupleRef cause = store_.Lookup(row->field(2).AsId());
    ASSERT_NE(cause, nullptr);
    // B's event and B's prec1 must NOT appear as causes of A's output.
    EXPECT_FALSE(*cause == *ev_b);
    EXPECT_FALSE(*cause == *p1_b);
    EXPECT_FALSE(*cause == *p2_a1);  // flushed by the fresh prec2 match
    if (row->field(6) == Value::Bool(true)) {
      ++ev_rows;
      EXPECT_TRUE(*cause == *ev_a);
    }
  }
  EXPECT_EQ(rows_for_out2, 3);  // event A + prec1_a + prec2_a2
  EXPECT_EQ(ev_rows, 1);
}

TEST_F(PipelinedTracerTest, StageCompletionRetiresDrainedRecords) {
  TupleRef ev = T("event", 1);
  tracer_.OnInput(target_, ev, 1.0);
  tracer_.OnPrecondition(target_, 1, T("prec1", 1), 1.1);
  tracer_.OnPrecondition(target_, 2, T("prec2", 1), 1.2);
  tracer_.OnStageComplete(target_, 1);
  tracer_.OnStageComplete(target_, 2);
  // The record has drained; a new event's preconditions must not inherit state.
  TupleRef ev2 = T("event", 2);
  tracer_.OnInput(target_, ev2, 2.0);
  tracer_.OnPrecondition(target_, 1, T("prec1", 2), 2.1);
  tracer_.OnPrecondition(target_, 2, T("prec2", 2), 2.2);
  TupleRef out2 = T("head", 2);
  tracer_.OnOutput(target_, out2, 2.3);
  std::vector<TupleRef> rows = Rows();
  ASSERT_EQ(rows.size(), 3u);
  for (const TupleRef& row : rows) {
    TupleRef cause = store_.Lookup(row->field(2).AsId());
    ASSERT_NE(cause, nullptr);
    EXPECT_FALSE(*cause == *ev);  // old event not blamed
  }
}

TEST_F(PipelinedTracerTest, MidStrandPreconditionFlushesRightwardFields) {
  // Paper §2.1.1: observing a precondition in the middle invalidates fields to its
  // right.
  tracer_.OnInput(target_, T("event", 1), 1.0);
  tracer_.OnPrecondition(target_, 1, T("prec1", 1), 1.1);
  tracer_.OnPrecondition(target_, 2, T("prec2", 1), 1.2);
  TupleRef out1 = T("head", 1);
  tracer_.OnOutput(target_, out1, 1.3);
  // New prec1 match: prec2 field must flush; an output before a fresh prec2 match
  // yields only event + prec1 rows.
  tracer_.OnPrecondition(target_, 1, T("prec1", 9), 1.4);
  TupleRef out2 = T("head", 9);
  tracer_.OnOutput(target_, out2, 1.5);
  uint64_t out2_id = store_.Intern(out2);
  int rows_for_out2 = 0;
  for (const TupleRef& row : Rows()) {
    if (row->field(3) == Value::Id(out2_id)) {
      ++rows_for_out2;
      TupleRef cause = store_.Lookup(row->field(2).AsId());
      EXPECT_NE(cause->name(), "prec2");
    }
  }
  EXPECT_EQ(rows_for_out2, 2);  // event + fresh prec1 only
}

TEST_F(PipelinedTracerTest, RecordCountIsBounded) {
  // More concurrent inputs than records: the oldest record is reused, never more
  // than the configured bound (the paper's fixed-record optimization).
  for (int i = 0; i < 100; ++i) {
    tracer_.OnInput(target_, T("event", i), 1.0 + i);
  }
  // No crash and no unbounded growth; outputs still attribute to the newest record.
  TupleRef out = T("head", 7);
  tracer_.OnOutput(target_, out, 200.0);
  EXPECT_GE(Rows().size(), 1u);
}

}  // namespace
}  // namespace p2
