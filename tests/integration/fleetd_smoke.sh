#!/usr/bin/env bash
# Multi-process deployment smoke test (docs/DEPLOYMENT.md): launches 4 fleetd
# processes over loopback UDP running tests/integration/fleetd_smoke.scn (an
# 8-node monitored Chord fleet, 2 nodes per process), then asserts from the
# per-process stats reports that
#   - the best-successor pointers form one cycle over all 8 nodes,
#   - no reliable tuple was shed under overload (shed_reliable == 0),
#   - envelope batching did real work (> 1 tuple per datagram).
#
# Usage: tests/integration/fleetd_smoke.sh <path-to-fleetd> [workdir]
set -u

FLEETD=${1:?usage: fleetd_smoke.sh <path-to-fleetd> [workdir]}
WORK=${2:-$(mktemp -d)}
PROFILE="$(cd "$(dirname "$0")" && pwd)/fleetd_smoke.scn"
PORT=${FLEETD_SMOKE_PORT:-19764}
PROCS=4

mkdir -p "$WORK"
pids=()
for i in $(seq 1 $((PROCS - 1))); do
  "$FLEETD" --profile "$PROFILE" --procs $PROCS --index "$i" \
    --seed "127.0.0.1:$PORT" --stats-out "$WORK/stats_$i.json" \
    > "$WORK/proc_$i.log" 2>&1 &
  pids+=($!)
done
"$FLEETD" --profile "$PROFILE" --procs $PROCS --index 0 \
  --listen "127.0.0.1:$PORT" --stats-out "$WORK/stats_0.json" \
  > "$WORK/proc_0.log" 2>&1
status=$?

fail=0
if [ $status -ne 0 ]; then
  echo "FAIL: seed process exited $status"
  fail=1
fi
for pid in "${pids[@]}"; do
  if ! wait "$pid"; then
    echo "FAIL: a joiner process exited non-zero"
    fail=1
  fi
done
if [ $fail -ne 0 ]; then
  for i in $(seq 0 $((PROCS - 1))); do
    echo "--- proc $i"; cat "$WORK/proc_$i.log"
  done
  exit 1
fi

python3 - "$WORK" $PROCS <<'EOF'
import json, sys
work, procs = sys.argv[1], int(sys.argv[2])
succ, shed, envelopes, datagrams = {}, 0, 0, 0
for i in range(procs):
    report = json.load(open(f"{work}/stats_{i}.json"))
    shed += report["shed_reliable"]
    envelopes += report["envelopes_sent"]
    datagrams += report["datagrams_sent"]
    for node in report["nodes"]:
        succ[node["addr"]] = node["best_succ"]
cur, seen = "n0", []
while cur in succ and cur not in seen:
    seen.append(cur)
    cur = succ[cur]
ok = True
if cur != "n0" or len(seen) != len(succ):
    print(f"FAIL: successor pointers do not form one {len(succ)}-cycle: "
          f"{' -> '.join(seen)} -> {cur}")
    ok = False
if shed != 0:
    print(f"FAIL: shed_reliable = {shed}, expected 0")
    ok = False
ratio = envelopes / datagrams if datagrams else 0.0
if ratio <= 1.0:
    print(f"FAIL: batching ratio {ratio:.2f} <= 1 tuple/datagram")
    ok = False
if ok:
    print(f"OK: {len(succ)}-node ring converged across {procs} processes, "
          f"shed_reliable=0, batching {ratio:.2f} envelopes/datagram")
sys.exit(0 if ok else 1)
EOF
