// Chandy-Lamport consistent snapshots over Chord (paper §3.3): back-pointer
// discovery, snapshot propagation and termination, snapped routing state, lookups over
// a snapshot, and snapshot-based consistency probes.

#include <gtest/gtest.h>

#include <map>

#include "src/mon/consistency.h"
#include "src/mon/snapshot.h"
#include "src/testbed/testbed.h"

namespace p2 {
namespace {

class SnapshotTest : public ::testing::Test {
 protected:
  void Start(int nodes, double snap_period = 10.0) {
    TestbedConfig tb;
    tb.num_nodes = nodes;
    tb.fleet.node_defaults.introspection = false;
    bed_ = std::make_unique<ChordTestbed>(tb);
    bed_->Run(100);
    ASSERT_TRUE(bed_->RingIsCorrect());
    for (size_t i = 0; i < bed_->size(); ++i) {
      SnapshotConfig cfg;
      cfg.snap_period = snap_period;
      cfg.initiator = (i == 0);
      std::string error;
      ASSERT_TRUE(InstallSnapshot(bed_->node(i), cfg, &error)) << error;
    }
  }

  std::unique_ptr<ChordTestbed> bed_;
};

TEST_F(SnapshotTest, BackPointersDiscoveredFromPings) {
  Start(6);
  bed_->Run(15);
  for (Node* node : bed_->nodes()) {
    // Every node is pinged at least by its predecessor (it is the pred's bestSucc).
    EXPECT_GE(node->TableContents("backPointer").size(), 1u) << node->addr();
    std::vector<TupleRef> counts = node->TableContents("numBackPointers");
    ASSERT_EQ(counts.size(), 1u);
    EXPECT_GE(counts[0]->field(1).ToInt(), 1);
  }
}

TEST_F(SnapshotTest, SnapshotCompletesOnAllNodes) {
  Start(6);
  bed_->Run(35);  // a few snapshot periods
  for (Node* node : bed_->nodes()) {
    EXPECT_GE(LatestDoneSnapshot(node), 1) << node->addr();
  }
}

TEST_F(SnapshotTest, SnapshotIdsAdvance) {
  Start(6, /*snap_period=*/5.0);
  bed_->Run(26);
  EXPECT_GE(LatestDoneSnapshot(bed_->node(0)), 3);
}

TEST_F(SnapshotTest, SnappedStateMatchesLiveStateOnStableRing) {
  Start(6);
  bed_->Run(25);
  for (Node* node : bed_->nodes()) {
    int64_t snap = LatestDoneSnapshot(node);
    ASSERT_GE(snap, 1) << node->addr();
    // The ring was stable during the snapshot, so the snapped best successor equals
    // the live one.
    bool found = false;
    for (const TupleRef& t : node->TableContents("snapBestSucc")) {
      if (t->field(1).ToInt() == snap) {
        found = true;
        EXPECT_EQ(t->field(2).AsString(), BestSuccAddr(node));
      }
    }
    EXPECT_TRUE(found) << node->addr();
    // Fingers were snapped too.
    int snapped_fingers = 0;
    for (const TupleRef& t : node->TableContents("snapFingers")) {
      if (t->field(1).ToInt() == snap) {
        ++snapped_fingers;
      }
    }
    EXPECT_GT(snapped_fingers, 0) << node->addr();
  }
}

TEST_F(SnapshotTest, LookupsOverSnapshotResolveCorrectly) {
  Start(8);
  bed_->Run(25);
  Node* prober = bed_->node(3);
  int64_t snap = LatestDoneSnapshot(prober);
  ASSERT_GE(snap, 1);

  std::map<std::string, uint64_t> ids = bed_->Ids();
  std::map<uint64_t, std::string> results;
  prober->SubscribeEvent("sLookupResults", [&](const TupleRef& t) {
    // sLookupResults(ReqAddr, SnapID, K, SID, SAddr, E, RespAddr)
    results[t->field(5).AsId()] = t->field(4).AsString();
  });
  Rng rng(5);
  std::map<uint64_t, uint64_t> wanted;
  for (uint64_t req = 1; req <= 8; ++req) {
    uint64_t key = rng.Next();
    wanted[req] = key;
    IssueSnapshotLookup(prober, snap, key, req);
  }
  bed_->Run(15);
  int correct = 0;
  for (const auto& [req, key] : wanted) {
    // Ground truth owner on the (stable) ring.
    std::string owner;
    uint64_t best = ~0ULL;
    for (const auto& [addr, id] : ids) {
      uint64_t dist = id - key;
      if (owner.empty() || dist < best) {
        owner = addr;
        best = dist;
      }
    }
    auto it = results.find(req);
    if (it != results.end() && it->second == owner) {
      ++correct;
    }
  }
  EXPECT_EQ(correct, 8);
}

TEST_F(SnapshotTest, FutureSnapshotLookupActsAsMarker) {
  Start(6);
  bed_->Run(12);
  Node* node = bed_->node(4);
  int64_t current = 0;
  for (const TupleRef& t : node->TableContents("currentSnap")) {
    current = t->field(1).ToInt();
  }
  int64_t future = current + 3;
  // A snapshot lookup response from a node already in snapshot `future` arrives.
  node->InjectEvent(Tuple::Make(
      "sLookupResults",
      {Value::Str(node->addr()), Value::Int(future), Value::Id(1), Value::Id(2),
       Value::Str("n0"), Value::Id(3), Value::Str("n0")}));
  bed_->Run(2);
  bool snapping = false;
  for (const TupleRef& t : node->TableContents("snapState")) {
    if (t->field(1).ToInt() == future) {
      snapping = true;
    }
  }
  EXPECT_TRUE(snapping);
}

TEST_F(SnapshotTest, ChannelRecordingCapturesInFlightMessages) {
  // Markers flood in ~one network hop, so the recording window is milliseconds wide;
  // stage the in-flight messages deterministically: open a recording channel from a
  // peer and deliver messages "from" it before its marker would arrive.
  Start(6);
  bed_->Run(12);
  Node* node = bed_->node(3);
  const std::string peer = bed_->node(1)->addr();
  node->InjectEvent(Tuple::Make(
      "channelState", {Value::Str(node->addr()), Value::Str(peer + "7"),
                       Value::Str(peer), Value::Int(7), Value::Str("Start")}));
  bed_->Run(0.5);
  // An in-flight stabilizeRequest and notify from that peer are recorded (sr15a/b).
  node->InjectEvent(Tuple::Make(
      "stabilizeRequest",
      {Value::Str(node->addr()), Value::Id(1234), Value::Str(peer)}));
  node->InjectEvent(Tuple::Make(
      "notify", {Value::Str(node->addr()), Value::Id(1234), Value::Str(peer)}));
  // And an in-flight lookup response from the peer (sr16).
  node->InjectEvent(Tuple::Make(
      "lookupResults",
      {Value::Str(node->addr()), Value::Id(1), Value::Id(2), Value::Str(peer),
       Value::Id(3), Value::Str(peer)}));
  bed_->Run(1.0);
  EXPECT_EQ(node->TableContents("channelDumpStab").size(), 1u);
  EXPECT_EQ(node->TableContents("channelDumpNotify").size(), 1u);
  EXPECT_EQ(node->TableContents("channelDumpLookupRes").size(), 1u);
  // Once the channel's marker arrives the channel closes and recording stops.
  node->InjectEvent(Tuple::Make(
      "channelState", {Value::Str(node->addr()), Value::Str(peer + "7"),
                       Value::Str(peer), Value::Int(7), Value::Str("Done")}));
  bed_->Run(0.5);
  node->InjectEvent(Tuple::Make(
      "stabilizeRequest",
      {Value::Str(node->addr()), Value::Id(5678), Value::Str(peer)}));
  bed_->Run(0.5);
  EXPECT_EQ(node->TableContents("channelDumpStab").size(), 1u);
}

TEST_F(SnapshotTest, ExportImportEnablesOfflineForensics) {
  Start(6);
  bed_->Run(25);
  int64_t snap = LatestDoneSnapshot(bed_->node(0));
  ASSERT_GE(snap, 1);

  // Dump the snapshot from every node in the deployment.
  std::string dump;
  for (Node* node : bed_->nodes()) {
    dump += ExportSnapshot(node, snap);
  }
  ASSERT_FALSE(dump.empty());

  // A fresh "analyst" node on a separate network: no Chord, no deployment access.
  Network lab;
  NodeOptions opts;
  opts.introspection = false;
  Node* analyst = lab.AddNode("analyst", opts);
  std::string error;
  ASSERT_TRUE(ImportSnapshot(analyst, dump, &error)) << error;

  // The global frozen routing state is queryable: exactly one snapBestSucc row per
  // deployment node, and the snapped ring is a single cycle covering all six.
  std::vector<TupleRef> edges = analyst->TableContents("snapBestSucc");
  ASSERT_EQ(edges.size(), bed_->size());
  std::map<std::string, std::string> succ_of;
  for (const TupleRef& t : edges) {
    succ_of[t->field(0).AsString()] = t->field(2).AsString();
  }
  std::string at = edges[0]->field(0).AsString();
  std::set<std::string> visited;
  while (visited.insert(at).second) {
    at = succ_of[at];
  }
  EXPECT_EQ(visited.size(), bed_->size()) << "snapped ring is not a single cycle";

  // OverLog analysis runs offline against the dump: count the snapshot's members.
  ASSERT_TRUE(analyst->LoadProgram(
      "an1 members@A(E, count<*>) :- analyze@A(E), snapBestSucc@Orig(I, SA, SID).",
      &error))
      << error;
  std::vector<TupleRef> results;
  analyst->SubscribeEvent("members", [&](const TupleRef& t) { results.push_back(t); });
  analyst->InjectEvent(Tuple::Make("analyze", {Value::Str("analyst"), Value::Id(1)}));
  lab.RunFor(0.5);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0]->field(2), Value::Int(static_cast<int64_t>(bed_->size())));

  // Corrupt dumps are rejected (cut mid-tuple).
  EXPECT_FALSE(ImportSnapshot(analyst, dump.substr(0, dump.size() - 3), &error));
}

TEST_F(SnapshotTest, SnapshotModeConsistencyProbesScoreOne) {
  // Paper §3.3 "Routing Consistency Revisited": probes over a snapshot.
  Start(8);
  bed_->Run(25);
  Node* prober = bed_->node(2);
  int64_t snap = LatestDoneSnapshot(prober);
  ASSERT_GE(snap, 1);
  ConsistencyConfig cfg;
  cfg.probe_period = 4.0;
  cfg.tally_period = 2.0;
  cfg.tally_age = 2.0;
  cfg.snapshot_mode = true;
  cfg.snapshot_id = snap;
  std::string error;
  ASSERT_TRUE(InstallConsistencyProbes(prober, cfg, &error)) << error;
  std::vector<double> metrics;
  prober->SubscribeEvent("consistency", [&](const TupleRef& t) {
    metrics.push_back(t->field(2).ToDouble());
  });
  bed_->Run(20);
  ASSERT_GE(metrics.size(), 1u);
  for (double m : metrics) {
    EXPECT_DOUBLE_EQ(m, 1.0);
  }
}

}  // namespace
}  // namespace p2
