// Ring well-formedness detectors (paper §3.1.1): a healthy ring raises no alarms; a
// corrupted predecessor pointer is caught by both the active probe and the passive
// stabilization check; ID-ordering checks (§3.1.2) pass a full traversal on a healthy
// ring and flag closer-ID anomalies.

#include <gtest/gtest.h>

#include "src/mon/ordering.h"
#include "src/mon/ring_checks.h"
#include "src/testbed/testbed.h"

namespace p2 {
namespace {

TestbedConfig Config(int n) {
  TestbedConfig cfg;
  cfg.num_nodes = n;
  cfg.fleet.node_defaults.introspection = false;
  return cfg;
}

TEST(RingChecksTest, HealthyRingRaisesNoAlarms) {
  ChordTestbed bed(Config(8));
  bed.Run(80);
  ASSERT_TRUE(bed.RingIsCorrect());
  int alarms = 0;
  for (Node* node : bed.nodes()) {
    RingCheckConfig cfg;
    cfg.probe_period = 3.0;
    std::string error;
    ASSERT_TRUE(InstallRingChecks(node, cfg, &error)) << error;
    node->SubscribeEvent("inconsistentPred", [&](const TupleRef&) { ++alarms; });
  }
  bed.Run(30);
  EXPECT_EQ(alarms, 0);
  EXPECT_TRUE(bed.RingIsCorrect());
}

TEST(RingChecksTest, ActiveProbeDetectsCorruptedPred) {
  ChordTestbed bed(Config(8));
  bed.Run(80);
  ASSERT_TRUE(bed.RingIsCorrect());
  // Active probing is a distributed protocol: rp2 answers at the probed predecessor,
  // so the rules are installed fleet-wide (the paper's deployment model).
  Node* victim = bed.node(3);
  RingCheckConfig cfg;
  cfg.probe_period = 0.5;
  cfg.passive = false;
  std::string error;
  for (Node* node : bed.nodes()) {
    ASSERT_TRUE(InstallRingChecks(node, cfg, &error)) << error;
  }
  int alarms = 0;
  victim->SubscribeEvent("inconsistentPred", [&](const TupleRef&) { ++alarms; });
  bed.Run(5);
  ASSERT_EQ(alarms, 0);
  // Corrupt the predecessor pointer: point it at a far-away (but live) node. Chord
  // heals the pointer as soon as the true predecessor's next notify arrives, so the
  // fault is re-injected at several phases; the 0.5 s probe catches at least one
  // corruption window.
  Node* far = bed.node(6);
  ASSERT_NE(PredAddr(victim), far->addr());
  for (int i = 0; i < 5; ++i) {
    victim->InjectEvent(Tuple::Make("pred", {Value::Str(victim->addr()),
                                             Value::Id(ChordId(far)),
                                             Value::Str(far->addr())}));
    bed.Run(1.1);
  }
  bed.Run(5);
  EXPECT_GT(alarms, 0);
}

TEST(RingChecksTest, PassiveCheckDetectsCorruptedPred) {
  ChordTestbed bed(Config(8));
  bed.Run(80);
  ASSERT_TRUE(bed.RingIsCorrect());
  Node* victim = bed.node(2);
  RingCheckConfig cfg;
  cfg.active = false;  // rp4 only: zero extra messages
  std::string error;
  ASSERT_TRUE(InstallRingChecks(victim, cfg, &error)) << error;
  int alarms = 0;
  victim->SubscribeEvent("inconsistentPred", [&](const TupleRef&) { ++alarms; });
  bed.Run(10);
  ASSERT_EQ(alarms, 0);
  Node* far = nullptr;
  for (Node* candidate : bed.nodes()) {
    if (candidate != victim && candidate->addr() != PredAddr(victim) &&
        candidate->addr() != BestSuccAddr(victim)) {
      far = candidate;
      break;
    }
  }
  ASSERT_NE(far, nullptr);
  // The true predecessor's next stabilizeRequest exposes the mismatch at zero
  // additional message cost (rp4 only piggy-backs on existing traffic). Chord heals
  // the pointer within a notify round, so re-corrupt across several phases to
  // guarantee a stabilizeRequest lands inside a corruption window.
  for (int i = 0; i < 6; ++i) {
    victim->InjectEvent(Tuple::Make("pred", {Value::Str(victim->addr()),
                                             Value::Id(ChordId(far)),
                                             Value::Str(far->addr())}));
    bed.Run(1.3);
  }
  bed.Run(5);
  EXPECT_GT(alarms, 0);
}

TEST(OrderingTest, HealthyRingTraversalFindsOneWrap) {
  ChordTestbed bed(Config(8));
  bed.Run(80);
  ASSERT_TRUE(bed.RingIsCorrect());
  for (Node* node : bed.nodes()) {
    std::string error;
    ASSERT_TRUE(InstallOrderingChecks(node, &error)) << error;
  }
  Node* initiator = bed.node(0);
  int ok = 0;
  int problems = 0;
  initiator->SubscribeEvent("orderingOk", [&](const TupleRef&) { ++ok; });
  initiator->SubscribeEvent("orderingProblem", [&](const TupleRef&) { ++problems; });
  StartRingTraversal(initiator, 777);
  bed.Run(10);
  EXPECT_EQ(ok, 1);
  EXPECT_EQ(problems, 0);
}

TEST(OrderingTest, TraversalReportsWrongWrapCount) {
  ChordTestbed bed(Config(6));
  bed.Run(80);
  ASSERT_TRUE(bed.RingIsCorrect());
  for (Node* node : bed.nodes()) {
    std::string error;
    ASSERT_TRUE(InstallOrderingChecks(node, &error)) << error;
  }
  // Corrupt successor pointers so the traversal path is non-monotone in ID space and
  // still returns to the initiator: r0 -> r2 -> r1 (wrap down) -> r5 -> r0 (the true
  // wrap). Two wraps total; a correct ring would see exactly one.
  std::map<std::string, uint64_t> ids = bed.Ids();
  std::vector<std::pair<uint64_t, std::string>> ring;
  for (const auto& [addr, id] : ids) {
    ring.emplace_back(id, addr);
  }
  std::sort(ring.begin(), ring.end());
  auto redirect = [&](int from, int to) {
    Node* node = bed.network().GetNode(ring[from].second);
    node->InjectEvent(Tuple::Make("bestSucc", {Value::Str(node->addr()),
                                               Value::Id(ring[to].first),
                                               Value::Str(ring[to].second)}));
  };
  redirect(0, 2);
  redirect(2, 1);
  redirect(1, 5);  // ring[5] (max ID) naturally points back at ring[0]
  Node* initiator = bed.network().GetNode(ring[0].second);
  int problems = 0;
  initiator->SubscribeEvent("orderingProblem", [&](const TupleRef& t) {
    ++problems;
    EXPECT_EQ(t->field(4), Value::Int(2));  // two wrap-arounds observed
  });
  StartRingTraversal(initiator, 778);
  bed.Run(2);  // before stabilization heals the pointers
  EXPECT_GT(problems, 0);
}

TEST(OrderingTest, CloserIdFlagsUnknownCloserNode) {
  ChordTestbed bed(Config(8));
  bed.Run(80);
  ASSERT_TRUE(bed.RingIsCorrect());
  Node* observer = bed.node(4);
  std::string error;
  ASSERT_TRUE(InstallOrderingChecks(observer, &error)) << error;
  int alarms = 0;
  observer->SubscribeEvent("closerID", [&](const TupleRef&) { ++alarms; });
  // Synthesize a lookup response naming a node strictly between the observer's pred
  // and succ that the observer does not know: a ghost with ID = observer's ID - 1.
  uint64_t ghost_id = ChordId(observer) - 1;
  observer->InjectEvent(Tuple::Make(
      "lookupResults",
      {Value::Str(observer->addr()), Value::Id(ghost_id), Value::Id(ghost_id),
       Value::Str("ghost"), Value::Id(4242), Value::Str("ghost")}));
  bed.Run(1);
  EXPECT_EQ(alarms, 1);
}

}  // namespace
}  // namespace p2
