// State-oscillation detectors (paper §3.1.3): single oscillations, the repeat
// threshold, and collaborative "chaotic" declarations.

#include <gtest/gtest.h>

#include "src/mon/oscillation.h"
#include "src/net/network.h"
#include "src/testbed/testbed.h"

namespace p2 {
namespace {

// A minimal harness standing in for Chord: just the tables the detectors reference.
constexpr char kHarness[] = R"(
materialize(faultyNode, 60, 70, keys(1, 2)).
materialize(succ, infinity, 32, keys(1, 3)).
materialize(pred, infinity, 1, keys(1)).
)";

class OscillationTest : public ::testing::Test {
 protected:
  OscillationTest() : net_(NetworkConfig{0.005, 0.0, 0.0, 42}) {}

  Node* MakeNode(const std::string& addr, const OscillationConfig& cfg) {
    NodeOptions opts;
    opts.introspection = false;
    Node* node = net_.AddNode(addr, opts);
    std::string error;
    EXPECT_TRUE(node->LoadProgram(kHarness, &error)) << error;
    EXPECT_TRUE(InstallOscillationChecks(node, cfg, &error)) << error;
    return node;
  }

  // The victim `bad` was recently declared faulty at `node`.
  void MarkFaulty(Node* node, const std::string& bad) {
    node->InjectEvent(Tuple::Make(
        "faultyNode",
        {Value::Str(node->addr()), Value::Str(bad), Value::Double(net_.Now())}));
  }

  // Gossip re-offers the dead neighbor (the recycled-dead-neighbor pattern).
  void GossipDeadNeighbor(Node* node, const std::string& bad) {
    node->InjectEvent(Tuple::Make(
        "sendPred", {Value::Str(node->addr()), Value::Id(99), Value::Str(bad)}));
  }

  Network net_;
};

TEST_F(OscillationTest, SingleOscillationRecorded) {
  OscillationConfig cfg;
  cfg.check_period = 1.0;
  Node* n = MakeNode("n1", cfg);
  MarkFaulty(n, "deadbeef");
  net_.RunFor(0.1);
  GossipDeadNeighbor(n, "deadbeef");
  net_.RunFor(0.1);
  std::vector<TupleRef> oscills = n->TableContents("oscill");
  ASSERT_EQ(oscills.size(), 1u);
  EXPECT_EQ(oscills[0]->field(1), Value::Str("deadbeef"));
}

TEST_F(OscillationTest, GossipOfHealthyNeighborIsNotAnOscillation) {
  OscillationConfig cfg;
  Node* n = MakeNode("n1", cfg);
  GossipDeadNeighbor(n, "alive");  // never marked faulty
  net_.RunFor(0.1);
  EXPECT_TRUE(n->TableContents("oscill").empty());
}

TEST_F(OscillationTest, ReturnSuccAlsoTriggersDetection) {
  OscillationConfig cfg;
  Node* n = MakeNode("n1", cfg);
  MarkFaulty(n, "deadbeef");
  net_.RunFor(0.1);
  n->InjectEvent(Tuple::Make(
      "returnSucc", {Value::Str("n1"), Value::Id(5), Value::Str("deadbeef")}));
  net_.RunFor(0.1);
  EXPECT_EQ(n->TableContents("oscill").size(), 1u);
}

TEST_F(OscillationTest, RepeatThresholdRequiresThree) {
  OscillationConfig cfg;
  cfg.check_period = 1.0;
  cfg.repeat_threshold = 3;
  Node* n = MakeNode("n1", cfg);
  int repeats = 0;
  n->SubscribeEvent("repeatOscill", [&](const TupleRef&) { ++repeats; });
  MarkFaulty(n, "bad");
  for (int i = 0; i < 2; ++i) {
    net_.RunFor(0.3);  // distinct timestamps -> distinct oscill rows
    GossipDeadNeighbor(n, "bad");
  }
  net_.RunFor(1.5);  // a check period passes
  EXPECT_EQ(repeats, 0) << "two oscillations are below the threshold";
  GossipDeadNeighbor(n, "bad");
  net_.RunFor(1.5);
  EXPECT_GT(repeats, 0);
}

TEST_F(OscillationTest, OscillationsAgeOutOfTheWindow) {
  OscillationConfig cfg;
  cfg.history_window = 2.0;
  cfg.check_period = 1.0;
  Node* n = MakeNode("n1", cfg);
  int repeats = 0;
  n->SubscribeEvent("repeatOscill", [&](const TupleRef&) { ++repeats; });
  MarkFaulty(n, "bad");
  // Three oscillations, but spread wider than the history window.
  for (int i = 0; i < 3; ++i) {
    GossipDeadNeighbor(n, "bad");
    net_.RunFor(1.6);
    MarkFaulty(n, "bad");  // keep the faultyNode row alive
  }
  EXPECT_EQ(repeats, 0);
}

TEST_F(OscillationTest, RepeatReportsPropagateToNeighborhood) {
  OscillationConfig cfg;
  cfg.check_period = 1.0;
  Node* reporter = MakeNode("r1", cfg);
  Node* succ_nbr = MakeNode("s1", cfg);
  Node* pred_nbr = MakeNode("p1", cfg);
  // reporter's ring neighborhood.
  reporter->InjectEvent(Tuple::Make(
      "succ", {Value::Str("r1"), Value::Id(10), Value::Str("s1")}));
  reporter->InjectEvent(Tuple::Make(
      "pred", {Value::Str("r1"), Value::Id(5), Value::Str("p1")}));
  MarkFaulty(reporter, "bad");
  for (int i = 0; i < 3; ++i) {
    net_.RunFor(0.3);
    GossipDeadNeighbor(reporter, "bad");
  }
  net_.RunFor(2.0);
  // os5-os7: the report lands in the reporter's own table and both neighbors'.
  for (Node* node : {reporter, succ_nbr, pred_nbr}) {
    std::vector<TupleRef> rows = node->TableContents("nbrOscill");
    ASSERT_GE(rows.size(), 1u) << node->addr();
    EXPECT_EQ(rows[0]->field(1), Value::Str("bad"));
    EXPECT_EQ(rows[0]->field(2), Value::Str("r1"));
  }
}

TEST_F(OscillationTest, ChaoticRequiresManyReporters) {
  OscillationConfig cfg;
  cfg.chaotic_threshold = 3;  // strictly more than 3 reporters
  Node* n = MakeNode("n1", cfg);
  int chaotic = 0;
  n->SubscribeEvent("chaotic", [&](const TupleRef& t) {
    ++chaotic;
    EXPECT_EQ(t->field(1), Value::Str("bad"));
  });
  auto report = [&](const std::string& reporter) {
    n->InjectEvent(Tuple::Make(
        "nbrOscill", {Value::Str("n1"), Value::Str("bad"), Value::Str(reporter)}));
  };
  report("r1");
  report("r2");
  report("r3");
  net_.RunFor(0.2);
  EXPECT_EQ(chaotic, 0) << "three reporters are not more than three";
  report("r4");
  net_.RunFor(0.2);
  EXPECT_GT(chaotic, 0);
}

// End-to-end: a genuinely oscillating Chord deployment. We force the pattern by
// repeatedly feeding a dead node through gossip on a live ring.
TEST_F(OscillationTest, EndToEndOnChordRing) {
  TestbedConfig tb;
  tb.num_nodes = 5;
  tb.fleet.node_defaults.introspection = false;
  ChordTestbed bed(tb);
  bed.Run(60);
  ASSERT_TRUE(bed.RingIsCorrect());
  Node* node = bed.node(2);
  OscillationConfig cfg;
  cfg.check_period = 2.0;
  cfg.collaborative = false;
  std::string error;
  ASSERT_TRUE(InstallOscillationChecks(node, cfg, &error)) << error;
  int repeats = 0;
  node->SubscribeEvent("repeatOscill", [&](const TupleRef&) { ++repeats; });
  // The dead neighbor: marked faulty, then recycled via gossip three times.
  node->InjectEvent(Tuple::Make(
      "faultyNode",
      {Value::Str(node->addr()), Value::Str("zombie"), Value::Double(bed.network().Now())}));
  for (int i = 0; i < 3; ++i) {
    bed.Run(0.5);
    node->InjectEvent(Tuple::Make(
        "sendPred", {Value::Str(node->addr()), Value::Id(123), Value::Str("zombie")}));
  }
  bed.Run(5);
  EXPECT_GT(repeats, 0);
}

}  // namespace
}  // namespace p2
