// Fault matrix for Chandy-Lamport snapshots (docs/ROBUSTNESS.md): with markers on
// the reliable class a snapshot completes under heavy message loss; with the
// reliable class ablated it aborts with a snapDiag row instead of hanging. The CI
// loss sweep overrides the loss rate via P2_LOSS_RATE.

#include <gtest/gtest.h>

#include <cstdlib>

#include "src/mon/snapshot.h"
#include "src/testbed/testbed.h"

namespace p2 {
namespace {

double LossRate() {
  const char* env = std::getenv("P2_LOSS_RATE");
  return env != nullptr ? std::atof(env) : 0.2;
}

// The CI TSan job re-runs the fault matrix on a sharded fleet via P2_SHARDS.
int ShardsFromEnv() {
  const char* env = std::getenv("P2_SHARDS");
  return env != nullptr ? std::atoi(env) : 1;
}

// Forms the ring loss-free, then turns on pairwise link loss and installs the
// snapshot machinery. Chord's soft-state refresh tolerates the loss; the marker
// flood is what needs (or misses) the reliable class.
std::unique_ptr<ChordTestbed> LossyRing(int nodes, bool reliable,
                                        double abort_timeout) {
  TestbedConfig tb;
  tb.num_nodes = nodes;
  tb.fleet.shards = ShardsFromEnv();
  tb.fleet.node_defaults.introspection = false;
  tb.fleet.node_defaults.reliable_transport = reliable;
  auto bed = std::make_unique<ChordTestbed>(tb);
  bed->Run(100);
  EXPECT_TRUE(bed->RingIsCorrect());
  double loss = LossRate();
  for (Node* src : bed->nodes()) {
    for (Node* dst : bed->nodes()) {
      if (src != dst) {
        bed->network().SetLinkFault(src->addr(), dst->addr(), {loss});
      }
    }
  }
  for (size_t i = 0; i < bed->size(); ++i) {
    SnapshotConfig cfg;
    cfg.snap_period = 10.0;
    cfg.initiator = (i == 0);
    cfg.abort_timeout = abort_timeout;
    std::string error;
    EXPECT_TRUE(InstallSnapshot(bed->node(i), cfg, &error)) << error;
  }
  return bed;
}

TEST(SnapshotFaultTest, CompletesUnderLossWithReliableMarkers) {
  auto bed = LossyRing(6, /*reliable=*/true, /*abort_timeout=*/0);
  bed->Run(60);
  for (Node* node : bed->nodes()) {
    EXPECT_GE(LatestDoneSnapshot(node), 1)
        << node->addr() << " under " << LossRate() << " loss";
  }
}

TEST(SnapshotFaultTest, AbortsWithDiagnosticInsteadOfHangingWithoutReliableClass) {
  // Ablation: best-effort markers under loss. Some node misses a marker on some
  // incoming channel eventually; that snapshot must flip to "Aborted" with a
  // snapDiag row rather than sit in "Snapping" forever.
  auto bed = LossyRing(6, /*reliable=*/false, /*abort_timeout=*/8.0);
  bed->Run(120);
  bool aborted_somewhere = false;
  for (Node* node : bed->nodes()) {
    std::vector<TupleRef> diags = node->TableContents("snapDiag");
    for (const TupleRef& d : diags) {
      aborted_somewhere = true;
      // snapDiag(NAddr, I, Reason, T)
      EXPECT_EQ(d->field(2).AsString(), "timeout");
    }
    // The abort rules guarantee no snapshot lingers in "Snapping" past the
    // timeout + one check period.
    for (const TupleRef& s : node->TableContents("snapState")) {
      if (s->field(2).AsString() != "Snapping") {
        continue;
      }
      double started = 0;
      for (const TupleRef& st : node->TableContents("snapStarted")) {
        if (st->field(1).ToInt() == s->field(1).ToInt()) {
          started = st->field(2).ToDouble();
        }
      }
      EXPECT_LT(bed->network().Now() - started, 10.0)
          << node->addr() << " snapshot " << s->field(1).ToInt() << " hung";
    }
  }
  EXPECT_TRUE(aborted_somewhere)
      << "with " << LossRate() << " loss and best-effort markers, at least one "
      << "snapshot round should have lost a marker";
}

TEST(SnapshotFaultTest, ChanFailedAbortsInFlightSnapshot) {
  // A reliable channel that exhausts its retransmissions while the node is
  // snapping aborts the snapshot with a "chanFailed" diagnostic (rule sra2).
  TestbedConfig tb;
  tb.num_nodes = 6;
  tb.fleet.node_defaults.introspection = false;
  tb.fleet.node_defaults.rel_rto = 0.2;
  tb.fleet.node_defaults.rel_rto_max = 0.8;
  tb.fleet.node_defaults.rel_max_retx = 3;
  ChordTestbed bed(tb);
  bed.Run(100);
  ASSERT_TRUE(bed.RingIsCorrect());
  for (size_t i = 0; i < bed.size(); ++i) {
    SnapshotConfig cfg;
    cfg.snap_period = 10.0;
    cfg.initiator = (i == 0);
    cfg.abort_timeout = 30.0;  // long: the chanFailed path must win, not the timer
    std::string error;
    ASSERT_TRUE(InstallSnapshot(bed.node(i), cfg, &error)) << error;
  }
  // Cut the initiator off right as it starts a snapshot: its markers exhaust
  // their retransmissions and every outgoing channel fails.
  bed.Run(9.0);
  std::vector<std::string> others;
  for (size_t i = 1; i < bed.size(); ++i) {
    others.push_back(bed.node(i)->addr());
  }
  bed.network().Partition({bed.node(0)->addr()}, others);
  bed.Run(30.0);
  std::vector<TupleRef> diags = bed.node(0)->TableContents("snapDiag");
  ASSERT_FALSE(diags.empty());
  bool chan_failed_diag = false;
  for (const TupleRef& d : diags) {
    if (d->field(2).AsString() == "chanFailed") {
      chan_failed_diag = true;
    }
  }
  EXPECT_TRUE(chan_failed_diag);
  bool aborted = false;
  for (const TupleRef& s : bed.node(0)->TableContents("snapState")) {
    if (s->field(2).AsString() == "Aborted") {
      aborted = true;
    }
  }
  EXPECT_TRUE(aborted);
}

}  // namespace
}  // namespace p2
