// Proactive routing-consistency probes (paper §3.1.4): a converged ring yields a
// consistency metric of 1.0; degraded conditions drive it below 1 and trip the alarm.

#include <gtest/gtest.h>

#include "src/mon/consistency.h"
#include "src/testbed/testbed.h"

namespace p2 {
namespace {

ConsistencyConfig FastProbes() {
  ConsistencyConfig cfg;
  cfg.probe_period = 4.0;
  cfg.tally_period = 2.0;
  cfg.tally_age = 2.0;
  return cfg;
}

TEST(ConsistencyTest, ConvergedRingScoresOne) {
  TestbedConfig tb;
  tb.num_nodes = 8;
  tb.fleet.node_defaults.introspection = false;
  ChordTestbed bed(tb);
  bed.Run(100);
  ASSERT_TRUE(bed.RingIsCorrect());
  Node* prober = bed.node(3);
  std::string error;
  ASSERT_TRUE(InstallConsistencyProbes(prober, FastProbes(), &error)) << error;
  std::vector<double> metrics;
  prober->SubscribeEvent("consistency", [&](const TupleRef& t) {
    metrics.push_back(t->field(2).ToDouble());
  });
  int alarms = 0;
  prober->SubscribeEvent("consAlarm", [&](const TupleRef&) { ++alarms; });
  bed.Run(30);
  ASSERT_GE(metrics.size(), 3u);
  for (double m : metrics) {
    EXPECT_DOUBLE_EQ(m, 1.0);
  }
  EXPECT_EQ(alarms, 0);
}

TEST(ConsistencyTest, ProbeStateIsReclaimed) {
  // cs10/cs11 delete tallied probe state; tables must not grow without bound.
  TestbedConfig tb;
  tb.num_nodes = 6;
  tb.fleet.node_defaults.introspection = false;
  ChordTestbed bed(tb);
  bed.Run(80);
  Node* prober = bed.node(1);
  std::string error;
  ASSERT_TRUE(InstallConsistencyProbes(prober, FastProbes(), &error)) << error;
  bed.Run(40);
  // With probes every 4 s and tallies every 2 s, tallied probes leave only the
  // soft-state remnants (conRespTable etc.), bounded well under one probe's worth
  // per outstanding window.
  EXPECT_LE(prober->TableContents("lookupCluster").size(), 2u);
  EXPECT_LE(prober->TableContents("conLookupTable").size(),
            prober->TableContents("uniqueFinger").size() * 2);
}

TEST(ConsistencyTest, HeavyLossDegradesMetricAndRaisesAlarm) {
  TestbedConfig tb;
  tb.num_nodes = 8;
  tb.fleet.node_defaults.introspection = false;
  ChordTestbed bed(tb);
  bed.Run(100);
  ASSERT_TRUE(bed.RingIsCorrect());

  // Degrade the prober's view directly: wipe a random subset of responses by making
  // some lookups unanswerable — we emulate it by injecting bogus unique fingers that
  // point at black holes, so a fraction of the probe's lookups never return.
  Node* prober = bed.node(2);
  for (int i = 0; i < 6; ++i) {
    prober->InjectEvent(Tuple::Make(
        "uniqueFinger", {Value::Str(prober->addr()),
                         Value::Str("blackhole" + std::to_string(i)),
                         Value::Id(1000 + static_cast<uint64_t>(i))}));
  }
  ConsistencyConfig cfg = FastProbes();
  cfg.alarm_threshold = 0.95;
  std::string error;
  ASSERT_TRUE(InstallConsistencyProbes(prober, cfg, &error)) << error;
  std::vector<double> metrics;
  prober->SubscribeEvent("consistency", [&](const TupleRef& t) {
    metrics.push_back(t->field(2).ToDouble());
  });
  int alarms = 0;
  prober->SubscribeEvent("consAlarm", [&](const TupleRef&) { ++alarms; });
  bed.Run(10);  // within the fingers' lifetime
  ASSERT_GE(metrics.size(), 1u);
  EXPECT_LT(metrics[0], 1.0);
  EXPECT_GT(alarms, 0);
}

}  // namespace
}  // namespace p2
