// Execution profiler (paper §3.2): backward traversal over ruleExec/tupleTable
// decomposes a lookup's latency into rule / network / local-queue time.

#include <gtest/gtest.h>

#include "src/mon/consistency.h"
#include "src/mon/profiler.h"
#include "src/testbed/testbed.h"

namespace p2 {
namespace {

class ProfilerTest : public ::testing::Test {
 protected:
  void Start(int nodes) {
    TestbedConfig tb;
    tb.num_nodes = nodes;
    tb.fleet.node_defaults.introspection = false;
    tb.fleet.node_defaults.tracing = true;  // the profiler consumes ruleExec/tupleTable
    bed_ = std::make_unique<ChordTestbed>(tb);
    bed_->Run(100);
    ASSERT_TRUE(bed_->RingIsCorrect());
  }

  std::unique_ptr<ChordTestbed> bed_;
};

TEST_F(ProfilerTest, DecomposesConsistencyLookupLatency) {
  Start(6);
  Node* prober = bed_->node(2);
  ConsistencyConfig probes;
  probes.probe_period = 5.0;
  probes.tally_period = 60.0;  // keep probe state around; we only need the lookups
  std::string error;
  ASSERT_TRUE(InstallConsistencyProbes(prober, probes, &error)) << error;
  ProfilerConfig prof;
  prof.target_rule = "cs2";
  for (Node* node : bed_->nodes()) {
    ASSERT_TRUE(InstallProfiler(node, prof, &error)) << error;
  }

  // Capture the first consistency-lookup response and trace it backward.
  struct Captured {
    TupleRef tuple;
    double at = -1;
  };
  Captured cap;
  prober->SubscribeEvent("lookupResults", [&](const TupleRef& t) {
    if (cap.at >= 0) {
      return;
    }
    // Only consistency-probe responses trace back to cs2; finger-fix responses
    // originate from a periodic event with no recorded provenance.
    for (const TupleRef& row : prober->TableContents("conLookupTable")) {
      if (row->arity() >= 3 && row->field(2) == t->field(4)) {
        cap.tuple = t;
        cap.at = bed_->network().Now();
        return;
      }
    }
  });
  std::vector<TupleRef> reports;
  for (Node* node : bed_->nodes()) {
    node->SubscribeEvent("report", [&](const TupleRef& t) { reports.push_back(t); });
  }
  bed_->Run(8);  // one probe fires
  ASSERT_GE(cap.at, 0) << "no consistency lookup response observed";
  StartTrace(prober, cap.tuple, cap.at);
  bed_->Run(5);

  ASSERT_GE(reports.size(), 1u);
  // report(NAddr, ID, RuleT, NetT, LocalT)
  const TupleRef& report = reports[0];
  double rule_t = report->field(2).ToDouble();
  double net_t = report->field(3).ToDouble();
  double local_t = report->field(4).ToDouble();
  EXPECT_GE(rule_t, 0.0);
  EXPECT_GE(net_t, 0.0);
  EXPECT_GE(local_t, 0.0);
  // The lookup crossed the network at least once (prober -> finger), so network time
  // must dominate in this simulation (per-hop latency 20-30 ms, rule time ~0).
  EXPECT_GT(net_t, 0.01);
  // Total decomposition cannot exceed the observed end-to-end window.
  EXPECT_LE(rule_t + net_t + local_t, cap.at + 0.001);
}

TEST_F(ProfilerTest, TraversalStopsAtTargetRule) {
  Start(4);
  // Two-rule local chain: src (target) -> mid -> dst. The report must carry the
  // decomposition only back to `src`, and `trav` must never walk past it.
  Node* node = bed_->node(1);
  std::string error;
  ASSERT_TRUE(node->LoadProgram(
      "src mid@N(X) :- kick@N(X).\n"
      "mid2 dst@N(X) :- mid@N(X).",
      &error))
      << error;
  ProfilerConfig prof;
  prof.target_rule = "src";
  ASSERT_TRUE(InstallProfiler(node, prof, &error)) << error;
  TupleRef dst_tuple;
  node->SubscribeEvent("dst", [&](const TupleRef& t) { dst_tuple = t; });
  node->InjectEvent(Tuple::Make("kick", {Value::Str(node->addr()), Value::Id(7)}));
  bed_->Run(1);
  ASSERT_NE(dst_tuple, nullptr);
  std::vector<TupleRef> reports;
  node->SubscribeEvent("report", [&](const TupleRef& t) { reports.push_back(t); });
  StartTrace(node, dst_tuple, bed_->network().Now());
  bed_->Run(2);
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_DOUBLE_EQ(reports[0]->field(3).ToDouble(), 0.0);  // never crossed the network
}

TEST_F(ProfilerTest, NoReportWithoutTracing) {
  // On an untraced node the walk finds no provenance and dies silently.
  TestbedConfig tb;
  tb.num_nodes = 2;
  tb.fleet.node_defaults.introspection = false;
  tb.fleet.node_defaults.tracing = false;
  ChordTestbed bed(tb);
  bed.Run(20);
  Node* node = bed.node(0);
  std::string error;
  ASSERT_TRUE(node->LoadProgram("srcq midq@N(X) :- kickq@N(X).", &error)) << error;
  ProfilerConfig prof;
  prof.target_rule = "srcq";
  ASSERT_TRUE(InstallProfiler(node, prof, &error)) << error;
  TupleRef mid;
  node->SubscribeEvent("midq", [&](const TupleRef& t) { mid = t; });
  node->InjectEvent(Tuple::Make("kickq", {Value::Str(node->addr()), Value::Id(7)}));
  bed.Run(1);
  ASSERT_NE(mid, nullptr);
  int reports = 0;
  node->SubscribeEvent("report", [&](const TupleRef&) { ++reports; });
  StartTrace(node, mid, bed.network().Now());
  bed.Run(2);
  EXPECT_EQ(reports, 0);
}

}  // namespace
}  // namespace p2
