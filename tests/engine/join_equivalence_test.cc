// Scan-vs-index equivalence: a program must produce identical table state whether
// the planner probes secondary indexes or falls back to full scans
// (NodeOptions::use_join_indexes). ForEachMatch yields matches in insertion order
// precisely so the two access paths explore join branches in the same order; these
// tests run the same deterministic workloads both ways and diff every table.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "src/mon/profiler.h"
#include "src/mon/ring_checks.h"
#include "src/net/network.h"
#include "src/testbed/testbed.h"

namespace p2 {
namespace {

// Every non-system table as a sorted row-string multiset. Introspection (sys*)
// tables are skipped — they intentionally differ between the two modes (sysIndexStat,
// ixprobe element kinds) — as are the trace tables, whose GC cadence is not part of
// the equivalence contract.
std::map<std::string, std::vector<std::string>> DumpTables(Node* node) {
  std::map<std::string, std::vector<std::string>> out;
  double now = node->Now();
  for (Table* table : node->catalog().AllTables()) {
    const std::string& name = table->name();
    if (name.rfind("sys", 0) == 0 || name == "ruleExec" || name == "tupleTable") {
      continue;
    }
    std::vector<std::string> rows;
    table->ForEachLive(now, [&rows](const TupleRef& t) {
      rows.push_back(t->ToString());
      return true;
    });
    std::sort(rows.begin(), rows.end());
    out[name] = std::move(rows);
  }
  return out;
}

size_t TotalIndexes(Node* node) {
  size_t total = 0;
  for (Table* table : node->catalog().AllTables()) {
    total += table->NumIndexes();
  }
  return total;
}

void ExpectSameDumps(const std::map<std::string, std::vector<std::string>>& indexed,
                     const std::map<std::string, std::vector<std::string>>& scanned) {
  ASSERT_EQ(indexed.size(), scanned.size());
  for (const auto& [name, rows] : indexed) {
    auto it = scanned.find(name);
    ASSERT_NE(it, scanned.end()) << "table " << name << " missing in scan run";
    EXPECT_EQ(rows, it->second) << "table " << name << " diverged";
  }
}

// A single-node workload covering all three access paths: r1 probes kv by its full
// primary key (key_lookup) and tag through a secondary index on the value column;
// r2 anti-joins tag through the same index; r3 leaves tag unbound (scan fallback).
// Soft state churns: short lifetimes plus tight size bounds force expiry, replace,
// refresh, and eviction while the indexes are live.
constexpr char kWorkload[] = R"(
  materialize(kv, 6, 48, keys(1, 2)).
  materialize(tag, 6, 48, keys(1, 2)).
  materialize(out, 30, 512, keys(1, 2, 3)).
  materialize(untagged, 30, 512, keys(1, 2)).
  materialize(pairs, 30, 1024, keys(1, 2, 3)).
  r1 out@N(K, V, T) :- probe@N(K), kv@N(K, V), tag@N(T, V).
  r2 untagged@N(K, V) :- probe@N(K), kv@N(K, V), not tag@N(T, V).
  r3 pairs@N(K, V, T) :- rake@N(X), kv@N(K, V), tag@N(T, W), W < X.
)";

std::map<std::string, std::vector<std::string>> RunWorkload(bool use_indexes,
                                                            size_t* num_indexes) {
  NetworkConfig net_cfg;
  net_cfg.latency = 0.01;
  net_cfg.jitter = 0.0;
  Network net(net_cfg);
  NodeOptions opts;
  opts.introspection = false;
  opts.use_join_indexes = use_indexes;
  Node* n = net.AddNode("n1", opts);
  std::string error;
  EXPECT_TRUE(n->LoadProgram(kWorkload, ParamMap(), &error)) << error;

  std::mt19937 rng(20260807);
  auto pick = [&rng](int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(rng);
  };
  const std::string addr = "n1";
  for (int step = 0; step < 400; ++step) {
    switch (pick(0, 5)) {
      case 0:
      case 1:
        n->InjectEvent(Tuple::Make(
            "kv", {Value::Str(addr), Value::Int(pick(0, 30)), Value::Int(pick(0, 12))}));
        break;
      case 2:
        n->InjectEvent(Tuple::Make(
            "tag", {Value::Str(addr), Value::Int(pick(0, 20)), Value::Int(pick(0, 12))}));
        break;
      case 3:
      case 4:
        n->InjectEvent(
            Tuple::Make("probe", {Value::Str(addr), Value::Int(pick(0, 30))}));
        break;
      default:
        n->InjectEvent(Tuple::Make("rake", {Value::Str(addr), Value::Int(pick(0, 12))}));
        break;
    }
    net.RunFor(0.05);
  }
  net.RunFor(1.0);
  *num_indexes = TotalIndexes(n);
  return DumpTables(n);
}

TEST(JoinEquivalenceTest, RandomizedWorkloadMatchesScanBaseline) {
  size_t indexes_on = 0;
  size_t indexes_off = 0;
  auto indexed = RunWorkload(/*use_indexes=*/true, &indexes_on);
  auto scanned = RunWorkload(/*use_indexes=*/false, &indexes_off);
  EXPECT_GT(indexes_on, 0u) << "workload never exercised a secondary index";
  EXPECT_EQ(indexes_off, 0u);
  ExpectSameDumps(indexed, scanned);
  // The workload must have derived something, or the comparison is vacuous.
  EXPECT_FALSE(indexed["out"].empty());
  EXPECT_FALSE(indexed["untagged"].empty());
  EXPECT_FALSE(indexed["pairs"].empty());
}

// Recursive derivation (the paper's path-vector quickstart) across three nodes.
TEST(JoinEquivalenceTest, PathVectorMatchesScanBaseline) {
  constexpr char kProgram[] = R"(
    materialize(link, infinity, 20, keys(1, 2)).
    materialize(path, infinity, 40, keys(1, 2, 3)).
    p1 path@A(B, [B], W) :- link@A(B, W).
    p2 path@B(C, [A] + P, W + Y) :- link@A(B, W), path@A(C, P, Y), f_size(P) < 3.
  )";
  auto run = [&](bool use_indexes) {
    NetworkConfig net_cfg;
    net_cfg.latency = 0.01;
    net_cfg.jitter = 0.0;
    Network net(net_cfg);
    NodeOptions opts;
    opts.introspection = false;
    opts.use_join_indexes = use_indexes;
    std::vector<Node*> nodes;
    for (const char* addr : {"a", "b", "c"}) {
      Node* n = net.AddNode(addr, opts);
      std::string error;
      EXPECT_TRUE(n->LoadProgram(kProgram, ParamMap(), &error)) << error;
      nodes.push_back(n);
    }
    auto link = [](Node* n, const std::string& from, const std::string& to, int w) {
      n->InjectEvent(Tuple::Make(
          "link", {Value::Str(from), Value::Str(to), Value::Int(w)}));
    };
    link(nodes[0], "a", "b", 1);
    link(nodes[1], "b", "a", 1);
    link(nodes[1], "b", "c", 2);
    link(nodes[2], "c", "b", 2);
    net.RunFor(5.0);
    std::map<std::string, std::vector<std::string>> all;
    for (Node* n : nodes) {
      for (auto& [name, rows] : DumpTables(n)) {
        all[n->addr() + "/" + name] = std::move(rows);
      }
    }
    return all;
  };
  auto indexed = run(true);
  auto scanned = run(false);
  ExpectSameDumps(indexed, scanned);
  EXPECT_FALSE(indexed["a/path"].empty());
}

// A full Chord fleet with ring-check monitors and tracing+profiler enabled — the
// hardest case for index consistency, because the tracer writes ruleExec rows
// synchronously while profiler strands iterate that same table.
TEST(JoinEquivalenceTest, ChordFleetWithMonitorsMatchesScanBaseline) {
  auto run = [](bool use_indexes, size_t* num_indexes) {
    TestbedConfig tb;
    tb.num_nodes = 8;
    tb.fleet.node_defaults.introspection = false;
    tb.fleet.node_defaults.tracing = true;
    tb.fleet.node_defaults.use_join_indexes = use_indexes;
    ChordTestbed bed(tb);
    bed.Run(80);
    EXPECT_TRUE(bed.RingIsCorrect());
    std::string error;
    RingCheckConfig checks;
    checks.probe_period = 3.0;
    ProfilerConfig prof;
    prof.target_rule = "rp1";
    for (Node* node : bed.nodes()) {
      EXPECT_TRUE(InstallRingChecks(node, checks, &error)) << error;
      EXPECT_TRUE(InstallProfiler(node, prof, &error)) << error;
    }
    bed.Run(25);
    IssueLookup(bed.node(3), 1234567, 1);
    IssueLookup(bed.node(5), 7654321, 2);
    bed.Run(10);
    *num_indexes = 0;
    std::map<std::string, std::vector<std::string>> all;
    for (Node* node : bed.nodes()) {
      *num_indexes += TotalIndexes(node);
      for (auto& [name, rows] : DumpTables(node)) {
        all[node->addr() + "/" + name] = std::move(rows);
      }
    }
    return all;
  };
  size_t indexes_on = 0;
  size_t indexes_off = 0;
  auto indexed = run(true, &indexes_on);
  auto scanned = run(false, &indexes_off);
  EXPECT_EQ(indexes_off, 0u);
  ExpectSameDumps(indexed, scanned);
}

// ---- engine hot-path ablation matrix (docs/SCALING.md) ----
//
// Tuple arenas, batched delta propagation, and zero-copy wire decode are pure
// mechanical optimizations: every cell of the on/off matrix must reproduce the
// baseline bit-for-bit — table contents, ruleExec traces, and the deterministic
// node counters. Unlike the scan-vs-index comparison above, the trace tables ARE
// part of this contract (the toggles may not change what executed, only how fast).

struct HotPathConfig {
  bool arenas = true;
  bool batch = true;
  bool zerocopy = true;
  std::string Label() const {
    return std::string("arenas=") + (arenas ? "on" : "off") +
           " batch=" + (batch ? "on" : "off") +
           " zerocopy=" + (zerocopy ? "on" : "off");
  }
};

// The sorted ruleExec rows: virtual-time stamps and tuple ids only, so they are
// deterministic and must be identical across the matrix.
std::vector<std::string> DumpTraces(Node* node) {
  std::vector<std::string> rows;
  for (const TupleRef& t : node->TableContents("ruleExec")) {
    rows.push_back(t->ToString());
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

// The deterministic counter subset: everything event-count-shaped. Queue
// high-water marks are excluded — batching legitimately pops a run before
// processing it, so instantaneous depths differ even though the work is
// identical.
std::string CounterLine(Node* node) {
  const NodeStats& s = node->stats();
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "sent=%llu recv=%llu bsent=%llu brecv=%llu deliv=%llu trig=%llu "
                "emit=%llu agg=%llu dead=%llu decerr=%llu expired=%llu",
                (unsigned long long)s.msgs_sent, (unsigned long long)s.msgs_received,
                (unsigned long long)s.bytes_sent,
                (unsigned long long)s.bytes_received,
                (unsigned long long)s.local_deliveries,
                (unsigned long long)s.strand_triggers,
                (unsigned long long)s.tuples_emitted,
                (unsigned long long)s.agg_reevals,
                (unsigned long long)s.dead_letters,
                (unsigned long long)s.decode_errors,
                (unsigned long long)s.tuples_expired);
  return buf;
}

struct MatrixObservation {
  std::map<std::string, std::vector<std::string>> tables;
  std::map<std::string, std::vector<std::string>> traces;  // addr -> ruleExec rows
  std::map<std::string, std::string> counters;             // addr -> counter line
};

void ExpectSameObservation(const HotPathConfig& cfg, const MatrixObservation& base,
                           const MatrixObservation& got) {
  ExpectSameDumps(base.tables, got.tables);
  ASSERT_EQ(base.traces.size(), got.traces.size()) << cfg.Label();
  for (const auto& [addr, rows] : base.traces) {
    auto it = got.traces.find(addr);
    ASSERT_NE(it, got.traces.end()) << cfg.Label() << " node " << addr;
    EXPECT_EQ(rows, it->second)
        << cfg.Label() << ": ruleExec trace diverged on " << addr;
  }
  for (const auto& [addr, line] : base.counters) {
    auto it = got.counters.find(addr);
    ASSERT_NE(it, got.counters.end()) << cfg.Label() << " node " << addr;
    EXPECT_EQ(line, it->second)
        << cfg.Label() << ": deterministic counters diverged on " << addr;
  }
}

// The randomized single-node workload under every hot-path cell, with tracing on
// so ruleExec rows join the contract. Zero-copy decode is exercised in the
// multi-node test below (a single node never decodes a wire message).
MatrixObservation RunWorkloadMatrixCell(const HotPathConfig& cfg) {
  NetworkConfig net_cfg;
  net_cfg.latency = 0.01;
  net_cfg.jitter = 0.0;
  Network net(net_cfg);
  NodeOptions opts;
  opts.introspection = false;
  opts.tracing = true;
  opts.tuple_arenas = cfg.arenas;
  opts.batch_deltas = cfg.batch;
  opts.zero_copy_decode = cfg.zerocopy;
  Node* n = net.AddNode("n1", opts);
  std::string error;
  EXPECT_TRUE(n->LoadProgram(kWorkload, ParamMap(), &error)) << error;
  std::mt19937 rng(20260807);
  auto pick = [&rng](int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(rng);
  };
  const std::string addr = "n1";
  for (int step = 0; step < 200; ++step) {
    switch (pick(0, 5)) {
      case 0:
      case 1:
        n->InjectEvent(Tuple::Make(
            "kv", {Value::Str(addr), Value::Int(pick(0, 30)), Value::Int(pick(0, 12))}));
        break;
      case 2:
        n->InjectEvent(Tuple::Make(
            "tag", {Value::Str(addr), Value::Int(pick(0, 20)), Value::Int(pick(0, 12))}));
        break;
      case 3:
      case 4:
        n->InjectEvent(
            Tuple::Make("probe", {Value::Str(addr), Value::Int(pick(0, 30))}));
        break;
      default:
        n->InjectEvent(Tuple::Make("rake", {Value::Str(addr), Value::Int(pick(0, 12))}));
        break;
    }
    net.RunFor(0.05);
  }
  net.RunFor(1.0);
  MatrixObservation obs;
  obs.tables = DumpTables(n);
  obs.traces["n1"] = DumpTraces(n);
  obs.counters["n1"] = CounterLine(n);
  return obs;
}

TEST(HotPathAblationMatrixTest, EngineWorkloadIdenticalAcrossAllCells) {
  MatrixObservation base = RunWorkloadMatrixCell(HotPathConfig{});
  EXPECT_FALSE(base.tables["out"].empty());
  EXPECT_FALSE(base.traces["n1"].empty());
  for (bool arenas : {true, false}) {
    for (bool batch : {true, false}) {
      HotPathConfig cfg{arenas, batch, /*zerocopy=*/true};
      if (arenas && batch) {
        continue;  // the baseline itself
      }
      ExpectSameObservation(cfg, base, RunWorkloadMatrixCell(cfg));
    }
  }
}

// Multi-node: wire messages actually cross the codec, so the zero-copy decoder
// joins the matrix. The path-vector program exercises lists and strings on the
// wire; tracing stays on and the counter lines include msgs/bytes received.
MatrixObservation RunPathVectorCell(const HotPathConfig& cfg) {
  constexpr char kProgram[] = R"(
    materialize(link, infinity, 20, keys(1, 2)).
    materialize(path, infinity, 40, keys(1, 2, 3)).
    p1 path@A(B, [B], W) :- link@A(B, W).
    p2 path@B(C, [A] + P, W + Y) :- link@A(B, W), path@A(C, P, Y), f_size(P) < 3.
  )";
  NetworkConfig net_cfg;
  net_cfg.latency = 0.01;
  net_cfg.jitter = 0.0;
  Network net(net_cfg);
  NodeOptions opts;
  opts.introspection = false;
  opts.tracing = true;
  opts.tuple_arenas = cfg.arenas;
  opts.batch_deltas = cfg.batch;
  opts.zero_copy_decode = cfg.zerocopy;
  std::vector<Node*> nodes;
  for (const char* addr : {"a", "b", "c"}) {
    Node* n = net.AddNode(addr, opts);
    std::string error;
    EXPECT_TRUE(n->LoadProgram(kProgram, ParamMap(), &error)) << error;
    nodes.push_back(n);
  }
  auto link = [](Node* n, const std::string& from, const std::string& to, int w) {
    n->InjectEvent(
        Tuple::Make("link", {Value::Str(from), Value::Str(to), Value::Int(w)}));
  };
  link(nodes[0], "a", "b", 1);
  link(nodes[1], "b", "a", 1);
  link(nodes[1], "b", "c", 2);
  link(nodes[2], "c", "b", 2);
  net.RunFor(5.0);
  MatrixObservation obs;
  for (Node* n : nodes) {
    for (auto& [name, rows] : DumpTables(n)) {
      obs.tables[n->addr() + "/" + name] = std::move(rows);
    }
    obs.traces[n->addr()] = DumpTraces(n);
    obs.counters[n->addr()] = CounterLine(n);
  }
  return obs;
}

TEST(HotPathAblationMatrixTest, PathVectorIdenticalAcrossAllEightCells) {
  MatrixObservation base = RunPathVectorCell(HotPathConfig{});
  EXPECT_FALSE(base.tables["a/path"].empty());
  for (bool arenas : {true, false}) {
    for (bool batch : {true, false}) {
      for (bool zerocopy : {true, false}) {
        HotPathConfig cfg{arenas, batch, zerocopy};
        if (arenas && batch && zerocopy) {
          continue;  // the baseline itself
        }
        ExpectSameObservation(cfg, base, RunPathVectorCell(cfg));
      }
    }
  }
}

}  // namespace
}  // namespace p2
