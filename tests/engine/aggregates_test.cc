// Per-event and continuous aggregate semantics (count<*>/min/max/avg).

#include <gtest/gtest.h>

#include "src/dataflow/aggregates.h"
#include "src/net/network.h"

namespace p2 {
namespace {

TEST(AggregatorTest, CountAlwaysHasResult) {
  Aggregator agg(AggKind::kCount);
  EXPECT_TRUE(agg.HasResult());
  EXPECT_EQ(agg.Result(), Value::Int(0));
  agg.Add(Value::Null());
  agg.Add(Value::Int(5));
  EXPECT_EQ(agg.Result(), Value::Int(2));
}

TEST(AggregatorTest, MinMaxRequireRows) {
  Aggregator mn(AggKind::kMin);
  EXPECT_FALSE(mn.HasResult());
  mn.Add(Value::Int(5));
  mn.Add(Value::Int(2));
  mn.Add(Value::Int(9));
  EXPECT_EQ(mn.Result(), Value::Int(2));
  Aggregator mx(AggKind::kMax);
  mx.Add(Value::Id(5));
  mx.Add(Value::Id(12));
  EXPECT_EQ(mx.Result(), Value::Id(12));
}

TEST(AggregatorTest, Avg) {
  Aggregator avg(AggKind::kAvg);
  avg.Add(Value::Int(2));
  avg.Add(Value::Int(4));
  EXPECT_EQ(avg.Result(), Value::Double(3.0));
}

TEST(GroupedAggregateTest, GroupsByKey) {
  GroupedAggregate groups(AggKind::kCount);
  groups.Add({Value::Str("a")}, Value::Null());
  groups.Add({Value::Str("a")}, Value::Null());
  groups.Add({Value::Str("b")}, Value::Null());
  int seen = 0;
  groups.ForEach([&](const ValueList& key, const Value& result) {
    ++seen;
    if (key[0] == Value::Str("a")) {
      EXPECT_EQ(result, Value::Int(2));
    } else {
      EXPECT_EQ(result, Value::Int(1));
    }
  });
  EXPECT_EQ(seen, 2);
}

class AggEngineTest : public ::testing::Test {
 protected:
  AggEngineTest() : net_(NetworkConfig{0.01, 0.0, 0.0, 42}) {
    NodeOptions opts;
    opts.introspection = false;
    node_ = net_.AddNode("n1", opts);
  }

  void Load(const std::string& program) {
    std::string error;
    ASSERT_TRUE(node_->LoadProgram(program, &error)) << error;
  }

  void Put(const std::string& table, ValueList fields) {
    ValueList full = {Value::Str("n1")};
    for (Value& v : fields) {
      full.push_back(std::move(v));
    }
    node_->InjectEvent(Tuple::Make(table, std::move(full)));
  }

  Network net_;
  Node* node_;
};

TEST_F(AggEngineTest, PerEventCountOverMatches) {
  Load(
      "materialize(s, infinity, 10, keys(1,2)).\n"
      "r1 n@N(K, count<*>) :- q@N(K), s@N(X).");
  std::vector<TupleRef> results;
  node_->SubscribeEvent("n", [&](const TupleRef& t) { results.push_back(t); });
  Put("s", {Value::Int(1)});
  Put("s", {Value::Int(2)});
  net_.RunFor(0.1);
  Put("q", {Value::Int(7)});
  net_.RunFor(0.1);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0]->field(1), Value::Int(7));
  EXPECT_EQ(results[0]->field(2), Value::Int(2));
}

TEST_F(AggEngineTest, PerEventCountEmptyIsZero) {
  // Paper rule sr8: the zero count is what detects "new snapshot".
  Load(
      "materialize(s, infinity, 10, keys(1,2)).\n"
      "r1 n@N(K, count<*>) :- q@N(K), s@N(K).");
  std::vector<TupleRef> results;
  node_->SubscribeEvent("n", [&](const TupleRef& t) { results.push_back(t); });
  Put("q", {Value::Int(7)});
  net_.RunFor(0.1);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0]->field(2), Value::Int(0));
}

TEST_F(AggEngineTest, PerEventMinEmptyEmitsNothing) {
  Load(
      "materialize(s, infinity, 10, keys(1,2)).\n"
      "r1 n@N(K, min<X>) :- q@N(K), s@N(X).");
  int count = 0;
  node_->SubscribeEvent("n", [&](const TupleRef&) { ++count; });
  Put("q", {Value::Int(7)});
  net_.RunFor(0.1);
  EXPECT_EQ(count, 0);
}

TEST_F(AggEngineTest, PerEventMinSelectsSmallest) {
  // Shape of paper rule l2: min over a computed distance.
  Load(
      "materialize(f, infinity, 10, keys(1,2)).\n"
      "r1 best@N(K, min<D>) :- q@N(K), f@N(FID), D := K - FID - 1.");
  std::vector<TupleRef> results;
  node_->SubscribeEvent("best", [&](const TupleRef& t) { results.push_back(t); });
  Put("f", {Value::Id(10)});
  Put("f", {Value::Id(90)});
  Put("f", {Value::Id(60)});
  net_.RunFor(0.1);
  Put("q", {Value::Id(100)});
  net_.RunFor(0.1);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0]->field(2), Value::Id(9));  // 100-90-1
}

TEST_F(AggEngineTest, ContinuousCountTracksTable) {
  Load(
      "materialize(bp, infinity, 10, keys(1,2)).\n"
      "materialize(nbp, infinity, 1, keys(1)).\n"
      "bp2 nbp@N(count<*>) :- bp@N(R).");
  Put("bp", {Value::Str("a")});
  net_.RunFor(0.1);
  std::vector<TupleRef> rows = node_->TableContents("nbp");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0]->field(1), Value::Int(1));
  Put("bp", {Value::Str("b")});
  Put("bp", {Value::Str("c")});
  net_.RunFor(0.1);
  EXPECT_EQ(node_->TableContents("nbp")[0]->field(1), Value::Int(3));
}

TEST_F(AggEngineTest, ContinuousCountRetractsOnExpiry) {
  // When the last underlying row expires, the materialized aggregate row is retracted
  // (not left stale, and not resurrected as a zero — see strand.cc Reevaluate).
  Load(
      "materialize(bp, 2, 10, keys(1,2)).\n"
      "materialize(nbp, infinity, 1, keys(1)).\n"
      "bp2 nbp@N(count<*>) :- bp@N(R).");
  Put("bp", {Value::Str("a")});
  net_.RunFor(1.0);
  EXPECT_EQ(node_->TableContents("nbp")[0]->field(1), Value::Int(1));
  net_.RunFor(3.0);  // bp expires; the sweep re-evaluates
  EXPECT_TRUE(node_->TableContents("nbp").empty());
  // An unmaterialized count head instead emits a final zero event.
  Load("cz zcount@N(count<*>) :- bp@N(R).");
  std::vector<TupleRef> events;
  node_->SubscribeEvent("zcount", [&](const TupleRef& t) { events.push_back(t); });
  Put("bp", {Value::Str("b")});
  net_.RunFor(1.0);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0]->field(1), Value::Int(1));
  net_.RunFor(3.0);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[1]->field(1), Value::Int(0));
}

TEST_F(AggEngineTest, ContinuousGroupedCount) {
  // Shape of paper rule cs6: response clusters per (probe, answer).
  Load(
      "materialize(resp, infinity, 100, keys(1,2,3)).\n"
      "materialize(cluster, infinity, 100, keys(1,2,3)).\n"
      "cs6 cluster@N(P, S, count<*>) :- resp@N(P, RID, S).");
  auto resp = [&](int probe, int rid, const std::string& s) {
    Put("resp", {Value::Int(probe), Value::Int(rid), Value::Str(s)});
  };
  resp(1, 1, "x");
  resp(1, 2, "x");
  resp(1, 3, "y");
  resp(2, 4, "z");
  net_.RunFor(0.1);
  std::vector<TupleRef> rows = node_->TableContents("cluster");
  ASSERT_EQ(rows.size(), 3u);
  int x_count = 0;
  for (const TupleRef& t : rows) {
    if (t->field(1) == Value::Int(1) && t->field(2) == Value::Str("x")) {
      x_count = static_cast<int>(t->field(3).ToInt());
    }
  }
  EXPECT_EQ(x_count, 2);
}

TEST_F(AggEngineTest, SumAggregates) {
  Load(
      "materialize(w, infinity, 10, keys(1,2)).\n"
      "materialize(total, infinity, 1, keys(1)).\n"
      "s1 total@N(sum<X>) :- w@N(X).\n"
      "s2 answer@N(K, sum<X>) :- ask@N(K), w@N(X).");
  Put("w", {Value::Int(3)});
  Put("w", {Value::Int(4)});
  net_.RunFor(0.1);
  // Continuous sum.
  std::vector<TupleRef> rows = node_->TableContents("total");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0]->field(1), Value::Int(7));
  // Per-event sum.
  std::vector<TupleRef> answers;
  node_->SubscribeEvent("answer", [&](const TupleRef& t) { answers.push_back(t); });
  Put("ask", {Value::Int(9)});
  net_.RunFor(0.1);
  ASSERT_EQ(answers.size(), 1u);
  EXPECT_EQ(answers[0]->field(2), Value::Int(7));
}

TEST_F(AggEngineTest, ContinuousMinWithJoinAndAssign) {
  // Shape of Chord's bs1: min ring distance over the successor table.
  Load(
      "materialize(node, infinity, 1, keys(1)).\n"
      "materialize(succ, infinity, 10, keys(1,2)).\n"
      "materialize(bestDist, infinity, 1, keys(1)).\n"
      "bs1 bestDist@N(min<D>) :- succ@N(SID), node@N(NID), D := SID - NID - 1.");
  Put("node", {Value::Id(100)});
  Put("succ", {Value::Id(150)});
  Put("succ", {Value::Id(120)});
  Put("succ", {Value::Id(90)});  // wraps: distance is huge
  net_.RunFor(0.1);
  std::vector<TupleRef> rows = node_->TableContents("bestDist");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0]->field(1), Value::Id(19));  // 120-100-1
}

TEST_F(AggEngineTest, ContinuousAggOnlyEmitsChanges) {
  Load(
      "materialize(bp, infinity, 10, keys(1,2)).\n"
      "cnt nbp@N(count<*>) :- bp@N(R).");  // head NOT materialized: observable event
  int emissions = 0;
  node_->SubscribeEvent("nbp", [&](const TupleRef&) { ++emissions; });
  Put("bp", {Value::Str("a")});
  net_.RunFor(0.5);
  EXPECT_EQ(emissions, 1);
  // Refresh with identical content: no change, no emission.
  Put("bp", {Value::Str("a")});
  net_.RunFor(0.5);
  EXPECT_EQ(emissions, 1);
  Put("bp", {Value::Str("b")});
  net_.RunFor(0.5);
  EXPECT_EQ(emissions, 2);
}

}  // namespace
}  // namespace p2
