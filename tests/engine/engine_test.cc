// End-to-end tests of program loading, planning, strand execution, routing, soft
// state, and deletion across the simulated network.

#include <gtest/gtest.h>

#include "src/net/network.h"

namespace p2 {
namespace {

class EngineTest : public ::testing::Test {
 protected:
  EngineTest() : net_(MakeConfig()) {}

  static NetworkConfig MakeConfig() {
    NetworkConfig cfg;
    cfg.latency = 0.01;
    cfg.jitter = 0.0;
    return cfg;
  }

  Node* AddNode(const std::string& addr) {
    NodeOptions opts;
    opts.introspection = false;
    return net_.AddNode(addr, opts);
  }

  void Load(Node* node, const std::string& program, ParamMap params = ParamMap()) {
    std::string error;
    ASSERT_TRUE(node->LoadProgram(program, params, &error)) << error;
  }

  // Counts events named `name` arriving at `node` into `counter`.
  void Count(Node* node, const std::string& name, int* counter) {
    node->SubscribeEvent(name, [counter](const TupleRef&) { ++*counter; });
  }

  Network net_;
};

TEST_F(EngineTest, PeriodicRuleFires) {
  Node* n = AddNode("n1");
  Load(n, "r1 tick@NAddr(E) :- periodic@NAddr(E, 1).");
  int ticks = 0;
  Count(n, "tick", &ticks);
  net_.RunFor(5.5);
  EXPECT_EQ(ticks, 5);
}

TEST_F(EngineTest, EventJoinsTable) {
  Node* n = AddNode("n1");
  Load(n,
       "materialize(conf, infinity, 10, keys(1,2)).\n"
       "r1 out@N(K, V) :- probe@N(K), conf@N(K, V).");
  n->InjectEvent(Tuple::Make("conf", {Value::Str("n1"), Value::Int(1), Value::Int(10)}));
  n->InjectEvent(Tuple::Make("conf", {Value::Str("n1"), Value::Int(2), Value::Int(20)}));
  std::vector<TupleRef> outs;
  n->SubscribeEvent("out", [&](const TupleRef& t) { outs.push_back(t); });
  net_.RunFor(0.1);
  n->InjectEvent(Tuple::Make("probe", {Value::Str("n1"), Value::Int(2)}));
  net_.RunFor(0.1);
  ASSERT_EQ(outs.size(), 1u);
  EXPECT_EQ(outs[0]->field(2), Value::Int(20));
}

TEST_F(EngineTest, TuplesRouteAcrossNetwork) {
  Node* a = AddNode("a");
  Node* b = AddNode("b");
  Load(a, "r1 hello@Other(NAddr, X) :- go@NAddr(Other, X).");
  Load(b, "materialize(greetings, infinity, 10, keys(1,2)).\n"
          "r2 greetings@N(From, X) :- hello@N(From, X).");
  a->InjectEvent(
      Tuple::Make("go", {Value::Str("a"), Value::Str("b"), Value::Int(7)}));
  net_.RunFor(1.0);
  std::vector<TupleRef> rows = b->TableContents("greetings");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0]->field(1), Value::Str("a"));
  EXPECT_EQ(rows[0]->field(2), Value::Int(7));
  EXPECT_GE(a->stats().msgs_sent, 1u);
  EXPECT_GE(b->stats().msgs_received, 1u);
}

// The paper §2 "all routes" example: path-vector routing as two rules.
TEST_F(EngineTest, PathVectorQuickstart) {
  // As in the paper, the naive rule would derive forever on cyclic topologies; a
  // hop-count filter bounds it (the paper bounds it with table size limits).
  const char* kProgram = R"(
    materialize(link, infinity, 20, keys(1, 2)).
    materialize(path, infinity, 40, keys(1, 2, 3)).
    p1 path@A(B, [B], W) :- link@A(B, W).
    p2 path@B(C, [A] + P, W + Y) :- link@A(B, W), path@A(C, P, Y), f_size(P) < 3.
  )";
  Node* a = AddNode("a");
  Node* b = AddNode("b");
  Node* c = AddNode("c");
  for (Node* n : {a, b, c}) {
    Load(n, kProgram);
  }
  // a -- b -- c chain; links are symmetric (paper's interpretation).
  auto link = [&](Node* n, const std::string& from, const std::string& to, int w) {
    n->InjectEvent(Tuple::Make("link", {Value::Str(from), Value::Str(to), Value::Int(w)}));
  };
  link(a, "a", "b", 1);
  link(b, "b", "a", 1);
  link(b, "b", "c", 2);
  link(c, "c", "b", 2);
  net_.RunFor(5.0);
  // c must have derived a path to a: rule p2 at b with link(b,c) and path(b,a).
  bool found = false;
  for (const TupleRef& t : c->TableContents("path")) {
    if (t->field(1) == Value::Str("a") && t->field(3) == Value::Int(3)) {
      found = true;
      // The hop list from c to a reads [b, a].
      const ValueList& hops = t->field(2).AsList();
      ASSERT_EQ(hops.size(), 2u);
      EXPECT_EQ(hops[0], Value::Str("b"));
      EXPECT_EQ(hops[1], Value::Str("a"));
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(EngineTest, IdenticalInsertDoesNotRefire) {
  Node* n = AddNode("n1");
  Load(n,
       "materialize(s, infinity, 10, keys(1,2)).\n"
       "r1 s@N(X) :- put@N(X).\n"
       "r2 echo@N(X) :- s@N(X).");
  int echoes = 0;
  Count(n, "echo", &echoes);
  auto put = [&] {
    n->InjectEvent(Tuple::Make("put", {Value::Str("n1"), Value::Int(5)}));
  };
  put();
  net_.RunFor(0.1);
  EXPECT_EQ(echoes, 1);
  put();  // identical content: refresh only, no delta
  net_.RunFor(0.1);
  EXPECT_EQ(echoes, 1);
}

TEST_F(EngineTest, DeleteRuleRemovesMatchingRows) {
  Node* n = AddNode("n1");
  Load(n,
       "materialize(s, infinity, 10, keys(1,2)).\n"
       "d1 delete s@N(X) :- drop@N(X), s@N(X).");
  for (int i = 0; i < 3; ++i) {
    n->InjectEvent(Tuple::Make("s", {Value::Str("n1"), Value::Int(i)}));
  }
  net_.RunFor(0.1);
  EXPECT_EQ(n->TableContents("s").size(), 3u);
  n->InjectEvent(Tuple::Make("drop", {Value::Str("n1"), Value::Int(1)}));
  net_.RunFor(0.1);
  std::vector<TupleRef> rows = n->TableContents("s");
  ASSERT_EQ(rows.size(), 2u);
  for (const TupleRef& t : rows) {
    EXPECT_NE(t->field(1), Value::Int(1));
  }
}

TEST_F(EngineTest, DeleteWithWildcardUnboundVars) {
  Node* n = AddNode("n1");
  Load(n,
       "materialize(s, infinity, 10, keys(1,2)).\n"
       "d1 delete s@N(X) :- dropAll@N(E).");  // X unbound: wildcard
  for (int i = 0; i < 3; ++i) {
    n->InjectEvent(Tuple::Make("s", {Value::Str("n1"), Value::Int(i)}));
  }
  net_.RunFor(0.1);
  n->InjectEvent(Tuple::Make("dropAll", {Value::Str("n1"), Value::Id(1)}));
  net_.RunFor(0.1);
  EXPECT_EQ(n->TableContents("s").size(), 0u);
}

TEST_F(EngineTest, SoftStateExpires) {
  Node* n = AddNode("n1");
  Load(n, "materialize(s, 3, 10, keys(1,2)).");
  n->InjectEvent(Tuple::Make("s", {Value::Str("n1"), Value::Int(1)}));
  net_.RunFor(1.0);
  EXPECT_EQ(n->TableContents("s").size(), 1u);
  net_.RunFor(3.0);
  EXPECT_EQ(n->TableContents("s").size(), 0u);
}

TEST_F(EngineTest, DeltaStrandsFireOnTableInsert) {
  Node* n = AddNode("n1");
  Load(n,
       "materialize(a, infinity, 10, keys(1,2)).\n"
       "materialize(b, infinity, 10, keys(1,2)).\n"
       "r1 pair@N(X, Y) :- a@N(X), b@N(Y).");
  int pairs = 0;
  Count(n, "pair", &pairs);
  n->InjectEvent(Tuple::Make("a", {Value::Str("n1"), Value::Int(1)}));
  net_.RunFor(0.1);
  EXPECT_EQ(pairs, 0);  // no b rows yet
  n->InjectEvent(Tuple::Make("b", {Value::Str("n1"), Value::Int(2)}));
  net_.RunFor(0.1);
  EXPECT_EQ(pairs, 1);  // b-delta joined the existing a row
  n->InjectEvent(Tuple::Make("a", {Value::Str("n1"), Value::Int(3)}));
  net_.RunFor(0.1);
  EXPECT_EQ(pairs, 2);  // a-delta joined the existing b row
}

TEST_F(EngineTest, SelfJoinAliases) {
  Node* n = AddNode("n1");
  Load(n,
       "materialize(e, infinity, 20, keys(1,2,3)).\n"
       "r1 two@N(A, C) :- hop@N(A), e@N(A, B), e@N(B, C).");
  auto edge = [&](int x, int y) {
    n->InjectEvent(Tuple::Make("e", {Value::Str("n1"), Value::Int(x), Value::Int(y)}));
  };
  edge(1, 2);
  edge(2, 3);
  edge(2, 4);
  net_.RunFor(0.1);
  std::vector<TupleRef> results;
  n->SubscribeEvent("two", [&](const TupleRef& t) { results.push_back(t); });
  n->InjectEvent(Tuple::Make("hop", {Value::Str("n1"), Value::Int(1)}));
  net_.RunFor(0.1);
  ASSERT_EQ(results.size(), 2u);  // 1->2->3 and 1->2->4
}

TEST_F(EngineTest, FiltersAndAssignmentsInRules) {
  Node* n = AddNode("n1");
  Load(n,
       "materialize(v, infinity, 10, keys(1,2)).\n"
       "r1 big@N(X, Y) :- check@N(), v@N(X), X > 10, Y := X * 2.");
  for (int x : {5, 15, 25}) {
    n->InjectEvent(Tuple::Make("v", {Value::Str("n1"), Value::Int(x)}));
  }
  std::vector<TupleRef> results;
  n->SubscribeEvent("big", [&](const TupleRef& t) { results.push_back(t); });
  net_.RunFor(0.1);
  n->InjectEvent(Tuple::Make("check", {Value::Str("n1")}));
  net_.RunFor(0.1);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0]->field(2), Value::Int(30));
  EXPECT_EQ(results[1]->field(2), Value::Int(50));
}

TEST_F(EngineTest, ProgramsInstallPiecemealWhileRunning) {
  Node* n = AddNode("n1");
  Load(n, "r1 tick@N(E) :- periodic@N(E, 1).");
  int ticks = 0;
  int echoes = 0;
  Count(n, "tick", &ticks);
  net_.RunFor(2.5);
  EXPECT_EQ(ticks, 2);
  // A monitoring rule arrives on-line, mid-execution.
  Load(n, "m1 echo@N(E) :- tick@N(E).");
  Count(n, "echo", &echoes);
  net_.RunFor(2.0);
  EXPECT_EQ(echoes, 2);
}

TEST_F(EngineTest, PlanErrors) {
  Node* n = AddNode("n1");
  std::string error;
  // Two transient events cannot join.
  EXPECT_FALSE(n->LoadProgram("r1 out@N(X) :- ev1@N(X), ev2@N(X).", &error));
  EXPECT_NE(error.find("two transient events"), std::string::npos);
  // Unknown builtin.
  EXPECT_FALSE(n->LoadProgram("r2 out@N(X) :- ev@N(Y), X := f_bogus(Y).", &error));
  // Non-constant periodic period.
  EXPECT_FALSE(n->LoadProgram("r3 out@N(E) :- periodic@N(E, T).", &error));
  // Duplicate rule id.
  ASSERT_TRUE(n->LoadProgram("r4 out@N(X) :- ev@N(X).", &error)) << error;
  EXPECT_FALSE(n->LoadProgram("r4 out2@N(X) :- ev@N(X).", &error));
  EXPECT_NE(error.find("duplicate"), std::string::npos);
  // Unbound body term.
  EXPECT_FALSE(n->LoadProgram("r5 out@N(X) :- ev@N(X), Z > 3.", &error));
  // Deriving periodic is forbidden.
  EXPECT_FALSE(n->LoadProgram("r6 periodic@N(E, 5) :- ev@N(E).", &error));
}

TEST_F(EngineTest, ArityMismatchIsSilentlyIgnored) {
  // Piecemeal monitors matching a different arity must not fire or crash.
  Node* n = AddNode("n1");
  Load(n, "r1 out@N(X) :- ev@N(X).");
  int outs = 0;
  Count(n, "out", &outs);
  n->InjectEvent(Tuple::Make("ev", {Value::Str("n1"), Value::Int(1), Value::Int(2)}));
  net_.RunFor(0.1);
  EXPECT_EQ(outs, 0);
}

TEST_F(EngineTest, DeadLettersCounted) {
  Node* n = AddNode("n1");
  n->InjectEvent(Tuple::Make("nobodyListens", {Value::Str("n1")}));
  net_.RunFor(0.1);
  EXPECT_EQ(n->stats().dead_letters, 1u);
}

TEST_F(EngineTest, MessageLossTolerated) {
  NetworkConfig cfg;
  cfg.latency = 0.01;
  cfg.loss_rate = 1.0;  // everything dropped
  Network lossy(cfg);
  Node* a = lossy.AddNode("a");
  Node* b = lossy.AddNode("b");
  std::string error;
  ASSERT_TRUE(a->LoadProgram("r1 ping@Other(NAddr) :- go@NAddr(Other).", &error));
  (void)b;
  a->InjectEvent(Tuple::Make("go", {Value::Str("a"), Value::Str("b")}));
  lossy.RunFor(1.0);
  EXPECT_EQ(lossy.dropped_msgs(), 1u);
  EXPECT_EQ(b->stats().msgs_received, 0u);
}

TEST_F(EngineTest, LowPriorityMonitorsObserveQuiescentState) {
  // Base system: kick -> a -> b (a two-step derivation cascade). A monitor joining b
  // on the same kick event sees nothing at normal priority (it runs mid-cascade) but
  // fires at low priority (it runs after the cascade drains) — the paper's §6
  // "prioritized execution of debugging rules" semantics.
  const char* kBase =
      "materialize(a, infinity, 10, keys(1,2)).\n"
      "materialize(b, infinity, 10, keys(1,2)).\n"
      "h1 a@N(X) :- kick@N(X).\n"
      "h2 b@N(X) :- a@N(X).";
  const char* kMonitor = "m1 seen@N(X) :- kick@N(X), b@N(X).";

  Node* eager = AddNode("eager");
  Load(eager, kBase);
  std::string error;
  ASSERT_TRUE(eager->LoadProgram(kMonitor, &error)) << error;
  int eager_seen = 0;
  Count(eager, "seen", &eager_seen);
  eager->InjectEvent(Tuple::Make("kick", {Value::Str("eager"), Value::Int(1)}));
  net_.RunFor(0.5);
  EXPECT_EQ(eager_seen, 0) << "normal-priority monitor ran mid-cascade";

  Node* lazy = AddNode("lazy");
  Load(lazy, kBase);
  ASSERT_TRUE(lazy->LoadProgramLowPriority(kMonitor, ParamMap(), &error)) << error;
  int lazy_seen = 0;
  Count(lazy, "seen", &lazy_seen);
  lazy->InjectEvent(Tuple::Make("kick", {Value::Str("lazy"), Value::Int(1)}));
  net_.RunFor(0.5);
  EXPECT_EQ(lazy_seen, 1) << "low-priority monitor must observe the settled state";
}

TEST_F(EngineTest, LowPriorityPeriodicRulesStillFire) {
  Node* n = AddNode("n1");
  std::string error;
  ASSERT_TRUE(n->LoadProgramLowPriority("r1 tick@N(E) :- periodic@N(E, 1).",
                                        ParamMap(), &error))
      << error;
  int ticks = 0;
  Count(n, "tick", &ticks);
  net_.RunFor(3.5);
  EXPECT_EQ(ticks, 3);
  // And unloading a low-priority program stops it like any other.
  ASSERT_TRUE(n->UnloadProgram(n->last_program_id()));
  net_.RunFor(3.0);
  EXPECT_EQ(ticks, 3);
}

TEST_F(EngineTest, UnloadProgramStopsStrandsTimersAndAggregates) {
  Node* n = AddNode("n1");
  // Base program stays; the monitor program comes and goes.
  Load(n, "materialize(s, infinity, 100, keys(1,2)).");
  Load(n,
       "m1 tick@N(E) :- periodic@N(E, 1).\n"
       "m2 echo@N(X) :- s@N(X).\n"
       "m3 cnt@N(count<*>) :- s@N(X).");
  uint64_t monitor_id = n->last_program_id();
  int ticks = 0;
  int echoes = 0;
  int counts = 0;
  Count(n, "tick", &ticks);
  Count(n, "echo", &echoes);
  Count(n, "cnt", &counts);
  n->InjectEvent(Tuple::Make("s", {Value::Str("n1"), Value::Int(1)}));
  net_.RunFor(2.5);
  EXPECT_EQ(ticks, 2);
  EXPECT_EQ(echoes, 1);
  EXPECT_GE(counts, 1);
  int counts_before = counts;

  ASSERT_TRUE(n->UnloadProgram(monitor_id));
  n->InjectEvent(Tuple::Make("s", {Value::Str("n1"), Value::Int(2)}));
  net_.RunFor(3.0);
  EXPECT_EQ(ticks, 2) << "timer kept firing after unload";
  EXPECT_EQ(echoes, 1) << "delta strand kept firing after unload";
  EXPECT_EQ(counts, counts_before) << "continuous aggregate kept firing after unload";
  // The base table itself still works.
  EXPECT_EQ(n->TableContents("s").size(), 2u);

  // Unknown / double unload are rejected.
  EXPECT_FALSE(n->UnloadProgram(monitor_id));
  EXPECT_FALSE(n->UnloadProgram(9999));

  // The same rule ids can be reloaded (the on-line monitor upgrade path).
  Load(n, "m2 echo@N(X) :- s@N(X).");
  n->InjectEvent(Tuple::Make("s", {Value::Str("n1"), Value::Int(3)}));
  net_.RunFor(0.5);
  EXPECT_EQ(echoes, 2);
}

TEST_F(EngineTest, NegationPrunesWhenRowExists) {
  Node* n = AddNode("n1");
  Load(n,
       "materialize(blocked, infinity, 10, keys(1,2)).\n"
       "r1 out@N(X) :- req@N(X), not blocked@N(X).");
  int outs = 0;
  Count(n, "out", &outs);
  auto req = [&](int x) {
    n->InjectEvent(Tuple::Make("req", {Value::Str("n1"), Value::Int(x)}));
  };
  req(1);
  net_.RunFor(0.1);
  EXPECT_EQ(outs, 1);  // nothing blocked yet
  n->InjectEvent(Tuple::Make("blocked", {Value::Str("n1"), Value::Int(1)}));
  net_.RunFor(0.1);
  req(1);
  req(2);
  net_.RunFor(0.1);
  EXPECT_EQ(outs, 2);  // req(1) pruned, req(2) passed
}

TEST_F(EngineTest, NegationUnboundVarsAreWildcards) {
  // `not succ@N(SID, SAddr)` with unbound vars = "no successor at all" (Chord's
  // re-join guard).
  Node* n = AddNode("n1");
  Load(n,
       "materialize(succ, 2, 10, keys(1,2)).\n"
       "r1 lonely@N(E) :- check@N(E), not succ@N(SID, SAddr).");
  int lonely = 0;
  Count(n, "lonely", &lonely);
  auto check = [&](int e) {
    n->InjectEvent(Tuple::Make("check", {Value::Str("n1"), Value::Id(e)}));
  };
  check(1);
  net_.RunFor(0.1);
  EXPECT_EQ(lonely, 1);
  n->InjectEvent(
      Tuple::Make("succ", {Value::Str("n1"), Value::Id(5), Value::Str("x")}));
  net_.RunFor(0.1);
  check(2);
  net_.RunFor(0.1);
  EXPECT_EQ(lonely, 1);  // a successor exists
  net_.RunFor(3.0);      // it expires (TTL 2)
  check(3);
  net_.RunFor(0.1);
  EXPECT_EQ(lonely, 2);
}

TEST_F(EngineTest, NegationRequiresMaterializedPredicate) {
  Node* n = AddNode("n1");
  std::string error;
  EXPECT_FALSE(n->LoadProgram("r1 out@N(X) :- req@N(X), not ghost@N(X).", &error));
  EXPECT_NE(error.find("must be materialized"), std::string::npos);
}

TEST_F(EngineTest, NegationRunsAfterJoinsBindVariables) {
  // The negated pattern uses a variable bound by a later-written join; stratified
  // placement must still evaluate it with the binding.
  Node* n = AddNode("n1");
  Load(n,
       "materialize(dead, infinity, 10, keys(1,2)).\n"
       "materialize(route, infinity, 10, keys(1,2)).\n"
       "r1 usable@N(Via) :- probe@N(), not dead@N(Via), route@N(Via).");
  n->InjectEvent(Tuple::Make("route", {Value::Str("n1"), Value::Str("a")}));
  n->InjectEvent(Tuple::Make("route", {Value::Str("n1"), Value::Str("b")}));
  n->InjectEvent(Tuple::Make("dead", {Value::Str("n1"), Value::Str("a")}));
  std::vector<TupleRef> usable;
  n->SubscribeEvent("usable", [&](const TupleRef& t) { usable.push_back(t); });
  net_.RunFor(0.1);
  n->InjectEvent(Tuple::Make("probe", {Value::Str("n1")}));
  net_.RunFor(0.1);
  ASSERT_EQ(usable.size(), 1u);
  EXPECT_EQ(usable[0]->field(1), Value::Str("b"));
}

TEST_F(EngineTest, WatchStatementsLogTuples) {
  Node* n = AddNode("n1");
  Load(n,
       "watch(alert).\n"
       "r1 alert@N(X) :- sensor@N(X), X > 10.");
  std::vector<std::string> printed;
  n->SetWatchSink([&](double, const TupleRef& t) { printed.push_back(t->ToString()); });
  n->InjectEvent(Tuple::Make("sensor", {Value::Str("n1"), Value::Int(5)}));
  n->InjectEvent(Tuple::Make("sensor", {Value::Str("n1"), Value::Int(50)}));
  net_.RunFor(0.1);
  ASSERT_EQ(n->watch_log().size(), 1u);
  EXPECT_EQ(n->watch_log()[0].tuple->field(1), Value::Int(50));
  ASSERT_EQ(printed.size(), 1u);
  EXPECT_EQ(printed[0], "alert(n1, 50)");
}

TEST_F(EngineTest, CrashedNodeStopsProcessing) {
  Node* a = AddNode("a");
  Node* b = AddNode("b");
  Load(a, "r1 ping@Other(NAddr) :- go@NAddr(Other).");
  Load(b,
       "materialize(seen, infinity, 100, keys(1,2)).\n"
       "r2 seen@N(From) :- ping@N(From).\n"
       "r3 tick@N(E) :- periodic@N(E, 1).");
  int ticks = 0;
  Count(b, "tick", &ticks);
  a->InjectEvent(Tuple::Make("go", {Value::Str("a"), Value::Str("b")}));
  net_.RunFor(2.0);
  EXPECT_EQ(b->TableContents("seen").size(), 1u);
  int ticks_before = ticks;
  EXPECT_GT(ticks_before, 0);

  b->Crash();
  a->InjectEvent(Tuple::Make("go", {Value::Str("a"), Value::Str("b")}));
  net_.RunFor(3.0);
  EXPECT_EQ(ticks, ticks_before);  // timers silent while down
  EXPECT_EQ(b->TableContents("seen").size(), 1u);

  b->Revive();
  a->InjectEvent(Tuple::Make("go", {Value::Str("a"), Value::Str("b")}));
  net_.RunFor(2.0);
  EXPECT_GT(ticks, ticks_before);  // timers resumed
}

TEST_F(EngineTest, RemoteDeleteRequests) {
  Node* a = AddNode("a");
  Node* b = AddNode("b");
  Load(a, "d1 delete s@Other(X) :- zap@NAddr(Other, X).");
  Load(b, "materialize(s, infinity, 10, keys(1,2)).");
  b->InjectEvent(Tuple::Make("s", {Value::Str("b"), Value::Int(9)}));
  net_.RunFor(0.1);
  ASSERT_EQ(b->TableContents("s").size(), 1u);
  a->InjectEvent(Tuple::Make("zap", {Value::Str("a"), Value::Str("b"), Value::Int(9)}));
  net_.RunFor(1.0);
  EXPECT_EQ(b->TableContents("s").size(), 0u);
}

}  // namespace
}  // namespace p2
