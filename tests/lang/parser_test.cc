#include "src/lang/parser.h"

#include <gtest/gtest.h>

#include <cmath>

namespace p2 {
namespace {

Program MustParse(const std::string& src, ParamMap params = ParamMap()) {
  Program program;
  std::string error;
  EXPECT_TRUE(ParseProgram(src, params, &program, &error)) << error;
  return program;
}

TEST(ParserTest, Materialize) {
  Program p = MustParse("materialize(link, 100, 5, keys(1)).\n"
                        "materialize(path, infinity, infinity, keys(1,2)).");
  ASSERT_EQ(p.materializations.size(), 2u);
  EXPECT_EQ(p.materializations[0].name, "link");
  EXPECT_DOUBLE_EQ(p.materializations[0].lifetime_secs, 100);
  EXPECT_EQ(p.materializations[0].max_size, 5u);
  ASSERT_EQ(p.materializations[0].key_fields.size(), 1u);
  EXPECT_EQ(p.materializations[0].key_fields[0], 0u);  // 1-based in source
  EXPECT_TRUE(std::isinf(p.materializations[1].lifetime_secs));
  EXPECT_EQ(p.materializations[1].max_size, std::numeric_limits<size_t>::max());
}

TEST(ParserTest, MaterializeWithParams) {
  ParamMap params;
  params["tWin"] = Value::Double(120);
  Program p = MustParse("materialize(oscill, tWin, infinity, keys(2,3)).", params);
  EXPECT_DOUBLE_EQ(p.materializations[0].lifetime_secs, 120);
}

TEST(ParserTest, SimpleRuleWithAtForm) {
  Program p = MustParse("rp2 respBestSucc@ReqAddr(NAddr, SAddr) :- "
                        "reqBestSucc@NAddr(ReqAddr), bestSucc@NAddr(SID, SAddr).");
  ASSERT_EQ(p.rules.size(), 1u);
  const Rule& r = p.rules[0];
  EXPECT_EQ(r.id, "rp2");
  EXPECT_EQ(r.head.name, "respBestSucc");
  ASSERT_EQ(r.head.args.size(), 3u);  // loc + 2
  EXPECT_EQ(r.head.args[0].expr->name, "ReqAddr");
  ASSERT_EQ(r.body.size(), 2u);
  EXPECT_EQ(r.body[0].pred.name, "reqBestSucc");
  EXPECT_EQ(r.body[0].pred.args.size(), 2u);  // loc + 1
}

TEST(ParserTest, RuleWithoutIdAndWithoutAt) {
  Program p = MustParse("path(B, C, P, W) :- link(A, B, W2), path(A, C, P2, W3).");
  ASSERT_EQ(p.rules.size(), 1u);
  EXPECT_FALSE(p.rules[0].id.empty());  // synthesized
  EXPECT_EQ(p.rules[0].head.args.size(), 4u);  // first arg is the location
}

TEST(ParserTest, BracketedRuleId) {
  Program p = MustParse("[r1] out@N(X) :- in@N(X).");
  EXPECT_EQ(p.rules[0].id, "r1");
}

TEST(ParserTest, DeleteRule) {
  Program p = MustParse("cs10 delete lookupCluster@NAddr(ProbeID, T, Count) :- "
                        "consistency@NAddr(ProbeID, Consistency).");
  EXPECT_TRUE(p.rules[0].is_delete);
  EXPECT_EQ(p.rules[0].head.name, "lookupCluster");
}

TEST(ParserTest, Aggregates) {
  Program p = MustParse(
      "os3 countOscill@NAddr(OscillAddr, count<*>) :- periodic@NAddr(E, 60), "
      "oscill@NAddr(OscillAddr, Time).\n"
      "l2 bestLookupDist@NAddr(K, R, E, min<D>) :- lookup@NAddr(K, R, E), "
      "finger@NAddr(I, FID, FAddr), D := K - FID - 1.\n"
      "m maxCluster@NAddr(P, max<Count>) :- respCluster@NAddr(P, S, Count).");
  EXPECT_EQ(p.rules[0].head.args[2].agg, AggKind::kCount);
  EXPECT_EQ(p.rules[0].head.args[2].expr, nullptr);
  EXPECT_EQ(p.rules[1].head.args[4].agg, AggKind::kMin);
  EXPECT_EQ(p.rules[1].head.args[4].expr->name, "D");
  EXPECT_EQ(p.rules[2].head.args[2].agg, AggKind::kMax);
}

TEST(ParserTest, AssignmentsAndFilters) {
  Program p = MustParse("r1 out@N(T) :- ev@N(X), T := f_now(), X != 3, (X > 1) || (X < 0).");
  ASSERT_EQ(p.rules[0].body.size(), 4u);
  EXPECT_EQ(p.rules[0].body[1].kind, BodyTerm::Kind::kAssign);
  EXPECT_EQ(p.rules[0].body[1].var, "T");
  EXPECT_EQ(p.rules[0].body[2].kind, BodyTerm::Kind::kFilter);
  EXPECT_EQ(p.rules[0].body[3].kind, BodyTerm::Kind::kFilter);
}

TEST(ParserTest, RingIntervalForms) {
  Program p = MustParse(
      "l1 res@R(K) :- lookup@N(K, R, E), node@N(NID), bestSucc@N(SID, SA), "
      "K in (NID, SID].\n"
      "x y@N(K) :- e@N(K), K in [1, 5).");
  const BodyTerm& t1 = p.rules[0].body.back();
  EXPECT_EQ(t1.kind, BodyTerm::Kind::kFilter);
  EXPECT_EQ(t1.expr->kind, Expr::Kind::kInterval);
  EXPECT_TRUE(t1.expr->open_left);
  EXPECT_FALSE(t1.expr->open_right);
  const BodyTerm& t2 = p.rules[1].body.back();
  EXPECT_FALSE(t2.expr->open_left);
  EXPECT_TRUE(t2.expr->open_right);
}

TEST(ParserTest, ParamsResolvedAtParseTime) {
  ParamMap params;
  params["tProbe"] = Value::Double(15);
  params["target"] = Value::Str("cs2");
  Program p = MustParse(
      "r1 a@N(E) :- periodic@N(E, tProbe).\n"
      "r2 b@N(R) :- f@N(R), R == target.",
      params);
  EXPECT_EQ(p.rules[0].body[0].pred.args[2]->constant, Value::Double(15));
}

TEST(ParserTest, UnknownParamFails) {
  Program program;
  std::string error;
  EXPECT_FALSE(ParseProgram("r1 a@N(E) :- periodic@N(E, nosuch).", &program, &error));
  EXPECT_NE(error.find("nosuch"), std::string::npos);
}

TEST(ParserTest, ListLiterals) {
  Program p = MustParse("p1 path@B(C, [B, A] + P) :- link@A(B), path@A(C, P).");
  const HeadArg& arg = p.rules[0].head.args[2];
  EXPECT_EQ(arg.expr->kind, Expr::Kind::kBinary);
  EXPECT_EQ(arg.expr->children[0]->kind, Expr::Kind::kMakeList);
}

TEST(ParserTest, NegatedPredicates) {
  Program p = MustParse("r1 out@N(X) :- ev@N(X), not seen@N(X).");
  ASSERT_EQ(p.rules[0].body.size(), 2u);
  EXPECT_FALSE(p.rules[0].body[0].negated);
  EXPECT_TRUE(p.rules[0].body[1].negated);
  EXPECT_EQ(p.rules[0].body[1].pred.name, "seen");
  // `not` only applies to predicates: a variable comparison still parses as a filter.
  Program q = MustParse("r2 out@N(X) :- ev@N(X, Not), Not > 3.");
  EXPECT_EQ(q.rules[0].body[1].kind, BodyTerm::Kind::kFilter);
}

TEST(ParserTest, SumAggregate) {
  Program p = MustParse("r1 total@N(sum<X>) :- w@N(X).");
  EXPECT_EQ(p.rules[0].head.args[1].agg, AggKind::kSum);
}

TEST(ParserTest, WatchStatement) {
  Program p = MustParse("watch(lookupResults).");
  ASSERT_EQ(p.watches.size(), 1u);
  EXPECT_EQ(p.watches[0], "lookupResults");
}

TEST(ParserTest, HeadArgExpressions) {
  Program p = MustParse("sr1 snap@NAddr(I + 1) :- periodic@NAddr(E, 10), "
                        "currentSnap@NAddr(I).");
  EXPECT_EQ(p.rules[0].head.args[1].expr->kind, Expr::Kind::kBinary);
}

TEST(ParserTest, SyntaxErrorsReported) {
  Program program;
  std::string error;
  EXPECT_FALSE(ParseProgram("r1 head@N(X :- b@N(X).", &program, &error));
  EXPECT_FALSE(ParseProgram("materialize(x, abc, 5, keys(1)).", &program, &error));
  EXPECT_FALSE(ParseProgram("r1 head@N(X) : b@N(X).", &program, &error));
  EXPECT_FALSE(ParseProgram("r1 head@N(count<X) :- b@N(X).", &program, &error));
}

TEST(ParserTest, BooleanAndComparisonPrecedence) {
  Program p = MustParse("r1 o@N() :- e@N(C, S, R), (C > 0) || (S == R), C + 1 < 5 * 2.");
  const Expr& or_expr = *p.rules[0].body[1].expr;
  EXPECT_EQ(or_expr.op, OpKind::kOr);
  const Expr& lt = *p.rules[0].body[2].expr;
  EXPECT_EQ(lt.op, OpKind::kLt);
  EXPECT_EQ(lt.children[0]->op, OpKind::kAdd);
  EXPECT_EQ(lt.children[1]->op, OpKind::kMul);
}

}  // namespace
}  // namespace p2
