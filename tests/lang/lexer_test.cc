#include "src/lang/lexer.h"

#include <gtest/gtest.h>

namespace p2 {
namespace {

std::vector<Token> MustLex(const std::string& src) {
  std::vector<Token> tokens;
  std::string error;
  EXPECT_TRUE(Lex(src, &tokens, &error)) << error;
  return tokens;
}

TEST(LexerTest, Identifiers) {
  std::vector<Token> t = MustLex("foo Bar _x f_now");
  ASSERT_EQ(t.size(), 5u);  // + EOF
  EXPECT_EQ(t[0].kind, TokKind::kIdent);
  EXPECT_EQ(t[0].text, "foo");
  EXPECT_EQ(t[3].text, "f_now");
  EXPECT_EQ(t[4].kind, TokKind::kEof);
}

TEST(LexerTest, NumbersIntegerAndFloat) {
  std::vector<Token> t = MustLex("42 3.5 1e3 7");
  EXPECT_TRUE(t[0].is_integer);
  EXPECT_DOUBLE_EQ(t[0].number, 42);
  EXPECT_FALSE(t[1].is_integer);
  EXPECT_DOUBLE_EQ(t[1].number, 3.5);
  EXPECT_FALSE(t[2].is_integer);
  EXPECT_DOUBLE_EQ(t[2].number, 1000);
  EXPECT_TRUE(t[3].is_integer);
}

TEST(LexerTest, DotAfterNumberIsStatementEnd) {
  // `keys(1).` must lex the final dot separately.
  std::vector<Token> t = MustLex("keys(1).");
  ASSERT_EQ(t.size(), 6u);
  EXPECT_EQ(t[4].kind, TokKind::kDot);
}

TEST(LexerTest, Strings) {
  std::vector<Token> t = MustLex("\"hello\" \"-\" \"a\\\"b\"");
  EXPECT_EQ(t[0].text, "hello");
  EXPECT_EQ(t[1].text, "-");
  EXPECT_EQ(t[2].text, "a\"b");
}

TEST(LexerTest, Operators) {
  std::vector<Token> t = MustLex(":- := == != <= >= < > && || + - * / % ! @");
  TokKind expected[] = {TokKind::kColonDash, TokKind::kColonEq, TokKind::kEqEq,
                        TokKind::kNe,        TokKind::kLe,      TokKind::kGe,
                        TokKind::kLt,        TokKind::kGt,      TokKind::kAndAnd,
                        TokKind::kOrOr,      TokKind::kPlus,    TokKind::kMinus,
                        TokKind::kStar,      TokKind::kSlash,   TokKind::kPercent,
                        TokKind::kBang,      TokKind::kAt};
  for (size_t i = 0; i < std::size(expected); ++i) {
    EXPECT_EQ(t[i].kind, expected[i]) << i;
  }
}

TEST(LexerTest, Comments) {
  std::vector<Token> t = MustLex("a /* block\ncomment */ b // line\nc # hash\nd");
  ASSERT_EQ(t.size(), 5u);
  EXPECT_EQ(t[0].text, "a");
  EXPECT_EQ(t[1].text, "b");
  EXPECT_EQ(t[2].text, "c");
  EXPECT_EQ(t[3].text, "d");
}

TEST(LexerTest, LineNumbersTracked) {
  std::vector<Token> t = MustLex("a\nb\n\nc");
  EXPECT_EQ(t[0].line, 1);
  EXPECT_EQ(t[1].line, 2);
  EXPECT_EQ(t[2].line, 4);
}

TEST(LexerTest, ErrorsReported) {
  std::vector<Token> tokens;
  std::string error;
  EXPECT_FALSE(Lex("\"unterminated", &tokens, &error));
  EXPECT_NE(error.find("unterminated"), std::string::npos);
  EXPECT_FALSE(Lex("a $ b", &tokens, &error));
  EXPECT_FALSE(Lex("/* never closed", &tokens, &error));
}

}  // namespace
}  // namespace p2
