#include "src/lang/expr.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/lang/builtins.h"
#include "src/lang/parser.h"

namespace p2 {
namespace {

// Parses a filter expression by wrapping it in a rule body.
ExprPtr ParseExpr(const std::string& text) {
  Program program;
  std::string error;
  EXPECT_TRUE(ParseProgram("r1 out@N() :- ev@N(A, B, C, S), " + text + ".", &program,
                           &error))
      << error;
  EXPECT_EQ(program.rules[0].body.back().kind, BodyTerm::Kind::kFilter);
  return std::move(program.rules[0].body.back().expr);
}

class ExprEvalTest : public ::testing::Test {
 protected:
  Value Eval(const std::string& text) {
    ExprPtr e = ParseExpr(text);
    return EvalExpr(*e, binds_, ctx_);
  }
  Bindings binds_;
  Rng rng_{1};
  std::string addr_ = "n1";
  EvalContext ctx_{12.5, &rng_, &addr_};
};

TEST_F(ExprEvalTest, ArithmeticAndPrecedence) {
  EXPECT_EQ(Eval("1 + 2 * 3"), Value::Int(7));
  EXPECT_EQ(Eval("(1 + 2) * 3"), Value::Int(9));
  EXPECT_EQ(Eval("10 % 4"), Value::Int(2));
  EXPECT_EQ(Eval("-3 + 1"), Value::Int(-2));
}

TEST_F(ExprEvalTest, VariablesResolve) {
  binds_.Set("A", Value::Int(5));
  EXPECT_EQ(Eval("A + 1"), Value::Int(6));
}

TEST_F(ExprEvalTest, UnboundVariableIsNullAndFiltersFalse) {
  EXPECT_TRUE(Eval("Z").is_null());
  EXPECT_FALSE(Eval("Z > 1").Truthy());
}

TEST_F(ExprEvalTest, ComparisonsAndLogicals) {
  binds_.Set("A", Value::Int(5));
  EXPECT_TRUE(Eval("A == 5").AsBool());
  EXPECT_TRUE(Eval("A != 4").AsBool());
  EXPECT_TRUE(Eval("(A > 10) || (A > 1)").AsBool());
  EXPECT_FALSE(Eval("(A > 10) && (A > 1)").AsBool());
  EXPECT_TRUE(Eval("!(A > 10)").AsBool());
}

TEST_F(ExprEvalTest, ShortCircuitGuardsNullOperands) {
  // The paper's sb9-style guard: (PAddr == "-") || (PID2 in (PID, NID)) must not
  // fault when the right side has unbound variables.
  binds_.Set("S", Value::Str("-"));
  EXPECT_TRUE(Eval("(S == \"-\") || (Z in (Y, X))").AsBool());
}

TEST_F(ExprEvalTest, BuiltinNow) {
  EXPECT_EQ(Eval("f_now()"), Value::Double(12.5));
  EXPECT_TRUE(Eval("f_now() - 2 < f_now()").AsBool());
}

TEST_F(ExprEvalTest, BuiltinRandProducesIds) {
  Value a = Eval("f_rand()");
  Value b = Eval("f_rand()");
  EXPECT_EQ(a.kind(), Value::Kind::kId);
  EXPECT_FALSE(a == b);
}

TEST_F(ExprEvalTest, BuiltinPow2) {
  EXPECT_EQ(Eval("f_pow2(3)"), Value::Id(8));
  EXPECT_EQ(Eval("f_pow2(63)"), Value::Id(1ULL << 63));
  EXPECT_EQ(Eval("f_pow2(64)"), Value::Id(0));
}

TEST_F(ExprEvalTest, BuiltinMinMaxAbsSizeStr) {
  EXPECT_EQ(Eval("f_min(3, 5)"), Value::Int(3));
  EXPECT_EQ(Eval("f_max(3, 5)"), Value::Int(5));
  EXPECT_EQ(Eval("f_abs(0 - 4)"), Value::Int(4));
  EXPECT_EQ(Eval("f_size([1, 2, 3])"), Value::Int(3));
  EXPECT_EQ(Eval("f_str(42)"), Value::Str("42"));
  EXPECT_EQ(Eval("f_local()"), Value::Str("n1"));
}

TEST_F(ExprEvalTest, UnknownBuiltinIsNull) {
  ValueList args;
  EXPECT_TRUE(CallBuiltin("f_nope", args, ctx_).is_null());
  EXPECT_FALSE(IsKnownBuiltin("f_nope"));
  EXPECT_TRUE(IsKnownBuiltin("f_now"));
}

TEST_F(ExprEvalTest, IntervalOnBoundVars) {
  binds_.Set("A", Value::Id(10));
  binds_.Set("B", Value::Id(5));
  binds_.Set("C", Value::Id(15));
  EXPECT_TRUE(Eval("A in (B, C]").AsBool());
  EXPECT_FALSE(Eval("B in (A, C]").AsBool());
}

TEST(BindingsTest, SetFindTruncate) {
  Bindings b;
  EXPECT_EQ(b.Find("X"), nullptr);
  b.Set("X", Value::Int(1));
  b.Set("Y", Value::Int(2));
  ASSERT_NE(b.Find("X"), nullptr);
  EXPECT_EQ(*b.Find("Y"), Value::Int(2));
  b.Set("X", Value::Int(9));  // overwrite in place
  EXPECT_EQ(*b.Find("X"), Value::Int(9));
  EXPECT_EQ(b.size(), 2u);
  b.TruncateTo(1);
  EXPECT_EQ(b.Find("Y"), nullptr);
  EXPECT_NE(b.Find("X"), nullptr);
}

}  // namespace
}  // namespace p2
