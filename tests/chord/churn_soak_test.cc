// Randomized churn soak: crashes, revivals, and message loss against a Chord ring
// with the monitoring stack installed — the system must neither crash nor leak, and
// the ring must heal once churn stops.

#include <gtest/gtest.h>

#include <cstdlib>

#include "src/mon/ring_checks.h"
#include "src/mon/snapshot.h"
#include "src/testbed/testbed.h"

namespace p2 {
namespace {

class ChurnSoak : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ChurnSoak, SurvivesAndHeals) {
  TestbedConfig cfg;
  cfg.num_nodes = 10;
  cfg.fleet.node_defaults.introspection = false;
  cfg.fleet.loss_rate = 0.02;
  cfg.fleet.seed = GetParam();
  // CI's queue-cap sweep (docs/ROBUSTNESS.md "Overload & graceful degradation"):
  // every node soaks with bounded admission and the degradation watchdog armed.
  // The heal/leak assertions below must hold unchanged — overload protection may
  // shed best-effort gossip but must never break the protocol.
  if (const char* env = std::getenv("P2_QUEUE_CAP")) {
    uint64_t cap = std::strtoull(env, nullptr, 10);
    cfg.fleet.node_defaults.queue_cap = cap;
    cfg.fleet.node_defaults.low_queue_cap = cap;
    cfg.fleet.node_defaults.degrade_hi = (cap * 3) / 4;
  }
  ChordTestbed bed(cfg);
  bed.Run(100);
  int settled = bed.CorrectSuccessorCount();
  EXPECT_GE(settled, 9);

  // Monitoring runs throughout the churn.
  for (size_t i = 0; i < bed.size(); ++i) {
    RingCheckConfig rc;
    std::string error;
    ASSERT_TRUE(InstallRingChecks(bed.node(i), rc, &error)) << error;
    SnapshotConfig sc;
    sc.snap_period = 8.0;
    sc.initiator = (i == 0);
    ASSERT_TRUE(InstallSnapshot(bed.node(i), sc, &error)) << error;
  }

  // Churn: random non-landmark nodes bounce (crash 20-40 s, then full recovery),
  // staggered.
  Rng rng(GetParam() * 7 + 3);
  for (int round = 0; round < 4; ++round) {
    size_t victim_idx = 1 + rng.NextBelow(bed.size() - 1);
    Node* victim = bed.node(victim_idx);
    victim->Crash();
    bed.Run(20 + static_cast<double>(rng.NextBelow(20)));
    victim->Recover();
    bed.Run(10);
  }

  // Lossy phase: heavy per-link loss plus occasional duplication on a few links.
  for (int i = 0; i < 3; ++i) {
    std::string src = ChordTestbed::AddrOf(static_cast<int>(rng.NextBelow(bed.size())));
    std::string dst = ChordTestbed::AddrOf(static_cast<int>(rng.NextBelow(bed.size())));
    if (src != dst) {
      bed.network().SetLinkFault(src, dst, {/*loss=*/0.3, /*dup_rate=*/0.2});
    }
  }
  bed.Run(40);
  bed.network().ClearLinkFaults();

  // Partition phase: split the ring in two, then heal before the halves evict
  // each other (three missed pings at 5 s spacing). A longer clean split would
  // collapse each half into its own consistent ring, and disjoint Chord rings
  // never re-merge — that is protocol behavior, not a fault-handling bug.
  std::vector<std::string> half_a;
  std::vector<std::string> half_b;
  for (size_t i = 0; i < bed.size(); ++i) {
    (i % 2 == 0 ? half_a : half_b).push_back(bed.node(i)->addr());
  }
  bed.network().Partition(half_a, half_b);
  bed.Run(10);
  bed.network().Heal();

  // Quiescence: everything must heal.
  bed.Run(150);
  EXPECT_EQ(bed.CorrectSuccessorCount(), static_cast<int>(bed.size()))
      << "ring did not heal after churn";

  // No unbounded growth anywhere: every table respects its declared size bound, and
  // the trace-free deployments stay small in absolute terms.
  double now = bed.network().Now();
  for (Node* node : bed.nodes()) {
    for (Table* table : node->catalog().AllTables()) {
      EXPECT_LE(table->Size(now), table->spec().max_size) << table->name();
    }
    EXPECT_LT(node->catalog().TotalRows(now), 5000u) << node->addr();
    EXPECT_EQ(node->stats().decode_errors, 0u);
    // Whatever the admission budget, the reliable/control plane is never shed.
    EXPECT_EQ(node->stats().shed_reliable, 0u) << node->addr();
  }
  // Snapshots still complete after the churn.
  EXPECT_GE(LatestDoneSnapshot(bed.node(0)), 1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChurnSoak, ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace p2
