// Integration tests for P2-Chord: ring formation, lookup correctness, failure
// handling, and the testbed harness itself.

#include <gtest/gtest.h>

#include <map>

#include "src/testbed/testbed.h"

namespace p2 {
namespace {

TestbedConfig SmallConfig(int n) {
  TestbedConfig cfg;
  cfg.num_nodes = n;
  cfg.fleet.node_defaults.introspection = false;
  cfg.fleet.latency = 0.02;
  cfg.fleet.jitter = 0.01;
  return cfg;
}

// Ground truth: the live node whose ID is the closest clockwise successor of `key`.
std::string TrueOwner(const std::map<std::string, uint64_t>& ids, uint64_t key) {
  std::string best;
  uint64_t best_dist = ~0ULL;
  for (const auto& [addr, id] : ids) {
    uint64_t dist = id - key;  // distance from key forward to id (wrapping)
    if (best.empty() || dist < best_dist) {
      best = addr;
      best_dist = dist;
    }
  }
  return best;
}

TEST(ChordTest, TwoNodesFormARing) {
  ChordTestbed bed(SmallConfig(2));
  bed.Run(30);
  EXPECT_TRUE(bed.RingIsCorrect())
      << "correct successors: " << bed.CorrectSuccessorCount() << "/2";
  // Mutual predecessor/successor relationship.
  EXPECT_EQ(BestSuccAddr(bed.node(0)), "n1");
  EXPECT_EQ(BestSuccAddr(bed.node(1)), "n0");
  EXPECT_EQ(PredAddr(bed.node(0)), "n1");
  EXPECT_EQ(PredAddr(bed.node(1)), "n0");
}

TEST(ChordTest, TenNodeRingConverges) {
  ChordTestbed bed(SmallConfig(10));
  bed.Run(60);
  EXPECT_TRUE(bed.RingIsCorrect())
      << "correct successors: " << bed.CorrectSuccessorCount() << "/10";
}

TEST(ChordTest, LookupsResolveToTrueOwner) {
  ChordTestbed bed(SmallConfig(8));
  bed.Run(80);  // settle, incl. finger convergence
  ASSERT_TRUE(bed.RingIsCorrect());
  std::map<std::string, uint64_t> ids = bed.Ids();

  // Issue lookups from every node for a deterministic set of keys; collect results.
  std::map<uint64_t, std::string> results;  // req id -> result addr
  std::map<uint64_t, uint64_t> wanted;      // req id -> key
  for (size_t i = 0; i < bed.size(); ++i) {
    bed.node(i)->SubscribeEvent("lookupResults", [&, i](const TupleRef& t) {
      // lookupResults(ReqAddr, K, SID, SAddr, E, RespAddr)
      results[t->field(4).AsId()] = t->field(3).AsString();
    });
  }
  Rng rng(99);
  uint64_t req = 1;
  for (size_t i = 0; i < bed.size(); ++i) {
    for (int k = 0; k < 4; ++k) {
      uint64_t key = rng.Next();
      wanted[req] = key;
      IssueLookup(bed.node(i), key, req);
      ++req;
    }
  }
  bed.Run(20);
  int correct = 0;
  for (const auto& [req_id, key] : wanted) {
    auto it = results.find(req_id);
    if (it != results.end() && it->second == TrueOwner(ids, key)) {
      ++correct;
    }
  }
  // All lookups must resolve, and resolve correctly, on a converged ring.
  EXPECT_EQ(correct, static_cast<int>(wanted.size()));
}

TEST(ChordTest, FingersPopulate) {
  ChordTestbed bed(SmallConfig(8));
  bed.Run(80);
  for (Node* node : bed.nodes()) {
    EXPECT_GE(node->TableContents("finger").size(), 2u) << node->addr();
    EXPECT_GE(node->TableContents("uniqueFinger").size(), 1u) << node->addr();
  }
}

TEST(ChordTest, NodeFailureIsDetectedAndRouted) {
  ChordTestbed bed(SmallConfig(6));
  bed.Run(80);
  ASSERT_TRUE(bed.RingIsCorrect());
  std::map<std::string, uint64_t> ids = bed.Ids();

  // Kill n3 by detaching it: no more processing (we simulate by dropping its traffic —
  // the simplest fault injection is to stop its timers; here we remove it from the
  // address map by pointing traffic at a black hole).
  // The engine has no remove-node API (nodes never leave in the paper's experiments),
  // so we emulate failure by making the node drop every delivery: disable via loss is
  // global, so instead verify the faultyNode path with an unreachable address.
  Node* observer = bed.node(1);
  observer->InjectEvent(Tuple::Make(
      "pingNode", {Value::Str(observer->addr()), Value::Str("ghost99")}));
  bed.Run(30);
  bool found = false;
  for (const TupleRef& t : observer->TableContents("faultyNode")) {
    if (t->field(1) == Value::Str("ghost99")) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
  // The ghost must have been purged from pingNode by rule fn4.
  for (const TupleRef& t : observer->TableContents("pingNode")) {
    EXPECT_NE(t->field(1), Value::Str("ghost99"));
  }
  (void)ids;
}

TEST(ChordTest, RingSurvivesMessageLoss) {
  TestbedConfig cfg = SmallConfig(6);
  cfg.fleet.loss_rate = 0.05;
  ChordTestbed bed(cfg);
  bed.Run(120);
  // With 5% loss and soft-state refresh the ring still converges.
  EXPECT_GE(bed.CorrectSuccessorCount(), 5);
}

TEST(ChordTest, IdsAreDeterministicPerAddress) {
  // Chord derives identifiers from addresses (like hashing the IP): two independent
  // deployments with the same addresses agree on every ID.
  ChordTestbed bed1(SmallConfig(5));
  bed1.Run(5);
  TestbedConfig other = SmallConfig(5);
  other.fleet.seed = 777;
  ChordTestbed bed2(other);
  bed2.Run(5);
  EXPECT_EQ(bed1.Ids(), bed2.Ids());
}

TEST(ChordTest, IdsAreDistinct) {
  ChordTestbed bed(SmallConfig(12));
  bed.Run(10);
  std::map<std::string, uint64_t> ids = bed.Ids();
  ASSERT_EQ(ids.size(), 12u);
  std::set<uint64_t> distinct;
  for (const auto& [addr, id] : ids) {
    distinct.insert(id);
  }
  EXPECT_EQ(distinct.size(), 12u);
}

TEST(ChordTest, RingHealsAfterNodeCrash) {
  ChordTestbed bed(SmallConfig(8));
  bed.Run(100);
  ASSERT_TRUE(bed.RingIsCorrect());
  std::map<std::string, uint64_t> ids = bed.Ids();

  // Crash a mid-ring node (not the landmark: departed landmarks only affect joins).
  Node* victim = bed.node(4);
  victim->Crash();
  bed.Run(60);  // failure detection (3 missed pings) + stabilization around the gap

  // Every survivor's best successor must be the next *live* node on the ring, and the
  // dead node must be marked faulty by at least its predecessor.
  std::vector<std::pair<uint64_t, std::string>> ring;
  for (const auto& [addr, id] : ids) {
    if (addr != victim->addr()) {
      ring.emplace_back(id, addr);
    }
  }
  std::sort(ring.begin(), ring.end());
  int correct = 0;
  for (size_t i = 0; i < ring.size(); ++i) {
    Node* node = bed.network().GetNode(ring[i].second);
    if (BestSuccAddr(node) == ring[(i + 1) % ring.size()].second) {
      ++correct;
    }
  }
  EXPECT_EQ(correct, static_cast<int>(ring.size()));
  int faulty_observers = 0;
  for (Node* node : bed.nodes()) {
    if (node == victim) {
      continue;
    }
    for (const TupleRef& t : node->TableContents("faultyNode")) {
      if (t->field(1) == Value::Str(victim->addr())) {
        ++faulty_observers;
        break;
      }
    }
  }
  EXPECT_GE(faulty_observers, 1);

  // Lookups route around the hole.
  Node* requester = bed.node(1);
  std::map<uint64_t, std::string> results;
  requester->SubscribeEvent("lookupResults", [&](const TupleRef& t) {
    results[t->field(4).AsId()] = t->field(3).AsString();
  });
  Rng rng(17);
  std::map<std::string, uint64_t> live_ids;
  for (const auto& [addr, id] : ids) {
    if (addr != victim->addr()) {
      live_ids[addr] = id;
    }
  }
  std::map<uint64_t, uint64_t> wanted;
  for (uint64_t req = 1; req <= 6; ++req) {
    wanted[req] = rng.Next();
    IssueLookup(requester, wanted[req], req);
  }
  bed.Run(15);
  int resolved = 0;
  for (const auto& [req, key] : wanted) {
    auto it = results.find(req);
    if (it != results.end() && it->second == TrueOwner(live_ids, key)) {
      ++resolved;
    }
  }
  EXPECT_GE(resolved, 5);  // at most one lookup may race a stale finger
}

TEST(ChordTest, RevivedNodeRejoinsViaStabilization) {
  ChordTestbed bed(SmallConfig(6));
  bed.Run(100);
  ASSERT_TRUE(bed.RingIsCorrect());
  Node* victim = bed.node(3);
  victim->Crash();
  bed.Run(60);
  victim->Revive();
  // On revival the node still knows its old neighbors (pred/bestSucc survive the
  // fail-stop) and stabilization re-announces it to the ring.
  bed.Run(90);
  EXPECT_TRUE(bed.RingIsCorrect())
      << "correct successors: " << bed.CorrectSuccessorCount() << "/6";
}

// Size sweep: rings of every size converge and resolve lookups correctly.
class RingSizeSweep : public ::testing::TestWithParam<int> {};

TEST_P(RingSizeSweep, ConvergesAndResolves) {
  int n = GetParam();
  ChordTestbed bed(SmallConfig(n));
  bed.Run(100);
  EXPECT_EQ(bed.CorrectSuccessorCount(), n)
      << bed.CorrectSuccessorCount() << "/" << n;
  std::map<std::string, uint64_t> ids = bed.Ids();
  Node* requester = bed.node(n / 2);
  std::map<uint64_t, std::string> results;
  requester->SubscribeEvent("lookupResults", [&](const TupleRef& t) {
    results[t->field(4).AsId()] = t->field(3).AsString();
  });
  Rng rng(n * 31 + 5);
  std::map<uint64_t, uint64_t> wanted;
  for (uint64_t req = 1; req <= 6; ++req) {
    wanted[req] = rng.Next();
    IssueLookup(requester, wanted[req], req);
  }
  bed.Run(15);
  for (const auto& [req, key] : wanted) {
    auto it = results.find(req);
    ASSERT_NE(it, results.end()) << "lookup lost, n=" << n;
    EXPECT_EQ(it->second, TrueOwner(ids, key)) << "n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, RingSizeSweep, ::testing::Values(3, 5, 9, 13));

TEST(ChordTest, PaperScaleTwentyOneNodes) {
  // The paper's population: 21 virtual nodes (§4).
  ChordTestbed bed(SmallConfig(21));
  bed.Run(120);
  EXPECT_GE(bed.CorrectSuccessorCount(), 20)
      << "correct successors: " << bed.CorrectSuccessorCount() << "/21";
}

}  // namespace
}  // namespace p2
