// Real-transport tests: the same engine and OverLog programs running over actual
// localhost UDP sockets in wall-clock time. Two Network instances in one process
// stand in for two OS processes; they can only talk through the sockets.

#include <gtest/gtest.h>

#include "src/chord/chord.h"
#include "src/net/udp_driver.h"

namespace p2 {
namespace {

NodeOptions Quiet() {
  NodeOptions opts;
  opts.introspection = false;
  return opts;
}

// Pumps both drivers in small alternating slices for `wall_seconds` total.
void PumpBoth(UdpDriver* a, UdpDriver* b, double wall_seconds) {
  double slices = wall_seconds / 0.02;
  for (int i = 0; i < slices; ++i) {
    a->RunFor(0.01);
    b->RunFor(0.01);
  }
}

TEST(UdpDriverTest, TuplesCrossRealSockets) {
  Network net_a;
  Network net_b;
  UdpDriver driver_a(&net_a);
  UdpDriver driver_b(&net_b);
  std::string error;
  Node* a = driver_a.CreateNode(0, Quiet(), &error);
  ASSERT_NE(a, nullptr) << error;
  Node* b = driver_b.CreateNode(0, Quiet(), &error);
  ASSERT_NE(b, nullptr) << error;

  ASSERT_TRUE(a->LoadProgram("r1 hello@Other(NAddr, X) :- go@NAddr(Other, X).", &error))
      << error;
  ASSERT_TRUE(b->LoadProgram(
      "materialize(greetings, infinity, 10, keys(1,2)).\n"
      "r2 greetings@N(From, X) :- hello@N(From, X).",
      &error))
      << error;

  a->InjectEvent(
      Tuple::Make("go", {Value::Str(a->addr()), Value::Str(b->addr()), Value::Int(7)}));
  PumpBoth(&driver_a, &driver_b, 0.6);

  std::vector<TupleRef> rows = b->TableContents("greetings");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0]->field(1), Value::Str(a->addr()));
  EXPECT_EQ(rows[0]->field(2), Value::Int(7));
  EXPECT_GE(driver_a.datagrams_sent(), 1u);
  EXPECT_GE(driver_b.datagrams_received(), 1u);
}

TEST(UdpDriverTest, PeriodicRulesFireInWallClockTime) {
  Network net;
  UdpDriver driver(&net);
  std::string error;
  Node* node = driver.CreateNode(0, Quiet(), &error);
  ASSERT_NE(node, nullptr) << error;
  ASSERT_TRUE(node->LoadProgram("r1 tick@N(E) :- periodic@N(E, 0.1).", &error)) << error;
  int ticks = 0;
  node->SubscribeEvent("tick", [&](const TupleRef&) { ++ticks; });
  driver.RunFor(0.75);
  EXPECT_GE(ticks, 4);
  EXPECT_LE(ticks, 8);
}

TEST(UdpDriverTest, ChordRingFormsOverRealUdp) {
  // A two-process Chord deployment over loopback, with fast protocol periods so the
  // test completes in a couple of wall seconds.
  Network net_a;
  Network net_b;
  UdpDriver driver_a(&net_a);
  UdpDriver driver_b(&net_b);
  std::string error;
  Node* landmark = driver_a.CreateNode(0, Quiet(), &error);
  ASSERT_NE(landmark, nullptr) << error;
  Node* joiner = driver_b.CreateNode(0, Quiet(), &error);
  ASSERT_NE(joiner, nullptr) << error;

  ChordConfig fast;
  fast.stabilize_period = 0.2;
  fast.ping_period = 0.2;
  fast.finger_period = 0.4;
  fast.ping_timeout = 0.15;
  fast.rejoin_check_period = 1.0;

  ChordConfig lm = fast;
  ASSERT_TRUE(InstallChord(landmark, lm, &error)) << error;
  ChordConfig jn = fast;
  jn.landmark = landmark->addr();
  ASSERT_TRUE(InstallChord(joiner, jn, &error)) << error;

  PumpBoth(&driver_a, &driver_b, 4.0);

  EXPECT_EQ(BestSuccAddr(landmark), joiner->addr());
  EXPECT_EQ(BestSuccAddr(joiner), landmark->addr());
  EXPECT_EQ(PredAddr(landmark), joiner->addr());
  EXPECT_EQ(PredAddr(joiner), landmark->addr());

  // Lookups resolve across the wire.
  std::map<uint64_t, std::string> results;
  joiner->SubscribeEvent("lookupResults", [&](const TupleRef& t) {
    results[t->field(4).AsId()] = t->field(3).AsString();
  });
  IssueLookup(joiner, ChordId(landmark) - 1, 99);  // owned by the landmark
  PumpBoth(&driver_a, &driver_b, 1.0);
  ASSERT_EQ(results.count(99), 1u);
  EXPECT_EQ(results[99], landmark->addr());
}

}  // namespace
}  // namespace p2
