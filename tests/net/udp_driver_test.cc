// Real-transport tests: the same engine and OverLog programs running over actual
// localhost UDP sockets in wall-clock time, behind the Fleet backend API
// (FleetConfig::backend = kUdp, docs/DEPLOYMENT.md). Two Fleet instances in one
// process stand in for two OS processes; they can only talk through the sockets,
// with RegisterPeer standing in for the fleetd rendezvous exchange.

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "src/chord/chord.h"
#include "src/net/udp_driver.h"

namespace p2 {
namespace {

FleetConfig UdpConfig(uint64_t seed = 42) {
  FleetConfig cfg;
  cfg.backend = FleetBackend::kUdp;
  cfg.seed = seed;
  cfg.node_defaults.introspection = false;
  return cfg;
}

// The fleetd rendezvous exchange, in miniature: each side learns the other's
// name -> socket-address map.
void Interconnect(Fleet* a, Fleet* b) {
  for (const auto& [name, addr] : a->udp()->LocalMap()) {
    b->RegisterPeer(name, addr);
  }
  for (const auto& [name, addr] : b->udp()->LocalMap()) {
    a->RegisterPeer(name, addr);
  }
}

// Pumps both fleets in small alternating slices for `wall_seconds` total; each
// fleet's virtual clock advances by wall_seconds / 2 (RunFor re-anchors per
// call, so the time spent pumping the *other* fleet never leaks in).
void PumpBoth(Fleet* a, Fleet* b, double wall_seconds) {
  int slices = static_cast<int>(wall_seconds / 0.02);
  for (int i = 0; i < slices; ++i) {
    a->RunFor(0.01);
    b->RunFor(0.01);
  }
}

TEST(UdpDriverTest, TuplesCrossRealSockets) {
  Fleet fleet_a(UdpConfig(1));
  Fleet fleet_b(UdpConfig(2));
  NodeHandle a = fleet_a.AddNode("a");
  NodeHandle b = fleet_b.AddNode("b");
  ASSERT_TRUE(a.valid());
  ASSERT_TRUE(b.valid());
  Interconnect(&fleet_a, &fleet_b);

  std::string error;
  ASSERT_TRUE(a.Load("r1 hello@Other(NAddr, X) :- go@NAddr(Other, X).", &error))
      << error;
  ASSERT_TRUE(b.Load(
      "materialize(greetings, infinity, 10, keys(1,2)).\n"
      "r2 greetings@N(From, X) :- hello@N(From, X).",
      &error))
      << error;

  a.Inject(
      Tuple::Make("go", {Value::Str(a.addr()), Value::Str(b.addr()), Value::Int(7)}));
  PumpBoth(&fleet_a, &fleet_b, 0.6);

  std::vector<TupleRef> rows = b.Query("greetings");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0]->field(1), Value::Str(a.addr()));
  EXPECT_EQ(rows[0]->field(2), Value::Int(7));
  EXPECT_GE(fleet_a.udp()->datagrams_sent(), 1u);
  EXPECT_GE(fleet_b.udp()->datagrams_received(), 1u);
}

TEST(UdpDriverTest, BatchingCoalescesSameDestinationTuples) {
  Fleet fleet_a(UdpConfig(3));
  Fleet fleet_b(UdpConfig(4));
  NodeHandle a = fleet_a.AddNode("a");
  NodeHandle b = fleet_b.AddNode("b");
  Interconnect(&fleet_a, &fleet_b);

  std::string error;
  ASSERT_TRUE(a.Load("r1 hello@Other(NAddr, X) :- go@NAddr(Other, X).", &error))
      << error;
  ASSERT_TRUE(b.Load(
      "materialize(greetings, infinity, 100, keys(1,2,3)).\n"
      "r2 greetings@N(From, X) :- hello@N(From, X).",
      &error))
      << error;

  // All 24 tuples route to `b` at the same pump instant, so they must coalesce
  // into far fewer datagrams than envelopes (the frames stay under the 1400-byte
  // default budget).
  const int kSent = 24;
  for (int i = 0; i < kSent; ++i) {
    a.Inject(Tuple::Make(
        "go", {Value::Str(a.addr()), Value::Str(b.addr()), Value::Int(i)}));
  }
  PumpBoth(&fleet_a, &fleet_b, 0.8);

  EXPECT_EQ(b.Query("greetings").size(), static_cast<size_t>(kSent));
  UdpDriver* da = fleet_a.udp();
  EXPECT_EQ(da->envelopes_sent(), static_cast<uint64_t>(kSent));
  EXPECT_LT(da->datagrams_sent(), da->envelopes_sent());
  EXPECT_GT(da->batch_ratio(), 2.0);
  EXPECT_EQ(fleet_b.udp()->frame_decode_errors(), 0u);
}

TEST(UdpDriverTest, PeriodicRulesFireInWallClockTime) {
  Fleet fleet(UdpConfig(5));
  NodeHandle node = fleet.AddNode("solo");
  std::string error;
  ASSERT_TRUE(node.Load("r1 tick@N(E) :- periodic@N(E, 0.1).", &error)) << error;
  int ticks = 0;
  node.OnEvent("tick", [&](const TupleRef&) { ++ticks; });
  fleet.RunFor(0.75);
  EXPECT_GE(ticks, 4);
  EXPECT_LE(ticks, 8);
}

TEST(UdpDriverTest, RepeatedShortSlicesDoNotDrift) {
  // Regression for the wall-clock anchoring bug: RunFor re-anchors per call, so
  // wall time spent *between* calls (the sleeps below) must not leak into the
  // virtual clock. With a persistent anchor, 50 x (10ms slice + 10ms gap) would
  // advance virtual time by the full ~1.0 wall second and roughly double the
  // periodic fire count; with per-call anchoring it advances by exactly 0.5.
  Fleet fleet(UdpConfig(6));
  NodeHandle node = fleet.AddNode("solo");
  std::string error;
  ASSERT_TRUE(node.Load("r1 tick@N(E) :- periodic@N(E, 0.1).", &error)) << error;
  int ticks = 0;
  node.OnEvent("tick", [&](const TupleRef&) { ++ticks; });
  double virtual_before = fleet.Now();
  for (int i = 0; i < 50; ++i) {
    fleet.RunFor(0.01);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_NEAR(fleet.Now() - virtual_before, 0.5, 1e-9);
  EXPECT_GE(ticks, 3);
  EXPECT_LE(ticks, 7);
}

TEST(UdpDriverTest, ReliableTuplesSurviveEgressLoss) {
  // Mixed plain/reliable traffic over real sockets with forced egress loss:
  // the reliable channel (which lives in Node, above the transport) retransmits
  // through the batching layer until everything lands, in order.
  FleetConfig cfg_a = UdpConfig(7);
  cfg_a.node_defaults.rel_rto = 0.1;
  cfg_a.node_defaults.rel_rto_max = 0.8;
  FleetConfig cfg_b = UdpConfig(8);
  cfg_b.node_defaults.rel_rto = 0.1;
  cfg_b.node_defaults.rel_rto_max = 0.8;
  Fleet fleet_a(cfg_a);
  Fleet fleet_b(cfg_b);
  NodeHandle a = fleet_a.AddNode("a");
  NodeHandle b = fleet_b.AddNode("b");
  Interconnect(&fleet_a, &fleet_b);

  std::string error;
  ASSERT_TRUE(a.Load(
      "r1 rel@Other(NAddr, X) :- go@NAddr(Other, X).\n"
      "r2 plain@Other(NAddr, X) :- gp@NAddr(Other, X).",
      &error))
      << error;
  a.MarkReliable("rel");
  std::vector<int64_t> arrivals;
  int plain_arrivals = 0;
  b.OnEvent("rel", [&](const TupleRef& t) { arrivals.push_back(t->field(2).AsInt()); });
  b.OnEvent("plain", [&](const TupleRef&) { ++plain_arrivals; });

  // Drop a quarter of everything leaving either process — data and acks both.
  fleet_a.udp()->SetEgressLossRate(0.25, 99);
  fleet_b.udp()->SetEgressLossRate(0.25, 100);

  const int kSent = 20;
  for (int i = 0; i < kSent; ++i) {
    a.Inject(Tuple::Make(
        "go", {Value::Str(a.addr()), Value::Str(b.addr()), Value::Int(i)}));
    a.Inject(Tuple::Make(
        "gp", {Value::Str(a.addr()), Value::Str(b.addr()), Value::Int(i)}));
  }
  PumpBoth(&fleet_a, &fleet_b, 5.0);

  ASSERT_EQ(arrivals.size(), static_cast<size_t>(kSent));
  for (int i = 0; i < kSent; ++i) {
    EXPECT_EQ(arrivals[i], i) << "out of order at " << i;
  }
  const Node::ChannelStat& cs = a.raw()->channel_stats().at("b");
  EXPECT_GT(cs.retx, 0u) << "25% egress loss must force retransmissions";
  EXPECT_EQ(cs.failed, 0u);
  EXPECT_GT(fleet_a.udp()->envelopes_dropped(), 0u);
  EXPECT_LE(plain_arrivals, kSent);  // best-effort tuples may be lost, never duped
}

TEST(UdpDriverTest, ChordRingFormsOverRealUdp) {
  // A two-process Chord deployment over loopback, with fast protocol periods so
  // the test completes in a few wall seconds.
  Fleet fleet_a(UdpConfig(9));
  Fleet fleet_b(UdpConfig(10));
  NodeHandle landmark = fleet_a.AddNode("lm");
  NodeHandle joiner = fleet_b.AddNode("jn");
  Interconnect(&fleet_a, &fleet_b);

  ChordConfig fast;
  fast.stabilize_period = 0.2;
  fast.ping_period = 0.2;
  fast.finger_period = 0.4;
  fast.ping_timeout = 0.15;
  fast.rejoin_check_period = 1.0;

  std::string error;
  ChordConfig lm = fast;
  ASSERT_TRUE(landmark.Install(
      [&](Node* n, std::string* e) { return InstallChord(n, lm, e); }, &error))
      << error;
  ChordConfig jn = fast;
  jn.landmark = landmark.addr();
  ASSERT_TRUE(joiner.Install(
      [&](Node* n, std::string* e) { return InstallChord(n, jn, e); }, &error))
      << error;

  PumpBoth(&fleet_a, &fleet_b, 4.0);

  EXPECT_EQ(BestSuccAddr(landmark.raw()), joiner.addr());
  EXPECT_EQ(BestSuccAddr(joiner.raw()), landmark.addr());
  EXPECT_EQ(PredAddr(landmark.raw()), joiner.addr());
  EXPECT_EQ(PredAddr(joiner.raw()), landmark.addr());

  // Lookups resolve across the wire.
  std::map<uint64_t, std::string> results;
  joiner.OnEvent("lookupResults", [&](const TupleRef& t) {
    results[t->field(4).AsId()] = t->field(3).AsString();
  });
  IssueLookup(joiner.raw(), ChordId(landmark.raw()) - 1, 99);  // owned by the landmark
  PumpBoth(&fleet_a, &fleet_b, 1.0);
  ASSERT_EQ(results.count(99), 1u);
  EXPECT_EQ(results[99], landmark.addr());
}

}  // namespace
}  // namespace p2
