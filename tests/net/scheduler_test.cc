#include "src/net/scheduler.h"

#include <gtest/gtest.h>

namespace p2 {
namespace {

TEST(SchedulerTest, EventsRunInTimeOrder) {
  Scheduler sched;
  std::vector<int> order;
  sched.At(2.0, [&] { order.push_back(2); });
  sched.At(1.0, [&] { order.push_back(1); });
  sched.At(3.0, [&] { order.push_back(3); });
  while (sched.Step()) {
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sched.Now(), 3.0);
}

TEST(SchedulerTest, EqualTimesRunInScheduleOrder) {
  Scheduler sched;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sched.At(1.0, [&order, i] { order.push_back(i); });
  }
  while (sched.Step()) {
  }
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SchedulerTest, RunUntilStopsAtBoundary) {
  Scheduler sched;
  int ran = 0;
  sched.At(1.0, [&] { ++ran; });
  sched.At(2.0, [&] { ++ran; });
  sched.At(5.0, [&] { ++ran; });
  sched.RunUntil(2.0);
  EXPECT_EQ(ran, 2);
  EXPECT_DOUBLE_EQ(sched.Now(), 2.0);
  sched.RunUntil(10.0);
  EXPECT_EQ(ran, 3);
  EXPECT_DOUBLE_EQ(sched.Now(), 10.0);
}

TEST(SchedulerTest, AfterSchedulesRelative) {
  Scheduler sched;
  double fired_at = -1;
  sched.At(3.0, [&] { sched.After(2.0, [&] { fired_at = sched.Now(); }); });
  sched.RunUntil(10.0);
  EXPECT_DOUBLE_EQ(fired_at, 5.0);
}

TEST(SchedulerTest, CancelPreventsExecution) {
  Scheduler sched;
  int ran = 0;
  uint64_t id = sched.At(1.0, [&] { ++ran; });
  sched.At(2.0, [&] { ++ran; });
  sched.Cancel(id);
  sched.RunUntil(5.0);
  EXPECT_EQ(ran, 1);
}

TEST(SchedulerTest, PastTimesClampToNow) {
  Scheduler sched;
  sched.At(5.0, [] {});
  sched.RunUntil(5.0);
  double fired_at = -1;
  sched.At(1.0, [&] { fired_at = sched.Now(); });  // in the past
  sched.RunUntil(6.0);
  EXPECT_DOUBLE_EQ(fired_at, 5.0);
}

TEST(SchedulerTest, EventsScheduledDuringRunExecute) {
  Scheduler sched;
  std::vector<int> order;
  sched.At(1.0, [&] {
    order.push_back(1);
    sched.At(1.0, [&] { order.push_back(2); });  // same instant, later seq
  });
  sched.RunUntil(1.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

}  // namespace
}  // namespace p2
