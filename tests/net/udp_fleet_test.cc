// Sim-vs-udp parity (docs/DEPLOYMENT.md): one Fleet hosting many nodes over real
// loopback sockets in a single process must converge a Chord overlay to the SAME
// ring as the deterministic simulator — ring structure depends only on the node
// names (chord ids are name hashes), never on which transport carried the tuples.
//
// (The fixture is deliberately NOT named *FleetTest* / *ChordTest*: the CI tsan
// and loss-sweep jobs select suites by substring regex.)

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "src/chord/chord.h"
#include "src/net/udp_driver.h"
#include "src/trace/metrics.h"

namespace p2 {
namespace {

std::vector<std::string> NodeNames(int n) {
  std::vector<std::string> names;
  for (int i = 0; i < n; ++i) {
    names.push_back("n" + std::to_string(i));
  }
  return names;
}

ChordConfig FastChord() {
  ChordConfig cfg;
  cfg.stabilize_period = 0.2;
  cfg.ping_period = 0.2;
  cfg.finger_period = 0.4;
  cfg.ping_timeout = 0.15;
  cfg.rejoin_check_period = 1.0;
  return cfg;
}

// Installs the overlay on every node (names[0] is the landmark) and returns the
// handles in name order.
std::vector<NodeHandle> BuildChordFleet(Fleet* fleet,
                                        const std::vector<std::string>& names) {
  std::vector<NodeHandle> handles;
  for (const std::string& name : names) {
    handles.push_back(fleet->AddNode(name));
  }
  std::string error;
  for (size_t i = 0; i < handles.size(); ++i) {
    ChordConfig cfg = FastChord();
    if (i != 0) {
      cfg.landmark = names[0];
    }
    EXPECT_TRUE(InstallChord(handles[i].raw(), cfg, &error)) << error;
  }
  return handles;
}

// The ring every correct run must converge to: successor = next node in chord-id
// order (the deterministic column of the parity contract).
std::map<std::string, std::string> ExpectedRing(std::vector<NodeHandle>& handles) {
  std::vector<std::pair<uint64_t, std::string>> ids;
  for (NodeHandle& h : handles) {
    ids.emplace_back(ChordId(h.raw()), h.addr());
  }
  std::sort(ids.begin(), ids.end());
  std::map<std::string, std::string> succ;
  for (size_t i = 0; i < ids.size(); ++i) {
    succ[ids[i].second] = ids[(i + 1) % ids.size()].second;
  }
  return succ;
}

std::map<std::string, std::string> ObservedRing(std::vector<NodeHandle>& handles) {
  std::map<std::string, std::string> succ;
  for (NodeHandle& h : handles) {
    succ[h.addr()] = BestSuccAddr(h.raw());
  }
  return succ;
}

TEST(UdpBackendTest, SingleProcessChordFleetMatchesSimulator) {
  const int kNodes = 8;
  std::vector<std::string> names = NodeNames(kNodes);

  // Real sockets: every inter-node tuple crosses loopback UDP even though all
  // nodes share the process (Network::SetExternalOnly).
  FleetConfig udp_cfg;
  udp_cfg.backend = FleetBackend::kUdp;
  udp_cfg.node_defaults.introspection = false;
  Fleet udp(udp_cfg);
  std::vector<NodeHandle> udp_nodes = BuildChordFleet(&udp, names);
  udp.RunFor(6.0);

  // The deterministic simulator, same overlay.
  FleetConfig sim_cfg;
  sim_cfg.latency = 0.005;
  sim_cfg.jitter = 0.002;
  sim_cfg.node_defaults.introspection = false;
  Fleet sim(sim_cfg);
  std::vector<NodeHandle> sim_nodes = BuildChordFleet(&sim, names);
  sim.RunUntil(30.0);

  std::map<std::string, std::string> expected = ExpectedRing(udp_nodes);
  EXPECT_EQ(ExpectedRing(sim_nodes), expected)
      << "chord ids must not depend on the backend";
  EXPECT_EQ(ObservedRing(sim_nodes), expected) << "simulator did not converge";
  EXPECT_EQ(ObservedRing(udp_nodes), expected) << "udp backend did not converge";

  // All of that traffic really crossed the wire, batched.
  UdpDriver* driver = udp.udp();
  ASSERT_NE(driver, nullptr);
  EXPECT_GT(driver->datagrams_sent(), 0u);
  EXPECT_EQ(driver->datagrams_received(), driver->datagrams_sent())
      << "loopback with no loss injected must deliver everything";
  EXPECT_GT(driver->batch_ratio(), 1.0);
  EXPECT_EQ(driver->frame_decode_errors(), 0u);
  uint64_t shed_reliable = 0;
  for (NodeHandle& h : udp_nodes) {
    shed_reliable += h.Stats().shed_reliable;
  }
  EXPECT_EQ(shed_reliable, 0u);
}

TEST(UdpBackendTest, DriverCountersSurfaceAsNodeMetrics) {
  // The transport publishes its counters into each node's MetricsRegistry
  // periodically during RunFor (ahead of sweeps) and at RunFor exit, so
  // sysStat/metrics exports carry them like any other gauge.
  FleetConfig cfg;
  cfg.backend = FleetBackend::kUdp;
  cfg.node_defaults.introspection = false;
  Fleet fleet(cfg);
  NodeHandle a = fleet.AddNode("a");
  fleet.AddNode("b");
  std::string error;
  ASSERT_TRUE(a.Load("r1 hello@Other(NAddr, E) :- periodic@NAddr(E, 0.05), "
                     "peer@NAddr(Other).\n"
                     "materialize(peer, infinity, 4, keys(1,2)).",
                     &error))
      << error;
  a.Inject(Tuple::Make("peer", {Value::Str("a"), Value::Str("b")}));
  fleet.RunFor(0.5);
  Gauge* sent = a.raw()->metrics().GetGauge("udp_datagrams_sent");
  EXPECT_GT(sent->value, 0);
  EXPECT_EQ(sent->value, static_cast<int64_t>(fleet.udp()->datagrams_sent()));
}

}  // namespace
}  // namespace p2
