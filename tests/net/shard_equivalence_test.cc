// Shard-equivalence suite (docs/SCALING.md): the sharded parallel fleet runtime is
// an execution strategy, not a semantics change — running the same seeded
// deployment on 1, 2, or 4 worker shards must produce bit-identical table state,
// identical ruleExec provenance, and identical deterministic bench columns
// (message/byte counters, ring correctness). These tests drive the full monitored
// stack (Chord + ring checks + consistency probes + DHT workload) and the simfuzz
// harness across shard counts and diff the digests.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "src/apps/dht.h"
#include "src/common/strings.h"
#include "src/mon/consistency.h"
#include "src/mon/ring_checks.h"
#include "src/simtest/simfuzz.h"
#include "src/testbed/testbed.h"

namespace p2 {
namespace {

// Sorted dump of every materialized table across the fleet. sys* tables hold
// wall-clock-tainted counters and are excluded; ruleExec/tupleTable (the trace
// tables) are included — provenance must be shard-count-invariant too.
std::string FleetDigest(ChordTestbed* bed) {
  std::string out;
  for (Node* node : bed->network().AllNodes()) {
    for (Table* table : node->catalog().AllTables()) {
      const std::string& name = table->spec().name;
      if (StartsWith(name, "sys")) {
        continue;
      }
      std::vector<std::string> rows;
      for (const TupleRef& t : node->TableContents(name)) {
        rows.push_back(t->ToString());
      }
      std::sort(rows.begin(), rows.end());
      out += StrFormat("== %s/%s (%zu) ==\n", node->addr().c_str(), name.c_str(),
                       rows.size());
      for (const std::string& r : rows) {
        out += r;
        out += "\n";
      }
    }
  }
  return out;
}

struct FleetRun {
  std::string digest;
  uint64_t total_msgs = 0;
  uint64_t total_bytes = 0;
  uint64_t dropped_msgs = 0;
  int correct_succ = 0;
};

// The full monitored deployment at `shards` workers: a 10-node Chord ring, ring
// checks fleet-wide, consistency probes at the landmark, and a DHT put/get
// workload, with tracing on so ruleExec rows enter the digest.
FleetRun RunMonitoredFleet(int shards) {
  TestbedConfig cfg;
  cfg.num_nodes = 10;
  cfg.fleet.seed = 99;
  cfg.fleet.shards = shards;
  cfg.fleet.node_defaults.tracing = true;
  cfg.fleet.node_defaults.introspection = false;
  ChordTestbed bed(cfg);
  bed.Run(80);

  for (NodeHandle node : bed.handles()) {
    RingCheckConfig rc;
    rc.probe_period = 5.0;
    std::string error;
    EXPECT_TRUE(node.Install(
        [&](Node* n, std::string* e) {
          return InstallRingChecks(n, rc, e) && InstallDht(n, DhtConfig(), e);
        },
        &error))
        << error;
  }
  ConsistencyConfig cc;
  cc.probe_period = 6.0;
  cc.tally_period = 15.0;
  cc.tally_age = 15.0;
  std::string error;
  EXPECT_TRUE(bed.handle(0).Install(
      [&](Node* n, std::string* e) { return InstallConsistencyProbes(n, cc, e); },
      &error))
      << error;
  bed.Run(10);

  for (uint64_t req = 1; req <= 4; ++req) {
    std::string key = "key" + std::to_string(req);
    bed.handle(req % bed.size()).Call([&](Node* n) { DhtPut(n, key, "v", req); });
  }
  bed.Run(10);
  for (uint64_t req = 5; req <= 8; ++req) {
    std::string key = "key" + std::to_string(req - 4);
    bed.handle(req % bed.size()).Call([&](Node* n) { DhtGet(n, key, req); });
  }
  bed.Run(20);

  FleetRun run;
  run.digest = FleetDigest(&bed);
  run.total_msgs = bed.fleet().total_msgs();
  run.total_bytes = bed.fleet().total_bytes();
  run.dropped_msgs = bed.fleet().dropped_msgs();
  run.correct_succ = bed.CorrectSuccessorCount();
  return run;
}

// Reports the first line where two digests diverge, to keep failures readable.
std::string FirstDiffLine(const std::string& a, const std::string& b) {
  size_t start = 0;
  size_t line = 1;
  while (start < a.size() && start < b.size()) {
    size_t ea = a.find('\n', start);
    size_t eb = b.find('\n', start);
    std::string la = a.substr(start, ea - start);
    std::string lb = b.substr(start, eb - start);
    if (la != lb || ea != eb) {
      return StrFormat("line %zu:\n  K=1: %s\n  K=N: %s", line, la.c_str(),
                       lb.c_str());
    }
    if (ea == std::string::npos) {
      break;
    }
    start = ea + 1;
    ++line;
  }
  return a.size() == b.size() ? "(no diff)" : "(one digest is a prefix of the other)";
}

TEST(ShardEquivalenceTest, MonitoredChordDhtFleetIsBitIdenticalAcrossShardCounts) {
  FleetRun base = RunMonitoredFleet(1);
  EXPECT_EQ(base.correct_succ, 10) << "ring must converge in the baseline run";
  EXPECT_GT(base.total_msgs, 0u);
  for (int shards : {2, 4}) {
    FleetRun run = RunMonitoredFleet(shards);
    EXPECT_EQ(run.total_msgs, base.total_msgs) << "shards=" << shards;
    EXPECT_EQ(run.total_bytes, base.total_bytes) << "shards=" << shards;
    EXPECT_EQ(run.dropped_msgs, base.dropped_msgs) << "shards=" << shards;
    EXPECT_EQ(run.correct_succ, base.correct_succ) << "shards=" << shards;
    EXPECT_EQ(run.digest, base.digest)
        << "shards=" << shards << " diverged at "
        << FirstDiffLine(base.digest, run.digest);
  }
}

// The simfuzz harness end-to-end: the same generated schedule executed through the
// scenario interpreter at 1/2/4 shards must agree on both digests (tables AND
// trace provenance) and the deterministic counters.
TEST(ShardEquivalenceTest, FuzzScheduleDigestsMatchAcrossShardCounts) {
  simtest::FuzzProfile profile = simtest::FuzzProfile::Quiet();
  simtest::RunResult base =
      simtest::RunSchedule(simtest::GenerateSchedule(21, profile));
  ASSERT_FALSE(base.failed()) << base.Summary();
  for (int shards : {2, 4}) {
    profile.shards = shards;
    simtest::RunResult run =
        simtest::RunSchedule(simtest::GenerateSchedule(21, profile));
    ASSERT_FALSE(run.failed()) << "shards=" << shards << ": " << run.Summary();
    EXPECT_EQ(run.total_msgs, base.total_msgs) << "shards=" << shards;
    EXPECT_EQ(run.table_digest, base.table_digest) << "shards=" << shards;
    EXPECT_EQ(run.full_digest, base.full_digest)
        << "shards=" << shards << " diverged at "
        << FirstDiffLine(base.full_digest, run.full_digest);
  }
}

// Overload limits on (bounded queues, in-flight windows, degrade watchdog) must
// not perturb determinism: shed and degrade decisions depend only on
// deterministic local state, so limits-on digests agree across 1/2/4 shards too.
TEST(ShardEquivalenceTest, LimitsOnDigestsMatchAcrossShardCounts) {
  simtest::FuzzProfile profile = simtest::FuzzProfile::Faulty();
  simtest::SimFuzzOptions opts;
  opts.ablation.overload_limits = true;
  simtest::RunResult base =
      simtest::RunSchedule(simtest::GenerateSchedule(44, profile), opts);
  ASSERT_FALSE(base.failed()) << base.Summary();
  for (int shards : {2, 4}) {
    profile.shards = shards;
    simtest::RunResult run =
        simtest::RunSchedule(simtest::GenerateSchedule(44, profile), opts);
    ASSERT_FALSE(run.failed()) << "shards=" << shards << ": " << run.Summary();
    EXPECT_EQ(run.table_digest, base.table_digest) << "shards=" << shards;
    EXPECT_EQ(run.full_digest, base.full_digest)
        << "shards=" << shards << " diverged at "
        << FirstDiffLine(base.full_digest, run.full_digest);
  }
}

// Smoke sweep with randomized shard counts: every faulty-profile seed runs under a
// seed-derived shard count and must both pass the oracles and match its own
// single-shard digest.
TEST(ShardEquivalenceTest, RandomizedShardSmokeSweep) {
  for (uint64_t seed : {31, 32}) {
    simtest::FuzzProfile profile = simtest::FuzzProfile::Faulty();
    simtest::RunResult base =
        simtest::RunSchedule(simtest::GenerateSchedule(seed, profile));
    ASSERT_FALSE(base.failed()) << "seed " << seed << ": " << base.Summary();
    profile.shards = 2 + static_cast<int>(seed % 3);  // 2..4, varies with seed
    simtest::RunResult run =
        simtest::RunSchedule(simtest::GenerateSchedule(seed, profile));
    ASSERT_FALSE(run.failed()) << "seed " << seed << " shards=" << profile.shards
                               << ": " << run.Summary();
    EXPECT_EQ(run.full_digest, base.full_digest)
        << "seed " << seed << " shards=" << profile.shards;
  }
}

// ---- engine hot-path ablation matrix across shard counts (docs/SCALING.md) ----
//
// Tuple arenas and batched delta propagation are pure mechanical optimizations:
// every (arenas, batch) cell at every shard count must reproduce the
// all-defaults K=1 digests bit-for-bit — tables AND trace provenance AND the
// deterministic counters. This is the strongest lockdown in the suite: one
// baseline run, then a 2x2xK sweep where every cell (including the ones that
// also flip zero-copy decode off via the scenario node lines) is compared
// against that single baseline, not merely against its own K=1 twin.
TEST(ShardEquivalenceTest, HotPathAblationMatrixMatchesBaselineAcrossShardCounts) {
  simtest::FuzzProfile profile = simtest::FuzzProfile::Faulty();
  simtest::RunResult base =
      simtest::RunSchedule(simtest::GenerateSchedule(57, profile));
  ASSERT_FALSE(base.failed()) << base.Summary();
  for (bool arenas : {true, false}) {
    for (bool batch : {true, false}) {
      for (int shards : {1, 2, 4}) {
        if (arenas && batch && shards == 1) {
          continue;  // the baseline itself
        }
        simtest::SimFuzzOptions opts;
        opts.ablation.tuple_arenas = arenas;
        opts.ablation.batch_deltas = batch;
        // Pair zero-copy with batching so the sweep covers decode ablation at
        // every shard count without tripling the matrix.
        opts.ablation.zero_copy_decode = batch;
        simtest::FuzzProfile p = profile;
        p.shards = shards;
        simtest::RunResult run =
            simtest::RunSchedule(simtest::GenerateSchedule(57, p), opts);
        std::string label = StrFormat("arenas=%d batch=%d shards=%d", arenas ? 1 : 0,
                                      batch ? 1 : 0, shards);
        ASSERT_FALSE(run.failed()) << label << ": " << run.Summary();
        EXPECT_EQ(run.total_msgs, base.total_msgs) << label;
        EXPECT_EQ(run.table_digest, base.table_digest) << label;
        EXPECT_EQ(run.full_digest, base.full_digest)
            << label << " diverged at "
            << FirstDiffLine(base.full_digest, run.full_digest);
      }
    }
  }
}

// The hot-path toggles must survive the scenario round trip exactly like the
// other ablation switches: rendered only when off, parsed back losslessly.
TEST(ShardEquivalenceTest, ScheduleRoundTripCarriesHotPathToggles) {
  simtest::FuzzProfile profile = simtest::FuzzProfile::Quiet();
  simtest::Schedule schedule = simtest::GenerateSchedule(5, profile);
  simtest::Ablation ablation;
  ablation.tuple_arenas = false;
  ablation.batch_deltas = false;
  ablation.zero_copy_decode = false;
  std::string text = simtest::ScheduleToScenario(schedule, ablation);
  EXPECT_NE(text.find("arenas=off"), std::string::npos);
  EXPECT_NE(text.find("batch=off"), std::string::npos);
  EXPECT_NE(text.find("zerocopy=off"), std::string::npos);
  simtest::Schedule parsed;
  std::string error;
  ASSERT_TRUE(simtest::ScenarioToSchedule(text, &parsed, &error)) << error;
  // Defaults-on text must stay byte-identical to the pre-toggle rendering (the
  // flags are append-only-when-off).
  std::string defaults = simtest::ScheduleToScenario(schedule);
  EXPECT_EQ(defaults.find("arenas="), std::string::npos);
  EXPECT_EQ(defaults.find("batch="), std::string::npos);
  EXPECT_EQ(defaults.find("zerocopy="), std::string::npos);
}

// The shards knob must survive the scenario round trip: render carries it in both
// the profile header and the net line, and the parser restores it.
TEST(ShardEquivalenceTest, ScheduleRoundTripCarriesShards) {
  simtest::FuzzProfile profile = simtest::FuzzProfile::Quiet();
  profile.shards = 4;
  simtest::Schedule schedule = simtest::GenerateSchedule(3, profile);
  std::string text = simtest::ScheduleToScenario(schedule);
  EXPECT_NE(text.find("shards=4"), std::string::npos);
  simtest::Schedule parsed;
  std::string error;
  ASSERT_TRUE(simtest::ScenarioToSchedule(text, &parsed, &error)) << error;
  EXPECT_EQ(parsed.profile.shards, 4);
  EXPECT_EQ(simtest::ScheduleToScenario(parsed), text);
}

}  // namespace
}  // namespace p2
