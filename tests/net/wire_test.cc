#include "src/net/wire.h"

#include <gtest/gtest.h>

namespace p2 {
namespace {

void RoundTripValue(const Value& v) {
  std::string bytes;
  EncodeValue(v, &bytes);
  size_t pos = 0;
  Value out;
  ASSERT_TRUE(DecodeValue(bytes, &pos, &out)) << v.ToString();
  EXPECT_EQ(pos, bytes.size());
  EXPECT_EQ(out.kind(), v.kind());
  EXPECT_EQ(out, v);
}

TEST(WireTest, ValueRoundTrips) {
  RoundTripValue(Value::Null());
  RoundTripValue(Value::Bool(true));
  RoundTripValue(Value::Bool(false));
  RoundTripValue(Value::Int(-1234567890123));
  RoundTripValue(Value::Id(~0ULL));
  RoundTripValue(Value::Double(3.14159e-7));
  RoundTripValue(Value::Str(""));
  RoundTripValue(Value::Str("hello \"world\"\n"));
  RoundTripValue(Value::List({Value::Int(1), Value::Str("x"),
                              Value::List({Value::Id(7)})}));
}

TEST(WireTest, TupleRoundTrips) {
  TupleRef t = Tuple::Make(
      "lookupResults", {Value::Str("n3"), Value::Id(42), Value::Id(17),
                        Value::Str("n5"), Value::Id(999), Value::Str("n9")});
  std::string bytes;
  EncodeTuple(*t, &bytes);
  size_t pos = 0;
  TupleRef out;
  ASSERT_TRUE(DecodeTuple(bytes, &pos, &out));
  EXPECT_TRUE(*out == *t);
}

TEST(WireTest, EnvelopeRoundTrips) {
  WireEnvelope env;
  env.src_addr = "n1";
  env.src_tuple_id = 77;
  env.is_delete = true;
  env.bound_mask = 0b1011;
  env.tuple = Tuple::Make("succ", {Value::Str("n2"), Value::Id(5), Value::Str("n3")});
  std::string bytes = EncodeEnvelope(env);
  WireEnvelope out;
  ASSERT_TRUE(DecodeEnvelope(bytes, &out));
  EXPECT_EQ(out.src_addr, "n1");
  EXPECT_EQ(out.src_tuple_id, 77u);
  EXPECT_TRUE(out.is_delete);
  EXPECT_EQ(out.bound_mask, 0b1011u);
  EXPECT_TRUE(*out.tuple == *env.tuple);
}

TEST(WireTest, ReliableEnvelopeRoundTrips) {
  WireEnvelope env;
  env.src_addr = "n1";
  env.reliable = true;
  env.epoch = 3;
  env.seq = 41;
  env.tuple = Tuple::Make("marker", {Value::Str("n2"), Value::Int(7)});
  std::string bytes = EncodeEnvelope(env);
  WireEnvelope out;
  ASSERT_TRUE(DecodeEnvelope(bytes, &out));
  EXPECT_TRUE(out.reliable);
  EXPECT_FALSE(out.is_ack);
  EXPECT_EQ(out.epoch, 3u);
  EXPECT_EQ(out.seq, 41u);
  EXPECT_TRUE(*out.tuple == *env.tuple);
}

TEST(WireTest, AckEnvelopeRoundTripsWithoutTuple) {
  WireEnvelope env;
  env.src_addr = "n1";
  env.is_ack = true;
  env.epoch = 2;
  env.ack_seq = 17;
  std::string bytes = EncodeEnvelope(env);
  WireEnvelope out;
  ASSERT_TRUE(DecodeEnvelope(bytes, &out));
  EXPECT_TRUE(out.is_ack);
  EXPECT_FALSE(out.reliable);
  EXPECT_EQ(out.epoch, 2u);
  EXPECT_EQ(out.ack_seq, 17u);
  EXPECT_EQ(out.tuple, TupleRef());
}

TEST(WireTest, BestEffortEncodingIsUnchangedByReliableFields) {
  // A plain envelope must stay byte-identical to the pre-reliable-transport wire
  // format (flags byte 0, no epoch/seq), so faults-off byte counters match
  // historical baselines. A reliable one costs exactly epoch + seq (16 bytes).
  WireEnvelope plain;
  plain.src_addr = "n1";
  plain.tuple = Tuple::Make("x", {Value::Str("n2"), Value::Int(1)});
  std::string plain_bytes = EncodeEnvelope(plain);
  EXPECT_EQ(plain_bytes[0], 0);  // no flag bits set

  WireEnvelope rel = plain;
  rel.reliable = true;
  rel.epoch = 1;
  rel.seq = 1;
  EXPECT_EQ(EncodeEnvelope(rel).size(), plain_bytes.size() + 16);
}

TEST(WireTest, TruncatedReliableAndAckInputRejected) {
  WireEnvelope env;
  env.src_addr = "n1";
  env.reliable = true;
  env.epoch = 1;
  env.seq = 2;
  env.tuple = Tuple::Make("x", {Value::Str("n2")});
  std::string bytes = EncodeEnvelope(env);
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    WireEnvelope out;
    EXPECT_FALSE(DecodeEnvelope(bytes.substr(0, cut), &out)) << cut;
  }
  WireEnvelope ack;
  ack.src_addr = "n1";
  ack.is_ack = true;
  ack.epoch = 1;
  ack.ack_seq = 2;
  bytes = EncodeEnvelope(ack);
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    WireEnvelope out;
    EXPECT_FALSE(DecodeEnvelope(bytes.substr(0, cut), &out)) << cut;
  }
}

TEST(WireTest, TruncatedInputRejected) {
  WireEnvelope env;
  env.src_addr = "n1";
  env.tuple = Tuple::Make("x", {Value::Str("n2"), Value::Int(1)});
  std::string bytes = EncodeEnvelope(env);
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    WireEnvelope out;
    EXPECT_FALSE(DecodeEnvelope(bytes.substr(0, cut), &out)) << cut;
  }
}

TEST(WireTest, TrailingGarbageRejected) {
  WireEnvelope env;
  env.src_addr = "n1";
  env.tuple = Tuple::Make("x", {Value::Str("n2")});
  std::string bytes = EncodeEnvelope(env) + "zz";
  WireEnvelope out;
  EXPECT_FALSE(DecodeEnvelope(bytes, &out));
}

TEST(WireTest, MalformedTagRejected) {
  std::string bytes = "\xFF";
  size_t pos = 0;
  Value out;
  EXPECT_FALSE(DecodeValue(bytes, &pos, &out));
}

TEST(WireTest, OversizedListLengthRejected) {
  // kind=kList with a huge count but no payload.
  std::string bytes;
  bytes.push_back(6);  // Kind::kList
  uint32_t huge = 0x7fffffff;
  bytes.append(reinterpret_cast<const char*>(&huge), 4);
  size_t pos = 0;
  Value out;
  EXPECT_FALSE(DecodeValue(bytes, &pos, &out));
}

}  // namespace
}  // namespace p2
