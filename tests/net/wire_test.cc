#include "src/net/wire.h"

#include <gtest/gtest.h>

namespace p2 {
namespace {

void RoundTripValue(const Value& v) {
  std::string bytes;
  EncodeValue(v, &bytes);
  size_t pos = 0;
  Value out;
  ASSERT_TRUE(DecodeValue(bytes, &pos, &out)) << v.ToString();
  EXPECT_EQ(pos, bytes.size());
  EXPECT_EQ(out.kind(), v.kind());
  EXPECT_EQ(out, v);
}

TEST(WireTest, ValueRoundTrips) {
  RoundTripValue(Value::Null());
  RoundTripValue(Value::Bool(true));
  RoundTripValue(Value::Bool(false));
  RoundTripValue(Value::Int(-1234567890123));
  RoundTripValue(Value::Id(~0ULL));
  RoundTripValue(Value::Double(3.14159e-7));
  RoundTripValue(Value::Str(""));
  RoundTripValue(Value::Str("hello \"world\"\n"));
  RoundTripValue(Value::List({Value::Int(1), Value::Str("x"),
                              Value::List({Value::Id(7)})}));
}

TEST(WireTest, TupleRoundTrips) {
  TupleRef t = Tuple::Make(
      "lookupResults", {Value::Str("n3"), Value::Id(42), Value::Id(17),
                        Value::Str("n5"), Value::Id(999), Value::Str("n9")});
  std::string bytes;
  EncodeTuple(*t, &bytes);
  size_t pos = 0;
  TupleRef out;
  ASSERT_TRUE(DecodeTuple(bytes, &pos, &out));
  EXPECT_TRUE(*out == *t);
}

TEST(WireTest, EnvelopeRoundTrips) {
  WireEnvelope env;
  env.src_addr = "n1";
  env.src_tuple_id = 77;
  env.is_delete = true;
  env.bound_mask = 0b1011;
  env.tuple = Tuple::Make("succ", {Value::Str("n2"), Value::Id(5), Value::Str("n3")});
  std::string bytes = EncodeEnvelope(env);
  WireEnvelope out;
  ASSERT_TRUE(DecodeEnvelope(bytes, &out));
  EXPECT_EQ(out.src_addr, "n1");
  EXPECT_EQ(out.src_tuple_id, 77u);
  EXPECT_TRUE(out.is_delete);
  EXPECT_EQ(out.bound_mask, 0b1011u);
  EXPECT_TRUE(*out.tuple == *env.tuple);
}

TEST(WireTest, ReliableEnvelopeRoundTrips) {
  WireEnvelope env;
  env.src_addr = "n1";
  env.reliable = true;
  env.epoch = 3;
  env.seq = 41;
  env.tuple = Tuple::Make("marker", {Value::Str("n2"), Value::Int(7)});
  std::string bytes = EncodeEnvelope(env);
  WireEnvelope out;
  ASSERT_TRUE(DecodeEnvelope(bytes, &out));
  EXPECT_TRUE(out.reliable);
  EXPECT_FALSE(out.is_ack);
  EXPECT_EQ(out.epoch, 3u);
  EXPECT_EQ(out.seq, 41u);
  EXPECT_TRUE(*out.tuple == *env.tuple);
}

TEST(WireTest, AckEnvelopeRoundTripsWithoutTuple) {
  WireEnvelope env;
  env.src_addr = "n1";
  env.is_ack = true;
  env.epoch = 2;
  env.ack_seq = 17;
  std::string bytes = EncodeEnvelope(env);
  WireEnvelope out;
  ASSERT_TRUE(DecodeEnvelope(bytes, &out));
  EXPECT_TRUE(out.is_ack);
  EXPECT_FALSE(out.reliable);
  EXPECT_EQ(out.epoch, 2u);
  EXPECT_EQ(out.ack_seq, 17u);
  EXPECT_EQ(out.tuple, TupleRef());
}

TEST(WireTest, BestEffortEncodingIsUnchangedByReliableFields) {
  // A plain envelope must stay byte-identical to the pre-reliable-transport wire
  // format (flags byte 0, no epoch/seq), so faults-off byte counters match
  // historical baselines. A reliable one costs exactly epoch + seq (16 bytes).
  WireEnvelope plain;
  plain.src_addr = "n1";
  plain.tuple = Tuple::Make("x", {Value::Str("n2"), Value::Int(1)});
  std::string plain_bytes = EncodeEnvelope(plain);
  EXPECT_EQ(plain_bytes[0], 0);  // no flag bits set

  WireEnvelope rel = plain;
  rel.reliable = true;
  rel.epoch = 1;
  rel.seq = 1;
  EXPECT_EQ(EncodeEnvelope(rel).size(), plain_bytes.size() + 16);
}

TEST(WireTest, TruncatedReliableAndAckInputRejected) {
  WireEnvelope env;
  env.src_addr = "n1";
  env.reliable = true;
  env.epoch = 1;
  env.seq = 2;
  env.tuple = Tuple::Make("x", {Value::Str("n2")});
  std::string bytes = EncodeEnvelope(env);
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    WireEnvelope out;
    EXPECT_FALSE(DecodeEnvelope(bytes.substr(0, cut), &out)) << cut;
  }
  WireEnvelope ack;
  ack.src_addr = "n1";
  ack.is_ack = true;
  ack.epoch = 1;
  ack.ack_seq = 2;
  bytes = EncodeEnvelope(ack);
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    WireEnvelope out;
    EXPECT_FALSE(DecodeEnvelope(bytes.substr(0, cut), &out)) << cut;
  }
}

TEST(WireTest, TruncatedInputRejected) {
  WireEnvelope env;
  env.src_addr = "n1";
  env.tuple = Tuple::Make("x", {Value::Str("n2"), Value::Int(1)});
  std::string bytes = EncodeEnvelope(env);
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    WireEnvelope out;
    EXPECT_FALSE(DecodeEnvelope(bytes.substr(0, cut), &out)) << cut;
  }
}

TEST(WireTest, TrailingGarbageRejected) {
  WireEnvelope env;
  env.src_addr = "n1";
  env.tuple = Tuple::Make("x", {Value::Str("n2")});
  std::string bytes = EncodeEnvelope(env) + "zz";
  WireEnvelope out;
  EXPECT_FALSE(DecodeEnvelope(bytes, &out));
}

TEST(WireTest, MalformedTagRejected) {
  std::string bytes = "\xFF";
  size_t pos = 0;
  Value out;
  EXPECT_FALSE(DecodeValue(bytes, &pos, &out));
}

TEST(WireTest, OversizedListLengthRejected) {
  // kind=kList with a huge count but no payload.
  std::string bytes;
  bytes.push_back(6);  // Kind::kList
  uint32_t huge = 0x7fffffff;
  bytes.append(reinterpret_cast<const char*>(&huge), 4);
  size_t pos = 0;
  Value out;
  EXPECT_FALSE(DecodeValue(bytes, &pos, &out));
}

// ---- batched wire frames (docs/DEPLOYMENT.md) ----

std::vector<std::string> SampleEnvelopes(int n) {
  std::vector<std::string> out;
  for (int i = 0; i < n; ++i) {
    WireEnvelope env;
    env.src_addr = "n" + std::to_string(i);
    if (i % 3 == 1) {
      env.reliable = true;
      env.epoch = 4;
      env.seq = static_cast<uint64_t>(i);
    } else if (i % 3 == 2) {
      env.is_ack = true;
      env.epoch = 4;
      env.ack_seq = static_cast<uint64_t>(i);
    }
    if (!env.is_ack) {
      env.tuple = Tuple::Make("x", {Value::Str("dst"), Value::Int(i)});
    }
    out.push_back(EncodeEnvelope(env));
  }
  return out;
}

TEST(WireTest, BatchFrameRoundTripsByteExact) {
  // N envelopes (plain, reliable, and ack mixed) -> one datagram -> the same N
  // byte strings, in order. Sub-envelopes are opaque to the frame, so reliable
  // seq/ack metadata rides along untouched.
  std::vector<std::string> envs = SampleEnvelopes(7);
  std::string frame = EncodeBatchFrame(envs);
  ASSERT_TRUE(IsBatchFrame(frame));
  std::vector<std::string> out;
  ASSERT_TRUE(DecodeBatchFrame(frame, &out));
  ASSERT_EQ(out.size(), envs.size());
  for (size_t i = 0; i < envs.size(); ++i) {
    EXPECT_EQ(out[i], envs[i]) << "sub-envelope " << i << " not byte-exact";
  }
}

TEST(WireTest, BatchFrameBuilderMatchesEncode) {
  std::vector<std::string> envs = SampleEnvelopes(5);
  BatchFrameBuilder builder;
  size_t expect_size = 6;  // magic + version + count
  for (const std::string& e : envs) {
    expect_size += BatchFrameBuilder::CostOf(e);
    builder.Add(e);
  }
  EXPECT_EQ(builder.count(), envs.size());
  EXPECT_EQ(builder.frame_size(), expect_size);
  std::string frame = builder.Take();
  EXPECT_EQ(frame, EncodeBatchFrame(envs));
  EXPECT_TRUE(builder.empty());  // Take resets the builder for reuse
}

TEST(WireTest, BatchFrameFirstByteNeverCollidesWithEnvelopes) {
  // The receiver dispatches on the first byte: legacy single-envelope datagrams
  // start with a flags byte in [0, 8), the frame magic is 0xB7.
  for (const std::string& e : SampleEnvelopes(6)) {
    EXPECT_FALSE(IsBatchFrame(e));
    EXPECT_LT(static_cast<uint8_t>(e[0]), 8);
  }
  EXPECT_TRUE(IsBatchFrame(EncodeBatchFrame(SampleEnvelopes(1))));
}

TEST(WireTest, TruncatedBatchFrameRejected) {
  std::string frame = EncodeBatchFrame(SampleEnvelopes(3));
  for (size_t cut = 0; cut < frame.size(); ++cut) {
    std::vector<std::string> out;
    EXPECT_FALSE(DecodeBatchFrame(frame.substr(0, cut), &out)) << cut;
    EXPECT_TRUE(out.empty()) << "failed decode must not leak partial results";
  }
}

TEST(WireTest, BatchFrameTrailingBytesRejected) {
  std::string frame = EncodeBatchFrame(SampleEnvelopes(2)) + "z";
  std::vector<std::string> out;
  EXPECT_FALSE(DecodeBatchFrame(frame, &out));
}

TEST(WireTest, BatchFrameVersionMismatchRejected) {
  std::string frame = EncodeBatchFrame(SampleEnvelopes(2));
  frame[1] = static_cast<char>(kBatchFrameVersion + 1);
  std::vector<std::string> out;
  EXPECT_FALSE(DecodeBatchFrame(frame, &out));
}

TEST(WireTest, BatchFrameCorruptCountRejected) {
  std::string frame = EncodeBatchFrame(SampleEnvelopes(2));
  // Claim far more records than the payload can hold.
  frame[2] = '\xff';
  frame[3] = '\xff';
  frame[4] = '\xff';
  frame[5] = '\x7f';
  std::vector<std::string> out;
  EXPECT_FALSE(DecodeBatchFrame(frame, &out));
}

TEST(WireTest, EmptyBatchFrameRoundTrips) {
  std::string frame = EncodeBatchFrame({});
  std::vector<std::string> out{"sentinel"};
  ASSERT_TRUE(DecodeBatchFrame(frame, &out));
  EXPECT_TRUE(out.empty());
}

}  // namespace
}  // namespace p2
