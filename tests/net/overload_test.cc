// Overload resilience (docs/ROBUSTNESS.md "Overload & graceful degradation"):
// bounded admission with priority-class shedding (best-effort first, control plane
// never), the overload tuple and sysOverloadStat introspection surfaces, and the
// degradation watchdog's enter/stretch/restore lifecycle. The transport-side limits
// (in-flight window, sender backlog, reorder cap) are covered in transport_test.cc.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/net/network.h"

namespace p2 {
namespace {

NodeOptions Quiet() {
  NodeOptions opts;
  opts.introspection = false;
  return opts;
}

// One node with a fan-out rule: each kick joins the item table and emits one
// local out(N, X) event per row — all queued inside a single derivation cascade,
// which is the only place queue pressure can exist (queues drain to empty between
// scheduler events).
struct FanOut {
  explicit FanOut(NodeOptions opts, int items) : node(net.AddNode("n1", opts)) {
    std::string error;
    EXPECT_TRUE(node->LoadProgram("materialize(item, infinity, 1000, keys(1,2)).\n"
                                  "r1 out@N(X) :- kick@N(), item@N(X).",
                                  &error))
        << error;
    node->SubscribeEvent("out", [this](const TupleRef&) { ++arrivals; });
    for (int i = 0; i < items; ++i) {
      node->InjectEvent(Tuple::Make("item", {Value::Str("n1"), Value::Int(i)}));
    }
    net.RunFor(0.1);  // items land each in their own event; no pressure yet
  }

  void Kick() { node->InjectEvent(Tuple::Make("kick", {Value::Str("n1")})); }

  Network net;
  Node* node;
  int arrivals = 0;
};

TEST(OverloadTest, BestEffortShedsAtQueueCap) {
  NodeOptions opts = Quiet();
  opts.queue_cap = 4;
  FanOut f(opts, 8);
  f.Kick();
  f.net.RunFor(0.1);
  EXPECT_EQ(f.arrivals, 4) << "cap admits exactly queue_cap best-effort tuples";
  const NodeStats& s = f.node->stats();
  EXPECT_EQ(s.shed_besteffort, 4u);
  EXPECT_EQ(s.shed_reliable, 0u);
  EXPECT_EQ(s.be_queue_hwm, 4u) << "best-effort share never exceeds the cap";
  EXPECT_LE(s.be_queue_hwm, opts.queue_cap);
}

TEST(OverloadTest, UncappedQueueAdmitsEverything) {
  FanOut f(Quiet(), 8);  // queue_cap = 0: admission limits off
  f.Kick();
  f.net.RunFor(0.1);
  EXPECT_EQ(f.arrivals, 8);
  EXPECT_EQ(f.node->stats().shed_besteffort, 0u);
  EXPECT_EQ(f.node->stats().be_queue_hwm, 8u);
}

TEST(OverloadTest, ReliableNamesBypassTheCap) {
  NodeOptions opts = Quiet();
  opts.queue_cap = 4;
  FanOut f(opts, 8);
  // Marking the head reliable reclassifies its local deliveries as control plane:
  // the cap no longer applies and nothing is shed.
  f.node->MarkReliable("out");
  f.Kick();
  f.net.RunFor(0.1);
  EXPECT_EQ(f.arrivals, 8);
  const NodeStats& s = f.node->stats();
  EXPECT_EQ(s.shed_besteffort, 0u);
  EXPECT_EQ(s.shed_reliable, 0u);
  EXPECT_GE(s.admitted_reliable, 8u);
  // The injected item/kick seeds are best-effort at depth 1 each (the queue drains
  // between scheduler events); the 8-delivery cascade itself rides the control class.
  EXPECT_LE(s.be_queue_hwm, 1u) << "control-plane entries never occupy the capped share";
}

TEST(OverloadTest, LowPriorityQueueCapSheds) {
  NodeOptions opts = Quiet();
  opts.low_queue_cap = 2;
  Network net;
  Node* node = net.AddNode("n1", opts);
  // Three low-priority rules fire on one kick: their deferred triggers are pushed
  // into the low queue inside a single dispatch, so the third exceeds the cap.
  std::string error;
  ASSERT_TRUE(node->LoadProgramLowPriority("l1 a@N() :- kick@N().\n"
                                           "l2 b@N() :- kick@N().\n"
                                           "l3 c@N() :- kick@N().",
                                           {}, &error))
      << error;
  int fired = 0;
  for (const char* name : {"a", "b", "c"}) {
    node->SubscribeEvent(name, [&fired](const TupleRef&) { ++fired; });
  }
  node->InjectEvent(Tuple::Make("kick", {Value::Str("n1")}));
  net.RunFor(0.1);
  EXPECT_EQ(fired, 2);
  const NodeStats& s = node->stats();
  EXPECT_EQ(s.shed_low, 1u);
  EXPECT_EQ(s.admitted_low, 2u);
  EXPECT_EQ(s.low_queue_hwm, 2u);
  EXPECT_EQ(s.shed_besteffort, 0u) << "the kick itself rides the primary queue";
}

TEST(OverloadTest, OverloadTupleEmittedAtSweepGranularity) {
  NodeOptions opts = Quiet();
  opts.queue_cap = 4;
  FanOut f(opts, 8);
  std::vector<std::pair<std::string, int64_t>> overloads;
  f.node->SubscribeEvent("overload", [&](const TupleRef& t) {
    overloads.push_back({t->field(2).AsString(), t->field(3).AsInt()});
  });
  f.Kick();
  f.net.RunFor(2.5);  // two sweeps pass; only the first one saw new shedding
  ASSERT_EQ(overloads.size(), 1u)
      << "one overload tuple per class per sweep that shed, not per shed event";
  EXPECT_EQ(overloads[0].first, "besteffort");
  EXPECT_EQ(overloads[0].second, 4) << "carries the cumulative shed count";

  f.Kick();  // a second burst sheds again -> exactly one more tuple
  f.net.RunFor(1.5);
  ASSERT_EQ(overloads.size(), 2u);
  EXPECT_EQ(overloads[1].second, 8);
}

TEST(OverloadTest, SysOverloadStatPublishesPerClassRows) {
  NodeOptions opts;  // introspection on
  opts.queue_cap = 4;
  FanOut f(opts, 8);
  f.Kick();
  f.net.RunFor(1.5);  // past the sweep at t=1
  std::vector<TupleRef> rows = f.node->TableContents("sysOverloadStat");
  ASSERT_EQ(rows.size(), 3u) << "one row per admission class";
  // sysOverloadStat(NAddr, Class, Admitted, Shed, QueueDepth, InFlight, Degraded)
  bool saw_besteffort = false;
  for (const TupleRef& t : rows) {
    EXPECT_EQ(t->field(0).AsString(), "n1");
    EXPECT_EQ(t->field(4).AsInt(), 0) << "queues drained before the sweep";
    EXPECT_EQ(t->field(6).AsInt(), 0) << "watchdog off -> never degraded";
    if (t->field(1).AsString() == "besteffort") {
      saw_besteffort = true;
      EXPECT_GE(t->field(2).AsInt(), 4);  // admitted
      EXPECT_EQ(t->field(3).AsInt(), 4);  // shed
    } else if (t->field(1).AsString() == "reliable") {
      EXPECT_EQ(t->field(3).AsInt(), 0) << "the control plane is never shed";
    }
  }
  EXPECT_TRUE(saw_besteffort);
}

TEST(OverloadTest, WatchdogEntersAndRestoresWithHysteresis) {
  NodeOptions opts = Quiet();
  opts.degrade_hi = 4;
  opts.sweep_interval = 0.5;
  Network net;
  Node* node = net.AddNode("n1", opts);
  std::string error;
  // A periodic fan-out keeps the per-sweep peak queue depth at 6 >= degrade_hi.
  ASSERT_TRUE(node->LoadProgram("materialize(item, infinity, 1000, keys(1,2)).\n"
                                "p1 out@N(X) :- periodic@N(E, 0.2), item@N(X).",
                                &error))
      << error;
  for (int i = 0; i < 6; ++i) {
    node->InjectEvent(Tuple::Make("item", {Value::Str("n1"), Value::Int(i)}));
  }
  net.RunFor(2.0);  // two pressured sweeps trip the watchdog
  EXPECT_TRUE(node->degraded());
  EXPECT_EQ(node->stats().degrade_enters, 1u);
  EXPECT_EQ(node->stats().degrade_exits, 0u);

  // Load stops: pressure reads zero, and after two calm sweeps the node restores.
  ASSERT_TRUE(node->UnloadProgram(node->last_program_id()));
  net.RunFor(2.5);
  EXPECT_FALSE(node->degraded());
  EXPECT_EQ(node->stats().degrade_enters, 1u) << "no flapping on the way down";
  EXPECT_EQ(node->stats().degrade_exits, 1u);
  Node::OverloadSnapshot ov = node->OverloadState();
  EXPECT_EQ(ov.be_in_queue, 0u);
  EXPECT_EQ(ov.low_depth, 0u);
  EXPECT_EQ(node->QueueDepth(), 0u);
}

TEST(OverloadTest, DegradedModeStretchesPeriodicChains) {
  NodeOptions opts = Quiet();
  opts.degrade_hi = 4;
  opts.degrade_stretch = 2.0;
  opts.sweep_interval = 0.5;
  Network net;
  Node* node = net.AddNode("n1", opts);
  std::string error;
  ASSERT_TRUE(node->LoadProgram("materialize(item, infinity, 1000, keys(1,2)).\n"
                                "p1 out@N(X) :- periodic@N(E, 0.2), item@N(X).",
                                &error))
      << error;
  int outs = 0;
  node->SubscribeEvent("out", [&outs](const TupleRef&) { ++outs; });
  for (int i = 0; i < 6; ++i) {
    node->InjectEvent(Tuple::Make("item", {Value::Str("n1"), Value::Int(i)}));
  }
  net.RunFor(2.0);  // healthy until the watchdog trips at ~t=1.5
  ASSERT_TRUE(node->degraded());
  int outs_until_degraded = outs;
  net.RunFor(2.0);  // same wall of virtual time, but ticks run at half rate
  int outs_while_degraded = outs - outs_until_degraded;
  EXPECT_LT(outs_while_degraded, outs_until_degraded)
      << "degraded ticks must be sparser than healthy ticks over an equal window";
  EXPECT_GT(outs_while_degraded, 0) << "stretched, not stopped";
}

TEST(OverloadTest, DegradedModeSamplesLowPriorityWork) {
  NodeOptions opts = Quiet();
  opts.degrade_hi = 4;
  opts.sweep_interval = 0.5;
  Network net;
  Node* node = net.AddNode("n1", opts);
  std::string error;
  ASSERT_TRUE(node->LoadProgram("materialize(item, infinity, 1000, keys(1,2)).\n"
                                "p1 out@N(X) :- periodic@N(E, 0.2), item@N(X).",
                                &error))
      << error;
  ASSERT_TRUE(node->LoadProgramLowPriority("l1 probe@N(E) :- periodic@N(E, 0.2).",
                                           {}, &error))
      << error;
  for (int i = 0; i < 6; ++i) {
    node->InjectEvent(Tuple::Make("item", {Value::Str("n1"), Value::Int(i)}));
  }
  net.RunFor(4.0);  // degraded from ~t=1.5 on; sampling drops every 2nd trigger
  ASSERT_TRUE(node->degraded());
  EXPECT_GT(node->stats().shed_low, 0u);
  EXPECT_GT(node->stats().admitted_low, node->stats().shed_low)
      << "sampling halves low-priority work, it does not starve it";
}

// The acceptance-criteria shape: a cascade offering >10x the admission budget.
// Memory stays within the configured caps, nothing reliable is shed, and once the
// load stops the node drains and restores to non-degraded.
TEST(OverloadTest, TenfoldOverloadStaysBoundedAndRecovers) {
  NodeOptions opts = Quiet();
  opts.queue_cap = 16;
  opts.degrade_hi = 8;
  opts.sweep_interval = 0.5;
  Network net;
  Node* node = net.AddNode("n1", opts);
  std::string error;
  // Two-stage amplification: each tick joins 16 items into mid events; every
  // admitted mid joins the table again. Offered load per tick is 16 + 16*16 = 272
  // deliveries against a 16-entry budget — 17x over.
  ASSERT_TRUE(node->LoadProgram("materialize(item, infinity, 1000, keys(1,2)).\n"
                                "p1 mid@N(X) :- periodic@N(E, 0.2), item@N(X).\n"
                                "r2 out@N(X, Y) :- mid@N(X), item@N(Y).",
                                &error))
      << error;
  for (int i = 0; i < 16; ++i) {
    node->InjectEvent(Tuple::Make("item", {Value::Str("n1"), Value::Int(i)}));
  }
  net.RunFor(3.0);
  const NodeStats& s = node->stats();
  EXPECT_GT(s.shed_besteffort, 10 * s.admitted_besteffort / 20)
      << "most of the offered load must have been shed";
  EXPECT_LE(s.be_queue_hwm, opts.queue_cap) << "memory bound held under 17x load";
  EXPECT_EQ(s.shed_reliable, 0u);
  EXPECT_TRUE(node->degraded()) << "sustained pressure must trip the watchdog";

  ASSERT_TRUE(node->UnloadProgram(node->last_program_id()));
  net.RunFor(2.5);
  EXPECT_FALSE(node->degraded()) << "fleet must return to normal after load drops";
  EXPECT_EQ(node->QueueDepth(), 0u);
  Node::OverloadSnapshot ov = node->OverloadState();
  EXPECT_EQ(ov.be_in_queue + ov.low_depth + ov.rel_pending + ov.rel_backlog +
                ov.reorder_buffered,
            0u)
      << "every bounded resource drains once the overload ends";
}

// Shedding and degrade decisions consume only deterministic local state (queue
// depths, virtual time) — the same overloaded run must replay bit-identically.
TEST(OverloadTest, SheddingIsDeterministic) {
  auto run_once = [](uint64_t* shed, uint64_t* admitted, int* arrivals) {
    NodeOptions opts = Quiet();
    opts.queue_cap = 8;
    opts.degrade_hi = 4;
    FanOut f(opts, 20);
    for (int i = 0; i < 5; ++i) {
      f.Kick();
      f.net.RunFor(0.7);
    }
    *shed = f.node->stats().shed_besteffort;
    *admitted = f.node->stats().admitted_besteffort;
    *arrivals = f.arrivals;
  };
  uint64_t s1 = 0, a1 = 0, s2 = 0, a2 = 0;
  int v1 = 0, v2 = 0;
  run_once(&s1, &a1, &v1);
  run_once(&s2, &a2, &v2);
  EXPECT_GT(s1, 0u);
  EXPECT_EQ(s1, s2);
  EXPECT_EQ(a1, a2);
  EXPECT_EQ(v1, v2);
}

TEST(OverloadTest, CrashClearsAdmissionStateForRecovery) {
  NodeOptions opts = Quiet();
  opts.queue_cap = 4;
  FanOut f(opts, 8);
  f.Kick();
  f.net.RunFor(0.1);
  ASSERT_EQ(f.node->stats().shed_besteffort, 4u);
  f.node->Crash();
  f.node->Recover();
  // A recovered node starts with an empty queue: the full cap is available again.
  f.Kick();
  f.net.RunFor(0.5);
  EXPECT_EQ(f.node->stats().shed_besteffort, 8u)
      << "the fresh cascade sheds against an empty queue, not stale occupancy";
  EXPECT_EQ(f.arrivals, 8) << "4 before the crash + 4 after recovery";
}

}  // namespace
}  // namespace p2
