// Zero-copy decode robustness (docs/SCALING.md "Memory model & hot-path
// batching"). DecodeEnvelopeFast is the hot-path replacement for
// DecodeEnvelope; the contract is strict equivalence: for EVERY byte string the
// two decoders agree on acceptance, and on acceptance they produce identical
// envelopes. The suite covers a hand-built case per value kind and flag
// combination, a seeded random property sweep over deep/nested tuples, and the
// malformed-input family — truncation at every prefix length, oversized length
// prefixes, bad tags, trailing garbage — where both decoders must reject
// cleanly with no out-of-bounds reads (the ASan+UBSan CI job enforces that
// part).

#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/net/wire.h"

namespace p2 {
namespace {

// Structural envelope equality (WireEnvelope has no operator==).
void ExpectSameEnvelope(const WireEnvelope& a, const WireEnvelope& b) {
  EXPECT_EQ(a.src_addr, b.src_addr);
  EXPECT_EQ(a.src_tuple_id, b.src_tuple_id);
  EXPECT_EQ(a.is_delete, b.is_delete);
  EXPECT_EQ(a.bound_mask, b.bound_mask);
  EXPECT_EQ(a.reliable, b.reliable);
  EXPECT_EQ(a.is_ack, b.is_ack);
  EXPECT_EQ(a.epoch, b.epoch);
  EXPECT_EQ(a.seq, b.seq);
  EXPECT_EQ(a.ack_seq, b.ack_seq);
  ASSERT_EQ(a.tuple == nullptr, b.tuple == nullptr);
  if (a.tuple != nullptr) {
    EXPECT_TRUE(*a.tuple == *b.tuple) << a.tuple->ToString() << " vs "
                                      << b.tuple->ToString();
  }
}

// The equivalence oracle: both decoders see `bytes`; they must agree on
// acceptance, and on acceptance produce the same envelope.
void ExpectDecodersAgree(const std::string& bytes) {
  WireEnvelope legacy;
  WireEnvelope fast;
  bool legacy_ok = DecodeEnvelope(bytes, &legacy);
  bool fast_ok = DecodeEnvelopeFast(bytes, &fast);
  ASSERT_EQ(legacy_ok, fast_ok) << "acceptance diverged on " << bytes.size()
                                << "-byte input";
  if (legacy_ok) {
    ExpectSameEnvelope(legacy, fast);
  }
}

// Round-trips `env` through both decoders and additionally checks truncation at
// every prefix length: no prefix of a valid envelope is itself valid (every
// field is fixed-width or length-prefixed), and neither decoder may read past
// the prefix it was given.
void ExerciseEnvelope(const WireEnvelope& env) {
  std::string bytes = EncodeEnvelope(env);
  {
    WireEnvelope fast;
    ASSERT_TRUE(DecodeEnvelopeFast(bytes, &fast));
    ExpectSameEnvelope(env, fast);
  }
  ExpectDecodersAgree(bytes);
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    std::string prefix = bytes.substr(0, cut);
    WireEnvelope out;
    EXPECT_FALSE(DecodeEnvelopeFast(prefix, &out)) << "cut=" << cut;
    ExpectDecodersAgree(prefix);
  }
  // Trailing garbage must be rejected by both.
  ExpectDecodersAgree(bytes + std::string(1, '\0'));
  ExpectDecodersAgree(bytes + "xyzzy");
}

WireEnvelope DataEnvelope(TupleRef tuple) {
  WireEnvelope env;
  env.src_addr = "n12";
  env.src_tuple_id = 420000000017ULL;
  env.tuple = std::move(tuple);
  return env;
}

TEST(WireDecodeEquivalenceTest, EveryValueKindRoundTrips) {
  ExerciseEnvelope(DataEnvelope(Tuple::Make(
      "allKinds",
      {Value::Null(), Value::Bool(true), Value::Bool(false),
       Value::Int(-987654321098765LL), Value::Id(~0ULL),
       Value::Double(2.718281828e-9), Value::Str(""), Value::Str("short"),
       Value::Str(std::string(300, 'q')),
       Value::List({Value::Int(1), Value::Str("x"),
                    Value::List({Value::Id(7), Value::Null()})})})));
}

TEST(WireDecodeEquivalenceTest, FlagCombinationsRoundTrip) {
  TupleRef t = Tuple::Make("ping", {Value::Str("n1"), Value::Id(5)});
  // Best-effort data.
  ExerciseEnvelope(DataEnvelope(t));
  // Delete request with a partial bound mask.
  {
    WireEnvelope env = DataEnvelope(t);
    env.is_delete = true;
    env.bound_mask = 0b101;
    ExerciseEnvelope(env);
  }
  // Reliable data (epoch + seq on the wire).
  {
    WireEnvelope env = DataEnvelope(t);
    env.reliable = true;
    env.epoch = 3;
    env.seq = 1234567;
    ExerciseEnvelope(env);
  }
  // Reliable delete.
  {
    WireEnvelope env = DataEnvelope(t);
    env.reliable = true;
    env.is_delete = true;
    env.epoch = 9;
    env.seq = 2;
    ExerciseEnvelope(env);
  }
  // Pure ack (no tuple at all).
  {
    WireEnvelope env;
    env.src_addr = "n7";
    env.is_ack = true;
    env.epoch = 11;
    env.ack_seq = 99;
    ExerciseEnvelope(env);
  }
}

TEST(WireDecodeEquivalenceTest, EmptyNameAndZeroArityRoundTrip) {
  ExerciseEnvelope(DataEnvelope(Tuple::Make("", {})));
  ExerciseEnvelope(DataEnvelope(Tuple::Make("unit", {})));
}

// Seeded property sweep: random tuples (nested lists, all kinds, long strings)
// under random flag combinations. Every generated envelope is also truncated at
// every byte, so this sweeps a few hundred thousand decoder calls.
TEST(WireDecodeEquivalenceTest, RandomizedPropertySweep) {
  Rng rng(20260809);
  auto rand_string = [&](size_t max_len) {
    std::string s;
    size_t len = rng.NextBelow(max_len + 1);
    for (size_t i = 0; i < len; ++i) {
      s.push_back(static_cast<char>(rng.NextBelow(256)));
    }
    return s;
  };
  // depth bounds the list nesting so generation terminates.
  std::function<Value(int)> rand_value = [&](int depth) -> Value {
    switch (rng.NextBelow(depth > 0 ? 7 : 6)) {
      case 0:
        return Value::Null();
      case 1:
        return Value::Bool(rng.NextBelow(2) == 1);
      case 2:
        return Value::Int(static_cast<int64_t>(rng.NextBelow(~0ULL)));
      case 3:
        return Value::Id(rng.NextBelow(~0ULL));
      case 4:
        return Value::Double(rng.NextDouble() * 1e12 - 5e11);
      case 5:
        return Value::Str(rand_string(40));
      default: {
        ValueList items;
        size_t n = rng.NextBelow(4);
        for (size_t i = 0; i < n; ++i) {
          items.push_back(rand_value(depth - 1));
        }
        return Value::List(std::move(items));
      }
    }
  };
  for (int iter = 0; iter < 60; ++iter) {
    ValueList fields;
    size_t arity = rng.NextBelow(6);
    for (size_t i = 0; i < arity; ++i) {
      fields.push_back(rand_value(2));
    }
    WireEnvelope env;
    env.src_addr = rand_string(12);
    env.src_tuple_id = rng.NextBelow(~0ULL);
    env.bound_mask = rng.NextBelow(~0ULL);
    switch (rng.NextBelow(4)) {
      case 0:
        break;  // best-effort data
      case 1:
        env.is_delete = true;
        break;
      case 2:
        env.reliable = true;
        env.epoch = rng.NextBelow(100);
        env.seq = rng.NextBelow(1 << 20);
        break;
      default:
        env.is_ack = true;
        env.epoch = rng.NextBelow(100);
        env.ack_seq = rng.NextBelow(1 << 20);
        break;
    }
    if (!env.is_ack) {
      env.tuple = Tuple::Make(rand_string(10), std::move(fields));
    }
    ExerciseEnvelope(env);
  }
}

// Malformed inputs with plausible-looking structure: both decoders must reject
// them identically and without reading out of bounds.
TEST(WireDecodeEquivalenceTest, MalformedInputsRejectCleanly) {
  std::string valid = EncodeEnvelope(
      DataEnvelope(Tuple::Make("succ", {Value::Str("n2"), Value::Id(5)})));

  // Empty and sub-header-size inputs.
  ExpectDecodersAgree("");
  ExpectDecodersAgree(std::string(1, '\0'));
  ExpectDecodersAgree(std::string(16, '\0'));

  // Oversized src_addr length prefix: claims 4 GB of address.
  {
    std::string b = valid;
    b[17] = '\xff';
    b[18] = '\xff';
    b[19] = '\xff';
    b[20] = '\xff';
    ExpectDecodersAgree(b);
  }

  // Oversized tuple-name length prefix (first field after the 3-byte addr).
  {
    std::string b = valid;
    size_t name_len_at = 1 + 8 + 8 + 4 + 3;  // flags, id, mask, addr len+bytes
    b[name_len_at] = '\xf0';
    b[name_len_at + 3] = '\x7f';
    ExpectDecodersAgree(b);
  }

  // Arity cap: claims 2^20 fields.
  {
    std::string b = valid;
    size_t arity_at = 1 + 8 + 8 + 4 + 3 + 4 + 4;  // ... name len + "succ"
    b[arity_at] = '\x00';
    b[arity_at + 1] = '\x00';
    b[arity_at + 2] = '\x10';
    b[arity_at + 3] = '\x00';
    ExpectDecodersAgree(b);
  }

  // Bad value tag: no Value::Kind has tag 0x6e.
  {
    std::string b = valid;
    size_t first_tag_at = 1 + 8 + 8 + 4 + 3 + 4 + 4 + 4;
    b[first_tag_at] = '\x6e';
    ExpectDecodersAgree(b);
  }

  // Oversized list length inside a value: a list claiming 2^24 elements.
  {
    WireEnvelope env = DataEnvelope(
        Tuple::Make("l", {Value::List({Value::Int(1), Value::Int(2)})}));
    std::string b = EncodeEnvelope(env);
    size_t list_len_at = b.size() - (2 * 9 + 4);  // two int values + list count
    b[list_len_at] = '\x00';
    b[list_len_at + 1] = '\x00';
    b[list_len_at + 2] = '\x00';
    b[list_len_at + 3] = '\x01';
    ExpectDecodersAgree(b);
  }

  // Random byte soup: whatever happens, the decoders must agree.
  Rng rng(77);
  for (int i = 0; i < 200; ++i) {
    std::string soup;
    size_t len = rng.NextBelow(80);
    for (size_t j = 0; j < len; ++j) {
      soup.push_back(static_cast<char>(rng.NextBelow(256)));
    }
    ExpectDecodersAgree(soup);
  }

  // Random single-byte corruption of a valid envelope.
  for (int i = 0; i < 300; ++i) {
    std::string b = valid;
    size_t at = rng.NextBelow(b.size());
    b[at] = static_cast<char>(rng.NextBelow(256));
    ExpectDecodersAgree(b);
  }
}

}  // namespace
}  // namespace p2
