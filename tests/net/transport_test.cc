// Reliable tuple transport (docs/ROBUSTNESS.md): sequenced per-destination
// channels with retransmit/backoff, duplicate suppression, in-order delivery,
// channel failure (chanFailed), crash/recover epoch resynchronization, link-level
// fault injection, partitions, and the sysChannelStat introspection rows.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>

#include "src/net/network.h"
#include "src/testbed/testbed.h"

namespace p2 {
namespace {

NodeOptions Quiet() {
  NodeOptions opts;
  opts.introspection = false;
  return opts;
}

// The CI TSan job re-runs the whole transport matrix on a sharded fleet via
// P2_SHARDS; results must be identical because delivery draws are per-link.
NetworkConfig WithShards(NetworkConfig cfg) {
  if (const char* env = std::getenv("P2_SHARDS")) {
    cfg.shards = std::atoi(env);
  }
  return cfg;
}

// Two nodes where `a` forwards go(a, b, X) as a reliable rel(b, X) event.
struct Pair {
  explicit Pair(NetworkConfig cfg, NodeOptions opts = Quiet())
      : net(WithShards(cfg)), a(net.AddNode("a", opts)), b(net.AddNode("b", opts)) {
    std::string error;
    EXPECT_TRUE(a->LoadProgram("r1 rel@Other(NAddr, X) :- go@NAddr(Other, X).",
                               &error))
        << error;
    a->MarkReliable("rel");
    b->SubscribeEvent("rel", [this](const TupleRef& t) {
      arrivals.push_back(t->field(2).AsInt());
    });
  }

  void Send(int n) {
    for (int i = 0; i < n; ++i) {
      a->InjectEvent(
          Tuple::Make("go", {Value::Str("a"), Value::Str("b"), Value::Int(i)}));
    }
  }

  Network net;
  Node* a;
  Node* b;
  std::vector<int64_t> arrivals;
};

TEST(TransportTest, AllTuplesArriveInOrderUnderHeavyLoss) {
  NetworkConfig cfg;
  cfg.latency = 0.01;
  cfg.jitter = 0.005;
  cfg.seed = 11;
  Pair p(cfg);
  p.net.SetLinkFault("a", "b", {/*loss=*/0.3});
  p.net.SetLinkFault("b", "a", {/*loss=*/0.3});  // acks get lost too
  const int kSent = 40;
  p.Send(kSent);
  p.net.RunFor(30.0);
  ASSERT_EQ(p.arrivals.size(), static_cast<size_t>(kSent));
  for (int i = 0; i < kSent; ++i) {
    EXPECT_EQ(p.arrivals[i], i) << "out of order at " << i;
  }
  const Node::ChannelStat& cs = p.a->channel_stats().at("b");
  EXPECT_EQ(cs.sent, static_cast<uint64_t>(kSent));
  EXPECT_EQ(cs.acked, static_cast<uint64_t>(kSent));
  EXPECT_GT(cs.retx, 0u) << "30% loss must force retransmissions";
  EXPECT_EQ(cs.failed, 0u);
}

TEST(TransportTest, UnmarkedTuplesStayBestEffort) {
  NetworkConfig cfg;
  cfg.loss_rate = 0.5;
  cfg.seed = 7;
  Network net(cfg);
  Node* a = net.AddNode("a", Quiet());
  Node* b = net.AddNode("b", Quiet());
  std::string error;
  ASSERT_TRUE(a->LoadProgram("r1 hi@Other(NAddr, X) :- go@NAddr(Other, X).", &error));
  int arrived = 0;
  b->SubscribeEvent("hi", [&](const TupleRef&) { ++arrived; });
  for (int i = 0; i < 100; ++i) {
    a->InjectEvent(
        Tuple::Make("go", {Value::Str("a"), Value::Str("b"), Value::Int(i)}));
  }
  net.RunFor(5.0);
  EXPECT_LT(arrived, 100);  // no retransmission for the best-effort class
  EXPECT_GT(net.dropped_msgs(), 0u);
  EXPECT_TRUE(a->channel_stats().empty());
}

TEST(TransportTest, DuplicatesAreSuppressed) {
  NetworkConfig cfg;
  cfg.seed = 3;
  Pair p(cfg);
  p.net.SetLinkFault("a", "b", {/*loss=*/0, /*dup_rate=*/0.8});
  const int kSent = 25;
  p.Send(kSent);
  p.net.RunFor(10.0);
  EXPECT_GT(p.net.duplicated_msgs(), 0u);
  ASSERT_EQ(p.arrivals.size(), static_cast<size_t>(kSent)) << "duplicates leaked";
  EXPECT_GT(p.b->channel_stats().at("a").dups, 0u);
}

TEST(TransportTest, ReorderedChannelStillDeliversInSequence) {
  NetworkConfig cfg;
  cfg.latency = 0.02;
  cfg.jitter = 0.01;
  cfg.seed = 5;
  Pair p(cfg);
  p.net.SetLinkFault("a", "b", {/*loss=*/0, /*dup_rate=*/0, /*reorder_rate=*/0.5});
  const int kSent = 40;
  p.Send(kSent);
  p.net.RunFor(20.0);
  EXPECT_GT(p.net.reordered_msgs(), 0u);
  ASSERT_EQ(p.arrivals.size(), static_cast<size_t>(kSent));
  for (int i = 0; i < kSent; ++i) {
    EXPECT_EQ(p.arrivals[i], i) << "holdback buffer failed at " << i;
  }
}

TEST(TransportTest, RetransmitExhaustionFailsChannelAndEmitsChanFailed) {
  NetworkConfig cfg;
  cfg.latency = 0.01;
  NodeOptions opts = Quiet();
  opts.rel_rto = 0.1;
  opts.rel_rto_max = 0.4;
  opts.rel_max_retx = 3;
  Pair p(cfg, opts);
  std::vector<std::string> failed_dsts;
  p.a->SubscribeEvent("chanFailed", [&](const TupleRef& t) {
    failed_dsts.push_back(t->field(1).AsString());
  });
  p.net.Partition({"a"}, {"b"});
  p.Send(3);
  p.net.RunFor(10.0);
  EXPECT_TRUE(p.arrivals.empty());
  ASSERT_FALSE(failed_dsts.empty()) << "exhaustion must surface as chanFailed";
  EXPECT_EQ(failed_dsts[0], "b");
  EXPECT_GT(p.a->channel_stats().at("b").failed, 0u);

  // After the partition heals, the restarted channel (fresh epoch) works again.
  p.net.Heal();
  p.a->InjectEvent(
      Tuple::Make("go", {Value::Str("a"), Value::Str("b"), Value::Int(99)}));
  p.net.RunFor(5.0);
  ASSERT_EQ(p.arrivals.size(), 1u);
  EXPECT_EQ(p.arrivals[0], 99);
}

TEST(TransportTest, PartitionDropsAndHealRestores) {
  Network net;
  Node* a = net.AddNode("a", Quiet());
  net.AddNode("b", Quiet());
  net.AddNode("c", Quiet());
  std::string error;
  ASSERT_TRUE(a->LoadProgram("r1 hi@Other(NAddr) :- go@NAddr(Other).", &error));
  net.Partition({"a"}, {"b"});
  EXPECT_TRUE(net.IsPartitioned("a", "b"));
  EXPECT_TRUE(net.IsPartitioned("b", "a"));
  EXPECT_FALSE(net.IsPartitioned("a", "c"));
  a->InjectEvent(Tuple::Make("go", {Value::Str("a"), Value::Str("b")}));
  net.RunFor(1.0);
  EXPECT_EQ(net.dropped_msgs(), 1u);
  net.Heal();
  EXPECT_FALSE(net.IsPartitioned("a", "b"));
  a->InjectEvent(Tuple::Make("go", {Value::Str("a"), Value::Str("b")}));
  net.RunFor(1.0);
  EXPECT_EQ(net.dropped_msgs(), 1u);  // second send delivered
}

TEST(TransportTest, RecoverResumesPeriodicTimersAndSweeps) {
  Network net;
  NodeOptions opts = Quiet();
  opts.sweep_interval = 0.5;
  Node* a = net.AddNode("a", opts);
  std::string error;
  ASSERT_TRUE(a->LoadProgram("materialize(short, 1, 100, keys(1,2)).\n"
                             "p1 tock@NAddr(E) :- periodic@NAddr(E, 0.5).",
                             &error))
      << error;
  int ticks = 0;
  a->SubscribeEvent("tock", [&](const TupleRef&) { ++ticks; });
  a->InjectEvent(Tuple::Make("short", {Value::Str("a"), Value::Int(1)}));
  net.RunFor(2.0);
  int ticks_before = ticks;
  EXPECT_GE(ticks_before, 3);

  a->Crash();
  EXPECT_FALSE(a->IsUp());
  net.RunFor(5.0);  // timer chains die at their next tick while down
  EXPECT_EQ(ticks, ticks_before);

  a->Recover();
  uint64_t expired_before = a->stats().tuples_expired;
  a->InjectEvent(Tuple::Make("short", {Value::Str("a"), Value::Int(2)}));
  net.RunFor(3.0);
  EXPECT_GE(ticks, ticks_before + 3) << "periodic chain not re-armed";
  EXPECT_GT(a->stats().tuples_expired, expired_before)
      << "sweep chain not re-armed";
  EXPECT_TRUE(a->IsUp());
}

TEST(TransportTest, RecoveredNodeRejoinsChordRing) {
  TestbedConfig cfg;
  cfg.num_nodes = 6;
  cfg.fleet.node_defaults.introspection = false;
  ChordTestbed bed(cfg);
  bed.Run(100);
  ASSERT_TRUE(bed.RingIsCorrect());

  Node* victim = bed.node(3);
  victim->Crash();
  bed.Run(40);
  uint64_t sent_while_down = victim->stats().msgs_sent;
  victim->Recover();
  bed.Run(150);
  EXPECT_TRUE(bed.RingIsCorrect()) << "ring did not re-absorb the recovered node";
  EXPECT_GT(victim->stats().msgs_sent, sent_while_down)
      << "stabilization did not resume";
}

TEST(TransportTest, CrashedReceiverTriggersRetransmitsThenRecoverySucceeds) {
  NetworkConfig cfg;
  cfg.latency = 0.01;
  NodeOptions opts = Quiet();
  opts.rel_rto = 0.2;
  opts.rel_max_retx = 20;  // outage shorter than exhaustion
  Pair p(cfg, opts);
  p.b->Crash();
  p.Send(5);
  p.net.RunFor(3.0);
  EXPECT_TRUE(p.arrivals.empty());
  EXPECT_GT(p.a->channel_stats().at("b").retx, 0u);
  p.b->Recover();
  p.net.RunFor(30.0);
  ASSERT_EQ(p.arrivals.size(), 5u) << "pending messages must survive the outage";
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(p.arrivals[i], i);
  }
}

TEST(TransportTest, RetransmitCountsAreDeterministic) {
  auto run_once = [](uint64_t* retx, uint64_t* msgs, uint64_t* bytes) {
    NetworkConfig cfg;
    cfg.latency = 0.01;
    cfg.jitter = 0.01;
    cfg.seed = 1234;
    Pair p(cfg);
    p.net.SetLinkFault("a", "b", {/*loss=*/0.25, /*dup_rate=*/0.1,
                                  /*reorder_rate=*/0.1});
    p.Send(30);
    p.net.RunFor(40.0);
    EXPECT_EQ(p.arrivals.size(), 30u);
    *retx = p.a->channel_stats().at("b").retx;
    *msgs = p.net.total_msgs();
    *bytes = p.net.total_bytes();
  };
  uint64_t r1 = 0, m1 = 0, b1 = 0, r2 = 0, m2 = 0, b2 = 0;
  run_once(&r1, &m1, &b1);
  run_once(&r2, &m2, &b2);
  EXPECT_EQ(r1, r2) << "same seed + fault schedule must replay bit-identically";
  EXPECT_EQ(m1, m2);
  EXPECT_EQ(b1, b2);
  EXPECT_GT(r1, 0u);
}

TEST(TransportTest, SysChannelStatRowsArePublishedAtSweep) {
  NetworkConfig cfg;
  cfg.latency = 0.01;
  cfg.seed = 21;
  NodeOptions opts;  // introspection + metrics on
  Pair p(cfg, opts);
  p.net.SetLinkFault("a", "b", {/*loss=*/0.3});
  p.Send(20);
  p.net.RunFor(10.0);  // well past several 1 s sweeps
  std::vector<TupleRef> rows = p.a->TableContents("sysChannelStat");
  ASSERT_EQ(rows.size(), 1u);
  // sysChannelStat(NAddr, Dst, Sent, Acked, Retx, Dups, Failed)
  EXPECT_EQ(rows[0]->field(0).AsString(), "a");
  EXPECT_EQ(rows[0]->field(1).AsString(), "b");
  EXPECT_EQ(rows[0]->field(2).AsInt(), 20);
  EXPECT_EQ(rows[0]->field(3).AsInt(), 20);
  EXPECT_GT(rows[0]->field(4).AsInt(), 0);
  EXPECT_EQ(rows[0]->field(6).AsInt(), 0);
  // The registry counters feed sysStat / the metrics export pipeline too.
  bool saw_rel_sent = false;
  for (const TupleRef& t : p.a->TableContents("sysStat")) {
    if (t->field(1).AsString() == "rel_sent") {
      saw_rel_sent = true;
      EXPECT_EQ(t->field(2).AsInt(), 20);
    }
  }
  EXPECT_TRUE(saw_rel_sent);
}

TEST(TransportTest, StaleAckAfterRecoverIsIgnored) {
  NetworkConfig cfg;
  cfg.latency = 0.01;
  cfg.jitter = 0;
  NodeOptions opts = Quiet();
  opts.rel_rto = 5.0;  // no retransmits during the window under test
  Pair p(cfg, opts);
  p.net.SetLinkFault("b", "a",
                     {/*loss=*/0, /*dup_rate=*/0, /*reorder_rate=*/0,
                      /*extra_latency=*/1.0});  // acks crawl back
  p.Send(1);
  p.net.RunFor(0.5);  // delivered; its epoch-1 ack is still in flight
  ASSERT_EQ(p.arrivals.size(), 1u);
  EXPECT_EQ(p.a->channel_stats().at("b").acked, 0u);

  p.a->Recover();     // restart: the outgoing channel advances to epoch 2
  p.net.RunFor(2.0);  // the epoch-1 ack lands after the restart
  EXPECT_EQ(p.a->channel_stats().at("b").acked, 0u)
      << "an ack from a pre-restart epoch must not credit the new epoch";

  // The restarted channel still works: the next send opens epoch 2 and is acked.
  p.net.ClearLinkFault("b", "a");
  p.a->InjectEvent(
      Tuple::Make("go", {Value::Str("a"), Value::Str("b"), Value::Int(42)}));
  p.net.RunFor(2.0);
  ASSERT_EQ(p.arrivals.size(), 2u);
  EXPECT_EQ(p.arrivals[1], 42);
  const Node::ChannelStat& cs = p.a->channel_stats().at("b");
  EXPECT_EQ(cs.sent, 2u);
  EXPECT_EQ(cs.acked, 1u);
}

TEST(TransportTest, ChanFailedFiresExactlyOncePerExhaustion) {
  NetworkConfig cfg;
  cfg.latency = 0.01;
  NodeOptions opts = Quiet();
  opts.rel_rto = 0.1;
  opts.rel_rto_max = 0.2;
  opts.rel_max_retx = 2;
  Pair p(cfg, opts);
  int chan_failed = 0;
  p.a->SubscribeEvent("chanFailed", [&](const TupleRef&) { ++chan_failed; });
  p.net.Partition({"a"}, {"b"});
  p.Send(4);
  p.net.RunFor(10.0);
  EXPECT_EQ(chan_failed, 1)
      << "one exhaustion = one chanFailed, not one per pending message";
  EXPECT_EQ(p.a->channel_stats().at("b").failed, 4u)
      << "every message abandoned by the exhaustion counts as failed";

  // Heal, prove the fresh-epoch channel works, then exhaust it again: a second,
  // distinct exhaustion surfaces a second chanFailed.
  p.net.Heal();
  p.Send(1);
  p.net.RunFor(5.0);
  ASSERT_EQ(p.arrivals.size(), 1u);
  EXPECT_EQ(chan_failed, 1);
  p.net.Partition({"a"}, {"b"});
  p.Send(2);
  p.net.RunFor(10.0);
  EXPECT_EQ(chan_failed, 2);
  EXPECT_EQ(p.a->channel_stats().at("b").failed, 6u);
}

TEST(TransportTest, InFlightWindowCapsPendingAndStillDeliversEverything) {
  NetworkConfig cfg;
  cfg.latency = 0.02;
  cfg.jitter = 0.005;
  cfg.seed = 9;
  NodeOptions opts = Quiet();
  opts.rel_window = 4;  // no backlog cap: excess waits, nothing is dropped
  Pair p(cfg, opts);
  const int kSent = 20;
  p.Send(kSent);
  p.net.RunFor(20.0);
  ASSERT_EQ(p.arrivals.size(), static_cast<size_t>(kSent));
  for (int i = 0; i < kSent; ++i) {
    EXPECT_EQ(p.arrivals[i], i);
  }
  EXPECT_LE(p.a->stats().rel_pending_hwm, 4u)
      << "never more than the window in flight";
  EXPECT_GT(p.a->stats().rel_backlog_hwm, 0u)
      << "the overflow must have waited in the backlog";
  EXPECT_EQ(p.a->stats().rel_busy_dropped, 0u);
}

// Satellite #3 (docs/ROBUSTNESS.md): a partition that never heals within the test
// window. Sender-side state stays at O(window + backlog) — not O(traffic) — the
// overflow is counted and signaled via chanBusy, and the eventual retransmit
// exhaustion still surfaces as chanFailed, strictly after chanBusy.
TEST(TransportTest, LongPartitionBoundsSenderStateAndSignalsBusyThenFailed) {
  NetworkConfig cfg;
  cfg.latency = 0.01;
  NodeOptions opts = Quiet();
  opts.rel_window = 4;
  opts.rel_backlog = 8;
  opts.rel_rto = 0.2;
  opts.rel_rto_max = 0.4;
  opts.rel_max_retx = 6;
  Pair p(cfg, opts);
  std::vector<std::string> signals;
  p.a->SubscribeEvent("chanBusy", [&](const TupleRef& t) {
    signals.push_back("busy:" + t->field(1).AsString());
  });
  p.a->SubscribeEvent("chanFailed", [&](const TupleRef& t) {
    signals.push_back("failed:" + t->field(1).AsString());
  });
  p.net.Partition({"a"}, {"b"});
  const int kSent = 30;
  p.Send(kSent);

  p.net.RunFor(0.1);  // before any retransmit resolves: buffers at their caps
  Node::OverloadSnapshot ov = p.a->OverloadState();
  EXPECT_EQ(ov.rel_pending, 4u) << "window slots all occupied";
  EXPECT_EQ(ov.rel_backlog, 8u) << "backlog full, not growing with traffic";
  EXPECT_EQ(p.a->stats().rel_busy_dropped, static_cast<uint64_t>(kSent - 4 - 8));
  ASSERT_FALSE(signals.empty());
  EXPECT_EQ(signals[0], "busy:b") << "one chanBusy per full-backlog episode";
  EXPECT_EQ(p.a->stats().rel_backlog_hwm, 8u);
  EXPECT_LE(p.a->stats().rel_pending_hwm, 4u);

  p.net.RunFor(10.0);  // retransmit exhaustion fails the channel
  ASSERT_GE(signals.size(), 2u);
  EXPECT_EQ(signals[0], "busy:b") << "backpressure must signal before failure";
  EXPECT_NE(std::find(signals.begin(), signals.end(), "failed:b"), signals.end());
  EXPECT_EQ(p.a->channel_stats().at("b").failed, 12u)
      << "window + backlog abandoned by the exhaustion";
  ov = p.a->OverloadState();
  EXPECT_EQ(ov.rel_pending + ov.rel_backlog, 0u) << "failure clears both buffers";

  // The healed channel works again under a fresh epoch.
  p.net.Heal();
  p.a->InjectEvent(
      Tuple::Make("go", {Value::Str("a"), Value::Str("b"), Value::Int(77)}));
  p.net.RunFor(5.0);
  ASSERT_EQ(p.arrivals.size(), 1u);
  EXPECT_EQ(p.arrivals[0], 77);
}

TEST(TransportTest, ReorderCapEvictsHoldbackWithoutLosingDeliveries) {
  NetworkConfig cfg;
  cfg.latency = 0.02;
  cfg.jitter = 0.01;
  cfg.seed = 23;
  NodeOptions opts = Quiet();
  opts.rel_reorder_cap = 2;  // tiny holdback: loss-induced gaps force evictions
  // Generous retransmit budget: evicted sequences are retried on RTO expiry with
  // exponential backoff, and this test isolates eviction losslessness from the
  // separate retransmit-exhaustion path (covered above).
  opts.rel_max_retx = 200;
  Pair p(cfg, opts);
  p.net.SetLinkFault("a", "b", {/*loss=*/0.3, /*dup_rate=*/0, /*reorder_rate=*/0.4});
  const int kSent = 40;
  p.Send(kSent);
  p.net.RunFor(600.0);  // virtual seconds: worst-case gap fills need max-RTO rounds
  ASSERT_EQ(p.arrivals.size(), static_cast<size_t>(kSent))
      << "eviction must be lossless: the unacked seq is simply retransmitted";
  for (int i = 0; i < kSent; ++i) {
    EXPECT_EQ(p.arrivals[i], i);
  }
  EXPECT_GT(p.b->stats().rel_reorder_dropped, 0u)
      << "the tiny cap must actually have evicted under this fault schedule";
  EXPECT_LE(p.b->stats().rel_reorder_hwm, 2u);
}

TEST(TransportTest, ReliableTransportOffIsAnAblation) {
  NetworkConfig cfg;
  cfg.loss_rate = 0.4;
  cfg.seed = 17;
  NodeOptions opts = Quiet();
  opts.reliable_transport = false;
  Pair p(cfg, opts);  // MarkReliable becomes a no-op
  p.Send(50);
  p.net.RunFor(10.0);
  EXPECT_LT(p.arrivals.size(), 50u);
  EXPECT_TRUE(p.a->channel_stats().empty());
}

}  // namespace
}  // namespace p2
