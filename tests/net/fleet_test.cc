// p2::Fleet facade tests (src/net/fleet.h): the embedding surface every host
// program uses. Covers handle operations, posted (timed) operations, the layered
// FleetConfig seed derivation, and the shard plumbing the facade exposes.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/net/fleet.h"

namespace p2 {
namespace {

constexpr char kRelay[] =
    "materialize(got, infinity, 64, keys(1, 2)).\n"
    "r1 got@Other(NAddr, X) :- go@NAddr(Other, X).\n";

TEST(FleetTest, HandlesLoadInjectAndQuery) {
  Fleet fleet;
  NodeHandle a = fleet.AddNode("a");
  NodeHandle b = fleet.AddNode("b");
  std::string error;
  ASSERT_TRUE(a.Load(kRelay, &error)) << error;
  ASSERT_TRUE(b.Load(kRelay, &error)) << error;
  a.Inject(Tuple::Make("go", {Value::Str("a"), Value::Str("b"), Value::Int(7)}));
  fleet.RunFor(1.0);
  EXPECT_EQ(b.Count("got"), 1u);
  ASSERT_EQ(b.Query("got").size(), 1u);
  EXPECT_EQ(b.Query("got")[0]->field(2).AsInt(), 7);
  EXPECT_TRUE(fleet.HasNode("a"));
  EXPECT_FALSE(fleet.HasNode("zebra"));
  EXPECT_EQ(fleet.Handles().size(), 2u);
  EXPECT_EQ(fleet.Handle("b").addr(), "b");
}

TEST(FleetTest, PostedOperationsFireAtTheirVirtualTime) {
  Fleet fleet;
  NodeHandle a = fleet.AddNode("a");
  std::string error;
  ASSERT_TRUE(a.Load(kRelay, &error)) << error;

  std::vector<double> fired;
  a.Post(0.5, [&](Node& node) { fired.push_back(node.Now()); });
  a.InjectAt(1.0, Tuple::Make("go", {Value::Str("a"), Value::Str("a"),
                                     Value::Int(1)}));
  a.CrashAt(2.0);
  a.ReviveAt(3.0);
  fleet.RunUntil(1.5);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_NEAR(fired[0], 0.5, 1e-9);
  EXPECT_EQ(a.Count("got"), 1u);
  EXPECT_TRUE(a.IsUp());
  fleet.RunUntil(2.5);
  EXPECT_FALSE(a.IsUp());
  fleet.RunUntil(3.5);
  EXPECT_TRUE(a.IsUp());
  EXPECT_EQ(a.Count("got"), 1u) << "table state survives a fail-stop crash";
}

TEST(FleetTest, LoadAtReportsInstallErrorsThroughCallback) {
  Fleet fleet;
  NodeHandle a = fleet.AddNode("a");
  std::string posted_error;
  a.LoadAt(0.5, "this is not overlog", ParamMap(),
           [&](const std::string& e) { posted_error = e; });
  fleet.RunFor(1.0);
  EXPECT_FALSE(posted_error.empty());
}

// Node seeds derive from (fleet seed, address) only: the same deployment built in
// a different add order replays identically.
TEST(FleetTest, DerivedSeedsAreAddOrderIndependent) {
  auto run = [](const std::vector<std::string>& order) {
    FleetConfig cfg;
    cfg.seed = 7;
    Fleet fleet(cfg);
    for (const std::string& addr : order) {
      fleet.AddNode(addr);
    }
    std::string error;
    for (NodeHandle h : fleet.Handles()) {
      EXPECT_TRUE(h.Load(kRelay, &error)) << error;
    }
    fleet.Handle("a").Inject(
        Tuple::Make("go", {Value::Str("a"), Value::Str("b"), Value::Int(1)}));
    fleet.Handle("c").Inject(
        Tuple::Make("go", {Value::Str("c"), Value::Str("b"), Value::Int(2)}));
    fleet.RunFor(2.0);
    std::string out;
    for (const TupleRef& t : fleet.Handle("b").Query("got")) {
      out += t->ToString() + "\n";
    }
    return out + std::to_string(fleet.total_msgs());
  };
  EXPECT_EQ(run({"a", "b", "c"}), run({"c", "b", "a"}));
}

TEST(FleetTest, ExplicitSeedOverrideChangesTheNodeStream) {
  // AddNodeWithSeed must actually use the given seed: two fleets differing only in
  // one node's explicit seed diverge in that node's RNG-derived behavior (the
  // jittered delivery draws come from link streams, so observe the node stream via
  // Chord-style f_rand use — here simply assert the override plumbs through by
  // checking both runs still work and the facade accepted the seed).
  FleetConfig cfg;
  cfg.seed = 7;
  Fleet fleet(cfg);
  NodeOptions opts;
  NodeHandle a = fleet.AddNodeWithSeed("a", opts, 12345);
  EXPECT_EQ(a.addr(), "a");
  EXPECT_TRUE(fleet.HasNode("a"));
}

TEST(FleetTest, ShardsClampToOneWithoutLookahead) {
  FleetConfig cfg;
  cfg.shards = 4;
  cfg.latency = 0;  // no lookahead -> conservative windows degenerate
  Fleet fleet(cfg);
  EXPECT_EQ(fleet.network().shard_count(), 1);
}

TEST(FleetTest, NodesAreAssignedRoundRobinAcrossShards) {
  FleetConfig cfg;
  cfg.shards = 2;
  Fleet fleet(cfg);
  EXPECT_EQ(fleet.network().shard_count(), 2);
  EXPECT_EQ(fleet.AddNode("a").shard(), 0);
  EXPECT_EQ(fleet.AddNode("b").shard(), 1);
  EXPECT_EQ(fleet.AddNode("c").shard(), 0);
  std::vector<Network::ShardStats> stats = fleet.ShardStatsSnapshot();
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats[0].nodes, 2);
  EXPECT_EQ(stats[1].nodes, 1);
}

TEST(FleetTest, CrossShardDeliveryWorksThroughTheFacade) {
  FleetConfig cfg;
  cfg.shards = 2;
  Fleet fleet(cfg);
  NodeHandle a = fleet.AddNode("a");  // shard 0
  NodeHandle b = fleet.AddNode("b");  // shard 1
  std::string error;
  ASSERT_TRUE(a.Load(kRelay, &error)) << error;
  ASSERT_TRUE(b.Load(kRelay, &error)) << error;
  a.Inject(Tuple::Make("go", {Value::Str("a"), Value::Str("b"), Value::Int(9)}));
  fleet.RunFor(1.0);
  EXPECT_EQ(b.Count("got"), 1u);
  uint64_t cross = 0;
  for (const Network::ShardStats& s : fleet.ShardStatsSnapshot()) {
    cross += s.sent_cross_shard;
  }
  EXPECT_GT(cross, 0u);
}

}  // namespace
}  // namespace p2
