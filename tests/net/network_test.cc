// Simulated-network transport tests: FIFO channels, latency bounds, loss accounting,
// and fleet statistics.

#include <gtest/gtest.h>

#include "src/net/network.h"

namespace p2 {
namespace {

NodeOptions Quiet() {
  NodeOptions opts;
  opts.introspection = false;
  return opts;
}

TEST(NetworkTest, ChannelsAreFifoDespiteJitter) {
  NetworkConfig cfg;
  cfg.latency = 0.01;
  cfg.jitter = 0.05;  // jitter larger than the base latency: reordering would be easy
  Network net(cfg);
  Node* a = net.AddNode("a", Quiet());
  Node* b = net.AddNode("b", Quiet());
  std::string error;
  ASSERT_TRUE(a->LoadProgram("r1 seq@Other(NAddr, X) :- go@NAddr(Other, X).", &error));
  std::vector<int64_t> arrivals;
  b->SubscribeEvent("seq", [&](const TupleRef& t) {
    arrivals.push_back(t->field(2).AsInt());
  });
  for (int i = 0; i < 50; ++i) {
    a->InjectEvent(
        Tuple::Make("go", {Value::Str("a"), Value::Str("b"), Value::Int(i)}));
  }
  net.RunFor(2.0);
  ASSERT_EQ(arrivals.size(), 50u);
  for (size_t i = 0; i < arrivals.size(); ++i) {
    EXPECT_EQ(arrivals[i], static_cast<int64_t>(i)) << "reordered at " << i;
  }
}

TEST(NetworkTest, DeliveryRespectsLatencyBounds) {
  NetworkConfig cfg;
  cfg.latency = 0.5;
  cfg.jitter = 0.25;
  Network net(cfg);
  Node* a = net.AddNode("a", Quiet());
  Node* b = net.AddNode("b", Quiet());
  std::string error;
  ASSERT_TRUE(a->LoadProgram("r1 hi@Other(NAddr) :- go@NAddr(Other).", &error));
  double arrived_at = -1;
  b->SubscribeEvent("hi", [&](const TupleRef&) { arrived_at = net.Now(); });
  a->InjectEvent(Tuple::Make("go", {Value::Str("a"), Value::Str("b")}));
  net.RunFor(2.0);
  ASSERT_GE(arrived_at, 0.0);
  EXPECT_GE(arrived_at, 0.5);
  EXPECT_LE(arrived_at, 0.76);
}

TEST(NetworkTest, LossIsCountedAndBounded) {
  NetworkConfig cfg;
  cfg.latency = 0.01;
  cfg.loss_rate = 0.5;
  cfg.seed = 7;
  Network net(cfg);
  Node* a = net.AddNode("a", Quiet());
  Node* b = net.AddNode("b", Quiet());
  std::string error;
  ASSERT_TRUE(a->LoadProgram("r1 hi@Other(NAddr, X) :- go@NAddr(Other, X).", &error));
  int arrived = 0;
  b->SubscribeEvent("hi", [&](const TupleRef&) { ++arrived; });
  const int kSent = 200;
  for (int i = 0; i < kSent; ++i) {
    a->InjectEvent(
        Tuple::Make("go", {Value::Str("a"), Value::Str("b"), Value::Int(i)}));
  }
  net.RunFor(3.0);
  EXPECT_EQ(net.total_msgs(), static_cast<uint64_t>(kSent));
  EXPECT_EQ(net.dropped_msgs() + static_cast<uint64_t>(arrived),
            static_cast<uint64_t>(kSent));
  // A fair coin: between 25% and 75% delivered with overwhelming probability.
  EXPECT_GT(arrived, kSent / 4);
  EXPECT_LT(arrived, 3 * kSent / 4);
}

TEST(NetworkTest, UnknownDestinationCountsAsDropped) {
  Network net;
  Node* a = net.AddNode("a", Quiet());
  std::string error;
  ASSERT_TRUE(a->LoadProgram("r1 hi@Other(NAddr) :- go@NAddr(Other).", &error));
  a->InjectEvent(Tuple::Make("go", {Value::Str("a"), Value::Str("nowhere")}));
  net.RunFor(1.0);
  EXPECT_EQ(net.dropped_msgs(), 1u);
  EXPECT_EQ(a->stats().msgs_sent, 1u);  // the sender still paid for it
  EXPECT_GT(a->stats().bytes_sent, 0u);
}

TEST(NetworkTest, SelfAddressedTuplesNeverTouchTheWire) {
  Network net;
  Node* a = net.AddNode("a", Quiet());
  std::string error;
  ASSERT_TRUE(a->LoadProgram("r1 echo@NAddr(X) :- go@NAddr(X).", &error));
  int echoes = 0;
  a->SubscribeEvent("echo", [&](const TupleRef&) { ++echoes; });
  a->InjectEvent(Tuple::Make("go", {Value::Str("a"), Value::Int(1)}));
  net.RunFor(1.0);
  EXPECT_EQ(echoes, 1);
  EXPECT_EQ(net.total_msgs(), 0u);
  EXPECT_EQ(a->stats().msgs_sent, 0u);
}

TEST(NetworkTest, SumStatsAndAllNodes) {
  Network net;
  net.AddNode("a", Quiet());
  net.AddNode("c", Quiet());
  net.AddNode("b", Quiet());
  std::vector<Node*> nodes = net.AllNodes();
  ASSERT_EQ(nodes.size(), 3u);
  EXPECT_EQ(nodes[0]->addr(), "a");  // address order
  EXPECT_EQ(nodes[1]->addr(), "b");
  EXPECT_EQ(nodes[2]->addr(), "c");
  nodes[0]->stats().dead_letters = 2;
  nodes[2]->stats().dead_letters = 3;
  EXPECT_EQ(net.SumStats(&NodeStats::dead_letters), 5u);
}

TEST(NetworkTest, DuplicateAddNodeReturnsExisting) {
  Network net;
  Node* a1 = net.AddNode("a", Quiet());
  Node* a2 = net.AddNode("a", Quiet());
  EXPECT_EQ(a1, a2);
}

TEST(NetworkTest, DeterministicAcrossRuns) {
  // Identical seeds and scripts must give identical message counts and final state.
  auto run_once = [](uint64_t* msgs, uint64_t* bytes) {
    NetworkConfig cfg;
    cfg.seed = 99;
    cfg.jitter = 0.02;
    cfg.loss_rate = 0.1;
    Network net(cfg);
    NodeOptions opts;
    opts.introspection = false;
    opts.seed = 5;
    Node* a = net.AddNode("a", opts);
    Node* b = net.AddNode("b", opts);
    std::string error;
    ASSERT_TRUE(a->LoadProgram(
        "r1 ping@Other(NAddr, E) :- periodic@NAddr(E, 1), peer@NAddr(Other).\n"
        "materialize(peer, infinity, 1, keys(1)).",
        &error));
    ASSERT_TRUE(b->LoadProgram("r2 pong@Other(NAddr) :- ping@NAddr(Other, E).", &error));
    a->InjectEvent(Tuple::Make("peer", {Value::Str("a"), Value::Str("b")}));
    net.RunFor(30);
    *msgs = net.total_msgs();
    *bytes = net.total_bytes();
  };
  uint64_t m1 = 0;
  uint64_t b1 = 0;
  uint64_t m2 = 0;
  uint64_t b2 = 0;
  run_once(&m1, &b1);
  run_once(&m2, &b2);
  EXPECT_EQ(m1, m2);
  EXPECT_EQ(b1, b2);
  EXPECT_GT(m1, 0u);
}

}  // namespace
}  // namespace p2
