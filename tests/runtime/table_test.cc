#include "src/runtime/table.h"

#include <gtest/gtest.h>

namespace p2 {
namespace {

TableSpec Spec(const std::string& name, double lifetime, size_t max_size,
               std::vector<size_t> keys) {
  TableSpec spec;
  spec.name = name;
  spec.lifetime_secs = lifetime;
  spec.max_size = max_size;
  spec.key_fields = std::move(keys);
  return spec;
}

TupleRef Row(const std::string& loc, int64_t k, int64_t v) {
  return Tuple::Make("t", {Value::Str(loc), Value::Int(k), Value::Int(v)});
}

TEST(TableTest, InsertNewReplacedRefreshed) {
  Table table(Spec("t", 100, 10, {0, 1}));
  EXPECT_EQ(table.Insert(Row("n", 1, 10), 0), InsertOutcome::kNew);
  EXPECT_EQ(table.Insert(Row("n", 1, 10), 1), InsertOutcome::kRefreshed);
  EXPECT_EQ(table.Insert(Row("n", 1, 20), 2), InsertOutcome::kReplaced);
  EXPECT_EQ(table.Insert(Row("n", 2, 10), 3), InsertOutcome::kNew);
  EXPECT_EQ(table.Size(3), 2u);
}

TEST(TableTest, RefreshExtendsLifetime) {
  Table table(Spec("t", 10, 10, {0, 1}));
  table.Insert(Row("n", 1, 10), 0);
  table.Insert(Row("n", 1, 10), 8);  // refresh at t=8 -> expires at 18
  EXPECT_EQ(table.Size(12), 1u);
  EXPECT_EQ(table.Size(18), 0u);
}

TEST(TableTest, ExpiryRemovesStaleRows) {
  Table table(Spec("t", 10, 10, {0, 1}));
  table.Insert(Row("n", 1, 10), 0);
  table.Insert(Row("n", 2, 10), 5);
  EXPECT_EQ(table.Size(9.5), 2u);
  EXPECT_EQ(table.Size(10), 1u);  // first row expires at exactly t=10
  EXPECT_EQ(table.Size(15), 0u);
}

TEST(TableTest, SizeBoundEvictsOldest) {
  Table table(Spec("t", 100, 3, {0, 1}));
  for (int i = 0; i < 5; ++i) {
    table.Insert(Row("n", i, i), i);
  }
  std::vector<TupleRef> rows = table.Scan(5);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0]->field(1), Value::Int(2));  // 0 and 1 evicted
  EXPECT_EQ(rows[2]->field(1), Value::Int(4));
}

TEST(TableTest, SizeBoundEvictsNextToExpireSoRefreshedRowsSurvive) {
  Table table(Spec("t", 10, 2, {0, 1}));
  table.Insert(Row("n", 1, 1), 0);  // expires at 10
  table.Insert(Row("n", 2, 1), 5);  // expires at 15
  table.Insert(Row("n", 1, 1), 8);  // refresh: now expires at 18
  table.Insert(Row("n", 3, 1), 9);  // over capacity: (n,2) is closest to expiry
  std::vector<TupleRef> rows = table.Scan(9);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0]->field(1), Value::Int(1));
  EXPECT_EQ(rows[1]->field(1), Value::Int(3));
}

TEST(TableTest, WholeTupleKeyWhenNoKeysDeclared) {
  Table table(Spec("t", 100, 10, {}));
  table.Insert(Row("n", 1, 10), 0);
  table.Insert(Row("n", 1, 20), 0);  // different contents: distinct row
  EXPECT_EQ(table.Size(0), 2u);
  EXPECT_EQ(table.Insert(Row("n", 1, 20), 1), InsertOutcome::kRefreshed);
}

TEST(TableTest, DeleteMatchingWithWildcards) {
  Table table(Spec("t", 100, 10, {0, 1}));
  table.Insert(Row("n", 1, 10), 0);
  table.Insert(Row("n", 2, 10), 0);
  table.Insert(Row("n", 3, 30), 0);
  // Delete all rows whose third field == 10, wildcard on the second.
  size_t deleted = table.DeleteMatching(
      {Value::Str("n"), Value::Null(), Value::Int(10)}, {true, false, true}, 1);
  EXPECT_EQ(deleted, 2u);
  EXPECT_EQ(table.Size(1), 1u);
}

TEST(TableTest, ListenersObserveChanges) {
  Table table(Spec("t", 10, 2, {0, 1}));
  std::vector<TableChange> changes;
  table.AddListener([&](TableChange c, const TupleRef&) { changes.push_back(c); });
  table.Insert(Row("n", 1, 1), 0);   // kInsert
  table.Insert(Row("n", 1, 2), 0);   // kInsert (replace)
  table.Insert(Row("n", 1, 2), 0);   // refresh: no notification
  table.Insert(Row("n", 2, 1), 0);   // kInsert
  table.Insert(Row("n", 3, 1), 0);   // kEvict (row 1) + kInsert
  table.DeleteMatching({Value::Str("n"), Value::Int(2)}, {true, true}, 1);  // kDelete
  table.ExpireStale(100);            // kExpire for remaining row
  ASSERT_EQ(changes.size(), 7u);
  EXPECT_EQ(changes[0], TableChange::kInsert);
  EXPECT_EQ(changes[1], TableChange::kInsert);
  EXPECT_EQ(changes[2], TableChange::kInsert);
  EXPECT_EQ(changes[3], TableChange::kEvict);
  EXPECT_EQ(changes[4], TableChange::kInsert);
  EXPECT_EQ(changes[5], TableChange::kDelete);
  EXPECT_EQ(changes[6], TableChange::kExpire);
}

TEST(TableTest, ScanReturnsInsertionOrder) {
  Table table(Spec("t", 100, 10, {0, 1}));
  table.Insert(Row("n", 3, 0), 0);
  table.Insert(Row("n", 1, 0), 0);
  table.Insert(Row("n", 2, 0), 0);
  std::vector<TupleRef> rows = table.Scan(0);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0]->field(1), Value::Int(3));
  EXPECT_EQ(rows[1]->field(1), Value::Int(1));
  EXPECT_EQ(rows[2]->field(1), Value::Int(2));
}

TEST(TableTest, ByteSizeTracksContents) {
  Table table(Spec("t", 100, 10, {0, 1}));
  EXPECT_EQ(table.ByteSize(), 0u);
  table.Insert(Row("n", 1, 1), 0);
  EXPECT_GT(table.ByteSize(), 0u);
}

TEST(TableTest, FindByKeyProbesAndRespectsExpiry) {
  Table table(Spec("t", 5, 10, {0, 1}));
  table.Insert(Row("n", 1, 10), 0);
  table.Insert(Row("n", 2, 20), 0);
  TupleRef hit = table.FindByKey({Value::Str("n"), Value::Int(2)}, 1);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->field(2), Value::Int(20));
  EXPECT_EQ(table.FindByKey({Value::Str("n"), Value::Int(3)}, 1), nullptr);
  // Expired rows are not found.
  EXPECT_EQ(table.FindByKey({Value::Str("n"), Value::Int(2)}, 6), nullptr);
}

TEST(TableTest, FindByKeyMatchesCrossKindNumerics) {
  // Joins evaluate key expressions that may yield Int where the row holds Id; the
  // key hash/equality must treat them alike (as Value equality does).
  Table table(Spec("t", 100, 10, {0, 1}));
  table.Insert(Tuple::Make("t", {Value::Str("n"), Value::Id(7), Value::Int(1)}), 0);
  EXPECT_NE(table.FindByKey({Value::Str("n"), Value::Int(7)}, 1), nullptr);
}

TEST(TableTest, ExpiryFastPathSkipsScans) {
  // min-expiry fast path: rows with infinite lifetime never trigger expiry work, and
  // a refresh that extends a row's life is honored even though the cached minimum is
  // stale (one wasted scan, never a wrong expiry).
  Table inf(Spec("t", std::numeric_limits<double>::infinity(), 10, {0, 1}));
  inf.Insert(Row("n", 1, 1), 0);
  EXPECT_EQ(inf.ExpireStale(1e12), 0u);
  Table ttl(Spec("t", 10, 10, {0, 1}));
  ttl.Insert(Row("n", 1, 1), 0);   // expires at 10 (cached minimum)
  ttl.Insert(Row("n", 1, 1), 8);   // refresh: true expiry now 18
  EXPECT_EQ(ttl.ExpireStale(12), 0u);  // stale minimum passed, row must survive
  EXPECT_EQ(ttl.Size(12), 1u);
  EXPECT_EQ(ttl.Size(18), 0u);
}

// Property sweep: after arbitrary insert sequences the table never exceeds its bound
// and the index stays consistent with the row list.
class TableBoundProperty : public ::testing::TestWithParam<size_t> {};

TEST_P(TableBoundProperty, NeverExceedsBound) {
  size_t bound = GetParam();
  Table table(Spec("t", 50, bound, {1}));
  for (int i = 0; i < 200; ++i) {
    table.Insert(Row("n", i % 37, i), i * 0.5);
    EXPECT_LE(table.Size(i * 0.5), bound);
  }
  // All remaining rows are distinct under the key.
  std::vector<TupleRef> rows = table.Scan(100);
  for (size_t i = 0; i < rows.size(); ++i) {
    for (size_t j = i + 1; j < rows.size(); ++j) {
      EXPECT_FALSE(rows[i]->field(1) == rows[j]->field(1));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Bounds, TableBoundProperty, ::testing::Values(1, 3, 10, 36, 100));

}  // namespace
}  // namespace p2
