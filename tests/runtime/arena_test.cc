// Arena lifetime-safety tests (docs/SCALING.md "Memory model & hot-path
// batching"). The tuple arena is a recycler, not an owner: payload lifetime is
// carried entirely by shared_ptr refcounts, and these tests pin the invariants
// that make that safe — recycling is exact (same size class round-trips with no
// fresh heap traffic), toggling recycling mid-process never mismatches an
// allocation with its deallocation, rows evicted or deleted mid-iteration stay
// readable through the IterGuard snapshot, tracer/forensics payloads survive
// arena reuse after their source row is gone, and crash/recover cycles neither
// leak tuples nor alias recycled storage. The suite runs under the ASan+UBSan
// CI job, which turns any violation into a hard failure.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/net/network.h"
#include "src/runtime/arena.h"
#include "src/runtime/table.h"
#include "src/runtime/tuple.h"
#include "src/runtime/value.h"

namespace p2 {
namespace {

// Restores the process-global recycling toggle no matter how a test exits.
struct ArenaToggleGuard {
  bool saved = TupleArena::Enabled();
  ~ArenaToggleGuard() { TupleArena::SetEnabled(saved); }
};

TEST(TupleArenaTest, RecyclesSameSizeClassWithoutFreshHeapTraffic) {
  ArenaToggleGuard guard;
  TupleArena::SetEnabled(true);
  void* p = TupleArena::Allocate(100);
  ASSERT_NE(p, nullptr);
  TupleArena::Deallocate(p, 100);
  uint64_t fresh_before = TupleArena::FreshBytes();
  uint64_t recycled_before = TupleArena::RecycledBlocks();
  // Any size in the same 64-byte class must pop the block just pushed.
  void* q = TupleArena::Allocate(97);
  EXPECT_EQ(TupleArena::FreshBytes(), fresh_before);
  EXPECT_EQ(TupleArena::RecycledBlocks(), recycled_before + 1);
  TupleArena::Deallocate(q, 97);
}

TEST(TupleArenaTest, FreshBytesCountsHeapTrafficInBothModes) {
  ArenaToggleGuard guard;
  // Disabled: every allocation is fresh, nothing is recycled.
  TupleArena::SetEnabled(false);
  uint64_t fresh0 = TupleArena::FreshBytes();
  uint64_t recycled0 = TupleArena::RecycledBlocks();
  void* a = TupleArena::Allocate(32);
  TupleArena::Deallocate(a, 32);
  void* b = TupleArena::Allocate(32);
  TupleArena::Deallocate(b, 32);
  EXPECT_GE(TupleArena::FreshBytes() - fresh0, 2 * 32u);
  EXPECT_EQ(TupleArena::RecycledBlocks(), recycled0);
  // Enabled: the first allocation of a cold class is fresh, repeats are not.
  TupleArena::SetEnabled(true);
  void* c = TupleArena::Allocate(32);
  TupleArena::Deallocate(c, 32);
  uint64_t fresh1 = TupleArena::FreshBytes();
  void* d = TupleArena::Allocate(32);
  TupleArena::Deallocate(d, 32);
  EXPECT_EQ(TupleArena::FreshBytes(), fresh1);
}

TEST(TupleArenaTest, ToggleMidProcessNeverMismatchesBlocks) {
  ArenaToggleGuard guard;
  // Allocate recycled, free with recycling off: the block must go back to the
  // heap with the identical (class-rounded) size — ASan would flag a mismatch.
  TupleArena::SetEnabled(true);
  void* a = TupleArena::Allocate(200);
  TupleArena::SetEnabled(false);
  TupleArena::Deallocate(a, 200);
  // Allocate fresh, free with recycling on: the block enters the free list and
  // must be reusable for any size in its class.
  void* b = TupleArena::Allocate(200);
  TupleArena::SetEnabled(true);
  TupleArena::Deallocate(b, 200);
  void* c = TupleArena::Allocate(129);  // same 64-byte class as 200
  ASSERT_NE(c, nullptr);
  TupleArena::Deallocate(c, 129);
}

TEST(TupleArenaTest, OversizeAllocationsBypassTheFreeLists) {
  ArenaToggleGuard guard;
  TupleArena::SetEnabled(true);
  uint64_t recycled0 = TupleArena::RecycledBlocks();
  uint64_t fresh0 = TupleArena::FreshBytes();
  void* big = TupleArena::Allocate(1 << 16);
  TupleArena::Deallocate(big, 1 << 16);
  void* big2 = TupleArena::Allocate(1 << 16);
  TupleArena::Deallocate(big2, 1 << 16);
  // Both allocations hit the heap; neither came from a free list.
  EXPECT_EQ(TupleArena::RecycledBlocks(), recycled0);
  EXPECT_GE(TupleArena::FreshBytes() - fresh0, 2u << 16);
}

TEST(TupleArenaTest, SteadyStateTupleChurnIsFreshAllocationFree) {
  ArenaToggleGuard guard;
  TupleArena::SetEnabled(true);
  auto make = [] {
    return Tuple::Make("ev", {Value::Str("n1"), Value::Int(7), Value::Int(9)});
  };
  // Warm the free lists: the first tuple populates every size class this shape
  // touches (field vector, shared tuple block).
  { TupleRef warm = make(); }
  uint64_t fresh0 = TupleArena::FreshBytes();
  for (int i = 0; i < 100; ++i) {
    TupleRef t = make();
    ASSERT_EQ(t->arity(), 3u);
  }
  // Every iteration frees exactly what it allocates, so the recycler satisfies
  // the whole loop: zero fresh heap bytes.
  EXPECT_EQ(TupleArena::FreshBytes(), fresh0);
}

// Rows evicted by the size bound stay alive for any holder of their TupleRef,
// even while the arena reuses the table's internal storage for new rows.
TEST(ArenaLifetimeTest, EvictedRowSurvivesArenaReuse) {
  ArenaToggleGuard guard;
  TupleArena::SetEnabled(true);
  TableSpec spec;
  spec.name = "small";
  spec.max_size = 2;
  spec.key_fields = {0};
  Table table(spec);
  table.Insert(Tuple::Make("small", {Value::Int(1), Value::Str("first")}), 0.0);
  TupleRef held = table.Scan(0.0)[0];
  // Evict the held row, then churn the arena hard enough to reuse its classes.
  for (int i = 2; i < 50; ++i) {
    table.Insert(
        Tuple::Make("small", {Value::Int(i), Value::Str("filler-" +
                                                        std::to_string(i))}),
        0.0);
  }
  EXPECT_EQ(table.Size(0.0), 2u);
  ASSERT_EQ(held->arity(), 2u);
  EXPECT_EQ(held->field(0), Value::Int(1));
  EXPECT_EQ(held->field(1), Value::Str("first"));
}

// Deleting and replacing rows from inside an iteration defers erasure
// (IterGuard): the walk still sees a consistent snapshot and every yielded
// TupleRef stays readable for the whole walk.
TEST(ArenaLifetimeTest, DeleteAndReplaceMidIterationKeepRowsReadable) {
  ArenaToggleGuard guard;
  TupleArena::SetEnabled(true);
  TableSpec spec;
  spec.name = "t";
  spec.key_fields = {0};
  Table table(spec);
  for (int i = 0; i < 8; ++i) {
    table.Insert(Tuple::Make("t", {Value::Int(i), Value::Str("payload")}), 0.0);
  }
  std::vector<TupleRef> seen;
  size_t yielded = table.ForEachLive(0.0, [&](const TupleRef& t) {
    seen.push_back(t);
    // Delete the row we are standing on and replace another one mid-walk.
    ValueList pattern = {t->field(0)};
    std::vector<bool> bound = {true};
    table.DeleteMatching(pattern, bound, 0.0);
    table.Insert(Tuple::Make("t", {Value::Int(3), Value::Str("replaced")}), 0.0);
    return true;
  });
  EXPECT_EQ(yielded, 8u);
  for (size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i]->field(0), Value::Int(static_cast<int64_t>(i)));
    // Key 3 was replaced before the walk reached its slot, so the walk yields
    // the replacement there; every yielded payload must still read cleanly
    // even though the arena has recycled the deleted rows' storage.
    EXPECT_EQ(seen[i]->field(1),
              i == 3 ? Value::Str("replaced") : Value::Str("payload"));
  }
}

// Tracer provenance (the tupleTable memo store) holds payload references of its
// own: evicting every source row and churning the arena must leave the memoized
// tuples intact and readable.
TEST(ArenaLifetimeTest, TracerPayloadsSurviveSourceEviction) {
  ArenaToggleGuard guard;
  NodeOptions opts;
  opts.tracing = true;
  opts.introspection = false;
  Network net(NetworkConfig{0.01, 0.0, 0.0, 42});
  Node* node = net.AddNode("n1", opts);
  std::string error;
  ASSERT_TRUE(node->LoadProgram(
      "materialize(ev, infinity, 2, keys(1,2)).\n"
      "r1 out@N(X) :- ev@N(X).",
      &error))
      << error;
  for (int i = 0; i < 12; ++i) {
    node->InjectEvent(Tuple::Make("ev", {Value::Str("n1"), Value::Int(i)}));
    net.RunFor(0.05);
  }
  // The ev table kept only the last 2 rows; the memo store still resolves the
  // cause of every ruleExec record, including those whose source was evicted.
  size_t resolved = 0;
  for (const TupleRef& rec : node->TableContents("ruleExec")) {
    TupleRef cause = node->store().Lookup(rec->field(2).AsId());
    if (cause != nullptr) {
      ASSERT_GE(cause->arity(), 2u);
      EXPECT_EQ(cause->name(), "ev");
      EXPECT_EQ(cause->field(0), Value::Str("n1"));
      ++resolved;
    }
  }
  EXPECT_GT(resolved, 0u);
}

// Crash drops the node's queues and Recover restarts it: repeated cycles must
// not leak tuples (the refcounts release everything the queues held) and the
// recovered node must keep deriving correctly over recycled storage.
TEST(ArenaLifetimeTest, CrashRecoverCyclesNeitherLeakNorAlias) {
  ArenaToggleGuard guard;
  NodeOptions opts;
  opts.introspection = false;
  Network net(NetworkConfig{0.01, 0.0, 0.0, 7});
  Node* node = net.AddNode("n1", opts);
  std::string error;
  ASSERT_TRUE(node->LoadProgram(
      "materialize(kv, infinity, 100, keys(1,2)).\n"
      "r1 kv@N(K, K) :- ev@N(K).",
      &error))
      << error;
  uint64_t live_after_first_cycle = 0;
  for (int cycle = 0; cycle < 3; ++cycle) {
    for (int i = 0; i < 20; ++i) {
      node->InjectEvent(Tuple::Make("ev", {Value::Str("n1"), Value::Int(i)}));
    }
    net.RunFor(0.2);
    node->Crash();
    net.RunFor(0.2);
    node->Recover();
    net.RunFor(0.2);
    if (cycle == 0) {
      live_after_first_cycle = Tuple::LiveCount();
    }
  }
  // Steady state: later cycles allocate only what they release, so the live
  // tuple population cannot grow cycle over cycle.
  EXPECT_LE(Tuple::LiveCount(), live_after_first_cycle);
  // The recovered node still derives over (recycled) arena storage.
  node->InjectEvent(Tuple::Make("ev", {Value::Str("n1"), Value::Int(99)}));
  net.RunFor(0.2);
  bool found = false;
  for (const TupleRef& t : node->TableContents("kv")) {
    if (t->field(1) == Value::Int(99)) {
      found = true;
      EXPECT_EQ(t->field(2), Value::Int(99));
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace p2
