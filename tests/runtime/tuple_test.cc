#include "src/runtime/tuple.h"

#include <gtest/gtest.h>

namespace p2 {
namespace {

TEST(TupleTest, BasicAccessors) {
  TupleRef t = Tuple::Make("link", {Value::Str("n1"), Value::Str("n2"), Value::Int(3)});
  EXPECT_EQ(t->name(), "link");
  EXPECT_EQ(t->arity(), 3u);
  EXPECT_EQ(t->field(2), Value::Int(3));
  EXPECT_EQ(t->LocationSpecifier(), "n1");
}

TEST(TupleTest, LocationSpecifierRequiresStringFirstField) {
  EXPECT_EQ(Tuple::Make("x", {Value::Int(1)})->LocationSpecifier(), "");
  EXPECT_EQ(Tuple::Make("x", {})->LocationSpecifier(), "");
}

TEST(TupleTest, StructuralEqualityAndHash) {
  TupleRef a = Tuple::Make("p", {Value::Str("n"), Value::Int(1)});
  TupleRef b = Tuple::Make("p", {Value::Str("n"), Value::Int(1)});
  TupleRef c = Tuple::Make("p", {Value::Str("n"), Value::Int(2)});
  TupleRef d = Tuple::Make("q", {Value::Str("n"), Value::Int(1)});
  EXPECT_TRUE(*a == *b);
  EXPECT_EQ(a->Hash(), b->Hash());
  EXPECT_FALSE(*a == *c);
  EXPECT_FALSE(*a == *d);
}

TEST(TupleTest, ToString) {
  TupleRef t = Tuple::Make("succ", {Value::Str("n1"), Value::Id(5), Value::Str("n2")});
  EXPECT_EQ(t->ToString(), "succ(n1, 5, n2)");
}

TEST(TupleTest, LiveAccountingTracksCreationAndDestruction) {
  uint64_t before_count = Tuple::LiveCount();
  uint64_t before_bytes = Tuple::LiveBytes();
  {
    TupleRef t = Tuple::Make("acct", {Value::Str("n"), Value::Str("payload")});
    EXPECT_EQ(Tuple::LiveCount(), before_count + 1);
    EXPECT_GT(Tuple::LiveBytes(), before_bytes);
    EXPECT_GE(t->ByteSize(), sizeof(Tuple));
  }
  EXPECT_EQ(Tuple::LiveCount(), before_count);
  EXPECT_EQ(Tuple::LiveBytes(), before_bytes);
}

}  // namespace
}  // namespace p2
