#include "src/runtime/catalog.h"

#include <gtest/gtest.h>

namespace p2 {
namespace {

TableSpec Spec(const std::string& name) {
  TableSpec spec;
  spec.name = name;
  spec.key_fields = {0};
  return spec;
}

TEST(CatalogTest, CreateGetAndFirstDeclarationWins) {
  Catalog catalog;
  EXPECT_TRUE(catalog.CreateTable(Spec("a")));
  EXPECT_FALSE(catalog.CreateTable(Spec("a")));  // duplicate kept, not replaced
  EXPECT_TRUE(catalog.CreateTable(Spec("b")));
  EXPECT_NE(catalog.Get("a"), nullptr);
  EXPECT_EQ(catalog.Get("missing"), nullptr);
  EXPECT_TRUE(catalog.IsMaterialized("b"));
  EXPECT_FALSE(catalog.IsMaterialized("c"));
}

TEST(CatalogTest, AllTablesPreservesCreationOrder) {
  Catalog catalog;
  catalog.CreateTable(Spec("z"));
  catalog.CreateTable(Spec("a"));
  catalog.CreateTable(Spec("m"));
  std::vector<Table*> tables = catalog.AllTables();
  ASSERT_EQ(tables.size(), 3u);
  EXPECT_EQ(tables[0]->name(), "z");
  EXPECT_EQ(tables[1]->name(), "a");
  EXPECT_EQ(tables[2]->name(), "m");
}

TEST(CatalogTest, TotalsAggregateAcrossTables) {
  Catalog catalog;
  catalog.CreateTable(Spec("a"));
  catalog.CreateTable(Spec("b"));
  catalog.Get("a")->Insert(Tuple::Make("a", {Value::Str("k1")}), 0);
  catalog.Get("a")->Insert(Tuple::Make("a", {Value::Str("k2")}), 0);
  catalog.Get("b")->Insert(Tuple::Make("b", {Value::Str("k1")}), 0);
  EXPECT_EQ(catalog.TotalRows(1), 3u);
  EXPECT_GT(catalog.TotalBytes(), 0u);
}

}  // namespace
}  // namespace p2
