#include "src/runtime/value.h"

#include <gtest/gtest.h>

#include <limits>
#include <tuple>

namespace p2 {
namespace {

TEST(ValueTest, KindsAndAccessors) {
  EXPECT_EQ(Value::Null().kind(), Value::Kind::kNull);
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value::Bool(true).AsBool(), true);
  EXPECT_EQ(Value::Int(-5).AsInt(), -5);
  EXPECT_EQ(Value::Id(42).AsId(), 42u);
  EXPECT_DOUBLE_EQ(Value::Double(2.5).AsDouble(), 2.5);
  EXPECT_EQ(Value::Str("hi").AsString(), "hi");
  EXPECT_EQ(Value::List({Value::Int(1)}).AsList().size(), 1u);
}

TEST(ValueTest, NumericEqualityAcrossKinds) {
  EXPECT_EQ(Value::Int(3), Value::Id(3));
  EXPECT_EQ(Value::Int(3), Value::Double(3.0));
  EXPECT_EQ(Value::Id(3), Value::Double(3.0));
  EXPECT_NE(Value::Int(3), Value::Int(4));
  EXPECT_NE(Value::Int(3), Value::Str("3"));
}

TEST(ValueTest, EqualValuesHashEqual) {
  EXPECT_EQ(Value::Int(3).Hash(), Value::Id(3).Hash());
  EXPECT_EQ(Value::Int(3).Hash(), Value::Double(3.0).Hash());
  EXPECT_EQ(Value::Int(-3).Hash(), Value::Double(-3.0).Hash());
  EXPECT_EQ(Value::Str("x").Hash(), Value::Str("x").Hash());
}

TEST(ValueTest, CompareOrdersNumerics) {
  EXPECT_LT(Value::Int(1).Compare(Value::Int(2)), 0);
  EXPECT_GT(Value::Id(~0ULL).Compare(Value::Int(5)), 0);
  // A negative Int is below any Id.
  EXPECT_LT(Value::Int(-1).Compare(Value::Id(0)), 0);
}

TEST(ValueTest, IdArithmeticIsModular) {
  Value max = Value::Id(~0ULL);
  EXPECT_EQ(Value::Add(max, Value::Int(1)).AsId(), 0u);
  EXPECT_EQ(Value::Sub(Value::Id(0), Value::Int(1)).AsId(), ~0ULL);
}

TEST(ValueTest, StringConcatenation) {
  EXPECT_EQ(Value::Add(Value::Str("a"), Value::Int(3)).AsString(), "a3");
  EXPECT_EQ(Value::Add(Value::Int(3), Value::Str("a")).AsString(), "3a");
}

TEST(ValueTest, ListConcatenation) {
  Value a = Value::List({Value::Int(1)});
  Value b = Value::List({Value::Int(2)});
  Value ab = Value::Add(a, b);
  ASSERT_EQ(ab.AsList().size(), 2u);
  EXPECT_EQ(ab.AsList()[1], Value::Int(2));
}

TEST(ValueTest, DivisionSemantics) {
  // Int/Int is a ratio (the paper's consistency metric divides two counts).
  EXPECT_DOUBLE_EQ(Value::Div(Value::Int(1), Value::Int(2)).AsDouble(), 0.5);
  EXPECT_TRUE(Value::Div(Value::Int(1), Value::Int(0)).is_null());
  EXPECT_EQ(Value::Div(Value::Id(7), Value::Id(2)).AsId(), 3u);
  EXPECT_TRUE(Value::Mod(Value::Int(5), Value::Int(0)).is_null());
  EXPECT_EQ(Value::Mod(Value::Int(7), Value::Int(3)).AsInt(), 1);
}

TEST(ValueTest, Truthiness) {
  EXPECT_FALSE(Value::Null().Truthy());
  EXPECT_FALSE(Value::Bool(false).Truthy());
  EXPECT_FALSE(Value::Int(0).Truthy());
  EXPECT_FALSE(Value::Str("").Truthy());
  EXPECT_TRUE(Value::Str("-").Truthy());
  EXPECT_TRUE(Value::Double(0.1).Truthy());
}

// --- ring interval membership (the `in` operator) ---

struct IntervalCase {
  uint64_t x, a, b;
  bool open_left, open_right;
  bool expect;
};

class IntervalTest : public ::testing::TestWithParam<IntervalCase> {};

TEST_P(IntervalTest, Membership) {
  const IntervalCase& c = GetParam();
  EXPECT_EQ(Value::InInterval(Value::Id(c.x), Value::Id(c.a), Value::Id(c.b), c.open_left,
                              c.open_right),
            c.expect);
}

INSTANTIATE_TEST_SUITE_P(
    Ring, IntervalTest,
    ::testing::Values(
        // Plain interval, no wrap.
        IntervalCase{5, 1, 10, true, true, true},
        IntervalCase{1, 1, 10, true, true, false},   // open left endpoint
        IntervalCase{1, 1, 10, false, true, true},   // closed left endpoint
        IntervalCase{10, 1, 10, true, true, false},  // open right endpoint
        IntervalCase{10, 1, 10, true, false, true},  // closed right endpoint
        IntervalCase{11, 1, 10, true, false, false},
        // Wrap-around interval (a > b).
        IntervalCase{~0ULL, 100, 5, true, true, true},
        IntervalCase{2, 100, 5, true, true, true},
        IntervalCase{50, 100, 5, true, true, false},
        // Degenerate (a == b): Chord's (n, n] covers the whole ring incl. n.
        IntervalCase{7, 7, 7, true, false, true},
        IntervalCase{123, 7, 7, true, false, true},
        IntervalCase{7, 7, 7, true, true, false},   // fully open excludes the endpoint
        IntervalCase{123, 7, 7, true, true, true}));

TEST(ValueTest, LinearIntervalForInts) {
  // Non-Id numerics use linear (non-wrapping) semantics.
  EXPECT_TRUE(Value::InInterval(Value::Int(5), Value::Int(1), Value::Int(10), true, true));
  EXPECT_FALSE(
      Value::InInterval(Value::Int(0), Value::Int(1), Value::Int(10), true, true));
  EXPECT_FALSE(
      Value::InInterval(Value::Int(11), Value::Int(10), Value::Int(1), true, true));
}

// Property sweep over random operand pairs: algebraic invariants of Value arithmetic
// and comparison that every rule evaluation depends on.
class ValueAlgebraProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ValueAlgebraProperty, Invariants) {
  // Deterministic operand pool derived from the seed.
  uint64_t seed = GetParam();
  auto next = [&seed]() {
    seed += 0x9e3779b97f4a7c15ULL;
    uint64_t z = seed;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    return z ^ (z >> 27);
  };
  std::vector<Value> pool;
  for (int i = 0; i < 8; ++i) {
    uint64_t r = next();
    switch (r % 4) {
      case 0: pool.push_back(Value::Int(static_cast<int64_t>(r >> 1))); break;
      case 1: pool.push_back(Value::Id(r)); break;
      case 2: pool.push_back(Value::Double(static_cast<double>(r % 100000) / 7)); break;
      case 3: pool.push_back(Value::Int(-static_cast<int64_t>(r % 1000))); break;
    }
  }
  for (const Value& a : pool) {
    // Reflexivity and hash consistency.
    EXPECT_EQ(a, a);
    EXPECT_EQ(a.Hash(), a.Hash());
    for (const Value& b : pool) {
      // Commutativity of + and *.
      EXPECT_EQ(Value::Add(a, b), Value::Add(b, a));
      EXPECT_EQ(Value::Mul(a, b), Value::Mul(b, a));
      // Comparison antisymmetry.
      EXPECT_EQ(a.Compare(b), -b.Compare(a));
      // Equality implies equal hashes.
      if (a == b) {
        EXPECT_EQ(a.Hash(), b.Hash());
      }
      // a - b + b == a for same-kind integral operands (no precision loss).
      if (a.kind() == Value::Kind::kId && b.kind() == Value::Kind::kId) {
        EXPECT_EQ(Value::Add(Value::Sub(a, b), b), a);
      }
      // Degenerate closed interval: for linear (non-Id) operands, x in [b, b] iff
      // x == b; on the ring a closed endpoint always admits b itself.
      if (a.kind() != Value::Kind::kId && b.kind() != Value::Kind::kId) {
        EXPECT_EQ(Value::InInterval(a, b, b, false, false), a == b);
      } else {
        EXPECT_TRUE(Value::InInterval(b, b, b, false, false));
      }
    }
  }
  // Ring-interval partition: for random (x, lo, hi) with distinct values, x is in
  // exactly one of (lo, hi] and (hi, lo].
  for (int i = 0; i < 64; ++i) {
    uint64_t x = next();
    uint64_t lo = next();
    uint64_t hi = next();
    if (x == lo || x == hi || lo == hi) {
      continue;
    }
    bool in_first = Value::InInterval(Value::Id(x), Value::Id(lo), Value::Id(hi), true,
                                      false);
    bool in_second = Value::InInterval(Value::Id(x), Value::Id(hi), Value::Id(lo), true,
                                       false);
    EXPECT_NE(in_first, in_second) << x << " " << lo << " " << hi;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ValueAlgebraProperty, ::testing::Values(1, 7, 42, 1234));

TEST(ValueTest, ToStringForms) {
  EXPECT_EQ(Value::Null().ToString(), "null");
  EXPECT_EQ(Value::Int(-2).ToString(), "-2");
  EXPECT_EQ(Value::Str("x").ToString(), "x");
  EXPECT_EQ(Value::List({Value::Int(1), Value::Str("a")}).ToString(), "[1, a]");
}

}  // namespace
}  // namespace p2
