// Secondary-index tests: maintenance across every mutation path, probe-vs-scan
// equivalence under randomized churn, and iteration safety (self-joins, mutation
// from inside a walk).

#include <algorithm>
#include <map>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "src/runtime/table.h"

namespace p2 {
namespace {

TableSpec Spec(const std::string& name, double lifetime, size_t max_size,
               std::vector<size_t> keys) {
  TableSpec spec;
  spec.name = name;
  spec.lifetime_secs = lifetime;
  spec.max_size = max_size;
  spec.key_fields = std::move(keys);
  return spec;
}

TupleRef Row(const std::string& loc, int64_t k, int64_t v) {
  return Tuple::Make("t", {Value::Str(loc), Value::Int(k), Value::Int(v)});
}

// Rows yielded by probing `index_id` with `key`, in insertion order.
std::vector<TupleRef> Probe(Table* table, size_t index_id, const ValueList& key,
                            double now) {
  std::vector<TupleRef> out;
  table->ForEachMatch(index_id, key, now, [&](const TupleRef& t) {
    out.push_back(t);
    return true;
  });
  return out;
}

// Reference result: scan and keep rows whose fields at `positions` equal `key`.
std::vector<TupleRef> ScanFilter(Table* table, const std::vector<size_t>& positions,
                                 const ValueList& key, double now) {
  std::vector<TupleRef> out;
  for (const TupleRef& t : table->Scan(now)) {
    bool match = true;
    for (size_t i = 0; i < positions.size(); ++i) {
      if (positions[i] >= t->arity() || !(t->field(positions[i]) == key[i])) {
        match = false;
        break;
      }
    }
    if (match) {
      out.push_back(t);
    }
  }
  return out;
}

TEST(TableIndexTest, EnsureIndexReusesByPositions) {
  Table table(Spec("t", 100, 100, {0, 1}));
  size_t a = table.EnsureIndex({2});
  size_t b = table.EnsureIndex({2});
  size_t c = table.EnsureIndex({1, 2});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(table.NumIndexes(), 2u);
}

TEST(TableIndexTest, IndexesExistingRowsAndNewInserts) {
  Table table(Spec("t", 100, 100, {0, 1}));
  table.Insert(Row("n", 1, 10), 0);
  table.Insert(Row("n", 2, 10), 0);
  size_t ix = table.EnsureIndex({2});  // built over existing rows
  EXPECT_EQ(Probe(&table, ix, {Value::Int(10)}, 0).size(), 2u);
  table.Insert(Row("n", 3, 10), 0);  // maintained on insert
  table.Insert(Row("n", 4, 99), 0);
  EXPECT_EQ(Probe(&table, ix, {Value::Int(10)}, 0).size(), 3u);
  EXPECT_EQ(Probe(&table, ix, {Value::Int(99)}, 0).size(), 1u);
  EXPECT_TRUE(Probe(&table, ix, {Value::Int(7)}, 0).empty());
}

TEST(TableIndexTest, ReplaceMovesRowBetweenBuckets) {
  Table table(Spec("t", 100, 100, {0, 1}));
  size_t ix = table.EnsureIndex({2});
  table.Insert(Row("n", 1, 10), 0);
  ASSERT_EQ(table.Insert(Row("n", 1, 20), 1), InsertOutcome::kReplaced);
  EXPECT_TRUE(Probe(&table, ix, {Value::Int(10)}, 1).empty());
  ASSERT_EQ(Probe(&table, ix, {Value::Int(20)}, 1).size(), 1u);
}

TEST(TableIndexTest, RefreshKeepsIndexEntry) {
  Table table(Spec("t", 10, 100, {0, 1}));
  size_t ix = table.EnsureIndex({2});
  table.Insert(Row("n", 1, 10), 0);
  ASSERT_EQ(table.Insert(Row("n", 1, 10), 8), InsertOutcome::kRefreshed);
  EXPECT_EQ(Probe(&table, ix, {Value::Int(10)}, 12).size(), 1u);  // alive past t=10
  EXPECT_TRUE(Probe(&table, ix, {Value::Int(10)}, 18).empty());   // expires at 18
}

TEST(TableIndexTest, ExpiryRemovesIndexEntries) {
  Table table(Spec("t", 10, 100, {0, 1}));
  size_t ix = table.EnsureIndex({2});
  table.Insert(Row("n", 1, 10), 0);
  table.Insert(Row("n", 2, 10), 5);
  EXPECT_EQ(Probe(&table, ix, {Value::Int(10)}, 9).size(), 2u);
  EXPECT_EQ(Probe(&table, ix, {Value::Int(10)}, 12).size(), 1u);
  EXPECT_TRUE(Probe(&table, ix, {Value::Int(10)}, 20).empty());
}

TEST(TableIndexTest, DeleteRemovesIndexEntries) {
  Table table(Spec("t", 100, 100, {0, 1}));
  size_t ix = table.EnsureIndex({2});
  table.Insert(Row("n", 1, 10), 0);
  table.Insert(Row("n", 2, 10), 0);
  // Delete rows with field 1 == 1.
  table.DeleteMatching({Value::Null(), Value::Int(1), Value::Null()},
                       {false, true, false}, 1);
  EXPECT_EQ(Probe(&table, ix, {Value::Int(10)}, 1).size(), 1u);
}

TEST(TableIndexTest, EvictionUnderMaxSizeChurnStaysConsistent) {
  Table table(Spec("t", 100, 3, {0, 1}));
  size_t ix = table.EnsureIndex({2});
  for (int i = 0; i < 50; ++i) {
    table.Insert(Row("n", i, i % 5), i);
    // Every live row must be probe-reachable and vice versa, at every step.
    for (int v = 0; v < 5; ++v) {
      ValueList key = {Value::Int(v)};
      EXPECT_EQ(Probe(&table, ix, key, i).size(),
                ScanFilter(&table, {2}, key, i).size())
          << "value " << v << " after insert " << i;
    }
  }
  EXPECT_EQ(table.Size(50), 3u);
}

TEST(TableIndexTest, CrossKindNumericKeysProbeConsistently) {
  // Value::Hash is cross-kind consistent for numerics: a row stored with Id(7)
  // must be probeable with Int(7), matching FindByKey/MatchPredicate semantics.
  Table table(Spec("t", 100, 100, {0, 1}));
  size_t ix = table.EnsureIndex({1});
  table.Insert(Tuple::Make("t", {Value::Str("n"), Value::Id(7), Value::Int(1)}), 0);
  EXPECT_EQ(Probe(&table, ix, {Value::Int(7)}, 0).size(), 1u);
  EXPECT_EQ(Probe(&table, ix, {Value::Id(7)}, 0).size(), 1u);
}

TEST(TableIndexTest, MultiColumnIndexProbesBothPositions) {
  Table table(Spec("t", 100, 100, {0, 1}));
  size_t ix = table.EnsureIndex({1, 2});
  table.Insert(Row("n", 1, 10), 0);
  table.Insert(Row("n", 1, 20), 0);  // replaces (same key {0,1})
  table.Insert(Row("n", 2, 20), 0);
  EXPECT_TRUE(Probe(&table, ix, {Value::Int(1), Value::Int(10)}, 0).empty());
  EXPECT_EQ(Probe(&table, ix, {Value::Int(1), Value::Int(20)}, 0).size(), 1u);
  EXPECT_EQ(Probe(&table, ix, {Value::Int(2), Value::Int(20)}, 0).size(), 1u);
}

TEST(TableIndexTest, PositionBeyondArityIndexesAsNull) {
  Table table(Spec("t", 100, 100, {}));
  size_t ix = table.EnsureIndex({5});
  table.Insert(Row("n", 1, 10), 0);
  EXPECT_EQ(Probe(&table, ix, {Value::Null()}, 0).size(), 1u);
}

TEST(TableIndexTest, IndexStatsTrackProbesAndYield) {
  Table table(Spec("t", 100, 100, {0, 1}));
  size_t ix = table.EnsureIndex({2});
  table.Insert(Row("n", 1, 10), 0);
  table.Insert(Row("n", 2, 10), 0);
  Probe(&table, ix, {Value::Int(10)}, 0);  // 2 rows
  Probe(&table, ix, {Value::Int(99)}, 0);  // 0 rows
  std::vector<Table::IndexStats> stats = table.IndexStatsSnapshot();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].positions, (std::vector<size_t>{2}));
  EXPECT_EQ(stats[0].probes, 2u);
  EXPECT_EQ(stats[0].rows_yielded, 2u);
  EXPECT_EQ(stats[0].entries, 2u);
}

// --- iteration safety ---

TEST(TableIndexTest, NestedSelfJoinIterationIsSafe) {
  Table table(Spec("t", 10, 100, {0, 1}));
  size_t ix = table.EnsureIndex({2});
  for (int i = 0; i < 10; ++i) {
    table.Insert(Row("n", i, i % 2), i * 0.1);
  }
  // The outer walk starts at 10.35 (purging rows 0..3 up front); the nested probes
  // run at 10.75, when rows 4..7 have also gone stale — their purge must be
  // deferred (the outer walk holds iterators) yet they must not be yielded.
  double outer_now = 10.35;
  double inner_now = 10.75;
  size_t outer = 0;
  size_t inner_total = 0;
  table.ForEachLive(outer_now, [&](const TupleRef& t) {
    ++outer;
    inner_total += table.ForEachMatch(ix, {t->field(2)}, inner_now,
                                      [&](const TupleRef&) { return true; });
    return true;
  });
  EXPECT_EQ(outer, 6u);        // rows 4..9 live at 10.35
  EXPECT_EQ(inner_total, 6u);  // at 10.75 only rows 8 (value 0) and 9 (value 1) live
  // After the walk ends, the deferred purge lands on the next access.
  EXPECT_EQ(table.Size(inner_now), 2u);
  EXPECT_EQ(table.counters().expires, 8u);
}

TEST(TableIndexTest, InsertDuringIterationIsNotVisited) {
  Table table(Spec("t", 100, 100, {0, 1}));
  table.Insert(Row("n", 0, 0), 0);
  table.Insert(Row("n", 1, 1), 0);
  size_t visited = 0;
  table.ForEachLive(0, [&](const TupleRef&) {
    ++visited;
    table.Insert(Row("n", 100 + static_cast<int>(visited), 5), 0);
    return true;
  });
  EXPECT_EQ(visited, 2u);  // snapshot semantics: callback inserts are skipped
  EXPECT_EQ(table.Size(0), 4u);
}

TEST(TableIndexTest, InsertDuringIterationDefersEviction) {
  Table table(Spec("t", 100, 2, {0, 1}));
  table.Insert(Row("n", 0, 0), 0);
  table.Insert(Row("n", 1, 1), 0);
  table.ForEachLive(0, [&](const TupleRef&) {
    table.Insert(Row("n", 2, 2), 0);  // over the bound; eviction must wait
    return true;
  });
  EXPECT_EQ(table.Size(0), 2u);  // bound re-applied when the walk ended
  EXPECT_EQ(table.counters().evictions, 1u);
}

TEST(TableIndexTest, DeleteDuringIterationIsDeferredButHidden) {
  Table table(Spec("t", 100, 100, {0, 1}));
  size_t ix = table.EnsureIndex({2});
  for (int i = 0; i < 4; ++i) {
    table.Insert(Row("n", i, 10), 0);
  }
  size_t visited = 0;
  size_t probe_after_delete = 0;
  table.ForEachLive(0, [&](const TupleRef& t) {
    if (visited++ == 0) {
      // Delete every row with value 10 except the one being visited... delete all:
      // the walk itself must survive, and subsequent rows must not be yielded.
      table.DeleteMatching({Value::Null(), Value::Null(), Value::Int(10)},
                           {false, false, true}, 0);
      probe_after_delete = table.ForEachMatch(ix, {Value::Int(10)}, 0,
                                              [&](const TupleRef&) { return true; });
    }
    return true;
  });
  EXPECT_EQ(visited, 1u);  // rows deleted mid-walk are hidden from the walk
  EXPECT_EQ(probe_after_delete, 0u);
  EXPECT_EQ(table.counters().deletes, 4u);
  EXPECT_EQ(table.Size(0), 0u);
  EXPECT_EQ(table.Scan(0).size(), 0u);
  // The table remains fully usable after the deferred purge.
  table.Insert(Row("n", 1, 10), 1);
  EXPECT_EQ(Probe(&table, ix, {Value::Int(10)}, 1).size(), 1u);
}

// --- randomized equivalence ---

TEST(TableIndexTest, RandomizedProbeMatchesScanFilter) {
  std::mt19937 rng(20260807);
  for (int round = 0; round < 20; ++round) {
    Table table(Spec("t", 5.0, 24, {0, 1}));
    size_t ix_v = table.EnsureIndex({2});
    size_t ix_kv = table.EnsureIndex({1, 2});
    double now = 0;
    for (int step = 0; step < 300; ++step) {
      now += std::uniform_real_distribution<double>(0, 0.5)(rng);
      int action = std::uniform_int_distribution<int>(0, 9)(rng);
      int64_t k = std::uniform_int_distribution<int64_t>(0, 30)(rng);
      int64_t v = std::uniform_int_distribution<int64_t>(0, 4)(rng);
      if (action < 7) {
        table.Insert(Row("n", k, v), now);
      } else if (action == 7) {
        table.DeleteMatching({Value::Null(), Value::Int(k), Value::Null()},
                             {false, true, false}, now);
      } else {
        // Probe both indexes and compare against the scan reference.
        ValueList key_v = {Value::Int(v)};
        ValueList key_kv = {Value::Int(k), Value::Int(v)};
        // Probe order is unspecified (hash-bucket order); compare as multisets.
        auto sorted = [](std::vector<TupleRef> rows) {
          std::vector<std::string> out;
          out.reserve(rows.size());
          for (const TupleRef& t : rows) {
            out.push_back(t->ToString());
          }
          std::sort(out.begin(), out.end());
          return out;
        };
        EXPECT_EQ(sorted(Probe(&table, ix_v, key_v, now)),
                  sorted(ScanFilter(&table, {2}, key_v, now)))
            << "round " << round << " step " << step;
        EXPECT_EQ(sorted(Probe(&table, ix_kv, key_kv, now)),
                  sorted(ScanFilter(&table, {1, 2}, key_kv, now)))
            << "round " << round << " step " << step;
      }
    }
  }
}

}  // namespace
}  // namespace p2
