// Scenario interpreter tests: the olgrun command language end-to-end.

#include <gtest/gtest.h>

#include <cstring>
#include <fstream>
#include <sstream>

#include "src/net/udp_driver.h"
#include "src/tools/scenario.h"

namespace p2 {
namespace {

class ScenarioTest : public ::testing::Test {
 protected:
  ScenarioTest() : runner_([this](const std::string& s) { output_ += s; }) {}

  bool Run(const std::string& script) {
    error_.clear();
    return runner_.RunScript(script, &error_);
  }

  ScenarioRunner runner_;
  std::string output_;
  std::string error_;
};

TEST_F(ScenarioTest, CommentsAndBlanksAreNoops) {
  EXPECT_TRUE(Run("# a comment\n\n   \n")) << error_;
}

TEST_F(ScenarioTest, NodesProgramsInjectionAndExpect) {
  const char* script = R"(
net latency=0.005 jitter=0
node a
node b
inline all materialize(s, infinity, 10, keys(1,2)).
inline a fwd s@Other(X) :- go@NAddr(Other, X).
inject a go(a, b, 42)
run 1
expect b s 1
dump b s
)";
  ASSERT_TRUE(Run(script)) << error_;
  EXPECT_EQ(runner_.expectations_passed(), 1);
  EXPECT_NE(output_.find("s(b, 42)"), std::string::npos);
}

TEST_F(ScenarioTest, TupleLiteralValueKinds) {
  const char* script = R"(
node a
inline a materialize(t, infinity, 10, keys(1,2)).
inject a t(a, 5, 2.5, "hello world", id:18446744073709551615, true, bare)
run 0.5
expect a t 1
dump a t
)";
  ASSERT_TRUE(Run(script)) << error_;
  EXPECT_NE(output_.find("t(a, 5, 2.5, hello world, 18446744073709551615, true, bare)"),
            std::string::npos);
}

TEST_F(ScenarioTest, TimedInjection) {
  const char* script = R"(
node a
inline a materialize(t, infinity, 10, keys(1,2)).
inject t=3 a t(a, 1)
run 1
expect a t 0
run 5
expect a t 1
)";
  ASSERT_TRUE(Run(script)) << error_;
  EXPECT_EQ(runner_.expectations_passed(), 2);
}

TEST_F(ScenarioTest, CrashAndRevive) {
  const char* script = R"(
node a
node b
inline b materialize(s, infinity, 10, keys(1,2)).
inline a fwd s@Other(X) :- go@NAddr(Other, X).
crash b
inject a go(a, b, 1)
run 1
expect b s 0
revive b
inject a go(a, b, 2)
run 1
expect b s 1
)";
  ASSERT_TRUE(Run(script)) << error_;
  EXPECT_EQ(runner_.expectations_passed(), 2);
}

TEST_F(ScenarioTest, CrashAndRecoverAtTime) {
  // crash/recover with at=<t> schedule against the virtual clock; the recovered
  // node processes traffic again.
  const char* script = R"(
node a
node b
inline b materialize(s, infinity, 10, keys(1,2)).
inline a fwd s@Other(X) :- go@NAddr(Other, X).
crash b at=1
recover b at=3
inject t=2 a go(a, b, 1)
run 2.5
expect b s 0
run 1
inject a go(a, b, 2)
run 1
expect b s 1
)";
  ASSERT_TRUE(Run(script)) << error_;
  EXPECT_EQ(runner_.expectations_passed(), 2);
}

TEST_F(ScenarioTest, LinkfaultDropsOneDirection) {
  const char* script = R"(
node a
node b
inline all materialize(s, infinity, 10, keys(1,2)).
inline all fwd s@Other(X) :- go@NAddr(Other, X).
linkfault a b loss=1.0
inject a go(a, b, 1)
inject b go(b, a, 2)
run 1
expect b s 0
expect a s 1
linkfault a b
inject a go(a, b, 3)
run 1
expect b s 1
)";
  ASSERT_TRUE(Run(script)) << error_;
  EXPECT_EQ(runner_.expectations_passed(), 3);
}

TEST_F(ScenarioTest, PartitionAndHeal) {
  const char* script = R"(
node a
node b
node c
inline all materialize(s, infinity, 10, keys(1,2)).
inline all fwd s@Other(X) :- go@NAddr(Other, X).
partition a,b c
inject a go(a, c, 1)
inject a go(a, b, 2)
run 1
expect c s 0
expect b s 1
heal
inject a go(a, c, 3)
run 1
expect c s 1
)";
  ASSERT_TRUE(Run(script)) << error_;
  EXPECT_EQ(runner_.expectations_passed(), 3);
}

TEST_F(ScenarioTest, ChordCommandFormsRing) {
  const char* script = R"(
node n0
node n1
node n2
chord all landmark=n0
run 60
expect n0 bestSucc 1
expect n1 bestSucc 1
expect n2 bestSucc 1
)";
  ASSERT_TRUE(Run(script)) << error_;
  EXPECT_EQ(runner_.expectations_passed(), 3);
}

TEST_F(ScenarioTest, WatchprintStreamsTuples) {
  const char* script = R"(
node a
inline a watch(alert).
inline a w1 alert@N(X) :- boom@N(X).
watchprint a
inject a boom(a, 9)
run 1
)";
  ASSERT_TRUE(Run(script)) << error_;
  EXPECT_NE(output_.find("alert(a, 9)"), std::string::npos);
}

TEST_F(ScenarioTest, ErrorsAreReportedWithLineNumbers) {
  // Each bad script gets a fresh interpreter (state persists within a runner).
  auto fails = [](const std::string& script, const std::string& fragment) {
    ScenarioRunner runner([](const std::string&) {});
    std::string error;
    bool ok = runner.RunScript(script, &error);
    EXPECT_FALSE(ok) << script;
    if (!fragment.empty()) {
      EXPECT_NE(error.find(fragment), std::string::npos) << error;
    }
  };
  fails("node a\nbogus command\n", "line 2");
  fails("run 5\n", "no nodes");
  fails("node a\nexpect a missing 3\n", "expect failed");
  fails("node a\ninject a not-a-tuple\n", "");
  fails("node a\nprogram a /no/such/file.olg\n", "cannot open");
  fails("node a\nnet latency=1\n", "net must precede");
  fails("node a\nlinkfault a\n", "linkfault");
  fails("node a\nlinkfault a b frob=1\n", "unknown linkfault option");
  fails("node a\npartition a\n", "partition");
  fails("node a\ncrash a when=2\n", "at=");
}

TEST_F(ScenarioTest, ShardedNetRunsAndRejectsBadShardCounts) {
  const char* script = R"(
net latency=0.01 jitter=0.005 shards=2
node a
node b
inline all materialize(s, infinity, 10, keys(1,2)).
inline a fwd s@Other(X) :- go@NAddr(Other, X).
inject a go(a, b, 7)
run 1
expect b s 1
)";
  ASSERT_TRUE(Run(script)) << error_;
  EXPECT_EQ(runner_.expectations_passed(), 1);

  auto fails = [](const std::string& s, const std::string& fragment) {
    ScenarioRunner runner([](const std::string&) {});
    std::string error;
    EXPECT_FALSE(runner.RunScript(s, &error)) << s;
    EXPECT_NE(error.find(fragment), std::string::npos) << error;
  };
  fails("net shards=0\nnode a\n", "shards must be in [1,64]");
  fails("net shards=65\nnode a\n", "shards must be in [1,64]");
  fails("net shards=two\nnode a\n", "shards");
  // shards>1 without a positive latency has no conservative lookahead to window on.
  fails("net latency=0 shards=2\nnode a\n",
        "net shards>1 requires latency>0 (the shard lookahead)");
}

// Strict argument parsing (simfuzz round-trips its generated scenarios through this
// grammar, so every malformed value must be a hard, line-numbered error).
TEST_F(ScenarioTest, MalformedValuesAreLineNumberedErrors) {
  auto fails = [](const std::string& script, const std::string& fragment) {
    ScenarioRunner runner([](const std::string&) {});
    std::string error;
    EXPECT_FALSE(runner.RunScript(script, &error)) << script;
    EXPECT_NE(error.find(fragment), std::string::npos) << error;
  };
  fails("net latency=fast\n", "bad number for latency");
  fails("net loss=1.5\n", "loss must be in [0,1]");
  fails("net seed=12x\n", "bad unsigned integer for seed");
  fails("node a\nrun -1\n", "run must be >= 0");
  fails("node a\nnode b\nlinkfault a b loss=2\n", "loss must be in [0,1]");
  fails("node a\nnode b\nlinkfault a b dup=nope\n", "bad number for dup");
  fails("node a\ncrash a at=1O\n", "line 2: bad number for at");
  fails("node a\ninject t=soon a t(a, 1)\n", "bad number for t");
  fails("node a\nput a k v abc\n", "bad unsigned integer for reqid");
}

TEST_F(ScenarioTest, PastTimesAreRejected) {
  auto fails = [](const std::string& script, const std::string& fragment) {
    ScenarioRunner runner([](const std::string&) {});
    std::string error;
    EXPECT_FALSE(runner.RunScript(script, &error)) << script;
    EXPECT_NE(error.find(fragment), std::string::npos) << error;
  };
  fails("node a\nrun 5\ninject t=2 a t(a, 1)\n", "t=2 is in the past");
  fails("node a\nrun 5\ncrash a at=2\n", "at=2 is in the past");
  fails("node a\nrun 5\nrecover a at=4.5\n", "at=4.5 is in the past");
}

TEST_F(ScenarioTest, UnknownNodesInFaultDirectivesAreRejected) {
  auto fails = [](const std::string& script, const std::string& fragment) {
    ScenarioRunner runner([](const std::string&) {});
    std::string error;
    EXPECT_FALSE(runner.RunScript(script, &error)) << script;
    EXPECT_NE(error.find(fragment), std::string::npos) << error;
  };
  fails("node a\nnode b\nlinkfault a z loss=0.5\n", "unknown node: z");
  fails("node a\nnode b\npartition a z\n", "unknown node: z");
  fails("node a\nmonitors all initiator=z\n", "unknown node: z");
  fails("node a\nmonitors all frob=1\n", "unknown monitors option: frob");
}

TEST_F(ScenarioTest, NodeAblationOptionsParse) {
  ASSERT_TRUE(Run("node a indexes=off metrics=off reliable=off\nrun 0.1\n"))
      << error_;
  ScenarioRunner runner([](const std::string&) {});
  std::string error;
  EXPECT_FALSE(runner.RunScript("node a indexes=maybe\n", &error));
  EXPECT_NE(error.find("indexes must be on|off"), std::string::npos) << error;
}

TEST_F(ScenarioTest, LimitsDirectiveCapsNodesCreatedAfterIt) {
  // `limits` configures admission caps for subsequently-created nodes; a kick
  // joining a 6-row table emits 6 best-effort deliveries in one cascade, so a
  // queue cap of 2 admits exactly 2.
  const char* script = R"(
limits queue=2
node a
inline a materialize(item, infinity, 100, keys(1,2)).
inline a materialize(out, infinity, 100, keys(1,2)).
inline a r1 out@N(X) :- kick@N(), item@N(X).
inject a item(a, 1)
inject a item(a, 2)
inject a item(a, 3)
inject a item(a, 4)
inject a item(a, 5)
inject a item(a, 6)
run 0.1
inject a kick(a)
run 0.5
expect a out 2
)";
  ASSERT_TRUE(Run(script)) << error_;
  EXPECT_EQ(runner_.expectations_passed(), 1);
}

TEST_F(ScenarioTest, LimitsDirectiveRejectsMalformedOptions) {
  auto fails = [](const std::string& script, const std::string& fragment) {
    ScenarioRunner runner([](const std::string&) {});
    std::string error;
    EXPECT_FALSE(runner.RunScript(script, &error)) << script;
    EXPECT_NE(error.find(fragment), std::string::npos) << error;
  };
  fails("limits\nnode a\n", "queue=<n>");
  fails("limits frob=1\nnode a\n", "unknown limits option: frob");
  fails("limits stretch=0.5\nnode a\n", "stretch must be >= 1");
  fails("limits queue=many\nnode a\n", "queue");
}

TEST_F(ScenarioTest, MonitorsDirectiveInstallsRingChecksAndSnapshots) {
  const char* script = R"(
node n0
node n1
node n2
chord all landmark=n0
monitors all initiator=n0 snap_period=5 abort=8 check=1 probe=10
run 45
dump n0 snapState
)";
  ASSERT_TRUE(Run(script)) << error_;
  EXPECT_NE(output_.find("snapState("), std::string::npos) << output_;
  EXPECT_NE(output_.find("Done"), std::string::npos) << output_;
}

TEST_F(ScenarioTest, StatsPrints) {
  ASSERT_TRUE(Run("node a\nrun 1\nstats a\n")) << error_;
  EXPECT_NE(output_.find("a: sent="), std::string::npos);
}

TEST_F(ScenarioTest, UdpBackendRunsScenarioOverRealSockets) {
  // `net backend=udp` runs the identical script language over loopback sockets;
  // `run 0.4` now takes ~0.4 wall seconds.
  const char* script = R"(
net backend=udp mtu=8192
node a
node b
inline all materialize(s, infinity, 10, keys(1,2)).
inline a fwd s@Other(X) :- go@NAddr(Other, X).
inject a go(a, b, 42)
run 0.4
expect b s 1
)";
  ASSERT_TRUE(Run(script)) << error_;
  EXPECT_EQ(runner_.expectations_passed(), 1);
  ASSERT_NE(runner_.fleet()->udp(), nullptr);
  EXPECT_GE(runner_.fleet()->udp()->datagrams_sent(), 1u);
  EXPECT_EQ(runner_.fleet()->udp()->max_datagram(), 8192u);
}

TEST_F(ScenarioTest, UdpBackendRejectsBadOptions) {
  EXPECT_FALSE(Run("net backend=tcp\n"));
  EXPECT_NE(error_.find("backend must be sim|udp"), std::string::npos) << error_;
  EXPECT_FALSE(Run("net backend=udp mtu=100\n"));
  EXPECT_NE(error_.find("mtu"), std::string::npos) << error_;
}

TEST_F(ScenarioTest, UdpBackendRejectsShards) {
  EXPECT_FALSE(Run("net backend=udp shards=2 latency=0.01\nnode a\n"));
  EXPECT_NE(error_.find("shards"), std::string::npos) << error_;
}

TEST_F(ScenarioTest, UdpBackendRejectsSimOnlyFaultDirectives) {
  EXPECT_FALSE(Run("net backend=udp\nnode a\nnode b\nlinkfault a b loss=1\n"));
  EXPECT_NE(error_.find("linkfault is not supported with backend=udp"),
            std::string::npos)
      << error_;
  EXPECT_FALSE(Run("partition a b\n"));
  EXPECT_FALSE(Run("heal\n"));
}

TEST_F(ScenarioTest, SetBackendForcesUdpWithoutNetDirective) {
  // olgrun --backend=udp: existing scenario files run unchanged over sockets.
  ScenarioRunner runner;
  runner.SetBackend(FleetBackend::kUdp);
  std::string error;
  ASSERT_TRUE(runner.RunScript("node a\nrun 0.1\n", &error)) << error;
  EXPECT_NE(runner.fleet()->udp(), nullptr);
}

TEST_F(ScenarioTest, ConfigureProcessesValidatesSlotAndBackend) {
  std::string error;
  EXPECT_FALSE(runner_.ConfigureProcesses(2, 2, &error));  // index out of range
  EXPECT_FALSE(runner_.ConfigureProcesses(-1, 2, &error));
  EXPECT_FALSE(runner_.ConfigureProcesses(0, 2, &error));  // procs>1 needs kUdp
  runner_.SetBackend(FleetBackend::kUdp);
  EXPECT_TRUE(runner_.ConfigureProcesses(0, 2, &error)) << error;
}

TEST_F(ScenarioTest, MultiProcessSlicePartitionsNodesAndSkipsRemoteDirectives) {
  // Process 1 of 2: hosts the odd-ordinal nodes; directives addressing the even
  // ones are silent no-ops, unknown names are still errors, and `chord` without
  // an explicit landmark= is rejected (it would differ per process).
  ScenarioRunner runner;
  runner.SetBackend(FleetBackend::kUdp);
  std::string error;
  ASSERT_TRUE(runner.ConfigureProcesses(1, 2, &error)) << error;
  const char* script = R"(
node n0
node n1
node n2
node n3
inline n0 materialize(t, infinity, 10, keys(1,2)).
inject n2 t(n2, 1)
run 0.05
)";
  ASSERT_TRUE(runner.RunScript(script, &error)) << error;
  EXPECT_FALSE(runner.fleet()->HasNode("n0"));
  EXPECT_TRUE(runner.fleet()->HasNode("n1"));
  EXPECT_FALSE(runner.fleet()->HasNode("n2"));
  EXPECT_TRUE(runner.fleet()->HasNode("n3"));
  EXPECT_FALSE(runner.RunLine("inject nope t(nope, 1)", &error));
  EXPECT_FALSE(runner.RunLine("chord all", &error));
  EXPECT_NE(error.find("landmark"), std::string::npos) << error;
  EXPECT_FALSE(runner.RunLine("monitors all", &error));
  EXPECT_NE(error.find("initiator"), std::string::npos) << error;
}

// Regression guard: every shipped scenario file must keep running clean (their
// `expect` lines are the assertions). Program paths inside scenarios are relative to
// the repository root.
class ShippedScenarios : public ::testing::TestWithParam<const char*> {};

TEST_P(ShippedScenarios, RunsClean) {
  std::string path = std::string(P2_SOURCE_DIR) + "/" + GetParam();
  // Scenarios reference program files relative to the repo root.
  std::string script;
  {
    std::ifstream f(path);
    ASSERT_TRUE(f.good()) << path;
    std::stringstream ss;
    ss << f.rdbuf();
    script = ss.str();
  }
  // Rewrite relative program paths to absolute ones.
  size_t pos = 0;
  while ((pos = script.find("examples/scenarios/", pos)) != std::string::npos) {
    script.replace(pos, strlen("examples/scenarios/"),
                   std::string(P2_SOURCE_DIR) + "/examples/scenarios/");
    pos += strlen(P2_SOURCE_DIR) + strlen("/examples/scenarios/");
  }
  ScenarioRunner runner([](const std::string&) {});
  std::string error;
  EXPECT_TRUE(runner.RunScript(script, &error)) << error;
}

INSTANTIATE_TEST_SUITE_P(Files, ShippedScenarios,
                         ::testing::Values("examples/scenarios/pathvector.scn",
                                           "examples/scenarios/chord_ring.scn",
                                           "examples/scenarios/dht_demo.scn",
                                           "examples/scenarios/rumor.scn"));

}  // namespace
}  // namespace p2
