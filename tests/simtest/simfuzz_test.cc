// Smoke tier for the simulation fuzzer (docs/TESTING.md): fixed seeds, seconds of
// wall clock. Covers seed-exact reproducibility, the quiet and faulty profiles
// passing the oracle library, lossless scenario round-trips, the planted-bug
// failure -> shrink -> replay pipeline, and differential ablation runs. The
// long tier (many seeds) is opt-in via P2_SIMFUZZ_ITERS.

#include <gtest/gtest.h>

#include <cstdlib>

#include "src/simtest/simfuzz.h"

namespace p2 {
namespace simtest {
namespace {

// A reduced fault profile that keeps shrink loops fast: a short window with one
// crash/recover pair, one link fault, and a put/get workload.
FuzzProfile SmallFaulty() {
  FuzzProfile p = FuzzProfile::Faulty();
  p.num_nodes = 4;
  p.duration = 30;
  p.settle = 15;
  p.churn_events = 1;
  p.linkfault_events = 1;
  p.partition_events = 0;
  p.put_events = 1;
  p.get_events = 1;
  return p;
}

TEST(SimFuzzTest, SameSeedIsBitReproducible) {
  Schedule s1 = GenerateSchedule(11, FuzzProfile::Faulty());
  Schedule s2 = GenerateSchedule(11, FuzzProfile::Faulty());
  ASSERT_EQ(ScheduleToScenario(s1), ScheduleToScenario(s2));
  RunResult r1 = RunSchedule(s1);
  RunResult r2 = RunSchedule(s2);
  EXPECT_EQ(r1.failed(), r2.failed());
  EXPECT_EQ(r1.total_msgs, r2.total_msgs);
  EXPECT_EQ(r1.full_digest, r2.full_digest)
      << "same seed must reproduce every table bit-exactly";
}

TEST(SimFuzzTest, QuietProfilePassesAllOracles) {
  RunResult r = RunSchedule(GenerateSchedule(1, FuzzProfile::Quiet()));
  EXPECT_FALSE(r.failed()) << r.Summary();
  EXPECT_GT(r.total_msgs, 0u);
}

TEST(SimFuzzTest, FaultyProfilePassesAllOracles) {
  for (uint64_t seed : {1, 2}) {
    RunResult r = RunSchedule(GenerateSchedule(seed, FuzzProfile::Faulty()));
    EXPECT_FALSE(r.failed()) << "seed " << seed << ": " << r.Summary();
  }
}

TEST(SimFuzzTest, ScenarioRoundTripIsLossless) {
  for (uint64_t seed : {1, 2, 3, 4, 5}) {
    Schedule schedule = GenerateSchedule(seed, FuzzProfile::Faulty());
    std::string text = ScheduleToScenario(schedule);
    Schedule parsed;
    std::string error;
    ASSERT_TRUE(ScenarioToSchedule(text, &parsed, &error))
        << "seed " << seed << ": " << error;
    EXPECT_EQ(ScheduleToScenario(parsed), text);
    EXPECT_EQ(parsed.seed, schedule.seed);
    EXPECT_EQ(parsed.events.size(), schedule.events.size());
  }
}

// The limits ablation renders the `limits=on` header flag plus the canonical
// budget line, parses back, and stays byte-identical; with limits off the
// rendered text carries no trace of the knob, so pre-existing scenario files
// are untouched by this feature.
TEST(SimFuzzTest, LimitsAblationRoundTripsInScenarioForm) {
  Schedule schedule = GenerateSchedule(6, FuzzProfile::Faulty());
  Ablation limits;
  limits.overload_limits = true;
  std::string text = ScheduleToScenario(schedule, limits);
  EXPECT_NE(text.find(" limits=on"), std::string::npos);
  EXPECT_NE(text.find(kFuzzLimitsLine), std::string::npos);

  Schedule parsed;
  std::string error;
  ASSERT_TRUE(ScenarioToSchedule(text, &parsed, &error)) << error;
  EXPECT_EQ(ScheduleToScenario(parsed, limits), text);

  std::string off = ScheduleToScenario(schedule);
  EXPECT_EQ(off.find("limits"), std::string::npos);
}

TEST(SimFuzzTest, NonCanonicalScenarioIsRejectedByParser) {
  Schedule schedule = GenerateSchedule(1, FuzzProfile::Quiet());
  std::string text = ScheduleToScenario(schedule) + "stats\n";
  Schedule parsed;
  std::string error;
  EXPECT_FALSE(ScenarioToSchedule(text, &parsed, &error));
  EXPECT_FALSE(error.empty());
}

// The full bug pipeline on a planted always-wrong oracle: the run fails, greedy
// shrinking strips everything but the crash the oracle blames, the minimal scenario
// round-trips through the parser, and replaying it still fails the same way.
TEST(SimFuzzTest, PlantedBugFailsShrinksAndReplays) {
  SimFuzzOptions opts;
  opts.broken_oracle = true;
  Schedule schedule = GenerateSchedule(7, SmallFaulty());
  size_t crashes = 0;
  for (const SimEvent& e : schedule.events) {
    crashes += e.kind == EvKind::kCrash ? 1 : 0;
  }
  ASSERT_GE(crashes, 1u) << "profile must schedule a crash for the planted bug";

  RunResult full = RunSchedule(schedule, opts);
  ASSERT_TRUE(full.failed());
  ASSERT_EQ(full.FailedOracles().count("broken-crash"), 1u) << full.Summary();

  int shrink_runs = 0;
  Schedule minimal = ShrinkSchedule(schedule, opts, &shrink_runs);
  EXPECT_GT(shrink_runs, 1);
  ASSERT_EQ(minimal.events.size(), 1u)
      << "everything but the blamed crash must shrink away";
  EXPECT_EQ(minimal.events[0].kind, EvKind::kCrash);

  std::string text = ScheduleToScenario(minimal, opts.ablation);
  Schedule parsed;
  std::string error;
  ASSERT_TRUE(ScenarioToSchedule(text, &parsed, &error)) << error;
  RunResult replay = RunSchedule(parsed, opts);
  ASSERT_TRUE(replay.failed());
  EXPECT_EQ(replay.FailedOracles().count("broken-crash"), 1u) << replay.Summary();

  // Without the planted oracle the minimal scenario is healthy.
  RunResult clean = RunSchedule(parsed, SimFuzzOptions{});
  EXPECT_FALSE(clean.failed()) << clean.Summary();
}

TEST(SimFuzzTest, DifferentialAblationsAreClean) {
  std::vector<std::string> diffs =
      DifferentialRun(GenerateSchedule(3, FuzzProfile::Quiet()));
  for (const std::string& d : diffs) {
    ADD_FAILURE() << d;
  }
}

// Long tier: P2_SIMFUZZ_ITERS=200 runs that many faulty seeds (CI nightly).
TEST(SimFuzzTest, LongTierSweep) {
  const char* iters_env = std::getenv("P2_SIMFUZZ_ITERS");
  if (iters_env == nullptr) {
    GTEST_SKIP() << "set P2_SIMFUZZ_ITERS to run the long fuzz tier";
  }
  int iters = std::atoi(iters_env);
  uint64_t base = 1;
  if (const char* seed_env = std::getenv("P2_SIMFUZZ_SEED")) {
    base = std::strtoull(seed_env, nullptr, 10);
  }
  for (int i = 0; i < iters; ++i) {
    uint64_t seed = base + static_cast<uint64_t>(i);
    RunResult r = RunSchedule(GenerateSchedule(seed, FuzzProfile::Faulty()));
    ASSERT_FALSE(r.failed())
        << "seed " << seed << ": " << r.Summary()
        << "\n---- replayable scenario ----\n" << r.scenario;
  }
}

}  // namespace
}  // namespace simtest
}  // namespace p2
