// Non-vacuity proofs for the simfuzz invariant oracles (docs/TESTING.md): every
// built-in oracle must fire on a synthesized observation that violates exactly its
// invariant, and stay silent on a healthy observation. Oracles consume plain
// FleetObservation data, so violations are constructed directly — no fleet needed.

#include <gtest/gtest.h>

#include "src/simtest/oracles.h"

namespace p2 {
namespace simtest {
namespace {

// A small two-node observation every built-in oracle accepts.
FleetObservation CleanObs() {
  FleetObservation obs;
  obs.now = 100.0;
  obs.faults_free = true;
  obs.snap_abort_timeout = 8.0;
  obs.snap_abort_check = 1.0;
  obs.total_msgs = 16;
  obs.delivered_msgs = 16;

  NodeObs n0;
  n0.addr = "n0";
  n0.stats.msgs_sent = 10;
  n0.stats.msgs_received = 8;
  n0.stats.tuples_emitted = 20;
  n0.metrics_enabled = true;
  n0.rule_emits_total = 5;
  // A resolved two-step derivation plus an acyclic same-instant event hop.
  RuleExecObs r1{"r1", 1, 2, 1.0, 1.5, true, true, true, true};
  RuleExecObs r2{"r2", 3, 4, 2.0, 2.0, true, true, true, false};
  RuleExecObs r3{"r3", 4, 5, 2.0, 2.0, true, true, true, false};
  n0.rule_exec = {r1, r2, r3};
  CrossRef cref;
  cref.node = "n0";
  cref.tuple_id = 7;
  cref.src_addr = "n1";
  cref.src_tuple_id = 9;
  cref.src_node_known = true;
  cref.resolved_local = true;
  cref.resolved_src = true;
  cref.local_text = "hop(n0, 5)";
  cref.src_text = "hop(n0, 5)";
  n0.cross_refs = {cref};
  n0.channels["n1"] = Node::ChannelStat{4, 3, 1, 0, 0};
  TableObs table;
  table.name = "succ";
  table.live_rows = 3;
  table.max_size = 16;
  table.counters.inserts = 10;
  table.counters.expires = 4;
  table.counters.deletes = 2;
  table.counters.evictions = 1;
  n0.tables = {table};
  SnapObs done{1, "Done", false, 0, false};
  SnapObs aborted{2, "Aborted", false, 0, /*has_diag=*/true};
  SnapObs snapping{3, "Snapping", true, /*started=*/obs.now - 2.0, false};
  n0.snapshots = {done, aborted, snapping};
  obs.nodes.push_back(n0);

  NodeObs n1;
  n1.addr = "n1";
  n1.stats.msgs_sent = 6;
  n1.stats.msgs_received = 8;
  obs.nodes.push_back(n1);

  obs.deliveries = {{"n0", "n1", 1, 1}, {"n0", "n1", 1, 2}, {"n0", "n1", 1, 3},
                    {"n0", "n1", 2, 1}};
  return obs;
}

// Runs just the named built-in oracle.
std::vector<Violation> RunOne(const std::string& name, const FleetObservation& obs) {
  std::vector<Violation> out;
  for (const Oracle& o : BuiltinOracles()) {
    if (o.name == name) {
      o.check(obs, &out);
      return out;
    }
  }
  ADD_FAILURE() << "no built-in oracle named " << name;
  return out;
}

TEST(OracleTest, CleanObservationPassesEveryOracle) {
  std::vector<Violation> out;
  RunOracles(BuiltinOracles(), CleanObs(), &out);
  for (const Violation& v : out) {
    ADD_FAILURE() << v.oracle << ": " << v.detail;
  }
}

TEST(OracleTest, CausalityFiresOnTimeInversion) {
  FleetObservation obs = CleanObs();
  obs.nodes[0].rule_exec[0].cause_time = 2.0;
  obs.nodes[0].rule_exec[0].out_time = 1.0;
  EXPECT_FALSE(RunOne("causality", obs).empty());
}

TEST(OracleTest, CausalityFiresOnTimesOutsideRunWindow) {
  FleetObservation obs = CleanObs();
  obs.nodes[0].rule_exec[0].out_time = obs.now + 50.0;
  obs.nodes[0].rule_exec[0].cause_time = obs.now + 50.0;
  EXPECT_FALSE(RunOne("causality", obs).empty());
}

TEST(OracleTest, CausalityFiresOnSameInstantEventCycle) {
  FleetObservation obs = CleanObs();
  // Close the 3 -> 4 -> 5 event chain back onto itself at the same instant.
  RuleExecObs back{"r9", 5, 3, 2.0, 2.0, true, true, true, false};
  obs.nodes[0].rule_exec.push_back(back);
  EXPECT_FALSE(RunOne("causality", obs).empty());
}

TEST(OracleTest, CausalityFiresOnEventSelfDerivation) {
  FleetObservation obs = CleanObs();
  RuleExecObs self{"r9", 6, 6, 3.0, 3.0, true, true, true, false};
  obs.nodes[0].rule_exec.push_back(self);
  EXPECT_FALSE(RunOne("causality", obs).empty());
}

// The chord refresh pattern (sb10/pp5): a materialized head re-derives its own
// cause at one instant. The table absorbs it as a refresh, so it must NOT fire.
TEST(OracleTest, CausalityIgnoresMaterializedRefreshLoops) {
  FleetObservation obs = CleanObs();
  RuleExecObs self{"sb10", 6, 6, 3.0, 3.0, true, true, true, true};
  RuleExecObs to{"agg1", 6, 7, 4.0, 4.0, true, true, true, true};
  RuleExecObs from{"sb10", 7, 6, 4.0, 4.0, true, true, true, true};
  obs.nodes[0].rule_exec.push_back(self);
  obs.nodes[0].rule_exec.push_back(to);
  obs.nodes[0].rule_exec.push_back(from);
  EXPECT_TRUE(RunOne("causality", obs).empty());
}

TEST(OracleTest, TraceRefsFiresOnUnresolvedRuleExecIds) {
  FleetObservation obs = CleanObs();
  obs.nodes[0].rule_exec[0].cause_resolved = false;
  EXPECT_FALSE(RunOne("trace-refs", obs).empty());
  obs = CleanObs();
  obs.nodes[0].rule_exec[0].effect_resolved = false;
  EXPECT_FALSE(RunOne("trace-refs", obs).empty());
}

TEST(OracleTest, TraceRefsFiresOnUnresolvedTupleTableRow) {
  FleetObservation obs = CleanObs();
  obs.nodes[0].cross_refs[0].resolved_local = false;
  EXPECT_FALSE(RunOne("trace-refs", obs).empty());
}

TEST(OracleTest, TraceRefsFiresOnCrossNodeContentMismatch) {
  FleetObservation obs = CleanObs();
  obs.nodes[0].cross_refs[0].src_text = "hop(n0, 666)";
  EXPECT_FALSE(RunOne("trace-refs", obs).empty());
}

TEST(OracleTest, TraceRefsAllowsRefcountExpiredOrigin) {
  FleetObservation obs = CleanObs();
  obs.nodes[0].cross_refs[0].resolved_src = false;  // origin GCed its copy: fine
  obs.nodes[0].cross_refs[0].src_text.clear();
  EXPECT_TRUE(RunOne("trace-refs", obs).empty());
}

TEST(OracleTest, ReliableFifoFiresOnSequenceGap) {
  FleetObservation obs = CleanObs();
  obs.deliveries = {{"n0", "n1", 1, 1}, {"n0", "n1", 1, 3}};
  EXPECT_FALSE(RunOne("reliable-fifo", obs).empty());
}

TEST(OracleTest, ReliableFifoFiresOnDuplicateDelivery) {
  FleetObservation obs = CleanObs();
  obs.deliveries = {{"n0", "n1", 1, 1}, {"n0", "n1", 1, 2}, {"n0", "n1", 1, 2}};
  EXPECT_FALSE(RunOne("reliable-fifo", obs).empty());
}

TEST(OracleTest, ReliableFifoFiresOnEpochRegression) {
  FleetObservation obs = CleanObs();
  obs.deliveries = {{"n0", "n1", 2, 1}, {"n0", "n1", 1, 1}};
  EXPECT_FALSE(RunOne("reliable-fifo", obs).empty());
}

TEST(OracleTest, ChannelStatsFiresOnImpossibleCounters) {
  FleetObservation obs = CleanObs();
  obs.nodes[0].channels["n1"].acked = 99;  // > sent
  EXPECT_FALSE(RunOne("channel-stats", obs).empty());
  obs = CleanObs();
  obs.nodes[0].channels["n1"].failed = 99;  // > sent
  EXPECT_FALSE(RunOne("channel-stats", obs).empty());
}

TEST(OracleTest, SoftStateFiresOnMaxSizeOverflow) {
  FleetObservation obs = CleanObs();
  obs.nodes[0].tables[0].live_rows = 17;  // > max_size 16
  obs.nodes[0].tables[0].counters.inserts = 100;
  EXPECT_FALSE(RunOne("soft-state", obs).empty());
}

TEST(OracleTest, SoftStateFiresOnCounterInconsistency) {
  FleetObservation obs = CleanObs();
  // 3 live rows but the counters only account for 10 - 4 - 2 - 1 = 3; one more
  // removal makes a live row unexplained.
  obs.nodes[0].tables[0].counters.deletes += 1;
  EXPECT_FALSE(RunOne("soft-state", obs).empty());
}

TEST(OracleTest, SnapshotLivenessFiresOnHungSnapshot) {
  FleetObservation obs = CleanObs();
  // Deadline is abort (8) + 3 * check (1) + 1 = 12s; started 30s ago.
  obs.nodes[0].snapshots[2].started_time = obs.now - 30.0;
  EXPECT_FALSE(RunOne("snapshot-liveness", obs).empty());
}

TEST(OracleTest, SnapshotLivenessFiresOnAbortWithoutDiag) {
  FleetObservation obs = CleanObs();
  obs.nodes[0].snapshots[1].has_diag = false;
  EXPECT_FALSE(RunOne("snapshot-liveness", obs).empty());
}

TEST(OracleTest, SnapshotLivenessSkipsDownNodes) {
  FleetObservation obs = CleanObs();
  obs.nodes[0].snapshots[2].started_time = obs.now - 30.0;
  obs.nodes[0].up = false;  // crashed: timers dead, judged after recovery
  EXPECT_TRUE(RunOne("snapshot-liveness", obs).empty());
}

TEST(OracleTest, ConservationFiresOnSendAccountingMismatch) {
  FleetObservation obs = CleanObs();
  obs.total_msgs += 1;  // network carried a message nobody sent
  EXPECT_FALSE(RunOne("conservation", obs).empty());
}

TEST(OracleTest, ConservationFiresOnDeliveryImbalance) {
  FleetObservation obs = CleanObs();
  obs.delivered_msgs -= 1;  // delivered != sent - dropped + duplicated
  EXPECT_FALSE(RunOne("conservation", obs).empty());
}

TEST(OracleTest, ConservationFiresOnDropDuringFaultFreeRun) {
  FleetObservation obs = CleanObs();
  obs.dropped_msgs = 1;
  obs.delivered_msgs -= 1;  // keep the balance equation satisfied
  obs.nodes[1].stats.msgs_received -= 1;
  EXPECT_FALSE(RunOne("conservation", obs).empty());
}

TEST(OracleTest, ConservationAllowsDropsWhenFaultsInjected) {
  FleetObservation obs = CleanObs();
  obs.faults_free = false;
  obs.dropped_msgs = 1;
  obs.delivered_msgs -= 1;
  obs.nodes[1].stats.msgs_received -= 1;  // the dropped message never arrived
  EXPECT_TRUE(RunOne("conservation", obs).empty());
}

TEST(OracleTest, ConservationFiresWhenRuleEmitsExceedNodeTotal) {
  FleetObservation obs = CleanObs();
  obs.nodes[0].rule_emits_total = obs.nodes[0].stats.tuples_emitted + 1;
  EXPECT_FALSE(RunOne("conservation", obs).empty());
}

TEST(OracleTest, RetentionConsistencyFiresOnDigestMismatch) {
  FleetObservation obs = CleanObs();
  obs.forensics_comparable = true;
  obs.nodes[0].forensics_enabled = true;
  obs.nodes[0].live_chain_digest = "aaaaaaaaaaaaaaaa";
  obs.nodes[0].replay_chain_digest = "bbbbbbbbbbbbbbbb";
  EXPECT_FALSE(RunOne("retention-consistency", obs).empty());
}

TEST(OracleTest, RetentionConsistencySilentOnMatchingDigests) {
  FleetObservation obs = CleanObs();
  obs.forensics_comparable = true;
  obs.nodes[0].forensics_enabled = true;
  obs.nodes[0].live_chain_digest = "aaaaaaaaaaaaaaaa";
  obs.nodes[0].replay_chain_digest = "aaaaaaaaaaaaaaaa";
  EXPECT_TRUE(RunOne("retention-consistency", obs).empty());
}

TEST(OracleTest, RetentionConsistencySkipsIncomparableRuns) {
  // When retention dropped segments or live trace tables lost rows anywhere in
  // the fleet, the two walks legitimately diverge — the oracle must not fire.
  FleetObservation obs = CleanObs();
  obs.forensics_comparable = false;
  obs.nodes[0].forensics_enabled = true;
  obs.nodes[0].live_chain_digest = "aaaaaaaaaaaaaaaa";
  obs.nodes[0].replay_chain_digest = "bbbbbbbbbbbbbbbb";
  EXPECT_TRUE(RunOne("retention-consistency", obs).empty());
}

TEST(OracleTest, OverloadFiresOnCapOverflow) {
  // Each configured cap is judged against its high-water mark; one field each.
  FleetObservation obs = CleanObs();
  obs.nodes[0].queue_cap = 8;
  obs.nodes[0].stats.be_queue_hwm = 9;
  EXPECT_FALSE(RunOne("overload", obs).empty());
  obs = CleanObs();
  obs.nodes[0].low_queue_cap = 4;
  obs.nodes[0].stats.low_queue_hwm = 5;
  EXPECT_FALSE(RunOne("overload", obs).empty());
  obs = CleanObs();
  obs.nodes[0].rel_window = 16;
  obs.nodes[0].stats.rel_pending_hwm = 17;
  EXPECT_FALSE(RunOne("overload", obs).empty());
  obs = CleanObs();
  obs.nodes[0].rel_backlog_cap = 32;
  obs.nodes[0].stats.rel_backlog_hwm = 33;
  EXPECT_FALSE(RunOne("overload", obs).empty());
  obs = CleanObs();
  obs.nodes[0].rel_reorder_cap = 64;
  obs.nodes[0].stats.rel_reorder_hwm = 65;
  EXPECT_FALSE(RunOne("overload", obs).empty());
}

TEST(OracleTest, OverloadIgnoresHwmWhenCapUnconfigured) {
  // cap 0 = unlimited: a high-water mark alone is not a violation.
  FleetObservation obs = CleanObs();
  obs.nodes[0].stats.be_queue_hwm = 1000;
  obs.nodes[0].stats.rel_pending_hwm = 1000;
  EXPECT_TRUE(RunOne("overload", obs).empty());
}

TEST(OracleTest, OverloadFiresOnReliableShed) {
  FleetObservation obs = CleanObs();
  obs.nodes[0].stats.shed_reliable = 1;  // the control plane must never shed
  EXPECT_FALSE(RunOne("overload", obs).empty());
}

TEST(OracleTest, OverloadFiresOnUndrainedQueueAfterSettle) {
  FleetObservation obs = CleanObs();
  obs.nodes[0].queue_depth = 3;
  EXPECT_FALSE(RunOne("overload", obs).empty());
}

TEST(OracleTest, OverloadFiresWhenStillDegradedAfterSettle) {
  FleetObservation obs = CleanObs();
  obs.nodes[0].degraded = true;
  obs.nodes[0].stats.degrade_enters = 1;
  EXPECT_FALSE(RunOne("overload", obs).empty());
}

TEST(OracleTest, OverloadSkipsLivenessChecksOnDownNodes) {
  FleetObservation obs = CleanObs();
  obs.nodes[0].queue_depth = 3;
  obs.nodes[0].degraded = true;
  obs.nodes[0].up = false;  // crashed: its queue and watchdog died with it
  EXPECT_TRUE(RunOne("overload", obs).empty());
}

TEST(OracleTest, OverloadAcceptsSheddingWithinBudgets) {
  // Best-effort shedding under a respected cap is the mechanism working, not a
  // violation — only bound overflow, reliable shed, or failed restore fire.
  FleetObservation obs = CleanObs();
  obs.nodes[0].queue_cap = 8;
  obs.nodes[0].stats.be_queue_hwm = 8;
  obs.nodes[0].stats.shed_besteffort = 500;
  obs.nodes[0].stats.shed_low = 50;
  obs.nodes[0].stats.degrade_enters = 2;
  obs.nodes[0].stats.degrade_exits = 2;
  EXPECT_TRUE(RunOne("overload", obs).empty());
}

TEST(OracleTest, BrokenCrashOracleFiresOnlyOnCrashes) {
  FleetObservation obs = CleanObs();
  std::vector<Violation> out;
  BrokenCrashOracle().check(obs, &out);
  EXPECT_TRUE(out.empty());
  obs.crash_events = 2;
  BrokenCrashOracle().check(obs, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].oracle, "broken-crash");
}

}  // namespace
}  // namespace simtest
}  // namespace p2
