// self_monitor: the engine watching itself with its own query language.
//
// The introspection tables sysStat / sysRuleStat / sysTableStat (refreshed every
// soft-state sweep, see docs/OBSERVABILITY.md) are ordinary soft-state tables, so
// OverLog rules can join them like any other state. This example:
//
//   1. forms a small Chord ring,
//   2. plants a deliberately expensive rule ("hog1": a periodic full-table scan) on
//      one node,
//   3. installs a monitoring program ON THAT NODE that joins sysRuleStat against the
//      node-wide busy_ns counter in sysStat and raises hotRule alerts for any rule
//      consuming more than 10% of the node's total execution time,
//   4. streams per-sweep telemetry snapshots to self_monitor.metrics.jsonl.
//
// Usage:  ./build/examples/self_monitor


#include <algorithm>
#include <cstdio>
#include <vector>

#include "src/testbed/testbed.h"
#include "src/trace/metrics.h"

int main() {
  p2::TestbedConfig config;
  config.num_nodes = 8;
  config.fleet.node_defaults.introspection = true;  // the defaults, spelled out: the sys*
  config.fleet.node_defaults.metrics = true;        // tables need both switches on
  p2::ChordTestbed bed(config);

  // Structured export rides along: every node's per-sweep snapshot goes to JSONL.
  std::string sink_error;
  auto sink = p2::OpenMetricsSink("self_monitor.metrics.jsonl", &sink_error);
  if (sink == nullptr) {
    fprintf(stderr, "cannot open metrics sink: %s\n", sink_error.c_str());
    return 1;
  }
  bed.SetMetricsSink(sink.get());

  printf("forming an 8-node ring...\n");
  bed.Run(60);

  p2::NodeHandle target = bed.last_handle();
  printf("planting an expensive rule on %s: hog1 scans a 2000-row table twice/sec\n",
         target.addr().c_str());
  std::string error;
  if (!target.Load("materialize(big, infinity, 5000, keys(1,2)).\n"
                   "hog1 burnt@N(Y) :- periodic@N(E, 0.5), big@N(Y), Y < 0.\n",
                   &error)) {
    fprintf(stderr, "install failed: %s\n", error.c_str());
    return 1;
  }
  for (int i = 0; i < 2000; ++i) {
    target.Inject(p2::Tuple::Make(
        "big", {p2::Value::Str(target.addr()), p2::Value::Int(i)}));
  }
  bed.Run(5);

  // The self-monitor, in OverLog. sysRuleStat(N, Rule, Execs, BusyNs, Emits) and
  // sysStat(N, "busy_ns", Total) refresh each sweep, so a periodic join over them
  // sees the node's own accounting ~1 s stale at worst. Share is a percentage.
  printf("installing the self-monitoring rules on %s\n", target.addr().c_str());
  if (!target.Load(
          "mon1 ruleShare@N(Rule, Share) :- periodic@N(E, 5),\n"
          "    sysRuleStat@N(Rule, Execs, Busy, Emits),\n"
          "    sysStat@N(\"busy_ns\", Total), Total > 0,\n"
          "    Share := (Busy * 100) / Total.\n"
          "mon2 hotRule@N(Rule, Share) :- ruleShare@N(Rule, Share), Share >= 10.\n",
          &error)) {
    fprintf(stderr, "install failed: %s\n", error.c_str());
    return 1;
  }
  target.OnEvent("hotRule", [&](const p2::TupleRef& t) {
    printf("  [%7.2fs] HOT RULE on %s: %s is using %s%% of this node's busy time\n",
           bed.network().Now(), target.addr().c_str(),
           t->field(1).AsString().c_str(), t->field(2).ToString().c_str());
  });

  printf("\n-- 20 s of self-monitoring (expect hotRule alerts naming hog1) --\n");
  bed.Run(20);

  // The same data is available to plain C++ through the tables.
  printf("\nTop rules by cumulative busy time on %s (from sysRuleStat):\n",
         target.addr().c_str());
  std::vector<p2::TupleRef> rows = target.Query("sysRuleStat");
  std::sort(rows.begin(), rows.end(),
            [](const p2::TupleRef& a, const p2::TupleRef& b) {
              return a->field(3).AsInt() > b->field(3).AsInt();
            });
  printf("  %-12s %10s %14s %10s\n", "rule", "execs", "busy(ns)", "emits");
  for (size_t i = 0; i < rows.size() && i < 5; ++i) {
    printf("  %-12s %10lld %14lld %10lld\n", rows[i]->field(1).AsString().c_str(),
           static_cast<long long>(rows[i]->field(2).AsInt()),
           static_cast<long long>(rows[i]->field(3).AsInt()),
           static_cast<long long>(rows[i]->field(4).AsInt()));
  }

  printf("\nSelected node-wide counters (from sysStat):\n");
  for (const p2::TupleRef& t : target.Query("sysStat")) {
    const std::string& name = t->field(1).AsString();
    if (name == "busy_ns" || name == "strand_triggers" || name == "tuples_emitted" ||
        name == "tuples_expired" || name == "queue_hwm") {
      printf("  %-16s %lld\n", name.c_str(),
             static_cast<long long>(t->field(2).AsInt()));
    }
  }

  printf("\nper-sweep snapshots written to self_monitor.metrics.jsonl\n");
  return 0;
}
