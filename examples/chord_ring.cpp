// chord_ring: runs a P2-Chord deployment, waits for the ring to converge, prints the
// ring in identifier order, and resolves a few lookups (paper §3 substrate).
//
// Usage:  ./build/examples/chord_ring [num_nodes] [settle_seconds]

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <vector>

#include "src/testbed/testbed.h"

int main(int argc, char** argv) {
  int num_nodes = argc > 1 ? std::atoi(argv[1]) : 21;
  double settle = argc > 2 ? std::atof(argv[2]) : 120.0;

  p2::TestbedConfig config;
  config.num_nodes = num_nodes;
  p2::ChordTestbed bed(config);
  printf("starting %d nodes (landmark n0), settling for %.0f simulated seconds...\n",
         num_nodes, settle);
  bed.Run(settle);

  std::map<std::string, uint64_t> ids = bed.Ids();
  std::vector<std::pair<uint64_t, std::string>> ring;
  for (const auto& [addr, id] : ids) {
    ring.emplace_back(id, addr);
  }
  std::sort(ring.begin(), ring.end());

  printf("\n== ring in identifier order ==\n");
  int correct = 0;
  for (size_t i = 0; i < ring.size(); ++i) {
    const std::string& addr = ring[i].second;
    const std::string& expect = ring[(i + 1) % ring.size()].second;
    // Host-side read-only access between Run calls; mutation goes through handles.
    p2::NodeHandle node = bed.fleet().Handle(addr);
    std::string succ = p2::BestSuccAddr(node.raw());
    bool ok = succ == expect;
    correct += ok ? 1 : 0;
    std::string note = ok ? "" : "  <- WRONG (expected " + expect + ")";
    printf("  %-4s id=%020llu succ=%-4s pred=%-4s %s\n", addr.c_str(),
           static_cast<unsigned long long>(ring[i].first), succ.c_str(),
           p2::PredAddr(node.raw()).c_str(), note.c_str());
  }
  printf("correct successors: %d/%zu\n", correct, ring.size());

  printf("\n== lookups ==\n");
  std::map<uint64_t, std::string> results;
  p2::NodeHandle requester = bed.handle(num_nodes / 2);
  requester.OnEvent("lookupResults", [&](const p2::TupleRef& t) {
    results[t->field(4).AsId()] = t->field(3).AsString();
  });
  p2::Rng rng(2024);
  std::map<uint64_t, uint64_t> keys;
  for (uint64_t req = 1; req <= 5; ++req) {
    keys[req] = rng.Next();
    requester.Call([&](p2::Node* n) { p2::IssueLookup(n, keys[req], req); });
  }
  bed.Run(10);
  for (const auto& [req, key] : keys) {
    // Ground truth: closest clockwise identifier.
    std::string owner;
    uint64_t best = ~0ULL;
    for (const auto& [addr, id] : ids) {
      uint64_t dist = id - key;
      if (owner.empty() || dist < best) {
        owner = addr;
        best = dist;
      }
    }
    auto it = results.find(req);
    printf("  key %020llu -> %-6s (true owner %-4s) %s\n",
           static_cast<unsigned long long>(key),
           it == results.end() ? "(lost)" : it->second.c_str(), owner.c_str(),
           it != results.end() && it->second == owner ? "ok" : "MISMATCH");
  }

  uint64_t total_msgs = bed.network().total_msgs();
  printf("\nmessages exchanged: %llu (%.1f per node-second)\n",
         static_cast<unsigned long long>(total_msgs),
         static_cast<double>(total_msgs) / num_nodes / bed.network().Now());
  return 0;
}
