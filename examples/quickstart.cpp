// Quickstart: declarative path-vector routing in six lines of OverLog (paper §2).
//
// Demonstrates the core public API:
//   1. build a p2::Fleet and add nodes (handles are how hosts touch nodes);
//   2. load an OverLog program (tables + rules) on each node;
//   3. inject base facts (link tuples);
//   4. run the simulation and query the derived state;
//   5. inspect the compiled dataflow via the introspection tables (paper Figure 1).
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>
#include <map>
#include <vector>

#include "src/net/fleet.h"

namespace {

// The paper's "all routes" example, bounded to 3 hops (the naive rule derives
// forever on cyclic topologies; the paper bounds it with table size limits instead).
constexpr char kPathVector[] = R"(
materialize(link, infinity, 64, keys(1, 2)).
materialize(path, infinity, 256, keys(1, 2, 3)).

p1 path@A(B, [B], W) :- link@A(B, W).
p2 path@B(C, [A] + P, W + Y) :- link@A(B, W), path@A(C, P, Y), f_size(P) < 3.
)";

void AddLink(p2::NodeHandle node, const std::string& from, const std::string& to,
             int weight) {
  node.Inject(p2::Tuple::Make(
      "link", {p2::Value::Str(from), p2::Value::Str(to), p2::Value::Int(weight)}));
}

}  // namespace

int main() {
  p2::FleetConfig config;
  config.latency = 0.01;
  p2::Fleet fleet(config);

  // A diamond topology: a - b - d and a - c - d, plus a direct (expensive) a - d.
  const char* addrs[] = {"a", "b", "c", "d"};
  for (const char* addr : addrs) {
    p2::NodeHandle node = fleet.AddNode(addr);
    std::string error;
    if (!node.Load(kPathVector, &error)) {
      fprintf(stderr, "load failed: %s\n", error.c_str());
      return 1;
    }
  }
  struct Edge {
    const char *from, *to;
    int weight;
  };
  const Edge edges[] = {{"a", "b", 1}, {"b", "d", 1}, {"a", "c", 2},
                        {"c", "d", 1}, {"a", "d", 9}};
  for (const Edge& e : edges) {
    AddLink(fleet.Handle(e.from), e.from, e.to, e.weight);
    AddLink(fleet.Handle(e.to), e.to, e.from, e.weight);
  }

  fleet.RunFor(5.0);

  // The naive rule derives every bounded walk (including cycles, as the paper notes);
  // summarize with the cheapest route per destination.
  std::vector<p2::TupleRef> paths = fleet.Handle("d").Query("path");
  printf("== cheapest derived route per destination at node d (%zu paths total) ==\n",
         paths.size());
  std::map<std::string, p2::TupleRef> best;
  for (const p2::TupleRef& t : paths) {
    std::string dest = t->field(1).ToString();
    auto it = best.find(dest);
    if (it == best.end() || t->field(3).Compare(it->second->field(3)) < 0) {
      best[dest] = t;
    }
  }
  for (const auto& [dest, t] : best) {
    printf("  to %-2s via %-12s cost %s\n", dest.c_str(),
           t->field(2).ToString().c_str(), t->field(3).ToString().c_str());
  }

  printf("\n== compiled dataflow for the program at node a (paper Figure 1) ==\n");
  for (const p2::TupleRef& t : fleet.Handle("a").Query("sysElement")) {
    printf("  rule %-4s stage %s: %-8s %s\n", t->field(1).ToString().c_str(),
           t->field(2).ToString().c_str(), t->field(3).ToString().c_str(),
           t->field(4).ToString().c_str());
  }

  printf("\n== loaded rules (sysRule) ==\n");
  for (const p2::TupleRef& t : fleet.Handle("a").Query("sysRule")) {
    printf("  %s\n", t->field(2).ToString().c_str());
  }
  return 0;
}
