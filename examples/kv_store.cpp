// kv_store: the DHT metaphor end-to-end (paper §3.1: "you get what you put in, as if
// the system were implemented with a centralized hash table") — a put/get store over
// P2-Chord with successor replication, surviving an owner crash, monitored by the
// paper's consistency probes throughout.
//
// Usage:  ./build/examples/kv_store

#include <cstdio>
#include <map>

#include "src/apps/dht.h"
#include "src/mon/consistency.h"
#include "src/testbed/testbed.h"

int main() {
  p2::TestbedConfig config;
  config.num_nodes = 10;
  p2::ChordTestbed bed(config);
  printf("forming a 10-node ring...\n");
  bed.Run(100);
  printf("ring correct: %s\n\n", bed.RingIsCorrect() ? "yes" : "no");

  std::map<uint64_t, std::string> acks;
  std::map<uint64_t, std::pair<std::string, bool>> gets;
  for (p2::NodeHandle node : bed.handles()) {
    p2::DhtConfig dc;
    std::string error;
    if (!node.Install([&](p2::Node* n, std::string* e) { return InstallDht(n, dc, e); },
                      &error)) {
      fprintf(stderr, "install failed: %s\n", error.c_str());
      return 1;
    }
    node.OnEvent("dhtPutAck", [&](const p2::TupleRef& t) {
      acks[t->field(2).AsId()] = t->field(3).AsString();
    });
    node.OnEvent("dhtGetResp", [&](const p2::TupleRef& t) {
      gets[t->field(3).AsId()] = {t->field(2).AsString(), t->field(4).Truthy()};
    });
  }
  // Leave the paper's consistency probe running on one node for the whole session.
  p2::ConsistencyConfig cc;
  cc.probe_period = 10.0;
  cc.tally_period = 5.0;
  cc.tally_age = 5.0;
  std::string error;
  p2::NodeHandle monitor = bed.handle(4);
  if (!monitor.Install(
          [&](p2::Node* n, std::string* e) { return InstallConsistencyProbes(n, cc, e); },
          &error)) {
    fprintf(stderr, "probe install failed: %s\n", error.c_str());
    return 1;
  }
  monitor.OnEvent("consistency", [&](const p2::TupleRef& t) {
    printf("  [monitor] routing consistency metric: %s\n",
           t->field(2).ToString().c_str());
  });

  printf("== puts from assorted nodes ==\n");
  struct Pair {
    const char *key, *value;
  };
  const Pair pairs[] = {{"alpha", "1"}, {"bravo", "2"}, {"charlie", "3"},
                        {"delta", "4"}, {"echo", "5"}};
  uint64_t req = 1;
  for (const Pair& p : pairs) {
    bed.handle(req % bed.size()).Call([&](p2::Node* n) { DhtPut(n, p.key, p.value, req); });
    ++req;
  }
  bed.Run(10);
  for (uint64_t r = 1; r < req; ++r) {
    printf("  put #%llu stored at %s\n", static_cast<unsigned long long>(r),
           acks.count(r) ? acks[r].c_str() : "(no ack)");
  }

  printf("\n== gets from different nodes ==\n");
  for (const Pair& p : pairs) {
    bed.handle(req % bed.size()).Call([&](p2::Node* n) { DhtGet(n, p.key, req); });
    ++req;
  }
  bed.Run(10);
  for (uint64_t r = 6; r < req; ++r) {
    printf("  get #%llu -> %s%s\n", static_cast<unsigned long long>(r),
           gets[r].second ? gets[r].first.c_str() : "(miss)",
           gets[r].second ? "" : " !!");
  }

  // Crash the owner of "alpha" and show the replica taking over.
  p2::NodeHandle owner = bed.fleet().Handle(acks[1]);
  printf("\n== crashing %s (owner of \"alpha\") ==\n", owner.addr().c_str());
  owner.Crash();
  printf("waiting for failure detection and ring repair...\n");
  bed.Run(60);
  uint64_t retry = req++;
  bed.handle(2).Call([&](p2::Node* n) { DhtGet(n, "alpha", retry); });
  bed.Run(10);
  printf("  get after crash -> %s  (served by the successor replica)\n",
         gets[retry].second ? gets[retry].first.c_str() : "(miss) !!");

  printf("\ndone.\n");
  return 0;
}
