// snapshot_forensics: Chandy-Lamport consistent snapshots of a running overlay and
// queries over them (paper §3.3).
//
// Takes periodic snapshots of a live Chord ring, shows the snapshot protocol
// completing on every node, runs lookups against the frozen routing state, and runs
// the snapshot-mode consistency probe ("Routing Consistency Revisited") — all while
// the live system keeps serving regular lookups.
//
// Usage:  ./build/examples/snapshot_forensics

#include <cstdio>
#include <map>

#include "src/mon/consistency.h"
#include "src/mon/snapshot.h"
#include "src/testbed/testbed.h"

int main() {
  p2::TestbedConfig config;
  config.num_nodes = 10;
  p2::ChordTestbed bed(config);
  printf("forming a 10-node ring...\n");
  bed.Run(100);
  printf("ring correct: %s\n", bed.RingIsCorrect() ? "yes" : "no");

  printf("\ninstalling snapshot machinery (initiator n0, every 10 s)\n");
  for (size_t i = 0; i < bed.size(); ++i) {
    p2::SnapshotConfig sc;
    sc.snap_period = 10.0;
    sc.initiator = (i == 0);
    std::string error;
    if (!bed.handle(i).Install(
            [&](p2::Node* n, std::string* e) { return InstallSnapshot(n, sc, e); },
            &error)) {
      fprintf(stderr, "install failed: %s\n", error.c_str());
      return 1;
    }
  }
  bed.Run(25);

  printf("\n== snapshot status per node ==\n");
  for (p2::NodeHandle node : bed.handles()) {
    printf("  %-4s latest completed snapshot: %lld  (backpointers: %zu)\n",
           node.addr().c_str(),
           static_cast<long long>(p2::LatestDoneSnapshot(node.raw())),
           node.Count("backPointer"));
  }

  p2::NodeHandle prober = bed.handle(5);
  int64_t snap = p2::LatestDoneSnapshot(prober.raw());
  printf("\n== lookups over frozen snapshot %lld (live ring keeps running) ==\n",
         static_cast<long long>(snap));
  std::map<uint64_t, std::string> results;
  prober.OnEvent("sLookupResults", [&](const p2::TupleRef& t) {
    results[t->field(5).AsId()] = t->field(4).AsString();
  });
  p2::Rng rng(31);
  std::map<uint64_t, uint64_t> keys;
  for (uint64_t req = 1; req <= 4; ++req) {
    keys[req] = rng.Next();
    prober.Call([&](p2::Node* n) { IssueSnapshotLookup(n, snap, keys[req], req); });
  }
  bed.Run(10);
  std::map<std::string, uint64_t> ids = bed.Ids();
  for (const auto& [req, key] : keys) {
    std::string owner;
    uint64_t best = ~0ULL;
    for (const auto& [addr, id] : ids) {
      uint64_t dist = id - key;
      if (owner.empty() || dist < best) {
        owner = addr;
        best = dist;
      }
    }
    auto it = results.find(req);
    printf("  key %020llu -> %-6s (live owner %-4s) %s\n",
           static_cast<unsigned long long>(key),
           it == results.end() ? "(lost)" : it->second.c_str(), owner.c_str(),
           it != results.end() && it->second == owner ? "consistent" : "DIVERGED");
  }

  printf("\n== snapshot-mode consistency probes (paper cs4s/cs5s) ==\n");
  p2::ConsistencyConfig cc;
  cc.probe_period = 4.0;
  cc.tally_period = 2.0;
  cc.tally_age = 2.0;
  cc.snapshot_mode = true;
  cc.snapshot_id = p2::LatestDoneSnapshot(prober.raw());
  std::string error;
  if (!prober.Install(
          [&](p2::Node* n, std::string* e) {
            return InstallConsistencyProbes(n, cc, e);
          },
          &error)) {
    fprintf(stderr, "install failed: %s\n", error.c_str());
    return 1;
  }
  prober.OnEvent("consistency", [&](const p2::TupleRef& t) {
    printf("  [%7.2fs] consistency metric over snapshot %lld: %s\n",
           bed.network().Now(), static_cast<long long>(cc.snapshot_id),
           t->field(2).ToString().c_str());
  });
  bed.Run(15);

  printf("\n== channel recordings captured during snapshots ==\n");
  size_t stab = 0;
  size_t notify = 0;
  size_t lookups = 0;
  for (p2::NodeHandle node : bed.handles()) {
    stab += node.Count("channelDumpStab");
    notify += node.Count("channelDumpNotify");
    lookups += node.Count("channelDumpLookupRes");
  }
  printf("  in-flight messages recorded: %zu stabilize, %zu notify, %zu lookup-results\n",
         stab, notify, lookups);
  printf("\ndone.\n");
  return 0;
}
