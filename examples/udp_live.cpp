// udp_live: the same engine and OverLog programs, running over REAL localhost UDP
// sockets in wall-clock time (P2 was a deployable system, not just a simulator).
//
// Two Fleet instances with backend = kUdp stand in for two OS processes; they can
// only communicate through the sockets (RegisterPeer plays the role of fleetd's
// rendezvous exchange, docs/DEPLOYMENT.md). A two-node Chord ring forms in real
// seconds and the DHT layer serves a put/get across the wire. Takes ~5 wall seconds.
//
// Usage:  ./build/examples/udp_live

#include <cstdio>

#include "src/apps/dht.h"
#include "src/chord/chord.h"
#include "src/net/udp_driver.h"

namespace {

void PumpBoth(p2::Fleet* a, p2::Fleet* b, double wall_seconds) {
  for (int i = 0; i < wall_seconds / 0.02; ++i) {
    a->RunFor(0.01);
    b->RunFor(0.01);
  }
}

p2::FleetConfig UdpConfig(uint64_t seed) {
  p2::FleetConfig cfg;
  cfg.backend = p2::FleetBackend::kUdp;
  cfg.seed = seed;
  cfg.node_defaults.introspection = false;
  return cfg;
}

}  // namespace

int main() {
  p2::Fleet fleet_a(UdpConfig(1));
  p2::Fleet fleet_b(UdpConfig(2));
  p2::NodeHandle landmark = fleet_a.AddNode("landmark");
  p2::NodeHandle joiner = fleet_b.AddNode("joiner");
  if (!landmark.valid() || !joiner.valid()) {
    fprintf(stderr, "socket setup failed\n");
    return 1;
  }
  // Each process learns the other's name -> socket-address map (fleetd does this
  // with a rendezvous exchange; here we just copy the maps across).
  for (const auto& [name, addr] : fleet_a.udp()->LocalMap()) {
    fleet_b.RegisterPeer(name, addr);
  }
  for (const auto& [name, addr] : fleet_b.udp()->LocalMap()) {
    fleet_a.RegisterPeer(name, addr);
  }
  printf("landmark: %s (%s)\njoiner:   %s (%s)\n", landmark.addr().c_str(),
         fleet_a.udp()->SocketAddrOf(landmark.addr()).c_str(), joiner.addr().c_str(),
         fleet_b.udp()->SocketAddrOf(joiner.addr()).c_str());

  p2::ChordConfig fast;
  fast.stabilize_period = 0.2;
  fast.ping_period = 0.2;
  fast.finger_period = 0.4;
  fast.ping_timeout = 0.15;
  p2::ChordConfig joiner_cfg = fast;
  joiner_cfg.landmark = landmark.addr();
  std::string error;
  if (!InstallChord(landmark.raw(), fast, &error) ||
      !InstallChord(joiner.raw(), joiner_cfg, &error)) {
    fprintf(stderr, "chord install failed: %s\n", error.c_str());
    return 1;
  }
  printf("\nforming the ring over UDP (3 wall seconds)...\n");
  PumpBoth(&fleet_a, &fleet_b, 3.0);
  printf("  landmark: succ=%s pred=%s\n", p2::BestSuccAddr(landmark.raw()).c_str(),
         p2::PredAddr(landmark.raw()).c_str());
  printf("  joiner:   succ=%s pred=%s\n", p2::BestSuccAddr(joiner.raw()).c_str(),
         p2::PredAddr(joiner.raw()).c_str());

  p2::DhtConfig dc;
  if (!InstallDht(landmark.raw(), dc, &error) || !InstallDht(joiner.raw(), dc, &error)) {
    fprintf(stderr, "dht install failed: %s\n", error.c_str());
    return 1;
  }
  std::string got;
  joiner.OnEvent("dhtGetResp", [&](const p2::TupleRef& t) {
    got = t->field(4).Truthy() ? t->field(2).AsString() : "(miss)";
  });
  printf("\nput(\"greeting\", \"hello over UDP\") at the landmark...\n");
  DhtPut(landmark.raw(), "greeting", "hello over UDP", 1);
  PumpBoth(&fleet_a, &fleet_b, 1.0);
  printf("get(\"greeting\") at the joiner...\n");
  DhtGet(joiner.raw(), "greeting", 2);
  PumpBoth(&fleet_a, &fleet_b, 1.0);
  printf("  -> %s\n", got.c_str());
  p2::UdpDriver* da = fleet_a.udp();
  p2::UdpDriver* db = fleet_b.udp();
  printf("\ndatagrams: process A sent %llu / received %llu (%.2f envelopes per "
         "datagram), process B sent %llu / received %llu (%.2f)\n",
         static_cast<unsigned long long>(da->datagrams_sent()),
         static_cast<unsigned long long>(da->datagrams_received()), da->batch_ratio(),
         static_cast<unsigned long long>(db->datagrams_sent()),
         static_cast<unsigned long long>(db->datagrams_received()), db->batch_ratio());
  printf("done.\n");
  return 0;
}
