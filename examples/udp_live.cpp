// udp_live: the same engine and OverLog programs, running over REAL localhost UDP
// sockets in wall-clock time (P2 was a deployable system, not just a simulator).
//
// Two Network instances stand in for two OS processes; they can only communicate
// through the sockets. A two-node Chord ring forms in real seconds and the DHT layer
// serves a put/get across the wire. Takes ~5 wall seconds.
//
// Usage:  ./build/examples/udp_live

#include <cstdio>

#include "src/apps/dht.h"
#include "src/chord/chord.h"
#include "src/net/udp_driver.h"

namespace {

void PumpBoth(p2::UdpDriver* a, p2::UdpDriver* b, double wall_seconds) {
  for (int i = 0; i < wall_seconds / 0.02; ++i) {
    a->RunFor(0.01);
    b->RunFor(0.01);
  }
}

}  // namespace

int main() {
  p2::Network net_a;
  p2::Network net_b;
  p2::UdpDriver driver_a(&net_a);
  p2::UdpDriver driver_b(&net_b);
  p2::NodeOptions opts;
  opts.introspection = false;
  std::string error;
  p2::Node* landmark = driver_a.CreateNode(0, opts, &error);
  p2::Node* joiner = driver_b.CreateNode(0, opts, &error);
  if (landmark == nullptr || joiner == nullptr) {
    fprintf(stderr, "socket setup failed: %s\n", error.c_str());
    return 1;
  }
  printf("landmark: %s\njoiner:   %s\n", landmark->addr().c_str(),
         joiner->addr().c_str());

  p2::ChordConfig fast;
  fast.stabilize_period = 0.2;
  fast.ping_period = 0.2;
  fast.finger_period = 0.4;
  fast.ping_timeout = 0.15;
  p2::ChordConfig joiner_cfg = fast;
  joiner_cfg.landmark = landmark->addr();
  if (!InstallChord(landmark, fast, &error) ||
      !InstallChord(joiner, joiner_cfg, &error)) {
    fprintf(stderr, "chord install failed: %s\n", error.c_str());
    return 1;
  }
  printf("\nforming the ring over UDP (3 wall seconds)...\n");
  PumpBoth(&driver_a, &driver_b, 3.0);
  printf("  landmark: succ=%s pred=%s\n", p2::BestSuccAddr(landmark).c_str(),
         p2::PredAddr(landmark).c_str());
  printf("  joiner:   succ=%s pred=%s\n", p2::BestSuccAddr(joiner).c_str(),
         p2::PredAddr(joiner).c_str());

  p2::DhtConfig dc;
  if (!InstallDht(landmark, dc, &error) || !InstallDht(joiner, dc, &error)) {
    fprintf(stderr, "dht install failed: %s\n", error.c_str());
    return 1;
  }
  std::string got;
  joiner->SubscribeEvent("dhtGetResp", [&](const p2::TupleRef& t) {
    got = t->field(4).Truthy() ? t->field(2).AsString() : "(miss)";
  });
  printf("\nput(\"greeting\", \"hello over UDP\") at the landmark...\n");
  DhtPut(landmark, "greeting", "hello over UDP", 1);
  PumpBoth(&driver_a, &driver_b, 1.0);
  printf("get(\"greeting\") at the joiner...\n");
  DhtGet(joiner, "greeting", 2);
  PumpBoth(&driver_a, &driver_b, 1.0);
  printf("  -> %s\n", got.c_str());
  printf("\ndatagrams: process A sent %llu / received %llu, "
         "process B sent %llu / received %llu\n",
         static_cast<unsigned long long>(driver_a.datagrams_sent()),
         static_cast<unsigned long long>(driver_a.datagrams_received()),
         static_cast<unsigned long long>(driver_b.datagrams_sent()),
         static_cast<unsigned long long>(driver_b.datagrams_received()));
  printf("done.\n");
  return 0;
}
