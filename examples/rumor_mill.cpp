// rumor_mill: the paper's §3.4 generality claim, live — a second, non-Chord overlay
// (epidemic rumor dissemination) monitored with the SAME tooling:
//  * the unchanged Chandy-Lamport snapshot program freezes the overlay's spread state;
//  * the generic execution profiler decomposes a rumor's multi-hop propagation latency;
//  * coverage is a continuous aggregate maintained by the overlay itself.
//
// Usage:  ./build/examples/rumor_mill

#include <cstdio>
#include <vector>

#include "src/mon/profiler.h"
#include "src/mon/snapshot.h"
#include "src/net/fleet.h"
#include "src/overlays/flood.h"

int main() {
  p2::FleetConfig config;
  config.latency = 0.015;
  config.jitter = 0.005;
  config.seed = 500;
  config.node_defaults.tracing = true;  // so the profiler can explain propagation
  config.node_defaults.introspection = false;
  p2::Fleet fleet(config);

  // A 12-node "double ring with chords" membership graph.
  const int kNodes = 12;
  std::vector<p2::NodeHandle> nodes;
  for (int i = 0; i < kNodes; ++i) {
    p2::NodeHandle node = fleet.AddNode("g" + std::to_string(i));
    std::string error;
    if (!node.Install(
            [](p2::Node* n, std::string* e) {
              return InstallFlood(n, p2::FloodConfig(), e);
            },
            &error)) {
      fprintf(stderr, "install failed: %s\n", error.c_str());
      return 1;
    }
    nodes.push_back(node);
  }
  auto edge = [&](int a, int b) {
    std::string addr_a = nodes[a].addr();
    std::string addr_b = nodes[b].addr();
    nodes[a].Call([&](p2::Node* n) { AddMember(n, addr_b); });
    nodes[b].Call([&](p2::Node* n) { AddMember(n, addr_a); });
  };
  for (int i = 0; i < kNodes; ++i) {
    edge(i, (i + 1) % kNodes);  // ring
    if (i % 3 == 0) {
      edge(i, (i + kNodes / 2) % kNodes);  // a few chords
    }
  }
  fleet.RunFor(1.0);

  // Monitoring: coverage printout at the origin, profiler everywhere.
  p2::NodeHandle origin = nodes[0];
  origin.OnEvent("coverage", [&](const p2::TupleRef& t) {
    printf("  [%7.3fs] coverage of rumor %s: %s/%d nodes\n", fleet.Now(),
           t->field(1).ToString().c_str(), t->field(2).ToString().c_str(), kNodes);
  });
  for (p2::NodeHandle node : nodes) {
    p2::ProfilerConfig prof;
    prof.target_rule = "fl0";  // rumor origination
    std::string error;
    if (!node.Install(
            [&](p2::Node* n, std::string* e) { return InstallProfiler(n, prof, e); },
            &error)) {
      fprintf(stderr, "profiler install failed: %s\n", error.c_str());
      return 1;
    }
    std::string addr = node.addr();
    node.OnEvent("report", [addr](const p2::TupleRef& t) {
      printf("\n  propagation latency decomposition (reported at %s):\n", addr.c_str());
      printf("    in rule strands : %8.3f ms\n", t->field(2).ToDouble() * 1000);
      printf("    on the network  : %8.3f ms\n", t->field(3).ToDouble() * 1000);
      printf("    queued locally  : %8.3f ms\n", t->field(4).ToDouble() * 1000);
    });
  }

  printf("== publishing rumor 777 at %s ==\n", origin.addr().c_str());
  struct Cap {
    p2::TupleRef tuple;
    double at = -1;
  } cap;
  p2::NodeHandle far_node = nodes[kNodes / 2 + 1];
  far_node.OnEvent("rumorFresh", [&](const p2::TupleRef& t) {
    if (cap.at < 0) {
      cap.tuple = t;
      cap.at = fleet.Now();
    }
  });
  origin.Call([](p2::Node* n) {
    PublishRumor(n, 777, "the paper's techniques generalize");
  });
  fleet.RunFor(3.0);

  printf("\n== rumor acceptance across the overlay ==\n");
  for (p2::NodeHandle node : nodes) {
    printf("  %-4s has rumor: %s\n", node.addr().c_str(),
           HasRumor(node.raw(), 777) ? "yes" : "NO");
  }

  if (cap.at >= 0) {
    printf("\n== tracing the copy that reached %s backwards to the origin ==\n",
           far_node.addr().c_str());
    far_node.Call([&](p2::Node* n) { StartTrace(n, cap.tuple, cap.at); });
    fleet.RunFor(2.0);
  }

  printf("\n== consistent snapshot of the overlay (unchanged snapshot program) ==\n");
  for (size_t i = 0; i < nodes.size(); ++i) {
    p2::SnapshotConfig sc;
    sc.snap_period = 5.0;
    sc.initiator = (i == 0);
    sc.chord_state = false;
    sc.extra_captures = {{"rumorSeen", 1}, {"member", 1}};
    std::string error;
    if (!nodes[i].Install(
            [&](p2::Node* n, std::string* e) { return InstallSnapshot(n, sc, e); },
            &error)) {
      fprintf(stderr, "snapshot install failed: %s\n", error.c_str());
      return 1;
    }
  }
  fleet.RunFor(12.0);
  for (p2::NodeHandle node : nodes) {
    printf("  %-4s snapshot %lld done; captured rumors: %zu, membership edges: %zu\n",
           node.addr().c_str(),
           static_cast<long long>(p2::LatestDoneSnapshot(node.raw())),
           node.Count("snapCap_rumorSeen"), node.Count("snapCap_member"));
  }
  printf("\ndone.\n");
  return 0;
}
