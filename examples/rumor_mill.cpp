// rumor_mill: the paper's §3.4 generality claim, live — a second, non-Chord overlay
// (epidemic rumor dissemination) monitored with the SAME tooling:
//  * the unchanged Chandy-Lamport snapshot program freezes the overlay's spread state;
//  * the generic execution profiler decomposes a rumor's multi-hop propagation latency;
//  * coverage is a continuous aggregate maintained by the overlay itself.
//
// Usage:  ./build/examples/rumor_mill

#include <cstdio>
#include <vector>

#include "src/mon/profiler.h"
#include "src/mon/snapshot.h"
#include "src/net/network.h"
#include "src/overlays/flood.h"

int main() {
  p2::NetworkConfig net_config;
  net_config.latency = 0.015;
  net_config.jitter = 0.005;
  p2::Network net(net_config);

  // A 12-node "double ring with chords" membership graph.
  const int kNodes = 12;
  std::vector<p2::Node*> nodes;
  for (int i = 0; i < kNodes; ++i) {
    p2::NodeOptions opts;
    opts.tracing = true;  // so the profiler can explain propagation
    opts.introspection = false;
    opts.seed = 500 + i;
    p2::Node* node = net.AddNode("g" + std::to_string(i), opts);
    std::string error;
    if (!InstallFlood(node, p2::FloodConfig(), &error)) {
      fprintf(stderr, "install failed: %s\n", error.c_str());
      return 1;
    }
    nodes.push_back(node);
  }
  auto edge = [&](int a, int b) {
    AddMember(nodes[a], nodes[b]->addr());
    AddMember(nodes[b], nodes[a]->addr());
  };
  for (int i = 0; i < kNodes; ++i) {
    edge(i, (i + 1) % kNodes);  // ring
    if (i % 3 == 0) {
      edge(i, (i + kNodes / 2) % kNodes);  // a few chords
    }
  }
  net.RunFor(1.0);

  // Monitoring: coverage printout at the origin, profiler everywhere.
  p2::Node* origin = nodes[0];
  origin->SubscribeEvent("coverage", [&](const p2::TupleRef& t) {
    printf("  [%7.3fs] coverage of rumor %s: %s/%d nodes\n", net.Now(),
           t->field(1).ToString().c_str(), t->field(2).ToString().c_str(), kNodes);
  });
  for (p2::Node* node : nodes) {
    p2::ProfilerConfig prof;
    prof.target_rule = "fl0";  // rumor origination
    std::string error;
    if (!InstallProfiler(node, prof, &error)) {
      fprintf(stderr, "profiler install failed: %s\n", error.c_str());
      return 1;
    }
    node->SubscribeEvent("report", [&, node](const p2::TupleRef& t) {
      printf("\n  propagation latency decomposition (reported at %s):\n",
             node->addr().c_str());
      printf("    in rule strands : %8.3f ms\n", t->field(2).ToDouble() * 1000);
      printf("    on the network  : %8.3f ms\n", t->field(3).ToDouble() * 1000);
      printf("    queued locally  : %8.3f ms\n", t->field(4).ToDouble() * 1000);
    });
  }

  printf("== publishing rumor 777 at %s ==\n", origin->addr().c_str());
  struct Cap {
    p2::TupleRef tuple;
    double at = -1;
  } cap;
  p2::Node* far_node = nodes[kNodes / 2 + 1];
  far_node->SubscribeEvent("rumorFresh", [&](const p2::TupleRef& t) {
    if (cap.at < 0) {
      cap.tuple = t;
      cap.at = net.Now();
    }
  });
  PublishRumor(origin, 777, "the paper's techniques generalize");
  net.RunFor(3.0);

  printf("\n== rumor acceptance across the overlay ==\n");
  for (p2::Node* node : nodes) {
    printf("  %-4s has rumor: %s\n", node->addr().c_str(),
           HasRumor(node, 777) ? "yes" : "NO");
  }

  if (cap.at >= 0) {
    printf("\n== tracing the copy that reached %s backwards to the origin ==\n",
           far_node->addr().c_str());
    StartTrace(far_node, cap.tuple, cap.at);
    net.RunFor(2.0);
  }

  printf("\n== consistent snapshot of the overlay (unchanged snapshot program) ==\n");
  for (size_t i = 0; i < nodes.size(); ++i) {
    p2::SnapshotConfig sc;
    sc.snap_period = 5.0;
    sc.initiator = (i == 0);
    sc.chord_state = false;
    sc.extra_captures = {{"rumorSeen", 1}, {"member", 1}};
    std::string error;
    if (!InstallSnapshot(nodes[i], sc, &error)) {
      fprintf(stderr, "snapshot install failed: %s\n", error.c_str());
      return 1;
    }
  }
  net.RunFor(12.0);
  for (p2::Node* node : nodes) {
    printf("  %-4s snapshot %lld done; captured rumors: %zu, membership edges: %zu\n",
           node->addr().c_str(),
           static_cast<long long>(p2::LatestDoneSnapshot(node)),
           node->TableContents("snapCap_rumorSeen").size(),
           node->TableContents("snapCap_member").size());
  }
  printf("\ndone.\n");
  return 0;
}
