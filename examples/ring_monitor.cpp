// ring_monitor: on-line invariant checking on a live Chord ring (paper §3.1).
//
// Installs — while the system runs — the paper's ring well-formedness detectors
// (active probes rp1-rp3 and the passive check rp4) and the ID-ordering machinery
// (opportunistic ri1 and the token traversal ri2-ri6), then injects two faults and
// shows each detector firing.
//
// Usage:  ./build/examples/ring_monitor

#include <cstdio>

#include "src/mon/ordering.h"
#include "src/mon/ring_checks.h"
#include "src/testbed/testbed.h"

int main() {
  p2::TestbedConfig config;
  config.num_nodes = 12;
  p2::ChordTestbed bed(config);
  printf("forming a 12-node ring...\n");
  bed.Run(100);
  printf("ring correct: %s\n", bed.RingIsCorrect() ? "yes" : "no");

  // Deploy the monitors piecemeal, on-line — no restart, no recompilation.
  printf("\ninstalling ring checks (rp1-rp4) and ordering checks (ri1-ri8) fleet-wide\n");
  for (p2::NodeHandle node : bed.handles()) {
    p2::RingCheckConfig rc;
    rc.probe_period = 2.0;
    std::string error;
    if (!node.Install(
            [&](p2::Node* n, std::string* e) {
              return InstallRingChecks(n, rc, e) && InstallOrderingChecks(n, e);
            },
            &error)) {
      fprintf(stderr, "install failed: %s\n", error.c_str());
      return 1;
    }
    std::string addr = node.addr();
    node.OnEvent("inconsistentPred", [addr, &bed](const p2::TupleRef& t) {
      printf("  [%7.2fs] %s: inconsistentPred%s\n", bed.network().Now(),
             addr.c_str(), t->ToString().substr(t->name().size()).c_str());
    });
    node.OnEvent("closerID", [addr, &bed](const p2::TupleRef& t) {
      printf("  [%7.2fs] %s: closerID — unknown node %s between pred and succ\n",
             bed.network().Now(), addr.c_str(), t->field(1).ToString().c_str());
    });
  }

  printf("\n-- 20 quiet seconds on the healthy ring (no alarms expected) --\n");
  bed.Run(20);

  printf("\n-- traversal check on the healthy ring --\n");
  p2::NodeHandle initiator = bed.handle(0);
  initiator.OnEvent("orderingOk", [&](const p2::TupleRef& t) {
    printf("  [%7.2fs] traversal %s completed: %s wrap-around(s), %s hops — ring OK\n",
           bed.network().Now(), t->field(1).ToString().c_str(),
           t->field(2).ToString().c_str(), t->field(3).ToString().c_str());
  });
  initiator.OnEvent("orderingProblem", [&](const p2::TupleRef& t) {
    printf("  [%7.2fs] ORDERING PROBLEM: %s wrap-arounds (expected 1)\n",
           bed.network().Now(), t->field(4).ToString().c_str());
  });
  initiator.Call([](p2::Node* n) { StartRingTraversal(n, 1); });
  bed.Run(5);

  printf("\n-- fault 1: corrupting n4's predecessor pointer --\n");
  p2::NodeHandle victim = bed.handle(4);
  p2::NodeHandle wrong;
  for (p2::NodeHandle candidate : bed.handles()) {
    if (candidate.addr() != victim.addr() &&
        candidate.addr() != p2::PredAddr(victim.raw()) &&
        candidate.addr() != p2::BestSuccAddr(victim.raw())) {
      wrong = candidate;
      break;
    }
  }
  std::string true_pred = p2::PredAddr(victim.raw());
  // Re-inject across several phases: Chord heals the pointer within a notify round,
  // so a single corruption can fall entirely between two probes.
  for (int i = 0; i < 4; ++i) {
    victim.Inject(p2::Tuple::Make(
        "pred", {p2::Value::Str(victim.addr()), p2::Value::Id(ChordId(wrong.raw())),
                 p2::Value::Str(wrong.addr())}));
    bed.Run(1.3);
  }
  bed.Run(6);
  printf("   (corrupted to %s; Chord has healed the pointer by now: pred=%s, was %s)\n",
         wrong.addr().c_str(), p2::PredAddr(victim.raw()).c_str(), true_pred.c_str());

  printf("\n-- fault 2: a lookup response advertising a node nobody knows --\n");
  p2::NodeHandle observer = bed.handle(7);
  uint64_t ghost = ChordId(observer.raw()) - 1;
  observer.Inject(p2::Tuple::Make(
      "lookupResults",
      {p2::Value::Str(observer.addr()), p2::Value::Id(ghost), p2::Value::Id(ghost),
       p2::Value::Str("ghost:1234"), p2::Value::Id(777),
       p2::Value::Str("ghost:1234")}));
  bed.Run(3);

  printf("\ndone.\n");
  return 0;
}
