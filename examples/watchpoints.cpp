// watchpoints: persistent distributed watchpoints and higher-order tracing
// (paper §1.3 usage scenarios).
//
// Shows the methodology the paper motivates:
//  * a continuous query left in place as an on-line regression test (a watchpoint on
//    table growth via the introspection tables);
//  * a trigger that reacts to an alarm by installing MORE monitoring at runtime —
//    "higher-order automatic tracing": the system reacts to events by deploying new
//    queries about them.
//
// Usage:  ./build/examples/watchpoints

#include <cstdio>

#include "src/mon/ring_checks.h"
#include "src/testbed/testbed.h"

int main() {
  p2::TestbedConfig config;
  config.num_nodes = 6;
  p2::ChordTestbed bed(config);
  printf("forming a 6-node ring...\n");
  bed.Run(80);

  // Watchpoint 1: a standing query over the introspection tables — alarm if any
  // table on the node holds more than 60 rows (a leak detector).
  p2::NodeHandle node = bed.handle(2);
  std::string error;
  if (!node.Load(
          "materialize(auditLog, infinity, 1000, keys(1, 2)).\n"
          "w1 tableGrowth@N(Name, C) :- periodic@N(E, 2), sysTable@N(Name, L, M, C), "
          "C > 60, f_prefix(Name, \"sys\") == false.",
          &error)) {
    fprintf(stderr, "load failed: %s\n", error.c_str());
    return 1;
  }
  node.OnEvent("tableGrowth", [&](const p2::TupleRef& t) {
    printf("  [%7.2fs] WATCHPOINT: table %s holds %s rows\n", bed.network().Now(),
           t->field(1).ToString().c_str(), t->field(2).ToString().c_str());
  });

  // Watchpoint 2: higher-order reaction — when the ring check alarms, install the
  // (more expensive) active probing rules on the spot.
  p2::RingCheckConfig passive_only;
  passive_only.active = false;
  if (!node.Install(
          [&](p2::Node* n, std::string* e) {
            return InstallRingChecks(n, passive_only, e);
          },
          &error)) {
    fprintf(stderr, "install failed: %s\n", error.c_str());
    return 1;
  }
  bool escalated = false;
  // The reactive installation runs inside the alarm callback, i.e. on the shard
  // executing this node — installing on the local node directly is safe, and peers
  // are reached through their own schedulers via Post.
  node.OnEvent("inconsistentPred", [&, node](const p2::TupleRef&) mutable {
    if (escalated) {
      return;
    }
    escalated = true;
    printf("  [%7.2fs] passive alarm fired -> escalating: installing active probes\n",
           bed.network().Now());
    // The same API the operator would use, driven by the alarm itself. (rp1-rp3 need
    // unique rule ids; the passive program used rp4.)
    p2::RingCheckConfig active_only;
    active_only.passive = false;
    active_only.probe_period = 1.0;
    for (p2::NodeHandle peer : bed.handles()) {
      if (peer.addr() == node.addr()) {
        continue;
      }
      peer.Post(bed.network().Now(), [active_only](p2::Node& n) {
        std::string err;
        if (!InstallRingChecks(&n, active_only, &err)) {
          printf("    (peer install failed: %s)\n", err.c_str());
        }
      });
    }
    std::string err;
    if (!node.Install(
            [&](p2::Node* n, std::string* e) {
              return InstallRingChecks(n, active_only, e);
            },
            &err)) {
      printf("    (local install failed: %s)\n", err.c_str());
    }
  });

  printf("\n-- quiet period --\n");
  bed.Run(10);

  printf("\n-- fault: flooding a table to trip the leak watchpoint --\n");
  for (int i = 0; i < 70; ++i) {
    node.Inject(p2::Tuple::Make(
        "auditLog", {p2::Value::Str(node.addr()), p2::Value::Int(i)}));
  }
  bed.Run(5);

  printf("\n-- fault: corrupting the predecessor to trigger the escalation --\n");
  p2::NodeHandle wrong = bed.handle(5);
  node.Inject(p2::Tuple::Make(
      "pred", {p2::Value::Str(node.addr()), p2::Value::Id(ChordId(wrong.raw())),
               p2::Value::Str(wrong.addr())}));
  bed.Run(10);
  printf("\nescalation happened: %s\n", escalated ? "yes" : "no");
  printf("done.\n");
  return 0;
}
