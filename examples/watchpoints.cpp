// watchpoints: persistent distributed watchpoints and higher-order tracing
// (paper §1.3 usage scenarios).
//
// Shows the methodology the paper motivates:
//  * a continuous query left in place as an on-line regression test (a watchpoint on
//    table growth via the introspection tables);
//  * a trigger that reacts to an alarm by installing MORE monitoring at runtime —
//    "higher-order automatic tracing": the system reacts to events by deploying new
//    queries about them.
//
// Usage:  ./build/examples/watchpoints

#include <cstdio>

#include "src/mon/ring_checks.h"
#include "src/testbed/testbed.h"

int main() {
  p2::TestbedConfig config;
  config.num_nodes = 6;
  p2::ChordTestbed bed(config);
  printf("forming a 6-node ring...\n");
  bed.Run(80);

  // Watchpoint 1: a standing query over the introspection tables — alarm if any
  // table on the node holds more than 60 rows (a leak detector).
  p2::Node* node = bed.node(2);
  std::string error;
  if (!node->LoadProgram(
          "materialize(auditLog, infinity, 1000, keys(1, 2)).\n"
          "w1 tableGrowth@N(Name, C) :- periodic@N(E, 2), sysTable@N(Name, L, M, C), "
          "C > 60, f_prefix(Name, \"sys\") == false.",
          &error)) {
    fprintf(stderr, "load failed: %s\n", error.c_str());
    return 1;
  }
  node->SubscribeEvent("tableGrowth", [&](const p2::TupleRef& t) {
    printf("  [%7.2fs] WATCHPOINT: table %s holds %s rows\n", bed.network().Now(),
           t->field(1).ToString().c_str(), t->field(2).ToString().c_str());
  });

  // Watchpoint 2: higher-order reaction — when the ring check alarms, install the
  // (more expensive) active probing rules on the spot.
  p2::RingCheckConfig passive_only;
  passive_only.active = false;
  if (!InstallRingChecks(node, passive_only, &error)) {
    fprintf(stderr, "install failed: %s\n", error.c_str());
    return 1;
  }
  bool escalated = false;
  node->SubscribeEvent("inconsistentPred", [&](const p2::TupleRef&) {
    if (escalated) {
      return;
    }
    escalated = true;
    printf("  [%7.2fs] passive alarm fired -> escalating: installing active probes\n",
           bed.network().Now());
    // The reactive installation: the same API the operator would use, driven by the
    // alarm itself. (rp1-rp3 need unique rule ids; the passive program used rp4.)
    p2::RingCheckConfig active_only;
    active_only.passive = false;
    active_only.probe_period = 1.0;
    std::string err;
    for (p2::Node* peer : bed.nodes()) {
      if (peer == node) {
        continue;
      }
      p2::RingCheckConfig peer_cfg = active_only;
      if (!InstallRingChecks(peer, peer_cfg, &err)) {
        printf("    (peer install failed: %s)\n", err.c_str());
      }
    }
    if (!InstallRingChecks(node, active_only, &err)) {
      printf("    (local install failed: %s)\n", err.c_str());
    }
  });

  printf("\n-- quiet period --\n");
  bed.Run(10);

  printf("\n-- fault: flooding a table to trip the leak watchpoint --\n");
  for (int i = 0; i < 70; ++i) {
    node->InjectEvent(p2::Tuple::Make(
        "auditLog", {p2::Value::Str(node->addr()), p2::Value::Int(i)}));
  }
  bed.Run(5);

  printf("\n-- fault: corrupting the predecessor to trigger the escalation --\n");
  p2::Node* wrong = bed.node(5);
  node->InjectEvent(p2::Tuple::Make(
      "pred", {p2::Value::Str(node->addr()), p2::Value::Id(ChordId(wrong)),
               p2::Value::Str(wrong->addr())}));
  bed.Run(10);
  printf("\nescalation happened: %s\n", escalated ? "yes" : "no");
  printf("done.\n");
  return 0;
}
