// oscillation_hunt: detecting the "recycled dead neighbor" bug pattern (paper §3.1.3).
//
// A buggy Chord implementation forgets that a neighbor died and keeps re-adopting it
// from gossip. We simulate the pattern against a live ring and watch the three
// detector tiers fire: single oscillations (os1/os2), repeat oscillations (os3/os4),
// and the collaborative "chaotic" verdict (os5-os9).
//
// Usage:  ./build/examples/oscillation_hunt

#include <cstdio>

#include "src/mon/oscillation.h"
#include "src/testbed/testbed.h"

int main() {
  p2::TestbedConfig config;
  config.num_nodes = 8;
  p2::ChordTestbed bed(config);
  printf("forming an 8-node ring...\n");
  bed.Run(100);

  printf("installing oscillation detectors fleet-wide "
         "(window 120 s, check 5 s, repeat threshold 3)\n\n");
  for (p2::NodeHandle node : bed.handles()) {
    p2::OscillationConfig oc;
    oc.check_period = 5.0;
    std::string error;
    if (!node.Install(
            [&](p2::Node* n, std::string* e) {
              return InstallOscillationChecks(n, oc, e);
            },
            &error)) {
      fprintf(stderr, "install failed: %s\n", error.c_str());
      return 1;
    }
    std::string addr = node.addr();
    node.OnEvent("repeatOscill", [addr, &bed](const p2::TupleRef& t) {
      printf("  [%7.2fs] %s: REPEAT oscillator %s\n", bed.network().Now(),
             addr.c_str(), t->field(1).ToString().c_str());
    });
    node.OnEvent("chaotic", [addr, &bed](const p2::TupleRef& t) {
      printf("  [%7.2fs] %s: node %s declared CHAOTIC by the neighborhood\n",
             bed.network().Now(), addr.c_str(), t->field(1).ToString().c_str());
    });
  }

  // The oscillating fault: several ring neighbors keep receiving a dead node
  // ("zombie:1") through gossip after having declared it faulty.
  printf("-- injecting the recycled-dead-neighbor pattern at n1, n2, n3, n4, n5 --\n");
  const char* zombie = "zombie:1";
  for (int round = 0; round < 4; ++round) {
    for (int i = 1; i <= 5; ++i) {
      p2::NodeHandle node = bed.handle(i);
      node.Inject(p2::Tuple::Make(
          "faultyNode", {p2::Value::Str(node.addr()), p2::Value::Str(zombie),
                         p2::Value::Double(bed.network().Now())}));
      node.Inject(p2::Tuple::Make(
          "sendPred", {p2::Value::Str(node.addr()), p2::Value::Id(4242),
                       p2::Value::Str(zombie)}));
    }
    bed.Run(2.5);
  }
  bed.Run(20);

  printf("\n== oscillation history per node ==\n");
  for (p2::NodeHandle node : bed.handles()) {
    size_t own = node.Count("oscill");
    size_t heard = node.Count("nbrOscill");
    printf("  %-4s oscillations observed: %zu, neighborhood reports held: %zu\n",
           node.addr().c_str(), own, heard);
  }
  printf("\ndone.\n");
  return 0;
}
