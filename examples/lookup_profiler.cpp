// lookup_profiler: execution tracing + declarative latency forensics (paper §3.2).
//
// Runs a traced Chord ring with consistency probes, captures a probe's lookup
// response, and walks its execution trace *backwards across the network* using the
// paper's ep1-ep6 rules, decomposing the end-to-end latency into time inside rule
// strands, time on the network, and time queued between rules.
//
// Usage:  ./build/examples/lookup_profiler

#include <cstdio>

#include "src/mon/consistency.h"
#include "src/mon/profiler.h"
#include "src/testbed/testbed.h"

int main() {
  p2::TestbedConfig config;
  config.num_nodes = 8;
  config.fleet.node_defaults.tracing = true;  // the diagnosable system: execution logging on
  // Model 2 ms of local queueing between rule strands so the LocalT component of the
  // decomposition is visible (instantaneous by default in a discrete-event engine).
  config.fleet.node_defaults.local_queue_delay = 0.002;
  p2::ChordTestbed bed(config);
  printf("forming an 8-node ring with execution tracing enabled...\n");
  bed.Run(100);
  printf("ring correct: %s\n", bed.RingIsCorrect() ? "yes" : "no");

  p2::NodeHandle prober = bed.handle(3);
  p2::ConsistencyConfig cc;
  cc.probe_period = 5.0;
  cc.tally_period = 60.0;
  std::string error;
  if (!prober.Install(
          [&](p2::Node* n, std::string* e) {
            return InstallConsistencyProbes(n, cc, e);
          },
          &error)) {
    fprintf(stderr, "install failed: %s\n", error.c_str());
    return 1;
  }
  p2::ProfilerConfig pc;
  pc.target_rule = "cs2";  // consistency lookups originate at rule cs2
  for (p2::NodeHandle node : bed.handles()) {
    if (!node.Install(
            [&](p2::Node* n, std::string* e) { return InstallProfiler(n, pc, e); },
            &error)) {
      fprintf(stderr, "install failed: %s\n", error.c_str());
      return 1;
    }
    std::string addr = node.addr();
    node.OnEvent("report", [addr, &bed](const p2::TupleRef& t) {
      double rule_t = t->field(2).ToDouble() * 1000;
      double net_t = t->field(3).ToDouble() * 1000;
      double local_t = t->field(4).ToDouble() * 1000;
      printf("\n  [%7.2fs] latency decomposition (report at %s):\n",
             bed.network().Now(), addr.c_str());
      printf("      in rule strands : %8.3f ms\n", rule_t);
      printf("      on the network  : %8.3f ms\n", net_t);
      printf("      queued locally  : %8.3f ms\n", local_t);
      printf("      total explained : %8.3f ms\n", rule_t + net_t + local_t);
    });
  }

  // Capture the first consistency lookup response and trace it backwards.
  struct Cap {
    p2::TupleRef tuple;
    double at = -1;
  } cap;
  prober.OnEvent("lookupResults", [&, prober](const p2::TupleRef& t) mutable {
    if (cap.at >= 0) {
      return;
    }
    for (const p2::TupleRef& row : prober.Query("conLookupTable")) {
      if (row->arity() >= 3 && row->field(2) == t->field(4)) {
        cap.tuple = t;
        cap.at = bed.network().Now();
        return;
      }
    }
  });
  printf("\nwaiting for a consistency probe to fire...\n");
  bed.Run(8);
  if (cap.at < 0) {
    fprintf(stderr, "no consistency lookup observed\n");
    return 1;
  }
  printf("captured response %s at t=%.3f; tracing backwards...\n",
         cap.tuple->ToString().c_str(), cap.at);
  prober.Call([&](p2::Node* n) { StartTrace(n, cap.tuple, cap.at); });
  bed.Run(5);

  // Show some of the raw provenance the walk consumed.
  printf("\n== sample of the prober's ruleExec causality table ==\n");
  int shown = 0;
  for (const p2::TupleRef& t : prober.Query("ruleExec")) {
    if (shown++ >= 8) {
      break;
    }
    printf("  rule %-6s cause#%-6s -> effect#%-6s  (%s cause)\n",
           t->field(1).ToString().c_str(), t->field(2).ToString().c_str(),
           t->field(3).ToString().c_str(),
           t->field(6).Truthy() ? "event" : "precondition");
  }
  printf("  ... %zu rows total\n", prober.Count("ruleExec"));
  printf("\ndone.\n");
  return 0;
}
