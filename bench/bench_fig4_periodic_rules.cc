// Reproduces Figure 4: CPU and memory utilization for an increasing number of
// periodic monitoring rules (period 1 s) installed on a Chord node.
//
//   result@NAddr() :- periodic@NAddr(E, 1).
//
// The paper reports CPU utilization growing roughly proportionally with the rule
// count (≈1% baseline to ≈4.5% at 250 rules) and memory stabilizing ≈70% above the
// Chord baseline (intermediate-tuple churn). The shape to hold here: linear CPU
// growth in N; memory/live-tuple growth modest and flat-ish in N.

#include <cstdio>

#include "bench/bench_common.h"
#include "src/common/strings.h"

namespace p2 {
namespace {

// Each copy gets its own rule id and its own timer, exactly as in the paper.
std::string PeriodicRules(int n) {
  std::string program;
  for (int i = 0; i < n; ++i) {
    program += StrFormat("syn%d result@NAddr() :- periodic@NAddr(E, 1).\n", i);
  }
  return program;
}

void Main() {
  printf("=== Figure 4: periodic monitoring rules (period 1 s) ===\n");
  PrintHeader("21-node P2-Chord; rules installed on the last-joined node",
              "#rules");
  BenchArtifact artifact("fig4_periodic_rules");
  for (int n : {0, 50, 100, 150, 200, 250}) {
    ChordTestbed bed(PaperTestbed());
    bed.Run(40);
    Node* target = bed.last_node();
    if (n > 0) {
      std::string error;
      if (!target->LoadProgram(PeriodicRules(n), &error)) {
        fprintf(stderr, "install failed: %s\n", error.c_str());
        return;
      }
    }
    bed.Run(5);  // let the timers arm
    WindowMetrics m = MeasureWindow(&bed, target, 120.0);
    PrintRow(StrFormat("%d", n), m);
    artifact.Add("periodic", StrFormat("%d", n), n, m);
  }
  artifact.Write();
}

}  // namespace
}  // namespace p2

int main() {
  p2::Main();
  return 0;
}
