// Engine microbenchmarks (not in the paper): the cost of the building blocks the
// figure-level benchmarks are made of, plus ablations for design choices called out
// in DESIGN.md §6 (tracing taps on/off, continuous-aggregate recomputation, the
// metrics registry on/off).
//
// Unless the caller passes --benchmark_out, results are also written to
// BENCH_micro_engine.json (Google Benchmark's JSON format) to match the
// BENCH_<name>.json artifacts the figure-level benches produce.

#include <benchmark/benchmark.h>

#include <cstring>
#include <vector>

#include "src/chord/chord.h"
#include "src/lang/parser.h"
#include "src/net/network.h"
#include "src/net/wire.h"

namespace p2 {
namespace {

TupleRef SampleTuple(int i) {
  return Tuple::Make("succ", {Value::Str("n1"), Value::Id(0x9e3779b97f4a7c15ULL * i),
                              Value::Str("n" + std::to_string(i % 21))});
}

void BM_TupleCreate(benchmark::State& state) {
  int i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(SampleTuple(++i));
  }
}
BENCHMARK(BM_TupleCreate);

void BM_TupleHash(benchmark::State& state) {
  TupleRef t = SampleTuple(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(t->Hash());
  }
}
BENCHMARK(BM_TupleHash);

void BM_TableInsertReplace(benchmark::State& state) {
  TableSpec spec;
  spec.name = "succ";
  spec.lifetime_secs = 30;
  spec.max_size = static_cast<size_t>(state.range(0));
  spec.key_fields = {0, 2};
  Table table(spec);
  int i = 0;
  double now = 0;
  for (auto _ : state) {
    table.Insert(SampleTuple(++i), now);
    now += 0.001;
  }
}
BENCHMARK(BM_TableInsertReplace)->Arg(16)->Arg(256)->Arg(4096);

void BM_TableScan(benchmark::State& state) {
  TableSpec spec;
  spec.name = "succ";
  spec.key_fields = {0, 2};
  Table table(spec);
  for (int i = 0; i < state.range(0); ++i) {
    table.Insert(SampleTuple(i), 0);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.Scan(1));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TableScan)->Arg(16)->Arg(256);

void BM_ParseChordProgram(benchmark::State& state) {
  ChordConfig cfg;
  std::string source = ChordProgram();
  ParamMap params = ChordParams(cfg);
  for (auto _ : state) {
    Program program;
    std::string error;
    bool ok = ParseProgram(source, params, &program, &error);
    if (!ok) {
      state.SkipWithError(error.c_str());
      return;
    }
    benchmark::DoNotOptimize(program);
  }
}
BENCHMARK(BM_ParseChordProgram);

void BM_WireRoundTrip(benchmark::State& state) {
  WireEnvelope env;
  env.src_addr = "n1";
  env.tuple = SampleTuple(3);
  for (auto _ : state) {
    std::string bytes = EncodeEnvelope(env);
    WireEnvelope out;
    bool ok = DecodeEnvelope(bytes, &out);
    benchmark::DoNotOptimize(ok);
  }
}
BENCHMARK(BM_WireRoundTrip);

// One strand execution: event joins a 16-row table and emits. `tracing` toggles the
// tracer taps — the per-execution cost of making the system diagnosable. `metrics`
// toggles the metrics registry (two clock reads + a few integer adds per trigger);
// the NoMetrics variant exists to pin that overhead below 5%.
void StrandTriggerBench(benchmark::State& state, bool tracing, bool metrics = true) {
  NetworkConfig net_cfg;
  net_cfg.latency = 0.001;
  Network net(net_cfg);
  NodeOptions opts;
  opts.tracing = tracing;
  opts.metrics = metrics;
  opts.introspection = false;
  opts.rule_exec_lifetime = 0.5;  // keep the trace tables from growing unboundedly
  Node* node = net.AddNode("n1", opts);
  std::string error;
  bool ok = node->LoadProgram(
      "materialize(s, infinity, 16, keys(1,2)).\n"
      "r1 out@N(X, Y) :- ev@N(X), s@N(Y), Y < 8.",
      &error);
  if (!ok) {
    state.SkipWithError(error.c_str());
    return;
  }
  for (int i = 0; i < 16; ++i) {
    node->InjectEvent(Tuple::Make("s", {Value::Str("n1"), Value::Int(i)}));
  }
  net.RunFor(1);
  int i = 0;
  for (auto _ : state) {
    node->InjectEvent(Tuple::Make("ev", {Value::Str("n1"), Value::Int(++i)}));
    net.RunFor(0.01);
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_StrandTrigger_Untraced(benchmark::State& state) {
  StrandTriggerBench(state, false);
}
BENCHMARK(BM_StrandTrigger_Untraced);

void BM_StrandTrigger_Traced(benchmark::State& state) { StrandTriggerBench(state, true); }
BENCHMARK(BM_StrandTrigger_Traced);

void BM_StrandTrigger_NoMetrics(benchmark::State& state) {
  StrandTriggerBench(state, false, /*metrics=*/false);
}
BENCHMARK(BM_StrandTrigger_NoMetrics);

// Ablation: a join whose pattern covers the table's primary key becomes an O(1)
// probe; the same join against an unkeyed table scans. Table size = range(0).
// Secondary indexes are disabled for the unkeyed variant — the planner would
// otherwise index it (see BM_JoinProbe_* for that A/B) and there would be no scan
// left to measure.
void JoinBench(benchmark::State& state, bool keyed) {
  NetworkConfig net_cfg;
  Network net(net_cfg);
  NodeOptions opts;
  opts.introspection = false;
  opts.use_join_indexes = keyed;
  Node* node = net.AddNode("n1", opts);
  std::string error;
  std::string program = keyed ? "materialize(kv, infinity, 100000, keys(1, 2)).\n"
                              : "materialize(kv, infinity, 100000).\n";
  program += "r1 out@N(V) :- q@N(K), kv@N(K, V).";
  bool ok = node->LoadProgram(program, &error);
  if (!ok) {
    state.SkipWithError(error.c_str());
    return;
  }
  for (int i = 0; i < state.range(0); ++i) {
    node->InjectEvent(
        Tuple::Make("kv", {Value::Str("n1"), Value::Int(i), Value::Int(i * 10)}));
  }
  net.RunFor(1);
  int i = 0;
  for (auto _ : state) {
    node->InjectEvent(
        Tuple::Make("q", {Value::Str("n1"), Value::Int(++i % state.range(0))}));
    net.RunFor(0.01);
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_JoinKeyProbe(benchmark::State& state) { JoinBench(state, true); }
BENCHMARK(BM_JoinKeyProbe)->Arg(64)->Arg(1024)->Arg(8192);

void BM_JoinFullScan(benchmark::State& state) { JoinBench(state, false); }
BENCHMARK(BM_JoinFullScan)->Arg(64)->Arg(1024)->Arg(8192);

// The secondary-index ablation: a join binding a single non-key column probes a
// secondary index (use_join_indexes, the default) or falls back to a full scan.
// Table size = range(0); each probe matches exactly one row, so the gap between the
// two variants is pure access-path cost.
void JoinProbeBench(benchmark::State& state, bool indexed) {
  NetworkConfig net_cfg;
  Network net(net_cfg);
  NodeOptions opts;
  opts.introspection = false;
  opts.use_join_indexes = indexed;
  Node* node = net.AddNode("n1", opts);
  std::string error;
  bool ok = node->LoadProgram(
      "materialize(kv, infinity, 100000, keys(1, 2)).\n"
      "r1 out@N(K) :- q@N(V), kv@N(K, V).",
      &error);
  if (!ok) {
    state.SkipWithError(error.c_str());
    return;
  }
  for (int i = 0; i < state.range(0); ++i) {
    node->InjectEvent(
        Tuple::Make("kv", {Value::Str("n1"), Value::Int(i), Value::Int(i)}));
  }
  net.RunFor(1);
  int i = 0;
  for (auto _ : state) {
    node->InjectEvent(
        Tuple::Make("q", {Value::Str("n1"), Value::Int(++i % state.range(0))}));
    net.RunFor(0.01);
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_JoinProbe_Indexed(benchmark::State& state) { JoinProbeBench(state, true); }
BENCHMARK(BM_JoinProbe_Indexed)->Arg(10)->Arg(100)->Arg(1000)->Arg(10000);

void BM_JoinProbe_Scan(benchmark::State& state) { JoinProbeBench(state, false); }
BENCHMARK(BM_JoinProbe_Scan)->Arg(10)->Arg(100)->Arg(1000)->Arg(10000);

// Ablation: tracer record bound (the paper's "fixed number of execution records").
void BM_TracerRecordBound(benchmark::State& state) {
  NetworkConfig net_cfg;
  Network net(net_cfg);
  NodeOptions opts;
  opts.tracing = true;
  opts.introspection = false;
  opts.rule_exec_lifetime = 0.5;
  opts.tracer_records_per_rule = static_cast<size_t>(state.range(0));
  Node* node = net.AddNode("n1", opts);
  std::string error;
  bool ok = node->LoadProgram(
      "materialize(s, infinity, 16, keys(1,2)).\n"
      "r1 out@N(X, Y) :- ev@N(X), s@N(Y).",
      &error);
  if (!ok) {
    state.SkipWithError(error.c_str());
    return;
  }
  for (int i = 0; i < 16; ++i) {
    node->InjectEvent(Tuple::Make("s", {Value::Str("n1"), Value::Int(i)}));
  }
  net.RunFor(1);
  int i = 0;
  for (auto _ : state) {
    node->InjectEvent(Tuple::Make("ev", {Value::Str("n1"), Value::Int(++i)}));
    net.RunFor(0.01);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TracerRecordBound)->Arg(1)->Arg(8)->Arg(64);

// Continuous aggregate recomputation cost as the underlying table grows (DESIGN.md §6:
// full recomputation is chosen for simplicity; this quantifies the price).
void BM_ContinuousAggReeval(benchmark::State& state) {
  NetworkConfig net_cfg;
  Network net(net_cfg);
  NodeOptions opts;
  opts.introspection = false;
  Node* node = net.AddNode("n1", opts);
  std::string error;
  bool ok = node->LoadProgram(
      "materialize(bp, infinity, 100000, keys(1,2)).\n"
      "materialize(nbp, infinity, 1, keys(1)).\n"
      "bp2 nbp@N(count<*>) :- bp@N(R, F).",
      &error);
  if (!ok) {
    state.SkipWithError(error.c_str());
    return;
  }
  for (int i = 0; i < state.range(0); ++i) {
    node->InjectEvent(
        Tuple::Make("bp", {Value::Str("n1"), Value::Int(i), Value::Int(0)}));
  }
  net.RunFor(1);
  // Flipping one row's payload replaces it under the key, dirtying the aggregate and
  // forcing one full recomputation over a table of fixed size range(0).
  int flip = 0;
  for (auto _ : state) {
    node->InjectEvent(
        Tuple::Make("bp", {Value::Str("n1"), Value::Int(0), Value::Int(++flip)}));
    net.RunFor(0.01);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ContinuousAggReeval)->Arg(16)->Arg(128)->Arg(1024);

}  // namespace
}  // namespace p2

int main(int argc, char** argv) {
  // Default to writing the JSON artifact unless the caller chose their own output.
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_out", 15) == 0) has_out = true;
  }
  static char out_flag[] = "--benchmark_out=BENCH_micro_engine.json";
  static char fmt_flag[] = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag);
    args.push_back(fmt_flag);
  }
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
