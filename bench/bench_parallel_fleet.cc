// Scaling baseline for the sharded parallel fleet runtime (docs/SCALING.md).
//
// Runs the same 256-node monitored Chord deployment (ring checks fleet-wide,
// consistency probes at the initiator) at K = 1, 2, 4, 8 worker shards and reports,
// per K:
//   * wall-clock seconds of the measurement window on THIS machine (honest number:
//     on a single-core host the threaded runtime cannot beat K=1);
//   * the conservative-window critical path — per window, the busiest shard's
//     execution time, summed — which models the wall clock of a K-core host;
//   * modeled speedup = total shard busy time / critical path (perfectly balanced
//     shards with no barrier stalls would approach K);
//   * window/cross-shard-message counts from the shard scheduler;
//   * the determinism columns: tx_msgs, live_tuples, and ring correctness must be
//     bit-identical across every K (the bench fails loudly when they diverge).
//
// Usage:  bench_parallel_fleet [--nodes N] [--measure SECS]

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/mon/consistency.h"
#include "src/mon/ring_checks.h"
#include "src/runtime/arena.h"

namespace p2 {
namespace {

struct ShardRow {
  int shards = 0;
  double wall_secs = 0;          // real time spent inside Run during the window
  double critical_path_secs = 0; // modeled K-core wall clock of the whole run
  double busy_secs = 0;          // total execution time across all shards
  double modeled_speedup = 1;    // busy / critical path
  uint64_t windows = 0;
  uint64_t cross_shard_msgs = 0;
  // Fresh heap megabytes obtained by the tuple arena per simulated second of the
  // measurement window. TupleArena::FreshBytes is a process-global counter that
  // every thread feeds (including the K=1 single-threaded run — the old window
  // counter this column carried was 0 at K=1), so the column is live at every K.
  // With arenas on this is the steady-state recycler miss rate; with arenas off
  // it is the raw allocation churn of the engine.
  double alloc_mb_per_s = 0;
  // Determinism columns — must match K=1 exactly.
  uint64_t tx_msgs = 0;
  uint64_t live_tuples = 0;
  int correct_succ = 0;
};

// Engine hot-path toggles (defaults mirror NodeOptions). --no-arenas /
// --no-batch / --no-zerocopy reproduce the pre-optimization engine so the
// before/after artifacts come from one binary on one machine.
struct HotPathToggles {
  bool tuple_arenas = true;
  bool batch_deltas = true;
  bool zero_copy_decode = true;
};

ShardRow RunFleet(int shards, int num_nodes, double measure_secs, double stagger,
                  double settle_secs, const HotPathToggles& hot) {
  TestbedConfig cfg;
  cfg.num_nodes = num_nodes;
  cfg.fleet.shards = shards;
  cfg.fleet.node_defaults.tuple_arenas = hot.tuple_arenas;
  cfg.fleet.node_defaults.batch_deltas = hot.batch_deltas;
  cfg.fleet.node_defaults.zero_copy_decode = hot.zero_copy_decode;
  // 50 ms one-way latency (a WAN-ish RTT of 100 ms): the conservative lookahead
  // equals the latency, so this is also the parallel window width. Narrower windows
  // shrink the per-window event population and with it the achievable overlap.
  cfg.fleet.latency = 0.05;
  cfg.fleet.jitter = 0.02;
  cfg.fleet.node_defaults.introspection = false;
  cfg.join_stagger = stagger;
  cfg.chord.stabilize_period = 5.0;
  cfg.chord.ping_period = 5.0;
  cfg.chord.finger_period = 10.0;
  ChordTestbed bed(cfg);

  // Warm-up: staggered joins plus ring formation (Chord must be installed before
  // the monitors can join against its tables).
  bed.Run(stagger * num_nodes + 40.0);

  // The monitored deployment: passive+active ring checks on every node, the
  // paper's routing-consistency probes on every 7th node (multi-hop lookups keep
  // in-flight work spread across shards). The probe stride is coprime to every
  // measured shard count: nodes are placed round-robin, so a stride of 8 would pin
  // every probe initiator — the dominant per-node cost — onto one shard of 2/4/8
  // and serialize the workload, which no real deployment's monitor placement would.
  for (NodeHandle node : bed.handles()) {
    RingCheckConfig rc;
    rc.probe_period = 2.0;
    std::string error;
    if (!node.Install(
            [&](Node* n, std::string* e) { return InstallRingChecks(n, rc, e); },
            &error)) {
      fprintf(stderr, "ring check install failed: %s\n", error.c_str());
      exit(1);
    }
  }
  for (int i = 0; i < num_nodes; i += 7) {
    ConsistencyConfig cc;
    cc.probe_period = 2.0;
    cc.tally_period = 20.0;
    cc.tally_age = 20.0;
    std::string error;
    if (!bed.handle(i).Install(
            [&](Node* n, std::string* e) { return InstallConsistencyProbes(n, cc, e); },
            &error)) {
      fprintf(stderr, "consistency install failed: %s\n", error.c_str());
      exit(1);
    }
  }

  // Let the ring converge and the monitors reach steady state before measuring.
  bed.Run(settle_secs);

  // Steady-state deltas: exclude the (inherently bursty) join/warm-up phase from
  // the scaling columns.
  uint64_t crit0 = bed.network().critical_path_ns();
  uint64_t windows0 = bed.network().windows();
  uint64_t tx0 = bed.network().total_msgs();
  uint64_t busy0 = 0;
  uint64_t xmsgs0 = 0;
  for (const Network::ShardStats& s : bed.network().ShardStatsSnapshot()) {
    busy0 += s.busy_ns;
    xmsgs0 += s.sent_cross_shard;
  }

  uint64_t fresh0 = TupleArena::FreshBytes();
  auto start = std::chrono::steady_clock::now();
  bed.Run(measure_secs);
  double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  uint64_t fresh1 = TupleArena::FreshBytes();

  ShardRow row;
  row.shards = bed.network().shard_count();
  row.wall_secs = wall;
  row.critical_path_secs =
      static_cast<double>(bed.network().critical_path_ns() - crit0) / 1e9;
  row.windows = bed.network().windows() - windows0;
  uint64_t busy1 = 0;
  uint64_t xmsgs1 = 0;
  for (const Network::ShardStats& s : bed.network().ShardStatsSnapshot()) {
    busy1 += s.busy_ns;
    xmsgs1 += s.sent_cross_shard;
  }
  row.busy_secs = static_cast<double>(busy1 - busy0) / 1e9;
  row.cross_shard_msgs = xmsgs1 - xmsgs0;
  row.modeled_speedup =
      row.critical_path_secs > 0 ? row.busy_secs / row.critical_path_secs : 1;
  row.alloc_mb_per_s =
      static_cast<double>(fresh1 - fresh0) / 1e6 / measure_secs;
  row.tx_msgs = bed.network().total_msgs() - tx0;
  for (Node* node : bed.nodes()) {
    row.live_tuples += node->catalog().TotalRows(bed.network().Now());
  }
  row.correct_succ = bed.CorrectSuccessorCount();
  return row;
}

void Main(int num_nodes, double measure_secs, double stagger, double settle,
          const HotPathToggles& hot) {
  printf("=== parallel fleet scaling: %d-node monitored Chord, %g s window "
         "(arenas=%s batch=%s zerocopy=%s) ===\n",
         num_nodes, measure_secs, hot.tuple_arenas ? "on" : "off",
         hot.batch_deltas ? "on" : "off", hot.zero_copy_decode ? "on" : "off");
  printf("%-7s %10s %13s %10s %9s %9s %10s %10s %12s %12s %9s\n", "shards",
         "wall(s)", "critpath(s)", "busy(s)", "modeled", "windows", "xmsgs",
         "alloc-MB/s", "tx-msgs", "live-tuples", "succ-ok");
  BenchArtifact artifact("parallel_fleet");
  std::vector<ShardRow> rows;
  for (int shards : {1, 2, 4, 8}) {
    ShardRow r = RunFleet(shards, num_nodes, measure_secs, stagger, settle, hot);
    printf("%-7d %10.2f %13.3f %10.3f %8.2fx %9llu %10llu %10.2f %12llu %12llu "
           "%6d/%d\n",
           r.shards, r.wall_secs, r.critical_path_secs, r.busy_secs,
           r.modeled_speedup, static_cast<unsigned long long>(r.windows),
           static_cast<unsigned long long>(r.cross_shard_msgs), r.alloc_mb_per_s,
           static_cast<unsigned long long>(r.tx_msgs),
           static_cast<unsigned long long>(r.live_tuples), r.correct_succ, num_nodes);
    // Artifact mapping (p2mon-bench-v1 fixed schema): cpu_ms_per_s carries the wall
    // clock in ms, cpu_pct the modeled speedup, memory_mb the critical path in
    // seconds, alloc_mb_per_s the arena fresh-allocation rate (MB per simulated
    // second); live_tuples/tx_msgs are themselves.
    WindowMetrics m;
    m.cpu_ms_per_s = r.wall_secs * 1000.0;
    m.cpu_pct = r.modeled_speedup;
    m.memory_mb = r.critical_path_secs;
    m.alloc_mb_per_s = r.alloc_mb_per_s;
    m.live_tuples = static_cast<double>(r.live_tuples);
    m.tx_msgs = static_cast<double>(r.tx_msgs);
    artifact.Add("shards", std::to_string(shards), shards, m);
    rows.push_back(r);
  }
  artifact.Write();

  bool identical = true;
  for (const ShardRow& r : rows) {
    if (r.tx_msgs != rows[0].tx_msgs || r.live_tuples != rows[0].live_tuples ||
        r.correct_succ != rows[0].correct_succ) {
      identical = false;
      printf("DETERMINISM FAILURE at shards=%d: tx=%llu/%llu live=%llu/%llu "
             "succ=%d/%d\n",
             r.shards, static_cast<unsigned long long>(r.tx_msgs),
             static_cast<unsigned long long>(rows[0].tx_msgs),
             static_cast<unsigned long long>(r.live_tuples),
             static_cast<unsigned long long>(rows[0].live_tuples), r.correct_succ,
             rows[0].correct_succ);
    }
  }
  printf("determinism across shard counts: %s\n", identical ? "OK" : "FAILED");
  if (!identical) {
    exit(1);
  }
}

}  // namespace
}  // namespace p2

int main(int argc, char** argv) {
  int nodes = 256;
  double measure = 30.0;
  double stagger = 0.25;
  double settle = 120.0;
  p2::HotPathToggles hot;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--nodes") == 0 && i + 1 < argc) {
      nodes = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--measure") == 0 && i + 1 < argc) {
      measure = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--stagger") == 0 && i + 1 < argc) {
      stagger = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--settle") == 0 && i + 1 < argc) {
      settle = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--no-arenas") == 0) {
      hot.tuple_arenas = false;
    } else if (std::strcmp(argv[i], "--no-batch") == 0) {
      hot.batch_deltas = false;
    } else if (std::strcmp(argv[i], "--no-zerocopy") == 0) {
      hot.zero_copy_decode = false;
    } else {
      fprintf(stderr,
              "usage: bench_parallel_fleet [--nodes N] [--measure SECS] "
              "[--stagger SECS] [--settle SECS] "
              "[--no-arenas] [--no-batch] [--no-zerocopy]\n");
      return 2;
    }
  }
  p2::Main(nodes, measure, stagger, settle, hot);
  return 0;
}
