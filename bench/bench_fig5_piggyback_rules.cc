// Reproduces Figure 5: CPU and memory utilization for an increasing number of
// piggy-backed monitoring rules sharing one 1 s timer, each performing one state
// lookup:
//
//   event@NAddr()  :- periodic@NAddr(E, 1).            (one driver)
//   result@NAddr() :- event@NAddr(), bestSucc@NAddr(SID, SAddr).   (N copies)
//
// The paper reports roughly linear CPU growth, steeper than Figure 4 (state lookups
// cost more than private timers: ≈6% vs ≈4.5% at 250 rules).

#include <cstdio>

#include "bench/bench_common.h"
#include "src/common/strings.h"

namespace p2 {
namespace {

std::string PiggybackRules(int n) {
  std::string program = "syndrv event@NAddr(E) :- periodic@NAddr(E, 1).\n";
  for (int i = 0; i < n; ++i) {
    program += StrFormat(
        "synp%d result@NAddr() :- event@NAddr(E), bestSucc@NAddr(SID, SAddr).\n", i);
  }
  return program;
}

void Main() {
  printf("=== Figure 5: piggy-backed rules on a shared 1 s event ===\n");
  PrintHeader("21-node P2-Chord; rules installed on the last-joined node",
              "#rules");
  BenchArtifact artifact("fig5_piggyback_rules");
  for (int n : {0, 50, 100, 150, 200, 250}) {
    ChordTestbed bed(PaperTestbed());
    bed.Run(40);
    Node* target = bed.last_node();
    if (n > 0) {
      std::string error;
      if (!target->LoadProgram(PiggybackRules(n), &error)) {
        fprintf(stderr, "install failed: %s\n", error.c_str());
        return;
      }
    }
    bed.Run(5);
    WindowMetrics m = MeasureWindow(&bed, target, 120.0);
    PrintRow(StrFormat("%d", n), m);
    artifact.Add("piggyback", StrFormat("%d", n), n, m);
  }
  artifact.Write();
}

}  // namespace
}  // namespace p2

int main() {
  p2::Main();
  return 0;
}
