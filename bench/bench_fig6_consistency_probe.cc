// Reproduces Figure 6: overhead of the proactive routing-consistency detector
// (paper §3.1.4) at initiation rates from 1/32 to 1 probe per second, alongside Chord
// without the detector ("None").
//
// Shapes to hold (paper): memory and transmitted messages grow linearly with the
// probe rate; CPU utilization grows superlinearly (each probe fans out one lookup per
// unique finger, and those contend on the initiator and the rest of the testbed).

#include <cstdio>

#include "bench/bench_common.h"
#include "src/common/strings.h"
#include "src/mon/consistency.h"

namespace p2 {
namespace {

void Main() {
  printf("=== Figure 6: proactive consistency probes ===\n");
  PrintHeader("21-node P2-Chord; probes initiated by the last-joined node",
              "rate(1/s)");
  struct Point {
    const char* label;
    double rate;  // probes per second; 0 = detector not installed
  };
  const Point points[] = {{"None", 0},     {"1/32", 1.0 / 32}, {"1/4", 0.25},
                          {"1/2", 0.5},    {"3/4", 0.75},      {"1", 1.0}};
  BenchArtifact artifact("fig6_consistency_probe");
  for (const Point& p : points) {
    ChordTestbed bed(PaperTestbed());
    bed.Run(40);
    Node* target = bed.last_node();
    if (p.rate > 0) {
      ConsistencyConfig cfg;
      cfg.probe_period = 1.0 / p.rate;
      cfg.tally_period = 20.0;  // paper cs9
      cfg.tally_age = 20.0;
      std::string error;
      if (!InstallConsistencyProbes(target, cfg, &error)) {
        fprintf(stderr, "install failed: %s\n", error.c_str());
        return;
      }
    }
    bed.Run(5);
    WindowMetrics m = MeasureWindow(&bed, target, 64.0);
    PrintRow(p.label, m);
    artifact.Add("probe", p.label, p.rate, m);
  }
  artifact.Write();
}

}  // namespace
}  // namespace p2

int main() {
  p2::Main();
  return 0;
}
