// Quantifies time-travel forensics (docs/OBSERVABILITY.md): the incremental cost
// of the bounded log-structured retention store over plain execution tracing, and
// the latency of cross-node causal replay as retained history deepens.
//
// Two series land in BENCH_forensics.json:
//   retention  — 21-node P2-Chord, 5-min window on the last-joined node, for
//                tracing off / tracing on / tracing+forensics. The off/on rows
//                must stay bit-identical to BENCH_logging_overhead.json (the
//                retention store is a pure observer).
//   replay     — wall-clock latency of a fleet-wide ReplayChains("*") sweep after
//                increasingly deep histories. The WindowMetrics columns are
//                repurposed: cpu_ms_per_s = replay wall ms, memory_mb = retained
//                store MB, live_tuples = chains returned, tx_msgs = total steps.

#include <chrono>
#include <cstdio>

#include "bench/bench_common.h"
#include "src/trace/replay.h"

namespace p2 {
namespace {

WindowMetrics RunRetention(bool tracing, bool forensics) {
  ChordTestbed bed(PaperTestbed(21, tracing, forensics));
  bed.Run(60);  // form and settle the ring
  return MeasureWindow(&bed, bed.last_node(), 300.0);
}

void Main() {
  printf("=== Bounded retention + causal replay (time-travel forensics) ===\n");
  BenchArtifact artifact("forensics");

  printf("21-node P2-Chord, 5-min measurement window on the last-joined node.\n");
  WindowMetrics off = RunRetention(false, false);
  WindowMetrics tracing = RunRetention(true, false);
  WindowMetrics retained = RunRetention(true, true);
  PrintHeader("Retention overhead", "config");
  PrintRow("off", off);
  PrintRow("tracing", tracing);
  PrintRow("forensics", retained);
  artifact.Add("retention", "off", 0, off);
  artifact.Add("retention", "tracing", 1, tracing);
  artifact.Add("retention", "forensics", 2, retained);
  printf("\nRetention on top of tracing: %+.3f ms/sim-s CPU, %+.4f MB table state\n",
         retained.cpu_ms_per_s - tracing.cpu_ms_per_s,
         retained.memory_mb - tracing.memory_mb);

  // Replay latency vs history depth: one deployment, sweep the full retained
  // window after every deepening run. Depths are cumulative simulated seconds.
  ChordTestbed bed(PaperTestbed(21, true, true));
  bed.Run(60);
  PrintHeader("Replay latency vs history depth", "depth(s)");
  double depth = 0;
  for (double step : {60.0, 120.0, 240.0}) {
    bed.Run(step);
    depth += step;
    double now = bed.network().Now();
    auto start = std::chrono::steady_clock::now();
    std::vector<CausalChain> chains;
    for (Node* node : bed.nodes()) {
      std::vector<CausalChain> part =
          bed.fleet().ReplayChains(node->addr(), "*", 0, now);
      chains.insert(chains.end(), part.begin(), part.end());
    }
    double wall_ms =
        std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                  start)
            .count();
    size_t steps = 0;
    size_t bytes = 0;
    for (const CausalChain& c : chains) {
      steps += c.steps.size();
    }
    for (Node* node : bed.nodes()) {
      if (node->forensics() != nullptr) {
        bytes += node->forensics()->Stats().bytes;
      }
    }
    WindowMetrics m;
    m.cpu_ms_per_s = wall_ms;
    m.memory_mb = static_cast<double>(bytes) / (1024.0 * 1024.0);
    m.live_tuples = static_cast<double>(chains.size());
    m.tx_msgs = static_cast<double>(steps);
    char label[32];
    snprintf(label, sizeof(label), "%.0f", depth);
    PrintRow(label, m);
    artifact.Add("replay", label, depth, m);
  }

  artifact.Write();
  printf("\nShape check: retention rides the existing trace write path, so its CPU\n"
         "cost stays a small fraction of tracing itself, and whole-segment drops\n"
         "keep the store under its byte budget while replay still answers windows\n"
         "whose live trace rows have long expired.\n");
}

}  // namespace
}  // namespace p2

int main() {
  p2::Main();
  return 0;
}
