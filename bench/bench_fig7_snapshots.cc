// Reproduces Figure 7: overhead of Chandy-Lamport consistent snapshots (paper §3.3)
// at initiation rates from 1/32 to 1 snapshot per second, alongside Chord without the
// snapshot machinery ("None").
//
// Shapes to hold (paper): memory grows linearly but much more slowly than the
// consistency probes of Figure 6; CPU grows superlinearly but stays well below
// Figure 6 at every rate (a snapshot floods one marker per link; a probe floods a
// multi-hop lookup per finger).

#include <cstdio>

#include "bench/bench_common.h"
#include "src/mon/snapshot.h"

namespace p2 {
namespace {

void Main() {
  printf("=== Figure 7: consistent snapshots ===\n");
  PrintHeader("21-node P2-Chord; snapshots initiated by the last-joined node",
              "rate(1/s)");
  struct Point {
    const char* label;
    double rate;
  };
  const Point points[] = {{"None", 0},     {"1/32", 1.0 / 32}, {"1/4", 0.25},
                          {"1/2", 0.5},    {"3/4", 0.75},      {"1", 1.0}};
  BenchArtifact artifact("fig7_snapshots");
  for (const Point& p : points) {
    ChordTestbed bed(PaperTestbed());
    bed.Run(40);
    Node* target = bed.last_node();
    if (p.rate > 0) {
      for (size_t i = 0; i < bed.size(); ++i) {
        SnapshotConfig cfg;
        cfg.snap_period = 1.0 / p.rate;
        cfg.initiator = (bed.node(i) == target);
        std::string error;
        if (!InstallSnapshot(bed.node(i), cfg, &error)) {
          fprintf(stderr, "install failed: %s\n", error.c_str());
          return;
        }
      }
    }
    bed.Run(5);
    WindowMetrics m = MeasureWindow(&bed, target, 64.0);
    PrintRow(p.label, m);
    artifact.Add("snapshot", p.label, p.rate, m);
  }
  artifact.Write();
}

}  // namespace
}  // namespace p2

int main() {
  p2::Main();
  return 0;
}
