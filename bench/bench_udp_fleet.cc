// Real-socket deployment benchmark (docs/DEPLOYMENT.md): a monitored Chord fleet
// over loopback UDP in one process — every inter-node tuple crosses a real
// socket — sustaining a DHT put/get workload for a wall-clock measurement
// window, then cross-checked against the deterministic simulator running the
// identical deployment.
//
// Reported per run:
//   * sustained wire throughput: envelopes (tuples) per wall second and
//     datagrams per wall second during the measurement window;
//   * the batching ratio (envelopes per datagram) — the win from coalescing
//     same-destination tuples into one frame per pump iteration;
//   * DHT workload health: gets issued / answered / correct;
//   * parity columns vs the simulator: chord ids are name hashes, so BOTH
//     backends must converge to the same ground-truth ring (correct_succ), and
//     every DHT get must come back with the value that was put. The bench fails
//     loudly when the backends disagree.
//
// Usage:  bench_udp_fleet [--nodes N] [--measure SECS] [--settle SECS]
//                         [--stagger SECS]
//
// Artifact mapping (p2mon-bench-v1 fixed schema, BENCH_udp_fleet.json):
// cpu_ms_per_s carries envelopes per wall second, cpu_pct the batching ratio,
// memory_mb datagrams per wall second (in thousands), alloc_mb_per_s megabytes
// on the wire per wall second, live_tuples/tx_msgs are themselves (tx_msgs =
// datagrams sent during the window).

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/apps/dht.h"
#include "src/mon/ring_checks.h"
#include "src/net/udp_driver.h"

namespace p2 {
namespace {

struct WorkloadResult {
  int correct_succ = 0;
  uint64_t gets_answered = 0;
  uint64_t gets_correct = 0;
  uint64_t live_tuples = 0;
  // udp backend only.
  double wall_secs = 0;
  uint64_t envelopes = 0;
  uint64_t datagrams = 0;
  uint64_t wire_bytes = 0;
  double batch_ratio = 0;
  uint64_t shed_reliable = 0;
};

TestbedConfig DeploymentConfig(FleetBackend backend, int nodes, double stagger) {
  TestbedConfig cfg;
  cfg.num_nodes = nodes;
  cfg.fleet.backend = backend;
  cfg.fleet.node_defaults.introspection = false;
  cfg.fleet.udp_max_datagram = 8192;  // loopback: no ethernet MTU to respect
  cfg.join_stagger = stagger;
  // Fast protocol periods so the wall-clock run converges in seconds (the
  // simulator gets the same ones: parity requires identical deployments).
  cfg.chord.stabilize_period = 0.5;
  cfg.chord.ping_period = 0.5;
  cfg.chord.finger_period = 1.0;
  cfg.chord.ping_timeout = 0.4;
  cfg.chord.rejoin_check_period = 2.0;
  return cfg;
}

// Builds the monitored deployment, converges the ring, runs the DHT workload
// over the measurement window, and collects the parity + wire columns.
WorkloadResult RunDeployment(FleetBackend backend, int nodes, double stagger,
                             double settle_secs, double measure_secs) {
  ChordTestbed bed(DeploymentConfig(backend, nodes, stagger));
  bed.Run(stagger * nodes + 6.0);

  // The paper's monitored deployment: passive+active ring checks everywhere.
  for (NodeHandle node : bed.handles()) {
    RingCheckConfig rc;
    rc.probe_period = 2.0;
    std::string error;
    if (!node.Install(
            [&](Node* n, std::string* e) { return InstallRingChecks(n, rc, e); },
            &error)) {
      fprintf(stderr, "ring check install failed: %s\n", error.c_str());
      exit(1);
    }
  }
  DhtConfig dc;
  for (NodeHandle node : bed.handles()) {
    std::string error;
    if (!node.Install(
            [&](Node* n, std::string* e) { return InstallDht(n, dc, e); }, &error)) {
      fprintf(stderr, "dht install failed: %s\n", error.c_str());
      exit(1);
    }
  }
  bed.Run(settle_secs);

  // Seed the store: key<i> -> value<i>, put from nodes spread around the ring.
  const int kKeys = 64;
  for (int i = 0; i < kKeys; ++i) {
    DhtPut(bed.node((i * 5) % nodes), "key" + std::to_string(i),
           "value" + std::to_string(i), static_cast<uint64_t>(i));
  }
  bed.Run(3.0);

  // The measured workload: a steady stream of gets, issued from round-robin
  // nodes via posted events so they fire while the fleet is pumping.
  WorkloadResult result;
  std::vector<NodeHandle> handles = bed.handles();
  for (NodeHandle& h : handles) {
    h.OnEvent("dhtGetResp", [&result](const TupleRef& t) {
      ++result.gets_answered;
      uint64_t req = t->field(3).AsId();
      if (t->field(4).Truthy() &&
          t->field(2).AsString() == "value" + std::to_string(req % kKeys)) {
        ++result.gets_correct;
      }
    });
  }
  const double kGetPeriod = 0.01;  // 100 gets issued per second
  const uint64_t kGets = static_cast<uint64_t>(measure_secs / kGetPeriod);
  double base = bed.fleet().Now();
  for (uint64_t g = 0; g < kGets; ++g) {
    NodeHandle h = bed.handle(static_cast<size_t>((g * 11) % nodes));
    std::string key = "key" + std::to_string(g % kKeys);
    h.Post(base + 0.05 + static_cast<double>(g) * kGetPeriod,
           [key, g](Node& n) { DhtGet(&n, key, g); });
  }

  UdpDriver* driver = bed.fleet().udp();
  uint64_t env0 = 0, dg0 = 0;
  if (driver != nullptr) {
    env0 = driver->envelopes_sent();
    dg0 = driver->datagrams_sent();
  }
  uint64_t bytes0 = bed.network().total_bytes();
  auto start = std::chrono::steady_clock::now();
  bed.Run(measure_secs + 2.0);  // +2 s of tail so the last gets drain
  result.wall_secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  if (driver != nullptr) {
    result.envelopes = driver->envelopes_sent() - env0;
    result.datagrams = driver->datagrams_sent() - dg0;
    result.batch_ratio = result.datagrams == 0
                             ? 0.0
                             : static_cast<double>(result.envelopes) /
                                   static_cast<double>(result.datagrams);
  }
  result.wire_bytes = bed.network().total_bytes() - bytes0;
  result.correct_succ = bed.CorrectSuccessorCount();
  for (Node* node : bed.nodes()) {
    result.live_tuples += node->catalog().TotalRows(bed.network().Now());
    result.shed_reliable += node->stats().shed_reliable;
  }
  return result;
}

void Main(int nodes, double stagger, double settle, double measure) {
  printf("=== udp fleet: %d-node monitored Chord + DHT over loopback sockets, "
         "%g s window ===\n",
         nodes, measure);

  WorkloadResult udp =
      RunDeployment(FleetBackend::kUdp, nodes, stagger, settle, measure);
  double env_per_s = udp.envelopes / udp.wall_secs;
  double dg_per_s = udp.datagrams / udp.wall_secs;
  printf("udp:  %.0f envelopes/s over %.0f datagrams/s (batch %.2fx), "
         "%.2f MB/s on the wire\n",
         env_per_s, dg_per_s, udp.batch_ratio,
         static_cast<double>(udp.wire_bytes) / 1e6 / udp.wall_secs);
  printf("udp:  ring %d/%d correct, gets %llu answered / %llu correct, "
         "shed_reliable=%llu\n",
         udp.correct_succ, nodes,
         static_cast<unsigned long long>(udp.gets_answered),
         static_cast<unsigned long long>(udp.gets_correct),
         static_cast<unsigned long long>(udp.shed_reliable));

  WorkloadResult sim =
      RunDeployment(FleetBackend::kSim, nodes, stagger, settle, measure);
  printf("sim:  ring %d/%d correct, gets %llu answered / %llu correct\n",
         sim.correct_succ, nodes,
         static_cast<unsigned long long>(sim.gets_answered),
         static_cast<unsigned long long>(sim.gets_correct));

  BenchArtifact artifact("udp_fleet");
  WindowMetrics m;
  m.cpu_ms_per_s = env_per_s;
  m.cpu_pct = udp.batch_ratio;
  m.memory_mb = dg_per_s / 1000.0;
  m.alloc_mb_per_s = static_cast<double>(udp.wire_bytes) / 1e6 / udp.wall_secs;
  m.live_tuples = static_cast<double>(udp.live_tuples);
  m.tx_msgs = static_cast<double>(udp.datagrams);
  artifact.Add("udp", std::to_string(nodes), nodes, m);
  WindowMetrics p;
  p.cpu_pct = 1.0;
  p.live_tuples = static_cast<double>(sim.live_tuples);
  p.tx_msgs = static_cast<double>(sim.gets_correct);
  artifact.Add("sim_parity", std::to_string(nodes), nodes, p);
  artifact.Write();

  // Parity gate: both backends must converge the same ground-truth ring and
  // serve the workload correctly; the udp transport must shed nothing reliable.
  bool ok = true;
  if (udp.correct_succ != nodes || sim.correct_succ != nodes) {
    printf("PARITY FAILURE: ring correct_succ udp=%d sim=%d expected=%d\n",
           udp.correct_succ, sim.correct_succ, nodes);
    ok = false;
  }
  if (udp.gets_correct != udp.gets_answered || udp.gets_answered == 0 ||
      sim.gets_correct != sim.gets_answered || sim.gets_answered == 0) {
    printf("PARITY FAILURE: workload udp %llu/%llu correct, sim %llu/%llu\n",
           static_cast<unsigned long long>(udp.gets_correct),
           static_cast<unsigned long long>(udp.gets_answered),
           static_cast<unsigned long long>(sim.gets_correct),
           static_cast<unsigned long long>(sim.gets_answered));
    ok = false;
  }
  if (udp.shed_reliable != 0) {
    printf("OVERLOAD FAILURE: shed_reliable=%llu\n",
           static_cast<unsigned long long>(udp.shed_reliable));
    ok = false;
  }
  if (udp.batch_ratio <= 1.0) {
    printf("BATCHING FAILURE: %.2f envelopes/datagram\n", udp.batch_ratio);
    ok = false;
  }
  printf("sim-vs-udp parity: %s\n", ok ? "OK" : "FAILED");
  if (!ok) {
    exit(1);
  }
}

}  // namespace
}  // namespace p2

int main(int argc, char** argv) {
  int nodes = 256;
  // Defaults are the slowest knobs that reach full 256-node ring parity on a
  // shared 1-core container: the wall-paced udp clock gives each node less
  // effective CPU per virtual second than the simulator does, so convergence
  // needs more virtual time than the sim-only benches use.
  double stagger = 0.05;
  double settle = 60.0;
  double measure = 10.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--nodes") == 0 && i + 1 < argc) {
      nodes = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--stagger") == 0 && i + 1 < argc) {
      stagger = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--settle") == 0 && i + 1 < argc) {
      settle = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--measure") == 0 && i + 1 < argc) {
      measure = std::atof(argv[++i]);
    } else {
      fprintf(stderr, "usage: bench_udp_fleet [--nodes N] [--stagger SECS] "
                      "[--settle SECS] [--measure SECS]\n");
      return 2;
    }
  }
  p2::Main(nodes, stagger, settle, measure);
  return 0;
}
