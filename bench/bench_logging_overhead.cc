// Reproduces the paper's §4 execution-logging overhead measurement:
//
//   "execution logging increases CPU utilization on a node running Chord by 40% on
//    average, going from utilization of 0.98 to 1.38. Memory consumption grows by 66%
//    on average, from 8 MB to 13 MB."
//
// Setup mirrors the paper: a 21-node P2-Chord deployment (stabilize 5 s, fix fingers
// 10 s, ping 5 s); the measured node is the last to join. We run identically seeded
// deployments with execution tracing off and on and report the ratios. Absolute
// numbers differ from the 2006 testbed; the paper's claim under test is "tens of
// percent CPU, roughly two-thirds more memory, minute absolute increase".

#include <cstdio>

#include "bench/bench_common.h"

namespace p2 {
namespace {

struct Outcome {
  WindowMetrics metrics;
  uint64_t rule_exec_rows = 0;
  ForensicsStats retention;
};

Outcome RunOnce(bool tracing, bool forensics = false) {
  ChordTestbed bed(PaperTestbed(21, tracing, forensics));
  bed.Run(60);  // form and settle the ring
  Node* target = bed.last_node();
  Outcome out;
  out.metrics = MeasureWindow(&bed, target, 300.0);  // the paper's 5-minute window
  out.rule_exec_rows = target->tracer().rule_exec_rows_written();
  if (target->forensics() != nullptr) {
    out.retention = target->forensics()->Stats();
  }
  return out;
}

void Main() {
  printf("=== Execution-logging overhead (paper §4, text) ===\n");
  printf("21-node P2-Chord, 5-min measurement window on the last-joined node.\n");
  Outcome off = RunOnce(false);
  Outcome on = RunOnce(true);
  Outcome forensics = RunOnce(true, /*forensics=*/true);

  PrintHeader("Per-configuration metrics", "tracing");
  PrintRow("off", off.metrics);
  PrintRow("on", on.metrics);
  PrintRow("forensics", forensics.metrics);

  BenchArtifact artifact("logging_overhead");
  artifact.Add("tracing", "off", 0, off.metrics);
  artifact.Add("tracing", "on", 1, on.metrics);
  artifact.Add("tracing", "forensics", 2, forensics.metrics);
  artifact.Write();

  // The paper's percentages are relative to a full OS process (0.98% CPU, 8 MB RSS
  // baseline). The simulation accounts only engine work and engine state, so the
  // honest comparison is on absolute deltas; the paper's absolute increases were
  // +0.4 CPU percentage points and +5 MB.
  printf("\nCPU cost of tracing:    %+.3f ms per simulated second (+%.3f pp)\n",
         on.metrics.cpu_ms_per_s - off.metrics.cpu_ms_per_s,
         on.metrics.cpu_pct - off.metrics.cpu_pct);
  printf("   paper: +0.4 percentage points (0.98%% -> 1.38%%, i.e. +40%% relative)\n");
  printf("Memory cost of tracing: %+.2f MB of trace state (ruleExec + tupleTable)\n",
         on.metrics.memory_mb - off.metrics.memory_mb);
  printf("   paper: +5 MB (8 MB -> 13 MB, i.e. +66%% relative)\n");
  printf("Intermediate-tuple churn: %.2fx the untraced rate\n",
         on.metrics.alloc_mb_per_s / off.metrics.alloc_mb_per_s);
  printf("Live tuples: %+.0f rows of provenance state\n",
         on.metrics.live_tuples - off.metrics.live_tuples);
  printf("ruleExec rows written during window: %llu\n",
         static_cast<unsigned long long>(on.rule_exec_rows));
  printf("Bounded retention on top of tracing: %+.3f ms/sim-s CPU, "
         "%zu segments / %zu records / %.2f MB retained (%zu dropped)\n",
         forensics.metrics.cpu_ms_per_s - on.metrics.cpu_ms_per_s,
         forensics.retention.segments, forensics.retention.records,
         static_cast<double>(forensics.retention.bytes) / (1024.0 * 1024.0),
         forensics.retention.dropped_segments);
  printf("\nShape check (paper §4): the absolute cost of always-on execution tracing is\n"
         "minute — well under a core-percentage point of CPU and a few MB of state —\n"
         "which is the paper's argument for leaving monitoring on permanently.\n");
}

}  // namespace
}  // namespace p2

int main() {
  p2::Main();
  return 0;
}
