#!/usr/bin/env python3
"""Allocation/CPU budget gate for bench artifacts (stdlib only).

Compares a freshly produced p2mon-bench-v1 artifact against a committed
baseline and fails (exit 1) when a budgeted metric regresses beyond the
allowed ratio. Used by CI's allocation-budget smoke step, which runs
bench_parallel_fleet in short mode and gates on the committed
BENCH_parallel_fleet_smoke.json (docs/SCALING.md "Memory model &
hot-path batching").

Budgeted metrics (lower is better): cpu_ms_per_s, alloc_mb_per_s.
Determinism columns (live_tuples, tx_msgs) must match the baseline
exactly — a drift there is an engine-behavior change, not noise.

Usage:
  check_regression.py BASELINE.json FRESH.json [--max-regress 1.25]
"""

import argparse
import json
import sys

BUDGET_METRICS = ("cpu_ms_per_s", "alloc_mb_per_s")
EXACT_METRICS = ("live_tuples", "tx_msgs")
# Below this absolute level a metric is noise-dominated on shared CI
# runners; ratios against it are meaningless, so tiny baselines are
# compared against an absolute floor instead.
ABS_FLOOR = {"cpu_ms_per_s": 50.0, "alloc_mb_per_s": 1.0}


def load_rows(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != "p2mon-bench-v1":
        sys.exit(f"{path}: unexpected schema {doc.get('schema')!r}")
    return doc.get("bench", "?"), {
        (r.get("series"), r.get("x")): r for r in doc.get("rows", [])
    }


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline")
    ap.add_argument("fresh")
    ap.add_argument(
        "--max-regress",
        type=float,
        default=1.25,
        help="fail when fresh/baseline exceeds this ratio (default 1.25)",
    )
    args = ap.parse_args()

    base_name, base = load_rows(args.baseline)
    fresh_name, fresh = load_rows(args.fresh)
    if base_name != fresh_name:
        sys.exit(f"bench mismatch: baseline={base_name} fresh={fresh_name}")

    failures = []
    for key, brow in sorted(base.items()):
        frow = fresh.get(key)
        label = f"{key[0]}={key[1]}"
        if frow is None:
            failures.append(f"{label}: row missing from fresh artifact")
            continue
        for m in EXACT_METRICS:
            if m in brow and frow.get(m) != brow[m]:
                failures.append(
                    f"{label}: {m} drifted {brow[m]} -> {frow.get(m)} "
                    f"(determinism contract, must match exactly)"
                )
        for m in BUDGET_METRICS:
            if m not in brow:
                continue
            bv, fv = float(brow[m]), float(frow.get(m, 0.0))
            # Allow the ratio OR the absolute floor, whichever is looser:
            # a 0.4ms baseline jumping to 0.7ms is runner noise, not a leak.
            limit = max(bv * args.max_regress, ABS_FLOOR.get(m, 0.0))
            status = "FAIL" if fv > limit else "ok"
            print(
                f"{label:14s} {m:15s} base={bv:10.3f} fresh={fv:10.3f} "
                f"limit={limit:10.3f}  {status}"
            )
            if fv > limit:
                failures.append(
                    f"{label}: {m} regressed {bv:.3f} -> {fv:.3f} "
                    f"(limit {limit:.3f})"
                )

    if failures:
        print(f"\n{len(failures)} budget violation(s):", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("\nall budgets hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
