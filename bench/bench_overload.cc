// Overload resilience sweep (docs/ROBUSTNESS.md "Overload & graceful
// degradation"): offered load vs shed rate and trigger latency, with and without
// admission limits.
//
// The workload is a single monitored node running a periodic fan-out — every
// 100 ms one trigger joins a B-row table and emits B best-effort deliveries in
// one cascade, so B directly sets the offered load. The sweep scales B as a
// multiple of the capped node's queue budget: at 1x the cap is never touched, at
// 10x-20x the uncapped node's queue high-water grows with the load while the
// capped node holds it at the cap, sheds the overflow, enters degraded mode, and
// keeps its control plane intact (the bench fails loudly if a capped run ever
// sheds a reliable-class tuple or overruns its budget).
//
// Per (series, multiplier) row:
//   * offered/admitted/shed best-effort deliveries over the window and the shed
//     rate as a percentage of offered;
//   * p99 strand trigger latency from the strand_trigger_ns histogram (wall
//     nanoseconds from admission to execution on THIS machine — the paper's
//     "monitor responsiveness under load" proxy);
//   * the best-effort queue high-water mark (the memory-bound column);
//   * degrade enters/exits — capped runs past the watchdog threshold must enter
//     AND exit (load stops before observation, so a sticky degraded bit is a bug).
//
// Usage:  bench_overload [--measure SECS] [--cap N]

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/net/network.h"

namespace p2 {
namespace {

struct OverloadRow {
  int mult = 0;
  uint64_t offered = 0;
  uint64_t admitted = 0;
  uint64_t shed = 0;
  double shed_pct = 0;
  double p99_trigger_us = 0;
  uint64_t be_queue_hwm = 0;
  uint64_t shed_reliable = 0;
  uint64_t degrade_enters = 0;
  uint64_t degrade_exits = 0;
  bool degraded_at_end = false;
};

OverloadRow RunLoad(int mult, uint64_t cap, bool capped, double measure_secs) {
  NetworkConfig ncfg;
  ncfg.latency = 0.01;
  ncfg.jitter = 0.0;
  ncfg.seed = 7;
  Network net(ncfg);

  NodeOptions opts;
  opts.metrics = true;
  if (capped) {
    opts.queue_cap = cap;
    opts.low_queue_cap = cap;
    // Watchdog trips when the per-sweep peak depth sustains at 3/4 of the cap.
    opts.degrade_hi = (cap * 3) / 4;
  }
  Node* node = net.AddNode("n1", opts);

  std::string error;
  if (!node->LoadProgram("materialize(item, infinity, 100000, keys(1,2)).\n"
                         "p1 out@N(X) :- periodic@N(E, 0.1), item@N(X).",
                         &error)) {
    fprintf(stderr, "load failed: %s\n", error.c_str());
    exit(1);
  }
  // B = mult * cap rows: each periodic tick offers exactly mult times the
  // capped node's admission budget.
  const uint64_t rows = cap * static_cast<uint64_t>(mult);
  for (uint64_t i = 0; i < rows; ++i) {
    node->InjectEvent(
        Tuple::Make("item", {Value::Str("n1"), Value::Int(static_cast<int64_t>(i))}));
  }

  net.RunFor(2.0);  // warm-up: table populated, periodic chain in steady state
  uint64_t adm0 = node->stats().admitted_besteffort;
  uint64_t shed0 = node->stats().shed_besteffort;
  net.RunFor(measure_secs);

  OverloadRow r;
  r.mult = mult;
  r.admitted = node->stats().admitted_besteffort - adm0;
  r.shed = node->stats().shed_besteffort - shed0;
  r.offered = r.admitted + r.shed;
  r.shed_pct = r.offered > 0 ? 100.0 * static_cast<double>(r.shed) /
                                   static_cast<double>(r.offered)
                             : 0.0;
  if (Histogram* h = node->metrics().GetHistogram("strand_trigger_ns")) {
    r.p99_trigger_us = static_cast<double>(h->ValueAtQuantile(0.99)) / 1e3;
  }
  r.be_queue_hwm = node->stats().be_queue_hwm;
  r.shed_reliable = node->stats().shed_reliable;
  r.degrade_enters = node->stats().degrade_enters;

  // Drop the load entirely, then give the watchdog time to restore: graceful
  // degradation must be an episode, not a ratchet.
  node->UnloadProgram(node->last_program_id());
  net.RunFor(5.0);
  r.degrade_exits = node->stats().degrade_exits;
  r.degraded_at_end = node->degraded();
  return r;
}

void Main(double measure_secs, uint64_t cap) {
  printf("=== overload sweep: periodic fan-out, 100 ms period, cap=%llu ===\n",
         static_cast<unsigned long long>(cap));
  printf("%-10s %-6s %10s %10s %9s %8s %12s %9s %8s %9s\n", "series", "load",
         "offered", "admitted", "shed", "shed(%)", "p99-trig(us)", "be-hwm",
         "degrade", "restored");
  BenchArtifact artifact("overload");
  bool ok = true;
  for (bool capped : {false, true}) {
    const char* series = capped ? "capped" : "uncapped";
    for (int mult : {1, 2, 5, 10, 20}) {
      OverloadRow r = RunLoad(mult, cap, capped, measure_secs);
      bool restored = r.degrade_enters == 0 || (!r.degraded_at_end && r.degrade_exits > 0);
      printf("%-10s %-6s %10llu %10llu %9llu %8.2f %12.1f %9llu %3llu/%-3llu %9s\n",
             series, (std::to_string(mult) + "x").c_str(),
             static_cast<unsigned long long>(r.offered),
             static_cast<unsigned long long>(r.admitted),
             static_cast<unsigned long long>(r.shed), r.shed_pct, r.p99_trigger_us,
             static_cast<unsigned long long>(r.be_queue_hwm),
             static_cast<unsigned long long>(r.degrade_enters),
             static_cast<unsigned long long>(r.degrade_exits),
             restored ? "yes" : "NO");
      // Artifact mapping (p2mon-bench-v1 fixed schema): cpu_ms_per_s carries the
      // p99 trigger latency in ms, cpu_pct the shed rate in percent, memory_mb the
      // best-effort queue high-water mark, alloc_mb_per_s the degrade-enter count;
      // live_tuples/tx_msgs carry admitted/shed delivery counts.
      WindowMetrics m;
      m.cpu_ms_per_s = r.p99_trigger_us / 1e3;
      m.cpu_pct = r.shed_pct;
      m.memory_mb = static_cast<double>(r.be_queue_hwm);
      m.alloc_mb_per_s = static_cast<double>(r.degrade_enters);
      m.live_tuples = static_cast<double>(r.admitted);
      m.tx_msgs = static_cast<double>(r.shed);
      artifact.Add(series, std::to_string(mult) + "x", mult, m);

      if (capped) {
        if (r.be_queue_hwm > cap) {
          printf("BOUND FAILURE at %dx: be_queue_hwm %llu > cap %llu\n", mult,
                 static_cast<unsigned long long>(r.be_queue_hwm),
                 static_cast<unsigned long long>(cap));
          ok = false;
        }
        if (r.shed_reliable > 0) {
          printf("CONTROL-PLANE FAILURE at %dx: %llu reliable tuples shed\n", mult,
                 static_cast<unsigned long long>(r.shed_reliable));
          ok = false;
        }
        if (!restored) {
          printf("RECOVERY FAILURE at %dx: still degraded after load removal\n",
                 mult);
          ok = false;
        }
      }
    }
  }
  artifact.Write();
  printf("capped runs bounded, control plane intact, degradation restored: %s\n",
         ok ? "OK" : "FAILED");
  if (!ok) {
    exit(1);
  }
}

}  // namespace
}  // namespace p2

int main(int argc, char** argv) {
  double measure = 30.0;
  uint64_t cap = 32;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--measure") == 0 && i + 1 < argc) {
      measure = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--cap") == 0 && i + 1 < argc) {
      cap = static_cast<uint64_t>(std::atoll(argv[++i]));
    } else {
      fprintf(stderr, "usage: bench_overload [--measure SECS] [--cap N]\n");
      return 2;
    }
  }
  p2::Main(measure, cap);
  return 0;
}
