// Shared measurement scaffolding for the paper-reproduction benchmarks (§4).
//
// The paper's testbed metrics map onto the simulation as follows (DESIGN.md §2):
//   CPU utilization  -> wall-clock nanoseconds the target node spends executing its
//                       dataflow per simulated second (NodeStats::busy_ns), printed
//                       both as ms/sim-s and normalized against the baseline;
//   process memory   -> bytes held by the target node's tables + tuple memo store;
//   live tuples      -> rows across the target node's tables;
//   Tx messages      -> network messages sent fleet-wide during the measurement
//                       window (the paper's Figs 6-7 count transmissions).

// Every bench binary additionally writes a machine-readable BENCH_<name>.json
// artifact (one row per measurement window) so runs can be diffed and trended
// across commits — see BenchArtifact below and docs/OBSERVABILITY.md.

#ifndef BENCH_BENCH_COMMON_H_
#define BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/testbed/testbed.h"

namespace p2 {

struct WindowMetrics {
  double cpu_ms_per_s = 0;   // target-node busy time per simulated second
  double cpu_pct = 0;        // same, as a percentage of one core
  double memory_mb = 0;      // target-node table + memo bytes at window end
  double alloc_mb_per_s = 0; // fleet-wide intermediate-tuple churn during the window
  double live_tuples = 0;    // target-node rows at window end
  double tx_msgs = 0;        // fleet-wide messages sent during the window
};

// Builds the paper's 21-node deployment (stabilize 5 s, fingers 10 s, ping 5 s).
// `forensics` layers the bounded retention store on top of tracing (which it
// implies); it defaults off so pre-existing benchmark rows stay bit-identical.
inline TestbedConfig PaperTestbed(int num_nodes = 21, bool tracing = false,
                                  bool forensics = false) {
  TestbedConfig cfg;
  cfg.num_nodes = num_nodes;
  cfg.fleet.node_defaults.tracing = tracing;
  cfg.fleet.node_defaults.introspection = false;
  cfg.fleet.node_defaults.forensics.enabled = forensics;
  cfg.chord.stabilize_period = 5.0;
  cfg.chord.ping_period = 5.0;
  cfg.chord.finger_period = 10.0;
  return cfg;
}

// Runs `bed` for `secs` of simulated time and reports the target node's metrics over
// that window.
inline WindowMetrics MeasureWindow(ChordTestbed* bed, Node* target, double secs) {
  uint64_t busy_before = target->stats().busy_ns;
  uint64_t msgs_before = bed->network().total_msgs();
  uint64_t alloc_before = Tuple::TotalBytesCreated();
  bed->Run(secs);
  WindowMetrics m;
  m.cpu_ms_per_s =
      static_cast<double>(target->stats().busy_ns - busy_before) / 1e6 / secs;
  m.cpu_pct = m.cpu_ms_per_s / 10.0;  // ms per 1000 ms -> percent
  size_t bytes = target->catalog().TotalBytes();
  m.memory_mb = static_cast<double>(bytes) / (1024.0 * 1024.0);
  m.alloc_mb_per_s = static_cast<double>(Tuple::TotalBytesCreated() - alloc_before) /
                     (1024.0 * 1024.0) / secs;
  m.live_tuples = static_cast<double>(target->catalog().TotalRows(bed->network().Now()));
  m.tx_msgs = static_cast<double>(bed->network().total_msgs() - msgs_before);
  return m;
}

inline void PrintHeader(const char* title, const char* x_label) {
  printf("\n%s\n", title);
  printf("%-10s %12s %9s %11s %13s %12s %10s\n", x_label, "cpu(ms/s)", "cpu(%)",
         "state(MB)", "churn(MB/s)", "live-tuples", "tx-msgs");
}

inline void PrintRow(const std::string& x, const WindowMetrics& m) {
  printf("%-10s %12.3f %9.3f %11.4f %13.4f %12.0f %10.0f\n", x.c_str(), m.cpu_ms_per_s,
         m.cpu_pct, m.memory_mb, m.alloc_mb_per_s, m.live_tuples, m.tx_msgs);
}

// Machine-readable measurement record. Collect one row per (series, x) window and
// call Write() at the end of main; the artifact lands in the working directory (or
// $P2_BENCH_OUT_DIR) as BENCH_<name>.json:
//
//   {"bench":"fig4_periodic_rules","schema":"p2mon-bench-v1","rows":[
//     {"series":"default","x":"50","x_value":50,"cpu_ms_per_s":...,...}, ...]}
class BenchArtifact {
 public:
  explicit BenchArtifact(std::string name) : name_(std::move(name)) {}

  void Add(const std::string& series, const std::string& x, double x_value,
           const WindowMetrics& m) {
    rows_.push_back(Row{series, x, x_value, m});
  }

  // Writes BENCH_<name>.json; prints the path (or the failure) to stderr.
  bool Write() const {
    std::string path = "BENCH_" + name_ + ".json";
    if (const char* dir = std::getenv("P2_BENCH_OUT_DIR")) {
      path = std::string(dir) + "/" + path;
    }
    FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      fprintf(stderr, "bench artifact: cannot open %s\n", path.c_str());
      return false;
    }
    fprintf(f, "{\"bench\":\"%s\",\"schema\":\"p2mon-bench-v1\",\"rows\":[", name_.c_str());
    for (size_t i = 0; i < rows_.size(); ++i) {
      const Row& r = rows_[i];
      fprintf(f,
              "%s\n  {\"series\":\"%s\",\"x\":\"%s\",\"x_value\":%g,"
              "\"cpu_ms_per_s\":%g,\"cpu_pct\":%g,\"memory_mb\":%g,"
              "\"alloc_mb_per_s\":%g,\"live_tuples\":%g,\"tx_msgs\":%g}",
              i == 0 ? "" : ",", r.series.c_str(), r.x.c_str(), r.x_value,
              r.m.cpu_ms_per_s, r.m.cpu_pct, r.m.memory_mb, r.m.alloc_mb_per_s,
              r.m.live_tuples, r.m.tx_msgs);
    }
    fprintf(f, "\n]}\n");
    std::fclose(f);
    fprintf(stderr, "bench artifact: wrote %s\n", path.c_str());
    return true;
  }

 private:
  struct Row {
    std::string series;
    std::string x;
    double x_value;
    WindowMetrics m;
  };
  std::string name_;
  std::vector<Row> rows_;
};

}  // namespace p2

#endif  // BENCH_BENCH_COMMON_H_
