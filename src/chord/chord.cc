#include "src/chord/chord.h"

#include "src/net/network.h"

namespace p2 {

std::string ChordProgram() {
  return R"OLG(
/* ------------------------------------------------------------------ tables */
materialize(node, infinity, 1, keys(1)).
materialize(landmarkNode, infinity, 1, keys(1)).
materialize(succ, 30, 32, keys(1, 3)).
materialize(pred, infinity, 1, keys(1)).
materialize(bestSucc, infinity, 1, keys(1)).
materialize(bestSuccDist, infinity, 1, keys(1)).
materialize(succCount, infinity, 1, keys(1)).
materialize(finger, 30, 70, keys(1, 2)).
materialize(uniqueFinger, infinity, 70, keys(1, 2)).
materialize(fingerPos, infinity, 70, keys(1, 2)).
materialize(fixLookup, 20, 32, keys(1, 2)).
materialize(joinRequested, 20, 8, keys(1, 2)).
materialize(pingNode, infinity, 70, keys(1, 2)).
/* Keyed by timestamp too: each probe is its own row, so an unanswered probe keeps its
   age instead of being refreshed away by the next probe. */
materialize(pingPending, 20, 210, keys(1, 2, 3)).
materialize(faultyNode, 60, 70, keys(1, 2)).

/* ------------------------------------------------------------------ join */
/* Remember join lookups in flight, look our own ID up via the landmark. */
j2 joinRequested@NAddr(E) :- joinEvent@NAddr(E), landmarkNode@NAddr(LAddr),
   LAddr != "-".
j3 lookup@LAddr(NID, NAddr, E) :- joinEvent@NAddr(E), node@NAddr(NID),
   landmarkNode@NAddr(LAddr), LAddr != "-".
j4 succ@NAddr(SID, SAddr) :- lookupResults@NAddr(K, SID, SAddr, E, RAddr),
   joinRequested@NAddr(E).
/* The landmark bootstraps alone: it is its own successor until someone joins. */
j5 succ@NAddr(NID, NAddr) :- joinEvent@NAddr(E), node@NAddr(NID),
   landmarkNode@NAddr(LAddr), LAddr == "-".
/* Re-join: a node whose successor set has completely died out (e.g. after a long
   outage let all soft state expire) bootstraps again through the landmark. */
j7 joinEvent@NAddr(E) :- periodic@NAddr(E, tJoinCheck), landmarkNode@NAddr(LAddr),
   LAddr != "-", not succ@NAddr(SID, SAddr).
j8 succ@NAddr(NID, NAddr) :- periodic@NAddr(E, tJoinCheck), node@NAddr(NID),
   landmarkNode@NAddr(LAddr), LAddr == "-", not succ@NAddr(SID, SAddr).

/* ------------------------------------------------- best-successor selection */
bs1 bestSuccDist@NAddr(min<D>) :- succ@NAddr(SID, SAddr), node@NAddr(NID),
    D := SID - NID - 1.
bs2 bestSucc@NAddr(SID, SAddr) :- bestSuccDist@NAddr(D), succ@NAddr(SID, SAddr),
    node@NAddr(NID), SID - NID - 1 == D.
/* The immediate successor doubles as a pseudo-finger so lookups always progress. */
f0 finger@NAddr(999, SID, SAddr) :- bestSucc@NAddr(SID, SAddr).

/* ------------------------------------------------------------ stabilization */
/* Self-directed stabilization is allowed: a lone landmark learns its first real
   successor from its own predecessor pointer this way. */
sb1 stabilizeRequest@SAddr(NID, NAddr) :- periodic@NAddr(E, tStab),
    node@NAddr(NID), bestSucc@NAddr(SID, SAddr).
sb2 sendPred@ReqAddr(PID, PAddr) :- stabilizeRequest@NAddr(SomeID, ReqAddr),
    pred@NAddr(PID, PAddr), PAddr != "-".
sb4 succ@NAddr(SID, SAddr) :- sendPred@NAddr(SID, SAddr), node@NAddr(NID),
    SID != NID.
sb5 succReq@SAddr(NAddr) :- periodic@NAddr(E, tStab), bestSucc@NAddr(SID, SAddr).
sb6 returnSucc@ReqAddr(SID, SAddr) :- succReq@NAddr(ReqAddr),
    succ@NAddr(SID, SAddr).
sb7 succ@NAddr(SID, SAddr) :- returnSucc@NAddr(SID, SAddr), node@NAddr(NID),
    SID != NID.
/* A successful liveness ping refreshes the soft state for that neighbor: without
   this, a node's own best successor would age out of the succ table (its pred is the
   node itself, and it never appears in its own successor list). */
sb10 succ@NAddr(SID, SAddr) :- pingResp@NAddr(SAddr), succ@NAddr(SID, SAddr).

/* Bound the successor set by ring distance, not table age: stabilization gossips
   whole successor sets (sb6), so at fleet scale the succ table would overflow its
   size bound and evict arbitrary rows — including the true successor. The count is
   a continuous view (like bestSuccDist), so every insert that pushes the set past
   succSize immediately evicts the farthest entry (P2-Chord's eviction rules). */
sb11 succCount@NAddr(count<*>) :- succ@NAddr(SID, SAddr).
sb12 maxSuccDist@NAddr(max<D>) :- succCount@NAddr(C), C > succSize,
     succ@NAddr(SID, SAddr), node@NAddr(NID), D := SID - NID - 1.
sb13 delete succ@NAddr(SID, SAddr) :- maxSuccDist@NAddr(D), succ@NAddr(SID, SAddr),
     node@NAddr(NID), SID - NID - 1 == D.

/* Tell the successor about ourselves; it adopts us as predecessor if we are closer. */
sb8 notify@SAddr(NID, NAddr) :- periodic@NAddr(E, tStab), node@NAddr(NID),
    bestSucc@NAddr(SID, SAddr).
sb9 pred@NAddr(PID2, PAddr2) :- notify@NAddr(PID2, PAddr2), node@NAddr(NID),
    pred@NAddr(PID, PAddr), PAddr2 != NAddr,
    ((PAddr == "-") || (PID2 in (PID, NID))).

/* ------------------------------------------------------------------ fingers */
f1 fingerLookup@NAddr(E, I, K) :- periodic@NAddr(E0, tFix), node@NAddr(NID),
   fingerPos@NAddr(I), K := NID + f_pow2(I), E := f_rand().
f3 fixLookup@NAddr(E, I) :- fingerLookup@NAddr(E, I, K).
f4 lookup@NAddr(K, NAddr, E) :- fingerLookup@NAddr(E, I, K).
f5 finger@NAddr(I, SID, SAddr) :- lookupResults@NAddr(K, SID, SAddr, E, RAddr),
   fixLookup@NAddr(E, I).
uf1 uniqueFinger@NAddr(FAddr, FID) :- finger@NAddr(I, FID, FAddr).

/* ---------------------------------------------------------------- liveness */
pn1 pingNode@NAddr(SAddr) :- bestSucc@NAddr(SID, SAddr), SAddr != NAddr.
pn2 pingNode@NAddr(PAddr) :- pred@NAddr(PID, PAddr), PAddr != "-", PAddr != NAddr.
pn3 pingNode@NAddr(FAddr) :- uniqueFinger@NAddr(FAddr, FID), FAddr != NAddr.

pp1 pingEvent@NAddr(E) :- periodic@NAddr(E, tPing).
pp2 pingPending@NAddr(RAddr, T) :- pingEvent@NAddr(E), pingNode@NAddr(RAddr),
    T := f_now().
pp3 pingReq@RAddr(NAddr) :- pingEvent@NAddr(E), pingNode@NAddr(RAddr).
pp4 pingResp@RAddr2(NAddr) :- pingReq@NAddr(RAddr2).
pp5 delete pingPending@NAddr(RAddr, T) :- pingResp@NAddr(RAddr),
    pingPending@NAddr(RAddr, T).
/* A neighbor is faulty after three consecutive unanswered probes — a single lost
   message must not evict a live neighbor. */
pp6 stalePing@NAddr(RAddr, count<*>) :- periodic@NAddr(E, tPing),
    pingPending@NAddr(RAddr, T), T < f_now() - pingTmo.
pp7 faultyNode@NAddr(RAddr, T2) :- stalePing@NAddr(RAddr, C), C >= 3, T2 := f_now().

/* Purge failed neighbors from all routing state. */
fn1 delete succ@NAddr(SID, FAddr) :- faultyNode@NAddr(FAddr, T),
    succ@NAddr(SID, FAddr).
fn2 delete finger@NAddr(I, FID, FAddr) :- faultyNode@NAddr(FAddr, T),
    finger@NAddr(I, FID, FAddr).
fn3 delete uniqueFinger@NAddr(FAddr, FID) :- faultyNode@NAddr(FAddr, T),
    uniqueFinger@NAddr(FAddr, FID).
fn4 delete pingNode@NAddr(FAddr) :- faultyNode@NAddr(FAddr, T).
fn5 pred@NAddr(0, "-") :- faultyNode@NAddr(FAddr, T), pred@NAddr(PID, FAddr).
fn6 delete pingPending@NAddr(FAddr, T3) :- faultyNode@NAddr(FAddr, T),
    pingPending@NAddr(FAddr, T3).

/* ---------------------------------------------------------------- lookups */
/* (paper rules l1-l3) */
l1 lookupResults@RAddr(K, SID, SAddr, E, NAddr) :- node@NAddr(NID),
   lookup@NAddr(K, RAddr, E), bestSucc@NAddr(SID, SAddr), K in (NID, SID].
l2 bestLookupDist@NAddr(K, RAddr, E, min<D>) :- node@NAddr(NID),
   lookup@NAddr(K, RAddr, E), finger@NAddr(I, FID, FAddr), D := K - FID - 1,
   FID in (NID, K).
l3 lookup@FAddr(K, RAddr, E) :- node@NAddr(NID),
   bestLookupDist@NAddr(K, RAddr, E, D), finger@NAddr(I, FID, FAddr),
   D == K - FID - 1, FID in (NID, K).
)OLG";
}

ParamMap ChordParams(const ChordConfig& config) {
  ParamMap params;
  params["tStab"] = Value::Double(config.stabilize_period);
  params["tPing"] = Value::Double(config.ping_period);
  params["tFix"] = Value::Double(config.finger_period);
  params["pingTmo"] = Value::Double(config.ping_timeout);
  params["tJoinCheck"] = Value::Double(config.rejoin_check_period);
  params["succSize"] = Value::Int(config.succ_size);
  return params;
}

bool InstallChord(Node* node, const ChordConfig& config, std::string* error) {
  if (!node->LoadProgram(ChordProgram(), ChordParams(config), error)) {
    return false;
  }
  const std::string& addr = node->addr();
  // As in Chord proper, the default identifier is a hash of the node's address
  // (deterministic, and distinct nodes can never collide the way shared RNG seeds
  // could).
  uint64_t id = config.node_id;
  if (id == 0) {
    uint64_t h = 1469598103934665603ULL;
    for (char c : addr) {
      h = (h ^ static_cast<unsigned char>(c)) * 1099511628211ULL;
    }
    h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
    h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
    id = (h ^ (h >> 31)) | 1;
  }
  node->InjectEvent(Tuple::Make("node", {Value::Str(addr), Value::Id(id)}));
  node->InjectEvent(Tuple::Make(
      "landmarkNode",
      {Value::Str(addr), Value::Str(config.landmark.empty() ? "-" : config.landmark)}));
  node->InjectEvent(
      Tuple::Make("pred", {Value::Str(addr), Value::Id(0), Value::Str("-")}));
  for (int i = config.finger_start; i < 64; ++i) {
    node->InjectEvent(
        Tuple::Make("fingerPos", {Value::Str(addr), Value::Int(i)}));
  }
  // Schedule the join attempts (the first one fires immediately).
  for (int attempt = 0; attempt < config.join_attempts; ++attempt) {
    node->own_scheduler().After(attempt * 2.0, [node] {
      node->InjectEvent(Tuple::Make(
          "joinEvent", {Value::Str(node->addr()), Value::Id(node->rng().Next())}));
    });
  }
  return true;
}

void IssueLookup(Node* node, uint64_t key, uint64_t req_id) {
  node->InjectEvent(Tuple::Make("lookup", {Value::Str(node->addr()), Value::Id(key),
                                           Value::Str(node->addr()), Value::Id(req_id)}));
}

uint64_t ChordId(Node* node) {
  for (const TupleRef& t : node->TableContents("node")) {
    if (t->arity() >= 2 && t->field(1).kind() == Value::Kind::kId) {
      return t->field(1).AsId();
    }
  }
  return 0;
}

std::string BestSuccAddr(Node* node) {
  for (const TupleRef& t : node->TableContents("bestSucc")) {
    if (t->arity() >= 3 && t->field(2).kind() == Value::Kind::kString) {
      return t->field(2).AsString();
    }
  }
  return std::string();
}

std::string PredAddr(Node* node) {
  for (const TupleRef& t : node->TableContents("pred")) {
    if (t->arity() >= 3 && t->field(2).kind() == Value::Kind::kString) {
      return t->field(2).AsString();
    }
  }
  return "-";
}

}  // namespace p2
