// P2-Chord: the Chord DHT (Stoica et al.) written as an OverLog program, following the
// P2 implementation the paper's case studies run on (paper §3 and Loo et al., SOSP'05).
//
// The overlay program provides the tables and events the paper's monitoring programs
// reference:
//   node(NAddr, NID)                     the local identifier
//   succ(NAddr, SID, SAddr)              successor candidates
//   bestSucc(NAddr, SID, SAddr)          the immediate successor
//   pred(NAddr, PID, PAddr)              the immediate predecessor ("-" when unknown)
//   finger(NAddr, FPos, FID, FAddr)      finger entries (FPos 999 mirrors bestSucc)
//   uniqueFinger(NAddr, FAddr, FID)      fingers deduplicated by address
//   pingNode(NAddr, RemoteAddr)          outgoing liveness-probe links
//   faultyNode(NAddr, FAddr, Time)       neighbors that failed a ping
// Events: lookup(NAddr, K, ReqAddr, E) / lookupResults(ReqAddr, K, SID, SAddr, E,
// RespAddr), stabilizeRequest(SAddr, NID, NAddr), sendPred / returnSucc / notify,
// pingReq(RAddr, NAddr) / pingResp.

#ifndef SRC_CHORD_CHORD_H_
#define SRC_CHORD_CHORD_H_

#include <cstdint>
#include <string>

#include "src/net/node.h"

namespace p2 {

struct ChordConfig {
  // Address of any node already in the ring; empty for the bootstrap (landmark) node.
  std::string landmark;
  // Ring identifier; 0 derives one from the node's seeded RNG.
  uint64_t node_id = 0;
  // Protocol periods, in seconds (paper §4 defaults: stabilize 5, ping 5, fingers 10).
  double stabilize_period = 5.0;
  double ping_period = 5.0;
  double finger_period = 10.0;
  double ping_timeout = 4.0;
  // Finger positions maintained: exponents [finger_start, 64). With ~20 nodes on a
  // 64-bit ring, exponents below ~52 all resolve to the immediate successor.
  int finger_start = 52;
  // How many times the join lookup is (re)issued, 2s apart, to survive message loss.
  int join_attempts = 2;
  // How often an isolated node (empty successor set) re-bootstraps via the landmark.
  double rejoin_check_period = 15.0;
  // Successor-set bound: each stabilize tick evicts the farthest succ entry while
  // the set is larger than this (the table's own size bound is a last resort —
  // gossiped successor sets would otherwise overflow it at fleet scale and evict
  // the true successor).
  int succ_size = 8;
};

// The Chord OverLog program text (identical on every node; periods arrive as params).
std::string ChordProgram();

// The parameter map for `config`.
ParamMap ChordParams(const ChordConfig& config);

// Loads the Chord program on `node`, seeds its identity/landmark/finger-position rows,
// and schedules its join. Returns false and sets `error` on failure.
bool InstallChord(Node* node, const ChordConfig& config, std::string* error);

// Issues a Chord lookup for `key` starting at `node`; the result arrives at `node` as a
// lookupResults event with request id `req_id`.
void IssueLookup(Node* node, uint64_t key, uint64_t req_id);

// Reads the node's current identifier (0 if chord is not installed yet).
uint64_t ChordId(Node* node);

// Reads the node's current best successor address ("" if none).
std::string BestSuccAddr(Node* node);

// Reads the node's current predecessor address ("-" if unknown).
std::string PredAddr(Node* node);

}  // namespace p2

#endif  // SRC_CHORD_CHORD_H_
