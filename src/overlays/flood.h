// Epidemic dissemination overlay ("rumor flooding") — a second, non-Chord overlay
// demonstrating the paper's §3.4 claim: the monitoring techniques "are applicable to
// the implementations of a wide variety of distributed algorithms, in many cases
// without significantly changing the OverLog rules".
//
// Protocol: nodes hold a static membership set; a published rumor floods along
// membership edges, with duplicate suppression (via negation over the rumorSeen
// table) and a hop bound. Every node that accepts a rumor acknowledges the origin,
// which maintains a live coverage count per rumor.
//
// Monitoring generality, concretely:
//  * the node exposes the same `pingNode` / `pingReq` liveness vocabulary as Chord,
//    so the Chandy-Lamport snapshot program (src/mon/snapshot.h) installs UNCHANGED
//    on this overlay;
//  * rumor propagation is traced by the generic execution profiler
//    (src/mon/profiler.h) with target rule "fl0" — the publish rule;
//  * watchpoints/introspection work as on any engine node.
//
// Tables:
//   member(N, Peer)            static membership edges (host-seeded)
//   rumorSeen(N, Id)           duplicate suppression
//   rumorStore(N, Id, O, P)    accepted rumor payloads
//   rumorAckTbl(O, Id, N)      acks collected at the origin
// Events:
//   publish(N, Id, Payload)    host-injected origination
//   rumor(N, Id, O, P, Hops)   the flooded message
//   coverage(O, Id, Count)     emitted at the origin whenever coverage grows

#ifndef SRC_OVERLAYS_FLOOD_H_
#define SRC_OVERLAYS_FLOOD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/net/node.h"

namespace p2 {

struct FloodConfig {
  int max_hops = 16;
  double rumor_lifetime = 300.0;  // rumorSeen / rumorStore / ack TTL
  double ping_period = 5.0;       // liveness probes (feeds snapshot back-pointers)
};

// The OverLog program text.
std::string FloodProgram();

// Loads the flooding program on `node`.
bool InstallFlood(Node* node, const FloodConfig& config, std::string* error);

// Adds a (directed) membership edge node -> peer. Call both ways for symmetry.
void AddMember(Node* node, const std::string& peer);

// Originates a rumor at `node`.
void PublishRumor(Node* node, uint64_t id, const std::string& payload);

// True if `node` has accepted rumor `id`.
bool HasRumor(Node* node, uint64_t id);

// Coverage count the origin has collected for rumor `id` (0 if unknown).
int64_t RumorCoverage(Node* origin, uint64_t id);

}  // namespace p2

#endif  // SRC_OVERLAYS_FLOOD_H_
