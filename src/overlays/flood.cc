#include "src/overlays/flood.h"

namespace p2 {

std::string FloodProgram() {
  return R"OLG(
materialize(member, infinity, 1000, keys(1, 2)).
materialize(rumorSeen, tRumor, 10000, keys(1, 2)).
materialize(rumorStore, tRumor, 10000, keys(1, 2)).
materialize(rumorAckTbl, tRumor, 10000, keys(1, 2, 3)).
materialize(pingNode, infinity, 1000, keys(1, 2)).

/* Origination: the publish event becomes a zero-hop rumor carrying its origin. */
fl0 rumor@NAddr(Id, NAddr, P, 0) :- publish@NAddr(Id, P).

/* Acceptance with duplicate suppression: the first copy wins. */
fl1 rumorFresh@NAddr(Id, O, P, H) :- rumor@NAddr(Id, O, P, H),
    not rumorSeen@NAddr(Id).
fl2 rumorSeen@NAddr(Id) :- rumorFresh@NAddr(Id, O, P, H).
fl3 rumorStore@NAddr(Id, O, P) :- rumorFresh@NAddr(Id, O, P, H).

/* Epidemic push along membership edges, hop-bounded. */
fl4 rumor@Peer(Id, O, P, H + 1) :- rumorFresh@NAddr(Id, O, P, H),
    member@NAddr(Peer), H < maxHops.

/* Coverage: each acceptance acknowledges the origin; the origin keeps a live count. */
fl5 rumorAckTbl@O(Id, NAddr) :- rumorFresh@NAddr(Id, O, P, H).
fl6 coverage@O(Id, count<*>) :- rumorAckTbl@O(Id, NAddr).

/* Liveness probes over membership edges — the same pingNode/pingReq vocabulary Chord
   uses, which is all the consistent-snapshot program needs (backPointer discovery and
   marker targets). */
fp0 pingNode@NAddr(Peer) :- member@NAddr(Peer).
fp1 pingReq@Peer(NAddr) :- periodic@NAddr(E, tPing), pingNode@NAddr(Peer).
fp2 pingResp@RAddr(NAddr) :- pingReq@NAddr(RAddr).
)OLG";
}

bool InstallFlood(Node* node, const FloodConfig& config, std::string* error) {
  ParamMap params;
  params["maxHops"] = Value::Int(config.max_hops);
  params["tRumor"] = Value::Double(config.rumor_lifetime);
  params["tPing"] = Value::Double(config.ping_period);
  return node->LoadProgram(FloodProgram(), params, error);
}

void AddMember(Node* node, const std::string& peer) {
  node->InjectEvent(
      Tuple::Make("member", {Value::Str(node->addr()), Value::Str(peer)}));
}

void PublishRumor(Node* node, uint64_t id, const std::string& payload) {
  node->InjectEvent(Tuple::Make(
      "publish", {Value::Str(node->addr()), Value::Id(id), Value::Str(payload)}));
}

bool HasRumor(Node* node, uint64_t id) {
  for (const TupleRef& t : node->TableContents("rumorSeen")) {
    if (t->arity() >= 2 && t->field(1) == Value::Id(id)) {
      return true;
    }
  }
  return false;
}

int64_t RumorCoverage(Node* origin, uint64_t id) {
  int64_t count = 0;
  for (const TupleRef& t : origin->TableContents("rumorAckTbl")) {
    if (t->arity() >= 3 && t->field(1) == Value::Id(id)) {
      ++count;
    }
  }
  return count;
}

}  // namespace p2
