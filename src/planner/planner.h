// Planner: compiles parsed OverLog rules into executable strands (paper §2, Figure 1).
//
// For each rule the planner:
//  * classifies body predicates as periodic timers, transient events, or materialized
//    table lookups (consulting the node's catalog);
//  * picks the trigger (the periodic or event predicate; or, when every predicate is
//    materialized, generates one delta strand per table predicate — or a continuous
//    aggregate when the head aggregates);
//  * orders assignments and filters so each runs as soon as its variables are bound;
//  * numbers the join stages so the tracer's taps line up with Figure 2.

#ifndef SRC_PLANNER_PLANNER_H_
#define SRC_PLANNER_PLANNER_H_

#include <memory>
#include <string>
#include <vector>

#include "src/dataflow/strand.h"
#include "src/lang/ast.h"

namespace p2 {

class Node;

struct PlanResult {
  std::vector<std::unique_ptr<Strand>> strands;
  std::vector<std::unique_ptr<ContinuousAggRule>> agg_rules;
  struct PeriodicInstall {
    Strand* strand;
    double period;
  };
  std::vector<PeriodicInstall> periodics;
};

// Compiles all rules of `program` against `node`'s catalog. On failure returns false,
// sets `error`, and leaves `out` partially filled but unused by the caller.
bool PlanProgram(const Program& program, Node* node, PlanResult* out, std::string* error);

}  // namespace p2

#endif  // SRC_PLANNER_PLANNER_H_
