#include "src/planner/planner.h"

#include <set>

#include "src/common/strings.h"
#include "src/lang/builtins.h"
#include "src/net/node.h"

namespace p2 {

namespace {

// Validates that every builtin call in `expr` names a known function.
bool CheckBuiltins(const Expr& expr, const std::string& rule_id, std::string* error) {
  if (expr.kind == Expr::Kind::kCall && !IsKnownBuiltin(expr.name)) {
    *error = StrFormat("rule %s: unknown builtin %s", rule_id.c_str(), expr.name.c_str());
    return false;
  }
  for (const ExprPtr& c : expr.children) {
    if (c != nullptr && !CheckBuiltins(*c, rule_id, error)) {
      return false;
    }
  }
  return true;
}

bool CheckRuleBuiltins(const Rule& rule, std::string* error) {
  for (const HeadArg& arg : rule.head.args) {
    if (arg.expr != nullptr && !CheckBuiltins(*arg.expr, rule.id, error)) {
      return false;
    }
  }
  for (const BodyTerm& term : rule.body) {
    if (term.kind == BodyTerm::Kind::kPredicate) {
      for (const ExprPtr& arg : term.pred.args) {
        if (!CheckBuiltins(*arg, rule.id, error)) {
          return false;
        }
      }
    } else if (term.expr != nullptr && !CheckBuiltins(*term.expr, rule.id, error)) {
      return false;
    }
  }
  return true;
}

// True if evaluating `expr` twice can give different results (it calls a volatile
// builtin). Volatile assignments/filters must run once per join result, not once per
// trigger — e.g. paper rule cs2 assigns a fresh f_rand() request ID per finger.
bool IsVolatile(const Expr& expr) {
  if (expr.kind == Expr::Kind::kCall &&
      (expr.name == "f_rand" || expr.name == "f_randID" || expr.name == "f_now")) {
    return true;
  }
  for (const ExprPtr& c : expr.children) {
    if (c != nullptr && IsVolatile(*c)) {
      return true;
    }
  }
  return false;
}

// Adds the variables that `pred` binds when matched (its plain-variable arguments).
void AddBoundVars(const Predicate& pred, std::set<std::string>* bound) {
  for (const ExprPtr& arg : pred.args) {
    if (arg->kind == Expr::Kind::kVar) {
      bound->insert(arg->name);
    }
  }
}

bool ExprReady(const Expr& expr, const std::set<std::string>& bound) {
  std::vector<std::string> vars;
  expr.CollectVars(&vars);
  for (const std::string& v : vars) {
    if (bound.count(v) == 0) {
      return false;
    }
  }
  return true;
}

// Argument positions of `pred` whose value is computable before the lookup runs:
// constants or expressions over already-bound variables, excluding volatile calls
// (f_rand/f_now must be re-evaluated per row, so they cannot feed a one-shot probe
// key). These form the equality prefix a secondary index can probe on.
std::vector<size_t> BoundEqualityPositions(const Predicate& pred,
                                           const std::set<std::string>& bound) {
  std::vector<size_t> positions;
  for (size_t i = 0; i < pred.args.size(); ++i) {
    const Expr& arg = *pred.args[i];
    if (ExprReady(arg, bound) && !IsVolatile(arg)) {
      positions.push_back(i);
    }
  }
  return positions;
}

// Decides the access path for a non-key-probe lookup op: request (or reuse) a
// secondary index over the bound equality prefix, falling back to a scan when
// nothing is bound or indexes are disabled on this node.
void SelectIndex(StrandOp* op, const Predicate& pred, Table* table,
                 const std::set<std::string>& bound, Node* node) {
  if (op->key_lookup || !node->options().use_join_indexes) {
    return;
  }
  std::vector<size_t> positions = BoundEqualityPositions(pred, bound);
  if (positions.empty()) {
    return;  // nothing bound: the scan fallback is all we can do
  }
  if (positions.size() == 1 && positions[0] == 0) {
    // Only the location arg is bound. Every row of a node-local table shares its
    // address, so a location-only key hashes the whole table into one bucket —
    // all maintenance cost, no selectivity. Scan instead.
    return;
  }
  op->use_index = true;
  op->index_id = table->EnsureIndex(positions);
  op->probe_positions = std::move(positions);
}

// Builds the post-trigger op sequence for `rule`, excluding `trigger` (which may be
// null for continuous aggregates). Assignments and filters are placed at the earliest
// point where all their variables are bound.
bool BuildOps(const Rule& rule, const Predicate* trigger, Node* node,
              std::vector<StrandOp>* ops, int* num_stages, std::string* error) {
  std::set<std::string> bound;
  if (trigger != nullptr) {
    AddBoundVars(*trigger, &bound);
  }

  // Count the joins so volatile terms can be deferred past the last one.
  size_t total_joins = 0;
  for (const BodyTerm& term : rule.body) {
    if (term.kind == BodyTerm::Kind::kPredicate && &term.pred != trigger) {
      ++total_joins;
    }
  }
  // Volatile assignment targets must not feed a join pattern (the join would bind the
  // variable from table rows instead).
  std::set<std::string> join_vars;
  for (const BodyTerm& term : rule.body) {
    if (term.kind == BodyTerm::Kind::kPredicate && &term.pred != trigger) {
      std::vector<std::string> vars;
      for (const ExprPtr& arg : term.pred.args) {
        arg->CollectVars(&vars);
      }
      join_vars.insert(vars.begin(), vars.end());
    }
  }
  for (const BodyTerm& term : rule.body) {
    if (term.kind == BodyTerm::Kind::kAssign && IsVolatile(*term.expr) &&
        join_vars.count(term.var) > 0) {
      *error = StrFormat("rule %s: volatile assignment to %s is used in a join pattern",
                         rule.id.c_str(), term.var.c_str());
      return false;
    }
  }

  size_t joins_placed = 0;
  struct PendingTerm {
    const BodyTerm* term;
  };
  std::vector<PendingTerm> pending;

  auto flush_ready = [&]() -> bool {
    bool progress = true;
    while (progress) {
      progress = false;
      for (auto it = pending.begin(); it != pending.end();) {
        const BodyTerm& term = *it->term;
        if (!ExprReady(*term.expr, bound)) {
          ++it;
          continue;
        }
        if (IsVolatile(*term.expr) && joins_placed < total_joins) {
          ++it;  // defer past the last join: evaluate per result row
          continue;
        }
        StrandOp op;
        if (term.kind == BodyTerm::Kind::kAssign) {
          if (bound.count(term.var) > 0) {
            *error = StrFormat("rule %s: variable %s assigned but already bound",
                               rule.id.c_str(), term.var.c_str());
            return false;
          }
          op.kind = StrandOp::Kind::kAssign;
          op.var = &term.var;
          op.expr = term.expr.get();
          bound.insert(term.var);
        } else {
          op.kind = StrandOp::Kind::kFilter;
          op.expr = term.expr.get();
        }
        ops->push_back(op);
        it = pending.erase(it);
        progress = true;
      }
    }
    return true;
  };

  int stage = 0;
  std::vector<const BodyTerm*> negated;
  for (const BodyTerm& term : rule.body) {
    if (term.kind == BodyTerm::Kind::kPredicate) {
      if (&term.pred == trigger) {
        continue;
      }
      if (term.negated) {
        // Stratified: negations run after every positive term, once all variables
        // that can bind are bound (remaining ones are existential wildcards).
        negated.push_back(&term);
        continue;
      }
      if (!flush_ready()) {
        return false;
      }
      Table* table = node->catalog().Get(term.pred.name);
      if (table == nullptr) {
        *error = StrFormat(
            "rule %s: predicate %s is neither the rule's event nor a materialized table",
            rule.id.c_str(), term.pred.name.c_str());
        return false;
      }
      StrandOp op;
      op.kind = StrandOp::Kind::kJoin;
      op.pred = &term.pred;
      op.table = table;
      op.stage = ++stage;
      // If every primary-key position is already bound here, the join degenerates to
      // an O(1) key probe.
      const std::vector<size_t>& key_fields = table->spec().key_fields;
      if (!key_fields.empty()) {
        bool covered = true;
        for (size_t pos : key_fields) {
          if (pos >= term.pred.args.size() || !ExprReady(*term.pred.args[pos], bound)) {
            covered = false;
            break;
          }
        }
        op.key_lookup = covered;
      }
      SelectIndex(&op, term.pred, table, bound, node);
      ops->push_back(op);
      ++joins_placed;
      AddBoundVars(term.pred, &bound);
      continue;
    }
    // Assignment / filter: place now if ready, else defer.
    pending.push_back(PendingTerm{&term});
    if (!flush_ready()) {
      return false;
    }
  }
  if (!flush_ready()) {
    return false;
  }
  if (!pending.empty()) {
    const BodyTerm& term = *pending.front().term;
    *error = StrFormat("rule %s: term '%s' references variables that are never bound",
                       rule.id.c_str(), term.ToString().c_str());
    return false;
  }
  for (const BodyTerm* term : negated) {
    Table* table = node->catalog().Get(term->pred.name);
    if (table == nullptr) {
      *error = StrFormat("rule %s: negated predicate %s must be materialized",
                         rule.id.c_str(), term->pred.name.c_str());
      return false;
    }
    StrandOp op;
    op.kind = StrandOp::Kind::kNotExists;
    op.pred = &term->pred;
    op.table = table;
    SelectIndex(&op, term->pred, table, bound, node);
    ops->push_back(op);
  }
  *num_stages = stage;
  return true;
}

}  // namespace

bool PlanProgram(const Program& program, Node* node, PlanResult* out, std::string* error) {
  Catalog& catalog = node->catalog();
  for (const Rule& rule : program.rules) {
    if (!CheckRuleBuiltins(rule, error)) {
      return false;
    }
    if (rule.head.name == "periodic") {
      *error = StrFormat("rule %s: cannot derive the builtin periodic event", rule.id.c_str());
      return false;
    }
    // Classify body predicates.
    const Predicate* periodic = nullptr;
    std::vector<const Predicate*> events;
    std::vector<const Predicate*> tables;
    for (const BodyTerm& term : rule.body) {
      if (term.kind != BodyTerm::Kind::kPredicate) {
        continue;
      }
      if (term.negated) {
        if (!catalog.IsMaterialized(term.pred.name)) {
          *error = StrFormat("rule %s: negated predicate %s must be materialized",
                             rule.id.c_str(), term.pred.name.c_str());
          return false;
        }
        continue;  // negated predicates are never triggers
      }
      if (term.pred.name == "periodic") {
        if (periodic != nullptr) {
          *error = StrFormat("rule %s: multiple periodic predicates", rule.id.c_str());
          return false;
        }
        periodic = &term.pred;
      } else if (catalog.IsMaterialized(term.pred.name)) {
        tables.push_back(&term.pred);
      } else {
        events.push_back(&term.pred);
      }
    }
    if (periodic != nullptr && !events.empty()) {
      *error = StrFormat("rule %s: cannot combine periodic with another event",
                         rule.id.c_str());
      return false;
    }
    if (events.size() > 1) {
      *error = StrFormat(
          "rule %s: two transient events (%s, %s) cannot be joined — materialize one",
          rule.id.c_str(), events[0]->name.c_str(), events[1]->name.c_str());
      return false;
    }
    int agg_count = 0;
    for (const HeadArg& arg : rule.head.args) {
      if (arg.agg != AggKind::kNone) {
        ++agg_count;
      }
    }
    if (agg_count > 1) {
      *error = StrFormat("rule %s: at most one aggregate per head", rule.id.c_str());
      return false;
    }
    if (rule.is_delete && agg_count > 0) {
      *error = StrFormat("rule %s: delete rules cannot aggregate", rule.id.c_str());
      return false;
    }

    const Predicate* trigger =
        periodic != nullptr ? periodic : (events.empty() ? nullptr : events[0]);

    if (trigger != nullptr) {
      if (periodic != nullptr) {
        // periodic@N(E, T): arity 3, constant positive period.
        if (periodic->args.size() != 3) {
          *error = StrFormat("rule %s: periodic takes (E, Period)", rule.id.c_str());
          return false;
        }
        Bindings empty;
        EvalContext ctx;
        Value period = EvalExpr(*periodic->args[2], empty, ctx);
        if (!period.is_numeric() || period.ToDouble() <= 0) {
          *error = StrFormat("rule %s: periodic period must be a positive constant",
                             rule.id.c_str());
          return false;
        }
        std::vector<StrandOp> ops;
        int num_stages = 0;
        if (!BuildOps(rule, trigger, node, &ops, &num_stages, error)) {
          return false;
        }
        auto strand =
            std::make_unique<Strand>(node, &rule, trigger, std::move(ops), num_stages);
        out->periodics.push_back(PlanResult::PeriodicInstall{strand.get(), period.ToDouble()});
        out->strands.push_back(std::move(strand));
        continue;
      }
      std::vector<StrandOp> ops;
      int num_stages = 0;
      if (!BuildOps(rule, trigger, node, &ops, &num_stages, error)) {
        return false;
      }
      out->strands.push_back(
          std::make_unique<Strand>(node, &rule, trigger, std::move(ops), num_stages));
      continue;
    }

    // No trigger: the body is entirely materialized.
    if (tables.empty()) {
      *error = StrFormat("rule %s: body has no predicates", rule.id.c_str());
      return false;
    }
    if (agg_count > 0) {
      // Continuous aggregate: full re-evaluation on any body-table change.
      std::vector<StrandOp> ops;
      int num_stages = 0;
      if (!BuildOps(rule, nullptr, node, &ops, &num_stages, error)) {
        return false;
      }
      out->agg_rules.push_back(
          std::make_unique<ContinuousAggRule>(node, &rule, std::move(ops)));
      continue;
    }
    // Delta strands: one per materialized body predicate.
    for (const Predicate* delta : tables) {
      std::vector<StrandOp> ops;
      int num_stages = 0;
      if (!BuildOps(rule, delta, node, &ops, &num_stages, error)) {
        return false;
      }
      out->strands.push_back(
          std::make_unique<Strand>(node, &rule, delta, std::move(ops), num_stages));
    }
  }
  return true;
}

}  // namespace p2
