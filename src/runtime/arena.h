// TupleArena: pooled allocation for the engine's tuple storage hot path.
//
// Every tuple the engine creates is short-lived relative to the run (intermediate
// derivations dominate — the paper's stated driver of process-memory growth under
// monitoring load), so the same handful of block sizes is allocated and freed
// millions of times. TupleArena intercepts those allocations: blocks are rounded up
// to 64-byte size classes and, once freed, parked on a thread-local free list
// instead of returning to the heap. The next allocation of the same class pops the
// cached block — no malloc, no lock. Everything larger than the biggest class falls
// through to plain operator new/delete.
//
// Ownership rules (docs/SCALING.md "Memory model & hot-path batching"):
//  * The arena is a recycler, not an owner: every block is ordinary
//    operator-new memory, and a block's lifetime is still governed by whoever
//    holds the TupleRef / ValueList that lives in it. Refcounted sharing across
//    tables, queues, and trace stores works exactly as before — a recycled block
//    is only ever one whose last reference was dropped.
//  * Free lists are per-thread. In the sharded fleet runtime each worker shard
//    owns its nodes outright, so a shard's churn recycles within the shard; a
//    block freed on a different thread (e.g. host-side digesting) simply joins
//    that thread's cache. Caches release to the heap on thread exit.
//  * SetEnabled is process-global and only gates recycling. Blocks allocated
//    while enabled are freed correctly after disabling and vice versa, because
//    class rounding is applied identically in both states.
//
// FreshBytes() counts bytes actually obtained from the heap (recycled pops count
// zero), in both enabled and disabled states — this is the allocation-rate column
// reported by bench_parallel_fleet: with the arena disabled it tracks raw tuple
// churn; enabled, it drops to the steady-state miss rate.

#ifndef SRC_RUNTIME_ARENA_H_
#define SRC_RUNTIME_ARENA_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace p2 {

class TupleArena {
 public:
  // Gates recycling only; allocation stays correct across toggles. Effectively
  // process-global — the per-node ablation toggle (NodeOptions::tuple_arenas)
  // writes through to this and is documented as fleet-uniform.
  static void SetEnabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  static bool Enabled() { return enabled_.load(std::memory_order_relaxed); }

  // Returns a block of at least `size` bytes (class-rounded). Never null for
  // reasonable sizes; allocation failure throws std::bad_alloc like operator new.
  static void* Allocate(std::size_t size);
  // Returns a block obtained from Allocate with the same `size`.
  static void Deallocate(void* p, std::size_t size) noexcept;

  // Bytes / blocks actually obtained from the heap since process start
  // (class-rounded; recycled pops excluded). Monotonic, fleet-wide.
  static std::uint64_t FreshBytes() {
    return fresh_bytes_.load(std::memory_order_relaxed);
  }
  static std::uint64_t FreshBlocks() {
    return fresh_blocks_.load(std::memory_order_relaxed);
  }
  // Blocks served from a free list since process start.
  static std::uint64_t RecycledBlocks() {
    return recycled_blocks_.load(std::memory_order_relaxed);
  }

  // Blocks currently parked on the calling thread's free lists.
  static std::size_t ThreadCachedBlocks();
  // Releases the calling thread's cached blocks back to the heap (tests).
  static void TrimThreadCache();

 private:
  static std::atomic<bool> enabled_;
  static std::atomic<std::uint64_t> fresh_bytes_;
  static std::atomic<std::uint64_t> fresh_blocks_;
  static std::atomic<std::uint64_t> recycled_blocks_;
};

// Minimal stateless STL allocator routing through TupleArena. Used for the
// ValueList element buffer and the allocate_shared block behind Tuple::Make, so
// the whole storage of a tuple recycles through the same free lists.
template <typename T>
struct ArenaAllocator {
  using value_type = T;

  ArenaAllocator() = default;
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>&) {}  // NOLINT(runtime/explicit)

  T* allocate(std::size_t n) {
    return static_cast<T*>(TupleArena::Allocate(n * sizeof(T)));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    TupleArena::Deallocate(p, n * sizeof(T));
  }

  template <typename U>
  bool operator==(const ArenaAllocator<U>&) const {
    return true;
  }
  template <typename U>
  bool operator!=(const ArenaAllocator<U>&) const {
    return false;
  }
};

}  // namespace p2

#endif  // SRC_RUNTIME_ARENA_H_
