#include "src/runtime/value.h"

#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <functional>

#include "src/common/strings.h"

namespace p2 {

namespace {

[[noreturn]] void BadAccess(const char* what) {
  fprintf(stderr, "p2::Value: bad access: %s\n", what);
  abort();
}

// Kinds that participate in unsigned modular arithmetic.
bool IsId(const Value& v) { return v.kind() == Value::Kind::kId; }
bool IsDoubleKind(const Value& v) { return v.kind() == Value::Kind::kDouble; }

}  // namespace

Value Value::Bool(bool b) {
  Value v;
  v.kind_ = Kind::kBool;
  v.b_ = b;
  return v;
}

Value Value::Int(int64_t i) {
  Value v;
  v.kind_ = Kind::kInt;
  v.i_ = i;
  return v;
}

Value Value::Id(uint64_t u) {
  Value v;
  v.kind_ = Kind::kId;
  v.u_ = u;
  return v;
}

Value Value::Double(double d) {
  Value v;
  v.kind_ = Kind::kDouble;
  v.d_ = d;
  return v;
}

Value Value::Str(std::string s) {
  Value v;
  new (&v.s_) std::string(std::move(s));
  v.kind_ = Kind::kString;
  return v;
}

Value Value::List(ValueList items) {
  Value v;
  // The control block and the vector object recycle through the tuple arena like
  // everything else tuple-shaped; the element buffer already does (ValueList).
  new (&v.l_) std::shared_ptr<const ValueList>(
      std::allocate_shared<const ValueList>(ArenaAllocator<ValueList>(),
                                            std::move(items)));
  v.kind_ = Kind::kList;
  return v;
}

bool Value::AsBool() const {
  if (kind_ != Kind::kBool) {
    BadAccess("AsBool");
  }
  return b_;
}

int64_t Value::AsInt() const {
  if (kind_ != Kind::kInt) {
    BadAccess("AsInt");
  }
  return i_;
}

uint64_t Value::AsId() const {
  if (kind_ != Kind::kId) {
    BadAccess("AsId");
  }
  return u_;
}

double Value::AsDouble() const {
  if (kind_ != Kind::kDouble) {
    BadAccess("AsDouble");
  }
  return d_;
}

const std::string& Value::AsString() const {
  if (kind_ != Kind::kString) {
    BadAccess("AsString");
  }
  return s_;
}

const ValueList& Value::AsList() const {
  if (kind_ != Kind::kList) {
    BadAccess("AsList");
  }
  return *l_;
}

double Value::ToDouble() const {
  switch (kind_) {
    case Kind::kBool:
      return b_ ? 1.0 : 0.0;
    case Kind::kInt:
      return static_cast<double>(i_);
    case Kind::kId:
      return static_cast<double>(u_);
    case Kind::kDouble:
      return d_;
    default:
      BadAccess("ToDouble");
  }
}

uint64_t Value::ToUint() const {
  switch (kind_) {
    case Kind::kBool:
      return b_ ? 1 : 0;
    case Kind::kInt:
      return static_cast<uint64_t>(i_);
    case Kind::kId:
      return u_;
    case Kind::kDouble:
      return static_cast<uint64_t>(d_);
    default:
      BadAccess("ToUint");
  }
}

int64_t Value::ToInt() const {
  switch (kind_) {
    case Kind::kBool:
      return b_ ? 1 : 0;
    case Kind::kInt:
      return i_;
    case Kind::kId:
      return static_cast<int64_t>(u_);
    case Kind::kDouble:
      return static_cast<int64_t>(d_);
    default:
      BadAccess("ToInt");
  }
}

bool Value::Truthy() const {
  switch (kind_) {
    case Kind::kNull:
      return false;
    case Kind::kBool:
      return b_;
    case Kind::kInt:
      return i_ != 0;
    case Kind::kId:
      return u_ != 0;
    case Kind::kDouble:
      return d_ != 0;
    case Kind::kString:
      return !s_.empty();
    case Kind::kList:
      return !l_->empty();
  }
  return false;
}

bool Value::operator==(const Value& other) const { return Compare(other) == 0; }

int Value::Compare(const Value& other) const {
  // Numeric kinds compare by value across kinds.
  if (is_numeric() && other.is_numeric()) {
    // Prefer exact unsigned comparison when neither side is a double: ids may exceed
    // the 53-bit exactly-representable range of double.
    if (!IsDoubleKind(*this) && !IsDoubleKind(other)) {
      if (kind_ == Kind::kInt && other.kind_ == Kind::kInt) {
        return i_ < other.i_ ? -1 : (i_ > other.i_ ? 1 : 0);
      }
      // Mixed Int/Id or Id/Id: a negative Int is below any Id.
      if (kind_ == Kind::kInt && i_ < 0) {
        return -1;
      }
      if (other.kind_ == Kind::kInt && other.i_ < 0) {
        return 1;
      }
      uint64_t a = ToUint();
      uint64_t b = other.ToUint();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    double a = ToDouble();
    double b = other.ToDouble();
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  if (kind_ != other.kind_) {
    return static_cast<int>(kind_) < static_cast<int>(other.kind_) ? -1 : 1;
  }
  switch (kind_) {
    case Kind::kNull:
      return 0;
    case Kind::kBool:
      return b_ == other.b_ ? 0 : (b_ ? 1 : -1);
    case Kind::kString: {
      int c = s_.compare(other.s_);
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
    case Kind::kList: {
      const ValueList& a = *l_;
      const ValueList& b = *other.l_;
      size_t n = std::min(a.size(), b.size());
      for (size_t i = 0; i < n; ++i) {
        int c = a[i].Compare(b[i]);
        if (c != 0) {
          return c;
        }
      }
      return a.size() < b.size() ? -1 : (a.size() > b.size() ? 1 : 0);
    }
    default:
      return 0;  // unreachable: numeric kinds handled above
  }
}

Value Value::Add(const Value& a, const Value& b) {
  if (a.kind_ == Kind::kString || b.kind_ == Kind::kString) {
    return Str(a.ToString() + b.ToString());
  }
  if (a.kind_ == Kind::kList && b.kind_ == Kind::kList) {
    ValueList out = a.AsList();
    for (const Value& v : b.AsList()) {
      out.push_back(v);
    }
    return List(std::move(out));
  }
  if (!a.is_numeric() || !b.is_numeric()) {
    return Null();
  }
  if (IsId(a) || IsId(b)) {
    return Id(a.ToUint() + b.ToUint());  // modular 2^64
  }
  if (IsDoubleKind(a) || IsDoubleKind(b)) {
    return Double(a.ToDouble() + b.ToDouble());
  }
  return Int(a.ToInt() + b.ToInt());
}

Value Value::Sub(const Value& a, const Value& b) {
  if (!a.is_numeric() || !b.is_numeric()) {
    return Null();
  }
  if (IsId(a) || IsId(b)) {
    return Id(a.ToUint() - b.ToUint());  // modular 2^64
  }
  if (IsDoubleKind(a) || IsDoubleKind(b)) {
    return Double(a.ToDouble() - b.ToDouble());
  }
  return Int(a.ToInt() - b.ToInt());
}

Value Value::Mul(const Value& a, const Value& b) {
  if (!a.is_numeric() || !b.is_numeric()) {
    return Null();
  }
  if (IsId(a) || IsId(b)) {
    return Id(a.ToUint() * b.ToUint());
  }
  if (IsDoubleKind(a) || IsDoubleKind(b)) {
    return Double(a.ToDouble() * b.ToDouble());
  }
  return Int(a.ToInt() * b.ToInt());
}

Value Value::Div(const Value& a, const Value& b) {
  if (!a.is_numeric() || !b.is_numeric()) {
    return Null();
  }
  // The paper's consistency metric divides two counts and expects a ratio; division is
  // therefore double-valued unless both operands are Ids.
  if (IsId(a) && IsId(b)) {
    if (b.ToUint() == 0) {
      return Null();
    }
    return Id(a.ToUint() / b.ToUint());
  }
  double denom = b.ToDouble();
  if (denom == 0) {
    return Null();
  }
  return Double(a.ToDouble() / denom);
}

Value Value::Mod(const Value& a, const Value& b) {
  if (!a.is_numeric() || !b.is_numeric()) {
    return Null();
  }
  if (IsDoubleKind(a) || IsDoubleKind(b)) {
    double m = b.ToDouble();
    if (m == 0) {
      return Null();
    }
    return Double(std::fmod(a.ToDouble(), m));
  }
  if (IsId(a) || IsId(b)) {
    uint64_t m = b.ToUint();
    if (m == 0) {
      return Null();
    }
    return Id(a.ToUint() % m);
  }
  int64_t m = b.ToInt();
  if (m == 0) {
    return Null();
  }
  return Int(a.ToInt() % m);
}

Value Value::Neg(const Value& a) {
  switch (a.kind_) {
    case Kind::kInt:
      return Int(-a.i_);
    case Kind::kId:
      return Id(~a.u_ + 1);
    case Kind::kDouble:
      return Double(-a.d_);
    default:
      return Null();
  }
}

bool Value::InInterval(const Value& x, const Value& lo, const Value& hi, bool open_left,
                       bool open_right) {
  if (!x.is_numeric() || !lo.is_numeric() || !hi.is_numeric()) {
    return false;
  }
  const bool ring = IsId(x) || IsId(lo) || IsId(hi);
  if (!ring) {
    double v = x.ToDouble();
    double a = lo.ToDouble();
    double b = hi.ToDouble();
    bool low_ok = open_left ? (v > a) : (v >= a);
    bool high_ok = open_right ? (v < b) : (v <= b);
    return low_ok && high_ok;
  }
  uint64_t v = x.ToUint();
  uint64_t a = lo.ToUint();
  uint64_t b = hi.ToUint();
  // Closed endpoints match outright; Chord's `(n, n]` convention then makes an interval
  // with equal endpoints cover the entire ring.
  if (!open_left && v == a) {
    return true;
  }
  if (!open_right && v == b) {
    return true;
  }
  if (v == a || v == b) {
    return false;  // endpoint, but that side is open
  }
  uint64_t da = v - a;  // distance from a, wrapping
  uint64_t db = b - a;  // interval length, wrapping
  if (db == 0) {
    return true;  // a == b, v distinct: full ring
  }
  return da < db;
}

std::string Value::ToString() const {
  switch (kind_) {
    case Kind::kNull:
      return "null";
    case Kind::kBool:
      return b_ ? "true" : "false";
    case Kind::kInt:
      return std::to_string(i_);
    case Kind::kId:
      return std::to_string(u_);
    case Kind::kDouble: {
      // Print doubles compactly; times are seconds with microsecond precision.
      std::string s = StrFormat("%.6g", d_);
      return s;
    }
    case Kind::kString:
      return s_;
    case Kind::kList: {
      std::string out = "[";
      for (size_t i = 0; i < l_->size(); ++i) {
        if (i > 0) {
          out += ", ";
        }
        out += (*l_)[i].ToString();
      }
      out += "]";
      return out;
    }
  }
  return "?";
}

size_t Value::Hash() const {
  auto mix = [](size_t h, size_t v) { return h * 1099511628211ULL ^ v; };
  if (is_numeric() || kind_ == Kind::kBool) {
    // Hash by canonical numeric value so Int(3), Id(3), Double(3.0) collide (they
    // compare equal). Non-double kinds hash their two's-complement 64-bit image; whole
    // doubles hash the same image so equality implies hash equality.
    if (!IsDoubleKind(*this)) {
      return mix(14695981039346656037ULL, std::hash<uint64_t>()(ToUint()));
    }
    double d = ToDouble();
    if (std::trunc(d) == d && d >= -9.2e18 && d < 9.2e18) {
      return mix(14695981039346656037ULL,
                 std::hash<uint64_t>()(static_cast<uint64_t>(static_cast<int64_t>(d))));
    }
    if (std::trunc(d) == d && d >= 0 && d < 1.8e19) {
      return mix(14695981039346656037ULL, std::hash<uint64_t>()(static_cast<uint64_t>(d)));
    }
    return mix(14695981039346656037ULL, std::hash<double>()(d));
  }
  switch (kind_) {
    case Kind::kNull:
      return 0x9e3779b9;
    case Kind::kString:
      return mix(0x5bd1e995, std::hash<std::string>()(s_));
    case Kind::kList: {
      size_t h = 0x27d4eb2f;
      for (const Value& v : *l_) {
        h = mix(h, v.Hash());
      }
      return h;
    }
    default:
      return 0;
  }
}

size_t Value::ByteSize() const {
  size_t base = sizeof(Value);
  if (kind_ == Kind::kString) {
    base += s_.size();
  } else if (kind_ == Kind::kList) {
    for (const Value& v : *l_) {
      base += v.ByteSize();
    }
  }
  return base;
}

}  // namespace p2
