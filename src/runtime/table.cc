#include "src/runtime/table.h"

#include <cmath>

namespace p2 {

Table::Table(TableSpec spec) : spec_(std::move(spec)) {}

bool Table::Key::operator==(const Key& other) const {
  if (hash != other.hash || vals.size() != other.vals.size()) {
    return false;
  }
  for (size_t i = 0; i < vals.size(); ++i) {
    if (!(vals[i] == other.vals[i])) {
      return false;
    }
  }
  return true;
}

Table::Key Table::MakeKey(const Tuple& t) const {
  Key key;
  if (spec_.key_fields.empty()) {
    key.vals = t.fields();
  } else {
    key.vals.reserve(spec_.key_fields.size());
    for (size_t pos : spec_.key_fields) {
      key.vals.push_back(pos < t.arity() ? t.field(pos) : Value::Null());
    }
  }
  size_t h = 1469598103934665603ULL;
  for (const Value& v : key.vals) {
    h = h * 1099511628211ULL ^ v.Hash();
  }
  key.hash = h;
  return key;
}

void Table::Notify(TableChange change, const TupleRef& t) {
  for (const Listener& fn : listeners_) {
    fn(change, t);
  }
}

InsertOutcome Table::Insert(const TupleRef& t, double now) {
  ExpireStale(now);
  Key key = MakeKey(*t);
  double expires = std::isinf(spec_.lifetime_secs)
                       ? std::numeric_limits<double>::infinity()
                       : now + spec_.lifetime_secs;
  auto it = index_.find(key);
  if (it != index_.end()) {
    Row& row = *it->second;
    if (*row.tuple == *t) {
      row.expires_at = expires;  // identical: refresh lifetime only, no delta
      ++counters_.refreshes;
      return InsertOutcome::kRefreshed;
    }
    row.tuple = t;
    row.expires_at = expires;
    ++counters_.inserts;
    Notify(TableChange::kInsert, t);
    return InsertOutcome::kReplaced;
  }
  rows_.push_back(Row{t, expires, next_seq_++});
  index_.emplace(std::move(key), std::prev(rows_.end()));
  min_expiry_ = std::min(min_expiry_, expires);
  EvictOverflow();
  ++counters_.inserts;
  Notify(TableChange::kInsert, t);
  return InsertOutcome::kNew;
}

void Table::EvictOverflow() {
  while (rows_.size() > spec_.max_size) {
    Row victim = rows_.front();
    index_.erase(MakeKey(*victim.tuple));
    rows_.pop_front();
    ++counters_.evictions;
    Notify(TableChange::kEvict, victim.tuple);
  }
}

size_t Table::DeleteMatching(const std::vector<Value>& pattern,
                             const std::vector<bool>& bound, double now) {
  ExpireStale(now);
  size_t deleted = 0;
  for (auto it = rows_.begin(); it != rows_.end();) {
    const Tuple& t = *it->tuple;
    bool match = true;
    for (size_t i = 0; i < pattern.size() && i < t.arity(); ++i) {
      if (i < bound.size() && bound[i] && !(pattern[i] == t.field(i))) {
        match = false;
        break;
      }
    }
    if (match) {
      TupleRef victim = it->tuple;
      index_.erase(MakeKey(t));
      it = rows_.erase(it);
      ++deleted;
      ++counters_.deletes;
      Notify(TableChange::kDelete, victim);
    } else {
      ++it;
    }
  }
  return deleted;
}

size_t Table::ExpireStale(double now) {
  if (now < min_expiry_) {
    return 0;  // nothing can have expired yet
  }
  size_t expired = 0;
  double next_min = std::numeric_limits<double>::infinity();
  for (auto it = rows_.begin(); it != rows_.end();) {
    if (it->expires_at <= now) {
      TupleRef victim = it->tuple;
      index_.erase(MakeKey(*victim));
      it = rows_.erase(it);
      ++expired;
      ++counters_.expires;
      Notify(TableChange::kExpire, victim);
    } else {
      next_min = std::min(next_min, it->expires_at);
      ++it;
    }
  }
  min_expiry_ = next_min;
  return expired;
}

TupleRef Table::FindByKey(const ValueList& key_values, double now) {
  ExpireStale(now);
  Key key;
  key.vals = key_values;
  size_t h = 1469598103934665603ULL;
  for (const Value& v : key.vals) {
    h = h * 1099511628211ULL ^ v.Hash();
  }
  key.hash = h;
  auto it = index_.find(key);
  return it == index_.end() ? nullptr : it->second->tuple;
}

std::vector<TupleRef> Table::Scan(double now) {
  ExpireStale(now);
  std::vector<TupleRef> out;
  out.reserve(rows_.size());
  for (const Row& row : rows_) {
    out.push_back(row.tuple);
  }
  return out;
}

size_t Table::Size(double now) {
  ExpireStale(now);
  return rows_.size();
}

size_t Table::ByteSize() const {
  size_t bytes = 0;
  for (const Row& row : rows_) {
    bytes += row.tuple->ByteSize();
  }
  return bytes;
}

}  // namespace p2
