#include "src/runtime/table.h"

#include <cmath>
#include <iterator>

namespace p2 {

Table::Table(TableSpec spec) : spec_(std::move(spec)) {}

bool Table::Key::operator==(const Key& other) const {
  if (hash != other.hash || vals.size() != other.vals.size()) {
    return false;
  }
  for (size_t i = 0; i < vals.size(); ++i) {
    if (!(vals[i] == other.vals[i])) {
      return false;
    }
  }
  return true;
}

Table::Key Table::MakeKey(const Tuple& t) const {
  Key key;
  if (spec_.key_fields.empty()) {
    key.vals = t.fields();
  } else {
    key.vals.reserve(spec_.key_fields.size());
    for (size_t pos : spec_.key_fields) {
      key.vals.push_back(pos < t.arity() ? t.field(pos) : Value::Null());
    }
  }
  key.hash = HashValues(key.vals);
  return key;
}

size_t Table::HashValues(const ValueList& vals) {
  size_t h = 1469598103934665603ULL;
  for (const Value& v : vals) {
    h = h * 1099511628211ULL ^ v.Hash();
  }
  return h;
}

size_t Table::HashAt(const Tuple& t, const std::vector<size_t>& positions) const {
  size_t h = 1469598103934665603ULL;
  for (size_t pos : positions) {
    h = h * 1099511628211ULL ^ (pos < t.arity() ? t.field(pos) : Value::Null()).Hash();
  }
  return h;
}

size_t Table::EnsureIndex(std::vector<size_t> positions) {
  for (size_t i = 0; i < secondary_.size(); ++i) {
    if (secondary_[i]->positions == positions) {
      return i;
    }
  }
  auto index = std::make_unique<SecondaryIndex>();
  index->positions = std::move(positions);
  for (auto it = rows_.begin(); it != rows_.end(); ++it) {
    index->map[HashAt(*it->tuple, index->positions)].emplace(it->seq, it);
    ++index->entries;
  }
  secondary_.push_back(std::move(index));
  return secondary_.size() - 1;
}

void Table::SecondaryAdd(std::list<Row>::iterator it) {
  for (auto& index : secondary_) {
    index->map[HashAt(*it->tuple, index->positions)].emplace(it->seq, it);
    ++index->entries;
  }
}

void Table::SecondaryRemove(std::list<Row>::iterator it) {
  for (auto& index : secondary_) {
    auto bucket = index->map.find(HashAt(*it->tuple, index->positions));
    if (bucket == index->map.end()) {
      continue;
    }
    if (bucket->second.erase(it->seq) > 0) {
      --index->entries;
    }
    if (bucket->second.empty()) {
      index->map.erase(bucket);
    }
  }
}

std::vector<Table::IndexStats> Table::IndexStatsSnapshot() const {
  std::vector<IndexStats> out;
  out.reserve(secondary_.size());
  for (const auto& index : secondary_) {
    out.push_back({index->positions, index->probes, index->rows_yielded, index->entries});
  }
  return out;
}

void Table::Notify(TableChange change, const TupleRef& t) {
  for (const Listener& fn : listeners_) {
    fn(change, t);
  }
}

InsertOutcome Table::Insert(const TupleRef& t, double now) {
  ExpireStale(now);
  Key key = MakeKey(*t);
  double expires = std::isinf(spec_.lifetime_secs)
                       ? std::numeric_limits<double>::infinity()
                       : now + spec_.lifetime_secs;
  auto it = index_.find(key);
  if (it != index_.end()) {
    Row& row = *it->second;
    if (*row.tuple == *t) {
      row.expires_at = expires;  // identical: refresh lifetime only, no delta
      ++counters_.refreshes;
      return InsertOutcome::kRefreshed;
    }
    SecondaryRemove(it->second);  // indexed field values may change with the payload
    row.tuple = t;
    row.expires_at = expires;
    SecondaryAdd(it->second);
    ++counters_.inserts;
    Notify(TableChange::kInsert, t);
    return InsertOutcome::kReplaced;
  }
  rows_.push_back(Row{t, expires, next_seq_++});
  index_.emplace(std::move(key), std::prev(rows_.end()));
  SecondaryAdd(std::prev(rows_.end()));
  min_expiry_ = std::min(min_expiry_, expires);
  EvictOverflow();
  ++counters_.inserts;
  Notify(TableChange::kInsert, t);
  return InsertOutcome::kNew;
}

void Table::EvictOverflow() {
  if (iter_depth_ > 0) {
    // A walk is in flight: erasing would invalidate it. EndIterMaintenance
    // re-checks the size bound once the outermost walk ends.
    return;
  }
  while (rows_.size() > spec_.max_size) {
    // Evict the row closest to expiry: capacity pressure accelerates the aging the
    // table would do anyway. Refreshes push a row's expiry out, so soft state that
    // is still being maintained (e.g. a Chord node's own best successor) survives
    // while once-gossiped entries go first. Ties (notably infinite-lifetime tables)
    // fall back to insertion order, since rows_ is insertion-ordered.
    auto victim_it = rows_.begin();
    for (auto it = std::next(rows_.begin()); it != rows_.end(); ++it) {
      if (it->expires_at < victim_it->expires_at) {
        victim_it = it;
      }
    }
    Row victim = *victim_it;
    index_.erase(MakeKey(*victim.tuple));
    SecondaryRemove(victim_it);
    rows_.erase(victim_it);
    ++counters_.evictions;
    Notify(TableChange::kEvict, victim.tuple);
  }
}

size_t Table::DeleteMatching(const ValueList& pattern,
                             const std::vector<bool>& bound, double now) {
  ExpireStale(now);
  size_t deleted = 0;
  for (auto it = rows_.begin(); it != rows_.end();) {
    if (it->expires_at <= now) {
      ++it;  // expired or already deleted; purge was deferred by an in-flight walk
      continue;
    }
    const Tuple& t = *it->tuple;
    bool match = true;
    for (size_t i = 0; i < pattern.size() && i < t.arity(); ++i) {
      if (i < bound.size() && bound[i] && !(pattern[i] == t.field(i))) {
        match = false;
        break;
      }
    }
    if (match) {
      TupleRef victim = it->tuple;
      index_.erase(MakeKey(t));
      SecondaryRemove(it);
      if (iter_depth_ > 0) {
        // A walk is in flight (e.g. tracer GC firing mid-join): erasing would
        // invalidate it. Unlink from the indexes now, hide the row from every
        // access, and leave the corpse for EndIterMaintenance.
        it->dead = true;
        it->expires_at = -std::numeric_limits<double>::infinity();
        has_dead_ = true;
        ++it;
      } else {
        it = rows_.erase(it);
      }
      ++deleted;
      ++counters_.deletes;
      Notify(TableChange::kDelete, victim);
    } else {
      ++it;
    }
  }
  return deleted;
}

void Table::EndIterMaintenance() {
  if (has_dead_) {
    has_dead_ = false;
    for (auto it = rows_.begin(); it != rows_.end();) {
      // Counters and listeners already fired at mark time; just drop the corpse.
      it = it->dead ? rows_.erase(it) : std::next(it);
    }
  }
  if (rows_.size() > spec_.max_size) {
    EvictOverflow();  // inserts mid-walk skipped the size bound
  }
}

size_t Table::ExpireStale(double now) {
  if (now < min_expiry_) {
    return 0;  // nothing can have expired yet
  }
  if (iter_depth_ > 0) {
    // Rows are being walked (possibly by this very caller, re-entering through a
    // nested self-join probe): erasing would invalidate the walk. Iterations filter
    // stale rows per row; the purge happens on the next non-nested access.
    return 0;
  }
  size_t expired = 0;
  double next_min = std::numeric_limits<double>::infinity();
  for (auto it = rows_.begin(); it != rows_.end();) {
    if (it->expires_at <= now) {
      TupleRef victim = it->tuple;
      index_.erase(MakeKey(*victim));
      SecondaryRemove(it);
      it = rows_.erase(it);
      ++expired;
      ++counters_.expires;
      Notify(TableChange::kExpire, victim);
    } else {
      next_min = std::min(next_min, it->expires_at);
      ++it;
    }
  }
  min_expiry_ = next_min;
  return expired;
}

TupleRef Table::FindByKey(const ValueList& key_values, double now) {
  ExpireStale(now);
  Key key;
  key.vals = key_values;
  key.hash = HashValues(key.vals);
  auto it = index_.find(key);
  if (it == index_.end() || it->second->expires_at <= now) {
    return nullptr;  // stale rows survive the (possibly deferred) purge; never match
  }
  return it->second->tuple;
}

std::vector<TupleRef> Table::Scan(double now) {
  ExpireStale(now);
  std::vector<TupleRef> out;
  out.reserve(rows_.size());
  for (const Row& row : rows_) {
    if (row.expires_at <= now) {
      continue;  // purge was deferred by an in-flight iteration
    }
    out.push_back(row.tuple);
  }
  return out;
}

size_t Table::Size(double now) {
  ExpireStale(now);
  if (iter_depth_ > 0 && (has_dead_ || now >= min_expiry_)) {
    // The purge was deferred by an in-flight iteration: count live rows explicitly.
    size_t live = 0;
    for (const Row& row : rows_) {
      live += row.expires_at > now ? 1 : 0;
    }
    return live;
  }
  return rows_.size();
}

size_t Table::ByteSize() const {
  size_t bytes = 0;
  for (const Row& row : rows_) {
    bytes += row.tuple->ByteSize();
  }
  return bytes;
}

}  // namespace p2
