#include "src/runtime/catalog.h"

namespace p2 {

bool Catalog::CreateTable(const TableSpec& spec) {
  if (tables_.count(spec.name) > 0) {
    return false;
  }
  auto table = std::make_unique<Table>(spec);
  Table* raw = table.get();
  tables_.emplace(spec.name, std::move(table));
  order_.push_back(raw);
  return true;
}

Table* Catalog::Get(const std::string& name) {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

const Table* Catalog::Get(const std::string& name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

std::vector<Table*> Catalog::AllTables() { return order_; }

size_t Catalog::TotalRows(double now) {
  size_t total = 0;
  for (Table* t : order_) {
    total += t->Size(now);
  }
  return total;
}

size_t Catalog::TotalBytes() const {
  size_t total = 0;
  for (Table* t : order_) {
    total += t->ByteSize();
  }
  return total;
}

}  // namespace p2
