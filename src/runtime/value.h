// Value: the dynamically typed scalar that fills tuple fields.
//
// P2's relational model is untyped at the language level; a tuple field may hold a node
// address (string), a 64-bit ring identifier, a wall-clock time (double), a count, or a
// nested list. Value is a small tagged union covering those cases, with the arithmetic
// and comparison semantics the OverLog dialect needs:
//
//  * Id (+ - * ...) Id      -> modular 2^64 arithmetic (the Chord identifier ring).
//  * Int/Double arithmetic  -> the usual numeric semantics with promotion to double.
//  * String + anything      -> concatenation of printed forms (used by the paper's
//                              snapshot rules to build composite keys, e.g. Remote + E).
//  * `X in (A, B]`          -> ring-interval membership for Ids, linear for numbers.
//
// Storage is a real union: the numeric kinds share one word, strings live inline by
// value (short strings — node addresses, rule ids, state labels — stay in the small-
// string buffer and never touch the heap), and only lists indirect through a shared
// pointer. ValueList element buffers come from the tuple arena (src/runtime/arena.h),
// so field vectors recycle instead of churning the heap.

#ifndef SRC_RUNTIME_VALUE_H_
#define SRC_RUNTIME_VALUE_H_

#include <cstdint>
#include <memory>
#include <new>
#include <string>
#include <utility>
#include <vector>

#include "src/runtime/arena.h"

namespace p2 {

class Value;
using ValueList = std::vector<Value, ArenaAllocator<Value>>;

class Value {
 public:
  enum class Kind : uint8_t {
    kNull,
    kBool,
    kInt,     // signed 64-bit
    kId,      // unsigned 64-bit ring identifier / nonce / address-ish numeric
    kDouble,  // wall-clock times, ratios
    kString,  // node addresses, rule ids, state labels
    kList,    // nested values (e.g. path vectors)
  };

  // Constructors. The default value is null.
  Value() : kind_(Kind::kNull), u_(0) {}
  Value(const Value& other) { CopyFrom(other); }
  Value(Value&& other) noexcept { MoveFrom(std::move(other)); }
  Value& operator=(const Value& other) {
    if (this != &other) {
      Destroy();
      CopyFrom(other);
    }
    return *this;
  }
  Value& operator=(Value&& other) noexcept {
    if (this != &other) {
      Destroy();
      MoveFrom(std::move(other));
    }
    return *this;
  }
  ~Value() { Destroy(); }

  static Value Null() { return Value(); }
  static Value Bool(bool b);
  static Value Int(int64_t v);
  static Value Id(uint64_t v);
  static Value Double(double v);
  static Value Str(std::string s);
  static Value List(ValueList items);

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_numeric() const {
    return kind_ == Kind::kInt || kind_ == Kind::kId || kind_ == Kind::kDouble;
  }

  // Accessors; calling the wrong one aborts (programming error, not data error).
  bool AsBool() const;
  int64_t AsInt() const;
  uint64_t AsId() const;
  double AsDouble() const;
  const std::string& AsString() const;
  const ValueList& AsList() const;

  // Numeric coercions (valid for any numeric kind; bool coerces to 0/1).
  double ToDouble() const;
  uint64_t ToUint() const;
  int64_t ToInt() const;

  // Truthiness: null/false/0/"" are false, everything else true.
  bool Truthy() const;

  // Structural equality and a total order (kind-major, then value). Numeric kinds
  // compare by value across kinds so that Int(3) == Id(3) == Double(3.0).
  bool operator==(const Value& other) const;
  bool operator!=(const Value& other) const { return !(*this == other); }
  // Returns <0, 0, >0.
  int Compare(const Value& other) const;
  bool operator<(const Value& other) const { return Compare(other) < 0; }

  // Arithmetic following the dialect rules described in the header comment. Division or
  // modulo by zero yields null.
  static Value Add(const Value& a, const Value& b);
  static Value Sub(const Value& a, const Value& b);
  static Value Mul(const Value& a, const Value& b);
  static Value Div(const Value& a, const Value& b);
  static Value Mod(const Value& a, const Value& b);
  static Value Neg(const Value& a);

  // Ring / linear interval membership for `x in <A, B>` where each side may be open or
  // closed. Id endpoints use modular (wrap-around) semantics; `(a, a]` with equal
  // endpoints denotes the full ring.
  static bool InInterval(const Value& x, const Value& lo, const Value& hi, bool open_left,
                         bool open_right);

  // Printing (used by traces, logs, marshaling tests, and string concatenation).
  std::string ToString() const;

  // Hash consistent with operator== (numeric kinds hash by canonical numeric value).
  size_t Hash() const;

  // Approximate heap footprint in bytes, for the memory-accounting benchmarks.
  size_t ByteSize() const;

 private:
  void Destroy() {
    if (kind_ == Kind::kString) {
      s_.~basic_string();
    } else if (kind_ == Kind::kList) {
      l_.~shared_ptr();
    }
  }
  void CopyFrom(const Value& other) {
    kind_ = other.kind_;
    switch (kind_) {
      case Kind::kNull:
        u_ = 0;
        break;
      case Kind::kBool:
        b_ = other.b_;
        break;
      case Kind::kInt:
        i_ = other.i_;
        break;
      case Kind::kId:
        u_ = other.u_;
        break;
      case Kind::kDouble:
        d_ = other.d_;
        break;
      case Kind::kString:
        new (&s_) std::string(other.s_);
        break;
      case Kind::kList:
        new (&l_) std::shared_ptr<const ValueList>(other.l_);
        break;
    }
  }
  // Leaves `other` null so its destructor has nothing to tear down.
  void MoveFrom(Value&& other) noexcept {
    kind_ = other.kind_;
    switch (kind_) {
      case Kind::kNull:
        u_ = 0;
        break;
      case Kind::kBool:
        b_ = other.b_;
        break;
      case Kind::kInt:
        i_ = other.i_;
        break;
      case Kind::kId:
        u_ = other.u_;
        break;
      case Kind::kDouble:
        d_ = other.d_;
        break;
      case Kind::kString:
        new (&s_) std::string(std::move(other.s_));
        other.s_.~basic_string();
        break;
      case Kind::kList:
        new (&l_) std::shared_ptr<const ValueList>(std::move(other.l_));
        other.l_.~shared_ptr();
        break;
    }
    other.kind_ = Kind::kNull;
    other.u_ = 0;
  }

  Kind kind_;
  union {
    bool b_;
    int64_t i_;
    uint64_t u_;
    double d_;
    std::string s_;
    std::shared_ptr<const ValueList> l_;
  };
};

}  // namespace p2

#endif  // SRC_RUNTIME_VALUE_H_
