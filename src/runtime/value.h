// Value: the dynamically typed scalar that fills tuple fields.
//
// P2's relational model is untyped at the language level; a tuple field may hold a node
// address (string), a 64-bit ring identifier, a wall-clock time (double), a count, or a
// nested list. Value is a small tagged union covering those cases, with the arithmetic
// and comparison semantics the OverLog dialect needs:
//
//  * Id (+ - * ...) Id      -> modular 2^64 arithmetic (the Chord identifier ring).
//  * Int/Double arithmetic  -> the usual numeric semantics with promotion to double.
//  * String + anything      -> concatenation of printed forms (used by the paper's
//                              snapshot rules to build composite keys, e.g. Remote + E).
//  * `X in (A, B]`          -> ring-interval membership for Ids, linear for numbers.

#ifndef SRC_RUNTIME_VALUE_H_
#define SRC_RUNTIME_VALUE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace p2 {

class Value;
using ValueList = std::vector<Value>;

class Value {
 public:
  enum class Kind : uint8_t {
    kNull,
    kBool,
    kInt,     // signed 64-bit
    kId,      // unsigned 64-bit ring identifier / nonce / address-ish numeric
    kDouble,  // wall-clock times, ratios
    kString,  // node addresses, rule ids, state labels
    kList,    // nested values (e.g. path vectors)
  };

  // Constructors. The default value is null.
  Value() : kind_(Kind::kNull) {}
  static Value Null() { return Value(); }
  static Value Bool(bool b);
  static Value Int(int64_t v);
  static Value Id(uint64_t v);
  static Value Double(double v);
  static Value Str(std::string s);
  static Value List(ValueList items);

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_numeric() const {
    return kind_ == Kind::kInt || kind_ == Kind::kId || kind_ == Kind::kDouble;
  }

  // Accessors; calling the wrong one aborts (programming error, not data error).
  bool AsBool() const;
  int64_t AsInt() const;
  uint64_t AsId() const;
  double AsDouble() const;
  const std::string& AsString() const;
  const ValueList& AsList() const;

  // Numeric coercions (valid for any numeric kind; bool coerces to 0/1).
  double ToDouble() const;
  uint64_t ToUint() const;
  int64_t ToInt() const;

  // Truthiness: null/false/0/"" are false, everything else true.
  bool Truthy() const;

  // Structural equality and a total order (kind-major, then value). Numeric kinds
  // compare by value across kinds so that Int(3) == Id(3) == Double(3.0).
  bool operator==(const Value& other) const;
  bool operator!=(const Value& other) const { return !(*this == other); }
  // Returns <0, 0, >0.
  int Compare(const Value& other) const;
  bool operator<(const Value& other) const { return Compare(other) < 0; }

  // Arithmetic following the dialect rules described in the header comment. Division or
  // modulo by zero yields null.
  static Value Add(const Value& a, const Value& b);
  static Value Sub(const Value& a, const Value& b);
  static Value Mul(const Value& a, const Value& b);
  static Value Div(const Value& a, const Value& b);
  static Value Mod(const Value& a, const Value& b);
  static Value Neg(const Value& a);

  // Ring / linear interval membership for `x in <A, B>` where each side may be open or
  // closed. Id endpoints use modular (wrap-around) semantics; `(a, a]` with equal
  // endpoints denotes the full ring.
  static bool InInterval(const Value& x, const Value& lo, const Value& hi, bool open_left,
                         bool open_right);

  // Printing (used by traces, logs, marshaling tests, and string concatenation).
  std::string ToString() const;

  // Hash consistent with operator== (numeric kinds hash by canonical numeric value).
  size_t Hash() const;

  // Approximate heap footprint in bytes, for the memory-accounting benchmarks.
  size_t ByteSize() const;

 private:
  Kind kind_;
  bool b_ = false;
  int64_t i_ = 0;
  uint64_t u_ = 0;
  double d_ = 0;
  std::shared_ptr<const std::string> s_;  // shared: values are copied freely
  std::shared_ptr<const ValueList> l_;
};

}  // namespace p2

#endif  // SRC_RUNTIME_VALUE_H_
