// Table: soft-state storage for materialized tuples (paper §2, `materialize`).
//
// A table is declared with a maximum tuple lifetime, a maximum size, and a primary key
// (a subset of field positions). Inserting a tuple whose key already exists replaces the
// old row; inserting an identical tuple merely refreshes its lifetime (and does NOT count
// as a delta — this is what keeps recursive rule sets like the path-vector example from
// deriving forever). When the table exceeds its maximum size, the oldest row is evicted.
//
// Listeners observe changes; the planner uses them to drive table-delta rule strands and
// continuous aggregate re-evaluation, and the tracer uses them for ruleExec GC.

#ifndef SRC_RUNTIME_TABLE_H_
#define SRC_RUNTIME_TABLE_H_

#include <functional>
#include <limits>
#include <list>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/runtime/tuple.h"

namespace p2 {

// Declaration of a materialized table, as written in a `materialize(...)` statement.
struct TableSpec {
  std::string name;
  // Seconds a tuple stays alive after its last insert/refresh; infinity allowed.
  double lifetime_secs = std::numeric_limits<double>::infinity();
  // Maximum number of rows; the oldest row is evicted beyond this. SIZE_MAX = unbounded.
  size_t max_size = std::numeric_limits<size_t>::max();
  // 0-based field positions forming the primary key. Empty means the whole tuple.
  std::vector<size_t> key_fields;
};

// Cumulative change counts for one table, updated inline on every mutation (plain
// integer adds — cheap enough to stay always-on). `expires` counts both sweep-driven
// and lazy (access-time) expiries. Surfaced through sysTableStat and metrics sinks.
struct TableCounters {
  uint64_t inserts = 0;    // kNew + kReplaced outcomes
  uint64_t refreshes = 0;  // identical re-insert, lifetime extended only
  uint64_t expires = 0;
  uint64_t deletes = 0;
  uint64_t evictions = 0;
};

// What happened on an Insert.
enum class InsertOutcome {
  kNew,       // no row with this key existed
  kReplaced,  // a row with this key but different contents was replaced
  kRefreshed  // an identical row existed; only its lifetime was extended
};

// Kinds of change reported to listeners.
enum class TableChange {
  kInsert,  // a new or replacing row (a "delta" in rule-evaluation terms)
  kDelete,  // explicitly deleted by a `delete` rule
  kExpire,  // lifetime ran out
  kEvict    // displaced by the size bound
};

class Table {
 public:
  // A listener is called synchronously after each change; it must not mutate tables
  // directly (enqueue follow-up work instead).
  using Listener = std::function<void(TableChange, const TupleRef&)>;

  explicit Table(TableSpec spec);

  const TableSpec& spec() const { return spec_; }
  const std::string& name() const { return spec_.name; }

  // Inserts `t` at time `now`. Expired rows are purged first.
  InsertOutcome Insert(const TupleRef& t, double now);

  // Deletes all rows matching `pattern`: a row matches when every non-null pattern
  // position equals the corresponding field. Returns the number of rows deleted.
  // Positions beyond the row's arity are ignored.
  size_t DeleteMatching(const std::vector<Value>& pattern,
                        const std::vector<bool>& bound, double now);

  // Purges rows whose lifetime has passed; fires kExpire for each. Returns count.
  size_t ExpireStale(double now);

  // Returns the current rows (after purging expired ones), in insertion order.
  std::vector<TupleRef> Scan(double now);

  // Point lookup by primary-key values (one Value per declared key field, in
  // declaration order). Returns nullptr when absent. Only valid when the table has
  // explicit key fields; the planner uses this to turn joins that bind the whole key
  // into O(1) probes instead of scans.
  TupleRef FindByKey(const ValueList& key_values, double now);

  // Number of live rows at `now`.
  size_t Size(double now);

  // Approximate bytes held by live rows.
  size_t ByteSize() const;

  void AddListener(Listener fn) { listeners_.push_back(std::move(fn)); }

  // Cumulative mutation counts since creation.
  const TableCounters& counters() const { return counters_; }

 private:
  struct Row {
    TupleRef tuple;
    double expires_at;
    uint64_t seq;  // monotonically increasing insert order
  };

  struct Key {
    ValueList vals;
    size_t hash;
    bool operator==(const Key& other) const;
  };
  struct KeyHash {
    size_t operator()(const Key& k) const { return k.hash; }
  };

  Key MakeKey(const Tuple& t) const;
  void Notify(TableChange change, const TupleRef& t);
  void EvictOverflow();

  TableSpec spec_;
  TableCounters counters_;
  std::list<Row> rows_;  // insertion order
  std::unordered_map<Key, std::list<Row>::iterator, KeyHash> index_;
  std::vector<Listener> listeners_;
  uint64_t next_seq_ = 0;
  // Earliest possible expiry across live rows (a lower bound: refreshes may raise a
  // row's true expiry without updating this). Lets ExpireStale — called on every
  // insert/scan — return in O(1) when nothing can have expired yet.
  double min_expiry_ = std::numeric_limits<double>::infinity();
};

}  // namespace p2

#endif  // SRC_RUNTIME_TABLE_H_
