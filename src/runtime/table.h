// Table: soft-state storage for materialized tuples (paper §2, `materialize`).
//
// A table is declared with a maximum tuple lifetime, a maximum size, and a primary key
// (a subset of field positions). Inserting a tuple whose key already exists replaces the
// old row; inserting an identical tuple merely refreshes its lifetime (and does NOT count
// as a delta — this is what keeps recursive rule sets like the path-vector example from
// deriving forever). When the table exceeds its maximum size, the oldest row is evicted.
//
// Listeners observe changes; the planner uses them to drive table-delta rule strands and
// continuous aggregate re-evaluation, and the tracer uses them for ruleExec GC.
//
// Secondary indexes (EnsureIndex / ForEachMatch): hash indexes over arbitrary field
// subsets, requested by the planner for join probes that bind only part of (or none
// of) the primary key. They are maintained inline across every mutation — insert,
// replace, refresh, delete, expire, evict — and probed allocation-free. The index
// consistency contract is documented in docs/INTERNALS.md.

#ifndef SRC_RUNTIME_TABLE_H_
#define SRC_RUNTIME_TABLE_H_

#include <algorithm>
#include <functional>
#include <limits>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/runtime/tuple.h"

namespace p2 {

// Declaration of a materialized table, as written in a `materialize(...)` statement.
struct TableSpec {
  std::string name;
  // Seconds a tuple stays alive after its last insert/refresh; infinity allowed.
  double lifetime_secs = std::numeric_limits<double>::infinity();
  // Maximum number of rows; the oldest row is evicted beyond this. SIZE_MAX = unbounded.
  size_t max_size = std::numeric_limits<size_t>::max();
  // 0-based field positions forming the primary key. Empty means the whole tuple.
  std::vector<size_t> key_fields;
};

// Cumulative change counts for one table, updated inline on every mutation (plain
// integer adds — cheap enough to stay always-on). `expires` counts both sweep-driven
// and lazy (access-time) expiries. Surfaced through sysTableStat and metrics sinks.
struct TableCounters {
  uint64_t inserts = 0;    // kNew + kReplaced outcomes
  uint64_t refreshes = 0;  // identical re-insert, lifetime extended only
  uint64_t expires = 0;
  uint64_t deletes = 0;
  uint64_t evictions = 0;
};

// What happened on an Insert.
enum class InsertOutcome {
  kNew,       // no row with this key existed
  kReplaced,  // a row with this key but different contents was replaced
  kRefreshed  // an identical row existed; only its lifetime was extended
};

// Kinds of change reported to listeners.
enum class TableChange {
  kInsert,  // a new or replacing row (a "delta" in rule-evaluation terms)
  kDelete,  // explicitly deleted by a `delete` rule
  kExpire,  // lifetime ran out
  kEvict    // displaced by the size bound
};

class Table {
 public:
  // A listener is called synchronously after each change; it must not mutate tables
  // directly (enqueue follow-up work instead).
  using Listener = std::function<void(TableChange, const TupleRef&)>;

  explicit Table(TableSpec spec);

  const TableSpec& spec() const { return spec_; }
  const std::string& name() const { return spec_.name; }

  // Inserts `t` at time `now`. Expired rows are purged first.
  InsertOutcome Insert(const TupleRef& t, double now);

  // Deletes all rows matching `pattern`: a row matches when every non-null pattern
  // position equals the corresponding field. Returns the number of rows deleted.
  // Positions beyond the row's arity are ignored.
  size_t DeleteMatching(const ValueList& pattern,
                        const std::vector<bool>& bound, double now);

  // Purges rows whose lifetime has passed; fires kExpire for each. Returns count.
  size_t ExpireStale(double now);

  // Returns the current rows (after purging expired ones), in insertion order.
  // Materializes a copy — hot paths should use ForEachLive instead.
  std::vector<TupleRef> Scan(double now);

  // Allocation-free iteration over live rows in insertion order. `fn` is called as
  // fn(const TupleRef&) -> bool; returning false stops early. Returns the number of
  // rows yielded.
  //
  // Iteration-safe with snapshot semantics: while any walk over this table is in
  // flight, row erasure (expiry, delete, eviction) is deferred — stale/deleted rows
  // are filtered per row instead and purged when the outermost walk ends — and rows
  // inserted by a callback are not visited (the walk stops at the sequence number
  // current when it started). This makes nested probes of the same table (self-joins)
  // and callbacks that insert into the table (a traced strand joining ruleExec writes
  // ruleExec rows as it emits) both safe and equivalent to iterating a Scan copy.
  template <typename Fn>
  size_t ForEachLive(double now, Fn&& fn) {
    ExpireStale(now);
    IterGuard guard(this);
    const uint64_t seq_bound = next_seq_;  // rows_ is seq-ordered
    size_t yielded = 0;
    for (const Row& row : rows_) {
      if (row.seq >= seq_bound) {
        break;  // inserted by a callback after this walk started
      }
      if (row.expires_at <= now) {
        continue;  // expired/deleted but not yet purged (erasure deferred)
      }
      ++yielded;
      if (!fn(row.tuple)) {
        break;
      }
    }
    return yielded;
  }

  // Builds (or reuses) a secondary hash index over `positions` (0-based field
  // positions, in probe order). Existing rows are indexed immediately; subsequent
  // mutations keep the index consistent inline. Returns a stable index id for
  // ForEachMatch. Requesting the same position set twice returns the same id.
  size_t EnsureIndex(std::vector<size_t> positions);

  size_t NumIndexes() const { return secondary_.size(); }

  // Probes index `index_id` with one value per indexed position (in the order given
  // to EnsureIndex) and iterates the matching live rows in insertion order — the
  // same order a scan would visit them, so an indexed join explores its branches
  // exactly like the scan it replaces. The index matches on the hash of the indexed
  // fields, so `fn` may see false positives under hash collision — callers re-verify
  // each row (strand execution does so via MatchPredicate). Same
  // callback/early-exit/iteration-safety contract as ForEachLive. Returns rows
  // yielded.
  template <typename Fn>
  size_t ForEachMatch(size_t index_id, const ValueList& key_values, double now,
                      Fn&& fn) {
    ExpireStale(now);
    SecondaryIndex& index = *secondary_[index_id];
    ++index.probes;
    IterGuard guard(this);
    size_t yielded = 0;
    auto bucket = index.map.find(HashValues(key_values));
    if (bucket != index.map.end()) {
      // Snapshot the bucket before invoking callbacks: a callback may insert into
      // this table, rehashing the index maps under a live bucket iterator. Row
      // erasure is deferred while the IterGuard is held, so the copied row
      // iterators stay valid throughout. Sorting by seq restores insertion order.
      std::vector<std::pair<uint64_t, std::list<Row>::iterator>> matches(
          bucket->second.begin(), bucket->second.end());
      std::sort(matches.begin(), matches.end(),
                [](const auto& a, const auto& b) { return a.first < b.first; });
      for (const auto& [seq, it] : matches) {
        if (it->expires_at <= now) {
          continue;  // expired/deleted but not yet purged (erasure deferred)
        }
        ++yielded;
        if (!fn(it->tuple)) {
          break;
        }
      }
    }
    index.rows_yielded += yielded;
    return yielded;
  }

  // Cumulative per-index telemetry, surfaced through sysIndexStat.
  struct IndexStats {
    std::vector<size_t> positions;
    uint64_t probes = 0;        // ForEachMatch calls
    uint64_t rows_yielded = 0;  // rows handed to probe callbacks
    size_t entries = 0;         // rows currently indexed
  };
  std::vector<IndexStats> IndexStatsSnapshot() const;

  // Point lookup by primary-key values (one Value per declared key field, in
  // declaration order). Returns nullptr when absent. Only valid when the table has
  // explicit key fields; the planner uses this to turn joins that bind the whole key
  // into O(1) probes instead of scans.
  TupleRef FindByKey(const ValueList& key_values, double now);

  // Number of live rows at `now`.
  size_t Size(double now);

  // Approximate bytes held by live rows.
  size_t ByteSize() const;

  void AddListener(Listener fn) { listeners_.push_back(std::move(fn)); }

  // Cumulative mutation counts since creation.
  const TableCounters& counters() const { return counters_; }

 private:
  struct Row {
    TupleRef tuple;
    double expires_at;
    uint64_t seq;       // monotonically increasing insert order
    bool dead = false;  // deleted mid-iteration; unlinked from indexes, purge pending
  };

  struct Key {
    ValueList vals;
    size_t hash;
    bool operator==(const Key& other) const;
  };
  struct KeyHash {
    size_t operator()(const Key& k) const { return k.hash; }
  };
  struct IdentityHash {
    size_t operator()(size_t h) const { return h; }
  };

  // One secondary index: hash of the indexed fields -> (row seq -> row). The inner
  // map makes per-row removal O(1) even when many rows share an indexed value (a
  // low-selectivity index would otherwise turn bulk expiry quadratic).
  struct SecondaryIndex {
    std::vector<size_t> positions;
    std::unordered_map<size_t, std::unordered_map<uint64_t, std::list<Row>::iterator>,
                       IdentityHash>
        map;
    uint64_t probes = 0;
    uint64_t rows_yielded = 0;
    size_t entries = 0;
  };

  // Defers row erasure while rows are being walked (see ForEachLive); when the
  // outermost walk ends, applies the deferred structural work.
  struct IterGuard {
    explicit IterGuard(Table* t) : table(t) { ++table->iter_depth_; }
    ~IterGuard() {
      if (--table->iter_depth_ == 0) {
        table->EndIterMaintenance();
      }
    }
    Table* table;
  };
  friend struct IterGuard;

  Key MakeKey(const Tuple& t) const;
  // FNV-1a over Value::Hash — shared by the primary key and every secondary index,
  // so cross-kind numeric equality (Int(7) == Id(7)) probes consistently.
  static size_t HashValues(const ValueList& vals);
  size_t HashAt(const Tuple& t, const std::vector<size_t>& positions) const;
  void SecondaryAdd(std::list<Row>::iterator it);
  void SecondaryRemove(std::list<Row>::iterator it);
  void Notify(TableChange change, const TupleRef& t);
  void EvictOverflow();
  void EndIterMaintenance();

  TableSpec spec_;
  TableCounters counters_;
  std::list<Row> rows_;  // insertion order
  std::unordered_map<Key, std::list<Row>::iterator, KeyHash> index_;
  std::vector<std::unique_ptr<SecondaryIndex>> secondary_;
  std::vector<Listener> listeners_;
  uint64_t next_seq_ = 0;
  int iter_depth_ = 0;     // >0 while ForEachLive/ForEachMatch walk rows
  bool has_dead_ = false;  // dead corpses awaiting EndIterMaintenance
  // Earliest possible expiry across live rows (a lower bound: refreshes may raise a
  // row's true expiry without updating this). Lets ExpireStale — called on every
  // insert/scan — return in O(1) when nothing can have expired yet.
  double min_expiry_ = std::numeric_limits<double>::infinity();
};

}  // namespace p2

#endif  // SRC_RUNTIME_TABLE_H_
