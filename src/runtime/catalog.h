// Catalog: the set of materialized tables on one node.
//
// A name is either materialized (it has a Table here) or it denotes a transient event
// stream. The planner consults the catalog to decide which body predicates are joins
// against stored state and which are rule triggers.

#ifndef SRC_RUNTIME_CATALOG_H_
#define SRC_RUNTIME_CATALOG_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/runtime/table.h"

namespace p2 {

class Catalog {
 public:
  Catalog() = default;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  // Creates a table from `spec`. If a table with the same name already exists, the
  // existing table is kept (first declaration wins) and false is returned.
  bool CreateTable(const TableSpec& spec);

  // Returns the table named `name`, or nullptr if the name is not materialized.
  Table* Get(const std::string& name);
  const Table* Get(const std::string& name) const;

  bool IsMaterialized(const std::string& name) const { return tables_.count(name) > 0; }

  // All tables, in creation order (stable iteration for introspection and tests).
  std::vector<Table*> AllTables();

  // Total rows across all tables at `now` (drives the "live tuples" figures).
  size_t TotalRows(double now);

  // Total approximate bytes across all tables.
  size_t TotalBytes() const;

 private:
  std::unordered_map<std::string, std::unique_ptr<Table>> tables_;
  std::vector<Table*> order_;
};

}  // namespace p2

#endif  // SRC_RUNTIME_CATALOG_H_
