#include "src/runtime/tuple.h"

#include <functional>

namespace p2 {

std::atomic<uint64_t> Tuple::live_count_{0};
std::atomic<uint64_t> Tuple::live_bytes_{0};
std::atomic<uint64_t> Tuple::total_created_{0};
std::atomic<uint64_t> Tuple::total_bytes_created_{0};

Tuple::Tuple(std::string name, ValueList fields)
    : name_(std::move(name)), fields_(std::move(fields)) {
  byte_size_ = sizeof(Tuple) + name_.size();
  for (const Value& v : fields_) {
    byte_size_ += v.ByteSize();
  }
  live_count_.fetch_add(1, std::memory_order_relaxed);
  live_bytes_.fetch_add(byte_size_, std::memory_order_relaxed);
  total_created_.fetch_add(1, std::memory_order_relaxed);
  total_bytes_created_.fetch_add(byte_size_, std::memory_order_relaxed);
}

Tuple::~Tuple() {
  live_count_.fetch_sub(1, std::memory_order_relaxed);
  live_bytes_.fetch_sub(byte_size_, std::memory_order_relaxed);
}

TupleRef Tuple::Make(std::string name, ValueList fields) {
  // One arena block carries the control block and the Tuple (allocate_shared), and
  // the moved-in ValueList buffer is arena-backed too — a dropped tuple returns its
  // whole storage to the thread's free lists for the next derivation to reuse.
  return std::allocate_shared<const Tuple>(ArenaAllocator<Tuple>(), std::move(name),
                                           std::move(fields));
}

const std::string& Tuple::LocationSpecifier() const {
  static const std::string kEmpty;
  if (fields_.empty() || fields_[0].kind() != Value::Kind::kString) {
    return kEmpty;
  }
  return fields_[0].AsString();
}

bool Tuple::operator==(const Tuple& other) const {
  if (name_ != other.name_ || fields_.size() != other.fields_.size()) {
    return false;
  }
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (!(fields_[i] == other.fields_[i])) {
      return false;
    }
  }
  return true;
}

size_t Tuple::Hash() const {
  size_t h = std::hash<std::string>()(name_);
  for (const Value& v : fields_) {
    h = h * 1099511628211ULL ^ v.Hash();
  }
  return h;
}

std::string Tuple::ToString() const {
  std::string out = name_;
  out += "(";
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) {
      out += ", ";
    }
    out += fields_[i].ToString();
  }
  out += ")";
  return out;
}

size_t Tuple::ByteSize() const { return byte_size_; }

uint64_t Tuple::LiveCount() { return live_count_.load(std::memory_order_relaxed); }
uint64_t Tuple::LiveBytes() { return live_bytes_.load(std::memory_order_relaxed); }
uint64_t Tuple::TotalCreated() { return total_created_.load(std::memory_order_relaxed); }
uint64_t Tuple::TotalBytesCreated() {
  return total_bytes_created_.load(std::memory_order_relaxed);
}

}  // namespace p2
