#include "src/runtime/arena.h"

#include <new>

namespace p2 {

namespace {

// 64-byte size classes up to 4 KiB cover every tuple block the engine mints
// (control block + Tuple, ValueList buffers, vector growth steps); anything
// bigger is rare enough to pay the heap round trip.
constexpr std::size_t kClassBytes = 64;
constexpr std::size_t kNumClasses = 64;
constexpr std::size_t kMaxClassSize = kClassBytes * kNumClasses;

inline std::size_t ClassIndex(std::size_t size) {
  return (size + kClassBytes - 1) / kClassBytes - 1;  // size >= 1
}

inline std::size_t ClassSize(std::size_t idx) { return (idx + 1) * kClassBytes; }

// Freed blocks double as singly-linked list nodes (every class is >= 64 bytes,
// comfortably holding a pointer at suitable alignment).
struct FreeNode {
  FreeNode* next;
};

struct ThreadCache {
  FreeNode* head[kNumClasses] = {};
  std::size_t count = 0;

  ~ThreadCache() {
    for (std::size_t c = 0; c < kNumClasses; ++c) {
      FreeNode* node = head[c];
      while (node != nullptr) {
        FreeNode* next = node->next;
        ::operator delete(node);
        node = next;
      }
      head[c] = nullptr;
    }
    count = 0;
  }
};

ThreadCache& Cache() {
  static thread_local ThreadCache cache;
  return cache;
}

}  // namespace

std::atomic<bool> TupleArena::enabled_{true};
std::atomic<std::uint64_t> TupleArena::fresh_bytes_{0};
std::atomic<std::uint64_t> TupleArena::fresh_blocks_{0};
std::atomic<std::uint64_t> TupleArena::recycled_blocks_{0};

void* TupleArena::Allocate(std::size_t size) {
  if (size == 0) {
    size = 1;
  }
  if (size > kMaxClassSize) {
    fresh_bytes_.fetch_add(size, std::memory_order_relaxed);
    fresh_blocks_.fetch_add(1, std::memory_order_relaxed);
    return ::operator new(size);
  }
  const std::size_t idx = ClassIndex(size);
  if (Enabled()) {
    ThreadCache& cache = Cache();
    FreeNode* node = cache.head[idx];
    if (node != nullptr) {
      cache.head[idx] = node->next;
      --cache.count;
      recycled_blocks_.fetch_add(1, std::memory_order_relaxed);
      return node;
    }
  }
  const std::size_t bytes = ClassSize(idx);
  fresh_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  fresh_blocks_.fetch_add(1, std::memory_order_relaxed);
  return ::operator new(bytes);
}

void TupleArena::Deallocate(void* p, std::size_t size) noexcept {
  if (p == nullptr) {
    return;
  }
  if (size == 0) {
    size = 1;
  }
  if (size > kMaxClassSize) {
    ::operator delete(p);
    return;
  }
  if (Enabled()) {
    ThreadCache& cache = Cache();
    const std::size_t idx = ClassIndex(size);
    FreeNode* node = static_cast<FreeNode*>(p);
    node->next = cache.head[idx];
    cache.head[idx] = node;
    ++cache.count;
    return;
  }
  ::operator delete(p);
}

std::size_t TupleArena::ThreadCachedBlocks() { return Cache().count; }

void TupleArena::TrimThreadCache() {
  ThreadCache& cache = Cache();
  for (std::size_t c = 0; c < kNumClasses; ++c) {
    FreeNode* node = cache.head[c];
    while (node != nullptr) {
      FreeNode* next = node->next;
      ::operator delete(node);
      node = next;
    }
    cache.head[c] = nullptr;
  }
  cache.count = 0;
}

}  // namespace p2
