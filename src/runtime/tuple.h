// Tuple: the immutable unit of state and communication in P2.
//
// A tuple is a named row of values. By convention (paper §2), the first field is the
// location specifier: the address of the node where the tuple lives or must be sent.
// `link@A(B, W)` therefore denotes the tuple link(A, B, W).
//
// Tuples are immutable and shared by reference. A global live-instance counter feeds the
// memory figures of the evaluation section (the paper tracks "live tuples" directly in
// Figures 6 and 7 and process memory elsewhere; intermediate tuples dominate both).

#ifndef SRC_RUNTIME_TUPLE_H_
#define SRC_RUNTIME_TUPLE_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "src/runtime/value.h"

namespace p2 {

class Tuple;
using TupleRef = std::shared_ptr<const Tuple>;

class Tuple {
 public:
  Tuple(std::string name, ValueList fields);
  ~Tuple();

  Tuple(const Tuple&) = delete;
  Tuple& operator=(const Tuple&) = delete;

  // Convenience factory returning a shared immutable reference.
  static TupleRef Make(std::string name, ValueList fields);

  const std::string& name() const { return name_; }
  const ValueList& fields() const { return fields_; }
  const Value& field(size_t i) const { return fields_[i]; }
  size_t arity() const { return fields_.size(); }

  // The location specifier (first field) as a string address. Returns an empty string
  // if the tuple has no fields or the first field is not a string. The reference is
  // into the tuple (or a static empty), so routing decisions pay no copy.
  const std::string& LocationSpecifier() const;

  // Structural equality: same name, same fields.
  bool operator==(const Tuple& other) const;

  // Hash consistent with operator==.
  size_t Hash() const;

  // Printed form: name(f1, f2, ...).
  std::string ToString() const;

  // Approximate heap footprint.
  size_t ByteSize() const;

  // Global accounting across all live Tuple instances in the process. The benchmarks
  // snapshot these to report "live tuples" / memory growth; TotalBytesCreated deltas
  // measure intermediate-tuple churn (the paper's stated driver of process-memory
  // growth under monitoring load).
  static uint64_t LiveCount();
  static uint64_t LiveBytes();
  static uint64_t TotalCreated();
  static uint64_t TotalBytesCreated();

 private:
  std::string name_;
  ValueList fields_;
  size_t byte_size_;

  static std::atomic<uint64_t> live_count_;
  static std::atomic<uint64_t> live_bytes_;
  static std::atomic<uint64_t> total_created_;
  static std::atomic<uint64_t> total_bytes_created_;
};

}  // namespace p2

#endif  // SRC_RUNTIME_TUPLE_H_
