// ChordTestbed: spins up an N-node P2-Chord deployment on a p2::Fleet —
// the common substrate for the paper's experiments, the examples, and the tests.
//
// Mirrors the paper's §4 setup: a population of virtual nodes (21 by default) that
// start staggered, stabilize every 5 s, fix fingers every 10 s, and ping every 5 s.
// The last node added ("the 21st") is the measurement target in the benchmarks.

#ifndef SRC_TESTBED_TESTBED_H_
#define SRC_TESTBED_TESTBED_H_

#include <map>
#include <string>
#include <vector>

#include "src/chord/chord.h"
#include "src/net/fleet.h"

namespace p2 {

struct TestbedConfig {
  int num_nodes = 21;
  // One layered config: the fleet seed is the only seed knob (network links and
  // per-node RNG streams derive from it — src/net/fleet.h), and node_defaults
  // replaces the old per-testbed NodeOptions.
  FleetConfig fleet;
  ChordConfig chord;
  // Seconds between consecutive node joins.
  double join_stagger = 0.5;
};

class ChordTestbed {
 public:
  explicit ChordTestbed(TestbedConfig config = TestbedConfig());

  ChordTestbed(const ChordTestbed&) = delete;
  ChordTestbed& operator=(const ChordTestbed&) = delete;

  Fleet& fleet() { return fleet_; }
  // The underlying network: host-side fault injection and counters. Direct node
  // mutation through it is single-thread/test-only (src/net/fleet.h).
  Network& network() { return fleet_.network(); }
  const std::vector<NodeHandle>& handles() const { return handles_; }
  NodeHandle handle(size_t i) { return handles_[i]; }
  NodeHandle last_handle() { return handles_.back(); }
  // Raw node access for tests and host-side ground-truth checks.
  const std::vector<Node*>& nodes() const { return nodes_; }
  Node* node(size_t i) { return nodes_[i]; }
  Node* last_node() { return nodes_.back(); }
  size_t size() const { return nodes_.size(); }

  // Node addresses are "n0".."n<N-1>"; n0 is the landmark.
  static std::string AddrOf(int i);

  // Runs the simulation for `secs` simulated seconds.
  void Run(double secs) { fleet_.RunFor(secs); }

  // Structured telemetry: every node writes one MetricsSnapshot per sweep to `sink`
  // (non-owning; pass nullptr to detach). See docs/OBSERVABILITY.md.
  void SetMetricsSink(MetricsSink* sink) { fleet_.SetMetricsSink(sink); }

  // The ring IDs, address -> id.
  std::map<std::string, uint64_t> Ids();

  // Host-side ground truth: returns true if every node's bestSucc is the live node
  // with the next-higher ID (i.e. the ring is correct).
  bool RingIsCorrect();

  // Number of nodes whose bestSucc matches ground truth.
  int CorrectSuccessorCount();

 private:
  TestbedConfig config_;
  Fleet fleet_;
  std::vector<NodeHandle> handles_;
  std::vector<Node*> nodes_;
};

}  // namespace p2

#endif  // SRC_TESTBED_TESTBED_H_
