#include "src/testbed/testbed.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "src/common/strings.h"

namespace p2 {

std::string ChordTestbed::AddrOf(int i) { return StrFormat("n%d", i); }

ChordTestbed::ChordTestbed(TestbedConfig config)
    : config_(config), fleet_(config.fleet) {
  for (int i = 0; i < config_.num_nodes; ++i) {
    NodeHandle handle = fleet_.AddNode(AddrOf(i));
    handles_.push_back(handle);
    nodes_.push_back(handle.raw());
    ChordConfig chord = config_.chord;
    chord.landmark = i == 0 ? std::string() : AddrOf(0);
    chord.node_id = 0;  // derived from the node's own seeded RNG
    // Stagger joins so the ring grows incrementally, as in a real deployment;
    // posted onto each node's own shard.
    double start = i * config_.join_stagger;
    handle.Post(start, [chord](Node& node) {
      std::string error;
      if (!InstallChord(&node, chord, &error)) {
        fprintf(stderr, "InstallChord(%s) failed: %s\n", node.addr().c_str(),
                error.c_str());
        abort();
      }
    });
  }
}

std::map<std::string, uint64_t> ChordTestbed::Ids() {
  std::map<std::string, uint64_t> ids;
  for (Node* node : nodes_) {
    uint64_t id = ChordId(node);
    if (id != 0) {
      ids[node->addr()] = id;
    }
  }
  return ids;
}

int ChordTestbed::CorrectSuccessorCount() {
  std::map<std::string, uint64_t> ids = Ids();
  if (ids.size() < 2) {
    return static_cast<int>(ids.size());
  }
  // Sort (id, addr) to compute each node's true successor on the ring.
  std::vector<std::pair<uint64_t, std::string>> ring;
  ring.reserve(ids.size());
  for (const auto& [addr, id] : ids) {
    ring.emplace_back(id, addr);
  }
  std::sort(ring.begin(), ring.end());
  int correct = 0;
  for (size_t i = 0; i < ring.size(); ++i) {
    const std::string& addr = ring[i].second;
    const std::string& true_succ = ring[(i + 1) % ring.size()].second;
    Node* node = fleet_.network().GetNode(addr);
    if (node != nullptr && BestSuccAddr(node) == true_succ) {
      ++correct;
    }
  }
  return correct;
}

bool ChordTestbed::RingIsCorrect() {
  return CorrectSuccessorCount() == static_cast<int>(nodes_.size());
}

}  // namespace p2
