// Discrete-event scheduler: the virtual clock that drives the whole simulation.
//
// Substitution note (see DESIGN.md): the paper runs 21 OS processes over UDP and
// measures wall-clock CPU utilization. Here every node shares one deterministic
// event-driven clock; timers and message deliveries are events. Wall-clock time spent
// *processing* events is accounted separately per node (NodeStats::busy_ns) and plays
// the role of CPU utilization in the benchmarks.

#ifndef SRC_NET_SCHEDULER_H_
#define SRC_NET_SCHEDULER_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace p2 {

class Scheduler {
 public:
  using Task = std::function<void()>;

  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  // Current virtual time in seconds.
  double Now() const { return now_; }

  // Schedules `fn` at absolute virtual time `time` (clamped to now). Returns an id
  // usable with Cancel. Events at equal times run in schedule order.
  uint64_t At(double time, Task fn);

  // Schedules `fn` after `delay` seconds.
  uint64_t After(double delay, Task fn);

  // Cancels a scheduled event. Safe to call with an already-run id.
  void Cancel(uint64_t id);

  // Runs the next event, advancing the clock. Returns false if none are pending.
  bool Step();

  // Runs all events scheduled at or before `t`; the clock ends at exactly `t`.
  void RunUntil(double t);

  // Number of pending events.
  size_t PendingCount() const { return heap_.size() - cancelled_.size(); }

  // Virtual time of the earliest pending (non-cancelled) event, or +infinity if none.
  // Used by real-time drivers to size their poll timeouts, and by the sharded fleet
  // runtime to fast-forward across globally idle stretches.
  double NextEventTime();

  // Events executed so far (Step calls that ran a task).
  uint64_t ExecutedCount() const { return executed_; }

  // High-water mark of the pending-event heap.
  uint64_t HeapHighWaterMark() const { return heap_hwm_; }

 private:
  struct Event {
    double time;
    uint64_t seq;  // tie-break: schedule order
    uint64_t id;
    // Heap comparator: earliest time first, then lowest seq.
    bool operator>(const Event& other) const {
      if (time != other.time) {
        return time > other.time;
      }
      return seq > other.seq;
    }
  };

  double now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t next_id_ = 1;
  uint64_t executed_ = 0;
  uint64_t heap_hwm_ = 0;
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> heap_;
  std::unordered_map<uint64_t, Task> tasks_;
  std::unordered_set<uint64_t> cancelled_;
};

}  // namespace p2

#endif  // SRC_NET_SCHEDULER_H_
