// Wire format for inter-node tuple transport.
//
// Tuples crossing the (simulated) network are genuinely serialized and deserialized —
// this is the "marshal / unmarshal" stage of P2's dataflow pre/postamble — so the
// benchmark message and byte counts reflect a real encoding, and the codec is testable
// for round-trip fidelity.
//
// Envelope layout (little-endian):
//   u8  flags (bit 0: delete request)
//   u64 source tuple id         (for tupleTable memoization at the receiver)
//   u64 delete bound mask       (bit i set: field i is a bound pattern position)
//   str source address
//   tuple: str name, u32 arity, values
// Value: u8 kind tag + payload (varint-free, fixed-width for simplicity).

#ifndef SRC_NET_WIRE_H_
#define SRC_NET_WIRE_H_

#include <cstdint>
#include <string>

#include "src/runtime/tuple.h"
#include "src/runtime/value.h"

namespace p2 {

// A message as it travels between nodes.
struct WireEnvelope {
  std::string src_addr;
  uint64_t src_tuple_id = 0;
  bool is_delete = false;
  uint64_t bound_mask = ~0ULL;
  TupleRef tuple;
};

// Low-level codecs (exposed for tests).
void EncodeValue(const Value& v, std::string* out);
bool DecodeValue(const std::string& in, size_t* pos, Value* out);
void EncodeTuple(const Tuple& t, std::string* out);
bool DecodeTuple(const std::string& in, size_t* pos, TupleRef* out);

// Envelope codec. Decode returns false on any malformed input.
std::string EncodeEnvelope(const WireEnvelope& env);
bool DecodeEnvelope(const std::string& bytes, WireEnvelope* out);

}  // namespace p2

#endif  // SRC_NET_WIRE_H_
