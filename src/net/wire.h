// Wire format for inter-node tuple transport.
//
// Tuples crossing the (simulated) network are genuinely serialized and deserialized —
// this is the "marshal / unmarshal" stage of P2's dataflow pre/postamble — so the
// benchmark message and byte counts reflect a real encoding, and the codec is testable
// for round-trip fidelity.
//
// Envelope layout (little-endian):
//   u8  flags (bit 0: delete request; bit 1: reliable data; bit 2: ack)
//   u64 source tuple id         (for tupleTable memoization at the receiver)
//   u64 delete bound mask       (bit i set: field i is a bound pattern position)
//   str source address
//   if reliable or ack: u64 channel epoch
//   if reliable:        u64 sequence number
//   if ack:             u64 cumulative ack (highest in-order sequence received)
//   unless ack:         tuple: str name, u32 arity, values
// Value: u8 kind tag + payload (varint-free, fixed-width for simplicity).
//
// Best-effort envelopes (flags bits 1-2 clear) encode byte-identically to the
// pre-reliability format, so fault-free best-effort traffic costs exactly what it
// always did (the Figure 4/5 overhead numbers are unchanged).

#ifndef SRC_NET_WIRE_H_
#define SRC_NET_WIRE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/runtime/tuple.h"
#include "src/runtime/value.h"

namespace p2 {

// A message as it travels between nodes.
//
// `reliable` tuples carry a per-(src,dst) channel epoch and sequence number; the
// receiver delivers them in order exactly once per epoch and responds with cumulative
// acks (`is_ack` envelopes, which carry no tuple). Best-effort tuples leave all of
// that zero and encode exactly as before.
struct WireEnvelope {
  std::string src_addr;
  uint64_t src_tuple_id = 0;
  bool is_delete = false;
  uint64_t bound_mask = ~0ULL;
  bool reliable = false;   // data message on a reliable channel (epoch + seq valid)
  bool is_ack = false;     // pure ack: epoch + ack_seq valid, no tuple
  uint64_t epoch = 0;      // sender's channel epoch (bumped on failure/recovery)
  uint64_t seq = 0;        // per-channel sequence number (reliable data only)
  uint64_t ack_seq = 0;    // highest in-order sequence received (acks only)
  TupleRef tuple;
};

// Low-level codecs (exposed for tests).
void EncodeValue(const Value& v, std::string* out);
bool DecodeValue(const std::string& in, size_t* pos, Value* out);
void EncodeTuple(const Tuple& t, std::string* out);
bool DecodeTuple(const std::string& in, size_t* pos, TupleRef* out);

// Envelope codec. Decode returns false on any malformed input.
std::string EncodeEnvelope(const WireEnvelope& env);
bool DecodeEnvelope(const std::string& bytes, WireEnvelope* out);

// Fast-path envelope decoder (NodeOptions::zero_copy_decode): accepts exactly
// the same byte strings as DecodeEnvelope and produces an identical envelope.
// The difference is mechanical, not semantic — a single raw-pointer cursor
// instead of (buffer, index) pairs re-checking the buffer size per read, and
// values materialized in place inside the tuple's exact-reserved, arena-backed
// field vector (the same storage the receiver's table row will share), with
// string payloads copied exactly once from the wire buffer into their final,
// often SSO-inline, resting place. The legacy decoder is kept alongside so the
// decode-equivalence suite can diff the two on every input.
bool DecodeEnvelopeFast(const std::string& bytes, WireEnvelope* out);

// ---- batched datagram frames (real-socket transport, src/net/udp_driver.h) ----
//
// A batch frame coalesces every envelope bound for one destination within a pump
// iteration into a single datagram, cutting syscall and per-datagram header
// overhead on gossip-heavy monitors:
//
//   u8  magic    (kBatchFrameMagic)
//   u8  version  (kBatchFrameVersion)
//   u32 envelope count
//   count x { u32 length | envelope bytes (EncodeEnvelope output, verbatim) }
//
// A legacy single-envelope datagram starts with its flags byte, which only uses
// bits 0-2 (values 0..7), so a magic byte >= 8 can never collide with one: a
// receiver dispatches on the first byte (IsBatchFrame) and still accepts
// unbatched datagrams from older senders. Sub-envelopes keep their exact
// per-envelope encoding — reliable/ack metadata rides along untouched, so the
// reliable transport is batching-agnostic. The simulated Network never frames
// (its per-message delivery is the determinism contract); only real-socket
// drivers do.
//
// DecodeBatchFrame is strict: wrong magic or version, a truncated or oversized
// sub-envelope length, a count mismatch, and trailing bytes all fail.

inline constexpr uint8_t kBatchFrameMagic = 0xB7;
inline constexpr uint8_t kBatchFrameVersion = 1;

// True if `bytes` begins with the batch-frame magic (cheap receive dispatch).
bool IsBatchFrame(const std::string& bytes);

// Accumulates encoded envelopes bound for one destination into a single frame.
class BatchFrameBuilder {
 public:
  void Add(const std::string& envelope);
  size_t count() const { return count_; }
  bool empty() const { return count_ == 0; }
  // Size of the datagram Take() would produce now (header included).
  size_t frame_size() const;
  // Bytes Add(envelope) would grow the frame by.
  static size_t CostOf(const std::string& envelope) { return 4 + envelope.size(); }
  // Returns the completed frame and resets the builder for reuse.
  std::string Take();

 private:
  std::string payload_;  // concatenated { u32 length | bytes } records
  uint32_t count_ = 0;
};

// One-shot encoder (tests, simple senders).
std::string EncodeBatchFrame(const std::vector<std::string>& envelopes);

// Splits a frame back into envelope byte strings. Returns false on any
// malformed input; `envelopes` is left empty in that case.
bool DecodeBatchFrame(const std::string& frame, std::vector<std::string>* envelopes);

}  // namespace p2

#endif  // SRC_NET_WIRE_H_
