#include "src/net/fleet.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>

#include "src/net/udp_driver.h"

namespace p2 {

NetworkConfig FleetConfig::ToNetworkConfig() const {
  NetworkConfig net;
  net.latency = latency;
  net.jitter = jitter;
  net.loss_rate = loss_rate;
  net.seed = DeriveSeed(seed, "net");
  // The udp backend is single-threaded by construction: the driver pumps one
  // scheduler against the wall clock, and the windowed shard protocol has no
  // meaning when the transport is a physical network.
  net.shards = backend == FleetBackend::kUdp ? 1 : shards;
  return net;
}

Fleet::Fleet(FleetConfig config) : config_(config), net_(config_.ToNetworkConfig()) {
  if (config_.backend == FleetBackend::kUdp) {
    driver_ = std::make_unique<UdpDriver>(this);
  }
}

Fleet::~Fleet() = default;

NodeHandle Fleet::AddNode(const std::string& addr) {
  return AddNode(addr, config_.node_defaults);
}

NodeHandle Fleet::AddNode(const std::string& addr, NodeOptions options) {
  // The facade owns seeding: whatever the caller put in options.seed is replaced
  // by the fleet derivation so "same fleet seed" replays identically regardless of
  // node-add order. The `| 1` keeps the stream seed odd and nonzero, matching the
  // historical testbed convention.
  options.seed = DeriveSeed(config_.seed, "node/" + addr) | 1;
  return AddSeededNode(addr, options);
}

NodeHandle Fleet::AddNodeWithSeed(const std::string& addr, NodeOptions options,
                                  uint64_t seed) {
  options.seed = seed;
  return AddSeededNode(addr, options);
}

NodeHandle Fleet::AddSeededNode(const std::string& addr, NodeOptions options) {
  if (driver_ == nullptr) {
    return NodeHandle(this, net_.AddNode(addr, options));
  }
  // udp backend: the node's address stays the logical name; the driver binds its
  // socket and self-registers the name -> socket mapping. A bind failure is an
  // environment error (port exhausted / already taken), fatal like a duplicate
  // address in the sim path.
  uint16_t port = 0;
  if (config_.udp_base_port != 0) {
    port = static_cast<uint16_t>(config_.udp_base_port + net_.AllNodes().size());
  }
  std::string error;
  NodeHandle handle = driver_->CreateNode(addr, port, options, &error);
  if (!handle.valid()) {
    std::fprintf(stderr, "Fleet::AddNode(%s): %s\n", addr.c_str(), error.c_str());
    std::abort();
  }
  return handle;
}

void Fleet::RunUntil(double t) {
  if (driver_ != nullptr) {
    double dt = t - net_.Now();
    if (dt > 0) {
      driver_->RunFor(dt);
    }
    return;
  }
  net_.RunUntil(t);
}

void Fleet::RunFor(double dt) {
  if (driver_ != nullptr) {
    driver_->RunFor(dt);
    return;
  }
  net_.RunFor(dt);
}

void Fleet::RegisterPeer(const std::string& name, const std::string& socket_addr) {
  assert(driver_ != nullptr && "Fleet::RegisterPeer: sim backend has no peers");
  if (driver_ != nullptr) {
    driver_->RegisterPeer(name, socket_addr);
  }
}

NodeHandle Fleet::Handle(const std::string& addr) {
  Node* node = net_.GetNode(addr);
  assert(node != nullptr && "Fleet::Handle: unknown node address");
  return NodeHandle(this, node);
}

std::vector<CausalChain> Fleet::ReplayChains(const std::string& addr,
                                             const std::string& key, double t1,
                                             double t2) {
  // One trace source per node: the forensics store where retention is enabled,
  // the live tables otherwise — so a mixed fleet still stitches cross-node hops.
  // Host-side immediate (Run blocks until shards quiesce), like NodeHandle::Query.
  std::vector<std::unique_ptr<TraceSource>> sources;
  std::map<std::string, TraceSource*> by_addr;
  for (Node* node : net_.AllNodes()) {
    std::unique_ptr<TraceSource> src;
    if (node->forensics() != nullptr) {
      src = std::make_unique<ForensicsTraceSource>(node->forensics());
    } else {
      src = std::make_unique<LiveTraceSource>(node);
    }
    by_addr[node->addr()] = src.get();
    sources.push_back(std::move(src));
  }
  auto resolver = [&by_addr](const std::string& a) -> TraceSource* {
    auto it = by_addr.find(a);
    return it == by_addr.end() ? nullptr : it->second;
  };
  return p2::ReplayChains(resolver, addr, key, t1, t2);
}

std::vector<NodeHandle> Fleet::Handles() {
  std::vector<NodeHandle> out;
  for (Node* node : net_.AllNodes()) {
    out.push_back(NodeHandle(this, node));
  }
  return out;
}

double NodeHandle::Now() const { return node_->Now(); }

bool NodeHandle::Load(const std::string& source, std::string* error) {
  return Load(source, ParamMap(), error);
}

bool NodeHandle::Load(const std::string& source, const ParamMap& params,
                      std::string* error) {
  std::string local_error;
  bool ok = node_->LoadProgram(source, params, error != nullptr ? error : &local_error);
  return ok;
}

bool NodeHandle::LoadLowPriority(const std::string& source, const ParamMap& params,
                                 std::string* error) {
  std::string local_error;
  return node_->LoadProgramLowPriority(source, params,
                                       error != nullptr ? error : &local_error);
}

void NodeHandle::LoadAt(double t, std::string source, ParamMap params,
                        std::function<void(const std::string&)> on_error) {
  Node* node = node_;
  node_->own_scheduler().At(
      t, [node, source = std::move(source), params = std::move(params),
          on_error = std::move(on_error)] {
        std::string error;
        if (!node->LoadProgram(source, params, &error) && on_error) {
          on_error(error);
        }
      });
}

void NodeHandle::Inject(const TupleRef& tuple) { node_->InjectEvent(tuple); }

void NodeHandle::InjectAt(double t, TupleRef tuple) {
  Node* node = node_;
  node_->own_scheduler().At(t, [node, tuple = std::move(tuple)] {
    if (node->IsUp()) {
      node->InjectEvent(tuple);
    }
  });
}

void NodeHandle::Crash() { node_->Crash(); }
void NodeHandle::Revive() { node_->Revive(); }
void NodeHandle::Recover() { node_->Recover(); }

void NodeHandle::CrashAt(double t) {
  Node* node = node_;
  node_->own_scheduler().At(t, [node] { node->Crash(); });
}

void NodeHandle::ReviveAt(double t) {
  Node* node = node_;
  node_->own_scheduler().At(t, [node] { node->Revive(); });
}

void NodeHandle::RecoverAt(double t) {
  Node* node = node_;
  node_->own_scheduler().At(t, [node] { node->Recover(); });
}

std::vector<TupleRef> NodeHandle::Query(const std::string& table) {
  return node_->TableContents(table);
}

size_t NodeHandle::Count(const std::string& table) {
  return node_->TableContents(table).size();
}

std::vector<CausalChain> NodeHandle::ReplayChains(const std::string& key, double t1,
                                                  double t2) {
  return fleet_->ReplayChains(node_->addr(), key, t1, t2);
}

void NodeHandle::OnEvent(const std::string& name,
                         std::function<void(const TupleRef&)> fn) {
  node_->SubscribeEvent(name, std::move(fn));
}

void NodeHandle::WatchSink(std::function<void(double, const TupleRef&)> sink) {
  node_->SetWatchSink(std::move(sink));
}

void NodeHandle::MarkReliable(const std::string& name) { node_->MarkReliable(name); }

void NodeHandle::Post(double t, std::function<void(Node&)> fn) {
  Node* node = node_;
  node_->own_scheduler().At(t, [node, fn = std::move(fn)] { fn(*node); });
}

bool NodeHandle::Install(const std::function<bool(Node*, std::string*)>& installer,
                         std::string* error) {
  std::string local_error;
  return installer(node_, error != nullptr ? error : &local_error);
}

}  // namespace p2
