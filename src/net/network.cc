#include "src/net/network.h"

#include <algorithm>
#include <cassert>

namespace p2 {

namespace {

// Barrier wait helper: a short pause-spin (cheap when the other shards are about to
// arrive), then yield so single-core hosts make progress instead of burning a whole
// timeslice per window.
inline void SpinWait(int* spins) {
  if (++*spins < 64) {
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#else
    std::this_thread::yield();
#endif
  } else {
    std::this_thread::yield();
  }
}

}  // namespace

Network::Network(NetworkConfig config) : config_(config) {
  int shards = std::max(1, config_.shards);
  // The conservative window width is the minimum link latency; with zero latency
  // there is no lookahead and the protocol degenerates, so fall back to one shard.
  if (config_.latency <= 0) {
    shards = 1;
  }
  config_.shards = shards;
  shards_.reserve(shards);
  for (int i = 0; i < shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->outbox.resize(shards);
    shards_.push_back(std::move(shard));
  }
}

Network::~Network() {
  if (!workers_.empty()) {
    {
      std::lock_guard<std::mutex> lock(pool_mu_);
      shutdown_ = true;
    }
    pool_cv_.notify_all();
    for (std::thread& worker : workers_) {
      worker.join();
    }
  }
}

Node* Network::AddNode(const std::string& addr, NodeOptions options) {
  assert(!session_active_.load(std::memory_order_relaxed) &&
         "AddNode must not be called while the network is running");
  auto [it, inserted] = nodes_.emplace(addr, nullptr);
  if (!inserted) {
    return it->second.get();
  }
  int shard = next_shard_;
  next_shard_ = (next_shard_ + 1) % static_cast<int>(shards_.size());
  ++shards_[shard]->node_count;
  it->second =
      std::make_unique<Node>(addr, this, options, &shards_[shard]->sched, shard);
  return it->second.get();
}

Node* Network::GetNode(const std::string& addr) {
  auto it = nodes_.find(addr);
  return it == nodes_.end() ? nullptr : it->second.get();
}

Network::ChannelState& Network::ChannelFor(Shard& shard, const std::string& src,
                                           const std::string& dst) {
  auto key = std::make_pair(src, dst);
  auto it = shard.channels.find(key);
  if (it == shard.channels.end()) {
    // The stream depends only on (network seed, link name) — never on creation
    // order or shard count — so "same seed" replays the same link behavior at any K.
    uint64_t link_seed = DeriveSeed(config_.seed, "link/" + src + ">" + dst);
    it = shard.channels.emplace(key, ChannelState(link_seed)).first;
  }
  return it->second;
}

size_t Network::SendReturningSize(const std::string& src, const std::string& dst,
                                  const WireEnvelope& env) {
  std::string bytes = EncodeEnvelope(env);
  size_t size = bytes.size();
  Node* src_node = GetNode(src);
  // Sends always originate from a node's own event handler, so this runs on the
  // source shard's thread and may touch only that shard's state.
  Shard& shard = src_node != nullptr ? *shards_[src_node->shard_index()] : *shards_[0];
  ++shard.total_msgs;
  shard.total_bytes += size;
  ChannelState& channel = ChannelFor(shard, src, dst);
  ++channel.msgs;
  channel.bytes += size;
  // External-only routing (real-socket backends): every non-self message leaves
  // through the gateway — even when the destination node lives in this same
  // Network — so single-process deployments still exercise the real transport.
  // The simulated fault pipeline is skipped: the physical network (or the
  // driver's own egress-loss injector) supplies loss and latency.
  if (external_only_) {
    if (external_sender_) {
      external_sender_(dst, bytes);
    } else {
      ++shard.dropped_msgs;
    }
    return size;
  }
  // Fault pipeline: global loss first, then partition cuts, then the link's own
  // fault spec. Every draw comes from the link's stream, in a fixed per-message
  // order, so the sequence depends only on this link's send history.
  if (config_.loss_rate > 0 && channel.rng.NextDouble() < config_.loss_rate) {
    ++shard.dropped_msgs;
    return size;
  }
  if (!partitioned_.empty() && IsPartitioned(src, dst)) {
    ++shard.dropped_msgs;
    return size;
  }
  const LinkFault* fault = nullptr;
  if (!link_faults_.empty()) {
    auto it = link_faults_.find(std::make_pair(src, dst));
    if (it != link_faults_.end()) {
      fault = &it->second;
    }
  }
  if (fault != nullptr && fault->loss > 0 && channel.rng.NextDouble() < fault->loss) {
    ++shard.dropped_msgs;
    return size;
  }
  Node* dst_node = GetNode(dst);
  if (dst_node == nullptr) {
    if (external_sender_) {
      external_sender_(dst, bytes);
    } else {
      ++shard.dropped_msgs;
    }
    return size;
  }
  double deliver_at =
      shard.sched.Now() + config_.latency + config_.jitter * channel.rng.NextDouble();
  if (fault != nullptr) {
    deliver_at += fault->extra_latency;
  }
  if (fault != nullptr && fault->reorder_rate > 0 &&
      channel.rng.NextDouble() < fault->reorder_rate) {
    // Reordered: an extra random delay, no FIFO clamp, and `last_delivery` is left
    // alone — this message can overtake earlier ones and later ones can overtake it.
    ++shard.reordered_msgs;
    deliver_at += (config_.latency + config_.jitter) * channel.rng.NextDouble();
  } else {
    if (deliver_at <= channel.last_delivery) {
      deliver_at = channel.last_delivery + 1e-9;  // FIFO: never overtake an earlier message
    }
    channel.last_delivery = deliver_at;
  }
  ++channel.delivered_msgs;
  channel.delivered_bytes += size;
  bool duplicate = false;
  double dup_at = 0;
  if (fault != nullptr && fault->dup_rate > 0 &&
      channel.rng.NextDouble() < fault->dup_rate) {
    // Duplicate: a second copy trails the original by a random fraction of a hop.
    duplicate = true;
    ++shard.duplicated_msgs;
    ++channel.delivered_msgs;
    channel.delivered_bytes += size;
    dup_at = deliver_at + (config_.latency + config_.jitter) * channel.rng.NextDouble() +
             1e-9;
  }
  int dst_shard = dst_node->shard_index();
  if (src_node != nullptr && dst_shard != src_node->shard_index()) {
    // Cross-shard: park in the outbox until the window barrier. Every deliver_at is
    // >= send time + latency >= the current window's end, so the destination heap
    // never receives an event in its past.
    ++shard.sent_cross_shard;
    shard.outbox[dst_shard].push_back(CrossShardMsg{deliver_at, dst_node, bytes});
    if (duplicate) {
      ++shard.sent_cross_shard;
      shard.outbox[dst_shard].push_back(
          CrossShardMsg{dup_at, dst_node, std::move(bytes)});
    }
    return size;
  }
  if (duplicate) {
    shard.sched.At(dup_at, [dst_node, bytes] { dst_node->ReceiveBytes(bytes); });
  }
  shard.sched.At(deliver_at,
                 [dst_node, bytes = std::move(bytes)] { dst_node->ReceiveBytes(bytes); });
  return size;
}

void Network::RunUntil(double t) {
  if (shards_.size() == 1) {
    uint64_t start = MonotonicNs();
    shards_[0]->sched.RunUntil(t);
    uint64_t elapsed = MonotonicNs() - start;
    shards_[0]->busy_ns += elapsed;
    critical_path_ns_ += elapsed;
    return;
  }
  RunUntilParallel(t);
}

void Network::RunUntilParallel(double t) {
  EnsureWorkers();
  session_active_.store(true, std::memory_order_release);
  {
    // Empty critical section: pairs with the wait in WorkerLoop so the notify
    // cannot slip between a worker's predicate check and its sleep.
    std::lock_guard<std::mutex> lock(pool_mu_);
  }
  pool_cv_.notify_all();
  const double lookahead = config_.latency;
  double now = shards_[0]->sched.Now();
  while (now < t) {
    // Window end: at least one lookahead ahead, fast-forwarded to the globally
    // earliest pending event when everyone is idle beyond that, capped at t.
    double earliest = std::numeric_limits<double>::infinity();
    for (auto& shard : shards_) {
      earliest = std::min(earliest, shard->sched.NextEventTime());
    }
    double wend = std::min(t, std::max(now + lookahead, earliest));
    window_end_ = wend;
    window_done_.store(0, std::memory_order_relaxed);
    window_epoch_.fetch_add(1, std::memory_order_acq_rel);
    RunShardWindow(0);
    int spins = 0;
    while (window_done_.load(std::memory_order_acquire) != shards_.size() - 1) {
      SpinWait(&spins);
    }
    ++windows_;
    uint64_t max_busy = 0;
    for (const auto& shard : shards_) {
      max_busy = std::max(max_busy, shard->window_busy_ns);
    }
    critical_path_ns_ += max_busy;
    ExchangeWindow();
    now = wend;
  }
  session_active_.store(false, std::memory_order_release);
}

void Network::RunShardWindow(size_t index) {
  Shard& shard = *shards_[index];
  uint64_t start = MonotonicNs();
  shard.sched.RunUntil(window_end_);
  uint64_t elapsed = MonotonicNs() - start;
  shard.busy_ns += elapsed;
  shard.window_busy_ns = elapsed;
}

void Network::ExchangeWindow() {
  // Coordinator-only, while the workers spin at the barrier: merge each destination
  // shard's incoming batches (source shards visited in index order, entries already
  // in send order) and insert them in delivery-time order, so heap sequence numbers
  // — the equal-time tie-break — match the single-shard insertion order.
  std::vector<CrossShardMsg> incoming;
  for (size_t dst = 0; dst < shards_.size(); ++dst) {
    incoming.clear();
    for (auto& src : shards_) {
      auto& batch = src->outbox[dst];
      incoming.insert(incoming.end(), std::make_move_iterator(batch.begin()),
                      std::make_move_iterator(batch.end()));
      batch.clear();
    }
    if (incoming.empty()) {
      continue;
    }
    std::stable_sort(incoming.begin(), incoming.end(),
                     [](const CrossShardMsg& a, const CrossShardMsg& b) {
                       return a.deliver_at < b.deliver_at;
                     });
    Scheduler& sched = shards_[dst]->sched;
    for (CrossShardMsg& msg : incoming) {
      Node* node = msg.dst;
      sched.At(msg.deliver_at,
               [node, bytes = std::move(msg.bytes)] { node->ReceiveBytes(bytes); });
    }
  }
  FlushMetricsBuffers();
}

void Network::FlushMetricsBuffers() {
  if (metrics_sink_ == nullptr) {
    return;
  }
  std::vector<MetricsSnapshot> all;
  for (auto& shard : shards_) {
    all.insert(all.end(), std::make_move_iterator(shard->metrics_buf.begin()),
               std::make_move_iterator(shard->metrics_buf.end()));
    shard->metrics_buf.clear();
  }
  if (all.empty()) {
    return;
  }
  // (time, node) is a total order here — a node sweeps at most once per instant —
  // so the JSONL stream is byte-identical at any shard count.
  std::stable_sort(all.begin(), all.end(),
                   [](const MetricsSnapshot& a, const MetricsSnapshot& b) {
                     if (a.time != b.time) {
                       return a.time < b.time;
                     }
                     return a.node < b.node;
                   });
  for (MetricsSnapshot& snap : all) {
    metrics_sink_->Write(snap);
  }
}

void Network::EnsureWorkers() {
  if (!workers_.empty() || shards_.size() <= 1) {
    return;
  }
  workers_.reserve(shards_.size() - 1);
  for (size_t i = 1; i < shards_.size(); ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

void Network::WorkerLoop(size_t index) {
  uint64_t seen_epoch = 0;
  while (true) {
    {
      std::unique_lock<std::mutex> lock(pool_mu_);
      pool_cv_.wait(lock, [this] {
        return shutdown_ || session_active_.load(std::memory_order_acquire);
      });
      if (shutdown_) {
        return;
      }
    }
    int spins = 0;
    while (true) {
      uint64_t epoch = window_epoch_.load(std::memory_order_acquire);
      if (epoch == seen_epoch) {
        if (!session_active_.load(std::memory_order_acquire)) {
          break;  // session over: park on the condvar again
        }
        SpinWait(&spins);
        continue;
      }
      seen_epoch = epoch;
      RunShardWindow(index);
      spins = 0;
      window_done_.fetch_add(1, std::memory_order_acq_rel);
    }
  }
}

uint64_t Network::SumShards(uint64_t Shard::* field) const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += (*shard).*field;
  }
  return total;
}

uint64_t Network::total_msgs() const { return SumShards(&Shard::total_msgs); }
uint64_t Network::total_bytes() const { return SumShards(&Shard::total_bytes); }
uint64_t Network::dropped_msgs() const { return SumShards(&Shard::dropped_msgs); }
uint64_t Network::duplicated_msgs() const { return SumShards(&Shard::duplicated_msgs); }
uint64_t Network::reordered_msgs() const { return SumShards(&Shard::reordered_msgs); }

void Network::SetLinkFault(const std::string& src, const std::string& dst,
                           LinkFault fault) {
  link_faults_[std::make_pair(src, dst)] = fault;
}

void Network::ClearLinkFault(const std::string& src, const std::string& dst) {
  link_faults_.erase(std::make_pair(src, dst));
}

void Network::Partition(const std::vector<std::string>& group_a,
                        const std::vector<std::string>& group_b) {
  for (const std::string& a : group_a) {
    for (const std::string& b : group_b) {
      partitioned_.insert(std::make_pair(a, b));
      partitioned_.insert(std::make_pair(b, a));
    }
  }
}

std::vector<Network::ChannelTraffic> Network::ChannelsSnapshot() const {
  // Each (src,dst) pair lives in exactly one shard (the source node's), so
  // concatenating and sorting yields one row per channel.
  std::vector<ChannelTraffic> out;
  for (const auto& shard : shards_) {
    out.reserve(out.size() + shard->channels.size());
    for (const auto& [key, state] : shard->channels) {
      out.push_back({key.first, key.second, state.msgs, state.bytes,
                     state.delivered_msgs, state.delivered_bytes});
    }
  }
  std::sort(out.begin(), out.end(), [](const ChannelTraffic& a, const ChannelTraffic& b) {
    if (a.src != b.src) {
      return a.src < b.src;
    }
    return a.dst < b.dst;
  });
  return out;
}

std::vector<Network::ShardStats> Network::ShardStatsSnapshot() const {
  std::vector<ShardStats> out;
  out.reserve(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    const Shard& shard = *shards_[i];
    ShardStats stats;
    stats.index = static_cast<int>(i);
    stats.nodes = shard.node_count;
    stats.events = shard.sched.ExecutedCount();
    stats.heap_hwm = shard.sched.HeapHighWaterMark();
    stats.busy_ns = shard.busy_ns;
    stats.sent_cross_shard = shard.sent_cross_shard;
    out.push_back(stats);
  }
  return out;
}

void Network::PublishShardGauges(Node* node) {
  if (shards_.size() == 1) {
    return;
  }
  // Runs during the node's own sweep, on its shard's thread — which owns every
  // value read here (windows_ is coordinator-written only at barriers, ordered by
  // the epoch handshake).
  const Shard& shard = *shards_[node->shard_index()];
  MetricsRegistry& reg = node->metrics();
  reg.GetGauge("shard")->Set(node->shard_index());
  reg.GetGauge("shard_events")->Set(static_cast<int64_t>(shard.sched.ExecutedCount()));
  reg.GetGauge("shard_heap_hwm")
      ->Set(static_cast<int64_t>(shard.sched.HeapHighWaterMark()));
  reg.GetGauge("shard_windows")->Set(static_cast<int64_t>(windows_));
  reg.GetGauge("shard_xmsgs")->Set(static_cast<int64_t>(shard.sent_cross_shard));
  reg.GetGauge("shard_busy_ms")->Set(static_cast<int64_t>(shard.busy_ns / 1000000));
}

void Network::WriteNodeMetrics(Node* node) {
  if (metrics_sink_ == nullptr) {
    return;
  }
  MetricsSnapshot snap = SnapshotNodeMetrics(node);
  if (shards_.size() == 1) {
    metrics_sink_->Write(snap);
    return;
  }
  shards_[node->shard_index()]->metrics_buf.push_back(std::move(snap));
}

uint64_t Network::SumStats(uint64_t NodeStats::* field) const {
  uint64_t total = 0;
  for (const auto& [addr, node] : nodes_) {
    total += node->stats().*field;
  }
  return total;
}

std::vector<Node*> Network::AllNodes() {
  std::vector<Node*> out;
  out.reserve(nodes_.size());
  for (auto& [addr, node] : nodes_) {
    out.push_back(node.get());
  }
  return out;
}

}  // namespace p2
