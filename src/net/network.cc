#include "src/net/network.h"

namespace p2 {

Network::Network(NetworkConfig config) : config_(config), rng_(config.seed) {}

Network::~Network() = default;

Node* Network::AddNode(const std::string& addr, NodeOptions options) {
  auto [it, inserted] = nodes_.emplace(addr, nullptr);
  if (!inserted) {
    return it->second.get();
  }
  it->second = std::make_unique<Node>(addr, this, options);
  return it->second.get();
}

Node* Network::GetNode(const std::string& addr) {
  auto it = nodes_.find(addr);
  return it == nodes_.end() ? nullptr : it->second.get();
}

size_t Network::SendReturningSize(const std::string& src, const std::string& dst,
                                  const WireEnvelope& env) {
  std::string bytes = EncodeEnvelope(env);
  size_t size = bytes.size();
  ++total_msgs_;
  total_bytes_ += size;
  ChannelState& channel = channels_[std::make_pair(src, dst)];
  ++channel.msgs;
  channel.bytes += size;
  if (config_.loss_rate > 0 && rng_.NextDouble() < config_.loss_rate) {
    ++dropped_msgs_;
    return size;
  }
  Node* dst_node = GetNode(dst);
  if (dst_node == nullptr) {
    if (external_sender_) {
      external_sender_(dst, bytes);
    } else {
      ++dropped_msgs_;
    }
    return size;
  }
  double deliver_at = sched_.Now() + config_.latency + config_.jitter * rng_.NextDouble();
  if (deliver_at <= channel.last_delivery) {
    deliver_at = channel.last_delivery + 1e-9;  // FIFO: never overtake an earlier message
  }
  channel.last_delivery = deliver_at;
  ++channel.delivered_msgs;
  channel.delivered_bytes += size;
  sched_.At(deliver_at,
            [dst_node, bytes = std::move(bytes)] { dst_node->ReceiveBytes(bytes); });
  return size;
}

std::vector<Network::ChannelTraffic> Network::ChannelsSnapshot() const {
  std::vector<ChannelTraffic> out;
  out.reserve(channels_.size());
  for (const auto& [key, state] : channels_) {
    out.push_back({key.first, key.second, state.msgs, state.bytes,
                   state.delivered_msgs, state.delivered_bytes});
  }
  return out;
}

uint64_t Network::SumStats(uint64_t NodeStats::* field) const {
  uint64_t total = 0;
  for (const auto& [addr, node] : nodes_) {
    total += node->stats().*field;
  }
  return total;
}

std::vector<Node*> Network::AllNodes() {
  std::vector<Node*> out;
  out.reserve(nodes_.size());
  for (auto& [addr, node] : nodes_) {
    out.push_back(node.get());
  }
  return out;
}

}  // namespace p2
