#include "src/net/network.h"

namespace p2 {

Network::Network(NetworkConfig config) : config_(config), rng_(config.seed) {}

Network::~Network() = default;

Node* Network::AddNode(const std::string& addr, NodeOptions options) {
  auto [it, inserted] = nodes_.emplace(addr, nullptr);
  if (!inserted) {
    return it->second.get();
  }
  it->second = std::make_unique<Node>(addr, this, options);
  return it->second.get();
}

Node* Network::GetNode(const std::string& addr) {
  auto it = nodes_.find(addr);
  return it == nodes_.end() ? nullptr : it->second.get();
}

size_t Network::SendReturningSize(const std::string& src, const std::string& dst,
                                  const WireEnvelope& env) {
  std::string bytes = EncodeEnvelope(env);
  size_t size = bytes.size();
  ++total_msgs_;
  total_bytes_ += size;
  ChannelState& channel = channels_[std::make_pair(src, dst)];
  ++channel.msgs;
  channel.bytes += size;
  // Fault pipeline: global loss first (so fault-free runs replay the historical RNG
  // draw sequence exactly), then partition cuts, then the link's own fault spec.
  if (config_.loss_rate > 0 && rng_.NextDouble() < config_.loss_rate) {
    ++dropped_msgs_;
    return size;
  }
  if (!partitioned_.empty() && IsPartitioned(src, dst)) {
    ++dropped_msgs_;
    return size;
  }
  const LinkFault* fault = nullptr;
  if (!link_faults_.empty()) {
    auto it = link_faults_.find(std::make_pair(src, dst));
    if (it != link_faults_.end()) {
      fault = &it->second;
    }
  }
  if (fault != nullptr && fault->loss > 0 && rng_.NextDouble() < fault->loss) {
    ++dropped_msgs_;
    return size;
  }
  Node* dst_node = GetNode(dst);
  if (dst_node == nullptr) {
    if (external_sender_) {
      external_sender_(dst, bytes);
    } else {
      ++dropped_msgs_;
    }
    return size;
  }
  double deliver_at = sched_.Now() + config_.latency + config_.jitter * rng_.NextDouble();
  if (fault != nullptr) {
    deliver_at += fault->extra_latency;
  }
  if (fault != nullptr && fault->reorder_rate > 0 &&
      rng_.NextDouble() < fault->reorder_rate) {
    // Reordered: an extra random delay, no FIFO clamp, and `last_delivery` is left
    // alone — this message can overtake earlier ones and later ones can overtake it.
    ++reordered_msgs_;
    deliver_at += (config_.latency + config_.jitter) * rng_.NextDouble();
  } else {
    if (deliver_at <= channel.last_delivery) {
      deliver_at = channel.last_delivery + 1e-9;  // FIFO: never overtake an earlier message
    }
    channel.last_delivery = deliver_at;
  }
  ++channel.delivered_msgs;
  channel.delivered_bytes += size;
  if (fault != nullptr && fault->dup_rate > 0 && rng_.NextDouble() < fault->dup_rate) {
    // Duplicate: a second copy trails the original by a random fraction of a hop.
    ++duplicated_msgs_;
    ++channel.delivered_msgs;
    channel.delivered_bytes += size;
    double dup_at =
        deliver_at + (config_.latency + config_.jitter) * rng_.NextDouble() + 1e-9;
    sched_.At(dup_at, [dst_node, bytes] { dst_node->ReceiveBytes(bytes); });
  }
  sched_.At(deliver_at,
            [dst_node, bytes = std::move(bytes)] { dst_node->ReceiveBytes(bytes); });
  return size;
}

void Network::SetLinkFault(const std::string& src, const std::string& dst,
                           LinkFault fault) {
  link_faults_[std::make_pair(src, dst)] = fault;
}

void Network::ClearLinkFault(const std::string& src, const std::string& dst) {
  link_faults_.erase(std::make_pair(src, dst));
}

void Network::Partition(const std::vector<std::string>& group_a,
                        const std::vector<std::string>& group_b) {
  for (const std::string& a : group_a) {
    for (const std::string& b : group_b) {
      partitioned_.insert(std::make_pair(a, b));
      partitioned_.insert(std::make_pair(b, a));
    }
  }
}

std::vector<Network::ChannelTraffic> Network::ChannelsSnapshot() const {
  std::vector<ChannelTraffic> out;
  out.reserve(channels_.size());
  for (const auto& [key, state] : channels_) {
    out.push_back({key.first, key.second, state.msgs, state.bytes,
                   state.delivered_msgs, state.delivered_bytes});
  }
  return out;
}

uint64_t Network::SumStats(uint64_t NodeStats::* field) const {
  uint64_t total = 0;
  for (const auto& [addr, node] : nodes_) {
    total += node->stats().*field;
  }
  return total;
}

std::vector<Node*> Network::AllNodes() {
  std::vector<Node*> out;
  out.reserve(nodes_.size());
  for (auto& [addr, node] : nodes_) {
    out.push_back(node.get());
  }
  return out;
}

}  // namespace p2
