#include "src/net/wire.h"

#include <cstring>

namespace p2 {

namespace {

void PutU8(uint8_t v, std::string* out) { out->push_back(static_cast<char>(v)); }

void PutU32(uint32_t v, std::string* out) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}

void PutU64(uint64_t v, std::string* out) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

void PutF64(double v, std::string* out) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

void PutStr(const std::string& s, std::string* out) {
  PutU32(static_cast<uint32_t>(s.size()), out);
  out->append(s);
}

bool GetU8(const std::string& in, size_t* pos, uint8_t* v) {
  if (*pos + 1 > in.size()) {
    return false;
  }
  *v = static_cast<uint8_t>(in[*pos]);
  *pos += 1;
  return true;
}

bool GetU32(const std::string& in, size_t* pos, uint32_t* v) {
  if (*pos + 4 > in.size()) {
    return false;
  }
  std::memcpy(v, in.data() + *pos, 4);
  *pos += 4;
  return true;
}

bool GetU64(const std::string& in, size_t* pos, uint64_t* v) {
  if (*pos + 8 > in.size()) {
    return false;
  }
  std::memcpy(v, in.data() + *pos, 8);
  *pos += 8;
  return true;
}

bool GetF64(const std::string& in, size_t* pos, double* v) {
  if (*pos + 8 > in.size()) {
    return false;
  }
  std::memcpy(v, in.data() + *pos, 8);
  *pos += 8;
  return true;
}

bool GetStr(const std::string& in, size_t* pos, std::string* s) {
  uint32_t len = 0;
  if (!GetU32(in, pos, &len) || *pos + len > in.size()) {
    return false;
  }
  s->assign(in, *pos, len);
  *pos += len;
  return true;
}

}  // namespace

void EncodeValue(const Value& v, std::string* out) {
  PutU8(static_cast<uint8_t>(v.kind()), out);
  switch (v.kind()) {
    case Value::Kind::kNull:
      break;
    case Value::Kind::kBool:
      PutU8(v.AsBool() ? 1 : 0, out);
      break;
    case Value::Kind::kInt:
      PutU64(static_cast<uint64_t>(v.AsInt()), out);
      break;
    case Value::Kind::kId:
      PutU64(v.AsId(), out);
      break;
    case Value::Kind::kDouble:
      PutF64(v.AsDouble(), out);
      break;
    case Value::Kind::kString:
      PutStr(v.AsString(), out);
      break;
    case Value::Kind::kList: {
      const ValueList& items = v.AsList();
      PutU32(static_cast<uint32_t>(items.size()), out);
      for (const Value& item : items) {
        EncodeValue(item, out);
      }
      break;
    }
  }
}

bool DecodeValue(const std::string& in, size_t* pos, Value* out) {
  uint8_t tag = 0;
  if (!GetU8(in, pos, &tag)) {
    return false;
  }
  switch (static_cast<Value::Kind>(tag)) {
    case Value::Kind::kNull:
      *out = Value::Null();
      return true;
    case Value::Kind::kBool: {
      uint8_t b = 0;
      if (!GetU8(in, pos, &b)) {
        return false;
      }
      *out = Value::Bool(b != 0);
      return true;
    }
    case Value::Kind::kInt: {
      uint64_t u = 0;
      if (!GetU64(in, pos, &u)) {
        return false;
      }
      *out = Value::Int(static_cast<int64_t>(u));
      return true;
    }
    case Value::Kind::kId: {
      uint64_t u = 0;
      if (!GetU64(in, pos, &u)) {
        return false;
      }
      *out = Value::Id(u);
      return true;
    }
    case Value::Kind::kDouble: {
      double d = 0;
      if (!GetF64(in, pos, &d)) {
        return false;
      }
      *out = Value::Double(d);
      return true;
    }
    case Value::Kind::kString: {
      std::string s;
      if (!GetStr(in, pos, &s)) {
        return false;
      }
      *out = Value::Str(std::move(s));
      return true;
    }
    case Value::Kind::kList: {
      uint32_t n = 0;
      if (!GetU32(in, pos, &n)) {
        return false;
      }
      // Cap list size against malformed lengths.
      if (n > 1u << 20) {
        return false;
      }
      ValueList items;
      items.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        Value item;
        if (!DecodeValue(in, pos, &item)) {
          return false;
        }
        items.push_back(std::move(item));
      }
      *out = Value::List(std::move(items));
      return true;
    }
  }
  return false;
}

void EncodeTuple(const Tuple& t, std::string* out) {
  // ByteSize() over-approximates the encoded size, making the appends below
  // reallocation-free. Grow at least geometrically so loops encoding many tuples
  // into one buffer (snapshot export) stay amortized O(n).
  size_t need = out->size() + t.ByteSize() + 8;
  if (out->capacity() < need) {
    out->reserve(std::max(need, out->capacity() * 2));
  }
  PutStr(t.name(), out);
  PutU32(static_cast<uint32_t>(t.arity()), out);
  for (const Value& v : t.fields()) {
    EncodeValue(v, out);
  }
}

bool DecodeTuple(const std::string& in, size_t* pos, TupleRef* out) {
  std::string name;
  uint32_t arity = 0;
  if (!GetStr(in, pos, &name) || !GetU32(in, pos, &arity) || arity > 1u << 16) {
    return false;
  }
  ValueList fields;
  fields.reserve(arity);
  for (uint32_t i = 0; i < arity; ++i) {
    Value v;
    if (!DecodeValue(in, pos, &v)) {
      return false;
    }
    fields.push_back(std::move(v));
  }
  *out = Tuple::Make(std::move(name), std::move(fields));
  return true;
}

std::string EncodeEnvelope(const WireEnvelope& env) {
  std::string out;
  size_t tuple_size = env.is_ack ? 0 : env.tuple->ByteSize();
  out.reserve(1 + 8 + 8 + 4 + env.src_addr.size() + tuple_size + 32);
  uint8_t flags = 0;
  if (env.is_delete) {
    flags |= 1;
  }
  if (env.reliable) {
    flags |= 2;
  }
  if (env.is_ack) {
    flags |= 4;
  }
  PutU8(flags, &out);
  PutU64(env.src_tuple_id, &out);
  PutU64(env.bound_mask, &out);
  PutStr(env.src_addr, &out);
  if (env.reliable || env.is_ack) {
    PutU64(env.epoch, &out);
  }
  if (env.reliable) {
    PutU64(env.seq, &out);
  }
  if (env.is_ack) {
    PutU64(env.ack_seq, &out);
  } else {
    EncodeTuple(*env.tuple, &out);
  }
  return out;
}

bool DecodeEnvelope(const std::string& bytes, WireEnvelope* out) {
  size_t pos = 0;
  uint8_t flags = 0;
  if (!GetU8(bytes, &pos, &flags) || !GetU64(bytes, &pos, &out->src_tuple_id) ||
      !GetU64(bytes, &pos, &out->bound_mask) || !GetStr(bytes, &pos, &out->src_addr)) {
    return false;
  }
  out->is_delete = (flags & 1) != 0;
  out->reliable = (flags & 2) != 0;
  out->is_ack = (flags & 4) != 0;
  if ((out->reliable || out->is_ack) && !GetU64(bytes, &pos, &out->epoch)) {
    return false;
  }
  if (out->reliable && !GetU64(bytes, &pos, &out->seq)) {
    return false;
  }
  if (out->is_ack) {
    if (!GetU64(bytes, &pos, &out->ack_seq)) {
      return false;
    }
    out->tuple = TupleRef();
  } else if (!DecodeTuple(bytes, &pos, &out->tuple)) {
    return false;
  }
  return pos == bytes.size();
}

// ---- fast-path decoder ------------------------------------------------------
//
// Mirrors DecodeEnvelope exactly (same caps, same acceptance set, same outputs)
// over a raw [p, end) cursor. Every length check is against the remaining span
// once, and decoded values are built in place in their final storage.

namespace {

struct Cursor {
  const char* p;
  const char* end;
  size_t remaining() const { return static_cast<size_t>(end - p); }
};

bool ReadU8(Cursor* c, uint8_t* v) {
  if (c->remaining() < 1) {
    return false;
  }
  *v = static_cast<uint8_t>(*c->p);
  c->p += 1;
  return true;
}

bool ReadU32(Cursor* c, uint32_t* v) {
  if (c->remaining() < 4) {
    return false;
  }
  std::memcpy(v, c->p, 4);
  c->p += 4;
  return true;
}

bool ReadU64(Cursor* c, uint64_t* v) {
  if (c->remaining() < 8) {
    return false;
  }
  std::memcpy(v, c->p, 8);
  c->p += 8;
  return true;
}

bool ReadF64(Cursor* c, double* v) {
  if (c->remaining() < 8) {
    return false;
  }
  std::memcpy(v, c->p, 8);
  c->p += 8;
  return true;
}

bool ReadStr(Cursor* c, std::string* s) {
  uint32_t len = 0;
  if (!ReadU32(c, &len) || c->remaining() < len) {
    return false;
  }
  s->assign(c->p, len);
  c->p += len;
  return true;
}

// Decodes one value directly into `out` (typically a freshly default-constructed
// element already sitting in the tuple's field vector).
bool DecodeValueInto(Cursor* c, Value* out) {
  uint8_t tag = 0;
  if (!ReadU8(c, &tag)) {
    return false;
  }
  switch (static_cast<Value::Kind>(tag)) {
    case Value::Kind::kNull:
      *out = Value::Null();
      return true;
    case Value::Kind::kBool: {
      uint8_t b = 0;
      if (!ReadU8(c, &b)) {
        return false;
      }
      *out = Value::Bool(b != 0);
      return true;
    }
    case Value::Kind::kInt: {
      uint64_t u = 0;
      if (!ReadU64(c, &u)) {
        return false;
      }
      *out = Value::Int(static_cast<int64_t>(u));
      return true;
    }
    case Value::Kind::kId: {
      uint64_t u = 0;
      if (!ReadU64(c, &u)) {
        return false;
      }
      *out = Value::Id(u);
      return true;
    }
    case Value::Kind::kDouble: {
      double d = 0;
      if (!ReadF64(c, &d)) {
        return false;
      }
      *out = Value::Double(d);
      return true;
    }
    case Value::Kind::kString: {
      uint32_t len = 0;
      if (!ReadU32(c, &len) || c->remaining() < len) {
        return false;
      }
      // One copy, wire buffer -> final string (inline when it fits SSO).
      *out = Value::Str(std::string(c->p, len));
      c->p += len;
      return true;
    }
    case Value::Kind::kList: {
      uint32_t n = 0;
      if (!ReadU32(c, &n)) {
        return false;
      }
      // Same cap as the legacy decoder.
      if (n > 1u << 20) {
        return false;
      }
      ValueList items;
      items.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        items.emplace_back();
        if (!DecodeValueInto(c, &items.back())) {
          return false;
        }
      }
      *out = Value::List(std::move(items));
      return true;
    }
  }
  return false;
}

bool DecodeTupleFast(Cursor* c, TupleRef* out) {
  uint32_t name_len = 0;
  if (!ReadU32(c, &name_len) || c->remaining() < name_len) {
    return false;
  }
  std::string name(c->p, name_len);
  c->p += name_len;
  uint32_t arity = 0;
  if (!ReadU32(c, &arity) || arity > 1u << 16) {
    return false;
  }
  // Exact reserve: this vector is the row payload the receiver's table (and
  // the tracer's memo) will share — it is never re-grown or copied again.
  ValueList fields;
  fields.reserve(arity);
  for (uint32_t i = 0; i < arity; ++i) {
    fields.emplace_back();
    if (!DecodeValueInto(c, &fields.back())) {
      return false;
    }
  }
  *out = Tuple::Make(std::move(name), std::move(fields));
  return true;
}

}  // namespace

bool DecodeEnvelopeFast(const std::string& bytes, WireEnvelope* out) {
  Cursor c{bytes.data(), bytes.data() + bytes.size()};
  uint8_t flags = 0;
  if (!ReadU8(&c, &flags) || !ReadU64(&c, &out->src_tuple_id) ||
      !ReadU64(&c, &out->bound_mask) || !ReadStr(&c, &out->src_addr)) {
    return false;
  }
  out->is_delete = (flags & 1) != 0;
  out->reliable = (flags & 2) != 0;
  out->is_ack = (flags & 4) != 0;
  if ((out->reliable || out->is_ack) && !ReadU64(&c, &out->epoch)) {
    return false;
  }
  if (out->reliable && !ReadU64(&c, &out->seq)) {
    return false;
  }
  if (out->is_ack) {
    if (!ReadU64(&c, &out->ack_seq)) {
      return false;
    }
    out->tuple = TupleRef();
  } else if (!DecodeTupleFast(&c, &out->tuple)) {
    return false;
  }
  // Reject trailing bytes, exactly like the legacy decoder.
  return c.p == c.end;
}

// ---- batched datagram frames ----

bool IsBatchFrame(const std::string& bytes) {
  return !bytes.empty() && static_cast<uint8_t>(bytes[0]) == kBatchFrameMagic;
}

void BatchFrameBuilder::Add(const std::string& envelope) {
  PutU32(static_cast<uint32_t>(envelope.size()), &payload_);
  payload_.append(envelope);
  ++count_;
}

size_t BatchFrameBuilder::frame_size() const {
  return 1 /*magic*/ + 1 /*version*/ + 4 /*count*/ + payload_.size();
}

std::string BatchFrameBuilder::Take() {
  std::string frame;
  frame.reserve(frame_size());
  PutU8(kBatchFrameMagic, &frame);
  PutU8(kBatchFrameVersion, &frame);
  PutU32(count_, &frame);
  frame.append(payload_);
  payload_.clear();
  count_ = 0;
  return frame;
}

std::string EncodeBatchFrame(const std::vector<std::string>& envelopes) {
  BatchFrameBuilder builder;
  for (const std::string& env : envelopes) {
    builder.Add(env);
  }
  return builder.Take();
}

bool DecodeBatchFrame(const std::string& frame, std::vector<std::string>* envelopes) {
  envelopes->clear();
  size_t pos = 0;
  uint8_t magic = 0;
  uint8_t version = 0;
  uint32_t count = 0;
  if (!GetU8(frame, &pos, &magic) || magic != kBatchFrameMagic ||
      !GetU8(frame, &pos, &version) || version != kBatchFrameVersion ||
      !GetU32(frame, &pos, &count)) {
    return false;
  }
  // Each record costs at least its 4-byte length prefix; an impossible count is
  // rejected before any allocation.
  if (count > (frame.size() - pos) / 4) {
    envelopes->clear();
    return false;
  }
  envelopes->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    std::string env;
    if (!GetStr(frame, &pos, &env)) {
      envelopes->clear();
      return false;
    }
    envelopes->push_back(std::move(env));
  }
  if (pos != frame.size()) {  // trailing bytes: corrupt
    envelopes->clear();
    return false;
  }
  return true;
}

}  // namespace p2
