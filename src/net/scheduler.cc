#include "src/net/scheduler.h"

#include <algorithm>
#include <limits>

namespace p2 {

uint64_t Scheduler::At(double time, Task fn) {
  uint64_t id = next_id_++;
  heap_.push(Event{std::max(time, now_), next_seq_++, id});
  tasks_.emplace(id, std::move(fn));
  if (heap_.size() > heap_hwm_) {
    heap_hwm_ = heap_.size();
  }
  return id;
}

uint64_t Scheduler::After(double delay, Task fn) { return At(now_ + delay, std::move(fn)); }

void Scheduler::Cancel(uint64_t id) {
  if (tasks_.count(id) > 0) {
    cancelled_.insert(id);
  }
}

bool Scheduler::Step() {
  while (!heap_.empty()) {
    Event ev = heap_.top();
    heap_.pop();
    auto cancelled_it = cancelled_.find(ev.id);
    if (cancelled_it != cancelled_.end()) {
      cancelled_.erase(cancelled_it);
      tasks_.erase(ev.id);
      continue;
    }
    auto it = tasks_.find(ev.id);
    if (it == tasks_.end()) {
      continue;
    }
    Task fn = std::move(it->second);
    tasks_.erase(it);
    now_ = ev.time;
    ++executed_;
    fn();
    return true;
  }
  return false;
}

double Scheduler::NextEventTime() {
  while (!heap_.empty()) {
    const Event& ev = heap_.top();
    auto it = cancelled_.find(ev.id);
    if (it == cancelled_.end()) {
      return ev.time;
    }
    cancelled_.erase(it);
    tasks_.erase(ev.id);
    heap_.pop();
  }
  return std::numeric_limits<double>::infinity();
}

void Scheduler::RunUntil(double t) {
  while (!heap_.empty()) {
    // Skip cancelled events at the head without advancing time.
    Event ev = heap_.top();
    if (cancelled_.count(ev.id) > 0) {
      heap_.pop();
      cancelled_.erase(ev.id);
      tasks_.erase(ev.id);
      continue;
    }
    if (ev.time > t) {
      break;
    }
    Step();
  }
  now_ = std::max(now_, t);
}

}  // namespace p2
