#include "src/net/udp_driver.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>

#include "src/common/strings.h"

namespace p2 {

namespace {

// Parses "127.0.0.1:9000" into a sockaddr. Returns false on malformed input.
bool ParseAddr(const std::string& addr, sockaddr_in* out) {
  size_t colon = addr.rfind(':');
  if (colon == std::string::npos) {
    return false;
  }
  std::string host = addr.substr(0, colon);
  int port = std::atoi(addr.c_str() + colon + 1);
  if (port <= 0 || port > 65535) {
    return false;
  }
  std::memset(out, 0, sizeof(*out));
  out->sin_family = AF_INET;
  out->sin_port = htons(static_cast<uint16_t>(port));
  return inet_pton(AF_INET, host.c_str(), &out->sin_addr) == 1;
}

double SteadySeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

UdpDriver::UdpDriver(Network* net) : net_(net) {
  net_->SetExternalSender(
      [this](const std::string& dst, const std::string& bytes) {
        SendExternal(dst, bytes);
      });
}

UdpDriver::~UdpDriver() {
  net_->SetExternalSender(nullptr);
  for (const Endpoint& ep : endpoints_) {
    if (ep.fd >= 0) {
      ::close(ep.fd);
    }
  }
}

Node* UdpDriver::CreateNode(uint16_t port, NodeOptions options, std::string* error) {
  int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd < 0) {
    *error = "socket() failed";
    return nullptr;
  }
  sockaddr_in bind_addr;
  std::memset(&bind_addr, 0, sizeof(bind_addr));
  bind_addr.sin_family = AF_INET;
  bind_addr.sin_port = htons(port);
  inet_pton(AF_INET, "127.0.0.1", &bind_addr.sin_addr);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&bind_addr), sizeof(bind_addr)) != 0) {
    *error = StrFormat("bind(127.0.0.1:%u) failed", port);
    ::close(fd);
    return nullptr;
  }
  sockaddr_in actual;
  socklen_t len = sizeof(actual);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&actual), &len) != 0) {
    *error = "getsockname failed";
    ::close(fd);
    return nullptr;
  }
  std::string addr = StrFormat("127.0.0.1:%u", ntohs(actual.sin_port));
  Node* node = net_->AddNode(addr, options);
  endpoints_.push_back(Endpoint{fd, node});
  return node;
}

void UdpDriver::SetEgressLossRate(double rate, uint64_t seed) {
  egress_loss_ = rate;
  egress_rng_ = Rng(seed);
}

void UdpDriver::SendExternal(const std::string& dst, const std::string& bytes) {
  sockaddr_in to;
  if (!ParseAddr(dst, &to) || endpoints_.empty()) {
    return;  // unroutable: dropped, as a real UDP stack would
  }
  if (egress_loss_ > 0 && egress_rng_.NextDouble() < egress_loss_) {
    ++datagrams_dropped_;
    return;
  }
  ::sendto(endpoints_[0].fd, bytes.data(), bytes.size(), 0,
           reinterpret_cast<sockaddr*>(&to), sizeof(to));
  ++datagrams_sent_;
}

double UdpDriver::WallNow() const { return SteadySeconds(); }

void UdpDriver::RunFor(double wall_seconds) {
  if (wall_start_ < 0) {
    wall_start_ = WallNow();
    virtual_base_ = net_->Now();
  }
  double deadline = WallNow() + wall_seconds;
  std::vector<pollfd> fds(endpoints_.size());
  for (size_t i = 0; i < endpoints_.size(); ++i) {
    fds[i].fd = endpoints_[i].fd;
    fds[i].events = POLLIN;
  }
  char buffer[65536];
  while (true) {
    double now_wall = WallNow();
    if (now_wall >= deadline) {
      break;
    }
    // Fire every timer due by the current wall instant.
    double virtual_now = virtual_base_ + (now_wall - wall_start_);
    net_->RunUntil(virtual_now);
    // Sleep until the next timer or the deadline, whichever comes first, but wake for
    // any datagram.
    double next_virtual = net_->scheduler().NextEventTime();
    double next_wall = wall_start_ + (next_virtual - virtual_base_);
    double until = std::min(next_wall, deadline);
    int timeout_ms = static_cast<int>(
        std::clamp((until - now_wall) * 1000.0, 0.0, 100.0));
    int ready = ::poll(fds.data(), fds.size(), timeout_ms);
    if (ready <= 0) {
      continue;
    }
    for (size_t i = 0; i < fds.size(); ++i) {
      if ((fds[i].revents & POLLIN) == 0) {
        continue;
      }
      while (true) {
        ssize_t n = ::recv(fds[i].fd, buffer, sizeof(buffer), MSG_DONTWAIT);
        if (n <= 0) {
          break;
        }
        ++datagrams_received_;
        endpoints_[i].node->ReceiveBytes(std::string(buffer, static_cast<size_t>(n)));
      }
    }
  }
}

}  // namespace p2
