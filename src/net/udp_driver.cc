#include "src/net/udp_driver.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>

#include "src/common/strings.h"
#include "src/trace/metrics.h"

namespace p2 {

namespace {

// Parses "127.0.0.1:9000" into a sockaddr. Returns false on malformed input.
bool ParseAddr(const std::string& addr, sockaddr_in* out) {
  size_t colon = addr.rfind(':');
  if (colon == std::string::npos) {
    return false;
  }
  std::string host = addr.substr(0, colon);
  int port = std::atoi(addr.c_str() + colon + 1);
  if (port <= 0 || port > 65535) {
    return false;
  }
  std::memset(out, 0, sizeof(*out));
  out->sin_family = AF_INET;
  out->sin_port = htons(static_cast<uint16_t>(port));
  return inet_pton(AF_INET, host.c_str(), &out->sin_addr) == 1;
}

double SteadySeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

UdpDriver::UdpDriver(Fleet* fleet) : fleet_(fleet), net_(&fleet->network()) {
  net_->SetExternalSender(
      [this](const std::string& dst, const std::string& bytes) {
        SendExternal(dst, bytes);
      });
  // Every non-self tuple goes through the sockets, even between two nodes of
  // this process: single-process deployments exercise the real transport.
  net_->SetExternalOnly(true);
  max_datagram_ = fleet->config().udp_max_datagram;
}

UdpDriver::~UdpDriver() {
  net_->SetExternalOnly(false);
  net_->SetExternalSender(nullptr);
  for (const Endpoint& ep : endpoints_) {
    if (ep.fd >= 0) {
      ::close(ep.fd);
    }
  }
}

NodeHandle UdpDriver::CreateNode(const std::string& name, uint16_t port,
                                 NodeOptions options, std::string* error) {
  const std::string& host = fleet_->config().udp_host;
  int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd < 0) {
    *error = "socket() failed";
    return NodeHandle();
  }
  ::fcntl(fd, F_SETFL, ::fcntl(fd, F_GETFL, 0) | O_NONBLOCK);
  // Stabilization rounds arrive in fleet-wide bursts; the kernel default
  // receive buffer (~208KB) can overflow while the loop is busy elsewhere,
  // silently dropping best-effort traffic. Best-effort is a sanctioned loss
  // class, but convergence is much faster without kernel-side drops.
  int rcvbuf = 1 << 20;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));
  sockaddr_in bind_addr;
  std::memset(&bind_addr, 0, sizeof(bind_addr));
  bind_addr.sin_family = AF_INET;
  bind_addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &bind_addr.sin_addr) != 1) {
    *error = "bad udp_host: " + host;
    ::close(fd);
    return NodeHandle();
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&bind_addr), sizeof(bind_addr)) != 0) {
    *error = StrFormat("bind(%s:%u) failed", host.c_str(), port);
    ::close(fd);
    return NodeHandle();
  }
  sockaddr_in actual;
  socklen_t len = sizeof(actual);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&actual), &len) != 0) {
    *error = "getsockname failed";
    ::close(fd);
    return NodeHandle();
  }
  std::string socket_addr = StrFormat("%s:%u", host.c_str(), ntohs(actual.sin_port));
  std::string addr = name.empty() ? socket_addr : name;
  if (net_->GetNode(addr) != nullptr) {
    *error = "duplicate node address: " + addr;
    ::close(fd);
    return NodeHandle();
  }
  Node* node = net_->AddNode(addr, options);
  endpoints_.push_back(Endpoint{fd, node, addr, socket_addr});
  peers_[addr] = socket_addr;
  return fleet_->Handle(addr);
}

void UdpDriver::RegisterPeer(const std::string& name,
                             const std::string& socket_addr) {
  peers_[name] = socket_addr;
}

std::string UdpDriver::SocketAddrOf(const std::string& name) const {
  auto it = peers_.find(name);
  return it == peers_.end() ? std::string() : it->second;
}

std::map<std::string, std::string> UdpDriver::LocalMap() const {
  std::map<std::string, std::string> out;
  for (const Endpoint& ep : endpoints_) {
    out[ep.name] = ep.socket_addr;
  }
  return out;
}

void UdpDriver::SetEgressLossRate(double rate, uint64_t seed) {
  egress_loss_ = rate;
  egress_rng_ = Rng(seed);
}

void UdpDriver::SendExternal(const std::string& dst, const std::string& bytes) {
  if (endpoints_.empty()) {
    ++unroutable_dropped_;
    return;
  }
  // Resolve the logical destination through the peer map; a literal "host:port"
  // destination (legacy addressing) routes as-is.
  auto it = peers_.find(dst);
  const std::string& socket_addr = it != peers_.end() ? it->second : dst;
  sockaddr_in to;
  if (!ParseAddr(socket_addr, &to)) {
    ++unroutable_dropped_;
    return;
  }
  // Loss is drawn per envelope, before framing, so a given seed drops the same
  // tuples whatever the batching layout — retransmit tests stay deterministic.
  if (egress_loss_ > 0 && egress_rng_.NextDouble() < egress_loss_) {
    ++envelopes_dropped_;
    return;
  }
  PeerOut& out = outgoing_[socket_addr];
  if (out.batch.empty()) {
    out.to = to;
  } else if (out.batch.frame_size() + BatchFrameBuilder::CostOf(bytes) >
             max_datagram_) {
    // Keep the frame under the datagram budget; a single envelope larger than
    // the budget still goes out (alone) — UDP loopback allows up to ~64KB.
    FlushPeer(&out);
    out.to = to;
  }
  out.batch.Add(bytes);
}

void UdpDriver::FlushPeer(PeerOut* out) {
  if (out->batch.empty()) {
    return;
  }
  size_t count = out->batch.count();
  std::string frame = out->batch.Take();
  ssize_t sent = ::sendto(endpoints_[0].fd, frame.data(), frame.size(), 0,
                          reinterpret_cast<sockaddr*>(&out->to), sizeof(out->to));
  if (sent < 0) {
    // A full socket buffer behaves like congestion loss: the reliable layer
    // retransmits, best-effort gossip refreshes on its own period.
    envelopes_dropped_ += count;
    return;
  }
  ++datagrams_sent_;
  envelopes_sent_ += count;
}

void UdpDriver::FlushBatches() {
  for (auto& [addr, out] : outgoing_) {
    FlushPeer(&out);
  }
}

void UdpDriver::DeliverDatagram(Node* node, const char* data, size_t len) {
  std::string datagram(data, len);
  if (IsBatchFrame(datagram)) {
    std::vector<std::string> envelopes;
    if (!DecodeBatchFrame(datagram, &envelopes)) {
      ++frame_decode_errors_;
      return;
    }
    envelopes_received_ += envelopes.size();
    for (const std::string& env : envelopes) {
      node->ReceiveBytes(env);
    }
    return;
  }
  // Unframed single envelope (legacy sender): deliver as-is.
  ++envelopes_received_;
  node->ReceiveBytes(datagram);
}

double UdpDriver::WallNow() const { return SteadySeconds(); }

void UdpDriver::RunFor(double wall_seconds) {
  // Re-anchor wall->virtual per call: each RunFor(dt) advances the virtual clock
  // by exactly dt. The old one-shot anchor mapped absolute wall time into
  // virtual time, so wall time spent *between* RunFor calls leaked into the
  // virtual clock and periodic rules over-fired after any pause (the drift grew
  // with every gap; see UdpDriverTest.RepeatedShortSlicesDoNotDrift).
  const double wall_start = WallNow();
  const double virtual_base = net_->Now();
  const double virtual_end = virtual_base + wall_seconds;
  std::vector<pollfd> fds(endpoints_.size());
  for (size_t i = 0; i < endpoints_.size(); ++i) {
    fds[i].fd = endpoints_[i].fd;
    fds[i].events = POLLIN;
  }
  char buffer[65536];
  while (true) {
    // Fire every timer due by the current wall instant (absolute mapping within
    // the call: no intra-call drift either), then put the produced envelopes on
    // the wire.
    double virtual_now =
        std::min(virtual_base + (WallNow() - wall_start), virtual_end);
    // Refresh the udp_* gauges ahead of any sweep that RunUntil executes, so
    // sysStat rows and metrics exports taken mid-run see current transport
    // counters (≤0.5 virtual seconds stale) rather than the previous RunFor's.
    if (virtual_now >= next_gauge_publish_) {
      PublishGauges();
      next_gauge_publish_ = virtual_now + 0.5;
    }
    net_->RunUntil(virtual_now);
    FlushBatches();
    if (virtual_now >= virtual_end) {
      break;
    }
    // Sleep until the next timer or the deadline, whichever comes first, but
    // wake for any datagram. NextEventTime() is +inf on an idle scheduler — the
    // deadline bounds the sleep; no busy-wait, no 100ms polling quantum.
    double next_virtual = net_->scheduler().NextEventTime();
    double until_virtual = std::min(next_virtual, virtual_end);
    double wait = (wall_start + (until_virtual - virtual_base)) - WallNow();
    int timeout_ms =
        wait <= 0 ? 0
                  : static_cast<int>(std::min(std::ceil(wait * 1000.0), 3.6e6));
    int ready = ::poll(fds.empty() ? nullptr : fds.data(),
                       static_cast<nfds_t>(fds.size()), timeout_ms);
    if (ready <= 0) {
      continue;
    }
    for (size_t i = 0; i < fds.size(); ++i) {
      if ((fds[i].revents & POLLIN) == 0) {
        continue;
      }
      while (true) {
        ssize_t n = ::recv(fds[i].fd, buffer, sizeof(buffer), 0);
        if (n <= 0) {
          break;  // EWOULDBLOCK: drained
        }
        ++datagrams_received_;
        DeliverDatagram(endpoints_[i].node, buffer, static_cast<size_t>(n));
      }
    }
    // Responses triggered by the deliveries are flushed at the top of the next
    // iteration, right after their timers run — within the same pump pass, so
    // request/reply latency stays sub-millisecond on loopback.
  }
  PublishGauges();
}

// Transport counters ride the existing observability surface: published as
// udp_* gauges on every local node, they land in sysStat and the metrics
// export at the node's next sweep.
void UdpDriver::PublishGauges() {
  for (const Endpoint& ep : endpoints_) {
    MetricsRegistry& reg = ep.node->metrics();
    reg.GetGauge("udp_datagrams_sent")->Set(static_cast<int64_t>(datagrams_sent_));
    reg.GetGauge("udp_datagrams_received")
        ->Set(static_cast<int64_t>(datagrams_received_));
    reg.GetGauge("udp_envelopes_sent")->Set(static_cast<int64_t>(envelopes_sent_));
    reg.GetGauge("udp_envelopes_received")
        ->Set(static_cast<int64_t>(envelopes_received_));
    reg.GetGauge("udp_batch_ratio_x1000")
        ->Set(static_cast<int64_t>(batch_ratio() * 1000.0));
  }
}

}  // namespace p2
