// Network: the simulated transport connecting nodes, plus the virtual clock(s).
//
// Substitution (DESIGN.md §2): the paper's testbed ran 21 processes over UDP on two
// Xeon servers. Here nodes exchange genuinely serialized messages over per-(src,dst)
// FIFO channels with configurable latency, jitter, and loss. Message and byte counters
// feed the Tx-message series of Figures 6 and 7.
//
// Sharded execution (docs/SCALING.md): with `NetworkConfig::shards == 1` every node
// shares one discrete-event scheduler — the historical single-threaded path. With
// K > 1, nodes are partitioned round-robin across K shards, each owning a private
// Scheduler run on its own thread. Shards advance in lockstep windows of width
// `latency` (the conservative-PDES lookahead: no message can arrive sooner than the
// minimum link latency, so events inside one window cannot affect another shard within
// the same window). Cross-shard deliveries are batched into per-(src,dst)-shard
// outboxes and merged into the destination heaps at the window barrier. Every random
// draw on the send path comes from a per-link RNG stream seeded by
// DeriveSeed(seed, "link/src>dst"), so the draw sequence depends only on the order of
// sends on that link — which is shard-count invariant — and a K-shard run produces
// bit-identical table digests to the K=1 run (see docs/SCALING.md for the exact
// determinism contract; it requires jitter > 0).

#ifndef SRC_NET_NETWORK_H_
#define SRC_NET_NETWORK_H_

#include <atomic>
#include <condition_variable>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/common/rng.h"
#include "src/net/node.h"
#include "src/net/scheduler.h"
#include "src/net/wire.h"
#include "src/trace/metrics.h"

namespace p2 {

struct NetworkConfig {
  double latency = 0.02;   // base one-way delay, seconds; also the shard lookahead
  double jitter = 0.01;    // uniform extra delay in [0, jitter)
  double loss_rate = 0.0;  // per-message drop probability
  uint64_t seed = 42;      // per-link RNG streams derive from this (rng.h DeriveSeed)
  // Worker shards. 1 = the single-threaded path; K > 1 partitions nodes across K
  // schedulers advanced in parallel lockstep windows. Requires latency > 0 (the
  // lookahead); shards are clamped to 1 otherwise.
  int shards = 1;
};

class Network {
 public:
  explicit Network(NetworkConfig config = NetworkConfig());
  ~Network();

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  // Creates a node with address `addr`, assigned round-robin (in add order) to a
  // shard. Addresses must be unique. Must not be called while RunUntil is executing.
  Node* AddNode(const std::string& addr, NodeOptions options = NodeOptions());

  // Returns the node with address `addr`, or nullptr.
  Node* GetNode(const std::string& addr);

  // Shard 0's scheduler. Single-shard/host-side use only: with shards > 1, events
  // placed here run on shard 0's thread and may not target nodes owned by other
  // shards — schedule through Node::own_scheduler() (or the p2::Fleet facade, which
  // posts onto the owning shard) instead.
  Scheduler& scheduler() { return shards_[0]->sched; }
  double Now() const { return shards_[0]->sched.Now(); }

  const NetworkConfig& config() const { return config_; }
  int shard_count() const { return static_cast<int>(shards_.size()); }

  // Serializes `env` and schedules its delivery to `dst` (FIFO per channel, subject to
  // latency/jitter/loss). Returns the encoded size in bytes (counted whether or not the
  // message is subsequently dropped — the sender pays for the transmission). During a
  // run this must be called from the thread of `src`'s shard (nodes only send from
  // their own event handlers, which guarantees that).
  size_t SendReturningSize(const std::string& src, const std::string& dst,
                           const WireEnvelope& env);

  // Runs the simulation until virtual time `t`. With shards > 1 this drives the
  // windowed parallel protocol; it blocks until every shard's clock reaches `t`, so
  // callers never observe partially advanced state.
  void RunUntil(double t);
  void RunFor(double dt) { RunUntil(Now() + dt); }
  // Runs the next event on shard 0. Single-shard use only (engine unit tests).
  bool Step() { return shards_[0]->sched.Step(); }

  // Fleet-wide counters (summed across shards; call between runs).
  uint64_t total_msgs() const;
  uint64_t total_bytes() const;
  uint64_t dropped_msgs() const;
  uint64_t duplicated_msgs() const;
  uint64_t reordered_msgs() const;

  // ---- link-level fault injection ----
  //
  // Faults compose with the global loss_rate: a message first survives the global
  // coin, then a partition check, then its link's fault spec. All randomness draws
  // from the link's own seeded RNG stream, so a given seed + fault schedule replays
  // bit-identically at any shard count. Fault specs and partitions are host-side
  // configuration: install them between runs, not from node callbacks.
  struct LinkFault {
    double loss = 0;           // per-message drop probability on this link
    double dup_rate = 0;       // probability a delivered message arrives twice
    double reorder_rate = 0;   // probability a message may overtake earlier ones
    double extra_latency = 0;  // added one-way delay, seconds
  };

  // Installs (or replaces) the fault spec for the directed link src -> dst.
  void SetLinkFault(const std::string& src, const std::string& dst, LinkFault fault);
  // Removes the fault spec for src -> dst (no-op if none).
  void ClearLinkFault(const std::string& src, const std::string& dst);
  // Removes every per-link fault spec.
  void ClearLinkFaults() { link_faults_.clear(); }

  // Cuts every link between a node of `group_a` and a node of `group_b`, both
  // directions: messages across the cut are dropped (and counted dropped). Repeated
  // calls accumulate cuts; Heal() removes them all.
  void Partition(const std::vector<std::string>& group_a,
                 const std::vector<std::string>& group_b);
  void Heal() { partitioned_.clear(); }
  bool IsPartitioned(const std::string& src, const std::string& dst) const {
    return partitioned_.count(std::make_pair(src, dst)) > 0;
  }

  // Per-(src,dst) channel traffic. `msgs`/`bytes` count every transmission attempt
  // (the sender pays whether or not the message is later dropped); `delivered_*`
  // count messages actually scheduled for receipt.
  struct ChannelTraffic {
    std::string src;
    std::string dst;
    uint64_t msgs = 0;
    uint64_t bytes = 0;
    uint64_t delivered_msgs = 0;
    uint64_t delivered_bytes = 0;
  };
  std::vector<ChannelTraffic> ChannelsSnapshot() const;

  // Per-shard runtime statistics (docs/SCALING.md; surfaced per node as shard_*
  // gauges in sysStat when shards > 1).
  struct ShardStats {
    int index = 0;
    uint64_t nodes = 0;             // nodes assigned to this shard
    uint64_t events = 0;            // events executed by its scheduler
    uint64_t heap_hwm = 0;          // high-water mark of its pending-event heap
    uint64_t busy_ns = 0;           // wall-clock time spent running its windows
    uint64_t sent_cross_shard = 0;  // messages it sent through a window barrier
  };
  std::vector<ShardStats> ShardStatsSnapshot() const;
  // Synchronization windows completed (0 while single-sharded).
  uint64_t windows() const { return windows_; }
  // Modeled parallel wall-clock: sum over windows of the busiest shard's time in
  // that window. On a machine with >= K free cores this is what RunUntil costs; the
  // bench reports it alongside the actual wall-clock (bench/parallel_fleet).
  uint64_t critical_path_ns() const { return critical_path_ns_; }

  // Structured telemetry export: when set, every node writes one MetricsSnapshot to
  // `sink` per soft-state sweep. Non-owning; the sink must outlive the network. With
  // shards > 1 snapshots are buffered per shard and flushed at window barriers in
  // deterministic (time, node) order, so the sink itself needs no locking.
  void SetMetricsSink(MetricsSink* sink) { metrics_sink_ = sink; }
  MetricsSink* metrics_sink() const { return metrics_sink_; }

  // Called by Node::Sweep before its introspection refresh: publishes the owning
  // shard's runtime counters as shard_* gauges on the node's registry (no-op while
  // single-sharded, keeping the historical sysStat row set).
  void PublishShardGauges(Node* node);

  // Called by Node::Sweep: routes the node's MetricsSnapshot to the sink, buffering
  // per shard under parallel execution.
  void WriteNodeMetrics(Node* node);

  // Sum of a statistic across nodes.
  uint64_t SumStats(uint64_t NodeStats::* field) const;

  // External gateway: when set, messages addressed to nodes NOT in this Network are
  // handed (destination address, serialized bytes) to this callback instead of being
  // dropped. Real-time drivers (src/net/udp_driver.h) use it to put tuples on actual
  // sockets. Single-shard use only.
  using ExternalSender =
      std::function<void(const std::string& dst, const std::string& bytes)>;
  void SetExternalSender(ExternalSender sender) { external_sender_ = std::move(sender); }

  // External-only routing: when true, EVERY message whose destination is not the
  // sending node itself goes through the external sender, including messages
  // between nodes of this same Network — real-socket backends set this so a
  // single-process deployment still puts its traffic on actual sockets (self
  // deliveries never reach the Network; Node::RouteTuple short-circuits them).
  // The simulated latency/jitter/loss/fault pipeline is bypassed. Single-shard
  // use only, like SetExternalSender.
  void SetExternalOnly(bool on) { external_only_ = on; }
  bool external_only() const { return external_only_; }

  // All nodes in address order.
  std::vector<Node*> AllNodes();

 private:
  // Per-(src, dst) channel state: the link's private RNG stream, FIFO enforcement
  // (last scheduled delivery time), and traffic counters. Owned by the *source*
  // node's shard — sends on a link always execute on that shard's thread.
  struct ChannelState {
    explicit ChannelState(uint64_t link_seed) : rng(link_seed) {}
    Rng rng;
    double last_delivery = -std::numeric_limits<double>::infinity();
    uint64_t msgs = 0;
    uint64_t bytes = 0;
    uint64_t delivered_msgs = 0;
    uint64_t delivered_bytes = 0;
  };

  // A delivery crossing a shard boundary, parked until the next window barrier.
  struct CrossShardMsg {
    double deliver_at = 0;
    Node* dst = nullptr;
    std::string bytes;
  };

  struct Shard {
    Scheduler sched;
    std::map<std::pair<std::string, std::string>, ChannelState> channels;
    // outbox[d]: messages bound for shard d, in send order.
    std::vector<std::vector<CrossShardMsg>> outbox;
    std::vector<MetricsSnapshot> metrics_buf;
    uint64_t node_count = 0;
    uint64_t total_msgs = 0;
    uint64_t total_bytes = 0;
    uint64_t dropped_msgs = 0;
    uint64_t duplicated_msgs = 0;
    uint64_t reordered_msgs = 0;
    uint64_t sent_cross_shard = 0;
    uint64_t busy_ns = 0;
    uint64_t window_busy_ns = 0;  // last window only (critical-path accounting)
  };

  ChannelState& ChannelFor(Shard& shard, const std::string& src, const std::string& dst);
  uint64_t SumShards(uint64_t Shard::* field) const;

  // ---- windowed parallel runtime (shards > 1) ----
  void RunUntilParallel(double t);
  void RunShardWindow(size_t index);  // run shard `index` up to window_end_
  void ExchangeWindow();              // barrier step: merge outboxes, flush metrics
  void FlushMetricsBuffers();
  void EnsureWorkers();
  void WorkerLoop(size_t index);

  NetworkConfig config_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::map<std::string, std::unique_ptr<Node>> nodes_;
  int next_shard_ = 0;  // round-robin assignment cursor
  std::map<std::pair<std::string, std::string>, LinkFault> link_faults_;
  std::set<std::pair<std::string, std::string>> partitioned_;
  uint64_t windows_ = 0;
  uint64_t critical_path_ns_ = 0;
  ExternalSender external_sender_;
  bool external_only_ = false;
  MetricsSink* metrics_sink_ = nullptr;

  // Worker pool: shards 1..K-1 each get a thread, parked on `pool_cv_` between
  // RunUntil sessions and synchronized by an epoch-counter barrier within one
  // (bounded spin, then yield — see network.cc). Shard 0 runs on the calling thread.
  std::vector<std::thread> workers_;
  std::mutex pool_mu_;
  std::condition_variable pool_cv_;
  bool shutdown_ = false;
  std::atomic<bool> session_active_{false};
  std::atomic<uint64_t> window_epoch_{0};
  std::atomic<size_t> window_done_{0};
  double window_end_ = 0;  // written by coordinator before each epoch bump
};

}  // namespace p2

#endif  // SRC_NET_NETWORK_H_
