// Network: the simulated transport connecting nodes, plus the shared virtual clock.
//
// Substitution (DESIGN.md §2): the paper's testbed ran 21 processes over UDP on two
// Xeon servers. Here nodes exchange genuinely serialized messages over per-(src,dst)
// FIFO channels with configurable latency, jitter, and loss, all driven by one
// deterministic discrete-event scheduler. Message and byte counters feed the Tx-message
// series of Figures 6 and 7.

#ifndef SRC_NET_NETWORK_H_
#define SRC_NET_NETWORK_H_

#include <limits>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "src/common/rng.h"
#include "src/net/node.h"
#include "src/net/scheduler.h"
#include "src/net/wire.h"
#include "src/trace/metrics.h"

namespace p2 {

struct NetworkConfig {
  double latency = 0.02;   // base one-way delay, seconds
  double jitter = 0.01;    // uniform extra delay in [0, jitter)
  double loss_rate = 0.0;  // per-message drop probability
  uint64_t seed = 42;
};

class Network {
 public:
  explicit Network(NetworkConfig config = NetworkConfig());
  ~Network();

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  // Creates a node with address `addr`. Addresses must be unique.
  Node* AddNode(const std::string& addr, NodeOptions options = NodeOptions());

  // Returns the node with address `addr`, or nullptr.
  Node* GetNode(const std::string& addr);

  Scheduler& scheduler() { return sched_; }
  double Now() const { return sched_.Now(); }

  // Serializes `env` and schedules its delivery to `dst` (FIFO per channel, subject to
  // latency/jitter/loss). Returns the encoded size in bytes (counted whether or not the
  // message is subsequently dropped — the sender pays for the transmission).
  size_t SendReturningSize(const std::string& src, const std::string& dst,
                           const WireEnvelope& env);

  // Runs the simulation.
  void RunUntil(double t) { sched_.RunUntil(t); }
  void RunFor(double dt) { sched_.RunUntil(sched_.Now() + dt); }
  bool Step() { return sched_.Step(); }

  // Fleet-wide counters.
  uint64_t total_msgs() const { return total_msgs_; }
  uint64_t total_bytes() const { return total_bytes_; }
  uint64_t dropped_msgs() const { return dropped_msgs_; }
  uint64_t duplicated_msgs() const { return duplicated_msgs_; }
  uint64_t reordered_msgs() const { return reordered_msgs_; }

  // ---- link-level fault injection ----
  //
  // Faults compose with the global loss_rate: a message first survives the global
  // coin, then a partition check, then its link's fault spec. All randomness draws
  // from the network's seeded RNG, so a given seed + fault schedule replays
  // bit-identically; with no faults configured the draw sequence is exactly the
  // pre-fault-injection one.
  struct LinkFault {
    double loss = 0;           // per-message drop probability on this link
    double dup_rate = 0;       // probability a delivered message arrives twice
    double reorder_rate = 0;   // probability a message may overtake earlier ones
    double extra_latency = 0;  // added one-way delay, seconds
  };

  // Installs (or replaces) the fault spec for the directed link src -> dst.
  void SetLinkFault(const std::string& src, const std::string& dst, LinkFault fault);
  // Removes the fault spec for src -> dst (no-op if none).
  void ClearLinkFault(const std::string& src, const std::string& dst);
  // Removes every per-link fault spec.
  void ClearLinkFaults() { link_faults_.clear(); }

  // Cuts every link between a node of `group_a` and a node of `group_b`, both
  // directions: messages across the cut are dropped (and counted dropped). Repeated
  // calls accumulate cuts; Heal() removes them all.
  void Partition(const std::vector<std::string>& group_a,
                 const std::vector<std::string>& group_b);
  void Heal() { partitioned_.clear(); }
  bool IsPartitioned(const std::string& src, const std::string& dst) const {
    return partitioned_.count(std::make_pair(src, dst)) > 0;
  }

  // Per-(src,dst) channel traffic. `msgs`/`bytes` count every transmission attempt
  // (the sender pays whether or not the message is later dropped); `delivered_*`
  // count messages actually scheduled for receipt.
  struct ChannelTraffic {
    std::string src;
    std::string dst;
    uint64_t msgs = 0;
    uint64_t bytes = 0;
    uint64_t delivered_msgs = 0;
    uint64_t delivered_bytes = 0;
  };
  std::vector<ChannelTraffic> ChannelsSnapshot() const;

  // Structured telemetry export: when set, every node writes one MetricsSnapshot to
  // `sink` per soft-state sweep. Non-owning; the sink must outlive the network.
  void SetMetricsSink(MetricsSink* sink) { metrics_sink_ = sink; }
  MetricsSink* metrics_sink() const { return metrics_sink_; }

  // Sum of a statistic across nodes.
  uint64_t SumStats(uint64_t NodeStats::* field) const;

  // External gateway: when set, messages addressed to nodes NOT in this Network are
  // handed (destination address, serialized bytes) to this callback instead of being
  // dropped. Real-time drivers (src/net/udp_driver.h) use it to put tuples on actual
  // sockets.
  using ExternalSender =
      std::function<void(const std::string& dst, const std::string& bytes)>;
  void SetExternalSender(ExternalSender sender) { external_sender_ = std::move(sender); }

  // All nodes in address order.
  std::vector<Node*> AllNodes();

 private:
  NetworkConfig config_;
  Scheduler sched_;
  Rng rng_;
  std::map<std::string, std::unique_ptr<Node>> nodes_;
  // Per-(src, dst) channel state: FIFO enforcement (last scheduled delivery time)
  // plus traffic counters. The map lookup was already paid for FIFO ordering, so the
  // counters ride along for free on the send path.
  struct ChannelState {
    double last_delivery = -std::numeric_limits<double>::infinity();
    uint64_t msgs = 0;
    uint64_t bytes = 0;
    uint64_t delivered_msgs = 0;
    uint64_t delivered_bytes = 0;
  };
  std::map<std::pair<std::string, std::string>, ChannelState> channels_;
  std::map<std::pair<std::string, std::string>, LinkFault> link_faults_;
  std::set<std::pair<std::string, std::string>> partitioned_;
  uint64_t total_msgs_ = 0;
  uint64_t total_bytes_ = 0;
  uint64_t dropped_msgs_ = 0;
  uint64_t duplicated_msgs_ = 0;
  uint64_t reordered_msgs_ = 0;
  ExternalSender external_sender_;
  MetricsSink* metrics_sink_ = nullptr;
};

}  // namespace p2

#endif  // SRC_NET_NETWORK_H_
