// p2::Fleet — the embedding facade over Network/Node (docs/SCALING.md).
//
// Fleet is how host programs (examples, tools, benches, the testbed) build and drive
// a simulated deployment. It owns the Network, derives every seed from one fleet
// seed, and hands out NodeHandles whose operations are safe under the sharded
// parallel runtime: anything that must happen at a simulation instant is *posted as
// an event onto the owning shard's scheduler*, and anything immediate runs host-side
// between Run calls (Run blocks until every shard has quiesced, so host code never
// overlaps shard threads).
//
// Seed derivation (the one meaning of "same seed" across olgrun, testbed, bench,
// and simfuzz):
//   net  seed = DeriveSeed(fleet_seed, "net")           -> per-link streams
//                 (link seed = DeriveSeed(net_seed, "link/<src>><dst>"), network.h)
//   node seed = DeriveSeed(fleet_seed, "node/<addr>") | 1
// Both depend only on (fleet seed, name) — never on creation order or shard count.
//
// Raw Node* access (handle.raw(), fleet.network().GetNode()) stays available but is
// single-thread/test-only: mutating a Node while RunUntil is executing is a data
// race under shards > 1. Production embedders stay on the handle API.

#ifndef SRC_NET_FLEET_H_
#define SRC_NET_FLEET_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/net/network.h"
#include "src/trace/replay.h"

namespace p2 {

// Which transport carries inter-node tuples (docs/DEPLOYMENT.md):
//   kSim — the deterministic simulated Network (latency/jitter/loss, shards,
//          fault injection); virtual time advances only inside Run calls.
//   kUdp — real UDP sockets on loopback or a LAN, driven by a non-blocking
//          poll loop (src/net/udp_driver.h) that pumps the virtual clock
//          against the wall clock. RunFor(dt) takes dt *wall* seconds and
//          advances virtual time by the same amount; shards are forced to 1
//          and the simulated fault pipeline is bypassed (the physical network
//          — or UdpDriver::SetEgressLossRate — supplies loss).
enum class FleetBackend { kSim, kUdp };

// The single, layered configuration for a fleet. Replaces the overlapping
// NetworkConfig::seed / TestbedConfig::seed / NodeOptions::seed knobs: set one
// `seed` here and every network, link, and node stream derives from it.
struct FleetConfig {
  uint64_t seed = 42;      // the fleet seed; everything derives from this
  int shards = 1;          // worker shards (see NetworkConfig::shards)
  double latency = 0.02;   // base one-way delay, seconds (also the shard lookahead)
  double jitter = 0.01;    // uniform extra delay in [0, jitter). The K>1 determinism
                           // contract (docs/SCALING.md) requires jitter > 0.
  double loss_rate = 0.0;  // per-message drop probability
  // Defaults for every node added; per-node overrides go through
  // Fleet::AddNode(addr, options). NodeOptions::seed is ignored — the fleet
  // derives it (see above) so runs replay regardless of add order.
  NodeOptions node_defaults;

  // ---- transport backend (docs/DEPLOYMENT.md) ----
  FleetBackend backend = FleetBackend::kSim;
  // kUdp only: the interface sockets bind on.
  std::string udp_host = "127.0.0.1";
  // kUdp only: 0 binds every node on an ephemeral port; N binds the i-th added
  // node on port N+i (fleetd profiles that pre-share the address map use this).
  uint16_t udp_base_port = 0;
  // kUdp only: datagram payload budget for batched envelope frames. Envelopes
  // bound for one destination coalesce until the frame would exceed this (a
  // single larger envelope still goes out alone). 1400 stays under a typical
  // ethernet MTU; loopback deployments can raise it toward 65507.
  size_t udp_max_datagram = 1400;

  // The NetworkConfig this expands to (seed already derived; shards forced to 1
  // when backend == kUdp).
  NetworkConfig ToNetworkConfig() const;
};

class Fleet;
class UdpDriver;

// A cheap, copyable reference to one node of a Fleet. Immediate methods run
// host-side and are safe between Run calls; the *At variants post the operation
// onto the owning shard's scheduler to fire at virtual time `t` during a later Run.
class NodeHandle {
 public:
  NodeHandle() = default;

  // False for a default-constructed handle (e.g. UdpDriver::CreateNode after a
  // bind failure); every other accessor requires a valid handle.
  bool valid() const { return node_ != nullptr; }

  const std::string& addr() const { return node_->addr(); }
  int shard() const { return node_->shard_index(); }
  bool IsUp() const { return node_->IsUp(); }
  double Now() const;

  // ---- program installation ----
  bool Load(const std::string& source, std::string* error = nullptr);
  bool Load(const std::string& source, const ParamMap& params,
            std::string* error = nullptr);
  bool LoadLowPriority(const std::string& source, const ParamMap& params,
                       std::string* error = nullptr);
  // Posted install: compiles and installs at virtual time `t` on the owning shard.
  // Install failures (parse/plan errors) go to `on_error` when provided; they
  // cannot be returned synchronously from a posted event.
  void LoadAt(double t, std::string source, ParamMap params = ParamMap(),
              std::function<void(const std::string&)> on_error = nullptr);

  // ---- event injection ----
  // Injection is inherently posted: the tuple is routed at the current instant of
  // the owning shard once the fleet runs.
  void Inject(const TupleRef& tuple);
  void InjectAt(double t, TupleRef tuple);

  // ---- fault lifecycle ----
  void Crash();
  void Revive();
  void Recover();
  void CrashAt(double t);
  void ReviveAt(double t);
  void RecoverAt(double t);

  // ---- observation ----
  // Contents of a materialized table at the current instant (empty if absent).
  std::vector<TupleRef> Query(const std::string& table);
  size_t Count(const std::string& table);
  // Time-travel forensics (docs/OBSERVABILITY.md): causal chains of tuples
  // matching `key` derived on this node during [t1, t2], cross-node hops stitched
  // through peer stores. Answers from the node's ForensicsStore when retention is
  // enabled (windows older than the live soft state still resolve), falling back
  // to the live ruleExec / tupleTable walk otherwise. Host-side immediate: safe
  // between Run calls only.
  std::vector<CausalChain> ReplayChains(const std::string& key, double t1, double t2);
  const NodeStats& Stats() const { return node_->stats(); }
  void OnEvent(const std::string& name, std::function<void(const TupleRef&)> fn);
  void WatchSink(std::function<void(double, const TupleRef&)> sink);
  const std::deque<Node::WatchEntry>& WatchLog() const { return node_->watch_log(); }
  void MarkReliable(const std::string& name);

  // General escape hatch: runs `fn` on this node at virtual time `t`, on the owning
  // shard's thread — the only safe way to touch arbitrary Node state mid-run.
  void Post(double t, std::function<void(Node&)> fn);

  // Host-side immediate application of an app installer with the conventional
  // `bool (Node*, std::string*)` signature (InstallChord, InstallDht, ...). Safe
  // between Run calls; for mid-run installation use Post.
  bool Install(const std::function<bool(Node*, std::string*)>& installer,
               std::string* error = nullptr);

  // Host-side call of an app action that only injects events (DhtPut-style):
  // injection posts onto the owning shard, so this is safe between Run calls.
  void Call(const std::function<void(Node*)>& fn) { fn(node_); }

  // The raw node. Single-thread/test-only: never mutate through this while the
  // fleet is running with shards > 1.
  Node* raw() { return node_; }

 private:
  friend class Fleet;
  NodeHandle(Fleet* fleet, Node* node) : fleet_(fleet), node_(node) {}

  Fleet* fleet_ = nullptr;
  Node* node_ = nullptr;
};

class Fleet {
 public:
  explicit Fleet(FleetConfig config = FleetConfig());
  ~Fleet();

  Fleet(const Fleet&) = delete;
  Fleet& operator=(const Fleet&) = delete;

  const FleetConfig& config() const { return config_; }

  // Adds a node (seed derived from the fleet seed; see file comment). Must be
  // called before Run or between Run calls, never from node callbacks.
  NodeHandle AddNode(const std::string& addr);
  NodeHandle AddNode(const std::string& addr, NodeOptions options);
  // Explicit per-node seed override (scenario `node ... seed=N`, ablation tests);
  // production embedders let the fleet derive the seed.
  NodeHandle AddNodeWithSeed(const std::string& addr, NodeOptions options,
                             uint64_t seed);

  // Handle for an existing node; dies (assert) on unknown addresses.
  NodeHandle Handle(const std::string& addr);
  // Fleet-level entry point for NodeHandle::ReplayChains (same contract).
  std::vector<CausalChain> ReplayChains(const std::string& addr, const std::string& key,
                                        double t1, double t2);
  bool HasNode(const std::string& addr) { return net_.GetNode(addr) != nullptr; }
  // All nodes in address order.
  std::vector<NodeHandle> Handles();

  // Runs the fleet. Sim backend: blocks until every shard's clock reaches the
  // target, so host code before/after never overlaps shard threads. Udp backend:
  // pumps sockets and timers for the equivalent *wall* duration — virtual time
  // advances in lockstep with the wall clock (re-anchored per call; wall time
  // spent between calls never leaks into the virtual clock).
  void RunUntil(double t);
  void RunFor(double dt);
  double Now() const { return net_.Now(); }

  // ---- udp backend surface (null / no-op under kSim) ----
  // The real-socket driver: counters (datagrams, envelopes, batching ratio) and
  // fault injection (SetEgressLossRate) live there.
  UdpDriver* udp() { return driver_.get(); }
  // Maps a logical node name from another process to its bound socket address
  // ("host:port"), so tuples addressed to it leave through the gateway. Local
  // nodes self-register when added; fleetd's rendezvous exchange feeds remote
  // entries here (docs/DEPLOYMENT.md).
  void RegisterPeer(const std::string& name, const std::string& socket_addr);

  // ---- network-level fault injection (host-side, between runs) ----
  void SetLinkFault(const std::string& src, const std::string& dst,
                    Network::LinkFault fault) {
    net_.SetLinkFault(src, dst, fault);
  }
  void ClearLinkFault(const std::string& src, const std::string& dst) {
    net_.ClearLinkFault(src, dst);
  }
  void ClearLinkFaults() { net_.ClearLinkFaults(); }
  void Partition(const std::vector<std::string>& a, const std::vector<std::string>& b) {
    net_.Partition(a, b);
  }
  void Heal() { net_.Heal(); }

  // ---- telemetry ----
  void SetMetricsSink(MetricsSink* sink) { net_.SetMetricsSink(sink); }
  uint64_t total_msgs() const { return net_.total_msgs(); }
  uint64_t total_bytes() const { return net_.total_bytes(); }
  uint64_t dropped_msgs() const { return net_.dropped_msgs(); }
  std::vector<Network::ShardStats> ShardStatsSnapshot() const {
    return net_.ShardStatsSnapshot();
  }
  uint64_t SumStats(uint64_t NodeStats::* field) const { return net_.SumStats(field); }

  // The underlying network. Single-thread/test-only escape hatch, like
  // NodeHandle::raw(); fault-injection and counter reads above cover the
  // supported host-side surface.
  Network& network() { return net_; }

 private:
  // Shared tail of AddNode/AddNodeWithSeed once the seed is resolved: creates
  // the node in the simulated Network, or through the udp driver (socket bind +
  // peer self-registration) under the kUdp backend.
  NodeHandle AddSeededNode(const std::string& addr, NodeOptions options);

  FleetConfig config_;
  Network net_;
  // kUdp backend only; declared after net_ so the driver (which unhooks itself
  // from the network) is destroyed first.
  std::unique_ptr<UdpDriver> driver_;
};

}  // namespace p2

#endif  // SRC_NET_FLEET_H_
