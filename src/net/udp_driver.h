// UdpDriver: runs engine nodes over real UDP sockets in wall-clock time.
//
// The simulated Network covers everything the paper evaluates, but P2 itself was a
// deployable system over UDP. This driver bridges the two worlds without changing a
// line of any OverLog program or engine module:
//
//  * each attached node is addressed "127.0.0.1:<port>" and owns a bound UDP socket;
//  * tuples addressed to nodes outside this process leave through the socket (the
//    Network's external-sender hook) and arriving datagrams are handed to the local
//    node's normal receive path;
//  * the Network's virtual clock is pumped against the wall clock, so `periodic`
//    rules, soft-state expiry, and everything else run in real seconds.
//
// One driver per process; several processes (or several drivers in one test) form a
// deployment. Single-threaded: the caller owns the pump loop via RunFor.

#ifndef SRC_NET_UDP_DRIVER_H_
#define SRC_NET_UDP_DRIVER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/net/network.h"

namespace p2 {

class UdpDriver {
 public:
  // The driver pumps `net`'s clock and installs itself as the external gateway.
  explicit UdpDriver(Network* net);
  ~UdpDriver();

  UdpDriver(const UdpDriver&) = delete;
  UdpDriver& operator=(const UdpDriver&) = delete;

  // Binds a UDP socket on 127.0.0.1:`port` (0 = ephemeral) and creates a node in the
  // Network addressed "127.0.0.1:<actual port>". Returns nullptr + error on failure.
  Node* CreateNode(uint16_t port, NodeOptions options, std::string* error);

  // Pumps timers and sockets for `wall_seconds` of real time.
  void RunFor(double wall_seconds);

  // Number of datagrams received / sent through the sockets.
  uint64_t datagrams_received() const { return datagrams_received_; }
  uint64_t datagrams_sent() const { return datagrams_sent_; }
  uint64_t datagrams_dropped() const { return datagrams_dropped_; }

  // Fault-injection hook: drops this fraction of outgoing datagrams before they
  // reach the socket, from a seeded RNG (deterministic drop pattern per seed).
  // Lets tests exercise the reliable transport over real UDP without tc/netem.
  void SetEgressLossRate(double rate, uint64_t seed = 1);

 private:
  struct Endpoint {
    int fd = -1;
    Node* node = nullptr;
  };

  void SendExternal(const std::string& dst, const std::string& bytes);
  double WallNow() const;

  Network* net_;
  std::vector<Endpoint> endpoints_;
  double wall_start_ = -1;  // wall seconds at first RunFor; maps to virtual Now() then
  double virtual_base_ = 0;
  uint64_t datagrams_received_ = 0;
  uint64_t datagrams_sent_ = 0;
  uint64_t datagrams_dropped_ = 0;
  double egress_loss_ = 0;
  Rng egress_rng_{1};
};

}  // namespace p2

#endif  // SRC_NET_UDP_DRIVER_H_
