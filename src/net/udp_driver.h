// UdpDriver: runs engine nodes over real UDP sockets in wall-clock time.
//
// The simulated Network covers everything the paper evaluates, but P2 itself was a
// deployable system over UDP (21 real processes in the paper's testbed). This driver
// is the production transport behind `FleetConfig::backend = kUdp` — it bridges the
// two worlds without changing a line of any OverLog program or engine module:
//
//  * each attached node keeps its logical address (e.g. "n3") and owns a bound,
//    non-blocking UDP socket; a peer map (logical name -> "host:port") routes
//    outbound tuples, seeded by local self-registration and extended across
//    processes by the fleetd rendezvous exchange (docs/DEPLOYMENT.md);
//  * the Network runs in external-only mode: every non-self tuple — including
//    tuples between two nodes of the same process — leaves through a socket, so a
//    single-process deployment exercises the identical transport path;
//  * outbound envelopes bound for the same destination within one pump iteration
//    coalesce into a single batched datagram (wire.h batch frames), cutting
//    syscall and header overhead on gossip-heavy monitors; unbatched datagrams
//    from legacy senders are still accepted;
//  * the Network's virtual clock is pumped against the wall clock by a poll-driven
//    event loop: it sleeps until the next timer or datagram (no busy-wait) and
//    re-anchors wall->virtual per RunFor call, so repeated short slices never
//    accumulate drift — each RunFor(dt) advances virtual time by exactly dt.
//
// The reliable transport, overload limits, and sysChannelStat/metrics surfaces all
// live in Node, above the transport, so the real path inherits retransmit,
// backpressure, and observability unchanged. One driver per process; several
// processes (launched by src/tools/fleetd) form a deployment. Single-threaded: the
// caller owns the pump loop via RunFor (normally through Fleet::RunFor).

#ifndef SRC_NET_UDP_DRIVER_H_
#define SRC_NET_UDP_DRIVER_H_

#include <netinet/in.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/net/fleet.h"
#include "src/net/network.h"
#include "src/net/wire.h"

namespace p2 {

class UdpDriver {
 public:
  // Installs itself as the fleet network's external gateway and switches the
  // network to external-only routing. Constructed by Fleet under backend kUdp;
  // reachable via Fleet::udp().
  explicit UdpDriver(Fleet* fleet);
  ~UdpDriver();

  UdpDriver(const UdpDriver&) = delete;
  UdpDriver& operator=(const UdpDriver&) = delete;

  // Binds a non-blocking UDP socket on FleetConfig::udp_host:`port` (0 =
  // ephemeral) and creates a node addressed `name` (empty name = "host:port").
  // Registers name -> socket address in the peer map. Returns an invalid handle
  // and sets `error` on failure. Normal path: Fleet::AddNode, which derives the
  // node seed first and then calls this.
  NodeHandle CreateNode(const std::string& name, uint16_t port, NodeOptions options,
                        std::string* error);

  // ---- peer map (logical name -> "host:port") ----
  // Remote nodes must be registered before tuples addressed to them can leave;
  // unregistered destinations that do not parse as "host:port" themselves are
  // counted in unroutable_dropped(). fleetd feeds this from the rendezvous MAP.
  void RegisterPeer(const std::string& name, const std::string& socket_addr);
  // Socket address for `name` ("" if unknown).
  std::string SocketAddrOf(const std::string& name) const;
  // name -> socket address for the nodes hosted by THIS driver (the rendezvous
  // REG payload).
  std::map<std::string, std::string> LocalMap() const;

  // Pumps timers and sockets for `wall_seconds` of real time. Virtual time
  // advances by exactly `wall_seconds` (anchored at call entry): the loop runs
  // due timers, flushes outbound batches, then sleeps in poll() until the next
  // timer, the deadline, or an arriving datagram.
  void RunFor(double wall_seconds);

  // ---- counters ----
  // Datagrams actually received / sent through sockets, and envelopes carried in
  // them: envelopes_sent / datagrams_sent is the batching ratio.
  uint64_t datagrams_received() const { return datagrams_received_; }
  uint64_t datagrams_sent() const { return datagrams_sent_; }
  uint64_t envelopes_received() const { return envelopes_received_; }
  uint64_t envelopes_sent() const { return envelopes_sent_; }
  // Envelopes dropped by the egress-loss injector (drawn per envelope, before
  // framing, so retransmit behavior is batching-independent).
  uint64_t envelopes_dropped() const { return envelopes_dropped_; }
  // Envelopes whose destination neither appears in the peer map nor parses as
  // "host:port" (typically: sends racing ahead of the rendezvous exchange).
  uint64_t unroutable_dropped() const { return unroutable_dropped_; }
  // Malformed batch frames / datagrams rejected on receive.
  uint64_t frame_decode_errors() const { return frame_decode_errors_; }
  double batch_ratio() const {
    return datagrams_sent_ == 0 ? 0.0
                                : static_cast<double>(envelopes_sent_) /
                                      static_cast<double>(datagrams_sent_);
  }

  // Fault-injection hook: drops this fraction of outgoing envelopes before they
  // reach the socket, from a seeded RNG (deterministic drop pattern per seed).
  // Lets tests exercise the reliable transport over real UDP without tc/netem.
  void SetEgressLossRate(double rate, uint64_t seed = 1);

  // Datagram payload budget for batching (FleetConfig::udp_max_datagram).
  void set_max_datagram(size_t bytes) { max_datagram_ = bytes; }
  size_t max_datagram() const { return max_datagram_; }

 private:
  struct Endpoint {
    int fd = -1;
    Node* node = nullptr;
    std::string name;         // logical node address
    std::string socket_addr;  // "host:port" actually bound
  };
  // Pending outbound batch for one destination socket.
  struct PeerOut {
    sockaddr_in to = {};
    BatchFrameBuilder batch;
  };

  void SendExternal(const std::string& dst, const std::string& bytes);
  void PublishGauges();
  void FlushPeer(PeerOut* out);
  void FlushBatches();
  void DeliverDatagram(Node* node, const char* data, size_t len);
  double WallNow() const;

  Fleet* fleet_;
  Network* net_;
  std::vector<Endpoint> endpoints_;
  std::map<std::string, std::string> peers_;  // logical name -> "host:port"
  std::map<std::string, PeerOut> outgoing_;   // "host:port" -> pending batch
  size_t max_datagram_ = 1400;
  uint64_t datagrams_received_ = 0;
  uint64_t datagrams_sent_ = 0;
  uint64_t envelopes_received_ = 0;
  uint64_t envelopes_sent_ = 0;  // counted when their frame reaches the socket
  uint64_t envelopes_dropped_ = 0;
  uint64_t unroutable_dropped_ = 0;
  uint64_t frame_decode_errors_ = 0;
  double next_gauge_publish_ = 0;
  double egress_loss_ = 0;
  Rng egress_rng_{1};
};

}  // namespace p2

#endif  // SRC_NET_UDP_DRIVER_H_
