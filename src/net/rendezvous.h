// Rendezvous: the launcher protocol that lets N fleetd processes self-assemble
// into one fleet (docs/DEPLOYMENT.md), MPI-rank style.
//
// Every process hosts a subset of the fleet's nodes and knows only its own
// name -> socket bindings (UdpDriver::LocalMap). The seed process (the one given
// `--listen`) binds a known control port and collects registrations; joiners
// register against it and fetch the merged address map:
//
//   joiner -> seed   "P2RDV1 REG"  + one "name host:port" line per local node,
//                    re-sent every `retry` seconds until the map arrives
//   seed  -> joiner  "P2RDV1 MAP"  + one line per node of the whole fleet, sent
//                    to every registrant once all `expected` processes are in
//                    (and re-sent in response to any late/duplicate REG, so a
//                    lost MAP datagram only costs one retry interval)
//   joiner -> seed   "P2RDV1 ACK"  lets the seed finish early; a lost ACK only
//                    delays the seed until it has re-offered the map to
//                    stragglers (see RendezvousExchange).
//
// Single-datagram messages: a 256-node fleet map is ~5KB, far under the 64KB UDP
// ceiling (the exchange fails loudly past it). The control socket is separate
// from every node socket and is closed when the exchange returns.

#ifndef SRC_NET_RENDEZVOUS_H_
#define SRC_NET_RENDEZVOUS_H_

#include <map>
#include <string>

namespace p2 {

struct RendezvousConfig {
  // Seed process: the control address to bind, "host:port" (":port" binds
  // 127.0.0.1). Empty for joiners.
  std::string listen;
  // Joiner process: the seed's control address. Empty for the seed.
  std::string seed_addr;
  // Seed only: total number of processes in the deployment, seed included.
  int expected = 1;
  double timeout = 30.0;  // wall seconds before the exchange fails
  double retry = 0.2;     // REG / MAP re-send interval, wall seconds
};

// Blocking address-map exchange. `local` is this process's name -> "host:port"
// bindings; on success `*full` holds the union across all processes. Returns
// false and sets `error` on bind failure, malformed config, conflicting
// registrations (one name from two processes), oversized maps, or timeout.
bool RendezvousExchange(const RendezvousConfig& config,
                        const std::map<std::string, std::string>& local,
                        std::map<std::string, std::string>* full,
                        std::string* error);

}  // namespace p2

#endif  // SRC_NET_RENDEZVOUS_H_
