// Node: one P2 participant — tables, compiled rule strands, tracer, and delivery queue.
//
// A node loads OverLog programs (possibly several, installed piecemeal while running —
// the paper's on-line monitoring deployment model), routes derived tuples to their
// location specifier (locally or across the network), dispatches arriving tuples to the
// strands they trigger, re-evaluates continuous aggregates on table changes, expires
// soft state, and accounts the wall-clock time it spends doing all of this
// (NodeStats::busy_ns — the simulation's stand-in for CPU utilization).

#ifndef SRC_NET_NODE_H_
#define SRC_NET_NODE_H_

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/common/rng.h"
#include "src/dataflow/strand.h"
#include "src/lang/parser.h"
#include "src/net/wire.h"
#include "src/runtime/catalog.h"
#include "src/trace/forensics.h"
#include "src/trace/metrics.h"
#include "src/trace/tracer.h"
#include "src/trace/tuple_store.h"

namespace p2 {

class Network;

struct NodeOptions {
  // Execution tracing (paper §2.1): when true, the planner's taps feed the tracer and
  // the ruleExec / tupleTable tables are populated.
  bool tracing = false;
  // Soft-state sweep period: expiry of stale tuples and introspection refresh.
  double sweep_interval = 1.0;
  // Lifetime/bound of ruleExec rows (tupleTable rows share the lifetime).
  double rule_exec_lifetime = 120.0;
  size_t rule_exec_max = 100000;
  // Bound on tracer records per rule (paper's "fixed number of execution records").
  size_t tracer_records_per_rule = 8;
  // Bounded log-structured trace retention (docs/OBSERVABILITY.md): when
  // forensics.enabled, the tracer dual-writes execution records and tuple payloads
  // into a per-node ForensicsStore so causal chains stay answerable after the live
  // ruleExec / tupleTable rows expire. Implies tracing.
  ForensicsOptions forensics;
  // Install introspection tables (sysRule / sysTable / sysElement, plus the
  // telemetry tables sysStat / sysRuleStat / sysTableStat).
  bool introspection = true;
  // Maintain per-rule execution metrics (trigger counts, busy-ns, emits) and the
  // trigger-latency histogram. Updates are plain integer adds plus two monotonic
  // clock reads per strand trigger; disable only for microbenchmark ablations.
  bool metrics = true;
  // Let the planner request secondary table indexes for join/negation stages whose
  // bound equality prefix does not cover the whole primary key, and have strand
  // execution probe them instead of scanning. Disable only for A/B testing of the
  // scan path (equivalence tests, scan-baseline benchmarks).
  bool use_join_indexes = true;

  // ---- engine hot-path toggles (docs/SCALING.md "Memory model & hot-path
  // batching"). All three are pure execution strategies: every combination
  // produces bit-identical table digests, traces, and deterministic counters —
  // the ablation-matrix suites assert exactly that.

  // Recycle tuple storage (shared blocks + field vectors) through the per-thread
  // free lists of src/runtime/arena.h. The underlying switch is process-global
  // (TupleArena::SetEnabled); the node constructor writes this value through, so
  // configure it fleet-uniformly.
  bool tuple_arenas = true;
  // When a run of consecutive same-name deliveries sits at the head of the
  // pending queue, Drain processes it as one batch: the catalog/trigger/
  // subscriber lookups and the clock read are done once for the run instead of
  // per tuple. Per-tuple insert -> dispatch order is unchanged.
  bool batch_deltas = true;
  // Decode incoming envelopes with the single-pass fast decoder, materializing
  // name/fields straight into their final arena-backed storage. Off = the legacy
  // layered decoder; both accept and reject exactly the same byte strings.
  bool zero_copy_decode = true;
  // Modeled delay for locally routed tuples (seconds of virtual time spent in the
  // node's queues between rule strands). Zero keeps local hand-off instantaneous;
  // nonzero makes the profiler's LocalT component (paper §3.2) observable.
  double local_queue_delay = 0.0;
  // Reliable tuple transport (docs/ROBUSTNESS.md): tuples whose names were marked
  // via Node::MarkReliable travel on per-destination sequenced channels with
  // retransmission, duplicate suppression, and in-order delivery. When false,
  // MarkReliable is a no-op and everything stays best-effort (the ablation switch
  // for fault-matrix tests).
  bool reliable_transport = true;
  // Initial retransmission timeout, seconds; doubles per retry (exponential
  // backoff) up to `rel_rto_max`.
  double rel_rto = 0.25;
  double rel_rto_max = 8.0;
  // Retransmissions per message before the whole channel is declared failed: its
  // pending messages are dropped, a local chanFailed(NAddr, Dst, T) tuple is
  // emitted, and the channel restarts under a fresh epoch.
  int rel_max_retx = 8;

  // ---- overload resilience (docs/ROBUSTNESS.md "Overload & graceful degradation").
  // Every limit defaults to off (0 = unbounded) except the reorder-buffer cap, so
  // existing runs keep bit-identical digests; shed/degrade decisions depend only on
  // queue depths and virtual time (never wall-clock), keeping digests identical
  // across shard counts when limits are on.

  // Cap on best-effort deliveries held in the primary queue. Reliable tuples
  // (MarkReliable names), control tuples (chanFailed / chanBusy / overload), deletes,
  // and aggregate re-evaluations are never shed.
  size_t queue_cap = 0;
  // Cap on the low-priority queue (deferred monitor triggers).
  size_t low_queue_cap = 0;
  // Per-channel in-flight window: at most this many unacked reliable messages per
  // destination; excess waits in a sender-side backlog.
  size_t rel_window = 0;
  // Per-channel sender backlog cap (only meaningful with rel_window on): when full,
  // further reliable sends are dropped, counted, and signaled via a local
  // chanBusy(NAddr, Dst, T) tuple.
  size_t rel_backlog = 0;
  // Receiver reorder-holdback cap per incoming channel. On overflow the entry
  // farthest from the gap is evicted (the sender retransmits it) and counted as
  // rel_reorder_dropped. On by default: a gappy channel must cost O(window), not
  // O(traffic), and eviction never changes what is delivered or when acks flow.
  size_t rel_reorder_cap = 1024;
  // Degradation watchdog: pressure (peak queue depth since the last sweep plus
  // channel buffer occupancy) at or above degrade_hi for two consecutive sweeps
  // enters degraded mode; at or below degrade_lo (default hi/2) for two consecutive
  // sweeps exits it. 0 = watchdog off.
  size_t degrade_hi = 0;
  size_t degrade_lo = 0;
  // While degraded: periodic timer chains stretch by this factor and every second
  // low-priority trigger is sampled out (counted as shed).
  double degrade_stretch = 2.0;

  uint64_t seed = 1;
};

struct NodeStats {
  uint64_t msgs_sent = 0;
  uint64_t msgs_received = 0;
  uint64_t bytes_sent = 0;
  uint64_t bytes_received = 0;
  uint64_t local_deliveries = 0;
  uint64_t strand_triggers = 0;
  uint64_t tuples_emitted = 0;
  uint64_t agg_reevals = 0;
  uint64_t dead_letters = 0;
  uint64_t decode_errors = 0;
  uint64_t tuples_expired = 0;  // soft state purged by sweeps (lazy expiry counted
                                // per table in TableCounters, not here)
  uint64_t queue_hwm = 0;       // high-water mark of the pending-work queues
  uint64_t busy_ns = 0;  // wall-clock nanoseconds spent executing this node's dataflow

  // ---- overload resilience (docs/ROBUSTNESS.md). Admission is classified into
  // best-effort / low-priority / reliable+control; only the first two can shed.
  uint64_t admitted_besteffort = 0;  // best-effort deliveries admitted to the queue
  uint64_t admitted_reliable = 0;    // reliable/control deliveries admitted (never shed)
  uint64_t admitted_low = 0;         // low-priority work admitted
  uint64_t shed_besteffort = 0;      // best-effort deliveries dropped at admission
  uint64_t shed_low = 0;             // low-priority work dropped (cap or degraded sampling)
  uint64_t shed_reliable = 0;        // must stay 0: the control plane is never shed
  uint64_t rel_busy_dropped = 0;     // reliable sends dropped at a full sender backlog
  uint64_t rel_reorder_dropped = 0;  // reorder-holdback evictions on gappy channels
  uint64_t be_queue_hwm = 0;         // hwm of best-effort entries in the primary queue
  uint64_t low_queue_hwm = 0;        // hwm of the low-priority queue
  uint64_t rel_pending_hwm = 0;      // hwm of any one channel's in-flight window
  uint64_t rel_backlog_hwm = 0;      // hwm of any one channel's sender backlog
  uint64_t rel_reorder_hwm = 0;      // hwm of any one reorder holdback buffer
  uint64_t degrade_enters = 0;       // watchdog transitions into degraded mode
  uint64_t degrade_exits = 0;        // watchdog restorations to normal mode
};

class Scheduler;

class Node {
 public:
  // `sched` is the scheduler of the shard that owns this node (nullptr = the
  // network's shard 0) — nodes are created through Network::AddNode, which wires
  // both. All of the node's timers, injections, and local hand-offs run there.
  Node(std::string addr, Network* network, NodeOptions options,
       Scheduler* sched = nullptr, int shard_index = 0);
  ~Node();

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  const std::string& addr() const { return addr_; }
  NodeOptions& options() { return options_; }
  NodeStats& stats() { return stats_; }
  Catalog& catalog() { return catalog_; }
  MetricsRegistry& metrics() { return metrics_; }
  // Current pending-work backlog (primary + low-priority queues).
  size_t QueueDepth() const { return queue_.size() + low_queue_.size(); }
  Tracer& tracer() { return *tracer_; }
  TupleStore& store() { return store_; }
  // The bounded retention store; nullptr unless NodeOptions::forensics.enabled.
  ForensicsStore* forensics() { return forensics_.get(); }
  Rng& rng() { return rng_; }
  Network& network() { return *network_; }
  // The owning shard's scheduler: the only scheduler this node's events may run on.
  // Host code targeting a specific node (timed injections, crash schedules) must use
  // this, not Network::scheduler(), or the event lands on the wrong shard's thread
  // under parallel execution.
  Scheduler& own_scheduler() { return *sched_; }
  int shard_index() const { return shard_index_; }

  // Current virtual time.
  double Now() const;

  // Parses and installs an OverLog program: creates its tables, compiles its rules,
  // registers triggers/listeners/timers. Safe to call repeatedly, including while the
  // simulation is running. Returns false and sets `error` on any failure (the program
  // is then not installed; tables it declared before the failure remain).
  bool LoadProgram(const std::string& source, const ParamMap& params, std::string* error);
  bool LoadProgram(const std::string& source, std::string* error);

  // Loads a program whose rules run at LOW priority: its strands trigger and its
  // aggregates re-evaluate only once the node's primary work has drained. This is the
  // paper's §6 future-work item ("prioritized execution of debugging rules may allow
  // the unperturbed observation of sensitive... artifacts"): a low-priority monitor
  // observes the quiescent state *after* an event's full derivation cascade, and its
  // execution never interleaves with base-system rule firing.
  bool LoadProgramLowPriority(const std::string& source, const ParamMap& params,
                              std::string* error);

  // Identifier of the most recently loaded program (1-based; 0 = none loaded yet).
  uint64_t last_program_id() const { return next_program_id_ - 1; }

  // Uninstalls a previously loaded program: its strands stop triggering, its timers
  // stop firing, and its continuous aggregates stop re-evaluating. Materialized tables
  // the program declared remain (their soft state ages out normally) — the complement
  // of the paper's piecemeal on-line installation. Returns false for unknown ids.
  bool UnloadProgram(uint64_t program_id);

  // Fault injection: a crashed node stops processing — incoming messages are dropped,
  // queued-but-unprocessed work is lost, and its timer chains die at their next tick —
  // but its table state survives (fail-stop, not disk loss).
  void Crash();
  // Revive restarts processing and re-arms the sweep and periodic timer chains that
  // died during the outage; soft state that aged out while down expires lazily.
  void Revive();
  // Recover is the full crash-recovery lifecycle: Revive plus a reliable-transport
  // restart — every outgoing channel abandons its pending retransmissions and starts
  // a fresh epoch (peers resynchronize on the first message of the new epoch);
  // incoming channel state survives, like table state (fail-stop, not disk loss).
  void Recover();
  bool IsUp() const { return up_; }

  // ---- reliable tuple transport (docs/ROBUSTNESS.md) ----

  // Marks tuples named `name` for reliable delivery: sequenced, retransmitted with
  // exponential backoff, duplicate-suppressed, and delivered in order per channel.
  // No-op when NodeOptions::reliable_transport is off. Typically called by monitor
  // installers (snapshot markers, token-traversal tuples) whose protocols assume
  // reliable FIFO channels.
  void MarkReliable(const std::string& name);
  bool IsReliable(const std::string& name) const;

  // Cumulative per-peer reliable-channel counters (both directions merged onto the
  // peer's address): the backing data for sysChannelStat.
  struct ChannelStat {
    uint64_t sent = 0;    // reliable data tuples first-sent to the peer
    uint64_t acked = 0;   // of those, how many were acknowledged
    uint64_t retx = 0;    // retransmissions to the peer
    uint64_t dups = 0;    // duplicate receptions suppressed from the peer
    uint64_t failed = 0;  // messages abandoned after retransmit exhaustion
  };
  const std::map<std::string, ChannelStat>& channel_stats() const {
    return channel_stats_;
  }

  // ---- overload resilience (docs/ROBUSTNESS.md) ----

  // Whether the resource watchdog currently holds the node in degraded mode.
  bool degraded() const { return degraded_; }

  // Instantaneous occupancy of every bounded per-node resource — the backing data
  // for sysOverloadStat and the simfuzz bounded-memory oracle.
  struct OverloadSnapshot {
    uint64_t be_in_queue = 0;       // best-effort entries in the primary queue
    uint64_t low_depth = 0;         // low-priority queue depth
    uint64_t rel_pending = 0;       // Σ in-flight across outgoing channels
    uint64_t rel_backlog = 0;       // Σ sender backlog across outgoing channels
    uint64_t reorder_buffered = 0;  // Σ reorder holdback across incoming channels
    bool degraded = false;
  };
  OverloadSnapshot OverloadState() const;

  // Observation hook for the reliable transport: called once for every reliable
  // data envelope the channel layer accepts for delivery (post duplicate
  // suppression and reordering, in delivery order). Lets harnesses check the
  // in-order/no-dup contract from outside the transport (src/simtest oracles).
  void SetReliableDeliveryTap(std::function<void(const WireEnvelope&)> tap) {
    rel_delivery_tap_ = std::move(tap);
  }

  // The tuples observed by `watch(name).` declarations, most recent last (bounded).
  struct WatchEntry {
    double time;
    TupleRef tuple;
  };
  const std::deque<WatchEntry>& watch_log() const { return watch_log_; }
  // Optional sink called for each watched tuple (e.g. to print).
  void SetWatchSink(std::function<void(double, const TupleRef&)> sink);

  // Injects `tuple` as if it had been derived locally: it is routed to its location
  // specifier at the current instant (the enclosing Network must then be run).
  void InjectEvent(const TupleRef& tuple);

  // Registers a host callback invoked whenever an event named `name` is dispatched on
  // this node (after strand dispatch). Used by examples and tests to observe alarms.
  void SubscribeEvent(const std::string& name, std::function<void(const TupleRef&)> fn);

  // Convenience: current contents of a materialized table (empty if absent).
  std::vector<TupleRef> TableContents(const std::string& name);

  // All rules loaded so far (for introspection).
  const std::vector<const Rule*>& loaded_rules() const { return loaded_rules_; }
  const std::vector<Strand*>& strands() const { return strand_ptrs_; }

  // ---- engine internals (used by strands, the planner, and the network) ----

  // Routes a tuple produced by a rule head to its location specifier.
  void RouteTuple(const TupleRef& tuple, bool is_delete, uint64_t bound_mask);

  // Called by the network when a serialized message arrives.
  void ReceiveBytes(const std::string& bytes);

  // Registers compiled artifacts (planner).
  void RegisterStrand(std::unique_ptr<Strand> strand);
  void RegisterAggRule(std::unique_ptr<ContinuousAggRule> rule);
  void RegisterPeriodic(Strand* strand, double period);

  // Marks a continuous aggregate dirty (table listener path).
  void MarkAggDirty(ContinuousAggRule* rule);

  // Drains the pending-work queue. Called from scheduler callbacks.
  void Drain();

  // Fires `strand` for `event`, accounting the trigger into NodeStats and — when
  // metrics are enabled — the strand's RuleMetrics and the node's trigger-latency
  // histogram. Every strand trigger in the engine goes through here.
  void TriggerStrand(Strand* strand, const TupleRef& event);

 private:
  struct Pending {
    enum class Kind { kDeliver, kAggReeval, kLowTrigger };
    Kind kind = Kind::kDeliver;
    TupleRef tuple;
    std::string src_addr;
    uint64_t src_tuple_id = 0;
    bool is_delete = false;
    uint64_t bound_mask = ~0ULL;
    uint64_t agg_id = 0;
    Strand* strand = nullptr;  // kLowTrigger
    // Counted against NodeOptions::queue_cap while queued (sheddable class).
    bool best_effort = false;
  };

  void ProcessDelivery(const Pending& p);
  // Batched delta propagation (NodeOptions::batch_deltas): processes a maximal
  // run of same-name non-delete deliveries popped from the primary queue. The
  // name-keyed lookups (catalog, triggers, subscribers, watch set) and the
  // virtual-clock read are hoisted over the run; each tuple still inserts and
  // dispatches in exactly the unbatched order.
  void ProcessDeliveryRun(const std::vector<Pending>& run);
  void DispatchEvent(const TupleRef& tuple);
  // TriggerStrand with an externally chained wall clock: `*clock_ns` holds the
  // current timestamp on entry and the post-trigger timestamp on return, so a
  // dispatch loop touching S metrics-enabled strands pays S+1 monotonic clock
  // reads instead of 2S. Metrics counters and the histogram observation count
  // are identical to the unchained path.
  void TriggerStrandChained(Strand* strand, const TupleRef& event, uint64_t* clock_ns);
  void SchedulePeriodic(Strand* strand, double period);
  void ScheduleSweep();
  void Sweep();
  void InstallBuiltinTables();

  // ---- reliable transport internals ----

  // One outgoing reliable channel (this node -> dst).
  struct RelPending {
    WireEnvelope env;
    int retries = 0;
  };
  struct RelOut {
    uint64_t epoch = 1;
    uint64_t next_seq = 0;  // last sequence assigned; 0 = none yet
    std::map<uint64_t, RelPending> pending;
    // Sends held while the in-flight window is full (NodeOptions::rel_window);
    // bounded by rel_backlog, drained in order as acks retire pending entries.
    std::deque<WireEnvelope> backlog;
    // One chanBusy signal per full-backlog episode, re-armed when the backlog
    // drains below its cap.
    bool busy_signaled = false;
  };
  // One incoming reliable channel (src -> this node).
  struct RelIn {
    bool inited = false;
    uint64_t epoch = 0;
    uint64_t next_expected = 0;
    std::map<uint64_t, WireEnvelope> buffer;  // out-of-order holdback (bounded by
                                              // NodeOptions::rel_reorder_cap)
  };

  void SendReliable(const std::string& dst, WireEnvelope env);
  // Assigns the next sequence number and puts `env` on the wire (pending +
  // retransmit timer). The window check happened in SendReliable / PumpBacklog.
  void TransmitReliable(const std::string& dst, RelOut* ch, WireEnvelope env);
  // Moves backlogged sends into freed window slots (called after acks retire
  // pending entries) and re-arms the chanBusy signal once the backlog has room.
  void PumpBacklog(const std::string& dst, RelOut* ch);
  void ScheduleRetransmit(const std::string& dst, uint64_t epoch, uint64_t seq,
                          int retries);
  // Retransmit exhaustion: fails the whole channel (pending dropped, epoch bumped)
  // and emits the local chanFailed tuple.
  void FailChannel(const std::string& dst, RelOut* ch);
  void HandleAck(const WireEnvelope& env);
  // Returns true if the envelope produced at least one in-order delivery (the caller
  // then drains). Sends the cumulative ack either way.
  bool HandleReliableData(const WireEnvelope& env);
  void SendAck(const std::string& dst, uint64_t epoch, uint64_t ack_seq);
  void EnqueueDelivery(const WireEnvelope& env);
  ChannelStat& ChannelStatFor(const std::string& peer) {
    return channel_stats_[peer];
  }
  // Lazily registers the rel_* counters (first reliable traffic).
  void EnsureRelCounters();

  // ---- overload resilience internals (docs/ROBUSTNESS.md) ----

  // True for tuples the admission layer must never shed: reliable names, deletes,
  // and the transport/overload control signals.
  bool IsControlPlane(const TupleRef& tuple, bool is_delete) const;
  // Classifies and admits a kDeliver headed for the primary queue. Returns false
  // when the tuple was shed (best-effort class at a full queue); the caller then
  // drops it. Marks admitted best-effort entries so Drain can release their slot.
  bool AdmitDelivery(Pending* p);
  // Admission for low-priority work (cap + degraded-mode sampling).
  bool AdmitLow();
  // Sweep-time watchdog: emits the overload tuple for classes that shed since the
  // last sweep, then runs the degrade/restore hysteresis over the sweep-window
  // pressure peak. Deterministic: consumes only queue depths and virtual time.
  void UpdateOverload();

  // Tracks the pending-queue high-water mark; called after every queue push.
  void NoteQueueDepth() {
    size_t depth = queue_.size() + low_queue_.size();
    if (depth > stats_.queue_hwm) {
      stats_.queue_hwm = depth;
    }
    if (depth > sweep_peak_depth_) {
      sweep_peak_depth_ = depth;
    }
    if (be_in_queue_ > stats_.be_queue_hwm) {
      stats_.be_queue_hwm = be_in_queue_;
    }
    if (low_queue_.size() > stats_.low_queue_hwm) {
      stats_.low_queue_hwm = low_queue_.size();
    }
  }

  std::string addr_;
  Network* network_;
  Scheduler* sched_;
  int shard_index_;
  NodeOptions options_;
  NodeStats stats_;
  MetricsRegistry metrics_;
  Histogram* trigger_hist_ = nullptr;  // "strand_trigger_ns"; null when disabled
  Rng rng_;
  Catalog catalog_;
  TupleStore store_;
  std::unique_ptr<Tracer> tracer_;
  std::unique_ptr<ForensicsStore> forensics_;

  struct LoadedProgram {
    uint64_t id = 0;
    std::unique_ptr<Program> program;
    std::vector<Strand*> strands;            // owned by strands_
    std::vector<ContinuousAggRule*> aggs;    // owned by agg_rules_
    bool unloaded = false;
    bool low_priority = false;
  };

  bool LoadProgramInternal(const std::string& source, const ParamMap& params,
                           bool low_priority, std::string* error);

  std::vector<LoadedProgram> programs_;
  uint64_t next_program_id_ = 1;
  std::vector<const Rule*> loaded_rules_;
  std::vector<std::unique_ptr<Strand>> strands_;
  std::vector<Strand*> strand_ptrs_;
  std::vector<std::unique_ptr<ContinuousAggRule>> agg_rules_;
  // Continuous aggregates are addressed indirectly so table listeners and queued
  // re-evaluations survive an unload (they simply stop resolving).
  std::unordered_map<uint64_t, ContinuousAggRule*> agg_by_id_;
  std::unordered_map<ContinuousAggRule*, uint64_t> agg_ids_;
  uint64_t next_agg_id_ = 1;
  std::unordered_map<std::string, std::vector<Strand*>> triggers_;
  std::unordered_map<std::string, std::vector<std::function<void(const TupleRef&)>>>
      subscribers_;
  std::deque<Pending> queue_;
  // Deferred low-priority work (strand triggers and aggregate re-evaluations):
  // drained only when queue_ is empty.
  std::deque<Pending> low_queue_;
  // Reused scratch buffer for batched delta runs (see Drain / ProcessDeliveryRun).
  std::vector<Pending> run_buf_;
  std::unordered_set<Strand*> low_priority_strands_;
  std::unordered_set<uint64_t> low_priority_aggs_;
  bool draining_ = false;
  bool sweep_scheduled_ = false;
  bool up_ = true;
  // ---- overload resilience state (docs/ROBUSTNESS.md) ----
  size_t be_in_queue_ = 0;       // best-effort entries currently in queue_
  size_t sweep_peak_depth_ = 0;  // peak queue depth since the last sweep
  bool degraded_ = false;        // watchdog state (enter/exit counted in stats_)
  int degrade_streak_ = 0;       // consecutive sweeps toward a transition
  uint64_t low_sample_tick_ = 0;  // degraded-mode sampling of low-priority work
  // Shed totals as of the last sweep, for overload-tuple emission deltas.
  uint64_t last_shed_besteffort_ = 0;
  uint64_t last_shed_low_ = 0;
  // Periodic timer chains, tracked so Revive can re-arm chains that died while the
  // node was down (a chain dies when its tick fires on a crashed node).
  struct PeriodicEntry {
    double period = 0;
    bool armed = false;
    // Registration order: Revive re-arms dead chains in this order, not in the
    // pointer-hash order of the map — timer interleavings must not depend on heap
    // addresses or simulation runs would not be reproducible.
    uint64_t seq = 0;
  };
  std::unordered_map<Strand*, PeriodicEntry> periodic_entries_;
  uint64_t next_periodic_seq_ = 0;
  // Reliable transport state.
  std::set<std::string> reliable_names_;
  std::map<std::string, RelOut> rel_out_;
  std::map<std::string, RelIn> rel_in_;
  std::map<std::string, ChannelStat> channel_stats_;
  Counter* rel_sent_ = nullptr;
  Counter* rel_acked_ = nullptr;
  Counter* rel_retx_ = nullptr;
  Counter* rel_dups_ = nullptr;
  Counter* rel_failed_ = nullptr;
  Counter* rel_acks_sent_ = nullptr;
  std::function<void(const WireEnvelope&)> rel_delivery_tap_;
  // Strands of unloaded programs: their storage stays alive (timer lambdas hold raw
  // pointers) but they no longer trigger, and their timer chains stop.
  std::unordered_set<Strand*> inactive_strands_;
  std::set<std::string> watched_;
  std::deque<WatchEntry> watch_log_;
  std::function<void(double, const TupleRef&)> watch_sink_;
};

// RAII helper accumulating wall-clock processing time into a node's stats.
class BusyTimer {
 public:
  explicit BusyTimer(NodeStats* stats);
  ~BusyTimer();

 private:
  NodeStats* stats_;
  uint64_t start_ns_;
};

}  // namespace p2

#endif  // SRC_NET_NODE_H_
