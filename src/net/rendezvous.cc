#include "src/net/rendezvous.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <set>
#include <sstream>
#include <vector>

#include "src/common/strings.h"

namespace p2 {

namespace {

constexpr char kMagic[] = "P2RDV1";
constexpr size_t kMaxDatagram = 65000;  // stay under the UDP payload ceiling

double SteadySeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// `allow_zero_port` is for local binds (0 = kernel-assigned ephemeral port); a
// destination address always needs a real port.
bool ParseAddr(const std::string& addr, sockaddr_in* out,
               bool allow_zero_port = false) {
  size_t colon = addr.rfind(':');
  if (colon == std::string::npos) {
    return false;
  }
  std::string host = colon == 0 ? "127.0.0.1" : addr.substr(0, colon);
  int port = std::atoi(addr.c_str() + colon + 1);
  if (port < (allow_zero_port ? 0 : 1) || port > 65535) {
    return false;
  }
  std::memset(out, 0, sizeof(*out));
  out->sin_family = AF_INET;
  out->sin_port = htons(static_cast<uint16_t>(port));
  return inet_pton(AF_INET, host.c_str(), &out->sin_addr) == 1;
}

std::string RenderEntries(const std::map<std::string, std::string>& entries) {
  std::string out;
  for (const auto& [name, addr] : entries) {
    out += "\n" + name + " " + addr;
  }
  return out;
}

// Parses the "name host:port" lines after the header into `entries`.
bool ParseEntries(const std::string& body, size_t header_end,
                  std::map<std::string, std::string>* entries) {
  std::istringstream in(body.substr(header_end));
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) {
      continue;
    }
    size_t space = line.rfind(' ');
    if (space == std::string::npos || space == 0 || space + 1 == line.size()) {
      return false;
    }
    (*entries)[line.substr(0, space)] = line.substr(space + 1);
  }
  return true;
}

// One bound control socket with timed receive.
class ControlSocket {
 public:
  ~ControlSocket() {
    if (fd_ >= 0) {
      ::close(fd_);
    }
  }

  bool Bind(const std::string& listen, std::string* error) {
    sockaddr_in addr;
    if (!ParseAddr(listen.empty() ? ":0" : listen, &addr,
                   /*allow_zero_port=*/true)) {
      *error = "rendezvous: bad control address: " + listen;
      return false;
    }
    fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
    if (fd_ < 0) {
      *error = "rendezvous: socket() failed";
      return false;
    }
    if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      *error = "rendezvous: bind(" + listen + ") failed";
      return false;
    }
    return true;
  }

  bool SendTo(const std::string& msg, const sockaddr_in& to) {
    return ::sendto(fd_, msg.data(), msg.size(), 0,
                    reinterpret_cast<const sockaddr*>(&to), sizeof(to)) >= 0;
  }

  // Waits up to `wait` seconds for one datagram; false on timeout.
  bool RecvFrom(double wait, std::string* msg, sockaddr_in* from) {
    pollfd pfd{fd_, POLLIN, 0};
    int timeout_ms = static_cast<int>(std::max(wait, 0.0) * 1000.0);
    if (::poll(&pfd, 1, timeout_ms) <= 0) {
      return false;
    }
    char buffer[65536];
    socklen_t len = sizeof(*from);
    ssize_t n = ::recvfrom(fd_, buffer, sizeof(buffer), 0,
                           reinterpret_cast<sockaddr*>(from), &len);
    if (n <= 0) {
      return false;
    }
    msg->assign(buffer, static_cast<size_t>(n));
    return true;
  }

 private:
  int fd_ = -1;
};

// Comparable identity for a registrant (its control-socket source address).
std::pair<uint32_t, uint16_t> SourceKey(const sockaddr_in& from) {
  return {from.sin_addr.s_addr, from.sin_port};
}

bool RunSeed(const RendezvousConfig& config,
             const std::map<std::string, std::string>& local,
             std::map<std::string, std::string>* full, std::string* error) {
  ControlSocket sock;
  if (!sock.Bind(config.listen, error)) {
    return false;
  }
  *full = local;
  std::map<std::pair<uint32_t, uint16_t>, sockaddr_in> registered;
  std::set<std::pair<uint32_t, uint16_t>> acked;
  const size_t joiners = static_cast<size_t>(config.expected - 1);
  const double deadline = SteadySeconds() + config.timeout;
  double next_offer = 0;  // re-offer the MAP to un-acked joiners at this instant
  while (true) {
    bool complete = registered.size() == joiners;
    if (complete && acked.size() == joiners) {
      return true;
    }
    double now = SteadySeconds();
    if (now >= deadline) {
      if (complete) {
        // Every process registered and got the map offered at least once; a
        // straggler ACK lost on the wire should not fail the deployment.
        return true;
      }
      *error = StrFormat("rendezvous: timeout with %zu of %zu joiners registered",
                         registered.size(), joiners);
      return false;
    }
    if (complete && now >= next_offer) {
      std::string map_msg = std::string(kMagic) + " MAP" + RenderEntries(*full);
      if (map_msg.size() > kMaxDatagram) {
        *error = "rendezvous: address map exceeds one datagram";
        return false;
      }
      for (const auto& [key, addr] : registered) {
        if (acked.count(key) == 0) {
          sock.SendTo(map_msg, addr);
        }
      }
      next_offer = now + config.retry;
    }
    std::string msg;
    sockaddr_in from;
    double wait = std::min(deadline, complete ? next_offer : deadline) - now;
    if (!sock.RecvFrom(std::min(wait, config.retry), &msg, &from)) {
      continue;
    }
    if (msg.rfind(std::string(kMagic) + " ACK", 0) == 0) {
      acked.insert(SourceKey(from));
      continue;
    }
    if (msg.rfind(std::string(kMagic) + " REG", 0) == 0) {
      std::map<std::string, std::string> entries;
      if (!ParseEntries(msg, std::strlen(kMagic) + 4, &entries)) {
        continue;  // malformed datagram: ignore, the joiner re-sends
      }
      for (const auto& [name, addr] : entries) {
        auto it = full->find(name);
        if (it != full->end() && it->second != addr &&
            registered.count(SourceKey(from)) == 0) {
          *error = "rendezvous: node '" + name + "' registered by two processes";
          return false;
        }
        (*full)[name] = addr;
      }
      registered[SourceKey(from)] = from;
      next_offer = 0;  // a (re-)registration deserves an immediate map offer
    }
  }
}

bool RunJoiner(const RendezvousConfig& config,
               const std::map<std::string, std::string>& local,
               std::map<std::string, std::string>* full, std::string* error) {
  sockaddr_in seed;
  if (!ParseAddr(config.seed_addr, &seed)) {
    *error = "rendezvous: bad seed address: " + config.seed_addr;
    return false;
  }
  ControlSocket sock;
  if (!sock.Bind("", error)) {  // ephemeral control port = this process's identity
    return false;
  }
  std::string reg_msg = std::string(kMagic) + " REG" + RenderEntries(local);
  if (reg_msg.size() > kMaxDatagram) {
    *error = "rendezvous: registration exceeds one datagram";
    return false;
  }
  const double deadline = SteadySeconds() + config.timeout;
  double next_reg = 0;
  while (true) {
    double now = SteadySeconds();
    if (now >= deadline) {
      *error = "rendezvous: timeout waiting for the address map from " +
               config.seed_addr;
      return false;
    }
    if (now >= next_reg) {
      sock.SendTo(reg_msg, seed);
      next_reg = now + config.retry;
    }
    std::string msg;
    sockaddr_in from;
    if (!sock.RecvFrom(std::min(next_reg, deadline) - now, &msg, &from)) {
      continue;
    }
    if (msg.rfind(std::string(kMagic) + " MAP", 0) != 0) {
      continue;
    }
    full->clear();
    if (!ParseEntries(msg, std::strlen(kMagic) + 4, full)) {
      continue;  // corrupt map datagram: wait for the re-offer
    }
    sock.SendTo(std::string(kMagic) + " ACK", seed);
    return true;
  }
}

}  // namespace

bool RendezvousExchange(const RendezvousConfig& config,
                        const std::map<std::string, std::string>& local,
                        std::map<std::string, std::string>* full,
                        std::string* error) {
  full->clear();
  const bool is_seed = !config.listen.empty();
  if (is_seed == !config.seed_addr.empty()) {
    *error = "rendezvous: exactly one of listen / seed_addr must be set";
    return false;
  }
  if (is_seed && config.expected < 1) {
    *error = "rendezvous: expected must be >= 1";
    return false;
  }
  return is_seed ? RunSeed(config, local, full, error)
                 : RunJoiner(config, local, full, error);
}

}  // namespace p2
