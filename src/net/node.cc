#include "src/net/node.h"

#include <algorithm>

#include "src/net/network.h"
#include "src/runtime/arena.h"
#include "src/planner/planner.h"
#include "src/trace/introspect.h"

namespace p2 {

BusyTimer::BusyTimer(NodeStats* stats) : stats_(stats), start_ns_(MonotonicNs()) {}

BusyTimer::~BusyTimer() { stats_->busy_ns += MonotonicNs() - start_ns_; }

Node::Node(std::string addr, Network* network, NodeOptions options, Scheduler* sched,
           int shard_index)
    : addr_(std::move(addr)),
      network_(network),
      sched_(sched != nullptr ? sched : &network->scheduler()),
      shard_index_(shard_index),
      options_(options),
      rng_(options.seed) {
  // Arena recycling is process-global (the free lists are thread-local, not
  // per-node), so the toggle is last-writer-wins: fleets are expected to run
  // with a uniform setting. Toggling is always safe — the size-class rounding
  // is applied whether or not recycling is on, so blocks allocated in either
  // mode free correctly in the other.
  TupleArena::SetEnabled(options_.tuple_arenas);
  tracer_ = std::make_unique<Tracer>(addr_, &store_, options_.tracer_records_per_rule);
  InstallBuiltinTables();
  if (options_.forensics.enabled) {
    forensics_ = std::make_unique<ForensicsStore>(addr_, options_.forensics);
    tracer_->set_forensics(forensics_.get());
    options_.tracing = true;  // the store is fed by the tracer's taps
  }
  tracer_->set_enabled(options_.tracing);
  if (options_.metrics) {
    trigger_hist_ = metrics_.GetHistogram("strand_trigger_ns");
  }
  if (options_.introspection) {
    InstallIntrospectionTables(this);
  }
  ScheduleSweep();
}

Node::~Node() = default;

double Node::Now() const { return sched_->Now(); }

void Node::InstallBuiltinTables() {
  TableSpec rule_exec;
  rule_exec.name = "ruleExec";
  rule_exec.lifetime_secs = options_.rule_exec_lifetime;
  rule_exec.max_size = options_.rule_exec_max;
  // Whole-tuple key: every distinct execution record is its own row.
  catalog_.CreateTable(rule_exec);

  TableSpec tuple_table;
  tuple_table.name = "tupleTable";
  tuple_table.lifetime_secs = options_.rule_exec_lifetime;
  tuple_table.max_size = options_.rule_exec_max;
  tuple_table.key_fields = {1};  // TupleID
  catalog_.CreateTable(tuple_table);

  tracer_->AttachTables(catalog_.Get("ruleExec"), catalog_.Get("tupleTable"));
}

bool Node::LoadProgram(const std::string& source, const ParamMap& params,
                       std::string* error) {
  return LoadProgramInternal(source, params, /*low_priority=*/false, error);
}

bool Node::LoadProgramLowPriority(const std::string& source, const ParamMap& params,
                                  std::string* error) {
  return LoadProgramInternal(source, params, /*low_priority=*/true, error);
}

bool Node::LoadProgramInternal(const std::string& source, const ParamMap& params,
                               bool low_priority, std::string* error) {
  auto program = std::make_unique<Program>();
  if (!ParseProgram(source, params, program.get(), error)) {
    return false;
  }
  // Create declared tables first so the planner can classify predicates.
  for (const TableSpec& spec : program->materializations) {
    catalog_.CreateTable(spec);
  }
  // Reject duplicate rule ids: ruleExec provenance keys on them.
  for (const Rule& rule : program->rules) {
    for (const Rule* prior : loaded_rules_) {
      if (prior->id == rule.id) {
        *error = "duplicate rule id: " + rule.id;
        return false;
      }
    }
  }
  PlanResult plan;
  if (!PlanProgram(*program, this, &plan, error)) {
    return false;
  }
  // Install.
  LoadedProgram loaded;
  loaded.id = next_program_id_++;
  loaded.low_priority = low_priority;
  for (const Rule& rule : program->rules) {
    loaded_rules_.push_back(&rule);
  }
  for (auto& strand : plan.strands) {
    loaded.strands.push_back(strand.get());
    if (low_priority) {
      low_priority_strands_.insert(strand.get());
    }
    RegisterStrand(std::move(strand));
  }
  for (auto& agg : plan.agg_rules) {
    loaded.aggs.push_back(agg.get());
    ContinuousAggRule* raw = agg.get();
    RegisterAggRule(std::move(agg));
    if (low_priority) {
      low_priority_aggs_.insert(agg_ids_[raw]);
    }
  }
  for (const PlanResult::PeriodicInstall& p : plan.periodics) {
    RegisterPeriodic(p.strand, p.period);
  }
  for (const std::string& watched_name : program->watches) {
    watched_.insert(watched_name);
  }
  loaded.program = std::move(program);
  programs_.push_back(std::move(loaded));
  if (options_.introspection) {
    PublishStaticIntrospection(this);
  }
  return true;
}

bool Node::UnloadProgram(uint64_t program_id) {
  LoadedProgram* found = nullptr;
  for (LoadedProgram& lp : programs_) {
    if (lp.id == program_id && !lp.unloaded) {
      found = &lp;
      break;
    }
  }
  if (found == nullptr) {
    return false;
  }
  found->unloaded = true;
  for (Strand* strand : found->strands) {
    inactive_strands_.insert(strand);
    low_priority_strands_.erase(strand);
    auto it = triggers_.find(strand->trigger_name());
    if (it != triggers_.end()) {
      auto& vec = it->second;
      vec.erase(std::remove(vec.begin(), vec.end(), strand), vec.end());
    }
    strand_ptrs_.erase(std::remove(strand_ptrs_.begin(), strand_ptrs_.end(), strand),
                       strand_ptrs_.end());
  }
  for (ContinuousAggRule* agg : found->aggs) {
    auto it = agg_ids_.find(agg);
    if (it != agg_ids_.end()) {
      low_priority_aggs_.erase(it->second);
      agg_by_id_.erase(it->second);
      agg_ids_.erase(it);
    }
  }
  // Free the rule ids and drop introspection rows and rule metrics. The unloaded
  // strands are inert (they can never trigger again), so invalidating their
  // RuleMetrics handles is safe.
  Table* sys_rule = catalog_.Get("sysRule");
  Table* sys_rule_stat = catalog_.Get("sysRuleStat");
  for (const Rule& rule : found->program->rules) {
    loaded_rules_.erase(
        std::remove(loaded_rules_.begin(), loaded_rules_.end(), &rule),
        loaded_rules_.end());
    if (sys_rule != nullptr) {
      sys_rule->DeleteMatching({Value::Str(addr_), Value::Str(rule.id)}, {true, true},
                               Now());
    }
    if (sys_rule_stat != nullptr) {
      sys_rule_stat->DeleteMatching({Value::Str(addr_), Value::Str(rule.id)},
                                    {true, true}, Now());
    }
    metrics_.DropRuleMetrics(rule.id);
  }
  return true;
}

bool Node::LoadProgram(const std::string& source, std::string* error) {
  return LoadProgram(source, ParamMap(), error);
}

void Node::RegisterStrand(std::unique_ptr<Strand> strand) {
  Strand* raw = strand.get();
  strands_.push_back(std::move(strand));
  strand_ptrs_.push_back(raw);
  triggers_[raw->trigger_name()].push_back(raw);
  if (options_.metrics) {
    raw->set_metrics(metrics_.GetRuleMetrics(raw->rule_id()));
  }
}

void Node::RegisterAggRule(std::unique_ptr<ContinuousAggRule> rule) {
  ContinuousAggRule* raw = rule.get();
  if (options_.metrics) {
    raw->set_metrics(metrics_.GetRuleMetrics(raw->rule_id()));
  }
  agg_rules_.push_back(std::move(rule));
  uint64_t agg_id = next_agg_id_++;
  agg_by_id_[agg_id] = raw;
  agg_ids_[raw] = agg_id;
  for (const std::string& table_name : raw->BodyTableNames()) {
    Table* table = catalog_.Get(table_name);
    if (table != nullptr) {
      // Indirect through the id so the listener degrades to a no-op if the rule's
      // program is later unloaded.
      table->AddListener([this, agg_id](TableChange, const TupleRef&) {
        auto it = agg_by_id_.find(agg_id);
        if (it != agg_by_id_.end()) {
          MarkAggDirty(it->second);
        }
      });
    }
  }
  // Evaluate once at install so aggregates over pre-existing state appear.
  MarkAggDirty(raw);
}

void Node::MarkAggDirty(ContinuousAggRule* rule) {
  if (rule->dirty) {
    return;
  }
  rule->dirty = true;
  Pending p;
  p.kind = Pending::Kind::kAggReeval;
  p.agg_id = agg_ids_[rule];
  if (low_priority_aggs_.count(p.agg_id) > 0) {
    low_queue_.push_back(std::move(p));
  } else {
    queue_.push_back(std::move(p));
  }
  NoteQueueDepth();
}

void Node::TriggerStrand(Strand* strand, const TupleRef& event) {
  ++stats_.strand_triggers;
  RuleMetrics* m = strand->metrics();
  if (m == nullptr) {
    strand->Trigger(event);
    return;
  }
  // Head emissions route synchronously (RouteTuple bumps tuples_emitted before
  // enqueueing), so the delta over the Trigger call is exactly this rule's output.
  uint64_t emitted_before = stats_.tuples_emitted;
  uint64_t start_ns = MonotonicNs();
  strand->Trigger(event);
  uint64_t elapsed = MonotonicNs() - start_ns;
  ++m->execs;
  m->busy_ns += elapsed;
  m->emits += stats_.tuples_emitted - emitted_before;
  trigger_hist_->Observe(elapsed);
}

void Node::TriggerStrandChained(Strand* strand, const TupleRef& event,
                                uint64_t* clock_ns) {
  ++stats_.strand_triggers;
  RuleMetrics* m = strand->metrics();
  if (m == nullptr) {
    strand->Trigger(event);
    *clock_ns = MonotonicNs();  // keep the chain's attribution exact
    return;
  }
  uint64_t emitted_before = stats_.tuples_emitted;
  strand->Trigger(event);
  // The caller's clock reading doubles as this trigger's start: the end of the
  // previous trigger in the dispatch loop is exactly the start of this one.
  uint64_t end_ns = MonotonicNs();
  uint64_t elapsed = end_ns - *clock_ns;
  *clock_ns = end_ns;
  ++m->execs;
  m->busy_ns += elapsed;
  m->emits += stats_.tuples_emitted - emitted_before;
  trigger_hist_->Observe(elapsed);
}

void Node::RegisterPeriodic(Strand* strand, double period) {
  PeriodicEntry& entry = periodic_entries_[strand];
  entry.period = period;
  entry.armed = true;
  entry.seq = next_periodic_seq_++;
  SchedulePeriodic(strand, period);
}

void Node::SchedulePeriodic(Strand* strand, double period) {
  // Graceful degradation: a degraded node stretches its periodic chains (gossip,
  // stabilization, monitor ticks) by the configured factor; the chain snaps back
  // to its native period on the first reschedule after the watchdog restores.
  double delay = degraded_ ? period * options_.degrade_stretch : period;
  sched_->After(delay, [this, strand, period] {
    if (inactive_strands_.count(strand) > 0) {
      periodic_entries_.erase(strand);
      return;  // program unloaded: the timer chain ends here
    }
    if (!up_) {
      // Fail-stop: the chain dies with the node; Revive re-arms it.
      periodic_entries_[strand].armed = false;
      return;
    }
    {
      BusyTimer busy(&stats_);
      ValueList fields;
      fields.push_back(Value::Str(addr_));
      fields.push_back(Value::Id(rng_.Next()));
      fields.push_back(Value::Double(period));
      TupleRef tick = Tuple::Make("periodic", std::move(fields));
      if (low_priority_strands_.count(strand) > 0) {
        if (AdmitLow()) {
          Pending p;
          p.kind = Pending::Kind::kLowTrigger;
          p.strand = strand;
          p.tuple = tick;
          low_queue_.push_back(std::move(p));
          NoteQueueDepth();
        }
      } else {
        TriggerStrand(strand, tick);
      }
      Drain();
    }
    SchedulePeriodic(strand, period);
  });
}

void Node::ScheduleSweep() {
  sweep_scheduled_ = true;
  sched_->After(options_.sweep_interval, [this] {
    if (!up_) {
      sweep_scheduled_ = false;  // chain dies; Revive re-arms it
      return;
    }
    Sweep();
    ScheduleSweep();
  });
}

void Node::Crash() {
  up_ = false;
  // Queued-but-unprocessed work dies with the node (fail-stop). Table state, loaded
  // programs, and reliable channel bookkeeping survive — this is a process pause,
  // not disk loss.
  queue_.clear();
  low_queue_.clear();
  be_in_queue_ = 0;
  sweep_peak_depth_ = 0;
}

void Node::Revive() {
  if (up_) {
    return;
  }
  up_ = true;
  if (!sweep_scheduled_) {
    ScheduleSweep();
  }
  // Re-arm dead chains in registration order, not map (pointer-hash) order: the
  // relative order of same-instant timers must be identical on every run.
  std::vector<std::pair<Strand*, PeriodicEntry*>> dead;
  for (auto& [strand, entry] : periodic_entries_) {
    if (!entry.armed) {
      dead.push_back({strand, &entry});
    }
  }
  std::sort(dead.begin(), dead.end(),
            [](const auto& a, const auto& b) { return a.second->seq < b.second->seq; });
  for (auto& [strand, entry] : dead) {
    entry->armed = true;
    SchedulePeriodic(strand, entry->period);
  }
}

void Node::Recover() {
  // Reliable-transport restart: abandon pending retransmissions (their timers find
  // the epoch changed and stand down) and start every outgoing channel on a fresh
  // epoch — peers' receivers resynchronize on the first message of the new epoch.
  // Incoming channel state is KEPT: like table state it survives a fail-stop
  // crash, so senders' retransmissions of messages missed during the outage slot
  // straight into the old sequence.
  for (auto& [dst, ch] : rel_out_) {
    ch.pending.clear();
    ch.backlog.clear();
    ch.busy_signaled = false;
    ++ch.epoch;
    ch.next_seq = 0;
  }
  Revive();
}

void Node::Sweep() {
  if (!up_) {
    return;
  }
  BusyTimer busy(&stats_);
  double now = Now();
  size_t expired = 0;
  for (Table* table : catalog_.AllTables()) {
    expired += table->ExpireStale(now);
  }
  stats_.tuples_expired += expired;
  if (forensics_ != nullptr) {
    forensics_->Compact(now);
  }
  UpdateOverload();
  if (options_.metrics) {
    network_->PublishShardGauges(this);
  }
  if (options_.introspection) {
    RefreshTableIntrospection(this);
    RefreshStatIntrospection(this);
  }
  if (options_.metrics) {
    network_->WriteNodeMetrics(this);
  }
  Drain();
}

void Node::InjectEvent(const TupleRef& tuple) {
  sched_->At(Now(), [this, tuple] {
    if (!up_) {
      return;
    }
    BusyTimer busy(&stats_);
    RouteTuple(tuple, /*is_delete=*/false, ~0ULL);
    Drain();
  });
}

void Node::SetWatchSink(std::function<void(double, const TupleRef&)> sink) {
  watch_sink_ = std::move(sink);
}

void Node::SubscribeEvent(const std::string& name,
                          std::function<void(const TupleRef&)> fn) {
  subscribers_[name].push_back(std::move(fn));
}

std::vector<TupleRef> Node::TableContents(const std::string& name) {
  Table* table = catalog_.Get(name);
  if (table == nullptr) {
    return {};
  }
  return table->Scan(Now());
}

void Node::RouteTuple(const TupleRef& tuple, bool is_delete, uint64_t bound_mask) {
  ++stats_.tuples_emitted;
  const std::string& dst = tuple->LocationSpecifier();
  if (dst.empty()) {
    ++stats_.dead_letters;
    return;
  }
  if (dst == addr_) {
    Pending p;
    p.kind = Pending::Kind::kDeliver;
    p.tuple = tuple;
    p.src_addr = addr_;
    p.src_tuple_id = 0;
    p.is_delete = is_delete;
    p.bound_mask = bound_mask;
    if (options_.local_queue_delay > 0) {
      sched_->After(options_.local_queue_delay,
                                  [this, p = std::move(p)]() mutable {
                                    if (!up_) {
                                      return;
                                    }
                                    BusyTimer busy(&stats_);
                                    if (!AdmitDelivery(&p)) {
                                      return;  // shed at the (deferred) admission
                                    }
                                    queue_.push_back(std::move(p));
                                    NoteQueueDepth();
                                    Drain();
                                  });
    } else {
      if (!AdmitDelivery(&p)) {
        return;  // best-effort local delivery shed at a full queue
      }
      queue_.push_back(std::move(p));
      NoteQueueDepth();
    }
    return;
  }
  WireEnvelope env;
  env.src_addr = addr_;
  env.src_tuple_id = options_.tracing ? store_.Intern(tuple) : 0;
  env.is_delete = is_delete;
  env.bound_mask = bound_mask;
  env.tuple = tuple;
  if (options_.reliable_transport && !reliable_names_.empty() &&
      reliable_names_.count(tuple->name()) > 0) {
    SendReliable(dst, std::move(env));
    return;
  }
  ++stats_.msgs_sent;
  stats_.bytes_sent += network_->SendReturningSize(addr_, dst, env);
}

void Node::MarkReliable(const std::string& name) {
  if (options_.reliable_transport) {
    reliable_names_.insert(name);
  }
}

bool Node::IsControlPlane(const TupleRef& tuple, bool is_delete) const {
  if (is_delete) {
    return true;  // shedding deletes would leave stale rows behind
  }
  const std::string& name = tuple->name();
  return reliable_names_.count(name) > 0 || name == "chanFailed" ||
         name == "chanBusy" || name == "overload";
}

bool Node::AdmitDelivery(Pending* p) {
  if (IsControlPlane(p->tuple, p->is_delete)) {
    ++stats_.admitted_reliable;
    return true;
  }
  if (options_.queue_cap > 0 && be_in_queue_ >= options_.queue_cap) {
    ++stats_.shed_besteffort;
    return false;
  }
  p->best_effort = true;
  ++be_in_queue_;
  ++stats_.admitted_besteffort;
  return true;
}

bool Node::AdmitLow() {
  if (options_.low_queue_cap > 0 && low_queue_.size() >= options_.low_queue_cap) {
    ++stats_.shed_low;
    return false;
  }
  if (degraded_ && (++low_sample_tick_ % 2) == 0) {
    // Degraded mode samples low-priority work: every second trigger is dropped.
    ++stats_.shed_low;
    return false;
  }
  ++stats_.admitted_low;
  return true;
}

Node::OverloadSnapshot Node::OverloadState() const {
  OverloadSnapshot snap;
  snap.be_in_queue = be_in_queue_;
  snap.low_depth = low_queue_.size();
  for (const auto& [dst, ch] : rel_out_) {
    snap.rel_pending += ch.pending.size();
    snap.rel_backlog += ch.backlog.size();
  }
  for (const auto& [src, in] : rel_in_) {
    snap.reorder_buffered += in.buffer.size();
  }
  snap.degraded = degraded_;
  return snap;
}

void Node::UpdateOverload() {
  // Surface shedding to OverLog at sweep granularity: one overload(NAddr, T,
  // Class, Shed) tuple per class that shed since the last sweep, carrying the
  // cumulative count. Emitting per shed event would amplify the very load being
  // shed; the tuple itself is control-plane and bypasses admission.
  double now = Now();
  if (stats_.shed_besteffort != last_shed_besteffort_) {
    last_shed_besteffort_ = stats_.shed_besteffort;
    RouteTuple(Tuple::Make("overload",
                           {Value::Str(addr_), Value::Double(now),
                            Value::Str("besteffort"),
                            Value::Int(static_cast<int64_t>(stats_.shed_besteffort))}),
               /*is_delete=*/false, ~0ULL);
  }
  if (stats_.shed_low != last_shed_low_) {
    last_shed_low_ = stats_.shed_low;
    RouteTuple(Tuple::Make("overload",
                           {Value::Str(addr_), Value::Double(now), Value::Str("low"),
                            Value::Int(static_cast<int64_t>(stats_.shed_low))}),
               /*is_delete=*/false, ~0ULL);
  }
  if (options_.degrade_hi == 0) {
    sweep_peak_depth_ = 0;
    return;
  }
  // Pressure: the worst queue depth seen since the last sweep (queues drain to
  // empty between events, so an instantaneous reading would always be zero) plus
  // the standing occupancy of every channel buffer. Deterministic inputs only —
  // never wall-clock — so degrade decisions replay identically at any shard count.
  size_t pressure = sweep_peak_depth_;
  for (const auto& [dst, ch] : rel_out_) {
    pressure += ch.pending.size() + ch.backlog.size();
  }
  for (const auto& [src, in] : rel_in_) {
    pressure += in.buffer.size();
  }
  sweep_peak_depth_ = 0;
  size_t lo = options_.degrade_lo > 0 ? options_.degrade_lo : options_.degrade_hi / 2;
  if (!degraded_) {
    if (pressure >= options_.degrade_hi) {
      if (++degrade_streak_ >= 2) {
        degraded_ = true;
        degrade_streak_ = 0;
        ++stats_.degrade_enters;
      }
    } else {
      degrade_streak_ = 0;
    }
  } else {
    if (pressure <= lo) {
      if (++degrade_streak_ >= 2) {
        degraded_ = false;
        degrade_streak_ = 0;
        ++stats_.degrade_exits;
      }
    } else {
      degrade_streak_ = 0;
    }
  }
}

bool Node::IsReliable(const std::string& name) const {
  return reliable_names_.count(name) > 0;
}

void Node::EnsureRelCounters() {
  if (rel_sent_ != nullptr || !options_.metrics) {
    return;
  }
  rel_sent_ = metrics_.GetCounter("rel_sent");
  rel_acked_ = metrics_.GetCounter("rel_acked");
  rel_retx_ = metrics_.GetCounter("rel_retx");
  rel_dups_ = metrics_.GetCounter("rel_dups");
  rel_failed_ = metrics_.GetCounter("rel_failed");
  rel_acks_sent_ = metrics_.GetCounter("rel_acks_sent");
}

void Node::SendReliable(const std::string& dst, WireEnvelope env) {
  EnsureRelCounters();
  RelOut& ch = rel_out_[dst];
  env.reliable = true;
  if (options_.rel_window > 0 && ch.pending.size() >= options_.rel_window) {
    // In-flight window full: hold the send in the bounded per-channel backlog.
    // A long partition then costs O(window + backlog) per channel, not O(traffic).
    if (options_.rel_backlog > 0 && ch.backlog.size() >= options_.rel_backlog) {
      ++stats_.rel_busy_dropped;
      if (!ch.busy_signaled) {
        // One chanBusy per full-backlog episode; re-armed when the backlog
        // drains. The tuple is control-plane and local, so it cannot recurse
        // back into this path.
        ch.busy_signaled = true;
        RouteTuple(Tuple::Make("chanBusy", {Value::Str(addr_), Value::Str(dst),
                                            Value::Double(Now())}),
                   /*is_delete=*/false, ~0ULL);
      }
      return;
    }
    ch.backlog.push_back(std::move(env));
    if (ch.backlog.size() > stats_.rel_backlog_hwm) {
      stats_.rel_backlog_hwm = ch.backlog.size();
    }
    return;
  }
  TransmitReliable(dst, &ch, std::move(env));
}

void Node::TransmitReliable(const std::string& dst, RelOut* ch, WireEnvelope env) {
  env.epoch = ch->epoch;
  env.seq = ++ch->next_seq;
  ++stats_.msgs_sent;
  stats_.bytes_sent += network_->SendReturningSize(addr_, dst, env);
  ++ChannelStatFor(dst).sent;
  if (rel_sent_ != nullptr) {
    rel_sent_->Inc();
  }
  uint64_t seq = env.seq;
  uint64_t epoch = env.epoch;
  ch->pending.emplace(seq, RelPending{std::move(env), 0});
  if (ch->pending.size() > stats_.rel_pending_hwm) {
    stats_.rel_pending_hwm = ch->pending.size();
  }
  ScheduleRetransmit(dst, epoch, seq, 0);
}

void Node::PumpBacklog(const std::string& dst, RelOut* ch) {
  while (!ch->backlog.empty() &&
         (options_.rel_window == 0 || ch->pending.size() < options_.rel_window)) {
    WireEnvelope env = std::move(ch->backlog.front());
    ch->backlog.pop_front();
    TransmitReliable(dst, ch, std::move(env));
  }
  if (options_.rel_backlog == 0 || ch->backlog.size() < options_.rel_backlog) {
    ch->busy_signaled = false;
  }
}

void Node::ScheduleRetransmit(const std::string& dst, uint64_t epoch, uint64_t seq,
                              int retries) {
  double delay = options_.rel_rto;
  for (int i = 0; i < retries && delay < options_.rel_rto_max; ++i) {
    delay *= 2;
  }
  if (delay > options_.rel_rto_max) {
    delay = options_.rel_rto_max;
  }
  sched_->After(delay, [this, dst, epoch, seq, retries] {
    if (!up_) {
      return;  // the channel restarts (new epoch) via Recover
    }
    auto ch_it = rel_out_.find(dst);
    if (ch_it == rel_out_.end() || ch_it->second.epoch != epoch) {
      return;  // channel failed or was restarted since
    }
    RelOut& ch = ch_it->second;
    auto it = ch.pending.find(seq);
    if (it == ch.pending.end()) {
      return;  // acked in the meantime
    }
    if (retries >= options_.rel_max_retx) {
      FailChannel(dst, &ch);
      return;
    }
    it->second.retries = retries + 1;
    ++stats_.msgs_sent;
    stats_.bytes_sent += network_->SendReturningSize(addr_, dst, it->second.env);
    ++ChannelStatFor(dst).retx;
    if (rel_retx_ != nullptr) {
      rel_retx_->Inc();
    }
    ScheduleRetransmit(dst, epoch, seq, retries + 1);
  });
}

void Node::FailChannel(const std::string& dst, RelOut* ch) {
  // The peer is unreachable: drop everything pending, restart the channel under a
  // fresh epoch (the peer's receiver resynchronizes on the next epoch's first
  // message), and surface the failure as a locally queryable tuple.
  ChannelStat& cs = ChannelStatFor(dst);
  uint64_t lost = ch->pending.size() + ch->backlog.size();
  cs.failed += lost;
  if (rel_failed_ != nullptr) {
    rel_failed_->Inc(lost);
  }
  ch->pending.clear();
  ch->backlog.clear();
  ch->busy_signaled = false;
  ++ch->epoch;
  ch->next_seq = 0;
  BusyTimer busy(&stats_);
  RouteTuple(Tuple::Make("chanFailed", {Value::Str(addr_), Value::Str(dst),
                                        Value::Double(Now())}),
             /*is_delete=*/false, ~0ULL);
  Drain();
}

void Node::HandleAck(const WireEnvelope& env) {
  // env.src_addr is the peer acknowledging our channel toward it.
  auto ch_it = rel_out_.find(env.src_addr);
  if (ch_it == rel_out_.end() || ch_it->second.epoch != env.epoch) {
    return;  // stale ack from a failed/restarted epoch
  }
  RelOut& ch = ch_it->second;
  uint64_t acked = 0;
  for (auto it = ch.pending.begin();
       it != ch.pending.end() && it->first <= env.ack_seq;) {
    it = ch.pending.erase(it);
    ++acked;
  }
  if (acked > 0) {
    ChannelStatFor(env.src_addr).acked += acked;
    if (rel_acked_ != nullptr) {
      rel_acked_->Inc(acked);
    }
    // Retired in-flight slots free window space: drain the sender backlog.
    PumpBacklog(env.src_addr, &ch);
  }
}

void Node::SendAck(const std::string& dst, uint64_t epoch, uint64_t ack_seq) {
  WireEnvelope ack;
  ack.src_addr = addr_;
  ack.is_ack = true;
  ack.epoch = epoch;
  ack.ack_seq = ack_seq;
  ++stats_.msgs_sent;
  stats_.bytes_sent += network_->SendReturningSize(addr_, dst, ack);
  if (rel_acks_sent_ != nullptr) {
    rel_acks_sent_->Inc();
  }
}

void Node::EnqueueDelivery(const WireEnvelope& env) {
  if (rel_delivery_tap_) {
    rel_delivery_tap_(env);
  }
  Pending p;
  p.kind = Pending::Kind::kDeliver;
  p.tuple = env.tuple;
  p.src_addr = env.src_addr;
  p.src_tuple_id = env.src_tuple_id;
  p.is_delete = env.is_delete;
  p.bound_mask = env.bound_mask;
  // Arrived on a reliable channel: control-plane class, never shed (the sender
  // already paid for the slot via the in-flight window).
  ++stats_.admitted_reliable;
  queue_.push_back(std::move(p));
  NoteQueueDepth();
}

bool Node::HandleReliableData(const WireEnvelope& env) {
  EnsureRelCounters();
  RelIn& in = rel_in_[env.src_addr];
  if (!in.inited) {
    // First contact: every epoch's stream starts at sequence 1, so expect 1 and
    // let the holdback buffer absorb out-of-order arrivals. (Accepting the first
    // seen sequence as the base instead would lock onto a reordered later message
    // and silently discard everything before it.)
    in.inited = true;
    in.epoch = env.epoch;
    in.next_expected = 1;
  } else if (env.epoch > in.epoch) {
    // The sender restarted the channel (failure or recovery): resynchronize. New
    // epochs always start at sequence 1; earlier sequences of the new epoch that
    // were lost in flight will be retransmitted and delivered in order.
    in.epoch = env.epoch;
    in.next_expected = 1;
    in.buffer.clear();
  } else if (env.epoch < in.epoch) {
    // Stale epoch: acknowledge so the sender stops retransmitting, deliver nothing.
    SendAck(env.src_addr, env.epoch, env.seq);
    return false;
  }
  if (env.seq < in.next_expected || in.buffer.count(env.seq) > 0) {
    ++ChannelStatFor(env.src_addr).dups;
    if (rel_dups_ != nullptr) {
      rel_dups_->Inc();
    }
    SendAck(env.src_addr, in.epoch, in.next_expected - 1);
    return false;
  }
  bool delivered = false;
  if (env.seq == in.next_expected) {
    ++in.next_expected;
    EnqueueDelivery(env);
    delivered = true;
    // Flush any buffered successors that are now in order.
    for (auto it = in.buffer.begin();
         it != in.buffer.end() && it->first == in.next_expected;) {
      ++in.next_expected;
      EnqueueDelivery(it->second);
      it = in.buffer.erase(it);
    }
  } else {
    // Hold back until the gap fills — within the reorder budget. On overflow,
    // evict whichever buffered entry sits farthest past the gap (the gap-adjacent
    // ones complete an in-order run soonest); the cumulative ack never covered the
    // evicted sequence, so its sender retransmits it and nothing is lost. This
    // keeps a gappy channel's receiver state at O(rel_reorder_cap), not O(traffic).
    if (options_.rel_reorder_cap > 0 &&
        in.buffer.size() >= options_.rel_reorder_cap) {
      auto last = std::prev(in.buffer.end());
      if (env.seq < last->first) {
        in.buffer.erase(last);
        in.buffer[env.seq] = env;
      }
      ++stats_.rel_reorder_dropped;
    } else {
      in.buffer[env.seq] = env;
    }
    if (in.buffer.size() > stats_.rel_reorder_hwm) {
      stats_.rel_reorder_hwm = in.buffer.size();
    }
  }
  SendAck(env.src_addr, in.epoch, in.next_expected - 1);
  return delivered;
}

void Node::ReceiveBytes(const std::string& bytes) {
  if (!up_) {
    return;  // fail-stop: a crashed node drops everything on the floor
  }
  BusyTimer busy(&stats_);
  ++stats_.msgs_received;
  stats_.bytes_received += bytes.size();
  WireEnvelope env;
  // Both decoders accept exactly the same byte strings and produce identical
  // envelopes (tests/net/wire_decode_equivalence_test.cc), so this toggle can
  // never change behavior — only the cost of the unmarshal stage.
  bool ok = options_.zero_copy_decode ? DecodeEnvelopeFast(bytes, &env)
                                      : DecodeEnvelope(bytes, &env);
  if (!ok) {
    ++stats_.decode_errors;
    return;
  }
  if (env.is_ack) {
    HandleAck(env);
    return;
  }
  if (env.reliable) {
    if (HandleReliableData(env)) {
      Drain();
    }
    return;
  }
  Pending p;
  p.kind = Pending::Kind::kDeliver;
  p.tuple = env.tuple;
  p.src_addr = env.src_addr;
  p.src_tuple_id = env.src_tuple_id;
  p.is_delete = env.is_delete;
  p.bound_mask = env.bound_mask;
  if (!AdmitDelivery(&p)) {
    return;  // best-effort gossip shed at a full queue
  }
  queue_.push_back(std::move(p));
  NoteQueueDepth();
  Drain();
}

void Node::Drain() {
  if (draining_) {
    return;
  }
  draining_ = true;
  while (!queue_.empty() || !low_queue_.empty()) {
    // Low-priority work runs only when the primary queue has quiesced, so a
    // monitoring rule observes the state *after* an event's full derivation cascade.
    bool from_low = queue_.empty();
    std::deque<Pending>& source = from_low ? low_queue_ : queue_;
    Pending p = std::move(source.front());
    source.pop_front();
    if (p.best_effort && be_in_queue_ > 0) {
      --be_in_queue_;  // release the admission slot
    }
    if (p.kind == Pending::Kind::kAggReeval) {
      auto it = agg_by_id_.find(p.agg_id);
      if (it != agg_by_id_.end()) {
        ContinuousAggRule* agg = it->second;
        agg->dirty = false;
        RuleMetrics* m = agg->metrics();
        if (m == nullptr) {
          agg->Reevaluate();
        } else {
          uint64_t emitted_before = stats_.tuples_emitted;
          uint64_t start_ns = MonotonicNs();
          agg->Reevaluate();
          uint64_t elapsed = MonotonicNs() - start_ns;
          ++m->execs;
          m->busy_ns += elapsed;
          m->emits += stats_.tuples_emitted - emitted_before;
        }
      }
      continue;
    }
    if (p.kind == Pending::Kind::kLowTrigger) {
      if (inactive_strands_.count(p.strand) == 0) {
        TriggerStrand(p.strand, p.tuple);
      }
      continue;
    }
    // Batched delta propagation: a run of consecutive same-name insertions at
    // the head of the primary queue shares one set of name-keyed lookups.
    // Deletes and low-queue entries never batch (low_queue_ holds no kDeliver
    // work, but keep the guard explicit).
    if (!options_.batch_deltas || from_low || p.is_delete) {
      ProcessDelivery(p);
      continue;
    }
    run_buf_.clear();
    const std::string& name = p.tuple->name();  // tuple outlives via run_buf_'s ref
    run_buf_.push_back(std::move(p));
    while (!queue_.empty()) {
      Pending& q = queue_.front();
      if (q.kind != Pending::Kind::kDeliver || q.is_delete ||
          q.tuple->name() != name) {
        break;
      }
      if (q.best_effort && be_in_queue_ > 0) {
        --be_in_queue_;  // slot releases when the entry leaves the queue
      }
      run_buf_.push_back(std::move(q));
      queue_.pop_front();
    }
    if (run_buf_.size() == 1) {
      ProcessDelivery(run_buf_.front());
    } else {
      ProcessDeliveryRun(run_buf_);
    }
    run_buf_.clear();
  }
  draining_ = false;
}

void Node::ProcessDeliveryRun(const std::vector<Pending>& run) {
  const std::string& name = run.front().tuple->name();
  const double now = Now();  // virtual time is frozen for the whole Drain pass
  const bool watched = watched_.count(name) > 0;
  Table* table = catalog_.Get(name);
  auto trig = triggers_.find(name);
  std::vector<Strand*>* strands =
      trig != triggers_.end() ? &trig->second : nullptr;
  auto subs = subscribers_.find(name);
  auto* sub_fns = subs != subscribers_.end() ? &subs->second : nullptr;
  // Subscriber callbacks are host code and may load programs or crash the node
  // mid-run, invalidating the hoisted lookups; refresh them after any tuple
  // whose dispatch ran subscribers. Strand execution only enqueues, so the
  // strand-only fast path keeps the lookups for the whole run.
  const bool refresh_after_subs = sub_fns != nullptr && !sub_fns->empty();
  for (const Pending& p : run) {
    if (!up_) {
      return;  // crashed mid-run: the popped remainder dies with the queue
    }
    ++stats_.local_deliveries;
    if (watched) {
      watch_log_.push_back(WatchEntry{now, p.tuple});
      while (watch_log_.size() > 1000) {
        watch_log_.pop_front();
      }
      if (watch_sink_) {
        watch_sink_(now, p.tuple);
      }
    }
    if (options_.tracing) {
      tracer_->MemoizeArrival(p.tuple, p.src_addr.empty() ? addr_ : p.src_addr,
                              p.src_tuple_id, now);
    }
    bool is_delta = true;
    if (table != nullptr) {
      InsertOutcome outcome = table->Insert(p.tuple, now);
      is_delta = (outcome != InsertOutcome::kRefreshed);
    }
    if (is_delta) {
      if (strands != nullptr) {
        if (trigger_hist_ != nullptr) {
          uint64_t clock_ns = MonotonicNs();
          for (Strand* strand : *strands) {
            if (low_priority_strands_.count(strand) > 0) {
              if (AdmitLow()) {
                Pending lp;
                lp.kind = Pending::Kind::kLowTrigger;
                lp.strand = strand;
                lp.tuple = p.tuple;
                low_queue_.push_back(std::move(lp));
                NoteQueueDepth();
              }
              continue;
            }
            TriggerStrandChained(strand, p.tuple, &clock_ns);
          }
        } else {
          for (Strand* strand : *strands) {
            if (low_priority_strands_.count(strand) > 0) {
              if (AdmitLow()) {
                Pending lp;
                lp.kind = Pending::Kind::kLowTrigger;
                lp.strand = strand;
                lp.tuple = p.tuple;
                low_queue_.push_back(std::move(lp));
                NoteQueueDepth();
              }
              continue;
            }
            TriggerStrand(strand, p.tuple);
          }
        }
      }
      if (sub_fns != nullptr) {
        for (const auto& fn : *sub_fns) {
          fn(p.tuple);
        }
      }
    }
    if (table == nullptr) {
      bool consumed = (strands != nullptr && !strands->empty()) ||
                      (sub_fns != nullptr && !sub_fns->empty());
      if (!consumed) {
        ++stats_.dead_letters;
      }
    }
    if (refresh_after_subs) {
      table = catalog_.Get(name);
      trig = triggers_.find(name);
      strands = trig != triggers_.end() ? &trig->second : nullptr;
      subs = subscribers_.find(name);
      sub_fns = subs != subscribers_.end() ? &subs->second : nullptr;
    }
  }
}

void Node::ProcessDelivery(const Pending& p) {
  ++stats_.local_deliveries;
  const std::string& name = p.tuple->name();
  double now = Now();
  if (watched_.count(name) > 0) {
    watch_log_.push_back(WatchEntry{now, p.tuple});
    while (watch_log_.size() > 1000) {
      watch_log_.pop_front();
    }
    if (watch_sink_) {
      watch_sink_(now, p.tuple);
    }
  }
  if (p.is_delete) {
    Table* table = catalog_.Get(name);
    if (table == nullptr) {
      ++stats_.dead_letters;
      return;
    }
    ValueList pattern = p.tuple->fields();
    std::vector<bool> bound(pattern.size(), false);
    for (size_t i = 0; i < pattern.size() && i < 64; ++i) {
      bound[i] = (p.bound_mask >> i) & 1;
    }
    table->DeleteMatching(pattern, bound, now);
    return;
  }
  if (options_.tracing) {
    tracer_->MemoizeArrival(p.tuple, p.src_addr.empty() ? addr_ : p.src_addr,
                            p.src_tuple_id, now);
  }
  Table* table = catalog_.Get(name);
  bool is_delta = true;
  if (table != nullptr) {
    InsertOutcome outcome = table->Insert(p.tuple, now);
    is_delta = (outcome != InsertOutcome::kRefreshed);
  }
  if (is_delta) {
    DispatchEvent(p.tuple);
  }
  if (table == nullptr) {
    auto trig = triggers_.find(name);
    auto subs = subscribers_.find(name);
    bool consumed = (trig != triggers_.end() && !trig->second.empty()) ||
                    (subs != subscribers_.end() && !subs->second.empty());
    if (!consumed) {
      ++stats_.dead_letters;
    }
  }
}

void Node::DispatchEvent(const TupleRef& tuple) {
  auto it = triggers_.find(tuple->name());
  if (it != triggers_.end()) {
    for (Strand* strand : it->second) {
      if (low_priority_strands_.count(strand) > 0) {
        if (AdmitLow()) {
          Pending p;
          p.kind = Pending::Kind::kLowTrigger;
          p.strand = strand;
          p.tuple = tuple;
          low_queue_.push_back(std::move(p));
          NoteQueueDepth();
        }
        continue;
      }
      TriggerStrand(strand, tuple);
    }
  }
  auto subs = subscribers_.find(tuple->name());
  if (subs != subscribers_.end()) {
    for (const auto& fn : subs->second) {
      fn(tuple);
    }
  }
}

}  // namespace p2
