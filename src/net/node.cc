#include "src/net/node.h"

#include <algorithm>

#include "src/net/network.h"
#include "src/planner/planner.h"
#include "src/trace/introspect.h"

namespace p2 {

BusyTimer::BusyTimer(NodeStats* stats) : stats_(stats), start_ns_(MonotonicNs()) {}

BusyTimer::~BusyTimer() { stats_->busy_ns += MonotonicNs() - start_ns_; }

Node::Node(std::string addr, Network* network, NodeOptions options)
    : addr_(std::move(addr)), network_(network), options_(options), rng_(options.seed) {
  tracer_ = std::make_unique<Tracer>(addr_, &store_, options_.tracer_records_per_rule);
  InstallBuiltinTables();
  tracer_->set_enabled(options_.tracing);
  if (options_.metrics) {
    trigger_hist_ = metrics_.GetHistogram("strand_trigger_ns");
  }
  if (options_.introspection) {
    InstallIntrospectionTables(this);
  }
  ScheduleSweep();
}

Node::~Node() = default;

double Node::Now() const { return network_->Now(); }

void Node::InstallBuiltinTables() {
  TableSpec rule_exec;
  rule_exec.name = "ruleExec";
  rule_exec.lifetime_secs = options_.rule_exec_lifetime;
  rule_exec.max_size = options_.rule_exec_max;
  // Whole-tuple key: every distinct execution record is its own row.
  catalog_.CreateTable(rule_exec);

  TableSpec tuple_table;
  tuple_table.name = "tupleTable";
  tuple_table.lifetime_secs = options_.rule_exec_lifetime;
  tuple_table.max_size = options_.rule_exec_max;
  tuple_table.key_fields = {1};  // TupleID
  catalog_.CreateTable(tuple_table);

  tracer_->AttachTables(catalog_.Get("ruleExec"), catalog_.Get("tupleTable"));
}

bool Node::LoadProgram(const std::string& source, const ParamMap& params,
                       std::string* error) {
  return LoadProgramInternal(source, params, /*low_priority=*/false, error);
}

bool Node::LoadProgramLowPriority(const std::string& source, const ParamMap& params,
                                  std::string* error) {
  return LoadProgramInternal(source, params, /*low_priority=*/true, error);
}

bool Node::LoadProgramInternal(const std::string& source, const ParamMap& params,
                               bool low_priority, std::string* error) {
  auto program = std::make_unique<Program>();
  if (!ParseProgram(source, params, program.get(), error)) {
    return false;
  }
  // Create declared tables first so the planner can classify predicates.
  for (const TableSpec& spec : program->materializations) {
    catalog_.CreateTable(spec);
  }
  // Reject duplicate rule ids: ruleExec provenance keys on them.
  for (const Rule& rule : program->rules) {
    for (const Rule* prior : loaded_rules_) {
      if (prior->id == rule.id) {
        *error = "duplicate rule id: " + rule.id;
        return false;
      }
    }
  }
  PlanResult plan;
  if (!PlanProgram(*program, this, &plan, error)) {
    return false;
  }
  // Install.
  LoadedProgram loaded;
  loaded.id = next_program_id_++;
  loaded.low_priority = low_priority;
  for (const Rule& rule : program->rules) {
    loaded_rules_.push_back(&rule);
  }
  for (auto& strand : plan.strands) {
    loaded.strands.push_back(strand.get());
    if (low_priority) {
      low_priority_strands_.insert(strand.get());
    }
    RegisterStrand(std::move(strand));
  }
  for (auto& agg : plan.agg_rules) {
    loaded.aggs.push_back(agg.get());
    ContinuousAggRule* raw = agg.get();
    RegisterAggRule(std::move(agg));
    if (low_priority) {
      low_priority_aggs_.insert(agg_ids_[raw]);
    }
  }
  for (const PlanResult::PeriodicInstall& p : plan.periodics) {
    RegisterPeriodic(p.strand, p.period);
  }
  for (const std::string& watched_name : program->watches) {
    watched_.insert(watched_name);
  }
  loaded.program = std::move(program);
  programs_.push_back(std::move(loaded));
  if (options_.introspection) {
    PublishStaticIntrospection(this);
  }
  return true;
}

bool Node::UnloadProgram(uint64_t program_id) {
  LoadedProgram* found = nullptr;
  for (LoadedProgram& lp : programs_) {
    if (lp.id == program_id && !lp.unloaded) {
      found = &lp;
      break;
    }
  }
  if (found == nullptr) {
    return false;
  }
  found->unloaded = true;
  for (Strand* strand : found->strands) {
    inactive_strands_.insert(strand);
    low_priority_strands_.erase(strand);
    auto it = triggers_.find(strand->trigger_name());
    if (it != triggers_.end()) {
      auto& vec = it->second;
      vec.erase(std::remove(vec.begin(), vec.end(), strand), vec.end());
    }
    strand_ptrs_.erase(std::remove(strand_ptrs_.begin(), strand_ptrs_.end(), strand),
                       strand_ptrs_.end());
  }
  for (ContinuousAggRule* agg : found->aggs) {
    auto it = agg_ids_.find(agg);
    if (it != agg_ids_.end()) {
      low_priority_aggs_.erase(it->second);
      agg_by_id_.erase(it->second);
      agg_ids_.erase(it);
    }
  }
  // Free the rule ids and drop introspection rows and rule metrics. The unloaded
  // strands are inert (they can never trigger again), so invalidating their
  // RuleMetrics handles is safe.
  Table* sys_rule = catalog_.Get("sysRule");
  Table* sys_rule_stat = catalog_.Get("sysRuleStat");
  for (const Rule& rule : found->program->rules) {
    loaded_rules_.erase(
        std::remove(loaded_rules_.begin(), loaded_rules_.end(), &rule),
        loaded_rules_.end());
    if (sys_rule != nullptr) {
      sys_rule->DeleteMatching({Value::Str(addr_), Value::Str(rule.id)}, {true, true},
                               Now());
    }
    if (sys_rule_stat != nullptr) {
      sys_rule_stat->DeleteMatching({Value::Str(addr_), Value::Str(rule.id)},
                                    {true, true}, Now());
    }
    metrics_.DropRuleMetrics(rule.id);
  }
  return true;
}

bool Node::LoadProgram(const std::string& source, std::string* error) {
  return LoadProgram(source, ParamMap(), error);
}

void Node::RegisterStrand(std::unique_ptr<Strand> strand) {
  Strand* raw = strand.get();
  strands_.push_back(std::move(strand));
  strand_ptrs_.push_back(raw);
  triggers_[raw->trigger_name()].push_back(raw);
  if (options_.metrics) {
    raw->set_metrics(metrics_.GetRuleMetrics(raw->rule_id()));
  }
}

void Node::RegisterAggRule(std::unique_ptr<ContinuousAggRule> rule) {
  ContinuousAggRule* raw = rule.get();
  if (options_.metrics) {
    raw->set_metrics(metrics_.GetRuleMetrics(raw->rule_id()));
  }
  agg_rules_.push_back(std::move(rule));
  uint64_t agg_id = next_agg_id_++;
  agg_by_id_[agg_id] = raw;
  agg_ids_[raw] = agg_id;
  for (const std::string& table_name : raw->BodyTableNames()) {
    Table* table = catalog_.Get(table_name);
    if (table != nullptr) {
      // Indirect through the id so the listener degrades to a no-op if the rule's
      // program is later unloaded.
      table->AddListener([this, agg_id](TableChange, const TupleRef&) {
        auto it = agg_by_id_.find(agg_id);
        if (it != agg_by_id_.end()) {
          MarkAggDirty(it->second);
        }
      });
    }
  }
  // Evaluate once at install so aggregates over pre-existing state appear.
  MarkAggDirty(raw);
}

void Node::MarkAggDirty(ContinuousAggRule* rule) {
  if (rule->dirty) {
    return;
  }
  rule->dirty = true;
  Pending p;
  p.kind = Pending::Kind::kAggReeval;
  p.agg_id = agg_ids_[rule];
  if (low_priority_aggs_.count(p.agg_id) > 0) {
    low_queue_.push_back(std::move(p));
  } else {
    queue_.push_back(std::move(p));
  }
  NoteQueueDepth();
}

void Node::TriggerStrand(Strand* strand, const TupleRef& event) {
  ++stats_.strand_triggers;
  RuleMetrics* m = strand->metrics();
  if (m == nullptr) {
    strand->Trigger(event);
    return;
  }
  // Head emissions route synchronously (RouteTuple bumps tuples_emitted before
  // enqueueing), so the delta over the Trigger call is exactly this rule's output.
  uint64_t emitted_before = stats_.tuples_emitted;
  uint64_t start_ns = MonotonicNs();
  strand->Trigger(event);
  uint64_t elapsed = MonotonicNs() - start_ns;
  ++m->execs;
  m->busy_ns += elapsed;
  m->emits += stats_.tuples_emitted - emitted_before;
  trigger_hist_->Observe(elapsed);
}

void Node::RegisterPeriodic(Strand* strand, double period) {
  SchedulePeriodic(strand, period);
}

void Node::SchedulePeriodic(Strand* strand, double period) {
  network_->scheduler().After(period, [this, strand, period] {
    if (inactive_strands_.count(strand) > 0) {
      return;  // program unloaded: the timer chain ends here
    }
    if (up_) {
      BusyTimer busy(&stats_);
      ValueList fields;
      fields.push_back(Value::Str(addr_));
      fields.push_back(Value::Id(rng_.Next()));
      fields.push_back(Value::Double(period));
      TupleRef tick = Tuple::Make("periodic", std::move(fields));
      if (low_priority_strands_.count(strand) > 0) {
        Pending p;
        p.kind = Pending::Kind::kLowTrigger;
        p.strand = strand;
        p.tuple = tick;
        low_queue_.push_back(std::move(p));
        NoteQueueDepth();
      } else {
        TriggerStrand(strand, tick);
      }
      Drain();
    }
    SchedulePeriodic(strand, period);
  });
}

void Node::ScheduleSweep() {
  network_->scheduler().After(options_.sweep_interval, [this] {
    Sweep();
    ScheduleSweep();
  });
}

void Node::Sweep() {
  if (!up_) {
    return;
  }
  BusyTimer busy(&stats_);
  double now = Now();
  size_t expired = 0;
  for (Table* table : catalog_.AllTables()) {
    expired += table->ExpireStale(now);
  }
  stats_.tuples_expired += expired;
  if (options_.introspection) {
    RefreshTableIntrospection(this);
    RefreshStatIntrospection(this);
  }
  if (options_.metrics && network_->metrics_sink() != nullptr) {
    network_->metrics_sink()->Write(SnapshotNodeMetrics(this));
  }
  Drain();
}

void Node::InjectEvent(const TupleRef& tuple) {
  network_->scheduler().At(Now(), [this, tuple] {
    if (!up_) {
      return;
    }
    BusyTimer busy(&stats_);
    RouteTuple(tuple, /*is_delete=*/false, ~0ULL);
    Drain();
  });
}

void Node::SetWatchSink(std::function<void(double, const TupleRef&)> sink) {
  watch_sink_ = std::move(sink);
}

void Node::SubscribeEvent(const std::string& name,
                          std::function<void(const TupleRef&)> fn) {
  subscribers_[name].push_back(std::move(fn));
}

std::vector<TupleRef> Node::TableContents(const std::string& name) {
  Table* table = catalog_.Get(name);
  if (table == nullptr) {
    return {};
  }
  return table->Scan(Now());
}

void Node::RouteTuple(const TupleRef& tuple, bool is_delete, uint64_t bound_mask) {
  ++stats_.tuples_emitted;
  const std::string& dst = tuple->LocationSpecifier();
  if (dst.empty()) {
    ++stats_.dead_letters;
    return;
  }
  if (dst == addr_) {
    Pending p;
    p.kind = Pending::Kind::kDeliver;
    p.tuple = tuple;
    p.src_addr = addr_;
    p.src_tuple_id = 0;
    p.is_delete = is_delete;
    p.bound_mask = bound_mask;
    if (options_.local_queue_delay > 0) {
      network_->scheduler().After(options_.local_queue_delay,
                                  [this, p = std::move(p)]() mutable {
                                    if (!up_) {
                                      return;
                                    }
                                    BusyTimer busy(&stats_);
                                    queue_.push_back(std::move(p));
                                    NoteQueueDepth();
                                    Drain();
                                  });
    } else {
      queue_.push_back(std::move(p));
      NoteQueueDepth();
    }
    return;
  }
  WireEnvelope env;
  env.src_addr = addr_;
  env.src_tuple_id = options_.tracing ? store_.Intern(tuple) : 0;
  env.is_delete = is_delete;
  env.bound_mask = bound_mask;
  env.tuple = tuple;
  ++stats_.msgs_sent;
  stats_.bytes_sent += network_->SendReturningSize(addr_, dst, env);
}

void Node::ReceiveBytes(const std::string& bytes) {
  if (!up_) {
    return;  // fail-stop: a crashed node drops everything on the floor
  }
  BusyTimer busy(&stats_);
  ++stats_.msgs_received;
  stats_.bytes_received += bytes.size();
  WireEnvelope env;
  if (!DecodeEnvelope(bytes, &env)) {
    ++stats_.decode_errors;
    return;
  }
  Pending p;
  p.kind = Pending::Kind::kDeliver;
  p.tuple = env.tuple;
  p.src_addr = env.src_addr;
  p.src_tuple_id = env.src_tuple_id;
  p.is_delete = env.is_delete;
  p.bound_mask = env.bound_mask;
  queue_.push_back(std::move(p));
  NoteQueueDepth();
  Drain();
}

void Node::Drain() {
  if (draining_) {
    return;
  }
  draining_ = true;
  while (!queue_.empty() || !low_queue_.empty()) {
    // Low-priority work runs only when the primary queue has quiesced, so a
    // monitoring rule observes the state *after* an event's full derivation cascade.
    bool from_low = queue_.empty();
    std::deque<Pending>& source = from_low ? low_queue_ : queue_;
    Pending p = std::move(source.front());
    source.pop_front();
    if (p.kind == Pending::Kind::kAggReeval) {
      auto it = agg_by_id_.find(p.agg_id);
      if (it != agg_by_id_.end()) {
        ContinuousAggRule* agg = it->second;
        agg->dirty = false;
        RuleMetrics* m = agg->metrics();
        if (m == nullptr) {
          agg->Reevaluate();
        } else {
          uint64_t emitted_before = stats_.tuples_emitted;
          uint64_t start_ns = MonotonicNs();
          agg->Reevaluate();
          uint64_t elapsed = MonotonicNs() - start_ns;
          ++m->execs;
          m->busy_ns += elapsed;
          m->emits += stats_.tuples_emitted - emitted_before;
        }
      }
      continue;
    }
    if (p.kind == Pending::Kind::kLowTrigger) {
      if (inactive_strands_.count(p.strand) == 0) {
        TriggerStrand(p.strand, p.tuple);
      }
      continue;
    }
    ProcessDelivery(p);
  }
  draining_ = false;
}

void Node::ProcessDelivery(const Pending& p) {
  ++stats_.local_deliveries;
  const std::string& name = p.tuple->name();
  double now = Now();
  if (watched_.count(name) > 0) {
    watch_log_.push_back(WatchEntry{now, p.tuple});
    while (watch_log_.size() > 1000) {
      watch_log_.pop_front();
    }
    if (watch_sink_) {
      watch_sink_(now, p.tuple);
    }
  }
  if (p.is_delete) {
    Table* table = catalog_.Get(name);
    if (table == nullptr) {
      ++stats_.dead_letters;
      return;
    }
    std::vector<Value> pattern = p.tuple->fields();
    std::vector<bool> bound(pattern.size(), false);
    for (size_t i = 0; i < pattern.size() && i < 64; ++i) {
      bound[i] = (p.bound_mask >> i) & 1;
    }
    table->DeleteMatching(pattern, bound, now);
    return;
  }
  if (options_.tracing) {
    tracer_->MemoizeArrival(p.tuple, p.src_addr.empty() ? addr_ : p.src_addr,
                            p.src_tuple_id, now);
  }
  Table* table = catalog_.Get(name);
  bool is_delta = true;
  if (table != nullptr) {
    InsertOutcome outcome = table->Insert(p.tuple, now);
    is_delta = (outcome != InsertOutcome::kRefreshed);
  }
  if (is_delta) {
    DispatchEvent(p.tuple);
  }
  if (table == nullptr) {
    auto trig = triggers_.find(name);
    auto subs = subscribers_.find(name);
    bool consumed = (trig != triggers_.end() && !trig->second.empty()) ||
                    (subs != subscribers_.end() && !subs->second.empty());
    if (!consumed) {
      ++stats_.dead_letters;
    }
  }
}

void Node::DispatchEvent(const TupleRef& tuple) {
  auto it = triggers_.find(tuple->name());
  if (it != triggers_.end()) {
    for (Strand* strand : it->second) {
      if (low_priority_strands_.count(strand) > 0) {
        Pending p;
        p.kind = Pending::Kind::kLowTrigger;
        p.strand = strand;
        p.tuple = tuple;
        low_queue_.push_back(std::move(p));
        NoteQueueDepth();
        continue;
      }
      TriggerStrand(strand, tuple);
    }
  }
  auto subs = subscribers_.find(tuple->name());
  if (subs != subscribers_.end()) {
    for (const auto& fn : subs->second) {
      fn(tuple);
    }
  }
}

}  // namespace p2
