// olgrun: command-line runner for OverLog deployments on the simulated network.
//
//   olgrun [--metrics-out <path>] <scenario-file>   run a scenario script
//   olgrun --chord-program                          print the built-in Chord program
//
// --metrics-out streams one telemetry snapshot per node per soft-state sweep to
// <path> (format by extension: ".csv" -> CSV, anything else -> JSON Lines); the
// scenario-file directive `metrics <path>` does the same thing from inside a script.
// Example scenarios live in examples/scenarios/; docs/OBSERVABILITY.md documents the
// snapshot schema.

#include <cstdio>
#include <cstring>
#include <string>

#include "src/chord/chord.h"
#include "src/tools/scenario.h"

namespace {

int Usage(const char* prog) {
  fprintf(stderr,
          "usage: %s [--metrics-out <path>] <scenario-file>\n"
          "       %s --chord-program\n",
          prog, prog);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string metrics_out;
  std::string scenario;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--chord-program") == 0) {
      fputs(p2::ChordProgram().c_str(), stdout);
      return 0;
    }
    if (std::strcmp(arg, "--metrics-out") == 0) {
      if (i + 1 >= argc) {
        return Usage(argv[0]);
      }
      metrics_out = argv[++i];
      continue;
    }
    if (std::strncmp(arg, "--metrics-out=", 14) == 0) {
      metrics_out = arg + 14;
      continue;
    }
    if (!scenario.empty()) {
      return Usage(argv[0]);
    }
    scenario = arg;
  }
  if (scenario.empty()) {
    return Usage(argv[0]);
  }
  std::string error;
  if (!p2::RunScenarioFile(scenario, &error, metrics_out)) {
    fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  return 0;
}
