// olgrun: command-line runner for OverLog deployments on the simulated network —
// or over real UDP sockets with --backend=udp.
//
//   olgrun [--backend sim|udp] [--metrics-out <path>]
//          [--forensics-query <addr|all> <key> <t1> <t2>]
//          [--forensics-out <path>] <scenario-file>    run a scenario script
//   olgrun --chord-program                             print the built-in Chord program
//
// --backend=udp runs the same scenario file unchanged over loopback sockets
// (docs/DEPLOYMENT.md): nodes keep their logical names, `run <secs>` advances
// wall-clock seconds, and sim-only directives (linkfault/partition/heal,
// shards>1) become errors. Equivalent to a `net backend=udp` line in the script.
//
// --metrics-out streams one telemetry snapshot per node per soft-state sweep to
// <path> (format by extension: ".csv" -> CSV, anything else -> JSON Lines); the
// scenario-file directive `metrics <path>` does the same thing from inside a script.
//
// --forensics-query runs a time-travel causal replay after the script finishes:
// chains for tuples matching <key> ("*", "name", or "name/firstarg") derived on
// <addr|all> during [t1, t2], cross-node hops included (docs/OBSERVABILITY.md). The
// JSONL chain export goes to --forensics-out, or stdout when the flag is absent.
// The scenario directive `forensics query ...` is the in-script equivalent.
//
// Example scenarios live in examples/scenarios/; docs/OBSERVABILITY.md documents the
// snapshot schema and the chain export format.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/chord/chord.h"
#include "src/tools/scenario.h"

namespace {

int Usage(const char* prog) {
  fprintf(stderr,
          "usage: %s [--backend sim|udp] [--metrics-out <path>] "
          "[--forensics-query <addr|all> <key> <t1> <t2>] [--forensics-out <path>] "
          "<scenario-file>\n"
          "       %s --chord-program\n",
          prog, prog);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string metrics_out;
  std::string backend;
  std::string scenario;
  std::string query_addr;
  std::string query_key;
  double query_from = 0;
  double query_to = 0;
  bool have_query = false;
  std::string forensics_out;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--chord-program") == 0) {
      fputs(p2::ChordProgram().c_str(), stdout);
      return 0;
    }
    if (std::strcmp(arg, "--backend") == 0) {
      if (i + 1 >= argc) {
        return Usage(argv[0]);
      }
      backend = argv[++i];
      continue;
    }
    if (std::strncmp(arg, "--backend=", 10) == 0) {
      backend = arg + 10;
      continue;
    }
    if (std::strcmp(arg, "--metrics-out") == 0) {
      if (i + 1 >= argc) {
        return Usage(argv[0]);
      }
      metrics_out = argv[++i];
      continue;
    }
    if (std::strncmp(arg, "--metrics-out=", 14) == 0) {
      metrics_out = arg + 14;
      continue;
    }
    if (std::strcmp(arg, "--forensics-query") == 0) {
      if (i + 4 >= argc) {
        return Usage(argv[0]);
      }
      query_addr = argv[++i];
      query_key = argv[++i];
      char* end = nullptr;
      query_from = std::strtod(argv[++i], &end);
      if (end == argv[i] || *end != '\0') {
        return Usage(argv[0]);
      }
      query_to = std::strtod(argv[++i], &end);
      if (end == argv[i] || *end != '\0') {
        return Usage(argv[0]);
      }
      have_query = true;
      continue;
    }
    if (std::strcmp(arg, "--forensics-out") == 0) {
      if (i + 1 >= argc) {
        return Usage(argv[0]);
      }
      forensics_out = argv[++i];
      continue;
    }
    if (std::strncmp(arg, "--forensics-out=", 16) == 0) {
      forensics_out = arg + 16;
      continue;
    }
    if (!scenario.empty()) {
      return Usage(argv[0]);
    }
    scenario = arg;
  }
  if (scenario.empty()) {
    return Usage(argv[0]);
  }
  std::ifstream f(scenario);
  if (!f) {
    fprintf(stderr, "error: cannot open %s\n", scenario.c_str());
    return 1;
  }
  std::stringstream ss;
  ss << f.rdbuf();
  // The runner stays alive past the script so post-run forensics queries can read
  // the fleet's stores.
  p2::ScenarioRunner runner;
  std::string error;
  if (!backend.empty()) {
    if (backend == "sim") {
      runner.SetBackend(p2::FleetBackend::kSim);
    } else if (backend == "udp") {
      runner.SetBackend(p2::FleetBackend::kUdp);
    } else {
      fprintf(stderr, "error: --backend must be sim|udp, got '%s'\n",
              backend.c_str());
      return 2;
    }
  }
  if (!metrics_out.empty() && !runner.SetMetricsOut(metrics_out, &error)) {
    fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  if (!runner.RunScript(ss.str(), &error)) {
    fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  if (have_query) {
    p2::Fleet* fleet = runner.fleet();
    if (fleet == nullptr) {
      fprintf(stderr, "error: --forensics-query needs a scenario that creates nodes\n");
      return 1;
    }
    std::vector<std::string> addrs;
    if (query_addr == "all") {
      for (p2::NodeHandle& h : fleet->Handles()) {
        addrs.push_back(h.addr());
      }
    } else {
      if (!fleet->HasNode(query_addr)) {
        fprintf(stderr, "error: unknown node: %s\n", query_addr.c_str());
        return 1;
      }
      addrs.push_back(query_addr);
    }
    std::string jsonl;
    size_t total = 0;
    for (const std::string& addr : addrs) {
      std::vector<p2::CausalChain> chains =
          fleet->ReplayChains(addr, query_key, query_from, query_to);
      total += chains.size();
      jsonl += p2::ExportChainsJsonl(chains);
    }
    if (forensics_out.empty()) {
      fputs(jsonl.c_str(), stdout);
    } else {
      std::ofstream out(forensics_out, std::ios::out | std::ios::trunc);
      if (!out) {
        fprintf(stderr, "error: cannot open %s\n", forensics_out.c_str());
        return 1;
      }
      out << jsonl;
      fprintf(stderr, "forensics: %zu chains -> %s\n", total, forensics_out.c_str());
    }
  }
  return 0;
}
