// olgrun: command-line runner for OverLog deployments on the simulated network.
//
//   olgrun <scenario-file>      run a scenario script (see src/tools/scenario.h)
//   olgrun --chord-program      print the built-in Chord OverLog program and exit
//
// Example scenarios live in examples/scenarios/.

#include <cstdio>
#include <cstring>

#include "src/chord/chord.h"
#include "src/tools/scenario.h"

int main(int argc, char** argv) {
  if (argc == 2 && std::strcmp(argv[1], "--chord-program") == 0) {
    fputs(p2::ChordProgram().c_str(), stdout);
    return 0;
  }
  if (argc != 2) {
    fprintf(stderr,
            "usage: %s <scenario-file>\n"
            "       %s --chord-program\n",
            argv[0], argv[0]);
    return 2;
  }
  std::string error;
  if (!p2::RunScenarioFile(argv[1], &error)) {
    fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  return 0;
}
