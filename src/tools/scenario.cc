#include "src/tools/scenario.h"

#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

#include "src/apps/dht.h"
#include "src/chord/chord.h"
#include "src/common/strings.h"
#include "src/overlays/flood.h"

namespace p2 {

namespace {

// Splits a command line into whitespace-separated words, keeping "quoted strings" and
// parenthesized tuple literals intact as single words.
std::vector<std::string> Words(const std::string& line) {
  std::vector<std::string> out;
  std::string current;
  int depth = 0;
  bool in_string = false;
  for (char c : line) {
    if (in_string) {
      current += c;
      if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') {
      current += c;
      in_string = true;
      continue;
    }
    if (c == '(') {
      ++depth;
    } else if (c == ')') {
      --depth;
    }
    if (std::isspace(static_cast<unsigned char>(c)) && depth == 0) {
      if (!current.empty()) {
        out.push_back(current);
        current.clear();
      }
    } else {
      current += c;
    }
  }
  if (!current.empty()) {
    out.push_back(current);
  }
  return out;
}

// Parses `k=v`; returns false if `word` has no '='.
bool SplitKv(const std::string& word, std::string* k, std::string* v) {
  size_t eq = word.find('=');
  if (eq == std::string::npos) {
    return false;
  }
  *k = word.substr(0, eq);
  *v = word.substr(eq + 1);
  return true;
}

bool IsNumber(const std::string& s) {
  if (s.empty()) {
    return false;
  }
  char* end = nullptr;
  std::strtod(s.c_str(), &end);
  return end == s.c_str() + s.size();
}

// Parses one value of a tuple literal.
bool ParseLiteralValue(const std::string& text, Value* out, std::string* error) {
  if (text.empty()) {
    *error = "empty value";
    return false;
  }
  if (text.front() == '"') {
    if (text.size() < 2 || text.back() != '"') {
      *error = "unterminated string: " + text;
      return false;
    }
    *out = Value::Str(text.substr(1, text.size() - 2));
    return true;
  }
  if (StartsWith(text, "id:")) {
    *out = Value::Id(std::strtoull(text.c_str() + 3, nullptr, 10));
    return true;
  }
  if (text == "true") {
    *out = Value::Bool(true);
    return true;
  }
  if (text == "false") {
    *out = Value::Bool(false);
    return true;
  }
  if (IsNumber(text)) {
    if (text.find('.') == std::string::npos && text.find('e') == std::string::npos) {
      *out = Value::Int(std::strtoll(text.c_str(), nullptr, 10));
    } else {
      *out = Value::Double(std::strtod(text.c_str(), nullptr));
    }
    return true;
  }
  // Bare identifier: a string (node addresses, labels).
  *out = Value::Str(text);
  return true;
}

// Parses `name(v1, v2, ...)`.
bool ParseTupleLiteral(const std::string& text, TupleRef* out, std::string* error) {
  size_t open = text.find('(');
  if (open == std::string::npos || text.back() != ')') {
    *error = "expected name(v1, ...): " + text;
    return false;
  }
  std::string name = text.substr(0, open);
  std::string args = text.substr(open + 1, text.size() - open - 2);
  ValueList fields;
  std::string current;
  int depth = 0;
  bool in_string = false;
  auto flush = [&]() -> bool {
    // Trim whitespace.
    size_t b = current.find_first_not_of(" \t");
    size_t e = current.find_last_not_of(" \t");
    if (b == std::string::npos) {
      return current.empty();
    }
    Value v;
    if (!ParseLiteralValue(current.substr(b, e - b + 1), &v, error)) {
      return false;
    }
    fields.push_back(std::move(v));
    current.clear();
    return true;
  };
  for (char c : args) {
    if (in_string) {
      current += c;
      if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
      current += c;
      continue;
    }
    if (c == ',' && depth == 0) {
      if (!flush()) {
        return false;
      }
      continue;
    }
    if (c == '(') {
      ++depth;
    } else if (c == ')') {
      --depth;
    }
    current += c;
  }
  if (!flush()) {
    return false;
  }
  *out = Tuple::Make(std::move(name), std::move(fields));
  return true;
}

}  // namespace

struct ScenarioRunner::Impl {
  std::function<void(const std::string&)> out;
  NetworkConfig net_config;
  uint64_t node_seed = 1000;
  // Telemetry export: the sink is owned here (it must outlive the network, which
  // holds a raw pointer); a path requested before the network exists is held
  // pending and attached when the first node creates it.
  std::unique_ptr<MetricsSink> metrics_sink;
  std::string pending_metrics_path;

  void Print(const std::string& s) {
    if (out) {
      out(s);
    } else {
      fputs(s.c_str(), stdout);
    }
  }
};

ScenarioRunner::ScenarioRunner(std::function<void(const std::string&)> out)
    : impl_(std::make_unique<Impl>()) {
  impl_->out = std::move(out);
}

ScenarioRunner::~ScenarioRunner() = default;

bool ScenarioRunner::RunScript(const std::string& script, std::string* error) {
  std::istringstream in(script);
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::string line_error;
    if (!RunLine(line, &line_error)) {
      *error = StrFormat("line %d: %s", line_no, line_error.c_str());
      return false;
    }
  }
  return true;
}

bool ScenarioRunner::RunLine(const std::string& raw, std::string* error) {
  std::string line = raw;
  size_t hash = line.find('#');
  if (hash != std::string::npos) {
    line = line.substr(0, hash);
  }
  std::vector<std::string> words = Words(line);
  if (words.empty()) {
    return true;
  }
  const std::string& cmd = words[0];

  auto need_network = [&]() -> bool {
    if (network_ == nullptr) {
      *error = "no nodes created yet";
      return false;
    }
    return true;
  };
  // Resolves <addr|all> into a node list.
  auto resolve = [&](const std::string& which, std::vector<Node*>* nodes) -> bool {
    if (!need_network()) {
      return false;
    }
    if (which == "all") {
      *nodes = network_->AllNodes();
      return true;
    }
    Node* node = network_->GetNode(which);
    if (node == nullptr) {
      *error = "unknown node: " + which;
      return false;
    }
    nodes->push_back(node);
    return true;
  };

  if (cmd == "net") {
    if (network_ != nullptr) {
      *error = "net must precede the first node";
      return false;
    }
    for (size_t i = 1; i < words.size(); ++i) {
      std::string k;
      std::string v;
      if (!SplitKv(words[i], &k, &v)) {
        *error = "expected k=v: " + words[i];
        return false;
      }
      double d = std::strtod(v.c_str(), nullptr);
      if (k == "latency") {
        impl_->net_config.latency = d;
      } else if (k == "jitter") {
        impl_->net_config.jitter = d;
      } else if (k == "loss") {
        impl_->net_config.loss_rate = d;
      } else if (k == "seed") {
        impl_->net_config.seed = static_cast<uint64_t>(d);
      } else {
        *error = "unknown net option: " + k;
        return false;
      }
    }
    return true;
  }

  if (cmd == "metrics") {
    if (words.size() != 2) {
      *error = "metrics <path>";
      return false;
    }
    return SetMetricsOut(words[1], error);
  }

  if (cmd == "node") {
    if (words.size() < 2) {
      *error = "node <addr> [trace] [seed=N]";
      return false;
    }
    if (network_ == nullptr) {
      network_ = std::make_unique<Network>(impl_->net_config);
      if (!impl_->pending_metrics_path.empty()) {
        std::string pending = impl_->pending_metrics_path;
        impl_->pending_metrics_path.clear();
        if (!SetMetricsOut(pending, error)) {
          return false;
        }
      }
    }
    NodeOptions opts;
    opts.seed = impl_->node_seed++;
    for (size_t i = 2; i < words.size(); ++i) {
      std::string k;
      std::string v;
      if (words[i] == "trace") {
        opts.tracing = true;
      } else if (SplitKv(words[i], &k, &v) && k == "seed") {
        opts.seed = std::strtoull(v.c_str(), nullptr, 10);
      } else {
        *error = "unknown node option: " + words[i];
        return false;
      }
    }
    network_->AddNode(words[1], opts);
    return true;
  }

  if (cmd == "chord") {
    if (words.size() < 2) {
      *error = "chord <addr|all> [landmark=<addr>]";
      return false;
    }
    std::vector<Node*> nodes;
    if (!resolve(words[1], &nodes)) {
      return false;
    }
    std::string landmark;
    for (size_t i = 2; i < words.size(); ++i) {
      std::string k;
      std::string v;
      if (SplitKv(words[i], &k, &v) && k == "landmark") {
        landmark = v;
      } else {
        *error = "unknown chord option: " + words[i];
        return false;
      }
    }
    for (Node* node : nodes) {
      ChordConfig cfg;
      cfg.landmark = (node->addr() == landmark) ? std::string() : landmark;
      if (landmark.empty() && node != nodes.front()) {
        cfg.landmark = nodes.front()->addr();
      }
      if (!InstallChord(node, cfg, error)) {
        return false;
      }
    }
    return true;
  }

  if (cmd == "dht" || cmd == "flood") {
    if (words.size() != 2) {
      *error = cmd + " <addr|all>";
      return false;
    }
    std::vector<Node*> nodes;
    if (!resolve(words[1], &nodes)) {
      return false;
    }
    for (Node* node : nodes) {
      bool ok = cmd == "dht" ? InstallDht(node, DhtConfig(), error)
                             : InstallFlood(node, FloodConfig(), error);
      if (!ok) {
        return false;
      }
    }
    return true;
  }

  if (cmd == "put" || cmd == "get") {
    std::vector<Node*> nodes;
    size_t want_args = cmd == "put" ? 5u : 4u;
    if (words.size() != want_args || !resolve(words[1], &nodes)) {
      if (error->empty()) {
        *error = cmd == "put" ? "put <addr> <key> <value> <reqid>"
                              : "get <addr> <key> <reqid>";
      }
      return false;
    }
    uint64_t req = std::strtoull(words.back().c_str(), nullptr, 10);
    if (cmd == "put") {
      DhtPut(nodes[0], words[2], words[3], req);
    } else {
      DhtGet(nodes[0], words[2], req);
    }
    return true;
  }

  if (cmd == "member") {
    std::vector<Node*> nodes;
    if (words.size() != 3 || !resolve(words[1], &nodes)) {
      if (error->empty()) {
        *error = "member <addr> <peer>";
      }
      return false;
    }
    AddMember(nodes[0], words[2]);
    return true;
  }

  if (cmd == "publish") {
    std::vector<Node*> nodes;
    if (words.size() != 4 || !resolve(words[1], &nodes)) {
      if (error->empty()) {
        *error = "publish <addr> <rumor-id> <payload>";
      }
      return false;
    }
    PublishRumor(nodes[0], std::strtoull(words[2].c_str(), nullptr, 10), words[3]);
    return true;
  }

  if (cmd == "program" || cmd == "inline") {
    if (words.size() < 3) {
      *error = cmd + " <addr|all> <file or text> ...";
      return false;
    }
    std::vector<Node*> nodes;
    if (!resolve(words[1], &nodes)) {
      return false;
    }
    std::string source;
    ParamMap params;
    if (cmd == "program") {
      std::ifstream f(words[2]);
      if (!f) {
        *error = "cannot open " + words[2];
        return false;
      }
      std::stringstream ss;
      ss << f.rdbuf();
      source = ss.str();
      for (size_t i = 3; i < words.size(); ++i) {
        std::string k;
        std::string v;
        if (!SplitKv(words[i], &k, &v)) {
          *error = "expected k=v param: " + words[i];
          return false;
        }
        Value value;
        if (!ParseLiteralValue(v, &value, error)) {
          return false;
        }
        params[k] = value;
      }
    } else {
      // Re-join everything after the node selector as OverLog text.
      size_t pos = raw.find(words[1]);
      source = raw.substr(pos + words[1].size());
    }
    for (Node* node : nodes) {
      if (!node->LoadProgram(source, params, error)) {
        return false;
      }
    }
    return true;
  }

  if (cmd == "inject") {
    size_t arg = 1;
    double at = -1;
    std::string k;
    std::string v;
    if (arg < words.size() && SplitKv(words[arg], &k, &v) && k == "t") {
      at = std::strtod(v.c_str(), nullptr);
      ++arg;
    }
    if (arg + 1 >= words.size()) {
      *error = "inject [t=<secs>] <addr> <tuple literal>";
      return false;
    }
    std::vector<Node*> nodes;
    if (!resolve(words[arg], &nodes)) {
      return false;
    }
    TupleRef tuple;
    if (!ParseTupleLiteral(words[arg + 1], &tuple, error)) {
      return false;
    }
    for (Node* node : nodes) {
      if (at < 0) {
        node->InjectEvent(tuple);
      } else {
        network_->scheduler().At(at, [node, tuple] { node->InjectEvent(tuple); });
      }
    }
    return true;
  }

  if (cmd == "run") {
    if (words.size() != 2 || !need_network()) {
      if (*error == "") {
        *error = "run <secs>";
      }
      return false;
    }
    network_->RunFor(std::strtod(words[1].c_str(), nullptr));
    return true;
  }

  if (cmd == "crash" || cmd == "revive" || cmd == "recover") {
    std::vector<Node*> nodes;
    double at = -1;
    if (words.size() < 2 || words.size() > 3 || !resolve(words[1], &nodes)) {
      if (error->empty()) {
        *error = cmd + " <addr|all> [at=<secs>]";
      }
      return false;
    }
    if (words.size() == 3) {
      std::string k;
      std::string v;
      if (!SplitKv(words[2], &k, &v) || k != "at") {
        *error = cmd + " <addr|all> [at=<secs>]";
        return false;
      }
      at = std::strtod(v.c_str(), nullptr);
    }
    for (Node* node : nodes) {
      auto apply = [cmd, node] {
        if (cmd == "crash") {
          node->Crash();
        } else if (cmd == "revive") {
          node->Revive();
        } else {
          node->Recover();
        }
      };
      if (at < 0) {
        apply();
      } else {
        network_->scheduler().At(at, apply);
      }
    }
    return true;
  }

  if (cmd == "linkfault") {
    // linkfault <src> <dst> [loss=X] [dup=X] [reorder=X] [latency=X] — no k=v
    // options clears the link's fault spec.
    if (words.size() < 3 || !need_network()) {
      if (error->empty()) {
        *error = "linkfault <src> <dst> [loss=X] [dup=X] [reorder=X] [latency=X]";
      }
      return false;
    }
    Network::LinkFault fault;
    bool any = false;
    for (size_t i = 3; i < words.size(); ++i) {
      std::string k;
      std::string v;
      if (!SplitKv(words[i], &k, &v)) {
        *error = "expected k=v: " + words[i];
        return false;
      }
      double d = std::strtod(v.c_str(), nullptr);
      if (k == "loss") {
        fault.loss = d;
      } else if (k == "dup") {
        fault.dup_rate = d;
      } else if (k == "reorder") {
        fault.reorder_rate = d;
      } else if (k == "latency") {
        fault.extra_latency = d;
      } else {
        *error = "unknown linkfault option: " + k;
        return false;
      }
      any = true;
    }
    if (any) {
      network_->SetLinkFault(words[1], words[2], fault);
    } else {
      network_->ClearLinkFault(words[1], words[2]);
    }
    return true;
  }

  if (cmd == "partition") {
    // partition <a,b,c> <d,e,f>: cuts every link between the two groups.
    if (words.size() != 3 || !need_network()) {
      if (error->empty()) {
        *error = "partition <a,b,...> <c,d,...>";
      }
      return false;
    }
    network_->Partition(Split(words[1], ','), Split(words[2], ','));
    return true;
  }

  if (cmd == "heal") {
    if (words.size() != 1 || !need_network()) {
      if (error->empty()) {
        *error = "heal";
      }
      return false;
    }
    network_->Heal();
    return true;
  }

  if (cmd == "watchprint") {
    std::vector<Node*> nodes;
    if (words.size() != 2 || !resolve(words[1], &nodes)) {
      return false;
    }
    for (Node* node : nodes) {
      Impl* impl = impl_.get();
      std::string addr = node->addr();
      node->SetWatchSink([impl, addr](double t, const TupleRef& tuple) {
        impl->Print(StrFormat("[%9.3f] %s: %s\n", t, addr.c_str(),
                              tuple->ToString().c_str()));
      });
    }
    return true;
  }

  if (cmd == "dump") {
    std::vector<Node*> nodes;
    if (words.size() != 3 || !resolve(words[1], &nodes)) {
      if (*error == "") {
        *error = "dump <addr|all> <table>";
      }
      return false;
    }
    for (Node* node : nodes) {
      std::vector<TupleRef> rows = node->TableContents(words[2]);
      impl_->Print(StrFormat("-- %s %s (%zu rows) --\n", node->addr().c_str(),
                             words[2].c_str(), rows.size()));
      for (const TupleRef& t : rows) {
        impl_->Print("  " + t->ToString() + "\n");
      }
    }
    return true;
  }

  if (cmd == "stats") {
    std::vector<Node*> nodes;
    if (words.size() != 2 || !resolve(words[1], &nodes)) {
      return false;
    }
    for (Node* node : nodes) {
      const NodeStats& s = node->stats();
      impl_->Print(StrFormat(
          "%s: sent=%llu recv=%llu triggers=%llu emitted=%llu dead=%llu busy=%.3fms\n",
          node->addr().c_str(), static_cast<unsigned long long>(s.msgs_sent),
          static_cast<unsigned long long>(s.msgs_received),
          static_cast<unsigned long long>(s.strand_triggers),
          static_cast<unsigned long long>(s.tuples_emitted),
          static_cast<unsigned long long>(s.dead_letters),
          static_cast<double>(s.busy_ns) / 1e6));
    }
    return true;
  }

  if (cmd == "expect") {
    std::vector<Node*> nodes;
    if (words.size() != 4 || !resolve(words[1], &nodes)) {
      if (*error == "") {
        *error = "expect <addr> <table> <count>";
      }
      return false;
    }
    size_t want = static_cast<size_t>(std::strtoull(words[3].c_str(), nullptr, 10));
    size_t got = nodes[0]->TableContents(words[2]).size();
    if (got != want) {
      *error = StrFormat("expect failed: %s.%s has %zu rows, wanted %zu",
                         words[1].c_str(), words[2].c_str(), got, want);
      return false;
    }
    ++expectations_passed_;
    return true;
  }

  *error = "unknown command: " + cmd;
  return false;
}

bool ScenarioRunner::SetMetricsOut(const std::string& path, std::string* error) {
  if (network_ == nullptr) {
    impl_->pending_metrics_path = path;
    return true;
  }
  std::unique_ptr<MetricsSink> sink = OpenMetricsSink(path, error);
  if (sink == nullptr) {
    return false;
  }
  impl_->metrics_sink = std::move(sink);
  network_->SetMetricsSink(impl_->metrics_sink.get());
  return true;
}

bool RunScenarioFile(const std::string& path, std::string* error,
                     const std::string& metrics_out) {
  std::ifstream f(path);
  if (!f) {
    *error = "cannot open " + path;
    return false;
  }
  std::stringstream ss;
  ss << f.rdbuf();
  ScenarioRunner runner;
  if (!metrics_out.empty() && !runner.SetMetricsOut(metrics_out, error)) {
    return false;
  }
  return runner.RunScript(ss.str(), error);
}

}  // namespace p2
