#include "src/tools/scenario.h"

#include <cctype>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <vector>

#include "src/net/udp_driver.h"

#include "src/apps/dht.h"
#include "src/chord/chord.h"
#include "src/common/strings.h"
#include "src/mon/ring_checks.h"
#include "src/mon/snapshot.h"
#include "src/overlays/flood.h"

namespace p2 {

namespace {

// Splits a command line into whitespace-separated words, keeping "quoted strings" and
// parenthesized tuple literals intact as single words.
std::vector<std::string> Words(const std::string& line) {
  std::vector<std::string> out;
  std::string current;
  int depth = 0;
  bool in_string = false;
  for (char c : line) {
    if (in_string) {
      current += c;
      if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') {
      current += c;
      in_string = true;
      continue;
    }
    if (c == '(') {
      ++depth;
    } else if (c == ')') {
      --depth;
    }
    if (std::isspace(static_cast<unsigned char>(c)) && depth == 0) {
      if (!current.empty()) {
        out.push_back(current);
        current.clear();
      }
    } else {
      current += c;
    }
  }
  if (!current.empty()) {
    out.push_back(current);
  }
  return out;
}

// Parses `k=v`; returns false if `word` has no '='.
bool SplitKv(const std::string& word, std::string* k, std::string* v) {
  size_t eq = word.find('=');
  if (eq == std::string::npos) {
    return false;
  }
  *k = word.substr(0, eq);
  *v = word.substr(eq + 1);
  return true;
}

bool IsNumber(const std::string& s) {
  if (s.empty()) {
    return false;
  }
  char* end = nullptr;
  std::strtod(s.c_str(), &end);
  return end == s.c_str() + s.size();
}

// Strict argument parsing: a malformed number (e.g. `at=1O`) must fail the line, not
// silently read as 0 — simfuzz round-trips generated scenario files through this
// parser and relies on every typo being a line-numbered error.
bool ParseDoubleArg(const std::string& text, const std::string& what, double* out,
                    std::string* error) {
  if (!IsNumber(text)) {
    *error = "bad number for " + what + ": '" + text + "'";
    return false;
  }
  *out = std::strtod(text.c_str(), nullptr);
  return true;
}

// A probability argument: numeric and within [0,1].
bool ParseRateArg(const std::string& text, const std::string& what, double* out,
                  std::string* error) {
  if (!ParseDoubleArg(text, what, out, error)) {
    return false;
  }
  if (*out < 0.0 || *out > 1.0) {
    *error = what + " must be in [0,1]: " + text;
    return false;
  }
  return true;
}

// A non-negative duration/latency argument.
bool ParseDurationArg(const std::string& text, const std::string& what, double* out,
                      std::string* error) {
  if (!ParseDoubleArg(text, what, out, error)) {
    return false;
  }
  if (*out < 0.0) {
    *error = what + " must be >= 0: " + text;
    return false;
  }
  return true;
}

bool ParseU64Arg(const std::string& text, const std::string& what, uint64_t* out,
                 std::string* error) {
  if (text.empty() || text.find_first_not_of("0123456789") != std::string::npos) {
    *error = "bad unsigned integer for " + what + ": '" + text + "'";
    return false;
  }
  *out = std::strtoull(text.c_str(), nullptr, 10);
  return true;
}

bool ParseOnOff(const std::string& text, const std::string& what, bool* out,
                std::string* error) {
  if (text == "on") {
    *out = true;
    return true;
  }
  if (text == "off") {
    *out = false;
    return true;
  }
  *error = what + " must be on|off: " + text;
  return false;
}

// Parses one value of a tuple literal.
bool ParseLiteralValue(const std::string& text, Value* out, std::string* error) {
  if (text.empty()) {
    *error = "empty value";
    return false;
  }
  if (text.front() == '"') {
    if (text.size() < 2 || text.back() != '"') {
      *error = "unterminated string: " + text;
      return false;
    }
    *out = Value::Str(text.substr(1, text.size() - 2));
    return true;
  }
  if (StartsWith(text, "id:")) {
    *out = Value::Id(std::strtoull(text.c_str() + 3, nullptr, 10));
    return true;
  }
  if (text == "true") {
    *out = Value::Bool(true);
    return true;
  }
  if (text == "false") {
    *out = Value::Bool(false);
    return true;
  }
  if (IsNumber(text)) {
    if (text.find('.') == std::string::npos && text.find('e') == std::string::npos) {
      *out = Value::Int(std::strtoll(text.c_str(), nullptr, 10));
    } else {
      *out = Value::Double(std::strtod(text.c_str(), nullptr));
    }
    return true;
  }
  // Bare identifier: a string (node addresses, labels).
  *out = Value::Str(text);
  return true;
}

// Parses `name(v1, v2, ...)`.
bool ParseTupleLiteral(const std::string& text, TupleRef* out, std::string* error) {
  size_t open = text.find('(');
  if (open == std::string::npos || text.back() != ')') {
    *error = "expected name(v1, ...): " + text;
    return false;
  }
  std::string name = text.substr(0, open);
  std::string args = text.substr(open + 1, text.size() - open - 2);
  ValueList fields;
  std::string current;
  int depth = 0;
  bool in_string = false;
  auto flush = [&]() -> bool {
    // Trim whitespace.
    size_t b = current.find_first_not_of(" \t");
    size_t e = current.find_last_not_of(" \t");
    if (b == std::string::npos) {
      return current.empty();
    }
    Value v;
    if (!ParseLiteralValue(current.substr(b, e - b + 1), &v, error)) {
      return false;
    }
    fields.push_back(std::move(v));
    current.clear();
    return true;
  };
  for (char c : args) {
    if (in_string) {
      current += c;
      if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
      current += c;
      continue;
    }
    if (c == ',' && depth == 0) {
      if (!flush()) {
        return false;
      }
      continue;
    }
    if (c == '(') {
      ++depth;
    } else if (c == ')') {
      --depth;
    }
    current += c;
  }
  if (!flush()) {
    return false;
  }
  *out = Tuple::Make(std::move(name), std::move(fields));
  return true;
}

}  // namespace

struct ScenarioRunner::Impl {
  std::function<void(const std::string&)> out;
  FleetConfig fleet_config;
  // Telemetry export: the sink is owned here (it must outlive the network, which
  // holds a raw pointer); a path requested before the network exists is held
  // pending and attached when the first node creates it.
  std::unique_ptr<MetricsSink> metrics_sink;
  std::string pending_metrics_path;
  // Retention config from a `forensics` directive, applied to every node created
  // after it (the store is built in the Node constructor, so it cannot be enabled
  // retroactively).
  ForensicsOptions pending_forensics;
  // Overload limits from a `limits` directive (docs/ROBUSTNESS.md), applied — like
  // forensics — to every node created after the line.
  struct PendingLimits {
    bool set = false;
    uint64_t queue = 0;
    uint64_t low = 0;
    uint64_t window = 0;
    uint64_t backlog = 0;
    uint64_t reorder = 0;
    bool reorder_set = false;  // reorder=0 legitimately disables the default cap
    uint64_t degrade = 0;
    uint64_t degrade_lo = 0;
    double stretch = 0;
  };
  PendingLimits pending_limits;

  // Partitioned multi-process execution (fleetd --index/--procs): the k-th
  // `node` directive is hosted here iff k % proc_count == proc_index; names
  // hosted elsewhere are recorded so directives addressing them are skipped
  // (distinct from an unknown-name error — every process runs one profile).
  int proc_index = 0;
  int proc_count = 1;
  int node_ordinal = 0;
  std::set<std::string> remote_nodes;

  // Rendezvous exchange, performed at the first `run` (all local nodes exist by
  // then, none has pumped wall-clock time yet).
  bool have_rendezvous = false;
  bool rendezvous_done = false;
  RendezvousConfig rendezvous;

  void Print(const std::string& s) {
    if (out) {
      out(s);
    } else {
      fputs(s.c_str(), stdout);
    }
  }
};

ScenarioRunner::ScenarioRunner(std::function<void(const std::string&)> out)
    : impl_(std::make_unique<Impl>()) {
  impl_->out = std::move(out);
}

ScenarioRunner::~ScenarioRunner() = default;

void ScenarioRunner::SetBackend(FleetBackend backend) {
  impl_->fleet_config.backend = backend;
}

bool ScenarioRunner::ConfigureProcesses(int index, int procs, std::string* error) {
  if (procs < 1 || index < 0 || index >= procs) {
    *error = StrFormat("bad process slot: index %d of %d", index, procs);
    return false;
  }
  if (procs > 1 && impl_->fleet_config.backend != FleetBackend::kUdp) {
    *error = "multi-process execution requires the udp backend";
    return false;
  }
  impl_->proc_index = index;
  impl_->proc_count = procs;
  return true;
}

void ScenarioRunner::SetRendezvous(const RendezvousConfig& config) {
  impl_->rendezvous = config;
  impl_->have_rendezvous = true;
}

bool ScenarioRunner::RunScript(const std::string& script, std::string* error) {
  std::istringstream in(script);
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::string line_error;
    if (!RunLine(line, &line_error)) {
      *error = StrFormat("line %d: %s", line_no, line_error.c_str());
      return false;
    }
  }
  return true;
}

bool ScenarioRunner::RunLine(const std::string& raw, std::string* error) {
  std::string line = raw;
  size_t hash = line.find('#');
  if (hash != std::string::npos) {
    line = line.substr(0, hash);
  }
  std::vector<std::string> words = Words(line);
  if (words.empty()) {
    return true;
  }
  const std::string& cmd = words[0];

  auto need_network = [&]() -> bool {
    if (fleet_ == nullptr) {
      *error = "no nodes created yet";
      return false;
    }
    return true;
  };
  // Resolves <addr|all> into a handle list. A node hosted by another process
  // (fleetd --procs) resolves successfully to an EMPTY list: the directive is
  // someone else's to execute, and every handler below treats no-handles as a
  // no-op. Unknown names still fail.
  auto resolve = [&](const std::string& which, std::vector<NodeHandle>* nodes) -> bool {
    if (!need_network()) {
      return false;
    }
    if (which == "all") {
      *nodes = fleet_->Handles();
      return true;
    }
    if (!fleet_->HasNode(which)) {
      if (impl_->remote_nodes.count(which) > 0) {
        return true;
      }
      *error = "unknown node: " + which;
      return false;
    }
    nodes->push_back(fleet_->Handle(which));
    return true;
  };
  // A node name valid somewhere in the deployment (local or remote).
  auto known_node = [&](const std::string& addr) -> bool {
    return (fleet_ != nullptr && fleet_->HasNode(addr)) ||
           impl_->remote_nodes.count(addr) > 0;
  };

  if (cmd == "net") {
    if (fleet_ != nullptr) {
      *error = "net must precede the first node";
      return false;
    }
    for (size_t i = 1; i < words.size(); ++i) {
      std::string k;
      std::string v;
      if (!SplitKv(words[i], &k, &v)) {
        *error = "expected k=v: " + words[i];
        return false;
      }
      if (k == "latency") {
        if (!ParseDurationArg(v, "latency", &impl_->fleet_config.latency, error)) {
          return false;
        }
      } else if (k == "jitter") {
        if (!ParseDurationArg(v, "jitter", &impl_->fleet_config.jitter, error)) {
          return false;
        }
      } else if (k == "loss") {
        if (!ParseRateArg(v, "loss", &impl_->fleet_config.loss_rate, error)) {
          return false;
        }
      } else if (k == "seed") {
        if (!ParseU64Arg(v, "seed", &impl_->fleet_config.seed, error)) {
          return false;
        }
      } else if (k == "shards") {
        uint64_t shards = 0;
        if (!ParseU64Arg(v, "shards", &shards, error)) {
          return false;
        }
        if (shards < 1 || shards > 64) {
          *error = "shards must be in [1,64]: " + v;
          return false;
        }
        impl_->fleet_config.shards = static_cast<int>(shards);
      } else if (k == "backend") {
        if (v == "sim") {
          impl_->fleet_config.backend = FleetBackend::kSim;
        } else if (v == "udp") {
          impl_->fleet_config.backend = FleetBackend::kUdp;
        } else {
          *error = "backend must be sim|udp: " + v;
          return false;
        }
      } else if (k == "mtu") {
        // Datagram payload budget for batched envelope frames (udp backend).
        uint64_t mtu = 0;
        if (!ParseU64Arg(v, "mtu", &mtu, error)) {
          return false;
        }
        if (mtu < 512 || mtu > 65507) {
          *error = "mtu must be in [512,65507]: " + v;
          return false;
        }
        impl_->fleet_config.udp_max_datagram = static_cast<size_t>(mtu);
      } else {
        *error = "unknown net option: " + k;
        return false;
      }
    }
    return true;
  }

  if (cmd == "metrics") {
    if (words.size() != 2) {
      *error = "metrics <path>";
      return false;
    }
    return SetMetricsOut(words[1], error);
  }

  if (cmd == "node") {
    if (words.size() < 2) {
      *error = "node <addr> [trace] [seed=N]";
      return false;
    }
    // Partitioned execution: the k-th node directive belongs to process
    // k % procs. Remote nodes are recorded (so later directives naming them are
    // skipped, not rejected) and nothing is created locally.
    int ordinal = impl_->node_ordinal++;
    if (impl_->proc_count > 1 && ordinal % impl_->proc_count != impl_->proc_index) {
      impl_->remote_nodes.insert(words[1]);
      return true;
    }
    if (fleet_ == nullptr) {
      if (impl_->fleet_config.shards > 1 &&
          impl_->fleet_config.backend == FleetBackend::kUdp) {
        *error = "net shards>1 is not supported with backend=udp "
                 "(the driver pumps one scheduler against the wall clock)";
        return false;
      }
      if (impl_->fleet_config.shards > 1 && impl_->fleet_config.latency <= 0) {
        *error = "net shards>1 requires latency>0 (the shard lookahead)";
        return false;
      }
      fleet_ = std::make_unique<Fleet>(impl_->fleet_config);
      if (!impl_->pending_metrics_path.empty()) {
        std::string pending = impl_->pending_metrics_path;
        impl_->pending_metrics_path.clear();
        if (!SetMetricsOut(pending, error)) {
          return false;
        }
      }
    }
    NodeOptions opts;
    bool explicit_seed = false;
    uint64_t node_seed = 0;
    for (size_t i = 2; i < words.size(); ++i) {
      std::string k;
      std::string v;
      if (words[i] == "trace") {
        opts.tracing = true;
      } else if (SplitKv(words[i], &k, &v) && k == "seed") {
        if (!ParseU64Arg(v, "seed", &node_seed, error)) {
          return false;
        }
        explicit_seed = true;
      } else if (k == "indexes") {
        // Ablation switches, mirroring NodeOptions (simfuzz differential mode).
        if (!ParseOnOff(v, "indexes", &opts.use_join_indexes, error)) {
          return false;
        }
      } else if (k == "metrics") {
        if (!ParseOnOff(v, "metrics", &opts.metrics, error)) {
          return false;
        }
      } else if (k == "reliable") {
        if (!ParseOnOff(v, "reliable", &opts.reliable_transport, error)) {
          return false;
        }
      } else if (k == "arenas") {
        // Engine hot-path toggles (docs/SCALING.md): pure mechanical ablations,
        // digests must not depend on them.
        if (!ParseOnOff(v, "arenas", &opts.tuple_arenas, error)) {
          return false;
        }
      } else if (k == "batch") {
        if (!ParseOnOff(v, "batch", &opts.batch_deltas, error)) {
          return false;
        }
      } else if (k == "zerocopy") {
        if (!ParseOnOff(v, "zerocopy", &opts.zero_copy_decode, error)) {
          return false;
        }
      } else {
        *error = "unknown node option: " + words[i];
        return false;
      }
    }
    if (impl_->pending_forensics.enabled) {
      opts.forensics = impl_->pending_forensics;
    }
    if (impl_->pending_limits.set) {
      const Impl::PendingLimits& lim = impl_->pending_limits;
      opts.queue_cap = lim.queue;
      opts.low_queue_cap = lim.low;
      opts.rel_window = lim.window;
      opts.rel_backlog = lim.backlog;
      if (lim.reorder_set) {
        opts.rel_reorder_cap = lim.reorder;
      }
      opts.degrade_hi = lim.degrade;
      opts.degrade_lo = lim.degrade_lo;
      if (lim.stretch > 0) {
        opts.degrade_stretch = lim.stretch;
      }
    }
    if (explicit_seed) {
      fleet_->AddNodeWithSeed(words[1], opts, node_seed);
    } else {
      fleet_->AddNode(words[1], opts);
    }
    return true;
  }

  if (cmd == "chord") {
    if (words.size() < 2) {
      *error = "chord <addr|all> [landmark=<addr>] [stabilize=X] [ping=X] "
               "[finger=X] [timeout=X] [rejoin=X]";
      return false;
    }
    std::vector<NodeHandle> nodes;
    if (!resolve(words[1], &nodes)) {
      return false;
    }
    std::string landmark;
    ChordConfig base_cfg;
    for (size_t i = 2; i < words.size(); ++i) {
      std::string k;
      std::string v;
      if (!SplitKv(words[i], &k, &v)) {
        *error = "unknown chord option: " + words[i];
        return false;
      }
      if (k == "landmark") {
        landmark = v;
      } else if (k == "stabilize") {
        if (!ParseDurationArg(v, "stabilize", &base_cfg.stabilize_period, error)) {
          return false;
        }
      } else if (k == "ping") {
        if (!ParseDurationArg(v, "ping", &base_cfg.ping_period, error)) {
          return false;
        }
      } else if (k == "finger") {
        if (!ParseDurationArg(v, "finger", &base_cfg.finger_period, error)) {
          return false;
        }
      } else if (k == "timeout") {
        if (!ParseDurationArg(v, "timeout", &base_cfg.ping_timeout, error)) {
          return false;
        }
      } else if (k == "rejoin") {
        if (!ParseDurationArg(v, "rejoin", &base_cfg.rejoin_check_period, error)) {
          return false;
        }
      } else {
        *error = "unknown chord option: " + words[i];
        return false;
      }
    }
    if (impl_->proc_count > 1) {
      // A per-process default landmark would bootstrap a different ring in every
      // process; multi-process profiles must name one node explicitly.
      if (landmark.empty()) {
        *error = "chord needs an explicit landmark= under multi-process execution";
        return false;
      }
      if (!known_node(landmark)) {
        *error = "unknown node: " + landmark;
        return false;
      }
    }
    for (NodeHandle& node : nodes) {
      ChordConfig cfg = base_cfg;
      cfg.landmark = (node.addr() == landmark) ? std::string() : landmark;
      if (landmark.empty() && node.addr() != nodes.front().addr()) {
        cfg.landmark = nodes.front().addr();
      }
      if (!node.Install(
              [&cfg](Node* n, std::string* e) { return InstallChord(n, cfg, e); },
              error)) {
        return false;
      }
    }
    return true;
  }

  if (cmd == "dht" || cmd == "flood") {
    if (words.size() != 2) {
      *error = cmd + " <addr|all>";
      return false;
    }
    std::vector<NodeHandle> nodes;
    if (!resolve(words[1], &nodes)) {
      return false;
    }
    for (NodeHandle& node : nodes) {
      bool ok = node.Install(
          [&cmd](Node* n, std::string* e) {
            return cmd == "dht" ? InstallDht(n, DhtConfig(), e)
                                : InstallFlood(n, FloodConfig(), e);
          },
          error);
      if (!ok) {
        return false;
      }
    }
    return true;
  }

  if (cmd == "put" || cmd == "get") {
    std::vector<NodeHandle> nodes;
    size_t want_args = cmd == "put" ? 5u : 4u;
    if (words.size() != want_args || !resolve(words[1], &nodes)) {
      if (error->empty()) {
        *error = cmd == "put" ? "put <addr> <key> <value> <reqid>"
                              : "get <addr> <key> <reqid>";
      }
      return false;
    }
    uint64_t req = 0;
    if (!ParseU64Arg(words.back(), "reqid", &req, error)) {
      return false;
    }
    if (nodes.empty()) {  // remote node: another process runs this line
      return true;
    }
    nodes[0].Call([&](Node* n) {
      if (cmd == "put") {
        DhtPut(n, words[2], words[3], req);
      } else {
        DhtGet(n, words[2], req);
      }
    });
    return true;
  }

  if (cmd == "member") {
    std::vector<NodeHandle> nodes;
    if (words.size() != 3 || !resolve(words[1], &nodes)) {
      if (error->empty()) {
        *error = "member <addr> <peer>";
      }
      return false;
    }
    if (nodes.empty()) {
      return true;
    }
    nodes[0].Call([&](Node* n) { AddMember(n, words[2]); });
    return true;
  }

  if (cmd == "publish") {
    std::vector<NodeHandle> nodes;
    if (words.size() != 4 || !resolve(words[1], &nodes)) {
      if (error->empty()) {
        *error = "publish <addr> <rumor-id> <payload>";
      }
      return false;
    }
    uint64_t rumor = 0;
    if (!ParseU64Arg(words[2], "rumor-id", &rumor, error)) {
      return false;
    }
    if (nodes.empty()) {
      return true;
    }
    nodes[0].Call([&](Node* n) { PublishRumor(n, rumor, words[3]); });
    return true;
  }

  if (cmd == "program" || cmd == "inline") {
    if (words.size() < 3) {
      *error = cmd + " <addr|all> <file or text> ...";
      return false;
    }
    std::vector<NodeHandle> nodes;
    if (!resolve(words[1], &nodes)) {
      return false;
    }
    std::string source;
    ParamMap params;
    if (cmd == "program") {
      std::ifstream f(words[2]);
      if (!f) {
        *error = "cannot open " + words[2];
        return false;
      }
      std::stringstream ss;
      ss << f.rdbuf();
      source = ss.str();
      for (size_t i = 3; i < words.size(); ++i) {
        std::string k;
        std::string v;
        if (!SplitKv(words[i], &k, &v)) {
          *error = "expected k=v param: " + words[i];
          return false;
        }
        Value value;
        if (!ParseLiteralValue(v, &value, error)) {
          return false;
        }
        params[k] = value;
      }
    } else {
      // Re-join everything after the node selector as OverLog text.
      size_t pos = raw.find(words[1]);
      source = raw.substr(pos + words[1].size());
    }
    for (NodeHandle& node : nodes) {
      if (!node.Load(source, params, error)) {
        return false;
      }
    }
    return true;
  }

  if (cmd == "inject") {
    size_t arg = 1;
    double at = 0;
    bool have_at = false;
    std::string k;
    std::string v;
    if (arg < words.size() && SplitKv(words[arg], &k, &v) && k == "t") {
      if (!ParseDoubleArg(v, "t", &at, error)) {
        return false;
      }
      have_at = true;
      ++arg;
    }
    if (arg + 1 >= words.size()) {
      *error = "inject [t=<secs>] <addr> <tuple literal>";
      return false;
    }
    std::vector<NodeHandle> nodes;
    if (!resolve(words[arg], &nodes)) {
      return false;
    }
    if (have_at && at < fleet_->Now()) {
      // The scheduler would clamp a past time to "now", silently reordering the
      // scenario; reject instead.
      *error = StrFormat("t=%g is in the past (virtual time is %g)", at,
                         fleet_->Now());
      return false;
    }
    TupleRef tuple;
    if (!ParseTupleLiteral(words[arg + 1], &tuple, error)) {
      return false;
    }
    for (NodeHandle& node : nodes) {
      if (!have_at) {
        node.Inject(tuple);
      } else {
        // Posted onto the node's own shard, so timed injections stay correct
        // under the parallel runtime.
        node.InjectAt(at, tuple);
      }
    }
    return true;
  }

  if (cmd == "run") {
    if (words.size() != 2 || !need_network()) {
      if (*error == "") {
        *error = "run <secs>";
      }
      return false;
    }
    double secs = 0;
    if (!ParseDurationArg(words[1], "run", &secs, error)) {
      return false;
    }
    // Multi-process runs exchange the address map once, before any wall-clock
    // pumping: every local node exists by the first `run`, and no tuple has
    // needed a remote socket address yet.
    if (impl_->have_rendezvous && !impl_->rendezvous_done) {
      UdpDriver* driver = fleet_->udp();
      if (driver == nullptr) {
        *error = "rendezvous requires backend=udp";
        return false;
      }
      std::map<std::string, std::string> full;
      if (!RendezvousExchange(impl_->rendezvous, driver->LocalMap(), &full, error)) {
        return false;
      }
      for (const auto& [name, addr] : full) {
        fleet_->RegisterPeer(name, addr);
      }
      impl_->rendezvous_done = true;
    }
    fleet_->RunFor(secs);
    return true;
  }

  if (cmd == "crash" || cmd == "revive" || cmd == "recover") {
    std::vector<NodeHandle> nodes;
    double at = -1;
    if (words.size() < 2 || words.size() > 3 || !resolve(words[1], &nodes)) {
      if (error->empty()) {
        *error = cmd + " <addr|all> [at=<secs>]";
      }
      return false;
    }
    if (words.size() == 3) {
      std::string k;
      std::string v;
      if (!SplitKv(words[2], &k, &v) || k != "at") {
        *error = cmd + " <addr|all> [at=<secs>]";
        return false;
      }
      if (!ParseDoubleArg(v, "at", &at, error)) {
        return false;
      }
      if (at < fleet_->Now()) {
        *error = StrFormat("at=%g is in the past (virtual time is %g)", at,
                           fleet_->Now());
        return false;
      }
    }
    for (NodeHandle& node : nodes) {
      // The *At variants post onto each node's own shard.
      if (cmd == "crash") {
        at < 0 ? node.Crash() : node.CrashAt(at);
      } else if (cmd == "revive") {
        at < 0 ? node.Revive() : node.ReviveAt(at);
      } else {
        at < 0 ? node.Recover() : node.RecoverAt(at);
      }
    }
    return true;
  }

  if (cmd == "linkfault" || cmd == "partition" || cmd == "heal") {
    // The simulated fault pipeline does not exist over real sockets; the udp
    // backend injects loss through UdpDriver::SetEgressLossRate instead
    // (docs/DEPLOYMENT.md).
    if (fleet_ != nullptr && fleet_->udp() != nullptr) {
      *error = cmd + " is not supported with backend=udp";
      return false;
    }
  }

  if (cmd == "linkfault") {
    // linkfault <src> <dst> [loss=X] [dup=X] [reorder=X] [latency=X] — no k=v
    // options clears the link's fault spec.
    if (words.size() < 3 || !need_network()) {
      if (error->empty()) {
        *error = "linkfault <src> <dst> [loss=X] [dup=X] [reorder=X] [latency=X]";
      }
      return false;
    }
    Network::LinkFault fault;
    bool any = false;
    for (size_t i = 3; i < words.size(); ++i) {
      std::string k;
      std::string v;
      if (!SplitKv(words[i], &k, &v)) {
        *error = "expected k=v: " + words[i];
        return false;
      }
      if (k == "loss") {
        if (!ParseRateArg(v, "loss", &fault.loss, error)) {
          return false;
        }
      } else if (k == "dup") {
        if (!ParseRateArg(v, "dup", &fault.dup_rate, error)) {
          return false;
        }
      } else if (k == "reorder") {
        if (!ParseRateArg(v, "reorder", &fault.reorder_rate, error)) {
          return false;
        }
      } else if (k == "latency") {
        if (!ParseDurationArg(v, "latency", &fault.extra_latency, error)) {
          return false;
        }
      } else {
        *error = "unknown linkfault option: " + k;
        return false;
      }
      any = true;
    }
    for (int i = 1; i <= 2; ++i) {
      if (!fleet_->HasNode(words[i])) {
        *error = "unknown node: " + words[i];
        return false;
      }
    }
    if (any) {
      fleet_->SetLinkFault(words[1], words[2], fault);
    } else {
      fleet_->ClearLinkFault(words[1], words[2]);
    }
    return true;
  }

  if (cmd == "partition") {
    // partition <a,b,c> <d,e,f>: cuts every link between the two groups.
    if (words.size() != 3 || !need_network()) {
      if (error->empty()) {
        *error = "partition <a,b,...> <c,d,...>";
      }
      return false;
    }
    std::vector<std::string> group_a = Split(words[1], ',');
    std::vector<std::string> group_b = Split(words[2], ',');
    for (const std::vector<std::string>* group : {&group_a, &group_b}) {
      for (const std::string& addr : *group) {
        if (!fleet_->HasNode(addr)) {
          *error = "unknown node: " + addr;
          return false;
        }
      }
    }
    fleet_->Partition(group_a, group_b);
    return true;
  }

  if (cmd == "heal") {
    if (words.size() != 1 || !need_network()) {
      if (error->empty()) {
        *error = "heal";
      }
      return false;
    }
    fleet_->Heal();
    return true;
  }

  if (cmd == "watchprint") {
    std::vector<NodeHandle> nodes;
    if (words.size() != 2 || !resolve(words[1], &nodes)) {
      return false;
    }
    for (NodeHandle& node : nodes) {
      Impl* impl = impl_.get();
      std::string addr = node.addr();
      node.WatchSink([impl, addr](double t, const TupleRef& tuple) {
        impl->Print(StrFormat("[%9.3f] %s: %s\n", t, addr.c_str(),
                              tuple->ToString().c_str()));
      });
    }
    return true;
  }

  if (cmd == "dump") {
    std::vector<NodeHandle> nodes;
    if (words.size() != 3 || !resolve(words[1], &nodes)) {
      if (*error == "") {
        *error = "dump <addr|all> <table>";
      }
      return false;
    }
    for (NodeHandle& node : nodes) {
      std::vector<TupleRef> rows = node.Query(words[2]);
      impl_->Print(StrFormat("-- %s %s (%zu rows) --\n", node.addr().c_str(),
                             words[2].c_str(), rows.size()));
      for (const TupleRef& t : rows) {
        impl_->Print("  " + t->ToString() + "\n");
      }
    }
    return true;
  }

  if (cmd == "stats") {
    std::vector<NodeHandle> nodes;
    if (words.size() != 2 || !resolve(words[1], &nodes)) {
      return false;
    }
    for (NodeHandle& node : nodes) {
      const NodeStats& s = node.Stats();
      impl_->Print(StrFormat(
          "%s: sent=%llu recv=%llu triggers=%llu emitted=%llu dead=%llu busy=%.3fms\n",
          node.addr().c_str(), static_cast<unsigned long long>(s.msgs_sent),
          static_cast<unsigned long long>(s.msgs_received),
          static_cast<unsigned long long>(s.strand_triggers),
          static_cast<unsigned long long>(s.tuples_emitted),
          static_cast<unsigned long long>(s.dead_letters),
          static_cast<double>(s.busy_ns) / 1e6));
    }
    return true;
  }

  if (cmd == "expect") {
    std::vector<NodeHandle> nodes;
    if (words.size() != 4 || !resolve(words[1], &nodes)) {
      if (*error == "") {
        *error = "expect <addr> <table> <count>";
      }
      return false;
    }
    uint64_t want64 = 0;
    if (!ParseU64Arg(words[3], "count", &want64, error)) {
      return false;
    }
    if (nodes.empty()) {  // remote node: its own process checks this expectation
      return true;
    }
    size_t want = static_cast<size_t>(want64);
    size_t got = nodes[0].Count(words[2]);
    if (got != want) {
      *error = StrFormat("expect failed: %s.%s has %zu rows, wanted %zu",
                         words[1].c_str(), words[2].c_str(), got, want);
      return false;
    }
    ++expectations_passed_;
    return true;
  }

  if (cmd == "forensics") {
    // Two forms (docs/OBSERVABILITY.md):
    //   forensics budget=<bytes> [records=<n>] [span=<secs>] [age=<secs>]
    //     — enables bounded trace retention (implies trace) on every node created
    //       after this line.
    //   forensics query <addr|all> <key> from=<t1> to=<t2> [out=<path>] [min=<n>]
    //     — time-travel query: replays causal chains for tuples matching <key>
    //       ("*", "name", or "name/firstarg") in [t1, t2]; `out` writes a JSONL
    //       chain export, `min` fails the script unless at least <n> chains came
    //       back (counts as a passed expectation otherwise).
    if (words.size() >= 2 && words[1] == "query") {
      std::vector<NodeHandle> nodes;
      if (words.size() < 6 || !resolve(words[2], &nodes)) {
        if (error->empty()) {
          *error = "forensics query <addr|all> <key> from=<t1> to=<t2> [out=<path>] "
                   "[min=<n>]";
        }
        return false;
      }
      const std::string& key = words[3];
      double t1 = 0;
      double t2 = 0;
      bool have_from = false;
      bool have_to = false;
      std::string out_path;
      bool have_min = false;
      uint64_t min_chains = 0;
      for (size_t i = 4; i < words.size(); ++i) {
        std::string k;
        std::string v;
        if (!SplitKv(words[i], &k, &v)) {
          *error = "expected k=v: " + words[i];
          return false;
        }
        if (k == "from") {
          if (!ParseDoubleArg(v, "from", &t1, error)) {
            return false;
          }
          have_from = true;
        } else if (k == "to") {
          if (!ParseDoubleArg(v, "to", &t2, error)) {
            return false;
          }
          have_to = true;
        } else if (k == "out") {
          out_path = v;
        } else if (k == "min") {
          if (!ParseU64Arg(v, "min", &min_chains, error)) {
            return false;
          }
          have_min = true;
        } else {
          *error = "unknown forensics query option: " + k;
          return false;
        }
      }
      if (!have_from || !have_to || t2 < t1) {
        *error = "forensics query needs from=<t1> to=<t2> with t1 <= t2";
        return false;
      }
      std::string jsonl;
      size_t total = 0;
      for (NodeHandle& node : nodes) {
        std::vector<CausalChain> chains = fleet_->ReplayChains(node.addr(), key, t1, t2);
        total += chains.size();
        impl_->Print(StrFormat("forensics: %s %zu chains for %s in [%g, %g]\n",
                               node.addr().c_str(), chains.size(), key.c_str(), t1,
                               t2));
        if (!out_path.empty()) {
          jsonl += ExportChainsJsonl(chains);
        }
      }
      if (!out_path.empty()) {
        std::ofstream f(out_path, std::ios::out | std::ios::trunc);
        if (!f) {
          *error = "cannot open forensics output file: " + out_path;
          return false;
        }
        f << jsonl;
      }
      if (have_min) {
        if (total < min_chains) {
          *error = StrFormat("forensics query returned %zu chains, wanted >= %llu",
                             total, static_cast<unsigned long long>(min_chains));
          return false;
        }
        ++expectations_passed_;
      }
      return true;
    }
    ForensicsOptions fo;
    fo.enabled = true;
    for (size_t i = 1; i < words.size(); ++i) {
      std::string k;
      std::string v;
      if (!SplitKv(words[i], &k, &v)) {
        *error = "expected k=v: " + words[i];
        return false;
      }
      if (k == "budget") {
        uint64_t bytes = 0;
        if (!ParseU64Arg(v, "budget", &bytes, error)) {
          return false;
        }
        fo.budget_bytes = static_cast<size_t>(bytes);
      } else if (k == "records") {
        uint64_t records = 0;
        if (!ParseU64Arg(v, "records", &records, error)) {
          return false;
        }
        if (records == 0) {
          *error = "records must be >= 1";
          return false;
        }
        fo.segment_records = static_cast<size_t>(records);
      } else if (k == "span") {
        if (!ParseDurationArg(v, "span", &fo.segment_span, error)) {
          return false;
        }
      } else if (k == "age") {
        if (!ParseDurationArg(v, "age", &fo.max_age, error)) {
          return false;
        }
      } else {
        *error = "unknown forensics option: " + k;
        return false;
      }
    }
    impl_->pending_forensics = fo;
    return true;
  }

  if (cmd == "limits") {
    // limits [queue=<n>] [low=<n>] [window=<n>] [backlog=<n>] [reorder=<n>]
    //        [degrade=<n>] [lo=<n>] [stretch=<x>]
    // — overload-resilience budgets (docs/ROBUSTNESS.md), applied to every node
    // created after this line. queue/low cap the admission queues (best-effort
    // class sheds first), window/backlog bound the reliable sender per channel,
    // reorder bounds the receiver holdback, degrade arms the watchdog (lo and
    // stretch tune its hysteresis exit threshold and degraded-mode slowdown).
    if (words.size() < 2) {
      *error = "limits [queue=<n>] [low=<n>] [window=<n>] [backlog=<n>] "
               "[reorder=<n>] [degrade=<n>] [lo=<n>] [stretch=<x>]";
      return false;
    }
    Impl::PendingLimits lim;
    for (size_t i = 1; i < words.size(); ++i) {
      std::string k;
      std::string v;
      if (!SplitKv(words[i], &k, &v)) {
        *error = "expected k=v: " + words[i];
        return false;
      }
      if (k == "queue") {
        if (!ParseU64Arg(v, "queue", &lim.queue, error)) {
          return false;
        }
      } else if (k == "low") {
        if (!ParseU64Arg(v, "low", &lim.low, error)) {
          return false;
        }
      } else if (k == "window") {
        if (!ParseU64Arg(v, "window", &lim.window, error)) {
          return false;
        }
      } else if (k == "backlog") {
        if (!ParseU64Arg(v, "backlog", &lim.backlog, error)) {
          return false;
        }
      } else if (k == "reorder") {
        if (!ParseU64Arg(v, "reorder", &lim.reorder, error)) {
          return false;
        }
        lim.reorder_set = true;
      } else if (k == "degrade") {
        if (!ParseU64Arg(v, "degrade", &lim.degrade, error)) {
          return false;
        }
      } else if (k == "lo") {
        if (!ParseU64Arg(v, "lo", &lim.degrade_lo, error)) {
          return false;
        }
      } else if (k == "stretch") {
        if (!ParseDoubleArg(v, "stretch", &lim.stretch, error)) {
          return false;
        }
        if (lim.stretch < 1.0) {
          *error = "stretch must be >= 1";
          return false;
        }
      } else {
        *error = "unknown limits option: " + k;
        return false;
      }
    }
    lim.set = true;
    impl_->pending_limits = lim;
    return true;
  }

  if (cmd == "monitors") {
    // monitors <addr|all> [initiator=<addr>] [snap_period=X] [abort=X] [check=X]
    //          [probe=X] — installs the paper's monitoring programs (ring checks +
    // Chandy-Lamport snapshots) on the selected Chord nodes. The initiator defaults
    // to the first selected node.
    if (words.size() < 2) {
      *error = "monitors <addr|all> [initiator=<addr>] [snap_period=X] [abort=X] "
               "[check=X] [probe=X]";
      return false;
    }
    std::vector<NodeHandle> nodes;
    if (!resolve(words[1], &nodes)) {
      return false;
    }
    if (nodes.empty()) {
      return true;
    }
    std::string initiator;
    SnapshotConfig snap_cfg;
    RingCheckConfig ring_cfg;
    for (size_t i = 2; i < words.size(); ++i) {
      std::string k;
      std::string v;
      if (!SplitKv(words[i], &k, &v)) {
        *error = "expected k=v: " + words[i];
        return false;
      }
      if (k == "initiator") {
        // The initiator may be hosted by another process (fleetd --procs); only
        // local nodes get initiator=true below.
        if (!known_node(v)) {
          *error = "unknown node: " + v;
          return false;
        }
        initiator = v;
      } else if (k == "snap_period") {
        if (!ParseDurationArg(v, "snap_period", &snap_cfg.snap_period, error)) {
          return false;
        }
      } else if (k == "abort") {
        if (!ParseDurationArg(v, "abort", &snap_cfg.abort_timeout, error)) {
          return false;
        }
      } else if (k == "check") {
        if (!ParseDurationArg(v, "check", &snap_cfg.abort_check_period, error)) {
          return false;
        }
      } else if (k == "probe") {
        if (!ParseDurationArg(v, "probe", &ring_cfg.probe_period, error)) {
          return false;
        }
      } else {
        *error = "unknown monitors option: " + k;
        return false;
      }
    }
    if (initiator.empty()) {
      if (impl_->proc_count > 1) {
        // Defaulting per process would elect one initiator per process.
        *error = "monitors needs an explicit initiator= under multi-process "
                 "execution";
        return false;
      }
      initiator = nodes.front().addr();
    }
    for (NodeHandle& node : nodes) {
      if (!node.Install(
              [&ring_cfg](Node* n, std::string* e) {
                return InstallRingChecks(n, ring_cfg, e);
              },
              error)) {
        return false;
      }
      SnapshotConfig cfg = snap_cfg;
      cfg.initiator = (node.addr() == initiator);
      if (!node.Install(
              [&cfg](Node* n, std::string* e) { return InstallSnapshot(n, cfg, e); },
              error)) {
        return false;
      }
    }
    return true;
  }

  *error = "unknown command: " + cmd;
  return false;
}

bool ScenarioRunner::SetMetricsOut(const std::string& path, std::string* error) {
  if (fleet_ == nullptr) {
    impl_->pending_metrics_path = path;
    return true;
  }
  std::unique_ptr<MetricsSink> sink = OpenMetricsSink(path, error);
  if (sink == nullptr) {
    return false;
  }
  impl_->metrics_sink = std::move(sink);
  fleet_->SetMetricsSink(impl_->metrics_sink.get());
  return true;
}

bool RunScenarioFile(const std::string& path, std::string* error,
                     const std::string& metrics_out) {
  std::ifstream f(path);
  if (!f) {
    *error = "cannot open " + path;
    return false;
  }
  std::stringstream ss;
  ss << f.rdbuf();
  ScenarioRunner runner;
  if (!metrics_out.empty() && !runner.SetMetricsOut(metrics_out, error)) {
    return false;
  }
  return runner.RunScript(ss.str(), error);
}

}  // namespace p2
