// Scenario interpreter: drives a simulated multi-node deployment from a small script,
// making the engine usable without writing C++ (the moral equivalent of P2's
// runOverLog harness).
//
// Scenario language (one command per line, `#` comments):
//
//   net latency=0.02 jitter=0.01 loss=0 seed=42 shards=1   # before any node; optional
//                                                 # shards>1 = parallel fleet runtime
//                                                 # (needs latency>0; docs/SCALING.md)
//       backend=sim|udp mtu=<bytes>               # udp = real loopback/LAN sockets
//                                                 # (docs/DEPLOYMENT.md); run <secs>
//                                                 # then advances wall-clock time;
//                                                 # mtu bounds batched datagrams;
//                                                 # shards>1, loss, linkfault,
//                                                 # partition, heal are sim-only
//   metrics <path>                                # stream per-sweep telemetry
//                                                 # (.csv -> CSV, else JSONL)
//   node <addr> [trace] [seed=N]                  # create a node (seed derives from
//                                                 # the fleet seed unless given)
//        [indexes=on|off] [metrics=on|off] [reliable=on|off]   # NodeOptions ablations
//   forensics budget=<bytes> [records=<n>] [span=<secs>] [age=<secs>]
//                                                 # bounded trace retention (implies
//                                                 # trace) for nodes created after
//                                                 # this line (docs/OBSERVABILITY.md)
//   forensics query <addr|all> <key> from=<t1> to=<t2> [out=<path>] [min=<n>]
//                                                 # time-travel causal replay; out=
//                                                 # writes a JSONL chain export, min=
//                                                 # is an expectation on chain count
//   chord <addr|all> [landmark=<addr>]            # install the built-in Chord overlay
//         [stabilize=X] [ping=X] [finger=X] [timeout=X] [rejoin=X]   # protocol periods
//                                                 # (seconds; paper defaults apply)
//   monitors <addr|all> [initiator=<addr>]        # ring checks + C-L snapshots
//            [snap_period=X] [abort=X] [check=X] [probe=X]     # (needs chord)
//   dht <addr|all>                                # DHT put/get layer (needs chord)
//   put <addr> <key> <value> <reqid>              # DHT operations
//   get <addr> <key> <reqid>
//   flood <addr|all>                              # epidemic dissemination overlay
//   member <addr> <peer>                          # add a flood membership edge
//   publish <addr> <rumor-id> <payload>           # originate a rumor
//   program <addr|all> <file.olg> [k=v ...]       # load an OverLog file with params
//   inline <addr|all> <overlog text to end of line>
//   inject [t=<secs>] <addr> <name>(v1, v2, ...)  # inject a tuple (now or at t)
//   run <secs>                                    # advance virtual time
//   crash|revive|recover <addr|all> [at=<secs>]   # fault injection (at in the future)
//   linkfault <src> <dst> [loss=X] [dup=X] [reorder=X] [latency=X]   # no k=v clears
//   partition <a,b,...> <c,d,...>                 # cut links between the two groups
//   heal                                          # undo all partitions
//   watchprint <addr|all>                         # print watch() hits as they happen
//   dump <addr|all> <table>                       # print a table's rows
//   stats <addr|all>                              # print node counters
//   expect <addr> <table> <count>                 # fail unless the table has N rows
//
// `expect` and `forensics query ... min=` both count toward expectations_passed().
//
// Tuple literal values: numbers (Int/Double), "strings", id:<u64> (Id), true/false,
// and bare identifiers (treated as strings, convenient for addresses).
//
// The parser is strict: unknown directives/options, malformed numbers, rates outside
// [0,1], unknown node addresses in fault directives, and at=/t= times already in the
// virtual-time past all fail with a line-numbered error (never silently ignored) —
// simfuzz-generated scenario files round-trip through this grammar losslessly.

#ifndef SRC_TOOLS_SCENARIO_H_
#define SRC_TOOLS_SCENARIO_H_

#include <functional>
#include <memory>
#include <string>

#include "src/net/fleet.h"
#include "src/net/rendezvous.h"

namespace p2 {

class ScenarioRunner {
 public:
  // `out` receives all printed output (dump/stats/watchprint); defaults to stdout.
  explicit ScenarioRunner(std::function<void(const std::string&)> out = nullptr);
  ~ScenarioRunner();

  ScenarioRunner(const ScenarioRunner&) = delete;
  ScenarioRunner& operator=(const ScenarioRunner&) = delete;

  // Forces the transport backend before the script runs (olgrun --backend=...,
  // fleetd). Existing scenario files run unchanged over real sockets this way; a
  // `net backend=` directive inside the script has the same effect. Must be
  // called before the first `node` line executes.
  void SetBackend(FleetBackend backend);

  // Partitioned multi-process execution (fleetd --index/--procs): this process
  // hosts the k-th `node` directive of the script iff k % procs == index; every
  // other node is recorded as remote, and directives addressing a remote node
  // are skipped (not errors — each process runs the identical profile). `all`
  // resolves to the local nodes. Requires the udp backend; with procs > 1,
  // `chord` needs an explicit landmark= and `monitors` an explicit initiator=
  // (a per-process default would name a different node in every process).
  bool ConfigureProcesses(int index, int procs, std::string* error);

  // Address-map exchange for multi-process runs (docs/DEPLOYMENT.md): performed
  // once, at the first `run` line — every local node exists by then — before any
  // wall-clock pumping. The full map feeds Fleet::RegisterPeer.
  void SetRendezvous(const RendezvousConfig& config);

  // Runs a whole script. Returns false and sets `error` on the first failing line.
  bool RunScript(const std::string& script, std::string* error);

  // Runs one command line (empty lines and comments succeed trivially).
  bool RunLine(const std::string& line, std::string* error);

  // Streams per-sweep telemetry snapshots to `path` (format by extension: ".csv" ->
  // CSV, anything else -> JSONL). May be called before any node exists — the sink
  // attaches when the network is created. Equivalent to the `metrics` scenario
  // directive and olgrun's --metrics-out flag.
  bool SetMetricsOut(const std::string& path, std::string* error);

  // The fleet under interpretation (valid after the first `node` command).
  Fleet* fleet() { return fleet_.get(); }
  // Its network: host-side counters/faults and test-only node access.
  Network* network() { return fleet_ == nullptr ? nullptr : &fleet_->network(); }

  // Number of `expect` commands that have passed so far.
  int expectations_passed() const { return expectations_passed_; }

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  std::unique_ptr<Fleet> fleet_;
  int expectations_passed_ = 0;
};

// Loads a scenario file and runs it; convenience for the CLI. A non-empty
// `metrics_out` streams per-sweep telemetry there (see SetMetricsOut).
bool RunScenarioFile(const std::string& path, std::string* error,
                     const std::string& metrics_out = "");

}  // namespace p2

#endif  // SRC_TOOLS_SCENARIO_H_
