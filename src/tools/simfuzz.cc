// simfuzz: seeded randomized simulation fuzzing with trace-backed invariant
// oracles (docs/TESTING.md).
//
//   simfuzz --seed N [--iters K]          run K schedules from seeds N, N+1, ...
//           [--profile faulty|quiet]      fault intensity (default faulty)
//           [--nodes N]                   fleet size override
//           [--shards K]                  run fleets on K worker shards (digests
//                                         must match K=1 bit-exactly)
//           [--shrink]                    on failure, greedily minimize the schedule
//           [--scenario-out PATH]         where to write the (shrunk) failing scenario
//           [--chains-out PATH]           on failure, write the forensics causal
//                                         chain export (JSONL) replayed from the
//                                         retention stores
//           [--print-scenario]            print each schedule's scenario text
//           [--replay FILE]               re-run a scenario file under the oracles
//           [--differential]              diff table digests across config ablations
//           [--limits]                    run every node under the canonical overload
//                                         limits (arms the overload oracle)
//           [--no-arenas] [--no-batch] [--no-zerocopy]
//                                         disable an engine hot-path optimization
//                                         (pure ablations: digests must not change)
//           [--broken-oracle]             plant the test-only always-wrong oracle
//           [--bench]                     write BENCH_simfuzz.json (wall clock,
//                                         iterations/sec) via bench_common
//           [--list-oracles]              print the oracle library and exit
//
// Exit status: 0 when every run passed, 1 on any oracle violation or script error,
// 2 on usage errors.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "bench/bench_common.h"
#include "src/simtest/simfuzz.h"

namespace {

using p2::simtest::Ablation;
using p2::simtest::BuiltinOracles;
using p2::simtest::FuzzProfile;
using p2::simtest::GenerateSchedule;
using p2::simtest::Oracle;
using p2::simtest::RunResult;
using p2::simtest::RunScenarioText;
using p2::simtest::RunSchedule;
using p2::simtest::Schedule;
using p2::simtest::ScenarioToSchedule;
using p2::simtest::ScheduleToScenario;
using p2::simtest::ShrinkSchedule;
using p2::simtest::SimFuzzOptions;

int Usage() {
  fprintf(stderr,
          "usage: simfuzz [--seed N] [--iters K] [--profile faulty|quiet] "
          "[--nodes N] [--shards K]\n"
          "               [--shrink] [--scenario-out PATH] [--chains-out PATH]\n"
          "               [--print-scenario]\n"
          "               [--replay FILE] [--differential] [--limits]\n"
          "               [--no-arenas] [--no-batch] [--no-zerocopy] [--broken-oracle]\n"
          "               [--bench] [--list-oracles]\n");
  return 2;
}

bool WriteFile(const std::string& path, const std::string& text) {
  std::ofstream f(path);
  if (!f) {
    fprintf(stderr, "simfuzz: cannot write %s\n", path.c_str());
    return false;
  }
  f << text;
  return true;
}

// Reports a failing run: verdicts, the replayable scenario file, and (when
// retention was on) the forensics chain export for the failing run.
void ReportFailure(const RunResult& result, const Schedule* shrunk,
                   const SimFuzzOptions& opts, const std::string& scenario_out,
                   const std::string& chains_out) {
  printf("%s\n", result.Summary().c_str());
  std::string scenario =
      shrunk != nullptr ? ScheduleToScenario(*shrunk, opts.ablation)
                        : result.scenario;
  if (!scenario_out.empty() && WriteFile(scenario_out, scenario)) {
    printf("replayable scenario written to %s "
           "(re-run: simfuzz --replay %s%s)\n",
           scenario_out.c_str(), scenario_out.c_str(),
           opts.broken_oracle ? " --broken-oracle" : "");
  } else {
    printf("---- replayable scenario ----\n%s----\n", scenario.c_str());
  }
  if (!chains_out.empty()) {
    if (result.chain_export.empty()) {
      printf("no forensics chain export (retention off or no chains)\n");
    } else if (WriteFile(chains_out, result.chain_export)) {
      printf("forensics chain export written to %s\n", chains_out.c_str());
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t seed = 1;
  int iters = 1;
  int nodes = 0;
  int shards = 0;
  bool shrink = false;
  bool differential = false;
  bool print_scenario = false;
  bool bench = false;
  std::string profile_name = "faulty";
  std::string scenario_out;
  std::string chains_out;
  std::string replay_path;
  SimFuzzOptions opts;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        fprintf(stderr, "simfuzz: %s needs a value\n", what);
        exit(Usage());
      }
      return argv[++i];
    };
    if (arg == "--seed") {
      seed = std::strtoull(next("--seed"), nullptr, 10);
    } else if (arg == "--iters") {
      iters = std::atoi(next("--iters"));
    } else if (arg == "--nodes") {
      nodes = std::atoi(next("--nodes"));
    } else if (arg == "--shards") {
      shards = std::atoi(next("--shards"));
      if (shards < 1 || shards > 64) {
        fprintf(stderr, "simfuzz: --shards must be in [1,64]\n");
        return Usage();
      }
    } else if (arg == "--profile") {
      profile_name = next("--profile");
    } else if (arg == "--shrink") {
      shrink = true;
    } else if (arg == "--scenario-out") {
      scenario_out = next("--scenario-out");
    } else if (arg == "--chains-out") {
      chains_out = next("--chains-out");
      opts.export_chains_on_failure = true;
    } else if (arg == "--print-scenario") {
      print_scenario = true;
    } else if (arg == "--replay") {
      replay_path = next("--replay");
    } else if (arg == "--differential") {
      differential = true;
    } else if (arg == "--limits") {
      opts.ablation.overload_limits = true;
    } else if (arg == "--no-arenas") {
      opts.ablation.tuple_arenas = false;
    } else if (arg == "--no-batch") {
      opts.ablation.batch_deltas = false;
    } else if (arg == "--no-zerocopy") {
      opts.ablation.zero_copy_decode = false;
    } else if (arg == "--broken-oracle") {
      opts.broken_oracle = true;
    } else if (arg == "--bench") {
      bench = true;
    } else if (arg == "--list-oracles") {
      for (const Oracle& o : BuiltinOracles()) {
        printf("%-18s %s\n", o.name.c_str(), o.description.c_str());
      }
      return 0;
    } else {
      fprintf(stderr, "simfuzz: unknown argument %s\n", arg.c_str());
      return Usage();
    }
  }

  FuzzProfile profile;
  if (profile_name == "faulty") {
    profile = FuzzProfile::Faulty();
  } else if (profile_name == "quiet") {
    profile = FuzzProfile::Quiet();
  } else {
    fprintf(stderr, "simfuzz: unknown profile %s\n", profile_name.c_str());
    return Usage();
  }
  if (nodes > 0) {
    profile.num_nodes = nodes;
  }
  if (shards > 0) {
    profile.shards = shards;
  }

  if (!replay_path.empty()) {
    std::ifstream f(replay_path);
    if (!f) {
      fprintf(stderr, "simfuzz: cannot open %s\n", replay_path.c_str());
      return 2;
    }
    std::stringstream ss;
    ss << f.rdbuf();
    std::string text = ss.str();
    Schedule schedule;
    std::string error;
    RunResult result;
    if (ScenarioToSchedule(text, &schedule, &error)) {
      printf("replaying canonical simfuzz scenario (seed %llu, %zu events)\n",
             static_cast<unsigned long long>(schedule.seed), schedule.events.size());
      result = RunSchedule(schedule, opts);
    } else {
      printf("replaying as plain scenario (%s)\n", error.c_str());
      result = RunScenarioText(text, nullptr, opts);
    }
    printf("%s\n", result.Summary().c_str());
    if (result.failed() && !chains_out.empty() && !result.chain_export.empty() &&
        WriteFile(chains_out, result.chain_export)) {
      printf("forensics chain export written to %s\n", chains_out.c_str());
    }
    return result.failed() ? 1 : 0;
  }

  auto start = std::chrono::steady_clock::now();
  uint64_t total_msgs = 0;
  double virtual_secs = 0;
  int failures = 0;
  int ran = 0;
  for (int i = 0; i < iters; ++i) {
    uint64_t s = seed + static_cast<uint64_t>(i);
    Schedule schedule = GenerateSchedule(s, profile);
    if (print_scenario) {
      printf("---- seed %llu ----\n%s", static_cast<unsigned long long>(s),
             ScheduleToScenario(schedule, opts.ablation).c_str());
    }
    RunResult result = RunSchedule(schedule, opts);
    ++ran;
    total_msgs += result.total_msgs;
    virtual_secs += result.virtual_secs;
    if (result.failed()) {
      ++failures;
      printf("seed %llu: ", static_cast<unsigned long long>(s));
      if (shrink) {
        int shrink_runs = 0;
        Schedule minimal = ShrinkSchedule(schedule, opts, &shrink_runs);
        printf("FAIL (shrunk %zu -> %zu events in %d runs)\n",
               schedule.events.size(), minimal.events.size(), shrink_runs);
        ReportFailure(result, &minimal, opts, scenario_out, chains_out);
      } else {
        ReportFailure(result, nullptr, opts, scenario_out, chains_out);
      }
      break;  // first failure stops the sweep; its seed is the repro
    }
    printf("seed %llu: PASS (%llu msgs, %.0f virtual s)\n",
           static_cast<unsigned long long>(s),
           static_cast<unsigned long long>(result.total_msgs),
           result.virtual_secs);
    if (differential) {
      std::vector<std::string> diffs = p2::simtest::DifferentialRun(schedule);
      for (const std::string& d : diffs) {
        printf("seed %llu: DIFF %s\n", static_cast<unsigned long long>(s), d.c_str());
      }
      if (!diffs.empty()) {
        ++failures;
        break;
      }
      printf("seed %llu: differential clean "
             "(indexes/metrics/forensics/arenas/batch/zerocopy/reliable/limits)\n",
             static_cast<unsigned long long>(s));
    }
  }
  double wall_secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  printf("%d/%d runs passed in %.2fs wall (%.2f iters/sec, %.0fx real time)\n",
         ran - failures, ran, wall_secs, ran / std::max(wall_secs, 1e-9),
         virtual_secs / std::max(wall_secs, 1e-9));

  if (bench) {
    // Harness-throughput artifact (docs/OBSERVABILITY.md schema): cpu_ms_per_s is
    // wall milliseconds per fuzz iteration, cpu_pct is iterations/sec x100 spiritual
    // equivalent left 0; tx_msgs and live_tuples carry totals.
    p2::WindowMetrics m;
    m.cpu_ms_per_s = ran > 0 ? wall_secs * 1000.0 / ran : 0;  // ms per iteration
    m.cpu_pct = ran / std::max(wall_secs, 1e-9);              // iterations per sec
    m.alloc_mb_per_s = virtual_secs / std::max(wall_secs, 1e-9);  // sim-s per wall-s
    m.live_tuples = ran;
    m.tx_msgs = static_cast<double>(total_msgs);
    p2::BenchArtifact artifact("simfuzz");
    artifact.Add(profile_name, "iters", ran, m);
    artifact.Write();
  }
  return failures > 0 ? 1 : 0;
}
