// fleetd: hosts a slice of a real-UDP fleet from a scenario/profile file
// (docs/DEPLOYMENT.md).
//
//   fleetd --profile <file> [--procs P --index I]
//          [--listen <host:port>]      rendezvous control address (the seed
//                                      process, index 0, binds it)
//          [--seed <host:port>]        the seed's control address (joiners)
//          [--stats-out <path>]        write a JSON summary when the profile ends
//          [--metrics-out <path>]      stream per-sweep telemetry (csv/jsonl)
//          [--rdv-timeout <secs>]      rendezvous timeout (default 30)
//
// Every process runs the IDENTICAL profile with a different --index: the k-th
// `node` directive is hosted by process k % P, directives addressing remote
// nodes are skipped, and the first `run` line performs the rendezvous exchange
// (the seed collects every process's name->socket map and broadcasts the
// union). A single-process invocation (--procs 1, the default) needs no
// rendezvous flags at all: it is `olgrun --backend=udp` plus the stats report.
//
// The stats JSON carries the transport counters (datagrams, envelopes, batching
// ratio), per-node overlay state (chord id, best successor, predecessor), and
// the overload counters (shed_reliable must stay 0) — the CI multi-process
// smoke job asserts ring convergence across the per-process reports.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "src/chord/chord.h"
#include "src/common/strings.h"
#include "src/net/udp_driver.h"
#include "src/tools/scenario.h"

namespace {

int Usage(const char* prog) {
  fprintf(stderr,
          "usage: %s --profile <file> [--procs P --index I] "
          "[--listen <host:port>] [--seed <host:port>] [--stats-out <path>] "
          "[--metrics-out <path>] [--rdv-timeout <secs>]\n",
          prog);
  return 2;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
    }
    out += c;
  }
  return out;
}

bool WriteStats(const std::string& path, p2::ScenarioRunner& runner, int index,
                int procs) {
  p2::Fleet* fleet = runner.fleet();
  p2::UdpDriver* driver = fleet != nullptr ? fleet->udp() : nullptr;
  std::ostringstream out;
  out << "{\n";
  out << "  \"index\": " << index << ",\n";
  out << "  \"procs\": " << procs << ",\n";
  out << "  \"expectations_passed\": " << runner.expectations_passed() << ",\n";
  if (driver != nullptr) {
    out << "  \"datagrams_sent\": " << driver->datagrams_sent() << ",\n";
    out << "  \"datagrams_received\": " << driver->datagrams_received() << ",\n";
    out << "  \"envelopes_sent\": " << driver->envelopes_sent() << ",\n";
    out << "  \"envelopes_received\": " << driver->envelopes_received() << ",\n";
    out << "  \"envelopes_dropped\": " << driver->envelopes_dropped() << ",\n";
    out << "  \"unroutable_dropped\": " << driver->unroutable_dropped() << ",\n";
    out << "  \"frame_decode_errors\": " << driver->frame_decode_errors() << ",\n";
    out << "  \"batch_ratio\": " << p2::StrFormat("%.3f", driver->batch_ratio())
        << ",\n";
  }
  uint64_t shed_reliable = 0;
  out << "  \"nodes\": [";
  bool first = true;
  if (fleet != nullptr) {
    for (p2::NodeHandle& h : fleet->Handles()) {
      p2::Node* node = h.raw();  // single-threaded here: the profile has ended
      const p2::NodeStats& s = h.Stats();
      shed_reliable += s.shed_reliable;
      out << (first ? "\n" : ",\n");
      first = false;
      out << "    {\"addr\": \"" << JsonEscape(h.addr()) << "\""
          << ", \"chord_id\": " << p2::ChordId(node)
          << ", \"best_succ\": \"" << JsonEscape(p2::BestSuccAddr(node)) << "\""
          << ", \"pred\": \"" << JsonEscape(p2::PredAddr(node)) << "\""
          << ", \"msgs_sent\": " << s.msgs_sent
          << ", \"msgs_received\": " << s.msgs_received
          << ", \"shed_reliable\": " << s.shed_reliable << "}";
    }
  }
  out << "\n  ],\n";
  out << "  \"shed_reliable\": " << shed_reliable << "\n";
  out << "}\n";
  if (path == "-") {
    fputs(out.str().c_str(), stdout);
    return true;
  }
  std::ofstream f(path, std::ios::out | std::ios::trunc);
  if (!f) {
    fprintf(stderr, "error: cannot open %s\n", path.c_str());
    return false;
  }
  f << out.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string profile;
  std::string listen;
  std::string seed_addr;
  std::string stats_out;
  std::string metrics_out;
  double rdv_timeout = 30.0;
  int index = 0;
  int procs = 1;
  auto flag_value = [&](const char* name, int* i) -> const char* {
    if (*i + 1 >= argc) {
      return nullptr;
    }
    (void)name;
    return argv[++*i];
  };
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const char* v = nullptr;
    if (std::strcmp(arg, "--profile") == 0 && (v = flag_value(arg, &i))) {
      profile = v;
    } else if (std::strcmp(arg, "--listen") == 0 && (v = flag_value(arg, &i))) {
      listen = v;
    } else if (std::strcmp(arg, "--seed") == 0 && (v = flag_value(arg, &i))) {
      seed_addr = v;
    } else if (std::strcmp(arg, "--stats-out") == 0 && (v = flag_value(arg, &i))) {
      stats_out = v;
    } else if (std::strcmp(arg, "--metrics-out") == 0 && (v = flag_value(arg, &i))) {
      metrics_out = v;
    } else if (std::strcmp(arg, "--index") == 0 && (v = flag_value(arg, &i))) {
      index = std::atoi(v);
    } else if (std::strcmp(arg, "--procs") == 0 && (v = flag_value(arg, &i))) {
      procs = std::atoi(v);
    } else if (std::strcmp(arg, "--rdv-timeout") == 0 && (v = flag_value(arg, &i))) {
      rdv_timeout = std::atof(v);
    } else {
      return Usage(argv[0]);
    }
  }
  if (profile.empty() || procs < 1 || index < 0 || index >= procs) {
    return Usage(argv[0]);
  }
  std::ifstream f(profile);
  if (!f) {
    fprintf(stderr, "error: cannot open %s\n", profile.c_str());
    return 1;
  }
  std::stringstream ss;
  ss << f.rdbuf();

  p2::ScenarioRunner runner;
  runner.SetBackend(p2::FleetBackend::kUdp);
  std::string error;
  if (!runner.ConfigureProcesses(index, procs, &error)) {
    fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  if (procs > 1) {
    p2::RendezvousConfig rdv;
    rdv.timeout = rdv_timeout;
    if (index == 0) {
      if (listen.empty()) {
        fprintf(stderr, "error: the seed process (--index 0) needs --listen\n");
        return 1;
      }
      rdv.listen = listen;
      rdv.expected = procs;
    } else {
      if (seed_addr.empty()) {
        fprintf(stderr, "error: joiner processes need --seed <host:port>\n");
        return 1;
      }
      rdv.seed_addr = seed_addr;
    }
    runner.SetRendezvous(rdv);
  }
  if (!metrics_out.empty() && !runner.SetMetricsOut(metrics_out, &error)) {
    fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  bool ok = runner.RunScript(ss.str(), &error);
  if (!ok) {
    fprintf(stderr, "error: %s\n", error.c_str());
  }
  if (!stats_out.empty() && !WriteStats(stats_out, runner, index, procs)) {
    return 1;
  }
  p2::Fleet* fleet = runner.fleet();
  if (fleet != nullptr && fleet->udp() != nullptr) {
    p2::UdpDriver* d = fleet->udp();
    fprintf(stderr,
            "fleetd[%d/%d]: datagrams sent=%llu recv=%llu envelopes sent=%llu "
            "recv=%llu batch=%.2fx\n",
            index, procs, static_cast<unsigned long long>(d->datagrams_sent()),
            static_cast<unsigned long long>(d->datagrams_received()),
            static_cast<unsigned long long>(d->envelopes_sent()),
            static_cast<unsigned long long>(d->envelopes_received()),
            d->batch_ratio());
  }
  return ok ? 0 : 1;
}
