#include "src/trace/introspect.h"

#include <cmath>

#include "src/net/node.h"

namespace p2 {

void InstallIntrospectionTables(Node* node) {
  Catalog& catalog = node->catalog();

  TableSpec rules;
  rules.name = "sysRule";
  rules.key_fields = {0, 1};  // NAddr, RuleID
  catalog.CreateTable(rules);

  TableSpec tables;
  tables.name = "sysTable";
  tables.key_fields = {0, 1};  // NAddr, Name
  catalog.CreateTable(tables);

  TableSpec elements;
  elements.name = "sysElement";
  elements.key_fields = {0, 1, 2};  // NAddr, RuleID, Stage
  catalog.CreateTable(elements);

  TableSpec stats;
  stats.name = "sysStat";
  stats.key_fields = {0, 1};  // NAddr, Name
  catalog.CreateTable(stats);

  TableSpec rule_stats;
  rule_stats.name = "sysRuleStat";
  rule_stats.key_fields = {0, 1};  // NAddr, RuleID
  catalog.CreateTable(rule_stats);

  TableSpec table_stats;
  table_stats.name = "sysTableStat";
  table_stats.key_fields = {0, 1};  // NAddr, Table
  catalog.CreateTable(table_stats);

  TableSpec index_stats;
  index_stats.name = "sysIndexStat";
  index_stats.key_fields = {0, 1, 2};  // NAddr, Table, Positions
  catalog.CreateTable(index_stats);

  TableSpec channel_stats;
  channel_stats.name = "sysChannelStat";
  channel_stats.key_fields = {0, 1};  // NAddr, Dst
  catalog.CreateTable(channel_stats);

  TableSpec forensics_stats;
  forensics_stats.name = "sysForensicsStat";
  forensics_stats.key_fields = {0};  // NAddr (one row per node)
  catalog.CreateTable(forensics_stats);

  // Overload resilience (docs/ROBUSTNESS.md): per-admission-class shed accounting
  // plus the watchdog state, one row per priority class.
  TableSpec overload_stats;
  overload_stats.name = "sysOverloadStat";
  overload_stats.key_fields = {0, 1};  // NAddr, Class
  catalog.CreateTable(overload_stats);
}

void PublishStaticIntrospection(Node* node) {
  Table* rules = node->catalog().Get("sysRule");
  Table* elements = node->catalog().Get("sysElement");
  double now = node->Now();
  const std::string& addr = node->addr();

  if (rules != nullptr) {
    for (const Rule* rule : node->loaded_rules()) {
      rules->Insert(Tuple::Make("sysRule", {Value::Str(addr), Value::Str(rule->id),
                                            Value::Str(rule->ToString())}),
                    now);
    }
  }
  if (elements != nullptr) {
    for (const Strand* strand : node->strands()) {
      int idx = 0;
      elements->Insert(
          Tuple::Make("sysElement",
                      {Value::Str(addr), Value::Str(strand->rule_id()), Value::Int(idx++),
                       Value::Str("entry"), Value::Str(strand->trigger_name())}),
          now);
      for (const StrandOp& op : strand->ops()) {
        std::string kind;
        std::string detail;
        switch (op.kind) {
          case StrandOp::Kind::kJoin:
            kind = op.key_lookup ? "probe" : (op.use_index ? "ixprobe" : "join");
            detail = op.pred->name;
            break;
          case StrandOp::Kind::kNotExists:
            kind = op.use_index ? "ixantijoin" : "antijoin";
            detail = "not " + op.pred->name;
            break;
          case StrandOp::Kind::kAssign:
            kind = "assign";
            detail = *op.var + " := " + op.expr->ToString();
            break;
          case StrandOp::Kind::kFilter:
            kind = "filter";
            detail = op.expr->ToString();
            break;
        }
        elements->Insert(
            Tuple::Make("sysElement",
                        {Value::Str(addr), Value::Str(strand->rule_id()), Value::Int(idx++),
                         Value::Str(kind), Value::Str(detail)}),
            now);
      }
      elements->Insert(
          Tuple::Make("sysElement",
                      {Value::Str(addr), Value::Str(strand->rule_id()), Value::Int(idx),
                       Value::Str("project"), Value::Str(strand->rule().head.ToString())}),
          now);
    }
  }
}

void RefreshTableIntrospection(Node* node) {
  Table* sys = node->catalog().Get("sysTable");
  if (sys == nullptr) {
    return;
  }
  double now = node->Now();
  const std::string& addr = node->addr();
  for (Table* table : node->catalog().AllTables()) {
    const TableSpec& spec = table->spec();
    Value lifetime = std::isinf(spec.lifetime_secs) ? Value::Int(-1)
                                                    : Value::Double(spec.lifetime_secs);
    Value max_size = spec.max_size == std::numeric_limits<size_t>::max()
                         ? Value::Int(-1)
                         : Value::Int(static_cast<int64_t>(spec.max_size));
    sys->Insert(Tuple::Make("sysTable", {Value::Str(addr), Value::Str(spec.name), lifetime,
                                         max_size,
                                         Value::Int(static_cast<int64_t>(table->Size(now)))}),
                now);
  }
}

void RefreshStatIntrospection(Node* node) {
  Catalog& catalog = node->catalog();
  double now = node->Now();
  const std::string& addr = node->addr();

  // Snapshot BEFORE writing: publishing rows below mutates the very counters being
  // published (sysStat table inserts, listener work), so the reflected values are
  // the state as of the top of the sweep.
  MetricsSnapshot snap = SnapshotNodeMetrics(node);

  Table* stats = catalog.Get("sysStat");
  if (stats != nullptr) {
    for (const auto& [name, value] : snap.stats) {
      stats->Insert(
          Tuple::Make("sysStat", {Value::Str(addr), Value::Str(name), Value::Int(value)}),
          now);
    }
  }
  Table* rule_stats = catalog.Get("sysRuleStat");
  if (rule_stats != nullptr) {
    for (const MetricsSnapshot::RuleRow& r : snap.rules) {
      rule_stats->Insert(
          Tuple::Make("sysRuleStat",
                      {Value::Str(addr), Value::Str(r.rule_id),
                       Value::Int(static_cast<int64_t>(r.execs)),
                       Value::Int(static_cast<int64_t>(r.busy_ns)),
                       Value::Int(static_cast<int64_t>(r.emits))}),
          now);
    }
  }
  Table* table_stats = catalog.Get("sysTableStat");
  if (table_stats != nullptr) {
    for (const MetricsSnapshot::TableRow& t : snap.tables) {
      table_stats->Insert(
          Tuple::Make("sysTableStat",
                      {Value::Str(addr), Value::Str(t.table),
                       Value::Int(static_cast<int64_t>(t.inserts)),
                       Value::Int(static_cast<int64_t>(t.expires)),
                       Value::Int(static_cast<int64_t>(t.deletes))}),
          now);
    }
  }
  Table* channel_stats = catalog.Get("sysChannelStat");
  if (channel_stats != nullptr) {
    for (const auto& [peer, cs] : node->channel_stats()) {
      channel_stats->Insert(
          Tuple::Make("sysChannelStat",
                      {Value::Str(addr), Value::Str(peer),
                       Value::Int(static_cast<int64_t>(cs.sent)),
                       Value::Int(static_cast<int64_t>(cs.acked)),
                       Value::Int(static_cast<int64_t>(cs.retx)),
                       Value::Int(static_cast<int64_t>(cs.dups)),
                       Value::Int(static_cast<int64_t>(cs.failed))}),
          now);
    }
  }
  Table* overload_stats = catalog.Get("sysOverloadStat");
  if (overload_stats != nullptr) {
    // sysOverloadStat(NAddr, Class, Admitted, Shed, QueueDepth, InFlight, Degraded):
    // one row per admission class. QueueDepth/InFlight are instantaneous as of the
    // sweep; Admitted/Shed are cumulative; Degraded mirrors the watchdog state.
    const NodeStats& s = node->stats();
    Node::OverloadSnapshot ov = node->OverloadState();
    int64_t degraded = ov.degraded ? 1 : 0;
    auto row = [&](const char* cls, uint64_t admitted, uint64_t shed,
                   uint64_t queue_depth, uint64_t in_flight) {
      overload_stats->Insert(
          Tuple::Make("sysOverloadStat",
                      {Value::Str(addr), Value::Str(cls),
                       Value::Int(static_cast<int64_t>(admitted)),
                       Value::Int(static_cast<int64_t>(shed)),
                       Value::Int(static_cast<int64_t>(queue_depth)),
                       Value::Int(static_cast<int64_t>(in_flight)),
                       Value::Int(degraded)}),
          now);
    };
    row("besteffort", s.admitted_besteffort, s.shed_besteffort, ov.be_in_queue, 0);
    row("low", s.admitted_low, s.shed_low, ov.low_depth, 0);
    row("reliable", s.admitted_reliable, s.shed_reliable + s.rel_busy_dropped,
        ov.rel_backlog, ov.rel_pending);
  }
  Table* forensics_stats = catalog.Get("sysForensicsStat");
  if (forensics_stats != nullptr && node->forensics() != nullptr) {
    ForensicsStats fs = node->forensics()->Stats();
    int64_t oldest_ms =
        fs.records == 0 ? 0
                        : static_cast<int64_t>((now - fs.oldest_time) * 1000.0);
    forensics_stats->Insert(
        Tuple::Make("sysForensicsStat",
                    {Value::Str(addr), Value::Int(static_cast<int64_t>(fs.segments)),
                     Value::Int(static_cast<int64_t>(fs.records)),
                     Value::Int(static_cast<int64_t>(fs.bytes)),
                     Value::Int(static_cast<int64_t>(fs.dropped_segments)),
                     Value::Int(oldest_ms)}),
        now);
  }
  Table* index_stats = catalog.Get("sysIndexStat");
  if (index_stats != nullptr) {
    for (Table* table : catalog.AllTables()) {
      for (const Table::IndexStats& ix : table->IndexStatsSnapshot()) {
        std::string positions;
        for (size_t pos : ix.positions) {
          if (!positions.empty()) {
            positions += ',';
          }
          positions += std::to_string(pos);
        }
        double avg_rows = ix.probes == 0
                              ? 0.0
                              : static_cast<double>(ix.rows_yielded) /
                                    static_cast<double>(ix.probes);
        index_stats->Insert(
            Tuple::Make("sysIndexStat",
                        {Value::Str(addr), Value::Str(table->name()),
                         Value::Str(positions),
                         Value::Int(static_cast<int64_t>(ix.probes)),
                         Value::Double(avg_rows)}),
            now);
      }
    }
  }
}

}  // namespace p2
