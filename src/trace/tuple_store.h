// TupleStore: per-node tuple memoization (paper §2.1.3).
//
// "Each P2 node assigns tuples a node-unique ID when they are first created (tuples are
// immutable in P2). This ID is used to memoize the tuple, and it is this ID that is
// stored in the ruleExec table rather than the tuple itself."
//
// Interning is content-based: two structurally equal tuples receive the same ID, so the
// ID recorded when a tuple is produced by one rule matches the ID recorded when the same
// tuple triggers another.

#ifndef SRC_TRACE_TUPLE_STORE_H_
#define SRC_TRACE_TUPLE_STORE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/runtime/tuple.h"

namespace p2 {

class TupleStore {
 public:
  TupleStore() = default;
  TupleStore(const TupleStore&) = delete;
  TupleStore& operator=(const TupleStore&) = delete;

  // Returns the node-unique ID for `t`, assigning a fresh one on first sight.
  uint64_t Intern(const TupleRef& t);

  // Returns the memoized tuple, or nullptr if unknown / removed.
  TupleRef Lookup(uint64_t id) const;

  // Drops a memoized tuple (reference-count GC, driven by the tracer).
  void Remove(uint64_t id);

  size_t size() const { return by_id_.size(); }

 private:
  uint64_t next_id_ = 1;
  std::unordered_map<uint64_t, TupleRef> by_id_;
  // content hash -> (tuple, id) buckets
  std::unordered_map<size_t, std::vector<std::pair<TupleRef, uint64_t>>> by_content_;
};

}  // namespace p2

#endif  // SRC_TRACE_TUPLE_STORE_H_
