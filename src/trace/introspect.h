// Introspection: engine state reflected as queryable tables (paper §2.1).
//
//   sysRule(NAddr, RuleID, Text)                      — every loaded rule
//   sysTable(NAddr, Name, Lifetime, MaxSize, Count)   — every table + current size
//   sysElement(NAddr, RuleID, Stage, Kind, Detail)    — every dataflow element
//
// sysRule and sysElement rows are written when programs are installed; sysTable row
// counts are refreshed on each soft-state sweep.

#ifndef SRC_TRACE_INTROSPECT_H_
#define SRC_TRACE_INTROSPECT_H_

namespace p2 {

class Node;

// Creates the sys* tables on `node` (idempotent).
void InstallIntrospectionTables(Node* node);

// Re-publishes sysRule and sysElement rows for everything currently loaded.
void PublishStaticIntrospection(Node* node);

// Refreshes sysTable rows (current counts). Called from the node's sweep.
void RefreshTableIntrospection(Node* node);

}  // namespace p2

#endif  // SRC_TRACE_INTROSPECT_H_
