// Introspection: engine state reflected as queryable tables (paper §2.1).
//
//   sysRule(NAddr, RuleID, Text)                      — every loaded rule
//   sysTable(NAddr, Name, Lifetime, MaxSize, Count)   — every table + current size
//   sysElement(NAddr, RuleID, Stage, Kind, Detail)    — every dataflow element
//
// plus the telemetry tables (the monitor monitoring itself — docs/OBSERVABILITY.md):
//
//   sysStat(NAddr, Name, Value)                       — node-level counters/gauges
//   sysRuleStat(NAddr, RuleID, Execs, BusyNs, Emits)  — per-rule execution metrics
//   sysTableStat(NAddr, Table, Inserts, Expires, Deletes) — per-table churn
//   sysIndexStat(NAddr, Table, Positions, Probes, AvgRows) — per-secondary-index use
//   sysChannelStat(NAddr, Dst, Sent, Acked, Retx, Dups, Failed) — per-peer reliable
//                                                       transport (docs/ROBUSTNESS.md)
//   sysForensicsStat(NAddr, Segments, Records, Bytes, Dropped, OldestMs) — the
//                                                       bounded trace retention store
//                                                       (docs/OBSERVABILITY.md); rows
//                                                       appear only when forensics is
//                                                       enabled on the node
//
// sysRule and sysElement rows are written when programs are installed; sysTable,
// sysStat, sysRuleStat, sysTableStat, sysIndexStat, sysChannelStat, and
// sysForensicsStat rows are refreshed on each soft-state sweep
// (sweep granularity — between sweeps the rows hold the previous sweep's values; the
// regression test SysStatTest.RowsAreSweepGranular pins this contract).

#ifndef SRC_TRACE_INTROSPECT_H_
#define SRC_TRACE_INTROSPECT_H_

namespace p2 {

class Node;

// Creates the sys* tables on `node` (idempotent).
void InstallIntrospectionTables(Node* node);

// Re-publishes sysRule and sysElement rows for everything currently loaded.
void PublishStaticIntrospection(Node* node);

// Refreshes sysTable rows (current counts). Called from the node's sweep.
void RefreshTableIntrospection(Node* node);

// Refreshes sysStat / sysRuleStat / sysTableStat rows from the node's stats, metrics
// registry, and per-table counters. Called from the node's sweep.
void RefreshStatIntrospection(Node* node);

}  // namespace p2

#endif  // SRC_TRACE_INTROSPECT_H_
