// ForensicsStore: bounded, log-structured retention of the execution trace
// (docs/OBSERVABILITY.md, "Forensics & time-travel queries").
//
// The live `ruleExec` / `tupleTable` tables are ordinary soft state: rows expire
// after `rule_exec_lifetime` seconds, so a long-running fleet loses the ability to
// answer "why did this happen an hour ago?". The forensics store is the paper's
// missing retention half: the Tracer dual-writes every execution record and every
// memoized tuple payload into an append-only in-memory log, organised as segments
// sealed by time range. Retention is enforced at *segment* granularity — when the
// byte budget or the age bound is exceeded, whole cold segments are dropped from
// the old end (a log-structured store never rewrites), so the retained history is
// always one contiguous window [oldest, now].
//
// Each segment is self-contained for replay: an exec record's cause and effect
// payloads are (re-)recorded into the segment that holds the record, so dropping a
// segment never breaks chains in the segments that remain. Cross-segment payload
// duplication is the price of whole-segment drop, and is counted in the budget.
//
// An index from (tuple name, key prefix, time) to segments — one posting set of
// name / "name/firstarg" hashes per segment plus the segment's time range — lets
// time-travel queries skip segments that cannot contain a matching head.

#ifndef SRC_TRACE_FORENSICS_H_
#define SRC_TRACE_FORENSICS_H_

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "src/runtime/tuple.h"

namespace p2 {

struct ForensicsOptions {
  // Master switch; when set on NodeOptions it also implies tracing (the store is
  // fed by the tracer's taps).
  bool enabled = false;
  // Seal the active segment once it holds this many exec records...
  size_t segment_records = 1024;
  // ...or once it spans this much virtual time, whichever comes first.
  double segment_span = 30.0;
  // Total retained-byte budget across all segments; the oldest sealed segments are
  // dropped until the total fits. The active segment is never dropped, so the
  // budget is enforced at segment granularity (one segment of slack).
  size_t budget_bytes = 4u << 20;
  // Age bound on retained records; 0 = bytes-only retention.
  double max_age = 0.0;
};

// Snapshot for sysForensicsStat(NAddr, Segments, Records, Bytes, Dropped, OldestMs).
struct ForensicsStats {
  uint64_t segments = 0;          // retained segments (incl. the active one)
  uint64_t records = 0;           // retained exec records
  uint64_t bytes = 0;             // approximate retained bytes
  uint64_t dropped_segments = 0;  // segments compacted away since construction
  double oldest_time = 0;         // earliest retained record time; 0 when empty
};

// One backward step of a causal chain: the ruleExec row (live or retained) whose
// EffectID matches the queried tuple.
struct ExecEdge {
  std::string rule;
  uint64_t cause_id = 0;
  uint64_t effect_id = 0;
  double cause_time = 0;
  double out_time = 0;
  bool is_event = false;
  bool found = false;
};

class ForensicsStore {
 public:
  ForensicsStore(std::string node_addr, ForensicsOptions options);

  ForensicsStore(const ForensicsStore&) = delete;
  ForensicsStore& operator=(const ForensicsStore&) = delete;

  const std::string& addr() const { return node_addr_; }
  const ForensicsOptions& options() const { return options_; }

  // --- ingest (called by the Tracer's dual-write path) ---

  // Appends one execution record and re-records the cause/effect payloads into the
  // active segment so it stays self-contained.
  void RecordExec(const std::string& rule_id, uint64_t cause_id, const TupleRef& cause,
                  uint64_t effect_id, const TupleRef& effect, double cause_time,
                  double out_time, bool is_event, double now);

  // Records a memoized tuple payload with its provenance (where the tuple came
  // from; `src_addr == addr()` means locally created).
  void RecordTuple(uint64_t id, const TupleRef& tuple, const std::string& src_addr,
                   uint64_t src_tuple_id, double now);

  // Drops whole cold segments until the byte budget and the age bound hold.
  // Called from the node's sweep; also run opportunistically when a segment seals.
  void Compact(double now);

  ForensicsStats Stats() const;

  // --- time-travel queries (see src/trace/replay.h for the chain walk) ---

  // The latest retained trigger edge (is_event) for `effect_id` with
  // out_time <= max_out_time. Returns found=false when none is retained.
  ExecEdge TriggerEdge(uint64_t effect_id, double max_out_time) const;

  // Precondition rows (is_event=false) sharing `effect_id` whose out_time matches
  // the chosen trigger edge, sorted by (cause_time, cause_id).
  std::vector<ExecEdge> Preconditions(uint64_t effect_id, double out_time) const;

  // Decodes the retained payload for tuple `id` (newest copy), or nullptr if the
  // segments holding it were dropped.
  TupleRef TupleById(uint64_t id) const;

  // Provenance of tuple `id`: true (and fills outputs) when the retained payload
  // arrived from another node.
  bool Provenance(uint64_t id, std::string* src_addr, uint64_t* src_tuple_id) const;

  // Heads for a time-travel query: (effect id, out_time) of retained trigger edges
  // whose effect tuple matches `key` and whose out_time lies in [t1, t2], sorted by
  // (out_time, effect_id). `key` is "*" (any), a tuple name, or "name/firstarg".
  std::vector<std::pair<uint64_t, double>> FindHeads(const std::string& key, double t1,
                                                     double t2) const;

  // True when the retained window still covers everything back to `t1` — i.e. no
  // record in [t1, now] can have been dropped by compaction.
  bool Covers(double t1) const;

  // Key predicate shared with the live walk (src/trace/replay.cc).
  static bool MatchKey(const std::string& key, const Tuple& tuple);

 private:
  struct ExecRecord {
    uint32_t rule = 0;  // index into rule_names_
    uint64_t cause_id = 0;
    uint64_t effect_id = 0;
    double cause_time = 0;
    double out_time = 0;
    bool is_event = false;
  };

  struct Payload {
    std::string bytes;     // wire-encoded tuple (src/net/wire.h)
    std::string src_addr;  // provenance origin; empty = unknown
    uint64_t src_tuple_id = 0;
    double time = 0;  // first recorded into this segment
  };

  struct Segment {
    double min_time = 0;
    double max_time = 0;
    bool has_records = false;
    bool sealed = false;
    size_t bytes = 0;  // approximate footprint, counted into the budget
    std::vector<ExecRecord> execs;
    std::unordered_map<uint64_t, Payload> payloads;
    // (name, key-prefix) posting set: hashes of "name" and "name/firstarg" for
    // every payload in the segment.
    std::unordered_set<uint64_t> postings;
  };

  Segment& Active(double now);
  void Touch(Segment& seg, double t);
  void AddPayload(Segment& seg, uint64_t id, const TupleRef& tuple,
                  const std::string& src_addr, uint64_t src_tuple_id, double t);
  uint32_t InternRule(const std::string& rule_id);
  const Payload* FindPayload(uint64_t id) const;

  std::string node_addr_;
  ForensicsOptions options_;
  std::deque<Segment> segments_;  // oldest first; back() is the active segment
  std::vector<std::string> rule_names_;
  std::unordered_map<std::string, uint32_t> rule_ids_;
  uint64_t dropped_segments_ = 0;
  // Latest known provenance per tuple id, copied into segments on exec re-record
  // so hops survive the drop of the segment that first saw the arrival. Entries
  // for locally created tuples are not kept (the common case), bounding growth to
  // remote arrivals; the map itself is bookkeeping, not retained history.
  std::unordered_map<uint64_t, std::pair<std::string, uint64_t>> remote_prov_;
};

}  // namespace p2

#endif  // SRC_TRACE_FORENSICS_H_
