// Tracer: execution tracing of rule strands (paper §2.1).
//
// The planner inserts three kinds of taps on every rule strand: the strand input (the
// triggering event), each precondition fetched by a join stage, and the strand output.
// From these taps the tracer reconstructs rule executions and records them as rows of
// the queryable `ruleExec` table:
//
//   ruleExec(NAddr, RuleID, CauseID, EffectID, CauseTime, OutTime, IsEvent)
//
// one row linking the triggering event to each output, plus one row per precondition
// that enabled the output. Tuples are referred to by node-unique IDs memoized in the
// TupleStore; the mapping, including cross-network provenance, lives in the queryable
// `tupleTable` table:
//
//   tupleTable(NAddr, TupleID, SrcAddr, SrcTupleID, DstAddr)
//
// Pipelined execution (paper §2.1.2) is handled with multiple tracing records per
// strand: each record is associated with a contiguous window of join stages; stage
// completion signals ("the element seeks new input") advance record windows, and
// preconditions/outputs are matched to records by stage association. The number of
// records per strand is bounded (the paper's "fixed number of execution records"
// optimization).
//
// tupleTable rows are reference-counted by the ruleExec rows that mention them and are
// dropped when the last referring row expires (paper §2.1.3).

#ifndef SRC_TRACE_TRACER_H_
#define SRC_TRACE_TRACER_H_

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/runtime/table.h"
#include "src/runtime/tuple.h"
#include "src/trace/tuple_store.h"

namespace p2 {

class ForensicsStore;
class Strand;

// Names a strand to the tracer without coupling the tracer to strand internals.
struct TraceTarget {
  const void* strand = nullptr;  // identity
  std::string rule_id;
  int num_stages = 0;  // join stages, 1-based indices 1..num_stages
};

class Tracer {
 public:
  // `node_addr` labels rows; `rule_exec` / `tuple_table` are the destination tables;
  // `store` assigns tuple IDs; `now` is read through the pointer at tap time.
  Tracer(std::string node_addr, TupleStore* store, size_t max_records_per_rule);

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // Wires the destination tables (done by the node once the catalog exists). The
  // tracer registers a listener on `rule_exec` to drive reference-count GC.
  void AttachTables(Table* rule_exec, Table* tuple_table);

  bool enabled() const { return enabled_; }
  void set_enabled(bool on) { enabled_ = on; }

  // Dual-write destination (docs/OBSERVABILITY.md): when set, every ruleExec row
  // and every memoized tuple payload is also appended to the bounded retention
  // store, so causal chains stay answerable after the live rows expire.
  void set_forensics(ForensicsStore* forensics) { forensics_ = forensics; }

  // --- taps (called by strand execution) ---
  void OnInput(const TraceTarget& t, const TupleRef& tuple, double now);
  void OnPrecondition(const TraceTarget& t, int stage, const TupleRef& tuple, double now);
  void OnStageComplete(const TraceTarget& t, int stage);
  void OnOutput(const TraceTarget& t, const TupleRef& tuple, double now);

  // --- arrivals (called by the node's delivery path) ---
  // Memoizes `tuple` and records its provenance row in tupleTable. `src_tuple_id` is
  // the ID the tuple had at `src_addr` (0 means locally created: the local ID is used).
  uint64_t MemoizeArrival(const TupleRef& tuple, const std::string& src_addr,
                          uint64_t src_tuple_id, double now);

  // Number of ruleExec rows written since construction.
  uint64_t rule_exec_rows_written() const { return rows_written_; }

 private:
  struct Record {
    bool free = true;
    uint64_t seq = 0;          // creation order, for bounded reuse
    int first_stage = 0;       // window [first_stage, last_stage]; 0 = no stages yet
    int last_stage = 0;
    uint64_t event_id = 0;
    TupleRef event;
    double event_time = 0;
    // Per-stage fetched preconditions (index 1..num_stages).
    std::vector<std::optional<std::pair<uint64_t, double>>> preconds;
    std::vector<TupleRef> precond_tuples;
  };

  struct RuleRecords {
    std::vector<Record> records;
  };

  Record* FindRecordForStage(RuleRecords& rr, int stage);
  Record* AllocateRecord(const TraceTarget& t, RuleRecords& rr);
  void EmitRuleExec(const TraceTarget& t, Record& rec, const TupleRef& output, double now);
  void WriteRow(const std::string& rule_id, uint64_t cause_id, const TupleRef& cause,
                uint64_t effect_id, const TupleRef& effect, double cause_time,
                double out_time, bool is_event, double now);
  void AddRef(uint64_t id);
  void DropRef(uint64_t id, double now);

  std::string node_addr_;
  TupleStore* store_;
  Table* rule_exec_ = nullptr;
  Table* tuple_table_ = nullptr;
  ForensicsStore* forensics_ = nullptr;
  size_t max_records_per_rule_;
  bool enabled_ = false;
  uint64_t next_record_seq_ = 1;
  uint64_t rows_written_ = 0;
  bool in_gc_ = false;
  std::unordered_map<const void*, RuleRecords> per_rule_;
  std::unordered_map<uint64_t, int> refcounts_;
  double last_now_ = 0;
};

}  // namespace p2

#endif  // SRC_TRACE_TRACER_H_
