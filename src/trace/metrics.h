// Self-monitoring telemetry: the per-node metrics registry and structured export.
//
// The paper's thesis is that engine state should be reflected as queryable tables
// (§2.1); its evaluation (§4) is entirely about the engine's own CPU, message, and
// memory behaviour. This module closes that loop: every hot path feeds cheap plain
// counters (one integer add; histograms are power-of-two buckets, one bit-width
// computation per observation), and the resulting state is published two ways —
//
//   * as OverLog-queryable introspection tables (sysStat / sysRuleStat /
//     sysTableStat, refreshed on each soft-state sweep — src/trace/introspect.h),
//     so monitoring rules can be written against the engine itself;
//   * as structured JSONL or CSV streams through a MetricsSink pluggable into the
//     Network (one snapshot per node per sweep), for offline analysis and the
//     bench harness's BENCH_*.json artifacts.
//
// Handles returned by the registry (Counter*, Gauge*, Histogram*, RuleMetrics*) are
// stable for the registry's lifetime: hot paths hold the pointer and never repeat
// the name lookup.

#ifndef SRC_TRACE_METRICS_H_
#define SRC_TRACE_METRICS_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace p2 {

class Node;

// Wall-clock monotonic nanoseconds (the busy-time accounting clock; never enters
// virtual time).
inline uint64_t MonotonicNs() {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now().time_since_epoch())
                                   .count());
}

// A monotonically increasing count. Updates are plain integer adds.
struct Counter {
  uint64_t value = 0;
  void Inc(uint64_t n = 1) { value += n; }
};

// A point-in-time signed level (queue depths, high-water marks).
struct Gauge {
  int64_t value = 0;
  void Set(int64_t v) { value = v; }
  void Add(int64_t d) { value += d; }
  void Max(int64_t v) {
    if (v > value) {
      value = v;
    }
  }
};

// Fixed-bucket latency histogram. Bucket i counts observations whose bit width is i,
// i.e. values in [2^(i-1), 2^i); bucket 0 counts zeros. Observation cost is one
// bit-width computation and two adds — cheap enough for per-trigger latencies.
class Histogram {
 public:
  // 64-bit values have bit widths 0..64.
  static constexpr size_t kBuckets = 65;

  void Observe(uint64_t v) {
    ++counts_[BucketOf(v)];
    ++count_;
    sum_ += v;
  }

  uint64_t count() const { return count_; }
  uint64_t sum() const { return sum_; }
  uint64_t bucket(size_t i) const { return counts_[i]; }
  double Mean() const { return count_ == 0 ? 0.0 : static_cast<double>(sum_) / count_; }

  // Upper bound (inclusive) of bucket i: the largest value it can hold.
  static uint64_t BucketUpperBound(size_t i) {
    if (i == 0) {
      return 0;
    }
    if (i >= 64) {
      return ~0ULL;
    }
    return (1ULL << i) - 1;
  }

  static size_t BucketOf(uint64_t v) {
    size_t width = 0;
    while (v != 0) {
      v >>= 1;
      ++width;
    }
    return width;
  }

  // Value below which a fraction `q` (0..1] of observations fall, reported as the
  // upper bound of the bucket containing that rank. 0 when empty.
  uint64_t ValueAtQuantile(double q) const;

  void Reset();

 private:
  uint64_t counts_[kBuckets] = {};
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
};

// Cumulative execution counters for one rule (strand or continuous aggregate).
// `busy_ns` is wall-clock time inside the rule's trigger/re-evaluation; `emits` is
// head tuples routed while it ran. `join_probe_rows` / `join_scan_rows` count rows
// yielded to the rule's join/negation stages by indexed probes (secondary-index or
// primary-key) versus full scans — the probe:scan ratio is how the index win shows
// up in the engine's own telemetry.
struct RuleMetrics {
  uint64_t execs = 0;
  uint64_t busy_ns = 0;
  uint64_t emits = 0;
  uint64_t join_probe_rows = 0;
  uint64_t join_scan_rows = 0;
};

// One node's metric namespace. Not thread-safe (a node is single-threaded by
// construction). Name lookups happen once, at registration; hot paths use the
// returned stable handle.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Find-or-create. Repeated calls with the same name return the same handle.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);
  RuleMetrics* GetRuleMetrics(const std::string& rule_id);

  // Forgets one rule's counters (program unload). The handle becomes invalid.
  void DropRuleMetrics(const std::string& rule_id);

  // Zeroes every metric; registrations (and handles) survive.
  void Reset();

  // Sorted iteration for snapshots and introspection (deterministic output).
  const std::map<std::string, std::unique_ptr<Counter>>& counters() const {
    return counters_;
  }
  const std::map<std::string, std::unique_ptr<Gauge>>& gauges() const { return gauges_; }
  const std::map<std::string, std::unique_ptr<Histogram>>& histograms() const {
    return histograms_;
  }
  const std::map<std::string, std::unique_ptr<RuleMetrics>>& rules() const {
    return rules_;
  }

 private:
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::unique_ptr<RuleMetrics>> rules_;
};

// A point-in-time flattening of one node's telemetry, the unit handed to sinks.
struct MetricsSnapshot {
  double time = 0;    // virtual time of the snapshot
  std::string node;   // node address

  // Node-level counters and gauges, name -> value (NodeStats fields plus every
  // registry counter/gauge), sorted by name.
  std::vector<std::pair<std::string, int64_t>> stats;

  struct RuleRow {
    std::string rule_id;
    uint64_t execs = 0;
    uint64_t busy_ns = 0;
    uint64_t emits = 0;
    uint64_t join_probe_rows = 0;
    uint64_t join_scan_rows = 0;
  };
  std::vector<RuleRow> rules;

  struct TableRow {
    std::string table;
    uint64_t inserts = 0;
    uint64_t refreshes = 0;
    uint64_t expires = 0;
    uint64_t deletes = 0;
    uint64_t evictions = 0;
    uint64_t live_rows = 0;
  };
  std::vector<TableRow> tables;

  struct HistRow {
    std::string name;
    uint64_t count = 0;
    uint64_t sum = 0;
    uint64_t p50 = 0;
    uint64_t p90 = 0;
    uint64_t p99 = 0;
  };
  std::vector<HistRow> hists;
};

// Flattens a node's current telemetry (NodeStats, registry, per-table counters).
MetricsSnapshot SnapshotNodeMetrics(Node* node);

// Structured export. A sink receives one snapshot per node per soft-state sweep when
// attached to a Network (Network::SetMetricsSink).
class MetricsSink {
 public:
  virtual ~MetricsSink() = default;
  virtual void Write(const MetricsSnapshot& snap) = 0;
};

// One JSON object per snapshot, newline-terminated (JSON Lines).
class JsonlMetricsSink : public MetricsSink {
 public:
  // `out` must outlive the sink.
  explicit JsonlMetricsSink(std::ostream* out) : out_(out) {}
  void Write(const MetricsSnapshot& snap) override;

 private:
  std::ostream* out_;
};

// Long-format CSV: header `time,node,metric,value`, one row per metric. Rule, table,
// and histogram metrics are namespaced as rule.<id>.<field>, table.<name>.<field>,
// hist.<name>.<field>.
class CsvMetricsSink : public MetricsSink {
 public:
  explicit CsvMetricsSink(std::ostream* out) : out_(out) {}
  void Write(const MetricsSnapshot& snap) override;

 private:
  std::ostream* out_;
  bool header_written_ = false;
};

// Opens a file-backed sink; the format is chosen by extension (".csv" -> CSV,
// anything else -> JSONL). Returns nullptr and sets `error` if the file cannot be
// opened.
std::unique_ptr<MetricsSink> OpenMetricsSink(const std::string& path,
                                             std::string* error);

}  // namespace p2

#endif  // SRC_TRACE_METRICS_H_
