#include "src/trace/tracer.h"

#include <algorithm>

#include "src/trace/forensics.h"

namespace p2 {

Tracer::Tracer(std::string node_addr, TupleStore* store, size_t max_records_per_rule)
    : node_addr_(std::move(node_addr)),
      store_(store),
      max_records_per_rule_(max_records_per_rule == 0 ? 1 : max_records_per_rule) {}

void Tracer::AttachTables(Table* rule_exec, Table* tuple_table) {
  rule_exec_ = rule_exec;
  tuple_table_ = tuple_table;
  // Reference-count GC: when a ruleExec row goes away, the tuples it referred to lose a
  // reference; at zero the tupleTable row and the memoized tuple are dropped.
  rule_exec_->AddListener([this](TableChange change, const TupleRef& row) {
    if (change == TableChange::kInsert || in_gc_) {
      return;
    }
    if (row->arity() >= 4) {
      in_gc_ = true;
      if (row->field(2).kind() == Value::Kind::kId) {
        DropRef(row->field(2).AsId(), last_now_);
      }
      if (row->field(3).kind() == Value::Kind::kId) {
        DropRef(row->field(3).AsId(), last_now_);
      }
      in_gc_ = false;
    }
  });
}

Tracer::Record* Tracer::FindRecordForStage(RuleRecords& rr, int stage) {
  // Among records whose window contains `stage`, pick the oldest (first come, first
  // served — the execution that reached this stage earliest is the one the stage is
  // currently working for).
  Record* found = nullptr;
  for (Record& rec : rr.records) {
    if (!rec.free && rec.first_stage <= stage && stage <= rec.last_stage &&
        (found == nullptr || rec.seq < found->seq)) {
      found = &rec;
    }
  }
  return found;
}

Tracer::Record* Tracer::AllocateRecord(const TraceTarget& t, RuleRecords& rr) {
  // Prefer a free record; otherwise grow up to the bound; otherwise reuse the oldest.
  Record* chosen = nullptr;
  for (Record& rec : rr.records) {
    if (rec.free) {
      chosen = &rec;
      break;
    }
  }
  if (chosen == nullptr && rr.records.size() < max_records_per_rule_) {
    rr.records.emplace_back();
    chosen = &rr.records.back();
  }
  if (chosen == nullptr) {
    chosen = &rr.records[0];
    for (Record& rec : rr.records) {
      if (rec.seq < chosen->seq) {
        chosen = &rec;
      }
    }
  }
  chosen->free = false;
  chosen->seq = next_record_seq_++;
  chosen->first_stage = t.num_stages >= 1 ? 1 : 0;
  chosen->last_stage = chosen->first_stage;
  chosen->event_id = 0;
  chosen->event = nullptr;
  chosen->event_time = 0;
  chosen->preconds.assign(static_cast<size_t>(t.num_stages) + 1, std::nullopt);
  chosen->precond_tuples.assign(static_cast<size_t>(t.num_stages) + 1, nullptr);
  return chosen;
}

void Tracer::OnInput(const TraceTarget& t, const TupleRef& tuple, double now) {
  if (!enabled_) {
    return;
  }
  last_now_ = now;
  RuleRecords& rr = per_rule_[t.strand];
  Record* rec = AllocateRecord(t, rr);
  rec->event = tuple;
  rec->event_id = store_->Intern(tuple);
  rec->event_time = now;
}

void Tracer::OnPrecondition(const TraceTarget& t, int stage, const TupleRef& tuple,
                            double now) {
  if (!enabled_ || stage < 1 || stage > t.num_stages) {
    return;
  }
  last_now_ = now;
  RuleRecords& rr = per_rule_[t.strand];
  Record* rec = FindRecordForStage(rr, stage);
  if (rec == nullptr) {
    // Extend the record with the latest associated stages (paper §2.1.2).
    for (Record& candidate : rr.records) {
      if (!candidate.free &&
          (rec == nullptr || candidate.last_stage > rec->last_stage ||
           (candidate.last_stage == rec->last_stage && candidate.seq > rec->seq))) {
        rec = &candidate;
      }
    }
    if (rec == nullptr) {
      rec = AllocateRecord(t, rr);  // precondition without input: defensive
    }
    rec->last_stage = std::max(rec->last_stage, stage);
    if (rec->first_stage == 0) {
      rec->first_stage = stage;
    }
  }
  rec->last_stage = std::max(rec->last_stage, stage);
  rec->preconds[static_cast<size_t>(stage)] = std::make_pair(store_->Intern(tuple), now);
  rec->precond_tuples[static_cast<size_t>(stage)] = tuple;
  // A fresh precondition in the middle of a strand invalidates previously observed
  // preconditions to its right (paper §2.1.1): downstream joins will re-fetch.
  for (int j = stage + 1; j <= t.num_stages; ++j) {
    rec->preconds[static_cast<size_t>(j)] = std::nullopt;
    rec->precond_tuples[static_cast<size_t>(j)] = nullptr;
  }
}

void Tracer::OnStageComplete(const TraceTarget& t, int stage) {
  if (!enabled_) {
    return;
  }
  auto it = per_rule_.find(t.strand);
  if (it == per_rule_.end()) {
    return;
  }
  Record* rec = nullptr;
  for (Record& candidate : it->second.records) {
    if (!candidate.free && candidate.first_stage == stage &&
        (rec == nullptr || candidate.seq < rec->seq)) {
      rec = &candidate;
    }
  }
  if (rec != nullptr) {
    rec->first_stage = stage + 1;
    if (rec->first_stage > rec->last_stage || rec->first_stage > t.num_stages) {
      rec->free = true;  // all stages abandoned: the execution has drained
    }
  }
}

void Tracer::OnOutput(const TraceTarget& t, const TupleRef& tuple, double now) {
  if (!enabled_) {
    return;
  }
  last_now_ = now;
  auto it = per_rule_.find(t.strand);
  if (it == per_rule_.end()) {
    return;
  }
  // The output belongs to the record with the highest associated stage.
  Record* rec = nullptr;
  for (Record& candidate : it->second.records) {
    if (candidate.free) {
      continue;
    }
    if (rec == nullptr || candidate.last_stage > rec->last_stage ||
        (candidate.last_stage == rec->last_stage && candidate.seq > rec->seq)) {
      rec = &candidate;
    }
  }
  if (rec == nullptr) {
    return;
  }
  EmitRuleExec(t, *rec, tuple, now);
}

void Tracer::EmitRuleExec(const TraceTarget& t, Record& rec, const TupleRef& output,
                          double now) {
  if (rule_exec_ == nullptr || rec.event == nullptr) {
    return;
  }
  uint64_t out_id = store_->Intern(output);
  // Ensure the output tuple has a tupleTable row even before it is delivered anywhere
  // (its provenance starts here).
  MemoizeArrival(output, node_addr_, 0, now);
  WriteRow(t.rule_id, rec.event_id, rec.event, out_id, output, rec.event_time, now,
           /*is_event=*/true, now);
  for (int stage = 1; stage <= t.num_stages; ++stage) {
    const auto& pc = rec.preconds[static_cast<size_t>(stage)];
    if (pc.has_value()) {
      WriteRow(t.rule_id, pc->first, rec.precond_tuples[static_cast<size_t>(stage)], out_id,
               output, pc->second, now, /*is_event=*/false, now);
    }
  }
}

void Tracer::WriteRow(const std::string& rule_id, uint64_t cause_id, const TupleRef& cause,
                      uint64_t effect_id, const TupleRef& effect, double cause_time,
                      double out_time, bool is_event, double now) {
  ValueList fields;
  fields.reserve(7);
  fields.push_back(Value::Str(node_addr_));
  fields.push_back(Value::Str(rule_id));
  fields.push_back(Value::Id(cause_id));
  fields.push_back(Value::Id(effect_id));
  fields.push_back(Value::Double(cause_time));
  fields.push_back(Value::Double(out_time));
  fields.push_back(Value::Bool(is_event));
  InsertOutcome outcome = rule_exec_->Insert(Tuple::Make("ruleExec", std::move(fields)), now);
  if (outcome != InsertOutcome::kRefreshed) {
    ++rows_written_;
    AddRef(cause_id);
    AddRef(effect_id);
    // Retention dual-write mirrors the live table's refresh suppression, so the
    // store holds the same logical records the table would absent expiry.
    if (forensics_ != nullptr) {
      forensics_->RecordExec(rule_id, cause_id, cause, effect_id, effect, cause_time,
                             out_time, is_event, now);
    }
  }
}

uint64_t Tracer::MemoizeArrival(const TupleRef& tuple, const std::string& src_addr,
                                uint64_t src_tuple_id, double now) {
  uint64_t id = store_->Intern(tuple);
  if (tuple_table_ != nullptr) {
    ValueList fields;
    fields.reserve(5);
    fields.push_back(Value::Str(node_addr_));
    fields.push_back(Value::Id(id));
    fields.push_back(Value::Str(src_addr));
    fields.push_back(Value::Id(src_tuple_id == 0 ? id : src_tuple_id));
    fields.push_back(Value::Str(tuple->LocationSpecifier()));
    tuple_table_->Insert(Tuple::Make("tupleTable", std::move(fields)), now);
  }
  if (forensics_ != nullptr) {
    forensics_->RecordTuple(id, tuple, src_addr, src_tuple_id == 0 ? id : src_tuple_id,
                            now);
  }
  return id;
}

void Tracer::AddRef(uint64_t id) { ++refcounts_[id]; }

void Tracer::DropRef(uint64_t id, double now) {
  auto it = refcounts_.find(id);
  if (it == refcounts_.end()) {
    return;
  }
  if (--it->second > 0) {
    return;
  }
  refcounts_.erase(it);
  store_->Remove(id);
  if (tuple_table_ != nullptr) {
    // Delete the tupleTable row whose TupleID field (position 1) matches.
    ValueList pattern = {Value::Null(), Value::Id(id)};
    std::vector<bool> bound = {false, true};
    tuple_table_->DeleteMatching(pattern, bound, now);
  }
}

}  // namespace p2
