// Time-travel causal replay (docs/OBSERVABILITY.md).
//
// ReplayChains reconstructs the causal rule chains behind tuples matching a key in
// a time window, walking trigger edges backward (EffectID -> CauseID, paper §2.1)
// and stitching cross-node hops through tupleTable provenance. The walk is written
// against the TraceSource interface so the same logic runs over both trace
// representations:
//
//   LiveTraceSource       — the live ruleExec / tupleTable tables + TupleStore
//                           (soft state: answers only while rows are alive)
//   ForensicsTraceSource  — the bounded log-structured ForensicsStore
//                           (answers for any window still inside the budget)
//
// The simfuzz retention-consistency oracle runs the same windows through both and
// requires identical chains (src/simtest/oracles.cc).
//
// Determinism contract: chains, steps, and the JSONL export are canonically
// ordered — (head out_time, head tuple id) across chains, walk order within a
// chain, (cause_time, cause id) among join preconditions — and tuple-ID interning
// order is shard-invariant (docs/SCALING.md), so exported chains are bit-identical
// at any shard count K.

#ifndef SRC_TRACE_REPLAY_H_
#define SRC_TRACE_REPLAY_H_

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "src/trace/forensics.h"

namespace p2 {

class Node;

// One backward step: `rule` fired on `node` at out_time, deriving the tuple with
// id `effect_id` from trigger cause `cause_id`. When `hop` is set, the step's
// effect crossed the network: the previous (downstream) step observed the tuple on
// a different node and provenance led here.
struct CausalStep {
  std::string node;
  std::string rule;
  uint64_t cause_id = 0;
  uint64_t effect_id = 0;
  double cause_time = 0;
  double out_time = 0;
  std::string cause_text;  // printed trigger tuple; empty if the payload is gone
  bool hop = false;
  // Join preconditions that enabled the output: (tuple id, printed tuple).
  std::vector<std::pair<uint64_t, std::string>> preconds;
};

struct CausalChain {
  std::string node;  // node the query was issued against
  uint64_t head_id = 0;
  double head_time = 0;
  std::string head_text;
  bool truncated = false;  // depth limit hit before reaching a root
  std::vector<CausalStep> steps;  // backward from the head
};

// One node's view of a trace, queryable for the backward walk.
class TraceSource {
 public:
  virtual ~TraceSource() = default;
  virtual const std::string& addr() const = 0;
  // Latest trigger edge for `effect_id` with out_time <= max_out_time.
  virtual ExecEdge TriggerEdge(uint64_t effect_id, double max_out_time) const = 0;
  // Precondition rows sharing (effect_id, out_time), canonically ordered.
  virtual std::vector<ExecEdge> Preconditions(uint64_t effect_id,
                                              double out_time) const = 0;
  virtual TupleRef TupleById(uint64_t id) const = 0;
  // True when tuple `id` arrived from another node; fills the sender and the
  // sender's id for it.
  virtual bool Provenance(uint64_t id, std::string* src_addr,
                          uint64_t* src_tuple_id) const = 0;
  // (effect id, out_time) of trigger edges whose effect matches `key` in [t1, t2],
  // sorted by (out_time, id). Key syntax: "*", "name", or "name/firstarg".
  virtual std::vector<std::pair<uint64_t, double>> FindHeads(const std::string& key,
                                                             double t1,
                                                             double t2) const = 0;
};

// The live soft-state tables. Host-side only (reads Node tables directly): safe
// between Fleet::Run calls, like NodeHandle::Query.
class LiveTraceSource : public TraceSource {
 public:
  explicit LiveTraceSource(Node* node) : node_(node) {}
  const std::string& addr() const override;
  ExecEdge TriggerEdge(uint64_t effect_id, double max_out_time) const override;
  std::vector<ExecEdge> Preconditions(uint64_t effect_id,
                                      double out_time) const override;
  TupleRef TupleById(uint64_t id) const override;
  bool Provenance(uint64_t id, std::string* src_addr,
                  uint64_t* src_tuple_id) const override;
  std::vector<std::pair<uint64_t, double>> FindHeads(const std::string& key, double t1,
                                                     double t2) const override;

 private:
  Node* node_;
};

// The bounded retention store.
class ForensicsTraceSource : public TraceSource {
 public:
  explicit ForensicsTraceSource(const ForensicsStore* store) : store_(store) {}
  const std::string& addr() const override { return store_->addr(); }
  ExecEdge TriggerEdge(uint64_t effect_id, double max_out_time) const override {
    return store_->TriggerEdge(effect_id, max_out_time);
  }
  std::vector<ExecEdge> Preconditions(uint64_t effect_id,
                                      double out_time) const override {
    return store_->Preconditions(effect_id, out_time);
  }
  TupleRef TupleById(uint64_t id) const override { return store_->TupleById(id); }
  bool Provenance(uint64_t id, std::string* src_addr,
                  uint64_t* src_tuple_id) const override {
    return store_->Provenance(id, src_addr, src_tuple_id);
  }
  std::vector<std::pair<uint64_t, double>> FindHeads(const std::string& key, double t1,
                                                     double t2) const override {
    return store_->FindHeads(key, t1, t2);
  }

 private:
  const ForensicsStore* store_;
};

// Maps a node address to its trace source (nullptr = unknown node; the walk then
// stops at that hop). Lets the walk stitch chains across the fleet.
using TraceSourceResolver = std::function<TraceSource*(const std::string&)>;

struct ReplayLimits {
  size_t max_heads = 256;  // chains per query
  size_t max_depth = 64;   // steps per chain
};

// Reconstructs the causal chains of every tuple matching `key` derived on `addr`
// during [t1, t2], following cross-node provenance through `resolver`.
std::vector<CausalChain> ReplayChains(const TraceSourceResolver& resolver,
                                      const std::string& addr, const std::string& key,
                                      double t1, double t2,
                                      ReplayLimits limits = ReplayLimits());

// One JSON object per chain, canonically ordered (see determinism contract above).
std::string ExportChainsJsonl(const std::vector<CausalChain>& chains);

}  // namespace p2

#endif  // SRC_TRACE_REPLAY_H_
