#include "src/trace/metrics.h"

#include <fstream>
#include <ostream>
#include <sstream>

#include "src/net/node.h"

namespace p2 {

uint64_t Histogram::ValueAtQuantile(double q) const {
  if (count_ == 0) {
    return 0;
  }
  if (q < 0) {
    q = 0;
  }
  if (q > 1) {
    q = 1;
  }
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(count_));
  if (rank == 0) {
    rank = 1;
  }
  uint64_t seen = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    seen += counts_[i];
    if (seen >= rank) {
      return BucketUpperBound(i);
    }
  }
  return BucketUpperBound(kBuckets - 1);
}

void Histogram::Reset() {
  for (uint64_t& c : counts_) {
    c = 0;
  }
  count_ = 0;
  sum_ = 0;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  auto& slot = counters_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Counter>();
  }
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  auto& slot = gauges_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Gauge>();
  }
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Histogram>();
  }
  return slot.get();
}

RuleMetrics* MetricsRegistry::GetRuleMetrics(const std::string& rule_id) {
  auto& slot = rules_[rule_id];
  if (slot == nullptr) {
    slot = std::make_unique<RuleMetrics>();
  }
  return slot.get();
}

void MetricsRegistry::DropRuleMetrics(const std::string& rule_id) {
  rules_.erase(rule_id);
}

void MetricsRegistry::Reset() {
  for (auto& [name, c] : counters_) {
    c->value = 0;
  }
  for (auto& [name, g] : gauges_) {
    g->value = 0;
  }
  for (auto& [name, h] : histograms_) {
    h->Reset();
  }
  for (auto& [name, r] : rules_) {
    *r = RuleMetrics{};
  }
}

MetricsSnapshot SnapshotNodeMetrics(Node* node) {
  MetricsSnapshot snap;
  snap.time = node->Now();
  snap.node = node->addr();

  const NodeStats& s = node->stats();
  snap.stats = {
      {"agg_reevals", static_cast<int64_t>(s.agg_reevals)},
      {"bytes_received", static_cast<int64_t>(s.bytes_received)},
      {"bytes_sent", static_cast<int64_t>(s.bytes_sent)},
      {"busy_ns", static_cast<int64_t>(s.busy_ns)},
      {"dead_letters", static_cast<int64_t>(s.dead_letters)},
      {"decode_errors", static_cast<int64_t>(s.decode_errors)},
      {"local_deliveries", static_cast<int64_t>(s.local_deliveries)},
      {"msgs_received", static_cast<int64_t>(s.msgs_received)},
      {"msgs_sent", static_cast<int64_t>(s.msgs_sent)},
      {"queue_depth", static_cast<int64_t>(node->QueueDepth())},
      {"queue_hwm", static_cast<int64_t>(s.queue_hwm)},
      // Overload resilience (docs/ROBUSTNESS.md): admission/shed accounting per
      // priority class, channel-buffer high-water marks, and the watchdog state.
      {"admitted_besteffort", static_cast<int64_t>(s.admitted_besteffort)},
      {"admitted_low", static_cast<int64_t>(s.admitted_low)},
      {"admitted_reliable", static_cast<int64_t>(s.admitted_reliable)},
      {"shed_besteffort", static_cast<int64_t>(s.shed_besteffort)},
      {"shed_low", static_cast<int64_t>(s.shed_low)},
      {"shed_reliable", static_cast<int64_t>(s.shed_reliable)},
      {"rel_busy_dropped", static_cast<int64_t>(s.rel_busy_dropped)},
      {"rel_reorder_dropped", static_cast<int64_t>(s.rel_reorder_dropped)},
      {"be_queue_hwm", static_cast<int64_t>(s.be_queue_hwm)},
      {"low_queue_hwm", static_cast<int64_t>(s.low_queue_hwm)},
      {"rel_pending_hwm", static_cast<int64_t>(s.rel_pending_hwm)},
      {"rel_backlog_hwm", static_cast<int64_t>(s.rel_backlog_hwm)},
      {"rel_reorder_hwm", static_cast<int64_t>(s.rel_reorder_hwm)},
      {"degrade_enters", static_cast<int64_t>(s.degrade_enters)},
      {"degrade_exits", static_cast<int64_t>(s.degrade_exits)},
      {"degraded", node->degraded() ? int64_t{1} : int64_t{0}},
      {"strand_triggers", static_cast<int64_t>(s.strand_triggers)},
      // Provenance memory pressure: tuples memoized by the tracer's TupleStore
      // (refcount-GCed with the ruleExec rows that mention them).
      {"tuple_store_size", static_cast<int64_t>(node->store().size())},
      {"tuples_emitted", static_cast<int64_t>(s.tuples_emitted)},
      {"tuples_expired", static_cast<int64_t>(s.tuples_expired)},
  };
  const MetricsRegistry& reg = node->metrics();
  for (const auto& [name, c] : reg.counters()) {
    snap.stats.emplace_back(name, static_cast<int64_t>(c->value));
  }
  for (const auto& [name, g] : reg.gauges()) {
    snap.stats.emplace_back(name, g->value);
  }

  for (const auto& [rule_id, m] : reg.rules()) {
    snap.rules.push_back(
        {rule_id, m->execs, m->busy_ns, m->emits, m->join_probe_rows, m->join_scan_rows});
  }

  double now = snap.time;
  for (Table* table : node->catalog().AllTables()) {
    const TableCounters& c = table->counters();
    snap.tables.push_back({table->name(), c.inserts, c.refreshes, c.expires, c.deletes,
                           c.evictions, static_cast<uint64_t>(table->Size(now))});
  }

  for (const auto& [name, h] : reg.histograms()) {
    snap.hists.push_back({name, h->count(), h->sum(), h->ValueAtQuantile(0.5),
                          h->ValueAtQuantile(0.9), h->ValueAtQuantile(0.99)});
  }
  return snap;
}

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// CSV quoting: fields with commas/quotes/newlines are double-quoted.
std::string CsvField(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) {
    return s;
  }
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') {
      out += "\"\"";
    } else {
      out += c;
    }
  }
  out += '"';
  return out;
}

}  // namespace

void JsonlMetricsSink::Write(const MetricsSnapshot& snap) {
  std::ostream& out = *out_;
  out << "{\"t\":" << snap.time << ",\"node\":\"" << JsonEscape(snap.node) << "\"";
  out << ",\"stats\":{";
  bool first = true;
  for (const auto& [name, value] : snap.stats) {
    out << (first ? "" : ",") << "\"" << JsonEscape(name) << "\":" << value;
    first = false;
  }
  out << "},\"rules\":{";
  first = true;
  for (const auto& r : snap.rules) {
    out << (first ? "" : ",") << "\"" << JsonEscape(r.rule_id) << "\":{\"execs\":"
        << r.execs << ",\"busy_ns\":" << r.busy_ns << ",\"emits\":" << r.emits
        << ",\"join_probe_rows\":" << r.join_probe_rows
        << ",\"join_scan_rows\":" << r.join_scan_rows << "}";
    first = false;
  }
  out << "},\"tables\":{";
  first = true;
  for (const auto& t : snap.tables) {
    out << (first ? "" : ",") << "\"" << JsonEscape(t.table)
        << "\":{\"inserts\":" << t.inserts << ",\"refreshes\":" << t.refreshes
        << ",\"expires\":" << t.expires << ",\"deletes\":" << t.deletes
        << ",\"evictions\":" << t.evictions << ",\"live_rows\":" << t.live_rows << "}";
    first = false;
  }
  out << "},\"hists\":{";
  first = true;
  for (const auto& h : snap.hists) {
    out << (first ? "" : ",") << "\"" << JsonEscape(h.name) << "\":{\"count\":"
        << h.count << ",\"sum\":" << h.sum << ",\"p50\":" << h.p50 << ",\"p90\":"
        << h.p90 << ",\"p99\":" << h.p99 << "}";
    first = false;
  }
  out << "}}\n";
  out.flush();
}

void CsvMetricsSink::Write(const MetricsSnapshot& snap) {
  std::ostream& out = *out_;
  if (!header_written_) {
    out << "time,node,metric,value\n";
    header_written_ = true;
  }
  auto row = [&](const std::string& metric, uint64_t value) {
    out << snap.time << ',' << CsvField(snap.node) << ',' << CsvField(metric) << ','
        << value << '\n';
  };
  for (const auto& [name, value] : snap.stats) {
    out << snap.time << ',' << CsvField(snap.node) << ',' << CsvField(name) << ','
        << value << '\n';
  }
  for (const auto& r : snap.rules) {
    row("rule." + r.rule_id + ".execs", r.execs);
    row("rule." + r.rule_id + ".busy_ns", r.busy_ns);
    row("rule." + r.rule_id + ".emits", r.emits);
    row("rule." + r.rule_id + ".join_probe_rows", r.join_probe_rows);
    row("rule." + r.rule_id + ".join_scan_rows", r.join_scan_rows);
  }
  for (const auto& t : snap.tables) {
    row("table." + t.table + ".inserts", t.inserts);
    row("table." + t.table + ".refreshes", t.refreshes);
    row("table." + t.table + ".expires", t.expires);
    row("table." + t.table + ".deletes", t.deletes);
    row("table." + t.table + ".evictions", t.evictions);
    row("table." + t.table + ".live_rows", t.live_rows);
  }
  for (const auto& h : snap.hists) {
    row("hist." + h.name + ".count", h.count);
    row("hist." + h.name + ".sum", h.sum);
    row("hist." + h.name + ".p50", h.p50);
    row("hist." + h.name + ".p90", h.p90);
    row("hist." + h.name + ".p99", h.p99);
  }
  out.flush();
}

namespace {

// A sink owning its output file.
template <typename SinkT>
class FileSink : public MetricsSink {
 public:
  explicit FileSink(std::ofstream file) : file_(std::move(file)), sink_(&file_) {}
  void Write(const MetricsSnapshot& snap) override { sink_.Write(snap); }

 private:
  std::ofstream file_;
  SinkT sink_;
};

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

std::unique_ptr<MetricsSink> OpenMetricsSink(const std::string& path,
                                             std::string* error) {
  std::ofstream file(path, std::ios::out | std::ios::trunc);
  if (!file) {
    if (error != nullptr) {
      *error = "cannot open metrics output file: " + path;
    }
    return nullptr;
  }
  if (EndsWith(path, ".csv")) {
    return std::make_unique<FileSink<CsvMetricsSink>>(std::move(file));
  }
  return std::make_unique<FileSink<JsonlMetricsSink>>(std::move(file));
}

}  // namespace p2
