#include "src/trace/tuple_store.h"

namespace p2 {

uint64_t TupleStore::Intern(const TupleRef& t) {
  size_t h = t->Hash();
  auto& bucket = by_content_[h];
  for (const auto& [stored, id] : bucket) {
    if (*stored == *t) {
      return id;
    }
  }
  uint64_t id = next_id_++;
  bucket.emplace_back(t, id);
  by_id_.emplace(id, t);
  return id;
}

TupleRef TupleStore::Lookup(uint64_t id) const {
  auto it = by_id_.find(id);
  return it == by_id_.end() ? nullptr : it->second;
}

void TupleStore::Remove(uint64_t id) {
  auto it = by_id_.find(id);
  if (it == by_id_.end()) {
    return;
  }
  size_t h = it->second->Hash();
  auto bucket_it = by_content_.find(h);
  if (bucket_it != by_content_.end()) {
    auto& bucket = bucket_it->second;
    for (auto vit = bucket.begin(); vit != bucket.end(); ++vit) {
      if (vit->second == id) {
        bucket.erase(vit);
        break;
      }
    }
    if (bucket.empty()) {
      by_content_.erase(bucket_it);
    }
  }
  by_id_.erase(it);
}

}  // namespace p2
