#include "src/trace/forensics.h"

#include <algorithm>

#include "src/net/wire.h"

namespace p2 {

namespace {

// FNV-1a, for the per-segment (name, key-prefix) posting sets. Only compared
// within one process, so the exact function just needs to be deterministic.
uint64_t Fnv64(const std::string& s) {
  uint64_t h = 1469598103934665603ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

// "name/firstarg" — the key-prefix posting (field 0 is the location specifier).
std::string KeyPrefix(const Tuple& t) {
  if (t.arity() < 2) {
    return t.name();
  }
  return t.name() + "/" + t.field(1).ToString();
}

constexpr size_t kExecRecordCost = 48;    // struct + vector slack, approximate
constexpr size_t kPayloadFixedCost = 64;  // map node + Payload struct, approximate

}  // namespace

ForensicsStore::ForensicsStore(std::string node_addr, ForensicsOptions options)
    : node_addr_(std::move(node_addr)), options_(options) {
  if (options_.segment_records == 0) {
    options_.segment_records = 1;
  }
  if (options_.segment_span <= 0) {
    options_.segment_span = 30.0;
  }
}

ForensicsStore::Segment& ForensicsStore::Active(double now) {
  if (segments_.empty()) {
    segments_.emplace_back();
  }
  Segment* seg = &segments_.back();
  bool span_full = seg->has_records && now - seg->min_time >= options_.segment_span;
  if (seg->execs.size() >= options_.segment_records || span_full) {
    seg->sealed = true;
    segments_.emplace_back();
    seg = &segments_.back();
    Compact(now);  // sealing is the natural budget-enforcement point
    seg = &segments_.back();
  }
  return *seg;
}

void ForensicsStore::Touch(Segment& seg, double t) {
  if (!seg.has_records) {
    seg.min_time = t;
    seg.max_time = t;
    seg.has_records = true;
  } else {
    seg.min_time = std::min(seg.min_time, t);
    seg.max_time = std::max(seg.max_time, t);
  }
}

uint32_t ForensicsStore::InternRule(const std::string& rule_id) {
  auto it = rule_ids_.find(rule_id);
  if (it != rule_ids_.end()) {
    return it->second;
  }
  uint32_t id = static_cast<uint32_t>(rule_names_.size());
  rule_names_.push_back(rule_id);
  rule_ids_.emplace(rule_id, id);
  return id;
}

void ForensicsStore::AddPayload(Segment& seg, uint64_t id, const TupleRef& tuple,
                                const std::string& src_addr, uint64_t src_tuple_id,
                                double t) {
  if (tuple == nullptr) {
    return;
  }
  auto it = seg.payloads.find(id);
  if (it != seg.payloads.end()) {
    // Already retained in this segment; upgrade provenance if this call knows more.
    if (it->second.src_addr.empty() && !src_addr.empty()) {
      seg.bytes += src_addr.size();
      it->second.src_addr = src_addr;
      it->second.src_tuple_id = src_tuple_id;
    }
    return;
  }
  Payload p;
  EncodeTuple(*tuple, &p.bytes);
  p.src_addr = src_addr;
  p.src_tuple_id = src_tuple_id;
  p.time = t;
  seg.bytes += p.bytes.size() + p.src_addr.size() + kPayloadFixedCost;
  seg.postings.insert(Fnv64(tuple->name()));
  seg.postings.insert(Fnv64(KeyPrefix(*tuple)));
  seg.payloads.emplace(id, std::move(p));
  Touch(seg, t);
}

void ForensicsStore::RecordExec(const std::string& rule_id, uint64_t cause_id,
                                const TupleRef& cause, uint64_t effect_id,
                                const TupleRef& effect, double cause_time,
                                double out_time, bool is_event, double now) {
  if (!options_.enabled) {
    return;
  }
  Segment& seg = Active(now);
  ExecRecord rec;
  rec.rule = InternRule(rule_id);
  rec.cause_id = cause_id;
  rec.effect_id = effect_id;
  rec.cause_time = cause_time;
  rec.out_time = out_time;
  rec.is_event = is_event;
  seg.execs.push_back(rec);
  seg.bytes += kExecRecordCost;
  Touch(seg, out_time);
  // Keep the segment self-contained: the walk needs both endpoint payloads. The
  // cause may have arrived from another node long ago — re-attach its last known
  // provenance so the cross-node hop survives dropping the arrival's segment.
  auto cause_prov = remote_prov_.find(cause_id);
  if (cause_prov != remote_prov_.end()) {
    AddPayload(seg, cause_id, cause, cause_prov->second.first,
               cause_prov->second.second, now);
  } else {
    AddPayload(seg, cause_id, cause, node_addr_, cause_id, now);
  }
  AddPayload(seg, effect_id, effect, node_addr_, effect_id, now);
}

void ForensicsStore::RecordTuple(uint64_t id, const TupleRef& tuple,
                                 const std::string& src_addr, uint64_t src_tuple_id,
                                 double now) {
  if (!options_.enabled) {
    return;
  }
  if (!src_addr.empty() && src_addr != node_addr_) {
    remote_prov_[id] = {src_addr, src_tuple_id};
  }
  AddPayload(Active(now), id, tuple, src_addr, src_tuple_id, now);
}

void ForensicsStore::Compact(double now) {
  size_t total = 0;
  for (const Segment& seg : segments_) {
    total += seg.bytes;
  }
  while (segments_.size() > 1 && segments_.front().sealed) {
    const Segment& oldest = segments_.front();
    bool over_budget = total > options_.budget_bytes;
    bool too_old = options_.max_age > 0 && oldest.has_records &&
                   oldest.max_time < now - options_.max_age;
    if (!over_budget && !too_old) {
      break;
    }
    total -= oldest.bytes;
    segments_.pop_front();
    ++dropped_segments_;
  }
}

ForensicsStats ForensicsStore::Stats() const {
  ForensicsStats s;
  s.dropped_segments = dropped_segments_;
  bool have_oldest = false;
  for (const Segment& seg : segments_) {
    if (!seg.has_records && seg.execs.empty() && seg.payloads.empty()) {
      continue;  // the empty active segment does not count
    }
    ++s.segments;
    s.records += seg.execs.size();
    s.bytes += seg.bytes;
    // Segments are ordered oldest-first, so the first record-bearing one holds the
    // start of the retained window (a time of 0.0 is a valid minimum, not "unset").
    if (seg.has_records && !have_oldest) {
      s.oldest_time = seg.min_time;
      have_oldest = true;
    }
  }
  return s;
}

ExecEdge ForensicsStore::TriggerEdge(uint64_t effect_id, double max_out_time) const {
  ExecEdge edge;
  // Newest first; within a segment records are appended in time order, so the
  // first reverse-order match is the latest retained qualifying edge.
  for (auto seg = segments_.rbegin(); seg != segments_.rend(); ++seg) {
    for (auto rec = seg->execs.rbegin(); rec != seg->execs.rend(); ++rec) {
      if (rec->effect_id == effect_id && rec->is_event &&
          rec->out_time <= max_out_time) {
        edge.rule = rule_names_[rec->rule];
        edge.cause_id = rec->cause_id;
        edge.effect_id = rec->effect_id;
        edge.cause_time = rec->cause_time;
        edge.out_time = rec->out_time;
        edge.is_event = true;
        edge.found = true;
        return edge;
      }
    }
  }
  return edge;
}

std::vector<ExecEdge> ForensicsStore::Preconditions(uint64_t effect_id,
                                                    double out_time) const {
  std::vector<ExecEdge> out;
  for (const Segment& seg : segments_) {
    for (const ExecRecord& rec : seg.execs) {
      if (rec.effect_id != effect_id || rec.is_event || rec.out_time != out_time) {
        continue;
      }
      bool dup = false;
      for (const ExecEdge& seen : out) {
        if (seen.cause_id == rec.cause_id) {
          dup = true;
          break;
        }
      }
      if (dup) {
        continue;
      }
      ExecEdge e;
      e.rule = rule_names_[rec.rule];
      e.cause_id = rec.cause_id;
      e.effect_id = rec.effect_id;
      e.cause_time = rec.cause_time;
      e.out_time = rec.out_time;
      e.is_event = false;
      e.found = true;
      out.push_back(e);
    }
  }
  std::sort(out.begin(), out.end(), [](const ExecEdge& a, const ExecEdge& b) {
    if (a.cause_time != b.cause_time) {
      return a.cause_time < b.cause_time;
    }
    return a.cause_id < b.cause_id;
  });
  return out;
}

const ForensicsStore::Payload* ForensicsStore::FindPayload(uint64_t id) const {
  for (auto seg = segments_.rbegin(); seg != segments_.rend(); ++seg) {
    auto it = seg->payloads.find(id);
    if (it != seg->payloads.end()) {
      return &it->second;
    }
  }
  return nullptr;
}

TupleRef ForensicsStore::TupleById(uint64_t id) const {
  const Payload* p = FindPayload(id);
  if (p == nullptr) {
    return nullptr;
  }
  size_t pos = 0;
  TupleRef out;
  if (!DecodeTuple(p->bytes, &pos, &out)) {
    return nullptr;
  }
  return out;
}

bool ForensicsStore::Provenance(uint64_t id, std::string* src_addr,
                                uint64_t* src_tuple_id) const {
  const Payload* p = FindPayload(id);
  if (p == nullptr || p->src_addr.empty() || p->src_addr == node_addr_) {
    return false;
  }
  *src_addr = p->src_addr;
  *src_tuple_id = p->src_tuple_id;
  return true;
}

bool ForensicsStore::MatchKey(const std::string& key, const Tuple& tuple) {
  if (key == "*") {
    return true;
  }
  if (key == tuple.name()) {
    return true;
  }
  return key == KeyPrefix(tuple);
}

std::vector<std::pair<uint64_t, double>> ForensicsStore::FindHeads(
    const std::string& key, double t1, double t2) const {
  std::vector<std::pair<uint64_t, double>> heads;
  uint64_t posting = key == "*" ? 0 : Fnv64(key);
  for (const Segment& seg : segments_) {
    if (!seg.has_records || seg.max_time < t1 || seg.min_time > t2) {
      continue;
    }
    if (key != "*" && seg.postings.find(posting) == seg.postings.end()) {
      continue;
    }
    for (const ExecRecord& rec : seg.execs) {
      if (!rec.is_event || rec.out_time < t1 || rec.out_time > t2) {
        continue;
      }
      TupleRef effect;
      auto it = seg.payloads.find(rec.effect_id);
      if (it != seg.payloads.end()) {
        size_t pos = 0;
        DecodeTuple(it->second.bytes, &pos, &effect);
      } else {
        effect = TupleById(rec.effect_id);
      }
      if (effect == nullptr || !MatchKey(key, *effect)) {
        continue;
      }
      heads.emplace_back(rec.effect_id, rec.out_time);
    }
  }
  // Re-derivations repeat an effect id; keep the latest and return a canonical
  // (time, id) order so queries are independent of segment layout.
  std::sort(heads.begin(), heads.end(),
            [](const std::pair<uint64_t, double>& a,
               const std::pair<uint64_t, double>& b) {
              if (a.first != b.first) {
                return a.first < b.first;
              }
              return a.second > b.second;
            });
  heads.erase(std::unique(heads.begin(), heads.end(),
                          [](const std::pair<uint64_t, double>& a,
                             const std::pair<uint64_t, double>& b) {
                            return a.first == b.first;
                          }),
              heads.end());
  std::sort(heads.begin(), heads.end(),
            [](const std::pair<uint64_t, double>& a,
               const std::pair<uint64_t, double>& b) {
              if (a.second != b.second) {
                return a.second < b.second;
              }
              return a.first < b.first;
            });
  return heads;
}

bool ForensicsStore::Covers(double t1) const {
  if (dropped_segments_ == 0) {
    return true;
  }
  ForensicsStats s = Stats();
  return s.records > 0 && s.oldest_time <= t1;
}

}  // namespace p2
