#include "src/trace/replay.h"

#include <algorithm>
#include <cstdio>
#include <set>

#include "src/net/node.h"

namespace p2 {

namespace {

// Canonical (out_time, id) head order with re-derivations collapsed to the latest.
void CanonicalizeHeads(std::vector<std::pair<uint64_t, double>>* heads) {
  std::sort(heads->begin(), heads->end(),
            [](const std::pair<uint64_t, double>& a,
               const std::pair<uint64_t, double>& b) {
              if (a.first != b.first) {
                return a.first < b.first;
              }
              return a.second > b.second;
            });
  heads->erase(std::unique(heads->begin(), heads->end(),
                           [](const std::pair<uint64_t, double>& a,
                              const std::pair<uint64_t, double>& b) {
                             return a.first == b.first;
                           }),
               heads->end());
  std::sort(heads->begin(), heads->end(),
            [](const std::pair<uint64_t, double>& a,
               const std::pair<uint64_t, double>& b) {
              if (a.second != b.second) {
                return a.second < b.second;
              }
              return a.first < b.first;
            });
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// Virtual times are exact scheduler values, identical at every shard count, so a
// fixed-precision rendering is stable across K.
std::string FormatTime(double t) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6f", t);
  return buf;
}

}  // namespace

const std::string& LiveTraceSource::addr() const { return node_->addr(); }

ExecEdge LiveTraceSource::TriggerEdge(uint64_t effect_id, double max_out_time) const {
  ExecEdge edge;
  for (const TupleRef& t : node_->TableContents("ruleExec")) {
    if (t->field(3) != Value::Id(effect_id) || t->field(6) != Value::Bool(true)) {
      continue;
    }
    double out_time = t->field(5).AsDouble();
    if (out_time > max_out_time) {
      continue;
    }
    // Latest qualifying edge; ties broken on (rule, cause id) for determinism.
    if (edge.found && (out_time < edge.out_time ||
                       (out_time == edge.out_time &&
                        (t->field(1).AsString() < edge.rule ||
                         (t->field(1).AsString() == edge.rule &&
                          t->field(2).AsId() < edge.cause_id))))) {
      continue;
    }
    edge.rule = t->field(1).AsString();
    edge.cause_id = t->field(2).AsId();
    edge.effect_id = effect_id;
    edge.cause_time = t->field(4).AsDouble();
    edge.out_time = out_time;
    edge.is_event = true;
    edge.found = true;
  }
  return edge;
}

std::vector<ExecEdge> LiveTraceSource::Preconditions(uint64_t effect_id,
                                                     double out_time) const {
  std::vector<ExecEdge> out;
  for (const TupleRef& t : node_->TableContents("ruleExec")) {
    if (t->field(3) != Value::Id(effect_id) || t->field(6) != Value::Bool(false) ||
        t->field(5).AsDouble() != out_time) {
      continue;
    }
    uint64_t cause_id = t->field(2).AsId();
    bool dup = false;
    for (const ExecEdge& seen : out) {
      if (seen.cause_id == cause_id) {
        dup = true;
        break;
      }
    }
    if (dup) {
      continue;
    }
    ExecEdge e;
    e.rule = t->field(1).AsString();
    e.cause_id = cause_id;
    e.effect_id = effect_id;
    e.cause_time = t->field(4).AsDouble();
    e.out_time = out_time;
    e.is_event = false;
    e.found = true;
    out.push_back(e);
  }
  std::sort(out.begin(), out.end(), [](const ExecEdge& a, const ExecEdge& b) {
    if (a.cause_time != b.cause_time) {
      return a.cause_time < b.cause_time;
    }
    return a.cause_id < b.cause_id;
  });
  return out;
}

TupleRef LiveTraceSource::TupleById(uint64_t id) const {
  return node_->store().Lookup(id);
}

bool LiveTraceSource::Provenance(uint64_t id, std::string* src_addr,
                                 uint64_t* src_tuple_id) const {
  for (const TupleRef& t : node_->TableContents("tupleTable")) {
    if (t->field(1) != Value::Id(id)) {
      continue;
    }
    const std::string& src = t->field(2).AsString();
    if (src.empty() || src == node_->addr()) {
      return false;
    }
    *src_addr = src;
    *src_tuple_id = t->field(3).AsId();
    return true;
  }
  return false;
}

std::vector<std::pair<uint64_t, double>> LiveTraceSource::FindHeads(
    const std::string& key, double t1, double t2) const {
  std::vector<std::pair<uint64_t, double>> heads;
  for (const TupleRef& t : node_->TableContents("ruleExec")) {
    if (t->field(6) != Value::Bool(true)) {
      continue;
    }
    double out_time = t->field(5).AsDouble();
    if (out_time < t1 || out_time > t2) {
      continue;
    }
    uint64_t effect_id = t->field(3).AsId();
    TupleRef effect = node_->store().Lookup(effect_id);
    if (effect == nullptr || !ForensicsStore::MatchKey(key, *effect)) {
      continue;
    }
    heads.emplace_back(effect_id, out_time);
  }
  CanonicalizeHeads(&heads);
  return heads;
}

std::vector<CausalChain> ReplayChains(const TraceSourceResolver& resolver,
                                      const std::string& addr, const std::string& key,
                                      double t1, double t2, ReplayLimits limits) {
  std::vector<CausalChain> chains;
  TraceSource* origin = resolver(addr);
  if (origin == nullptr) {
    return chains;
  }
  std::vector<std::pair<uint64_t, double>> heads = origin->FindHeads(key, t1, t2);
  if (heads.size() > limits.max_heads) {
    heads.resize(limits.max_heads);
  }
  for (const auto& [head_id, head_time] : heads) {
    CausalChain chain;
    chain.node = addr;
    chain.head_id = head_id;
    chain.head_time = head_time;
    TupleRef head = origin->TupleById(head_id);
    if (head != nullptr) {
      chain.head_text = head->ToString();
    }
    TraceSource* src = origin;
    uint64_t cur_id = head_id;
    double bound = head_time;
    bool hop_pending = false;
    std::set<std::pair<std::string, uint64_t>> visited;
    visited.insert({src->addr(), cur_id});
    for (size_t depth = 0;; ++depth) {
      if (depth >= limits.max_depth) {
        chain.truncated = true;
        break;
      }
      ExecEdge edge = src->TriggerEdge(cur_id, bound);
      if (!edge.found) {
        // No local derivation: either an injected root, lost history, or a tuple
        // that arrived over the network — provenance decides.
        std::string peer_addr;
        uint64_t peer_id = 0;
        if (src->Provenance(cur_id, &peer_addr, &peer_id)) {
          TraceSource* peer = resolver(peer_addr);
          if (peer != nullptr && visited.insert({peer_addr, peer_id}).second) {
            src = peer;
            cur_id = peer_id;
            hop_pending = true;
            continue;
          }
        }
        break;
      }
      CausalStep step;
      step.node = src->addr();
      step.rule = edge.rule;
      step.cause_id = edge.cause_id;
      step.effect_id = edge.effect_id;
      step.cause_time = edge.cause_time;
      step.out_time = edge.out_time;
      step.hop = hop_pending;
      hop_pending = false;
      TupleRef cause = src->TupleById(edge.cause_id);
      if (cause != nullptr) {
        step.cause_text = cause->ToString();
      }
      for (const ExecEdge& pc : src->Preconditions(cur_id, edge.out_time)) {
        TupleRef pct = src->TupleById(pc.cause_id);
        step.preconds.emplace_back(pc.cause_id,
                                   pct == nullptr ? std::string() : pct->ToString());
      }
      chain.steps.push_back(std::move(step));
      cur_id = edge.cause_id;
      bound = edge.cause_time;
      if (!visited.insert({src->addr(), cur_id}).second) {
        break;  // refresh loop (a materialized head re-deriving its own cause)
      }
    }
    chains.push_back(std::move(chain));
  }
  return chains;
}

std::string ExportChainsJsonl(const std::vector<CausalChain>& chains) {
  std::string out;
  for (const CausalChain& chain : chains) {
    out += "{\"node\":\"" + JsonEscape(chain.node) + "\"";
    out += ",\"head_id\":" + std::to_string(chain.head_id);
    out += ",\"head_time\":" + FormatTime(chain.head_time);
    out += ",\"head\":\"" + JsonEscape(chain.head_text) + "\"";
    out += ",\"truncated\":" + std::string(chain.truncated ? "true" : "false");
    out += ",\"steps\":[";
    bool first = true;
    for (const CausalStep& step : chain.steps) {
      if (!first) {
        out += ",";
      }
      first = false;
      out += "{\"node\":\"" + JsonEscape(step.node) + "\"";
      out += ",\"rule\":\"" + JsonEscape(step.rule) + "\"";
      out += ",\"cause_id\":" + std::to_string(step.cause_id);
      out += ",\"effect_id\":" + std::to_string(step.effect_id);
      out += ",\"cause_time\":" + FormatTime(step.cause_time);
      out += ",\"out_time\":" + FormatTime(step.out_time);
      out += ",\"cause\":\"" + JsonEscape(step.cause_text) + "\"";
      out += ",\"hop\":" + std::string(step.hop ? "true" : "false");
      out += ",\"preconds\":[";
      bool pfirst = true;
      for (const auto& [id, text] : step.preconds) {
        if (!pfirst) {
          out += ",";
        }
        pfirst = false;
        out += "{\"id\":" + std::to_string(id) + ",\"tuple\":\"" + JsonEscape(text) +
               "\"}";
      }
      out += "]}";
    }
    out += "]}\n";
  }
  return out;
}

}  // namespace p2
