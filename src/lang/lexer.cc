#include "src/lang/lexer.h"

#include <cctype>
#include <cstdlib>

#include "src/common/strings.h"

namespace p2 {

namespace {

bool IsIdentStart(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_'; }
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

bool Lex(const std::string& source, std::vector<Token>* out, std::string* error) {
  out->clear();
  size_t i = 0;
  int line = 1;
  const size_t n = source.size();

  auto push = [&](TokKind kind, std::string text = std::string()) {
    Token t;
    t.kind = kind;
    t.text = std::move(text);
    t.line = line;
    out->push_back(std::move(t));
  };
  auto fail = [&](const std::string& msg) {
    *error = StrFormat("lex error at line %d: %s", line, msg.c_str());
    return false;
  };

  while (i < n) {
    char c = source[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Comments.
    if (c == '#') {
      while (i < n && source[i] != '\n') {
        ++i;
      }
      continue;
    }
    if (c == '/' && i + 1 < n && source[i + 1] == '/') {
      while (i < n && source[i] != '\n') {
        ++i;
      }
      continue;
    }
    if (c == '/' && i + 1 < n && source[i + 1] == '*') {
      i += 2;
      while (i + 1 < n && !(source[i] == '*' && source[i + 1] == '/')) {
        if (source[i] == '\n') {
          ++line;
        }
        ++i;
      }
      if (i + 1 >= n) {
        return fail("unterminated block comment");
      }
      i += 2;
      continue;
    }
    // Identifiers.
    if (IsIdentStart(c)) {
      size_t start = i;
      while (i < n && IsIdentChar(source[i])) {
        ++i;
      }
      push(TokKind::kIdent, source.substr(start, i - start));
      continue;
    }
    // Numbers: digits, optional fraction, optional exponent. A `.` is part of the
    // number only when followed by a digit (so `5.` ends a statement after `5`).
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = i;
      bool is_int = true;
      while (i < n && std::isdigit(static_cast<unsigned char>(source[i]))) {
        ++i;
      }
      if (i + 1 < n && source[i] == '.' &&
          std::isdigit(static_cast<unsigned char>(source[i + 1]))) {
        is_int = false;
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(source[i]))) {
          ++i;
        }
      }
      if (i < n && (source[i] == 'e' || source[i] == 'E')) {
        size_t j = i + 1;
        if (j < n && (source[j] == '+' || source[j] == '-')) {
          ++j;
        }
        if (j < n && std::isdigit(static_cast<unsigned char>(source[j]))) {
          is_int = false;
          i = j;
          while (i < n && std::isdigit(static_cast<unsigned char>(source[i]))) {
            ++i;
          }
        }
      }
      Token t;
      t.kind = TokKind::kNumber;
      t.text = source.substr(start, i - start);
      t.number = std::strtod(t.text.c_str(), nullptr);
      t.is_integer = is_int;
      t.line = line;
      out->push_back(std::move(t));
      continue;
    }
    // Strings.
    if (c == '"') {
      ++i;
      std::string text;
      while (i < n && source[i] != '"') {
        if (source[i] == '\\' && i + 1 < n) {
          ++i;
          switch (source[i]) {
            case 'n': text += '\n'; break;
            case 't': text += '\t'; break;
            case '\\': text += '\\'; break;
            case '"': text += '"'; break;
            default: text += source[i]; break;
          }
        } else {
          if (source[i] == '\n') {
            ++line;
          }
          text += source[i];
        }
        ++i;
      }
      if (i >= n) {
        return fail("unterminated string literal");
      }
      ++i;  // closing quote
      push(TokKind::kString, std::move(text));
      continue;
    }
    // Multi-character operators.
    auto two = [&](char a, char b) { return c == a && i + 1 < n && source[i + 1] == b; };
    if (two(':', '-')) { push(TokKind::kColonDash); i += 2; continue; }
    if (two(':', '=')) { push(TokKind::kColonEq); i += 2; continue; }
    if (two('=', '=')) { push(TokKind::kEqEq); i += 2; continue; }
    if (two('!', '=')) { push(TokKind::kNe); i += 2; continue; }
    if (two('<', '=')) { push(TokKind::kLe); i += 2; continue; }
    if (two('>', '=')) { push(TokKind::kGe); i += 2; continue; }
    if (two('&', '&')) { push(TokKind::kAndAnd); i += 2; continue; }
    if (two('|', '|')) { push(TokKind::kOrOr); i += 2; continue; }
    switch (c) {
      case '(': push(TokKind::kLParen); break;
      case ')': push(TokKind::kRParen); break;
      case '[': push(TokKind::kLBracket); break;
      case ']': push(TokKind::kRBracket); break;
      case ',': push(TokKind::kComma); break;
      case '.': push(TokKind::kDot); break;
      case '@': push(TokKind::kAt); break;
      case '<': push(TokKind::kLt); break;
      case '>': push(TokKind::kGt); break;
      case '+': push(TokKind::kPlus); break;
      case '-': push(TokKind::kMinus); break;
      case '*': push(TokKind::kStar); break;
      case '/': push(TokKind::kSlash); break;
      case '%': push(TokKind::kPercent); break;
      case '!': push(TokKind::kBang); break;
      default:
        return fail(StrFormat("unexpected character '%c'", c));
    }
    ++i;
  }
  push(TokKind::kEof);
  return true;
}

}  // namespace p2
