// Builtin functions (`f_*`) available in OverLog expressions.
//
//   f_now()            current virtual time in seconds (Double)
//   f_rand()           random 64-bit nonce (Id) — request/probe identifiers
//   f_randID()         random 64-bit ring identifier (Id)
//   f_pow2(I)          2^I on the identifier ring (Id); 0 when I >= 64
//   f_abs(X)           absolute value
//   f_min(A, B)        smaller of two values
//   f_max(A, B)        larger of two values
//   f_size(L)          length of a list / string (Int)
//   f_str(X)           printed form of X (String)
//   f_local()          the local node address (String)
//   f_prefix(S, P)     true if string S starts with string P (Bool)
//   f_hash(X)          stable 64-bit hash of X's printed form onto the ring (Id)

#ifndef SRC_LANG_BUILTINS_H_
#define SRC_LANG_BUILTINS_H_

#include <string>
#include <vector>

#include "src/lang/expr.h"
#include "src/runtime/value.h"

namespace p2 {

// Calls builtin `name` with `args`. Unknown names and arity mismatches return null.
Value CallBuiltin(const std::string& name, const ValueList& args, EvalContext& ctx);

// True if `name` is a known builtin (for plan-time validation).
bool IsKnownBuiltin(const std::string& name);

}  // namespace p2

#endif  // SRC_LANG_BUILTINS_H_
