#include "src/lang/ast.h"

#include "src/common/strings.h"

namespace p2 {

namespace {

const char* OpName(OpKind op) {
  switch (op) {
    case OpKind::kAdd: return "+";
    case OpKind::kSub: return "-";
    case OpKind::kMul: return "*";
    case OpKind::kDiv: return "/";
    case OpKind::kMod: return "%";
    case OpKind::kEq: return "==";
    case OpKind::kNe: return "!=";
    case OpKind::kLt: return "<";
    case OpKind::kLe: return "<=";
    case OpKind::kGt: return ">";
    case OpKind::kGe: return ">=";
    case OpKind::kAnd: return "&&";
    case OpKind::kOr: return "||";
    case OpKind::kNot: return "!";
    case OpKind::kNeg: return "-";
  }
  return "?";
}

const char* AggName(AggKind agg) {
  switch (agg) {
    case AggKind::kNone: return "";
    case AggKind::kCount: return "count";
    case AggKind::kMin: return "min";
    case AggKind::kMax: return "max";
    case AggKind::kAvg: return "avg";
    case AggKind::kSum: return "sum";
  }
  return "?";
}

}  // namespace

std::string Expr::ToString() const {
  switch (kind) {
    case Kind::kConst:
      if (constant.kind() == Value::Kind::kString) {
        return "\"" + constant.AsString() + "\"";
      }
      return constant.ToString();
    case Kind::kVar:
      return name;
    case Kind::kBinary:
      return "(" + children[0]->ToString() + " " + OpName(op) + " " +
             children[1]->ToString() + ")";
    case Kind::kUnary:
      return std::string(OpName(op)) + children[0]->ToString();
    case Kind::kCall: {
      std::vector<std::string> parts;
      for (const ExprPtr& c : children) {
        parts.push_back(c->ToString());
      }
      return name + "(" + Join(parts, ", ") + ")";
    }
    case Kind::kInterval:
      return children[0]->ToString() + " in " + (open_left ? "(" : "[") +
             children[1]->ToString() + ", " + children[2]->ToString() +
             (open_right ? ")" : "]");
    case Kind::kMakeList: {
      std::vector<std::string> parts;
      for (const ExprPtr& c : children) {
        parts.push_back(c->ToString());
      }
      return "[" + Join(parts, ", ") + "]";
    }
  }
  return "?";
}

void Expr::CollectVars(std::vector<std::string>* out) const {
  if (kind == Kind::kVar) {
    out->push_back(name);
    return;
  }
  for (const ExprPtr& c : children) {
    if (c != nullptr) {
      c->CollectVars(out);
    }
  }
}

std::string HeadArg::ToString() const {
  if (agg == AggKind::kNone) {
    return expr->ToString();
  }
  return std::string(AggName(agg)) + "<" + (expr ? expr->ToString() : "*") + ">";
}

std::string Predicate::ToString() const {
  std::vector<std::string> parts;
  for (size_t i = 1; i < args.size(); ++i) {
    parts.push_back(args[i]->ToString());
  }
  return name + "@" + (args.empty() ? "?" : args[0]->ToString()) + "(" + Join(parts, ", ") +
         ")";
}

std::string BodyTerm::ToString() const {
  switch (kind) {
    case Kind::kPredicate:
      return (negated ? "not " : "") + pred.ToString();
    case Kind::kAssign:
      return var + " := " + expr->ToString();
    case Kind::kFilter:
      return expr->ToString();
  }
  return "?";
}

std::string Head::ToString() const {
  std::vector<std::string> parts;
  for (size_t i = 1; i < args.size(); ++i) {
    parts.push_back(args[i].ToString());
  }
  return name + "@" + (args.empty() ? "?" : args[0].ToString()) + "(" + Join(parts, ", ") +
         ")";
}

bool Head::HasAggregate() const {
  for (const HeadArg& arg : args) {
    if (arg.agg != AggKind::kNone) {
      return true;
    }
  }
  return false;
}

std::string Rule::ToString() const {
  std::vector<std::string> parts;
  for (const BodyTerm& t : body) {
    parts.push_back(t.ToString());
  }
  return id + " " + (is_delete ? "delete " : "") + head.ToString() + " :- " +
         Join(parts, ", ") + ".";
}

std::string Program::ToString() const {
  std::string out;
  for (const TableSpec& m : materializations) {
    out += StrFormat("materialize(%s, ...).\n", m.name.c_str());
  }
  for (const Rule& r : rules) {
    out += r.ToString() + "\n";
  }
  return out;
}

}  // namespace p2
